module roia

go 1.22
