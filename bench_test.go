// Package roia holds the repository-level benchmark harness: one
// benchmark per evaluation artifact of the paper (Figures 4–8, the
// Section V-A anchors, the baseline-strategy comparison) plus ablation
// benchmarks for the design choices called out in DESIGN.md (interest-
// management algorithm, wire serialization, model evaluation, migration
// planning, and real measured ticks vs the model's prediction).
//
// Run with: go test -bench=. -benchmem .
package roia

import (
	"fmt"
	"testing"

	"roia/internal/bots"
	"roia/internal/experiments"
	"roia/internal/fit"
	"roia/internal/game"
	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
	"roia/internal/rtf/aoi"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/proto"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

// --- figure reproductions -------------------------------------------------

func BenchmarkFig4ParameterFitting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(1)
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxRelErr > 0.15 {
			b.Fatalf("fit drifted: %g", res.MaxRelErr)
		}
	}
}

func BenchmarkFig5ReplicationScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if res := experiments.Fig5(); res.LMax != 8 || res.MaxUsers[0] != 235 {
			b.Fatalf("anchors broken: lmax=%d n1=%d", res.LMax, res.MaxUsers[0])
		}
	}
}

func BenchmarkFig6MigrationParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7MigrationThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if res := experiments.Fig7(); res.IniAt[35] != 3 {
			b.Fatalf("worked example broken: %d", res.IniAt[35])
		}
	}
}

func BenchmarkFig8DynamicLoadBalancing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Session.TotalViolations != 0 {
			b.Fatalf("violations: %d", res.Session.TotalViolations)
		}
	}
}

func BenchmarkAnchorThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if a := experiments.Anchors(); a.NMax1 != 235 || a.LMaxC015 != 8 {
			b.Fatalf("anchors broken: %+v", a)
		}
	}
}

func BenchmarkBaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BaselineComparison(1)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Violations != 0 {
			b.Fatalf("model-rms violated: %+v", rows[0])
		}
	}
}

func BenchmarkHeavyLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.HeavyLoad(1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Substitutions < 3 {
			b.Fatalf("substitutions = %d", res.Substitutions)
		}
	}
}

func BenchmarkPacingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PacingAblation(1)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Violations != 0 || rows[1].Violations == 0 {
			b.Fatalf("ablation shape broken: %+v", rows)
		}
	}
}

func BenchmarkTrafficModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Traffic(1)
		if err != nil {
			b.Fatal(err)
		}
		if res.AsymmetryAt150 <= 1 {
			b.Fatalf("asymmetry = %g", res.AsymmetryAt150)
		}
	}
}

// --- model evaluation ablations --------------------------------------------

func rtfdemoModel(b *testing.B) *model.Model {
	b.Helper()
	mdl, err := model.New(params.RTFDemo(), params.UFirstPersonShooter, params.CDefault)
	if err != nil {
		b.Fatal(err)
	}
	return mdl
}

func BenchmarkModelTickTime(b *testing.B) {
	mdl := rtfdemoModel(b)
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += mdl.TickTime(4, 300, 20)
	}
	if sink == 0 {
		b.Fatal("tick time zero")
	}
}

func BenchmarkModelMaxUsers(b *testing.B) {
	mdl := rtfdemoModel(b)
	for i := 0; i < b.N; i++ {
		if n, _ := mdl.MaxUsers(4, 0); n == 0 {
			b.Fatal("n_max zero")
		}
	}
}

func BenchmarkModelMaxReplicas(b *testing.B) {
	mdl := rtfdemoModel(b)
	for i := 0; i < b.N; i++ {
		if l, _ := mdl.MaxReplicas(0); l != 8 {
			b.Fatalf("l_max = %d", l)
		}
	}
}

func BenchmarkMigrationPlanner(b *testing.B) {
	mdl := rtfdemoModel(b)
	servers := make([]rms.ServerState, 8)
	n := 0
	for i := range servers {
		u := 20 + i*15
		servers[i] = rms.ServerState{ID: fmt.Sprintf("s%d", i), Users: u}
		n += u
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if plan := rms.PlanMigrations(mdl, servers, n, 0); plan == nil {
			b.Fatal("no plan")
		}
	}
}

// --- interest-management ablation (Euclid vs grid) --------------------------

func aoiWorld(n int) []*entity.Entity {
	world := make([]*entity.Entity, n)
	for i := range world {
		world[i] = &entity.Entity{
			ID:  entity.ID(i + 1),
			Pos: entity.Vec2{X: float64((i * 83) % 1000), Y: float64((i * 131) % 1000)},
		}
	}
	return world
}

func benchAoI(b *testing.B, mgr aoi.Manager, n int) {
	world := aoiWorld(n)
	var buf []entity.ID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr.Build(world)
		for _, e := range world {
			buf = mgr.Visible(buf[:0], e.ID, e.Pos, world)
		}
	}
}

func BenchmarkAoIEuclid(b *testing.B) {
	for _, n := range []int{50, 150, 300, 1000} {
		b.Run(fmt.Sprintf("users=%d", n), func(b *testing.B) {
			benchAoI(b, aoi.NewEuclid(50), n)
		})
	}
}

func BenchmarkAoIGrid(b *testing.B) {
	for _, n := range []int{50, 150, 300, 1000} {
		b.Run(fmt.Sprintf("users=%d", n), func(b *testing.B) {
			benchAoI(b, aoi.NewGrid(50), n)
		})
	}
}

// --- wire serialization ablation --------------------------------------------

func sampleUpdate(visible int) *proto.StateUpdate {
	upd := &proto.StateUpdate{
		Tick: 42,
		Self: entity.Entity{ID: 1, Pos: entity.Vec2{X: 10, Y: 20}, Health: 90, Owner: "s1", Seq: 7},
	}
	for i := 0; i < visible; i++ {
		upd.Visible = append(upd.Visible, entity.Entity{
			ID: entity.ID(i + 2), Pos: entity.Vec2{X: float64(i), Y: float64(i)},
			Health: 100, Owner: "s1", Seq: uint64(i),
		})
	}
	return upd
}

func BenchmarkWireStateUpdateEncode(b *testing.B) {
	upd := sampleUpdate(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if payload := proto.Registry.EncodeToBytes(upd); len(payload) == 0 {
			b.Fatal("empty payload")
		}
	}
}

func BenchmarkWireStateUpdateDecode(b *testing.B) {
	payload := proto.Registry.EncodeToBytes(sampleUpdate(32))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proto.Registry.Decode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateModes compares full state updates against RTF's delta
// bandwidth optimization on a live single-server cluster with moving bots,
// reporting measured wire bytes per tick for each mode.
func BenchmarkUpdateModes(b *testing.B) {
	for _, mode := range []struct {
		name  string
		delta bool
	}{{"full", false}, {"delta", true}} {
		b.Run(mode.name, func(b *testing.B) {
			net := transport.NewLoopback()
			defer net.Close()
			asg := zone.NewAssignment()
			node, err := net.Attach("s1", 1<<16)
			if err != nil {
				b.Fatal(err)
			}
			srv, err := server.New(server.Config{
				Node: node, Zone: 1, Assignment: asg,
				App: game.New(game.DefaultConfig()), IDPrefix: 1, Seed: 1,
				DeltaUpdates: mode.delta,
			})
			if err != nil {
				b.Fatal(err)
			}
			srv.Start()
			const nBots = 60
			swarm := make([]*bots.Bot, nBots)
			for i := range swarm {
				cn, err := net.Attach(fmt.Sprintf("c%d", i+1), 1<<14)
				if err != nil {
					b.Fatal(err)
				}
				cl := client.New(cn, "s1")
				if err := cl.Join(1, entity.Vec2{X: float64(100 + i*3), Y: 100}, cn.ID()); err != nil {
					b.Fatal(err)
				}
				swarm[i] = bots.New(cl, bots.PassiveProfile(), int64(i+1))
			}
			for i := 0; i < 5; i++ {
				srv.Tick()
				for _, bt := range swarm {
					bt.Step()
				}
			}
			totalBytes := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, bt := range swarm {
					bt.Step()
				}
				srv.Tick()
				totalBytes += srv.Monitor().LastBreakdown().BytesOut
			}
			b.StopTimer()
			b.ReportMetric(float64(totalBytes)/float64(b.N), "bytes/tick")
		})
	}
}

// --- tick pipeline parallelism ablation ---------------------------------------

// BenchmarkTickPipeline measures the staged real-time loop at n = 500 users
// under Euclidean interest management, sequential (workers=1) versus fanned
// out over 4 workers. The ns/op ratio of the two sub-benchmarks is the
// measured intra-replica speedup S(4) of the model's USL term; the wire
// output is byte-identical in both modes (see the pipeline determinism
// tests), so the comparison is pure execution cost. On a single-core host
// (GOMAXPROCS=1) the two modes necessarily converge — the speedup figure is
// only meaningful on multi-core hardware.
func BenchmarkTickPipeline(b *testing.B) {
	for _, mode := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=4", 4}} {
		b.Run(mode.name, func(b *testing.B) {
			net := transport.NewLoopback()
			defer net.Close()
			asg := zone.NewAssignment()
			node, err := net.Attach("s1", 1<<18)
			if err != nil {
				b.Fatal(err)
			}
			srv, err := server.New(server.Config{
				Node: node, Zone: 1, Assignment: asg,
				App: game.New(game.DefaultConfig()), IDPrefix: 1, Seed: 1,
				AOI:         aoi.NewEuclid(server.DefaultAOIRadius),
				Parallelism: mode.workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			srv.Start()
			const nUsers = 500
			clients := make([]*client.Client, nUsers)
			for i := range clients {
				cn, err := net.Attach(fmt.Sprintf("c%d", i+1), 1<<14)
				if err != nil {
					b.Fatal(err)
				}
				cl := client.New(cn, "s1")
				if err := cl.Join(1, entity.Vec2{X: float64((i * 17) % 1000), Y: float64((i * 29) % 1000)}, cn.ID()); err != nil {
					b.Fatal(err)
				}
				clients[i] = cl
			}
			for i := 0; i < 5; i++ {
				srv.Tick()
				for _, cl := range clients {
					cl.Poll()
				}
			}
			move := game.Commands.EncodeToBytes(&game.Move{DX: 1, DY: 1})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, cl := range clients {
					cl.Poll()
					_ = cl.SendInput(move)
				}
				srv.Tick()
			}
			b.StopTimer()
			b.ReportMetric(srv.Monitor().MeanTick(), "wall-ms/tick")
			b.ReportMetric(srv.Monitor().MeanTickCPU(), "cpu-ms/tick")
		})
	}
}

// --- observability overhead ablation -----------------------------------------

// BenchmarkInstrumentedTick measures the full tick loop bare and with every
// per-tick observability hook attached (tick tracer, per-phase task
// profiler, QoS deadline accounting, and bots measuring input→update RTT
// from the echoed acks). Diffing the two sub-benchmarks bounds the cost of
// the instrumentation itself; the design target is under 5% on the hot
// path, since the point of the telemetry is to watch production ticks, not
// to perturb them.
func BenchmarkInstrumentedTick(b *testing.B) {
	for _, mode := range []struct {
		name         string
		instrumented bool
	}{{"bare", false}, {"instrumented", true}} {
		b.Run(mode.name, func(b *testing.B) {
			net := transport.NewLoopback()
			defer net.Close()
			asg := zone.NewAssignment()
			node, err := net.Attach("s1", 1<<16)
			if err != nil {
				b.Fatal(err)
			}
			cfg := server.Config{
				Node: node, Zone: 1, Assignment: asg,
				App: game.New(game.DefaultConfig()), IDPrefix: 1, Seed: 1,
			}
			if mode.instrumented {
				cfg.Tracer = telemetry.NewTracer(telemetry.DefaultTraceCapacity)
				cfg.Profiler = telemetry.NewTaskProfiler()
			}
			srv, err := server.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			srv.Start()
			const nBots = 60
			swarm := make([]*bots.Bot, nBots)
			for i := range swarm {
				cn, err := net.Attach(fmt.Sprintf("c%d", i+1), 1<<14)
				if err != nil {
					b.Fatal(err)
				}
				cl := client.New(cn, "s1")
				if mode.instrumented {
					cl.SetLatencyDeadline(40)
				}
				if err := cl.Join(1, entity.Vec2{X: float64(100 + i*3), Y: 100}, cn.ID()); err != nil {
					b.Fatal(err)
				}
				swarm[i] = bots.New(cl, bots.DefaultProfile(), int64(i+1))
			}
			for i := 0; i < 5; i++ {
				srv.Tick()
				for _, bt := range swarm {
					bt.Step()
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, bt := range swarm {
					bt.Step()
				}
				srv.Tick()
			}
		})
	}
}

// --- tick tail latency ---------------------------------------------------------

// BenchmarkTickTail runs the live single-replica loop and reports the
// distribution of per-tick wall times — p50/p99/p99.9 in milliseconds via
// a telemetry.LogHistogram — alongside the usual mean ns/op. The p99-ms
// metric is what `benchjson -compare` gates on: a change that speeds the
// average tick while fattening its tail is a regression for a real-time
// loop, whose QoS deadline is paid per tick, not on average.
func BenchmarkTickTail(b *testing.B) {
	for _, n := range []int{60, 150} {
		b.Run(fmt.Sprintf("users=%d", n), func(b *testing.B) {
			net := transport.NewLoopback()
			defer net.Close()
			fl, err := fleet.New(fleet.Config{
				Network:    net,
				Zone:       1,
				Assignment: zone.NewAssignment(),
				NewApp:     func() server.Application { return game.New(game.DefaultConfig()) },
				Seed:       1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := fl.AddReplica(); err != nil {
				b.Fatal(err)
			}
			driver := bots.NewFleetDriver(fl, net, 1)
			if err := driver.SetBots(n); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				driver.Step()
			}
			srv, _ := fl.Server("server-1")
			hist := telemetry.NewLogHistogram()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				driver.Step()
				bd := srv.Monitor().LastBreakdown()
				hist.Observe(bd.Wall())
			}
			b.StopTimer()
			b.ReportMetric(hist.Quantile(0.50), "p50-ms")
			b.ReportMetric(hist.Quantile(0.99), "p99-ms")
			b.ReportMetric(hist.Quantile(0.999), "p999-ms")
		})
	}
}

// --- fitting ablation ---------------------------------------------------------

func BenchmarkLevMarQuadraticFit(b *testing.B) {
	xs := make([]float64, 60)
	ys := make([]float64, 60)
	for i := range xs {
		x := float64(i * 5)
		xs[i] = x
		ys[i] = 1e-7*x*x + 2e-4*x + 0.004
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fit.LevMar(fit.PolyModel(), xs, ys, []float64{0, 0, 0}, fit.LMOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- real RTF tick vs model prediction ---------------------------------------

// BenchmarkRealServerTick measures one real-time-loop iteration of the
// live RTF server (real deserialization, hit scans, AoI, serialization)
// at several population sizes, and reports the calibrated model's
// prediction for the same workload as the custom metric "model-ms" — the
// live counterpart of Eq. (1).
func BenchmarkRealServerTick(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		b.Run(fmt.Sprintf("users=%d", n), func(b *testing.B) {
			net := transport.NewLoopback()
			defer net.Close()
			fl, err := fleet.New(fleet.Config{
				Network:    net,
				Zone:       1,
				Assignment: zone.NewAssignment(),
				NewApp:     func() server.Application { return game.New(game.DefaultConfig()) },
				Seed:       1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := fl.AddReplica(); err != nil {
				b.Fatal(err)
			}
			driver := bots.NewFleetDriver(fl, net, 1)
			if err := driver.SetBots(n); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				driver.Step()
			}
			srv, _ := fl.Server("server-1")

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, bot := range driver.Bots() {
					bot.Step()
				}
				srv.Tick()
			}
			b.StopTimer()
			mdl := rtfdemoModel(b)
			b.ReportMetric(mdl.TickTime(1, n, 0), "model-ms")
			b.ReportMetric(srv.Monitor().MeanTick(), "measured-ms")
		})
	}
}
