// Migrationplan: the worked example of Fig. 2 — workload-aware user
// migration in two steps. 45 users sit unevenly on three replicas of one
// zone (25 / 12 / 8). The scalability model computes, for each replica,
// how many migrations it may initiate (x_max_ini) and receive (x_max_rcv)
// per second without violating the tick-duration threshold; Listing 1
// then plans bounded transfers from the most loaded server until the
// distribution reaches 15 / 15 / 15 over successive seconds.
//
// Run with: go run ./examples/migrationplan
package main

import (
	"fmt"
	"log"

	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
)

func main() {
	profile := params.RTFDemo()
	// A tight demo threshold makes the budgets small enough to need two
	// steps, like the figure. (With U = 40 ms and only 45 users the
	// budgets would be enormous and the plan would finish in one step.)
	mdl, err := model.New(profile, 8, params.CDefault)
	if err != nil {
		log.Fatal(err)
	}

	servers := []rms.ServerState{
		{ID: "replica-1", Users: 25},
		{ID: "replica-2", Users: 12},
		{ID: "replica-3", Users: 8},
	}
	const n, m = 45, 0

	fmt.Println("Fig. 2 scenario: 45 users on three replicas, target 15/15/15")
	for _, s := range servers {
		fmt.Printf("  %s: %2d users  x_max_ini=%d/s  x_max_rcv=%d/s\n",
			s.ID, s.Users,
			mdl.MaxMigrationsIni(3, n, m, s.Users),
			mdl.MaxMigrationsRcv(3, n, m, s.Users))
	}

	for step := 1; ; step++ {
		plan := rms.PlanMigrations(mdl, servers, n, m)
		if len(plan) == 0 {
			fmt.Printf("\nbalanced after %d step(s): ", step-1)
			for _, s := range servers {
				fmt.Printf("%s=%d ", s.ID, s.Users)
			}
			fmt.Println()
			return
		}
		fmt.Printf("\nstep %d (one second of migrations):\n", step)
		for _, mig := range plan {
			fmt.Printf("  migrate %2d users %s → %s\n", mig.Count, mig.From, mig.To)
			for i := range servers {
				switch servers[i].ID {
				case mig.From:
					servers[i].Users -= mig.Count
				case mig.To:
					servers[i].Users += mig.Count
				}
			}
		}
		if step > 10 {
			log.Fatal("plan did not converge")
		}
	}
}
