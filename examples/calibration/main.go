// Calibration: the parameter-determination workflow of Section V-A on
// synthetic measurements. A known ground-truth profile generates noisy
// per-task samples (as a bot-loaded testbed would); the calibration
// pipeline fits the paper's approximation-function shapes through them
// with Levenberg–Marquardt; and the recovered profile is validated by
// comparing the thresholds both models predict.
//
// For calibration of the *live* shooter on your machine, run
// cmd/roiacalibrate instead.
//
// Run with: go run ./examples/calibration
package main

import (
	"fmt"
	"log"

	"roia/internal/calibrate"
	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rtf/monitor"
)

func main() {
	truth := params.RTFDemo()

	// Sample every parameter at 10..300 users (the paper connects up to
	// 300 bots), five repeats per level, 5 % multiplicative noise.
	var counts []int
	for n := 10; n <= 300; n += 10 {
		counts = append(counts, n)
	}
	samples := calibrate.Synthesize(truth, monitor.Tasks(), counts, 5, 0.05, 2024)
	fmt.Printf("synthesized %d noisy samples across %d load levels\n", len(samples), len(counts))

	res, err := calibrate.FromSamples("rtfdemo-recovered", samples, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfitted approximation functions (vs generating truth):")
	fmt.Printf("  %-10s %-34s %s\n", "param", "fitted", "truth")
	rows := []struct {
		name          string
		fitted, truth params.Curve
	}{
		{"t_ua_dser", res.Set.UADeser, truth.UADeser},
		{"t_ua", res.Set.UA, truth.UA},
		{"t_aoi", res.Set.AOI, truth.AOI},
		{"t_su", res.Set.SU, truth.SU},
		{"t_mig_ini", res.Set.MigIni, truth.MigIni},
		{"t_mig_rcv", res.Set.MigRcv, truth.MigRcv},
	}
	for _, r := range rows {
		fmt.Printf("  %-10s %-34s %s\n", r.name, r.fitted, r.truth)
	}

	// The decisive check: do both profiles predict the same thresholds?
	for _, pr := range []struct {
		name string
		set  *params.Set
	}{{"truth", truth}, {"recovered", res.Set}} {
		mdl, err := model.New(pr.set, params.UFirstPersonShooter, params.CDefault)
		if err != nil {
			log.Fatal(err)
		}
		nmax, _ := mdl.MaxUsers(1, 0)
		lmax, _ := mdl.MaxReplicas(0)
		fmt.Printf("\n%s model: n_max(1)=%d trigger=%d l_max=%d",
			pr.name, nmax, model.ReplicationTrigger(nmax, model.DefaultTriggerFraction), lmax)
	}
	fmt.Println()
}
