// RPG: the model applied to a different application class. Section III-C
// argues that an online role-playing game — explicit target selection,
// a fixed interaction set, tick durations tolerable up to 1.5 s — gets
// far higher thresholds from the same equations than a shooter. This
// example instantiates both profiles, contrasts their thresholds, and
// then runs a large simulated RPG session (3000 concurrent users) under
// the model-driven RTF-RMS.
//
// Run with: go run ./examples/rpg
package main

import (
	"fmt"
	"log"

	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
	"roia/internal/sim"
	"roia/internal/workload"
)

func main() {
	fps := params.RTFDemo()
	rpg := params.RPG()

	fpsModel, err := model.New(fps, params.UFirstPersonShooter, params.CDefault)
	if err != nil {
		log.Fatal(err)
	}
	rpgModel, err := model.New(rpg, params.URolePlaying, params.CDefault)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("same equations, different application class (Section III-C):")
	fmt.Printf("%-14s %8s %12s %8s\n", "profile", "U [ms]", "n_max(1)", "l_max")
	for _, row := range []struct {
		name string
		mdl  *model.Model
	}{{"fps (rtfdemo)", fpsModel}, {"rpg", rpgModel}} {
		nmax, _ := row.mdl.MaxUsers(1, 0)
		lmax, _ := row.mdl.MaxReplicas(0)
		fmt.Printf("%-14s %8.0f %12d %8d\n", row.name, row.mdl.U, nmax, lmax)
	}

	// A day-in-the-life RPG session: diurnal swing around 2000 users
	// peaking near 3000, with a login rush.
	trace := workload.Piecewise{Phases: []workload.Phase{
		{Until: 600, Trace: workload.Ramp{From: 0, To: 2000, Len: 600}},
		{Until: 2400, Trace: workload.Sine{Base: 2200, Amplitude: 800, Period: 900, Len: 1800}},
		{Until: 3000, Trace: workload.Ramp{From: 2200, To: 0, Len: 600}},
	}}

	// An RPG refreshes state far less often than a shooter: the tick
	// period equals the tolerated 1.5 s response time, so CPU load is the
	// tick duration relative to that budget.
	cluster, err := sim.NewCluster(sim.Config{
		Params: rpg, Model: rpgModel, TickMS: params.URolePlaying,
		Seed: 11, Join: sim.JoinRandom,
	})
	if err != nil {
		log.Fatal(err)
	}
	mgr := rms.NewManager(cluster, rms.Config{Model: rpgModel})
	res := sim.RunSession(cluster, mgr, trace)

	fmt.Printf("\nsimulated RPG session (%.0f s, peak %d users):\n", trace.Duration(), workload.Peak(trace))
	fmt.Printf("  threshold violations: %d\n", res.TotalViolations)
	fmt.Printf("  peak tick duration:   %.1f ms (U = %.0f ms)\n", res.PeakTickMS, rpgModel.U)
	fmt.Printf("  peak replicas:        %d\n", res.PeakReplicas)
	fmt.Printf("  user migrations:      %d\n", res.TotalMigrations)
	fmt.Printf("  provider bill:        %.2f\n", res.Cost)
	for t := 0; t < len(res.Stats); t += 300 {
		s := res.Stats[t]
		fmt.Printf("  t=%4.0fs users=%4d replicas=%d avgCPU=%5.1f%%\n",
			s.Time, s.Users, s.ReadyReplicas, s.AvgCPU)
	}
}
