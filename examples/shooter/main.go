// Shooter: a live, self-scaling multiplayer-shooter deployment in one
// process. Real RTF servers (tick loop, serialization, replication,
// migration) run over the in-process transport, bots generate load, and
// the model-driven RTF-RMS manager adds replicas, balances users with
// Listing-1 migrations and removes replicas as the load recedes — the
// paper's Fig. 8 scenario on live servers instead of the simulator.
//
// Run with: go run ./examples/shooter
package main

import (
	"fmt"
	"log"

	"roia/internal/bots"
	"roia/internal/game"
	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
)

const (
	ticksPerSecond = 25 // 40 ms ticks
	sessionSeconds = 60
	peakBots       = 120
)

func main() {
	net := transport.NewLoopback()
	defer net.Close()

	fl, err := fleet.New(fleet.Config{
		Network:    net,
		Zone:       1,
		Assignment: zone.NewAssignment(),
		NewApp:     func() server.Application { return game.New(game.DefaultConfig()) },
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fl.AddReplica(); err != nil {
		log.Fatal(err)
	}

	// The live fleet runs on this machine, not the paper's testbed, so a
	// demo-sized threshold replaces the paper's 40 ms: with U = 10 ms the
	// RTFDemo cost curves put n_max(1) near 80 users, so the 80 % trigger
	// fires well within this example's 120-bot peak. Calibrate a real
	// deployment with cmd/roiacalibrate instead.
	mdl, err := model.New(params.RTFDemo(), 10, params.CDefault)
	if err != nil {
		log.Fatal(err)
	}
	mgr := rms.NewManager(fl, rms.Config{Model: mdl, CooldownSec: 5, MaxReplicas: 4})

	driver := bots.NewFleetDriver(fl, net, 7)
	fmt.Println("time  bots  servers  users-per-server        actions")
	for sec := 0; sec < sessionSeconds; sec++ {
		// Triangle workload: ramp up to the peak, then back down.
		target := peakBots * sec * 2 / sessionSeconds
		if sec > sessionSeconds/2 {
			target = peakBots * 2 * (sessionSeconds - sec) / sessionSeconds
		}
		if err := driver.SetBots(target); err != nil {
			log.Fatal(err)
		}
		for t := 0; t < ticksPerSecond; t++ {
			driver.Step()
		}
		actions := mgr.Step(float64(sec))

		if sec%5 == 0 || len(actions) > 0 {
			fmt.Printf("%3ds  %4d  %7d  %-22s  %v\n",
				sec, len(driver.Bots()), len(fl.IDs()), perServer(fl), summarize(actions))
		}
	}
	fmt.Println("\nfinal server states:")
	for _, s := range fl.Servers() {
		fmt.Printf("  %-10s users=%-3d meanTick=%.3f ms draining=%v\n", s.ID, s.Users, s.TickMS, s.Draining)
	}
}

func perServer(fl *fleet.Fleet) string {
	out := ""
	for _, s := range fl.Servers() {
		if out != "" {
			out += "/"
		}
		out += fmt.Sprintf("%d", s.Users)
	}
	return out
}

func summarize(actions []rms.Action) []string {
	var out []string
	for _, a := range actions {
		if a.Kind == rms.ActMigrate && a.Err == nil {
			out = append(out, fmt.Sprintf("migrate %d %s→%s", a.Users, a.Src, a.Dst))
			continue
		}
		out = append(out, a.String())
	}
	return out
}
