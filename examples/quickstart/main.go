// Quickstart: instantiate the scalability model for an application profile
// and query every threshold the paper derives — predicted tick durations
// (Eq. 1/4), capacity limits (Eq. 2), the maximum useful replica count
// (Eq. 3) and migration budgets (Eq. 5).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"roia/internal/model"
	"roia/internal/params"
)

func main() {
	// 1. Pick a parameter profile. RTFDemo() is the calibrated
	//    first-person-shooter profile of the paper's case study; your own
	//    application's profile comes out of the calibration pipeline
	//    (cmd/roiacalibrate or internal/calibrate).
	profile := params.RTFDemo()

	// 2. Build the model: U is the tick-duration threshold the provider
	//    promises (40 ms = 25 updates/s for a shooter), c the minimum
	//    capacity improvement each additional replica must deliver.
	mdl, err := model.New(profile, params.UFirstPersonShooter, params.CDefault)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Predict tick durations (Eq. 1): how long is one real-time-loop
	//    iteration with n users on l replicas?
	fmt.Println("predicted tick duration, 200 users:")
	for _, l := range []int{1, 2, 4} {
		fmt.Printf("  %d replica(s): %6.2f ms\n", l, mdl.TickTime(l, 200, 0))
	}

	// 4. Capacity thresholds (Eq. 2) and the 80 % replication trigger.
	nmax, _ := mdl.MaxUsers(1, 0)
	trigger := model.ReplicationTrigger(nmax, model.DefaultTriggerFraction)
	fmt.Printf("\none server sustains %d users below %g ms; RTF-RMS adds a replica at %d\n",
		nmax, mdl.U, trigger)

	// 5. How far does replication scale (Eq. 3)?
	lmax, _ := mdl.MaxReplicas(0)
	fmt.Printf("replication stops paying off after l_max = %d replicas\n", lmax)
	fmt.Print("capacity per replica count:")
	for l, n := range mdl.MaxUsersSchedule(0, lmax) {
		fmt.Printf(" %d:%d", l+1, n)
	}
	fmt.Println()

	// 6. Migration budgets (Eq. 5): a loaded server (180 of 260 zone
	//    users) sheds load to a lighter replica without violating U.
	const n, srcUsers, dstUsers = 260, 180, 80
	ini := mdl.MaxMigrationsIni(2, n, 0, srcUsers)
	rcv := mdl.MaxMigrationsRcv(2, n, 0, dstUsers)
	fmt.Printf("\nmigration budgets at %d zone users: source may initiate %d/s, target may receive %d/s\n",
		n, ini, rcv)
	fmt.Printf("RTF-RMS migrates min{%d, %d} = %d users per second\n",
		ini, rcv, mdl.MigrationBudget(2, n, 0, srcUsers, dstUsers))
}
