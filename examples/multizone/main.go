// Multizone: the zoning distribution method at runtime. The world is
// split into two adjacent zones, each processed by its own replica fleet;
// bots wander with an eastward drift, so users continuously cross the
// boundary and are handed off between the zones' servers (avatar state,
// application state and the client connection all follow). A per-zone
// RTF-RMS coordinator scales each zone independently as its population
// shifts.
//
// Run with: go run ./examples/multizone
package main

import (
	"fmt"
	"log"
	"math/rand"

	"roia/internal/game"
	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
)

const (
	sessionSeconds = 40
	ticksPerSecond = 25
	nBots          = 110
)

func main() {
	net := transport.NewLoopback()
	defer net.Close()
	world := zone.GridWorld(2, 1, 1000, 500) // west: x<500, east: x>=500
	assignment := zone.NewAssignment()

	fleets := make(map[zone.ID]*fleet.Fleet, 2)
	for i, name := range []string{"west", "east"} {
		z := zone.ID(i + 1)
		fl, err := fleet.New(fleet.Config{
			Network:    net,
			Zone:       z,
			Assignment: assignment,
			NewApp:     func() server.Application { return game.New(game.DefaultConfig()) },
			World:      world,
			NamePrefix: name,
			IDBase:     uint16(i * 100),
			Seed:       int64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := fl.AddReplica(); err != nil {
			log.Fatal(err)
		}
		fleets[z] = fl
	}

	// Demo-scale threshold so the east zone replicates once the drift
	// piles users into it.
	mdl, err := model.New(params.RTFDemo(), 10, params.CDefault)
	if err != nil {
		log.Fatal(err)
	}
	coord := rms.NewCoordinator()
	for _, z := range []zone.ID{1, 2} {
		coord.Add(z, rms.NewManager(fleets[z], rms.Config{Model: mdl, CooldownSec: 5, MaxReplicas: 3}))
	}

	// Bots join the west zone and drift east.
	rng := rand.New(rand.NewSource(9))
	clients := make([]*client.Client, 0, nBots)
	for i := 0; i < nBots; i++ {
		node, err := net.Attach(fmt.Sprintf("bot-%d", i+1), 1<<14)
		if err != nil {
			log.Fatal(err)
		}
		cl := client.New(node, "west-1")
		pos := entity.Vec2{X: rng.Float64() * 400, Y: rng.Float64() * 500}
		if err := cl.Join(1, pos, node.ID()); err != nil {
			log.Fatal(err)
		}
		clients = append(clients, cl)
	}

	step := func() {
		for _, z := range coord.Zones() {
			fleets[z].TickAll()
		}
		for _, cl := range clients {
			cl.Poll()
			if !cl.Joined() {
				continue
			}
			//

			// Eastward drift with jitter: ~2.5 units/tick east.
			mv := &game.Move{DX: 1.5 + rng.Float64()*2, DY: (rng.Float64() - 0.5) * 3}
			_ = cl.SendInput(game.Commands.EncodeToBytes(mv))
		}
	}

	fmt.Println("time  west-users(east-users)  servers w/e  handoffs  actions")
	for sec := 0; sec < sessionSeconds; sec++ {
		for tick := 0; tick < ticksPerSecond; tick++ {
			step()
		}
		actions := coord.Step(float64(sec))
		var notable []string
		for _, z := range coord.Zones() {
			for _, a := range actions[z] {
				if a.Kind != rms.ActMigrate {
					notable = append(notable, fmt.Sprintf("zone%d:%s", z, a))
				}
			}
		}
		handoffs := 0
		for _, cl := range clients {
			handoffs += cl.Migrations()
		}
		if sec%4 == 0 || len(notable) > 0 {
			fmt.Printf("%3ds  %5d(%5d)  %d/%d  %8d  %v\n",
				sec,
				fleets[1].ZoneUsers(), fleets[2].ZoneUsers(),
				len(fleets[1].IDs()), len(fleets[2].IDs()),
				handoffs, notable)
		}
	}

	fmt.Println("\nfinal population: west =", fleets[1].ZoneUsers(), " east =", fleets[2].ZoneUsers())
	followed := 0
	for _, cl := range clients {
		followed += cl.Migrations()
	}
	fmt.Println("total handoffs followed by clients:", followed)
}
