// Package record persists session time series to CSV and loads them back,
// closing the operations loop around the simulator: a recorded production
// session (or a prior simulation) replays as a workload trace against a
// new resource-management policy, the standard way capacity changes are
// validated before rollout.
package record

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"roia/internal/sim"
	"roia/internal/workload"
)

// header is the canonical session CSV column layout.
var header = []string{
	"time", "users", "replicas", "ready_replicas",
	"avg_cpu", "max_tick_ms", "violations", "migrations",
}

// SaveSession writes the per-second statistics as CSV.
func SaveSession(w io.Writer, stats []sim.SecondStats) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("record: header: %w", err)
	}
	for _, s := range stats {
		row := []string{
			strconv.FormatFloat(s.Time, 'g', -1, 64),
			strconv.Itoa(s.Users),
			strconv.Itoa(s.Replicas),
			strconv.Itoa(s.ReadyReplicas),
			strconv.FormatFloat(s.AvgCPU, 'g', -1, 64),
			strconv.FormatFloat(s.MaxTickMS, 'g', -1, 64),
			strconv.Itoa(s.Violations),
			strconv.Itoa(s.Migrations),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("record: row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadSession parses a CSV written by SaveSession.
func LoadSession(r io.Reader) ([]sim.SecondStats, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("record: %w", err)
	}
	if len(rows) == 0 {
		return nil, errors.New("record: empty file")
	}
	if len(rows[0]) != len(header) || rows[0][0] != header[0] {
		return nil, fmt.Errorf("record: unexpected header %v", rows[0])
	}
	out := make([]sim.SecondStats, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("record: row %d has %d columns", i+2, len(row))
		}
		var s sim.SecondStats
		var errs [8]error
		s.Time, errs[0] = strconv.ParseFloat(row[0], 64)
		s.Users, errs[1] = strconv.Atoi(row[1])
		s.Replicas, errs[2] = strconv.Atoi(row[2])
		s.ReadyReplicas, errs[3] = strconv.Atoi(row[3])
		s.AvgCPU, errs[4] = strconv.ParseFloat(row[4], 64)
		s.MaxTickMS, errs[5] = strconv.ParseFloat(row[5], 64)
		s.Violations, errs[6] = strconv.Atoi(row[6])
		s.Migrations, errs[7] = strconv.Atoi(row[7])
		for _, e := range errs {
			if e != nil {
				return nil, fmt.Errorf("record: row %d: %w", i+2, e)
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// LoadTrace extracts the user-count series of a recorded session as a
// replayable workload trace.
func LoadTrace(r io.Reader) (workload.Replay, error) {
	stats, err := LoadSession(r)
	if err != nil {
		return workload.Replay{}, err
	}
	counts := make([]int, len(stats))
	for i, s := range stats {
		counts[i] = s.Users
	}
	return workload.Replay{Counts: counts}, nil
}
