package record

import (
	"bytes"
	"strings"
	"testing"

	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
	"roia/internal/sim"
	"roia/internal/workload"
)

func sampleStats() []sim.SecondStats {
	return []sim.SecondStats{
		{Time: 0, Users: 10, Replicas: 1, ReadyReplicas: 1, AvgCPU: 5.25, MaxTickMS: 2.1},
		{Time: 1, Users: 20, Replicas: 2, ReadyReplicas: 1, AvgCPU: 10.5, MaxTickMS: 4.25, Violations: 1, Migrations: 3},
		{Time: 2, Users: 15, Replicas: 2, ReadyReplicas: 2, AvgCPU: 7, MaxTickMS: 3},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveSession(&buf, sampleStats()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleStats()
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestLoadSessionErrors(t *testing.T) {
	if _, err := LoadSession(strings.NewReader("")); err == nil {
		t.Fatal("empty input loaded")
	}
	if _, err := LoadSession(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Fatal("wrong header loaded")
	}
	bad := "time,users,replicas,ready_replicas,avg_cpu,max_tick_ms,violations,migrations\n" +
		"x,1,1,1,1,1,0,0\n"
	if _, err := LoadSession(strings.NewReader(bad)); err == nil {
		t.Fatal("non-numeric row loaded")
	}
}

func TestLoadTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveSession(&buf, sampleStats()); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.UsersAt(0) != 10 || tr.UsersAt(1) != 20 || tr.UsersAt(2) != 15 {
		t.Fatalf("trace = %v", tr.Counts)
	}
	if tr.Duration() != 3 {
		t.Fatalf("duration = %g", tr.Duration())
	}
}

func TestRecordedSessionReplaysThroughNewPolicy(t *testing.T) {
	// Record a session under the model-driven manager, then replay its
	// user-count trace through the static baseline — the capacity
	// validation loop the package exists for.
	p := params.RTFDemo()
	mdl, err := model.New(p, params.UFirstPersonShooter, params.CDefault)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := sim.NewCluster(sim.Config{Params: p, Model: mdl, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	original := sim.RunSession(c1, rms.NewManager(c1, rms.Config{Model: mdl}),
		workload.Ramp{From: 0, To: 220, Len: 300})

	var buf bytes.Buffer
	if err := SaveSession(&buf, original.Stats); err != nil {
		t.Fatal(err)
	}
	trace, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	c2, err := sim.NewCluster(sim.Config{Params: p, Model: mdl, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	replayed := sim.RunSession(c2, &rms.StaticInterval{Cluster: c2, IntervalSec: 60, UpperMS: 32, LowerMS: 8}, trace)
	if len(replayed.Stats) != len(original.Stats) {
		t.Fatalf("replay length %d != original %d", len(replayed.Stats), len(original.Stats))
	}
	// The user populations must match second by second: same workload,
	// different policy.
	for i := range original.Stats {
		if replayed.Stats[i].Users != original.Stats[i].Users {
			t.Fatalf("user divergence at %d: %d vs %d",
				i, replayed.Stats[i].Users, original.Stats[i].Users)
		}
	}
}
