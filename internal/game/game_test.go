package game

import (
	"math/rand"
	"strings"
	"testing"

	"roia/internal/rtf/entity"
	"roia/internal/rtf/server"
)

func testEnv() *server.Env {
	return &server.Env{
		ServerID: "s1",
		Store:    entity.NewStore(),
		Rand:     rand.New(rand.NewSource(1)),
	}
}

func TestCommandRoundTrips(t *testing.T) {
	mv, err := Commands.Decode(Commands.EncodeToBytes(&Move{DX: 1.5, DY: -2.5}))
	if err != nil || mv.(*Move).DX != 1.5 || mv.(*Move).DY != -2.5 {
		t.Fatalf("move round trip: %v %+v", err, mv)
	}
	atk, err := Commands.Decode(Commands.EncodeToBytes(&Attack{DirX: 0, DirY: 1}))
	if err != nil || atk.(*Attack).DirY != 1 {
		t.Fatalf("attack round trip: %v %+v", err, atk)
	}
	dmg, err := Commands.Decode(Commands.EncodeToBytes(&Damage{Amount: 10}))
	if err != nil || dmg.(*Damage).Amount != 10 {
		t.Fatalf("damage round trip: %v %+v", err, dmg)
	}
}

func TestSpawnAvatarClampsAndRegisters(t *testing.T) {
	g := New(DefaultConfig())
	env := testEnv()
	av := g.SpawnAvatar(env, 7, entity.Vec2{X: -50, Y: 2000}, 1)
	if av.Pos != (entity.Vec2{X: 0, Y: 1000}) {
		t.Fatalf("spawn pos = %v, want clamped", av.Pos)
	}
	if av.Health != 100 {
		t.Fatalf("spawn health = %d", av.Health)
	}
	if _, _, ok := g.Score(7); !ok {
		t.Fatal("user state not registered at spawn")
	}
}

func TestApplyInputRejectsGarbage(t *testing.T) {
	g := New(DefaultConfig())
	env := testEnv()
	actor := &entity.Entity{ID: 1}
	if _, err := g.ApplyInput(env, actor, []byte{0xFF}); err == nil {
		t.Fatal("garbage input accepted")
	}
	// A Damage command is not a valid *user* input.
	if _, err := g.ApplyInput(env, actor, Commands.EncodeToBytes(&Damage{Amount: 5})); err == nil {
		t.Fatal("damage accepted as user input")
	}
}

func TestAttackHitGeometry(t *testing.T) {
	g := New(DefaultConfig()) // range 60, width 8
	env := testEnv()
	actor := &entity.Entity{ID: 1, Kind: entity.Avatar, Pos: entity.Vec2{X: 100, Y: 100}, Owner: "s1"}
	env.Store.Put(actor)
	inRange := &entity.Entity{ID: 2, Kind: entity.Avatar, Pos: entity.Vec2{X: 150, Y: 103}, Owner: "s1"}
	behind := &entity.Entity{ID: 3, Kind: entity.Avatar, Pos: entity.Vec2{X: 50, Y: 100}, Owner: "s1"}
	tooFar := &entity.Entity{ID: 4, Kind: entity.Avatar, Pos: entity.Vec2{X: 170, Y: 100}, Owner: "s1"}
	offAxis := &entity.Entity{ID: 5, Kind: entity.Avatar, Pos: entity.Vec2{X: 150, Y: 120}, Owner: "s1"}
	npc := &entity.Entity{ID: 6, Kind: entity.NPC, Pos: entity.Vec2{X: 150, Y: 100}, Owner: "s1"}
	for _, e := range []*entity.Entity{inRange, behind, tooFar, offAxis, npc} {
		env.Store.Put(e)
	}
	fwds, err := g.ApplyInput(env, actor, Commands.EncodeToBytes(&Attack{DirX: 1, DirY: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if len(fwds) != 1 || fwds[0].Target != 2 {
		t.Fatalf("hits = %+v, want only entity 2", fwds)
	}
}

func TestAttackZeroDirectionIsNoop(t *testing.T) {
	g := New(DefaultConfig())
	env := testEnv()
	actor := &entity.Entity{ID: 1, Kind: entity.Avatar, Owner: "s1"}
	env.Store.Put(actor)
	fwds, err := g.ApplyInput(env, actor, Commands.EncodeToBytes(&Attack{}))
	if err != nil || len(fwds) != 0 {
		t.Fatalf("zero-direction attack: %v %v", fwds, err)
	}
}

func TestApplyForwardedDamageAndRespawn(t *testing.T) {
	g := New(DefaultConfig())
	env := testEnv()
	victim := &entity.Entity{ID: 2, Kind: entity.Avatar, Pos: entity.Vec2{X: 1, Y: 1}, Health: 15, Owner: "s1"}
	g.ApplyUserState(env, 2, nil) // ensure state exists
	payload := Commands.EncodeToBytes(&Damage{Amount: 10})

	if err := g.ApplyForwarded(env, 1, victim, payload); err != nil {
		t.Fatal(err)
	}
	if victim.Health != 5 {
		t.Fatalf("health = %d, want 5", victim.Health)
	}
	if err := g.ApplyForwarded(env, 1, victim, payload); err != nil {
		t.Fatal(err)
	}
	if victim.Health != 100 {
		t.Fatalf("health = %d, want respawned 100", victim.Health)
	}
	if victim.Pos == (entity.Vec2{X: 1, Y: 1}) {
		t.Fatal("respawn did not relocate")
	}
	ev := string(g.DrainEvents(env, 2))
	if !strings.Contains(ev, "hit") || !strings.Contains(ev, "respawned") {
		t.Fatalf("events = %q", ev)
	}
	// Drained: second call returns nothing.
	if g.DrainEvents(env, 2) != nil {
		t.Fatal("events not cleared")
	}
}

func TestApplyForwardedRejectsNonDamage(t *testing.T) {
	g := New(DefaultConfig())
	env := testEnv()
	victim := &entity.Entity{ID: 2, Health: 100}
	if err := g.ApplyForwarded(env, 1, victim, Commands.EncodeToBytes(&Move{DX: 1})); err == nil {
		t.Fatal("move accepted as forwarded input")
	}
	if err := g.ApplyForwarded(env, 1, victim, []byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted as forwarded input")
	}
}

func TestUserStateMigrationRoundTrip(t *testing.T) {
	g1 := New(DefaultConfig())
	g2 := New(DefaultConfig())
	env := testEnv()
	g1.SpawnAvatar(env, 9, entity.Vec2{}, 1)
	// Accumulate some state.
	actor := &entity.Entity{ID: 9, Kind: entity.Avatar, Pos: entity.Vec2{X: 10, Y: 10}, Owner: "s1"}
	env.Store.Put(actor)
	env.Store.Put(&entity.Entity{ID: 10, Kind: entity.Avatar, Pos: entity.Vec2{X: 20, Y: 10}, Owner: "s1"})
	if _, err := g1.ApplyInput(env, actor, Commands.EncodeToBytes(&Attack{DirX: 1, DirY: 0})); err != nil {
		t.Fatal(err)
	}
	kills, _, _ := g1.Score(9)
	blob := g1.EncodeUserState(env, 9)
	if _, _, ok := g1.Score(9); ok {
		t.Fatal("source kept user state after encode")
	}
	g2.ApplyUserState(env, 9, blob)
	gotKills, _, ok := g2.Score(9)
	if !ok || gotKills != kills {
		t.Fatalf("migrated kills = %d ok=%v, want %d", gotKills, ok, kills)
	}
}

func TestApplyUserStateGarbageFallsBack(t *testing.T) {
	g := New(DefaultConfig())
	env := testEnv()
	g.ApplyUserState(env, 3, []byte{1}) // truncated
	if _, _, ok := g.Score(3); !ok {
		t.Fatal("garbage state did not fall back to fresh state")
	}
}

func TestUpdateNPCStaysInBounds(t *testing.T) {
	g := New(DefaultConfig())
	env := testEnv()
	npc := &entity.Entity{ID: 1, Kind: entity.NPC, Pos: entity.Vec2{X: 0, Y: 0}}
	for i := 0; i < 500; i++ {
		g.UpdateNPC(env, npc)
		if npc.Pos.X < 0 || npc.Pos.X > 1000 || npc.Pos.Y < 0 || npc.Pos.Y > 1000 {
			t.Fatalf("NPC escaped bounds: %v", npc.Pos)
		}
	}
}

func TestNPCAttacksNearbyAvatar(t *testing.T) {
	g := New(DefaultConfig()) // aggro 40, prob 0.2
	env := testEnv()
	npc := &entity.Entity{ID: 1, Kind: entity.NPC, Pos: entity.Vec2{X: 500, Y: 500}, Owner: "s1"}
	near := &entity.Entity{ID: 2, Kind: entity.Avatar, Pos: entity.Vec2{X: 510, Y: 500}, Owner: "s1"}
	far := &entity.Entity{ID: 3, Kind: entity.Avatar, Pos: entity.Vec2{X: 900, Y: 900}, Owner: "s1"}
	env.Store.Put(npc)
	env.Store.Put(near)
	env.Store.Put(far)
	attacks := 0
	for i := 0; i < 200; i++ {
		npc.Pos = entity.Vec2{X: 500, Y: 500} // pin position for the test
		for _, fw := range g.UpdateNPC(env, npc) {
			if fw.Target != near.ID {
				t.Fatalf("NPC attacked %d, want nearest avatar %d", fw.Target, near.ID)
			}
			msg, err := Commands.Decode(fw.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if msg.(*Damage).Amount != g.cfg.NPCDamage {
				t.Fatalf("damage = %d", msg.(*Damage).Amount)
			}
			attacks++
		}
	}
	if attacks == 0 {
		t.Fatal("NPC never attacked an avatar in range")
	}
	if attacks == 200 {
		t.Fatal("NPC attacked every tick despite probability")
	}
}

func TestNPCAttacksDisabledByConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NPCAggroRange = 0
	g := New(cfg)
	env := testEnv()
	npc := &entity.Entity{ID: 1, Kind: entity.NPC, Pos: entity.Vec2{X: 500, Y: 500}}
	env.Store.Put(&entity.Entity{ID: 2, Kind: entity.Avatar, Pos: entity.Vec2{X: 501, Y: 500}})
	for i := 0; i < 100; i++ {
		if fwds := g.UpdateNPC(env, npc); len(fwds) != 0 {
			t.Fatal("disabled NPC attacked")
		}
	}
}

func TestNewFallsBackOnBadConfig(t *testing.T) {
	g := New(Config{WorldMin: 10, WorldMax: 5})
	if g.cfg.WorldMax <= g.cfg.WorldMin {
		t.Fatal("bad config not replaced by defaults")
	}
}
