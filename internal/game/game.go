// Package game implements the case-study application: a first-person
// shooter with the computational profile of the paper's RTFDemo. It plugs
// into the RTF server as its Application callback.
//
// The game reproduces the cost structure Section V-A measures:
//
//   - Each tick a user may issue a move command, an attack command or both.
//   - Attack processing iterates over all users to determine who is hit, so
//     input-application time (t_ua) grows superlinearly with the user count.
//   - Interest management uses the Euclidean Distance Algorithm (package
//     aoi), giving quadratic t_aoi.
//   - Attacks on entities active on other replicas become forwarded inputs.
package game

import (
	"errors"
	"fmt"
	"sync"

	"roia/internal/rtf/entity"
	"roia/internal/rtf/server"
	"roia/internal/rtf/wire"
)

// Command kinds of the game protocol (application payloads inside
// proto.Input / proto.Forwarded envelopes).
const (
	KindMove wire.Kind = iota + 100
	KindAttack
	KindDamage
)

// Commands decodes every game command.
var Commands = wire.NewRegistry(
	func() wire.Message { return &Move{} },
	func() wire.Message { return &Attack{} },
	func() wire.Message { return &Damage{} },
)

// Move displaces the avatar by (DX, DY), clamped to the world bounds and
// the per-tick speed limit.
type Move struct {
	DX, DY float64
}

// WireKind implements wire.Message.
func (*Move) WireKind() wire.Kind { return KindMove }

// MarshalWire implements wire.Message.
func (m *Move) MarshalWire(w *wire.Writer) {
	w.Float64(m.DX)
	w.Float64(m.DY)
}

// UnmarshalWire implements wire.Message.
func (m *Move) UnmarshalWire(r *wire.Reader) error {
	m.DX = r.Float64()
	m.DY = r.Float64()
	return r.Err()
}

// Attack fires a shot in direction (DirX, DirY) from the avatar's
// position. Hit determination scans every user.
type Attack struct {
	DirX, DirY float64
}

// WireKind implements wire.Message.
func (*Attack) WireKind() wire.Kind { return KindAttack }

// MarshalWire implements wire.Message.
func (m *Attack) MarshalWire(w *wire.Writer) {
	w.Float64(m.DirX)
	w.Float64(m.DirY)
}

// UnmarshalWire implements wire.Message.
func (m *Attack) UnmarshalWire(r *wire.Reader) error {
	m.DirX = r.Float64()
	m.DirY = r.Float64()
	return r.Err()
}

// Damage is the effect of a successful attack, applied on the replica
// owning the victim (the forwarded-input payload of the model).
type Damage struct {
	Amount int32
}

// WireKind implements wire.Message.
func (*Damage) WireKind() wire.Kind { return KindDamage }

// MarshalWire implements wire.Message.
func (m *Damage) MarshalWire(w *wire.Writer) { w.Varint(int64(m.Amount)) }

// UnmarshalWire implements wire.Message.
func (m *Damage) UnmarshalWire(r *wire.Reader) error {
	m.Amount = int32(r.Varint())
	return r.Err()
}

// Config tunes the shooter.
type Config struct {
	// WorldMin/WorldMax bound avatar positions.
	WorldMin, WorldMax float64
	// MoveSpeed caps per-tick displacement length (per axis).
	MoveSpeed float64
	// AttackRange is the hit-scan reach.
	AttackRange float64
	// AttackWidth is the perpendicular tolerance of a hit.
	AttackWidth float64
	// AttackDamage is the health lost per hit.
	AttackDamage int32
	// SpawnHealth is the avatar health at spawn and respawn.
	SpawnHealth int32
	// NPCSpeed caps per-tick NPC wandering.
	NPCSpeed float64
	// NPCAggroRange is the distance within which an NPC notices and
	// attacks avatars; 0 disables NPC attacks.
	NPCAggroRange float64
	// NPCAttackProb is the per-tick probability that an NPC with a target
	// in range attacks it.
	NPCAttackProb float64
	// NPCDamage is the health an NPC attack removes.
	NPCDamage int32
}

// DefaultConfig returns the tuning used by the examples and experiments.
func DefaultConfig() Config {
	return Config{
		WorldMin: 0, WorldMax: 1000,
		MoveSpeed: 5, AttackRange: 60, AttackWidth: 8,
		AttackDamage: 10, SpawnHealth: 100, NPCSpeed: 2,
		NPCAggroRange: 40, NPCAttackProb: 0.2, NPCDamage: 5,
	}
}

// userState is the per-avatar application state migrated between servers.
type userState struct {
	Kills  uint32
	Deaths uint32
	Ammo   int32
}

// Game is the shooter's server-side logic. One Game instance serves one
// RTF server. It is driven entirely from the server's tick goroutine, but
// a mutex guards the externally-readable score state.
type Game struct {
	cfg Config

	mu     sync.Mutex
	states map[entity.ID]*userState
	events map[entity.ID][]byte
}

// New returns a Game with the given tuning.
func New(cfg Config) *Game {
	if cfg.WorldMax <= cfg.WorldMin {
		cfg = DefaultConfig()
	}
	return &Game{
		cfg:    cfg,
		states: make(map[entity.ID]*userState),
		events: make(map[entity.ID][]byte),
	}
}

// Compile-time check: Game implements the RTF application interface.
var _ server.Application = (*Game)(nil)

// SpawnAvatar implements server.Application.
func (g *Game) SpawnAvatar(env *server.Env, id entity.ID, pos entity.Vec2, zoneID uint32) *entity.Entity {
	g.mu.Lock()
	g.states[id] = &userState{Ammo: 100}
	g.mu.Unlock()
	return &entity.Entity{
		ID: id, Kind: entity.Avatar,
		Pos:    pos.Clamp(g.cfg.WorldMin, g.cfg.WorldMax),
		Health: g.cfg.SpawnHealth, Zone: zoneID,
	}
}

// ApplyInput implements server.Application: move and attack commands.
func (g *Game) ApplyInput(env *server.Env, actor *entity.Entity, payload []byte) ([]server.Forward, error) {
	msg, err := Commands.Decode(payload)
	if err != nil {
		return nil, fmt.Errorf("game: bad input: %w", err)
	}
	switch cmd := msg.(type) {
	case *Move:
		return nil, g.applyMove(actor, cmd)
	case *Attack:
		return g.applyAttack(env, actor, cmd), nil
	default:
		return nil, errors.New("game: command not valid as user input")
	}
}

func (g *Game) applyMove(actor *entity.Entity, mv *Move) error {
	clampStep := func(d float64) float64 {
		if d > g.cfg.MoveSpeed {
			return g.cfg.MoveSpeed
		}
		if d < -g.cfg.MoveSpeed {
			return -g.cfg.MoveSpeed
		}
		return d
	}
	actor.Pos = actor.Pos.Add(entity.Vec2{X: clampStep(mv.DX), Y: clampStep(mv.DY)}).
		Clamp(g.cfg.WorldMin, g.cfg.WorldMax)
	return nil
}

// applyAttack performs the hit scan. Following the paper, it iterates over
// ALL users (active and shadow — "users cannot differentiate between
// active and shadow entities, both are attacked with equal frequency") to
// determine the victims, which is what makes t_ua superlinear.
func (g *Game) applyAttack(env *server.Env, actor *entity.Entity, atk *Attack) []server.Forward {
	g.mu.Lock()
	if st := g.states[actor.ID]; st != nil {
		if st.Ammo <= 0 {
			st.Ammo = 100 // auto-reload keeps bots firing
		}
		st.Ammo--
	}
	g.mu.Unlock()

	dirLen := (entity.Vec2{X: atk.DirX, Y: atk.DirY}).Dist(entity.Vec2{})
	if dirLen == 0 {
		return nil
	}
	nx, ny := atk.DirX/dirLen, atk.DirY/dirLen

	var fwds []server.Forward
	payload := Commands.EncodeToBytes(&Damage{Amount: g.cfg.AttackDamage})
	for _, cand := range env.Store.All() {
		if cand.ID == actor.ID || cand.Kind != entity.Avatar {
			continue
		}
		rel := cand.Pos.Sub(actor.Pos)
		along := rel.X*nx + rel.Y*ny
		if along < 0 || along > g.cfg.AttackRange {
			continue
		}
		across := rel.X*ny - rel.Y*nx
		if across < 0 {
			across = -across
		}
		if across > g.cfg.AttackWidth {
			continue
		}
		fwds = append(fwds, server.Forward{Target: cand.ID, Payload: payload})
	}
	if len(fwds) > 0 {
		g.mu.Lock()
		if st := g.states[actor.ID]; st != nil {
			st.Kills += uint32(len(fwds)) // simplistic: every hit scores
		}
		g.mu.Unlock()
	}
	return fwds
}

// ApplyForwarded implements server.Application: damage delivery.
func (g *Game) ApplyForwarded(env *server.Env, actor entity.ID, target *entity.Entity, payload []byte) error {
	msg, err := Commands.Decode(payload)
	if err != nil {
		return fmt.Errorf("game: bad forwarded input: %w", err)
	}
	dmg, ok := msg.(*Damage)
	if !ok {
		return errors.New("game: command not valid as forwarded input")
	}
	target.Health -= dmg.Amount
	g.queueEvent(target.ID, fmt.Sprintf("hit by %d for %d", actor, dmg.Amount))
	if target.Health <= 0 {
		// Respawn: reset health, relocate deterministically.
		target.Health = g.cfg.SpawnHealth
		span := g.cfg.WorldMax - g.cfg.WorldMin
		target.Pos = entity.Vec2{
			X: g.cfg.WorldMin + env.Rand.Float64()*span,
			Y: g.cfg.WorldMin + env.Rand.Float64()*span,
		}
		g.mu.Lock()
		if st := g.states[target.ID]; st != nil {
			st.Deaths++
		}
		g.mu.Unlock()
		g.queueEvent(target.ID, "respawned")
	}
	return nil
}

// UpdateNPC implements server.Application: NPCs wander deterministically
// and attack avatars that stray into their aggro range. The target scan
// iterates over all entities, so NPC update time grows with the user
// count — the t_npc(n, m) dependence the model carries.
func (g *Game) UpdateNPC(env *server.Env, npc *entity.Entity) []server.Forward {
	npc.Pos = npc.Pos.Add(entity.Vec2{
		X: (env.Rand.Float64()*2 - 1) * g.cfg.NPCSpeed,
		Y: (env.Rand.Float64()*2 - 1) * g.cfg.NPCSpeed,
	}).Clamp(g.cfg.WorldMin, g.cfg.WorldMax)

	if g.cfg.NPCAggroRange <= 0 || env.Rand.Float64() >= g.cfg.NPCAttackProb {
		return nil
	}
	r2 := g.cfg.NPCAggroRange * g.cfg.NPCAggroRange
	var victim *entity.Entity
	best := r2
	for _, cand := range env.Store.All() {
		if cand.Kind != entity.Avatar {
			continue
		}
		if d2 := npc.Pos.Dist2(cand.Pos); d2 <= best {
			victim, best = cand, d2
		}
	}
	if victim == nil {
		return nil
	}
	return []server.Forward{{
		Target:  victim.ID,
		Payload: Commands.EncodeToBytes(&Damage{Amount: g.cfg.NPCDamage}),
	}}
}

func (g *Game) queueEvent(id entity.ID, ev string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	buf := g.events[id]
	if len(buf) > 0 {
		buf = append(buf, ';')
	}
	g.events[id] = append(buf, ev...)
}

// DrainEvents implements server.Application.
func (g *Game) DrainEvents(env *server.Env, avatar entity.ID) []byte {
	g.mu.Lock()
	defer g.mu.Unlock()
	ev := g.events[avatar]
	if ev != nil {
		delete(g.events, avatar)
	}
	return ev
}

// EncodeUserState implements server.Application: the migration payload.
func (g *Game) EncodeUserState(env *server.Env, avatar entity.ID) []byte {
	g.mu.Lock()
	st := g.states[avatar]
	if st == nil {
		st = &userState{}
	}
	cp := *st
	delete(g.states, avatar) // responsibility leaves this server
	g.mu.Unlock()

	w := wire.NewWriter(16)
	w.Uint32(cp.Kills)
	w.Uint32(cp.Deaths)
	w.Varint(int64(cp.Ammo))
	return append([]byte(nil), w.Bytes()...)
}

// ApplyUserState implements server.Application.
func (g *Game) ApplyUserState(env *server.Env, avatar entity.ID, data []byte) {
	r := wire.NewReader(data)
	st := &userState{
		Kills:  r.Uint32(),
		Deaths: r.Uint32(),
		Ammo:   int32(r.Varint()),
	}
	if r.Err() != nil {
		st = &userState{Ammo: 100}
	}
	g.mu.Lock()
	g.states[avatar] = st
	g.mu.Unlock()
}

// Score reports an avatar's (kills, deaths) for tests and examples.
func (g *Game) Score(avatar entity.ID) (kills, deaths uint32, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	st, ok := g.states[avatar]
	if !ok {
		return 0, 0, false
	}
	return st.Kills, st.Deaths, true
}
