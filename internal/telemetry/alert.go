package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// AlertState is the lifecycle position of one alert instance. Conditions
// move inactive → pending on their first true evaluation, pending → firing
// after holding for the rule's PendingFor further evaluations, and firing →
// resolved (back to inactive) when the condition clears — the Prometheus
// alerting lifecycle, applied to the scalability model's thresholds.
type AlertState int

// The alert states.
const (
	AlertInactive AlertState = iota
	AlertPending
	AlertFiring
)

// String implements fmt.Stringer.
func (s AlertState) String() string {
	switch s {
	case AlertInactive:
		return "inactive"
	case AlertPending:
		return "pending"
	case AlertFiring:
		return "firing"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// RuleResult is one active instance of a rule at evaluation time: the
// measured value, the threshold in force, and the instance key (e.g. the
// replica ID for per-replica rules; empty for fleet-wide rules). Rules
// return only active instances — an instance that stops appearing resolves.
type RuleResult struct {
	Key       string
	Value     float64
	Threshold float64
	Detail    string
}

// Rule is one threshold condition evaluated against live state.
type Rule struct {
	// Name identifies the rule in events and metrics.
	Name string
	// PendingFor is how many consecutive evaluations beyond the first the
	// condition must hold before the instance fires (default 1: first true
	// evaluation → pending, still true next evaluation → firing).
	PendingFor int
	// Eval returns the rule's currently active instances.
	Eval func(now float64) []RuleResult
}

// AlertEvent is one state transition of an alert instance, emitted as JSONL
// in the same style as the RMS decision audit. Value and Threshold record
// the measurement and the model threshold in force at the transition (for
// resolved events: at the last active evaluation).
type AlertEvent struct {
	// Time is the evaluation timestamp (session seconds, the control-loop
	// clock the RMS audit uses).
	Time float64 `json:"time"`
	// Rule and Key identify the alert instance.
	Rule string `json:"rule"`
	Key  string `json:"key,omitempty"`
	// State is the state entered: "pending", "firing" or "resolved".
	State     string  `json:"state"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Detail    string  `json:"detail,omitempty"`
}

// AlertSink consumes alert transitions. Implementations: AlertLog (JSONL)
// and MemoryAlerts (tests).
type AlertSink interface {
	Alert(AlertEvent)
}

// AlertLog streams alert transitions as JSONL to a writer. It is safe for
// concurrent use; encoding errors are sticky and reported by Err.
type AlertLog struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   int
	err error
}

// NewAlertLog returns an alert log writing one JSON event per line to w.
func NewAlertLog(w io.Writer) *AlertLog {
	return &AlertLog{enc: json.NewEncoder(w)}
}

// Alert implements AlertSink.
func (l *AlertLog) Alert(e AlertEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if err := l.enc.Encode(e); err != nil {
		l.err = err
		return
	}
	l.n++
}

// Events reports how many events were written.
func (l *AlertLog) Events() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Err returns the first encoding error, if any.
func (l *AlertLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// memorySinkCap bounds every in-memory telemetry sink: a long-horizon run
// must not leak through its own observability buffers, so the sinks keep
// the newest entries and count what they evict.
const memorySinkCap = 4096

// MemoryAlerts collects alert transitions in memory, keeping the newest
// memorySinkCap events.
type MemoryAlerts struct {
	mu      sync.Mutex
	events  []AlertEvent
	dropped uint64
}

// Alert implements AlertSink.
func (s *MemoryAlerts) Alert(e AlertEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) >= memorySinkCap {
		copy(s.events, s.events[1:])
		s.events[len(s.events)-1] = e
		s.dropped++
		return
	}
	s.events = append(s.events, e)
}

// Snapshot returns a copy of the collected events.
func (s *MemoryAlerts) Snapshot() []AlertEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]AlertEvent(nil), s.events...)
}

// Dropped reports how many old events the cap evicted.
func (s *MemoryAlerts) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// ActiveAlert is a point-in-time view of one pending or firing instance.
type ActiveAlert struct {
	Rule      string
	Key       string
	State     AlertState
	Value     float64
	Threshold float64
	Detail    string
	// Since is the evaluation time at which the instance became pending.
	Since float64
}

// alertInstance is the tracked state of one (rule, key) pair.
type alertInstance struct {
	state     AlertState
	trueEvals int
	since     float64
	last      RuleResult
}

// AlertEngine evaluates rules against live state and drives the alert state
// machine, emitting one AlertEvent per transition. It is safe for
// concurrent use: the control loop evaluates while HTTP handlers read.
type AlertEngine struct {
	mu          sync.Mutex
	rules       []Rule
	sink        AlertSink
	states      map[string]*alertInstance
	transitions uint64
}

// NewAlertEngine returns an engine over the given rules. sink may be nil
// (state machine and metrics only, no event log).
func NewAlertEngine(sink AlertSink, rules ...Rule) *AlertEngine {
	return &AlertEngine{rules: rules, sink: sink, states: make(map[string]*alertInstance)}
}

func instanceKey(rule, key string) string { return rule + "\x00" + key }

// Eval runs one evaluation pass at the given control-loop time. Call it
// once per control interval (the same cadence as rms.Manager.Step).
func (e *AlertEngine) Eval(now float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rule := range e.rules {
		pendingFor := rule.PendingFor
		if pendingFor <= 0 {
			pendingFor = 1
		}
		results := rule.Eval(now)
		active := make(map[string]bool, len(results))
		for _, res := range results {
			active[res.Key] = true
			k := instanceKey(rule.Name, res.Key)
			inst := e.states[k]
			if inst == nil {
				inst = &alertInstance{}
				e.states[k] = inst
			}
			inst.last = res
			inst.trueEvals++
			switch inst.state {
			case AlertInactive:
				inst.state = AlertPending
				inst.trueEvals = 1
				inst.since = now
				e.emit(now, rule.Name, res, AlertPending)
			case AlertPending:
				if inst.trueEvals > pendingFor {
					inst.state = AlertFiring
					e.emit(now, rule.Name, res, AlertFiring)
				}
			case AlertFiring:
				// Still firing; transitions only are logged.
			}
		}
		// Instances that stopped appearing resolve (firing) or cancel
		// silently (pending that never fired — logging those would make
		// every threshold graze a spurious resolved line). Collected and
		// sorted before emitting: the JSONL event stream is diffed and
		// deduped downstream, so resolved lines must not come out in map
		// order when several instances resolve on the same evaluation.
		prefix := rule.Name + "\x00"
		var gone []string
		for k := range e.states {
			if strings.HasPrefix(k, prefix) && !active[strings.TrimPrefix(k, prefix)] {
				gone = append(gone, k)
			}
		}
		sort.Strings(gone)
		for _, k := range gone {
			inst := e.states[k]
			if inst.state == AlertFiring {
				e.emitEvent(AlertEvent{
					Time: now, Rule: rule.Name, Key: inst.last.Key, State: "resolved",
					Value: inst.last.Value, Threshold: inst.last.Threshold, Detail: inst.last.Detail,
				})
			}
			delete(e.states, k)
		}
	}
}

func (e *AlertEngine) emit(now float64, rule string, res RuleResult, st AlertState) {
	e.emitEvent(AlertEvent{
		Time: now, Rule: rule, Key: res.Key, State: st.String(),
		Value: res.Value, Threshold: res.Threshold, Detail: res.Detail,
	})
}

func (e *AlertEngine) emitEvent(ev AlertEvent) {
	e.transitions++
	if e.sink != nil {
		e.sink.Alert(ev)
	}
}

// Active returns the current pending and firing instances, ordered by rule
// then key.
func (e *AlertEngine) Active() []ActiveAlert {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ActiveAlert, 0, len(e.states))
	for k, inst := range e.states {
		rule, key, _ := strings.Cut(k, "\x00")
		out = append(out, ActiveAlert{
			Rule: rule, Key: key, State: inst.state,
			Value: inst.last.Value, Threshold: inst.last.Threshold,
			Detail: inst.last.Detail, Since: inst.since,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Transitions reports how many state transitions were emitted.
func (e *AlertEngine) Transitions() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.transitions
}

// WriteMetrics writes the engine's state in the Prometheus text exposition
// format.
//
// Exported families:
//
//	roia_alert_state{rule=...,key=...}  1 = pending, 2 = firing
//	roia_alerts_pending                 count of pending instances
//	roia_alerts_firing                  count of firing instances
//	roia_alert_transitions_total        lifecycle transitions emitted
func (e *AlertEngine) WriteMetrics(w io.Writer, labels string) error {
	active := e.Active()
	e.mu.Lock()
	transitions := e.transitions
	e.mu.Unlock()
	pending, firing := 0, 0
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE roia_alert_state gauge\n")
	for _, a := range active {
		switch a.State {
		case AlertPending:
			pending++
		case AlertFiring:
			firing++
		}
		extra := fmt.Sprintf("rule=%q,key=%q", a.Rule, a.Key)
		fmt.Fprintf(&b, "roia_alert_state%s %d\n", FormatLabels(labels, extra), int(a.State))
	}
	lbl := FormatLabels(labels, "")
	fmt.Fprintf(&b, "# TYPE roia_alerts_pending gauge\nroia_alerts_pending%s %d\n", lbl, pending)
	fmt.Fprintf(&b, "# TYPE roia_alerts_firing gauge\nroia_alerts_firing%s %d\n", lbl, firing)
	fmt.Fprintf(&b, "# TYPE roia_alert_transitions_total counter\nroia_alert_transitions_total%s %d\n", lbl, transitions)
	_, err := io.WriteString(w, b.String())
	return err
}
