package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Span is one timed section of a tick (one of the paper's t_* tasks, or an
// application-defined section). StartMS is the offset from the start of the
// tick, so spans compose into a flame chart without absolute clocks.
type Span struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
	// Items is the task's per-tick item count (inputs deserialized, users
	// updated, ...), carried into the trace viewer's args pane.
	Items int `json:"items,omitempty"`
}

// TickTrace is the span decomposition of one real-time-loop iteration.
type TickTrace struct {
	// Tick is the server's tick counter.
	Tick uint64 `json:"tick"`
	// StartUnixMicro is the tick's wall-clock start in Unix microseconds
	// (the trace_event timebase).
	StartUnixMicro int64 `json:"start_unix_us"`
	// WallMS is the full wall-clock duration of the tick, which may exceed
	// the sum of the span durations (untimed bookkeeping).
	WallMS float64 `json:"wall_ms"`
	// Spans are the per-task sections, in execution order.
	Spans []Span `json:"spans"`
}

// TotalMS returns the sum of the span durations.
func (t TickTrace) TotalMS() float64 {
	sum := 0.0
	for _, s := range t.Spans {
		sum += s.DurMS
	}
	return sum
}

// DefaultTraceCapacity is the tracer ring size used when a non-positive
// capacity is requested: ~82 s of history at 25 Hz.
const DefaultTraceCapacity = 2048

// Tracer records tick traces into a bounded ring buffer. It is safe for
// concurrent use: the real-time loop records while HTTP handlers read.
// Recording is cheap — one lock, one slice store — so it can stay enabled
// in production.
type Tracer struct {
	mu    sync.Mutex
	buf   []TickTrace
	next  int
	full  bool
	total uint64
}

// NewTracer returns a tracer keeping the last capacity ticks
// (DefaultTraceCapacity if capacity is not positive).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]TickTrace, 0, capacity)}
}

// Record stores one tick trace, evicting the oldest when full. The tracer
// takes ownership of tr.Spans.
func (tr *Tracer) Record(t TickTrace) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.total++
	if len(tr.buf) < cap(tr.buf) {
		tr.buf = append(tr.buf, t)
		return
	}
	tr.full = true
	tr.buf[tr.next] = t
	tr.next = (tr.next + 1) % cap(tr.buf)
}

// Len reports the number of buffered traces.
func (tr *Tracer) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.buf)
}

// Total reports how many traces were ever recorded (including evicted ones).
func (tr *Tracer) Total() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.total
}

// Last returns up to n of the most recent traces in chronological order
// (all of them when n is not positive or exceeds the buffer).
func (tr *Tracer) Last(n int) []TickTrace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ordered := make([]TickTrace, 0, len(tr.buf))
	if tr.full {
		ordered = append(ordered, tr.buf[tr.next:]...)
		ordered = append(ordered, tr.buf[:tr.next]...)
	} else {
		ordered = append(ordered, tr.buf...)
	}
	if n > 0 && n < len(ordered) {
		ordered = ordered[len(ordered)-n:]
	}
	return ordered
}

// traceEvent is one Chrome trace_event entry (the "X" complete-event form).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format of the trace_event specification,
// loadable in Perfetto and chrome://tracing.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the traces as Chrome trace_event JSON. Each tick
// becomes one enclosing "tick" event on tid 0 plus one event per span on
// tid 1, positioned on the tick's wall-clock timebase so consecutive ticks
// lay out as a timeline.
func WriteChromeTrace(w io.Writer, traces []TickTrace) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]traceEvent, 0, len(traces)*4)}
	for _, t := range traces {
		base := float64(t.StartUnixMicro)
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "tick", Ph: "X", TS: base, Dur: t.WallMS * 1000, PID: 1, TID: 0,
			Args: map[string]any{"tick": t.Tick, "tasks_ms": t.TotalMS()},
		})
		for _, s := range t.Spans {
			ev := traceEvent{
				Name: s.Name, Ph: "X",
				TS: base + s.StartMS*1000, Dur: s.DurMS * 1000,
				PID: 1, TID: 1,
			}
			if s.Items > 0 {
				ev.Args = map[string]any{"items": s.Items}
			}
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteTraceJSONL renders the traces as JSONL: one TickTrace object per
// line, the grep/jq-friendly export.
func WriteTraceJSONL(w io.Writer, traces []TickTrace) error {
	enc := json.NewEncoder(w)
	for _, t := range traces {
		if err := enc.Encode(t); err != nil {
			return fmt.Errorf("telemetry: encode tick %d: %w", t.Tick, err)
		}
	}
	return nil
}
