package telemetry

import (
	"io"
	"net/http"
	"strconv"
)

// TraceHandler serves a Tracer's buffered tick traces over HTTP (the
// /debug/ticktrace endpoint). Query parameters:
//
//	n       number of most recent ticks to export (default 100, 0 = all)
//	format  "chrome" (default; trace_event JSON for Perfetto) or "jsonl"
func TraceHandler(tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "ticktrace: n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		traces := tr.Last(n)
		switch format := r.URL.Query().Get("format"); format {
		case "", "chrome":
			w.Header().Set("Content-Type", "application/json")
			if err := WriteChromeTrace(w, traces); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "jsonl":
			w.Header().Set("Content-Type", "application/x-ndjson")
			if err := WriteTraceJSONL(w, traces); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "ticktrace: format must be chrome or jsonl", http.StatusBadRequest)
		}
	})
}

// MetricsWriter writes one Prometheus exposition section. The monitor's
// WriteMetrics, Drift.WriteMetrics and WriteRuntimeMetrics all match.
type MetricsWriter func(w io.Writer, labels string) error

// MetricsHandler composes several exposition sections into one /metrics
// endpoint, so application, model-drift and runtime metrics share a scrape.
func MetricsHandler(labels string, writers ...MetricsWriter) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		for _, write := range writers {
			if err := write(w, labels); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
	})
}
