package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
)

// QueryIntParam parses an optional non-negative integer query parameter.
// An absent parameter yields def; an empty, non-numeric or negative value
// is an error, so handlers reject malformed requests with 400 instead of
// silently falling back to a default the caller did not ask for.
func QueryIntParam(q url.Values, name string, def int) (int, error) {
	if !q.Has(name) {
		return def, nil
	}
	raw := q.Get(name)
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("%s must be a non-negative integer, got %q", name, raw)
	}
	return v, nil
}

// QueryFloatParam parses an optional non-negative finite float query
// parameter with the same strictness as QueryIntParam: absent means def,
// malformed (empty, non-numeric, negative, NaN, Inf) means an error for a
// 400.
func QueryFloatParam(q url.Values, name string, def float64) (float64, error) {
	if !q.Has(name) {
		return def, nil
	}
	raw := q.Get(name)
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("%s must be a non-negative number, got %q", name, raw)
	}
	return v, nil
}

// ReadyHandler serves a /healthz readiness endpoint: 503 until ready()
// first reports true, 200 afterwards. Gateways and orchestrators poll it
// before routing traffic at a backend, so a server that has not completed
// its first tick (or a collector that has not scraped yet) is never put in
// rotation with empty state.
func ReadyHandler(ready func() bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// TraceHandler serves a Tracer's buffered tick traces over HTTP (the
// /debug/ticktrace endpoint). Query parameters:
//
//	n       number of most recent ticks to export (default 100, 0 = all)
//	format  "chrome" (default; trace_event JSON for Perfetto) or "jsonl"
func TraceHandler(tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n, err := QueryIntParam(r.URL.Query(), "n", 100)
		if err != nil {
			http.Error(w, "ticktrace: "+err.Error(), http.StatusBadRequest)
			return
		}
		traces := tr.Last(n)
		switch format := r.URL.Query().Get("format"); format {
		case "", "chrome":
			w.Header().Set("Content-Type", "application/json")
			if err := WriteChromeTrace(w, traces); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "jsonl":
			w.Header().Set("Content-Type", "application/x-ndjson")
			if err := WriteTraceJSONL(w, traces); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "ticktrace: format must be chrome or jsonl", http.StatusBadRequest)
		}
	})
}

// MetricsWriter writes one Prometheus exposition section. The monitor's
// WriteMetrics, Drift.WriteMetrics and WriteRuntimeMetrics all match.
type MetricsWriter func(w io.Writer, labels string) error

// MetricsHandler composes several exposition sections into one /metrics
// endpoint, so application, model-drift and runtime metrics share a scrape.
func MetricsHandler(labels string, writers ...MetricsWriter) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		for _, write := range writers {
			if err := write(w, labels); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
	})
}
