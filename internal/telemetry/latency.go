package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Latency is a concurrent-safe latency recorder: a LogHistogram plus QoS
// deadline accounting. The deadline is the response-time contract of the
// scalability model — a tick (server side) or an input→update round trip
// (client side) must complete within 1/U — and every observation beyond it
// is counted exactly, not estimated from buckets.
type Latency struct {
	mu         sync.Mutex
	hist       *LogHistogram
	deadlineMS float64
	violations uint64
}

// NewLatency returns a recorder with the given QoS deadline in ms. A
// non-positive deadline disables violation accounting (observations are
// still recorded).
func NewLatency(deadlineMS float64) *Latency {
	return &Latency{hist: NewLogHistogram(), deadlineMS: deadlineMS}
}

// SetDeadline changes the QoS deadline (ms). Already-counted violations
// are kept: the counter is cumulative over the recorder's lifetime.
func (l *Latency) SetDeadline(ms float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.deadlineMS = ms
}

// DeadlineMS reports the deadline in force.
func (l *Latency) DeadlineMS() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.deadlineMS
}

// Observe records one latency in milliseconds.
func (l *Latency) Observe(ms float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hist.Observe(ms)
	if l.deadlineMS > 0 && ms > l.deadlineMS {
		l.violations++
	}
}

// LatencySnapshot is a point-in-time summary of a Latency recorder.
type LatencySnapshot struct {
	Count               uint64
	MeanMS              float64
	P50, P95, P99, P999 float64
	MaxMS               float64
	DeadlineMS          float64
	Violations          uint64
}

// ViolationRate reports the fraction of observations past the deadline.
func (s LatencySnapshot) ViolationRate() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Violations) / float64(s.Count)
}

// Snapshot returns the current summary.
func (l *Latency) Snapshot() LatencySnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LatencySnapshot{
		Count:      l.hist.Count(),
		MeanMS:     l.hist.Mean(),
		P50:        l.hist.Quantile(0.50),
		P95:        l.hist.Quantile(0.95),
		P99:        l.hist.Quantile(0.99),
		P999:       l.hist.Quantile(0.999),
		MaxMS:      l.hist.Max(),
		DeadlineMS: l.deadlineMS,
		Violations: l.violations,
	}
}

// Merge folds another recorder's observations (and violations) into l.
// The per-replica recorders of a fleet merge into one fleet-wide
// distribution this way; each side keeps its own deadline.
func (l *Latency) Merge(o *Latency) {
	if o == nil || o == l {
		return
	}
	o.mu.Lock()
	hist := o.hist.Clone()
	violations := o.violations
	o.mu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hist.Merge(hist)
	l.violations += violations
}

// WriteMetrics writes the recorder's state as one Prometheus family group
// under the given name:
//
//	<name>_ms{stat="p50"|"p95"|"p99"|"p999"|"max"|"mean"}  quantile gauges
//	<name>_count                                           observations
//	<name>_deadline_ms                                     QoS deadline
//	<name>_deadline_violations_total                       observations past it
func (l *Latency) WriteMetrics(w io.Writer, name, labels string) error {
	s := l.Snapshot()
	lbl := FormatLabels(labels, "")
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE %s_ms gauge\n", name)
	for _, st := range []struct {
		name string
		v    float64
	}{
		{"p50", s.P50}, {"p95", s.P95}, {"p99", s.P99}, {"p999", s.P999},
		{"max", s.MaxMS}, {"mean", s.MeanMS},
	} {
		fmt.Fprintf(&b, "%s_ms%s %g\n", name, FormatLabels(labels, fmt.Sprintf("stat=%q", st.name)), st.v)
	}
	fmt.Fprintf(&b, "# TYPE %s_count counter\n%s_count%s %d\n", name, name, lbl, s.Count)
	fmt.Fprintf(&b, "# TYPE %s_deadline_ms gauge\n%s_deadline_ms%s %g\n", name, name, lbl, s.DeadlineMS)
	fmt.Fprintf(&b, "# TYPE %s_deadline_violations_total counter\n%s_deadline_violations_total%s %d\n", name, name, lbl, s.Violations)
	_, err := io.WriteString(w, b.String())
	return err
}

// LatencyMetrics adapts a Latency to the MetricsWriter shape under the
// given family name, for composition into /metrics or /fleet/metrics.
func LatencyMetrics(name string, l *Latency) MetricsWriter {
	return func(w io.Writer, labels string) error {
		return l.WriteMetrics(w, name, labels)
	}
}
