package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Phase identifies one of the four computational tasks of the real-time
// loop from the scalability model. Deserialization is folded into the task
// that consumes the payload (the paper's t_ua/t_fa terms include it), and
// state-update serialization into the AoI task, so the four phases
// partition the whole tick body.
type Phase int

const (
	// PhaseUserInput covers deserializing and applying the inputs of
	// locally-hosted users (t_ua_deser + t_ua).
	PhaseUserInput Phase = iota
	// PhaseForwardedInput covers deserializing and applying inputs
	// forwarded for shadow entities (t_fa_deser + t_fa).
	PhaseForwardedInput
	// PhaseNPCUpdate covers NPC behaviour updates (t_npc).
	PhaseNPCUpdate
	// PhaseAOISU covers area-of-interest resolution and state-update
	// serialization (t_aoi + t_su).
	PhaseAOISU

	// NumPhases is the number of phases; usable as an array length.
	NumPhases = int(PhaseAOISU) + 1
)

var phaseNames = [NumPhases]string{
	"user_input",
	"forwarded_input",
	"npc_update",
	"aoi_su",
}

// String returns the stable snake_case phase name used in metric labels.
func (p Phase) String() string {
	if p < 0 || int(p) >= NumPhases {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// PhaseNames returns the phase names in phase order.
func PhaseNames() [NumPhases]string { return phaseNames }

// TaskProfiler aggregates per-tick phase timings into per-phase latency
// distributions, so the share and the tail of each of the four model tasks
// is visible separately. One RecordTick call per tick keeps the hot-path
// cost to a single mutex acquisition plus four histogram increments.
type TaskProfiler struct {
	mu    sync.Mutex
	hists [NumPhases]*LogHistogram
	items [NumPhases]uint64
	sumMS [NumPhases]float64
	ticks uint64
}

// NewTaskProfiler returns an empty profiler.
func NewTaskProfiler() *TaskProfiler {
	p := &TaskProfiler{}
	for i := range p.hists {
		p.hists[i] = NewLogHistogram()
	}
	return p
}

// RecordTick records one tick's per-phase durations (ms) and item counts
// (inputs applied, NPCs updated, updates serialized, ...).
func (p *TaskProfiler) RecordTick(durMS [NumPhases]float64, items [NumPhases]int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < NumPhases; i++ {
		p.hists[i].Observe(durMS[i])
		p.sumMS[i] += durMS[i]
		if items[i] > 0 {
			p.items[i] += uint64(items[i])
		}
	}
	p.ticks++
}

// PhaseSnapshot summarizes one phase's distribution over the run.
type PhaseSnapshot struct {
	Phase  string
	MeanMS float64
	P50    float64
	P95    float64
	P99    float64
	MaxMS  float64
	Share  float64 // fraction of total profiled tick time spent in this phase
	Items  uint64
}

// Snapshot returns per-phase summaries in phase order plus the tick count.
func (p *TaskProfiler) Snapshot() ([NumPhases]PhaseSnapshot, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0.0
	for i := 0; i < NumPhases; i++ {
		total += p.sumMS[i]
	}
	var out [NumPhases]PhaseSnapshot
	for i := 0; i < NumPhases; i++ {
		h := p.hists[i]
		share := 0.0
		if total > 0 {
			share = p.sumMS[i] / total
		}
		out[i] = PhaseSnapshot{
			Phase:  phaseNames[i],
			MeanMS: h.Mean(),
			P50:    h.Quantile(0.50),
			P95:    h.Quantile(0.95),
			P99:    h.Quantile(0.99),
			MaxMS:  h.Max(),
			Share:  share,
			Items:  p.items[i],
		}
	}
	return out, p.ticks
}

// WriteMetrics writes the profiler state in the Prometheus text exposition
// format:
//
//	roia_phase_tick_ms{phase,stat="p50"|"p95"|"p99"|"max"|"mean"}  per-phase per-tick cost
//	roia_phase_share{phase}                                        fraction of tick time
//	roia_phase_items_total{phase}                                  items processed
//	roia_phase_ticks_total                                         ticks profiled
func (p *TaskProfiler) WriteMetrics(w io.Writer, labels string) error {
	snaps, ticks := p.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE roia_phase_tick_ms gauge\n")
	for _, s := range snaps {
		for _, st := range []struct {
			name string
			v    float64
		}{
			{"p50", s.P50}, {"p95", s.P95}, {"p99", s.P99},
			{"max", s.MaxMS}, {"mean", s.MeanMS},
		} {
			fmt.Fprintf(&b, "roia_phase_tick_ms%s %g\n",
				FormatLabels(labels, fmt.Sprintf("phase=%q,stat=%q", s.Phase, st.name)), st.v)
		}
	}
	fmt.Fprintf(&b, "# TYPE roia_phase_share gauge\n")
	for _, s := range snaps {
		fmt.Fprintf(&b, "roia_phase_share%s %g\n",
			FormatLabels(labels, fmt.Sprintf("phase=%q", s.Phase)), s.Share)
	}
	fmt.Fprintf(&b, "# TYPE roia_phase_items_total counter\n")
	for _, s := range snaps {
		fmt.Fprintf(&b, "roia_phase_items_total%s %d\n",
			FormatLabels(labels, fmt.Sprintf("phase=%q", s.Phase)), s.Items)
	}
	fmt.Fprintf(&b, "# TYPE roia_phase_ticks_total counter\nroia_phase_ticks_total%s %d\n",
		FormatLabels(labels, ""), ticks)
	_, err := io.WriteString(w, b.String())
	return err
}

// ProfilerMetrics adapts a TaskProfiler to the MetricsWriter shape.
func ProfilerMetrics(p *TaskProfiler) MetricsWriter {
	return func(w io.Writer, labels string) error {
		return p.WriteMetrics(w, labels)
	}
}
