package telemetry

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sort"
	"strings"
	"sync"
)

// Pipeline stage names the CostTracker attributes allocations to. They
// mirror the tick pipeline's barriers (decode → apply → simulate → publish);
// CostStageOther absorbs whatever allocates between EndTick and the last
// instrumented boundary (bookkeeping, telemetry itself).
const (
	CostStageDecode   = "decode"
	CostStageApply    = "apply"
	CostStageSimulate = "simulate"
	CostStagePublish  = "publish"
	CostStageOther    = "other"
)

// maxCostStages bounds the per-stage attribution maps: stage names form a
// tiny fixed vocabulary, and an unexpected caller-supplied name collapses
// into CostStageOther rather than growing the map forever.
const maxCostStages = 8

// maxEgressTypes bounds the per-message-type egress map the same way: the
// protocol's kind set is fixed, and unknown kinds collapse into "other".
const maxEgressTypes = 16

// TickCost is one tick's resource delta, as sampled from runtime/metrics at
// the tick boundaries.
type TickCost struct {
	// AllocBytes/AllocObjects are the heap allocations the whole process
	// performed during the tick. On a server whose tick loop is the only
	// busy goroutine this is the tick's own allocation cost; concurrent
	// background work is charged to whatever tick it overlaps.
	AllocBytes   uint64
	AllocObjects uint64
	// GCCycles is how many GC cycles completed inside the tick.
	GCCycles uint64
	// GCPauseMS is the total stop-the-world pause time that landed inside
	// the tick, diffed from the runtime's cumulative pause histogram.
	GCPauseMS float64
}

// CostSnapshot is a point-in-time copy of a CostTracker's aggregates, safe
// to read after the tracker moves on. Maps and histograms are independent
// copies; the fleet collector merges them into zone-level aggregates.
type CostSnapshot struct {
	// Ticks is how many BeginTick/EndTick pairs completed.
	Ticks uint64
	// AllocBytes/AllocObjects are cumulative heap allocations by pipeline
	// stage.
	AllocBytes   map[string]uint64
	AllocObjects map[string]uint64
	// GCCycles / GCPauseTotalMS are cumulative in-tick GC cycle and pause
	// totals.
	GCCycles       uint64
	GCPauseTotalMS float64
	// GCPause is the windowed distribution of per-tick in-tick pause time
	// (ms per tick; most ticks observe 0).
	GCPause *LogHistogram
	// EgressByType is cumulative framed wire bytes sent, by message type.
	EgressByType map[string]uint64
	// EgressClientBytes is cumulative framed wire bytes sent to connected
	// clients (the per-user share of EgressByType); EgressClients is the
	// number of clients currently tracked.
	EgressClientBytes uint64
	EgressClients     int
	// Payload is the windowed distribution of per-client framed message
	// sizes (bytes, despite LogHistogram's ms-named API).
	Payload *LogHistogram
	// ChurnEnter/ChurnLeave are windowed distributions of entities
	// entering/leaving one client's visible set in one tick.
	ChurnEnter *LogHistogram
	ChurnLeave *LogHistogram
}

// costSampleNames are the runtime/metrics series the tracker reads at tick
// boundaries, in slice order.
var costSampleNames = []string{
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
}

const (
	costSampleAllocBytes = iota
	costSampleAllocObjects
	costSampleGCCycles
	costSampleGCPauses
)

// CostTracker attributes the resource cost behind the tick loop: heap
// allocations per pipeline stage (runtime/metrics deltas at the stage
// barriers), GC pause time per tick (cumulative pause-histogram diffs),
// framed egress bytes per message type and per client, and AoI churn per
// client per tick. It answers the question the time-only telemetry cannot:
// when a tick is slow or a replica is expensive, *which resource* — and
// which stage — paid for it.
//
// BeginTick/EndStage/EndTick must be called from the tick goroutine (the
// stages are barriers, so a stage's allocation delta is attributable even
// though workers allocate concurrently within it). All methods are
// internally synchronized so HTTP handlers and the fleet collector can read
// while the loop records.
type CostTracker struct {
	mu sync.Mutex

	// samples is the tick-boundary sample set (allocs, cycles, pauses);
	// stageSamples is the cheaper allocs-only set read at stage barriers.
	// runtime/metrics reuses the pause histogram inside samples across
	// reads, so the begin-of-tick bucket counts are copied into pauseBase.
	samples      []metrics.Sample
	stageSamples []metrics.Sample
	pauseBase    []uint64

	inTick                         bool
	tickBaseBytes, tickBaseObjects uint64
	cyclesBase                     uint64
	lastBytes, lastObjects         uint64

	ticks          uint64
	stageBytes     map[string]uint64
	stageObjects   map[string]uint64
	gcCycles       uint64
	gcPauseTotalMS float64
	gcPause        *TailTracker

	egressType        map[string]uint64
	egressClient      map[string]uint64
	egressClientBytes uint64
	payload           *TailTracker

	churnEnter *TailTracker
	churnLeave *TailTracker
}

// NewCostTracker returns an empty tracker.
func NewCostTracker() *CostTracker {
	c := &CostTracker{
		samples:      make([]metrics.Sample, len(costSampleNames)),
		stageSamples: make([]metrics.Sample, 2),
		stageBytes:   make(map[string]uint64, maxCostStages),
		stageObjects: make(map[string]uint64, maxCostStages),
		gcPause:      NewTailTracker(0),
		egressType:   make(map[string]uint64, maxEgressTypes),
		egressClient: make(map[string]uint64),
		payload:      NewTailTracker(0),
		churnEnter:   NewTailTracker(0),
		churnLeave:   NewTailTracker(0),
	}
	for i, name := range costSampleNames {
		c.samples[i].Name = name
	}
	c.stageSamples[0].Name = costSampleNames[costSampleAllocBytes]
	c.stageSamples[1].Name = costSampleNames[costSampleAllocObjects]
	return c
}

// BeginTick snapshots the runtime counters at the start of a tick.
func (c *CostTracker) BeginTick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)
	c.tickBaseBytes = c.samples[costSampleAllocBytes].Value.Uint64()
	c.tickBaseObjects = c.samples[costSampleAllocObjects].Value.Uint64()
	c.cyclesBase = c.samples[costSampleGCCycles].Value.Uint64()
	h := c.samples[costSampleGCPauses].Value.Float64Histogram()
	c.pauseBase = append(c.pauseBase[:0], h.Counts...)
	c.lastBytes, c.lastObjects = c.tickBaseBytes, c.tickBaseObjects
	c.inTick = true
}

// EndStage attributes the allocations since the previous boundary (BeginTick
// or the last EndStage) to the named pipeline stage. A no-op outside a tick.
func (c *CostTracker) EndStage(stage string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.inTick {
		return
	}
	metrics.Read(c.stageSamples)
	b := c.stageSamples[0].Value.Uint64()
	o := c.stageSamples[1].Value.Uint64()
	c.attributeLocked(stage, b-c.lastBytes, o-c.lastObjects)
	c.lastBytes, c.lastObjects = b, o
}

// attributeLocked adds one allocation delta to a stage's cumulative
// counters, collapsing unexpected stage names into CostStageOther once the
// fixed stage vocabulary is exhausted.
func (c *CostTracker) attributeLocked(stage string, db, do uint64) {
	if _, ok := c.stageBytes[stage]; !ok &&
		(len(c.stageBytes) >= maxCostStages || len(c.stageObjects) >= maxCostStages) {
		stage = CostStageOther
	}
	c.stageBytes[stage] += db
	c.stageObjects[stage] += do
}

// EndTick closes the tick: residual allocations since the last stage
// boundary go to CostStageOther, and the tick's GC cycle/pause deltas are
// computed from the cumulative runtime series. Returns the tick's cost for
// the flight recorder. The zero TickCost is returned outside a tick.
func (c *CostTracker) EndTick() TickCost {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.inTick {
		return TickCost{}
	}
	c.inTick = false
	metrics.Read(c.samples)
	b := c.samples[costSampleAllocBytes].Value.Uint64()
	o := c.samples[costSampleAllocObjects].Value.Uint64()
	c.attributeLocked(CostStageOther, b-c.lastBytes, o-c.lastObjects)
	c.lastBytes, c.lastObjects = b, o

	cost := TickCost{
		AllocBytes:   b - c.tickBaseBytes,
		AllocObjects: o - c.tickBaseObjects,
		GCCycles:     c.samples[costSampleGCCycles].Value.Uint64() - c.cyclesBase,
		GCPauseMS:    pauseDeltaMS(c.samples[costSampleGCPauses].Value.Float64Histogram(), c.pauseBase),
	}
	c.ticks++
	c.gcCycles += cost.GCCycles
	c.gcPauseTotalMS += cost.GCPauseMS
	c.gcPause.Observe(cost.GCPauseMS)
	return cost
}

// pauseDeltaMS sums the new observations a cumulative pause histogram
// gained since base, approximating each by its bucket midpoint (the finite
// edge for the ±Inf boundary buckets). Returns milliseconds.
func pauseDeltaMS(h *metrics.Float64Histogram, base []uint64) float64 {
	if h == nil || len(base) != len(h.Counts) || len(h.Buckets) != len(h.Counts)+1 {
		return 0
	}
	total := 0.0
	for i, n := range h.Counts {
		d := n - base[i]
		if d == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		var mid float64
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		total += float64(d) * mid
	}
	return total * 1e3
}

// ObserveEgress records one framed wire message of frameBytes bytes (header
// + payload, the transport's on-wire size). msgType is the protocol kind
// name; client is the destination's connected-client ID, or "" for
// server-to-server traffic (which is counted by type but not per client).
func (c *CostTracker) ObserveEgress(client, msgType string, frameBytes int) {
	if frameBytes <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.egressType[msgType]; !ok && len(c.egressType) >= maxEgressTypes {
		msgType = "other"
	}
	c.egressType[msgType] += uint64(frameBytes)
	if client == "" {
		return
	}
	c.egressClient[client] += uint64(frameBytes)
	c.egressClientBytes += uint64(frameBytes)
	c.payload.Observe(float64(frameBytes))
}

// EvictClient drops a disconnected client's egress counter. The server
// calls this when a user leaves, migrates away, or is idle-evicted, so the
// per-client map tracks only live connections.
func (c *CostTracker) EvictClient(client string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.egressClient, client)
}

// ClientEgressBytes reports the cumulative framed bytes sent to one
// currently-connected client.
func (c *CostTracker) ClientEgressBytes(client string) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.egressClient[client]
	return b, ok
}

// ObserveChurn records one client's AoI churn for one tick: entered
// entities appeared in its visible set this tick, left entities dropped out.
func (c *CostTracker) ObserveChurn(entered, left int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.churnEnter.Observe(float64(entered))
	c.churnLeave.Observe(float64(left))
}

// Ticks reports how many completed ticks the tracker has observed.
func (c *CostTracker) Ticks() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ticks
}

// Snapshot copies the tracker's aggregates.
func (c *CostTracker) Snapshot() CostSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := CostSnapshot{
		Ticks:             c.ticks,
		AllocBytes:        make(map[string]uint64, len(c.stageBytes)),
		AllocObjects:      make(map[string]uint64, len(c.stageObjects)),
		GCCycles:          c.gcCycles,
		GCPauseTotalMS:    c.gcPauseTotalMS,
		GCPause:           c.gcPause.Histogram(),
		EgressByType:      make(map[string]uint64, len(c.egressType)),
		EgressClientBytes: c.egressClientBytes,
		EgressClients:     len(c.egressClient),
		Payload:           c.payload.Histogram(),
		ChurnEnter:        c.churnEnter.Histogram(),
		ChurnLeave:        c.churnLeave.Histogram(),
	}
	for k, v := range c.stageBytes {
		snap.AllocBytes[k] = v
	}
	for k, v := range c.stageObjects {
		snap.AllocObjects[k] = v
	}
	for k, v := range c.egressType {
		snap.EgressByType[k] = v
	}
	return snap
}

// WriteMetrics exports the tracker's aggregates in the Prometheus text
// exposition format; it matches MetricsWriter.
//
// Exported families:
//
//	roia_alloc_bytes_total{stage}     counter, heap bytes allocated per stage
//	roia_alloc_objects_total{stage}   counter, heap objects allocated per stage
//	roia_gc_cycles_total              counter, GC cycles completed inside ticks
//	roia_gc_pause_ms_total            counter, in-tick GC pause time
//	roia_gc_pause_q_ms{q}             gauge, windowed per-tick pause quantiles
//	roia_egress_bytes_total{type}     counter, framed wire bytes by message type
//	roia_egress_client_bytes_total    counter, framed wire bytes to clients
//	roia_egress_clients               gauge, clients currently tracked
//	roia_egress_payload_q_bytes{q}    gauge, windowed per-client frame sizes
//	roia_aoi_churn_enter_q{q}         gauge, windowed per-client AoI entries/tick
//	roia_aoi_churn_leave_q{q}         gauge, windowed per-client AoI exits/tick
func (c *CostTracker) WriteMetrics(w io.Writer, labels string) error {
	snap := c.Snapshot()
	lbl := func(extra string) string { return FormatLabels(labels, extra) }
	var b strings.Builder

	fmt.Fprintf(&b, "# TYPE roia_alloc_bytes_total counter\n")
	for _, st := range sortedCostKeys(snap.AllocBytes) {
		fmt.Fprintf(&b, "roia_alloc_bytes_total%s %d\n", lbl(fmt.Sprintf("stage=%q", st)), snap.AllocBytes[st])
	}
	fmt.Fprintf(&b, "# TYPE roia_alloc_objects_total counter\n")
	for _, st := range sortedCostKeys(snap.AllocObjects) {
		fmt.Fprintf(&b, "roia_alloc_objects_total%s %d\n", lbl(fmt.Sprintf("stage=%q", st)), snap.AllocObjects[st])
	}
	fmt.Fprintf(&b, "# TYPE roia_gc_cycles_total counter\n")
	fmt.Fprintf(&b, "roia_gc_cycles_total%s %d\n", lbl(""), snap.GCCycles)
	fmt.Fprintf(&b, "# TYPE roia_gc_pause_ms_total counter\n")
	fmt.Fprintf(&b, "roia_gc_pause_ms_total%s %g\n", lbl(""), snap.GCPauseTotalMS)
	writeCostQuantiles(&b, "roia_gc_pause_q_ms", lbl, snap.GCPause)

	fmt.Fprintf(&b, "# TYPE roia_egress_bytes_total counter\n")
	for _, typ := range sortedCostKeys(snap.EgressByType) {
		fmt.Fprintf(&b, "roia_egress_bytes_total%s %d\n", lbl(fmt.Sprintf("type=%q", typ)), snap.EgressByType[typ])
	}
	fmt.Fprintf(&b, "# TYPE roia_egress_client_bytes_total counter\n")
	fmt.Fprintf(&b, "roia_egress_client_bytes_total%s %d\n", lbl(""), snap.EgressClientBytes)
	fmt.Fprintf(&b, "# TYPE roia_egress_clients gauge\n")
	fmt.Fprintf(&b, "roia_egress_clients%s %d\n", lbl(""), snap.EgressClients)
	writeCostQuantiles(&b, "roia_egress_payload_q_bytes", lbl, snap.Payload)
	writeCostQuantiles(&b, "roia_aoi_churn_enter_q", lbl, snap.ChurnEnter)
	writeCostQuantiles(&b, "roia_aoi_churn_leave_q", lbl, snap.ChurnLeave)

	_, err := io.WriteString(w, b.String())
	return err
}

// costQuantileLevels are the quantile gauge levels every windowed cost
// family exports, as (label value, quantile) pairs.
var costQuantileLevels = []struct {
	Label string
	Q     float64
}{
	{"0.5", 0.50},
	{"0.9", 0.90},
	{"0.99", 0.99},
	{"1", 1},
}

// writeCostQuantiles emits one windowed quantile-gauge family. The family
// name must be `# TYPE`-declared by WriteCostQuantileTypes below (kept in
// one place so the metricname analyzer sees a single declaration per
// family).
func writeCostQuantiles(b *strings.Builder, family string, lbl func(string) string, h *LogHistogram) {
	writeCostQuantileType(b, family)
	for _, lv := range costQuantileLevels {
		fmt.Fprintf(b, "%s%s %g\n", family, lbl(fmt.Sprintf("q=%q", lv.Label)), h.Quantile(lv.Q))
	}
}

// writeCostQuantileType declares the TYPE header for each quantile family
// with a literal name, so the exposition-grammar analyzer can check it.
func writeCostQuantileType(b *strings.Builder, family string) {
	switch family {
	case "roia_gc_pause_q_ms":
		b.WriteString("# TYPE roia_gc_pause_q_ms gauge\n")
	case "roia_egress_payload_q_bytes":
		b.WriteString("# TYPE roia_egress_payload_q_bytes gauge\n")
	case "roia_aoi_churn_enter_q":
		b.WriteString("# TYPE roia_aoi_churn_enter_q gauge\n")
	case "roia_aoi_churn_leave_q":
		b.WriteString("# TYPE roia_aoi_churn_leave_q gauge\n")
	default:
		fmt.Fprintf(b, "# TYPE %s gauge\n", family)
	}
}

// sortedCostKeys returns a map's keys in deterministic order.
func sortedCostKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
