package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// steadyRecorder returns a recorder with a small warm window already
// observed at baseMS, so hiccup detection is armed.
func steadyRecorder(t *testing.T, cfg FlightRecConfig, baseMS float64) *FlightRecorder {
	t.Helper()
	fr := NewFlightRecorder(cfg)
	for i := 0; i < cfg.Window; i++ {
		fr.Record(TickRecord{Tick: uint64(i + 1), WallMS: baseMS})
	}
	if got := fr.Hiccups(); got != 0 {
		t.Fatalf("warmup produced %d hiccups", got)
	}
	if got := len(fr.Captures()); got != 0 {
		t.Fatalf("warmup produced %d captures", got)
	}
	return fr
}

func TestFlightRecorderHiccupCapture(t *testing.T) {
	cfg := FlightRecConfig{Pre: 4, Post: 3, K: 4, MinHiccupMS: -1, Window: 8}
	fr := steadyRecorder(t, cfg, 1.0) // ticks 1..8 at 1 ms

	fr.Record(TickRecord{Tick: 9, WallMS: 10}) // 10× median: trigger
	for tick := uint64(10); tick <= 12; tick++ {
		fr.Record(TickRecord{Tick: tick, WallMS: 1})
	}

	caps := fr.Captures()
	if len(caps) != 1 {
		t.Fatalf("captures = %d, want 1", len(caps))
	}
	c := caps[0]
	if c.Reason != "hiccup" || c.TriggerTick != 9 {
		t.Fatalf("capture = %+v, want hiccup at tick 9", c)
	}
	if c.MedianMS != 1 {
		t.Fatalf("median at trigger = %g, want 1", c.MedianMS)
	}
	// Window: 4 pre ticks (5..8), the trigger (9), 3 post ticks (10..12).
	want := []uint64{5, 6, 7, 8, 9, 10, 11, 12}
	if len(c.Records) != len(want) {
		t.Fatalf("capture has %d records, want %d", len(c.Records), len(want))
	}
	for i, rec := range c.Records {
		if rec.Tick != want[i] {
			t.Fatalf("record[%d].Tick = %d, want %d", i, rec.Tick, want[i])
		}
	}
	if fr.Hiccups() != 1 || fr.CapturesTotal() != 1 || fr.Dropped() != 0 {
		t.Fatalf("counters hiccups=%d total=%d dropped=%d", fr.Hiccups(), fr.CapturesTotal(), fr.Dropped())
	}
}

func TestFlightRecorderDeadlineTrigger(t *testing.T) {
	// No hiccup warmup: the deadline trigger must work from the first tick.
	fr := NewFlightRecorder(FlightRecConfig{Pre: 2, Post: -1})
	fr.Record(TickRecord{Tick: 1, WallMS: 10, DeadlineMS: 40})
	fr.Record(TickRecord{Tick: 2, WallMS: 55, DeadlineMS: 40, SlackMS: -15})
	caps := fr.Captures()
	if len(caps) != 1 {
		t.Fatalf("captures = %d, want 1 (Post<0 closes on the trigger)", len(caps))
	}
	c := caps[0]
	if c.Reason != "deadline" || c.TriggerTick != 2 {
		t.Fatalf("capture = %+v, want deadline at tick 2", c)
	}
	if n := len(c.Records); n != 2 {
		t.Fatalf("records = %d, want 2 (one pre tick + trigger)", n)
	}
	if fr.Hiccups() != 0 {
		t.Fatalf("deadline trigger counted as hiccup: %d", fr.Hiccups())
	}
}

// TestFlightRecorderOneAnomalyOneCapture: triggers during an open capture's
// post window must not open a second capture, so a multi-tick stall yields
// one capture, not a cascade.
func TestFlightRecorderOneAnomalyOneCapture(t *testing.T) {
	cfg := FlightRecConfig{Pre: 2, Post: 4, K: 4, MinHiccupMS: -1, Window: 8}
	fr := steadyRecorder(t, cfg, 1.0)
	for tick := uint64(9); tick <= 11; tick++ {
		fr.Record(TickRecord{Tick: tick, WallMS: 20}) // 3-tick stall
	}
	for tick := uint64(12); tick <= 20; tick++ {
		fr.Record(TickRecord{Tick: tick, WallMS: 1})
	}
	caps := fr.Captures()
	if len(caps) != 1 {
		t.Fatalf("captures = %d, want 1 for one contiguous stall", len(caps))
	}
	if caps[0].TriggerTick != 9 {
		t.Fatalf("trigger tick = %d, want 9", caps[0].TriggerTick)
	}
	if fr.Hiccups() != 3 {
		t.Fatalf("hiccups = %d, want 3 (every stalled tick counts)", fr.Hiccups())
	}
}

func TestFlightRecorderNoFalsePositives(t *testing.T) {
	cfg := FlightRecConfig{Pre: 4, Post: 2, K: 4, Window: 16}
	fr := NewFlightRecorder(cfg)
	// Mild jitter around 2 ms, never 4× the median, plus sub-floor noise
	// spikes (0.1 ms base with the default 1 ms floor would not trigger
	// either, but here base is 2 ms so the floor is irrelevant).
	walls := []float64{2.0, 2.2, 1.8, 2.1, 1.9, 2.4, 2.0, 2.3}
	for i := 0; i < 200; i++ {
		fr.Record(TickRecord{Tick: uint64(i + 1), WallMS: walls[i%len(walls)]})
	}
	if got := fr.Hiccups(); got != 0 {
		t.Fatalf("steady load produced %d hiccups", got)
	}
	if got := len(fr.Captures()); got != 0 {
		t.Fatalf("steady load produced %d captures", got)
	}
}

// TestFlightRecorderHiccupFloor: with the default 1 ms floor, a 4× spike in
// a sub-millisecond baseline is jitter, not a hiccup.
func TestFlightRecorderHiccupFloor(t *testing.T) {
	cfg := FlightRecConfig{Pre: 2, Post: 2, K: 4, Window: 8}
	fr := steadyRecorder(t, cfg, 0.05)
	fr.Record(TickRecord{Tick: 9, WallMS: 0.5}) // 10× median but below 1 ms
	if got := fr.Hiccups(); got != 0 {
		t.Fatalf("sub-floor spike counted as hiccup: %d", got)
	}
	fr.Record(TickRecord{Tick: 10, WallMS: 2}) // above the floor and 4× median
	if got := fr.Hiccups(); got != 1 {
		t.Fatalf("above-floor spike not counted: %d", got)
	}
}

func TestFlightRecorderCaptureEviction(t *testing.T) {
	cfg := FlightRecConfig{Pre: 1, Post: -1, K: 4, MinHiccupMS: -1, Window: 4, MaxCaptures: 2}
	fr := steadyRecorder(t, cfg, 1.0)
	// Alternate spike/recovery so each spike triggers its own capture: a
	// Post<0 capture closes immediately, and the window median stays 1
	// (spikes are a minority of the window).
	trigger := uint64(5)
	for i := 0; i < 4; i++ {
		fr.Record(TickRecord{Tick: trigger, WallMS: 50})
		for j := uint64(1); j <= 4; j++ {
			fr.Record(TickRecord{Tick: trigger + j, WallMS: 1})
		}
		trigger += 5
	}
	caps := fr.Captures()
	if len(caps) != 2 {
		t.Fatalf("retained captures = %d, want MaxCaptures = 2", len(caps))
	}
	if fr.CapturesTotal() != 4 || fr.Dropped() != 2 {
		t.Fatalf("total=%d dropped=%d, want 4/2", fr.CapturesTotal(), fr.Dropped())
	}
	// Oldest dropped first: the survivors are the two most recent.
	if caps[0].ID != 3 || caps[1].ID != 4 {
		t.Fatalf("surviving capture IDs = %d, %d, want 3, 4", caps[0].ID, caps[1].ID)
	}
}

func TestFlightJSONLAndHandler(t *testing.T) {
	cfg := FlightRecConfig{Pre: 2, Post: 1, K: 4, MinHiccupMS: -1, Window: 4}
	fr := steadyRecorder(t, cfg, 1.0)
	fr.Record(TickRecord{
		Tick: 5, WallMS: 30, CPUMS: 32, DeadlineMS: 40,
		Users: 7, ActiveUsers: 7, NPCs: 3, Workers: 2, QueueDepth: 9,
		Tasks: []Span{{Name: "t_npc", DurMS: 29, Items: 3}},
	})
	fr.Record(TickRecord{Tick: 6, WallMS: 1})

	var sb strings.Builder
	if err := WriteFlightJSONL(&sb, fr.Captures()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 5 { // header + 2 pre + trigger + 1 post
		t.Fatalf("JSONL has %d lines, want 5:\n%s", len(lines), sb.String())
	}
	var header struct {
		Capture uint64 `json:"capture"`
		Reason  string `json:"reason"`
		Records int    `json:"records"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatalf("header line: %v", err)
	}
	if header.Capture != 1 || header.Reason != "hiccup" || header.Records != 4 {
		t.Fatalf("header = %+v", header)
	}
	var trigger TickRecord
	if err := json.Unmarshal([]byte(lines[3]), &trigger); err != nil {
		t.Fatalf("trigger line: %v", err)
	}
	if trigger.Tick != 5 || trigger.QueueDepth != 9 || len(trigger.Tasks) != 1 || trigger.Tasks[0].Name != "t_npc" {
		t.Fatalf("trigger record = %+v", trigger)
	}

	// The HTTP handler serves the same stream.
	rr := httptest.NewRecorder()
	FlightRecHandler(fr).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flightrec", nil))
	if rr.Code != 200 {
		t.Fatalf("handler status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	got := 0
	sc := bufio.NewScanner(rr.Body)
	for sc.Scan() {
		got++
	}
	if got != 5 {
		t.Fatalf("handler served %d lines, want 5", got)
	}

	// n=0 limits to no captures.
	rr = httptest.NewRecorder()
	FlightRecHandler(fr).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flightrec?n=0", nil))
	if rr.Body.Len() != 0 {
		t.Fatalf("n=0 served %q", rr.Body.String())
	}
	rr = httptest.NewRecorder()
	FlightRecHandler(fr).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flightrec?n=bogus", nil))
	if rr.Code != 400 {
		t.Fatalf("bad n status = %d", rr.Code)
	}
}

func TestFlightRecorderWriteMetrics(t *testing.T) {
	cfg := FlightRecConfig{Pre: 2, Post: -1, K: 4, MinHiccupMS: -1, Window: 4}
	fr := steadyRecorder(t, cfg, 1.0)
	fr.Record(TickRecord{Tick: 5, WallMS: 50})
	var sb strings.Builder
	if err := fr.WriteMetrics(&sb, `replica="r1"`); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`roia_tick_hiccups_total{replica="r1"} 1`,
		`roia_flightrec_captures_total{replica="r1"} 1`,
		`roia_flightrec_captures_dropped_total{replica="r1"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	assertExposition(t, out)
}

// TestFlightRecorderRollingMedianEviction exercises the sorted-mirror
// maintenance across many window wraps with repeated values.
func TestFlightRecorderRollingMedianEviction(t *testing.T) {
	cfg := FlightRecConfig{Pre: 1, Post: -1, K: 10, MinHiccupMS: -1, Window: 4}
	fr := NewFlightRecorder(cfg)
	walls := []float64{1, 1, 2, 2, 3, 3, 1, 2, 1, 1, 1, 2, 3, 2, 1}
	for i, w := range walls {
		fr.Record(TickRecord{Tick: uint64(i + 1), WallMS: w})
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if len(fr.sorted) != len(fr.window) {
		t.Fatalf("sorted mirror diverged: %d vs %d", len(fr.sorted), len(fr.window))
	}
	for i := 1; i < len(fr.sorted); i++ {
		if fr.sorted[i-1] > fr.sorted[i] {
			t.Fatalf("mirror not sorted: %v", fr.sorted)
		}
	}
}

func TestTailTrackerRotation(t *testing.T) {
	tr := NewTailTracker(10)
	for i := 0; i < 10; i++ {
		tr.Observe(100) // first window: all slow
	}
	q := tr.Quantiles()
	if q.Count != 10 || q.P99 < 90 {
		t.Fatalf("first window quantiles = %+v", q)
	}
	for i := 0; i < 10; i++ {
		tr.Observe(1) // second window: fast again
	}
	q = tr.Quantiles()
	if q.Count != 20 {
		t.Fatalf("union count = %d, want 20 (prev + cur)", q.Count)
	}
	if q.P99 < 90 {
		t.Fatalf("p99 = %g should still see the slow window", q.P99)
	}
	if q.P50 > 2 {
		t.Fatalf("p50 = %g should see the fast window", q.P50)
	}
	// A third window retires the slow one entirely.
	for i := 0; i < 10; i++ {
		tr.Observe(1)
	}
	q = tr.Quantiles()
	if q.P99 > 2 {
		t.Fatalf("p99 = %g after the slow window aged out", q.P99)
	}
	if q.Max > 2 {
		t.Fatalf("max = %g should be windowed too", q.Max)
	}
}

func TestTailTrackerHistogramMergeable(t *testing.T) {
	a, b := NewTailTracker(100), NewTailTracker(100)
	for i := 0; i < 50; i++ {
		a.Observe(1)
		b.Observe(100)
	}
	merged := a.Histogram()
	merged.Merge(b.Histogram())
	if merged.Count() != 100 {
		t.Fatalf("merged count = %d", merged.Count())
	}
	if p99 := merged.Quantile(0.99); p99 < 90 {
		t.Fatalf("merged p99 = %g, want the slow replica visible", p99)
	}
	if p50 := merged.Quantile(0.5); p50 > 2 {
		t.Fatalf("merged p50 = %g, want the fast replica visible", p50)
	}
}
