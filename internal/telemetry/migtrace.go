package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Migration trace phases. A user migration is a distributed operation: the
// source replica serializes and hands off the user (init), the destination
// installs it (recv) and acknowledges back (ack). Each replica records the
// phases it executes locally; StitchMigrations correlates them by ID into
// one cross-replica view.
const (
	// MigPhaseInit is the source-side handoff (t_mig_ini).
	MigPhaseInit = "init"
	// MigPhaseRecv is the destination-side installation (t_mig_rcv).
	MigPhaseRecv = "recv"
	// MigPhaseAck is the source-side receipt of the destination's ack.
	MigPhaseAck = "ack"
)

// MigEvent is one locally observed phase of a user migration. The ID is
// assigned by the initiating server and carried in the wire-level migration
// transfer, so the same migration is identifiable on every replica it
// touches.
type MigEvent struct {
	// ID is the migration's unique identifier (source server prefix +
	// counter, like entity IDs).
	ID uint64 `json:"id"`
	// Phase is MigPhaseInit, MigPhaseRecv or MigPhaseAck.
	Phase string `json:"phase"`
	// User is the migrating client's network ID.
	User string `json:"user"`
	// From and To are the source and destination server IDs.
	From string `json:"from"`
	To   string `json:"to"`
	// Tick is the recording server's tick counter at the event.
	Tick uint64 `json:"tick"`
	// UnixMicro is the event's wall-clock time in Unix microseconds (the
	// trace_event timebase).
	UnixMicro int64 `json:"unix_us"`
	// DurMS is the time spent executing the phase (serialization on init,
	// installation on recv; 0 for acks).
	DurMS float64 `json:"dur_ms"`
}

// DefaultMigTraceCapacity is the migration tracer ring size used when a
// non-positive capacity is requested.
const DefaultMigTraceCapacity = 4096

// MigTracer records migration events into a bounded ring buffer, one per
// server. It is safe for concurrent use: the real-time loop records while
// the fleet collector reads.
type MigTracer struct {
	mu    sync.Mutex
	buf   []MigEvent
	next  int
	full  bool
	total uint64
}

// NewMigTracer returns a tracer keeping the last capacity events
// (DefaultMigTraceCapacity if capacity is not positive).
func NewMigTracer(capacity int) *MigTracer {
	if capacity <= 0 {
		capacity = DefaultMigTraceCapacity
	}
	return &MigTracer{buf: make([]MigEvent, 0, capacity)}
}

// Record stores one migration event, evicting the oldest when full.
func (tr *MigTracer) Record(e MigEvent) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.total++
	if len(tr.buf) < cap(tr.buf) {
		tr.buf = append(tr.buf, e)
		return
	}
	tr.full = true
	tr.buf[tr.next] = e
	tr.next = (tr.next + 1) % cap(tr.buf)
}

// Events returns the buffered events in chronological order.
func (tr *MigTracer) Events() []MigEvent {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]MigEvent, 0, len(tr.buf))
	if tr.full {
		out = append(out, tr.buf[tr.next:]...)
		out = append(out, tr.buf[:tr.next]...)
	} else {
		out = append(out, tr.buf...)
	}
	return out
}

// Len reports the number of buffered events.
func (tr *MigTracer) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.buf)
}

// Total reports how many events were ever recorded (including evicted ones).
func (tr *MigTracer) Total() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.total
}

// Migration is one user migration stitched from the events of every replica
// that observed it. Incomplete migrations (an init whose transfer never
// arrived, or a recv whose init was evicted from the source ring) are kept
// and flagged, never dropped: a vanished handoff is exactly the failure a
// cross-replica trace exists to expose.
type Migration struct {
	ID   uint64 `json:"id"`
	User string `json:"user"`
	From string `json:"from"`
	To   string `json:"to"`
	// Init, Recv and Ack are the correlated phase events (nil when the
	// phase was not observed).
	Init *MigEvent `json:"init,omitempty"`
	Recv *MigEvent `json:"recv,omitempty"`
	Ack  *MigEvent `json:"ack,omitempty"`
	// Complete reports that both endpoints observed the migration: the
	// user verifiably arrived.
	Complete bool `json:"complete"`
	// LatencyMS is the wall-clock time from init start to recv end
	// (0 when incomplete or when clocks make it negative).
	LatencyMS float64 `json:"latency_ms,omitempty"`
}

// StitchMigrations correlates per-replica migration events into one
// migration record per ID. perReplica maps a replica ID to the events its
// MigTracer buffered. The result is ordered by init time (events without an
// init sort by their earliest observation).
func StitchMigrations(perReplica map[string][]MigEvent) []Migration {
	byID := make(map[uint64]*Migration)
	ordered := make([]*Migration, 0)
	get := func(e MigEvent) *Migration {
		m, ok := byID[e.ID]
		if !ok {
			m = &Migration{ID: e.ID, User: e.User, From: e.From, To: e.To}
			byID[e.ID] = m
			ordered = append(ordered, m)
		}
		return m
	}
	// Deterministic stitching regardless of map order.
	replicas := make([]string, 0, len(perReplica))
	for id := range perReplica {
		replicas = append(replicas, id)
	}
	sort.Strings(replicas)
	for _, rid := range replicas {
		for _, e := range perReplica[rid] {
			e := e
			m := get(e)
			switch e.Phase {
			case MigPhaseInit:
				m.Init = &e
				m.User, m.From, m.To = e.User, e.From, e.To
			case MigPhaseRecv:
				m.Recv = &e
			case MigPhaseAck:
				m.Ack = &e
			}
		}
	}
	for _, m := range ordered {
		m.Complete = m.Init != nil && m.Recv != nil
		if m.Complete {
			lat := float64(m.Recv.UnixMicro-m.Init.UnixMicro)/1e3 + m.Recv.DurMS
			if lat > 0 {
				m.LatencyMS = lat
			}
		}
	}
	sort.Slice(ordered, func(i, j int) bool {
		return migSortKey(ordered[i]) < migSortKey(ordered[j])
	})
	out := make([]Migration, len(ordered))
	for i, m := range ordered {
		out[i] = *m
	}
	return out
}

func migSortKey(m *Migration) int64 {
	if m.Init != nil {
		return m.Init.UnixMicro
	}
	if m.Recv != nil {
		return m.Recv.UnixMicro
	}
	if m.Ack != nil {
		return m.Ack.UnixMicro
	}
	return 0
}

// WriteMigrationChromeTrace renders per-replica migration events as Chrome
// trace_event JSON in which every replica is its own process row: the
// init span sits on the source replica's row, the recv span on the
// destination's, and both carry the shared migration ID in their args.
// Incomplete migrations are flagged with "incomplete": true on their
// surviving spans, not dropped.
func WriteMigrationChromeTrace(w io.Writer, perReplica map[string][]MigEvent) error {
	replicas := make([]string, 0, len(perReplica))
	for id := range perReplica {
		replicas = append(replicas, id)
	}
	sort.Strings(replicas)
	pid := make(map[string]int, len(replicas))
	for i, id := range replicas {
		pid[id] = i + 1
	}
	complete := make(map[uint64]bool)
	for _, m := range StitchMigrations(perReplica) {
		complete[m.ID] = m.Complete
	}
	out := chromeTrace{DisplayTimeUnit: "ms"}
	for _, id := range replicas {
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", PID: pid[id],
			Args: map[string]any{"name": "replica " + id},
		})
	}
	for _, rid := range replicas {
		for _, e := range perReplica[rid] {
			dur := e.DurMS * 1000
			if dur <= 0 {
				dur = 1 // acks and sub-µs phases stay visible in the viewer
			}
			args := map[string]any{
				"migration_id": e.ID,
				"user":         e.User,
				"from":         e.From,
				"to":           e.To,
				"tick":         e.Tick,
			}
			if !complete[e.ID] {
				args["incomplete"] = true
			}
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "mig_" + e.Phase, Ph: "X",
				TS: float64(e.UnixMicro), Dur: dur,
				PID: pid[rid], TID: 0,
				Args: args,
			})
		}
	}
	return json.NewEncoder(w).Encode(out)
}

// WriteMigrationJSONL renders stitched migrations as JSONL: one Migration
// object per line, the grep/jq-friendly export.
func WriteMigrationJSONL(w io.Writer, migrations []Migration) error {
	enc := json.NewEncoder(w)
	for _, m := range migrations {
		if err := enc.Encode(m); err != nil {
			return fmt.Errorf("telemetry: encode migration %d: %w", m.ID, err)
		}
	}
	return nil
}
