package telemetry

import (
	"math"
	"math/bits"
)

// LogHistogram is a log-bucketed (HDR-style) histogram over positive
// millisecond values. Values are quantized to microseconds and bucketed by
// octave with 16 linear sub-buckets per octave, so every recorded value is
// represented with at most ~6 % relative error across the full range
// (1 µs … minutes) — precise enough for p50…p999 latency analysis without
// choosing bounds up front, unlike the fixed-bucket Histogram.
//
// Two LogHistograms always share the same bucket layout, which makes them
// mergeable: per-replica (or per-client) recorders can be combined into a
// fleet-wide distribution with Merge and the quantiles of the merged
// histogram are exact over the union of observations (up to bucket
// resolution). LogHistogram is not synchronized; Latency wraps it with a
// mutex for concurrent recording.
type LogHistogram struct {
	counts [numLogBuckets]uint64
	count  uint64
	sum    float64
	max    float64
}

// Bucket layout: microsecond value u maps to index u for u < 32 (exact),
// and to octave/sub-bucket (e-3)*16 + ((u >> (e-4)) & 15) for u >= 32,
// where e is the zero-based position of u's most significant bit. The
// highest octave of a uint64 ends at index (63-3)*16 + 15.
const (
	logSubBuckets = 16
	numLogBuckets = (63-3)*logSubBuckets + logSubBuckets
)

// NewLogHistogram returns an empty histogram.
func NewLogHistogram() *LogHistogram { return &LogHistogram{} }

// logBucket maps a microsecond value to its bucket index.
func logBucket(us uint64) int {
	if us < 2*logSubBuckets {
		return int(us)
	}
	e := bits.Len64(us) - 1 // >= 5
	return (e-3)*logSubBuckets + int((us>>(e-4))&(logSubBuckets-1))
}

// logBucketLow returns the inclusive lower bound (µs) of a bucket.
func logBucketLow(i int) uint64 {
	if i < 2*logSubBuckets {
		return uint64(i)
	}
	g := i / logSubBuckets // octave group, >= 2
	sub := uint64(i % logSubBuckets)
	return (logSubBuckets + sub) << (g - 1)
}

// logBucketWidth returns the width (µs) of a bucket.
func logBucketWidth(i int) uint64 {
	if i < 2*logSubBuckets {
		return 1
	}
	return 1 << (i/logSubBuckets - 1)
}

// Observe records one value in milliseconds. Non-finite and negative
// values are ignored; sub-microsecond values land in the lowest bucket.
func (h *LogHistogram) Observe(ms float64) {
	if math.IsNaN(ms) || math.IsInf(ms, 0) || ms < 0 {
		return
	}
	us := uint64(ms * 1000)
	h.counts[logBucket(us)]++
	h.count++
	h.sum += ms
	if ms > h.max {
		h.max = ms
	}
}

// Count reports the number of observations.
func (h *LogHistogram) Count() uint64 { return h.count }

// Sum reports the sum of all observed values (ms).
func (h *LogHistogram) Sum() float64 { return h.sum }

// Max reports the largest observed value (ms), tracked exactly.
func (h *LogHistogram) Max() float64 { return h.max }

// Mean reports the mean observed value (ms), or 0 when empty.
func (h *LogHistogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the q-quantile in milliseconds: the midpoint of the
// bucket holding the rank-⌈q·count⌉ observation. When that bucket is the
// highest occupied one, the exact tracked maximum is returned instead of
// the midpoint — so a single-bucket histogram (all observations equal)
// reports exactly its observed value at every q, and no quantile ever
// exceeds Max().
//
// Edge cases are total, not panics:
//   - an empty histogram returns 0 for every q;
//   - q <= 0 clamps to rank 1, i.e. the lowest occupied bucket (a
//     bucket-resolution estimate of the minimum);
//   - q >= 1 returns Max(), which is tracked exactly rather than at
//     bucket resolution.
func (h *LogHistogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	seen := uint64(0)
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if seen == h.count {
				// No occupied bucket above this one: it holds the maximum,
				// which is tracked exactly.
				return h.max
			}
			mid := float64(logBucketLow(i)) + float64(logBucketWidth(i))/2
			v := mid / 1000
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds every observation of o into h. Both histograms keep their
// identities; o is read but not modified. Merging a nil or empty histogram
// is a no-op, and merging anything into an empty histogram yields a copy
// of o's distribution — Merge never invents observations, so quantiles of
// the merge are exactly the quantiles of the union.
func (h *LogHistogram) Merge(o *LogHistogram) {
	if o == nil {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Clone returns an independent copy.
func (h *LogHistogram) Clone() *LogHistogram {
	c := *h
	return &c
}
