package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func sampleTrace(tick uint64) TickTrace {
	return TickTrace{
		Tick:           tick,
		StartUnixMicro: int64(tick) * 40_000,
		WallMS:         1.2,
		Spans: []Span{
			{Name: "t_ua", StartMS: 0, DurMS: 0.5, Items: 10},
			{Name: "t_aoi", StartMS: 0.5, DurMS: 0.3, Items: 10},
			{Name: "t_su", StartMS: 0.8, DurMS: 0.2, Items: 10},
		},
	}
}

func TestTracerRingBuffer(t *testing.T) {
	tr := NewTracer(4)
	for i := uint64(1); i <= 10; i++ {
		tr.Record(sampleTrace(i))
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	last := tr.Last(0)
	if len(last) != 4 {
		t.Fatalf("Last(0) returned %d traces", len(last))
	}
	for i, want := range []uint64{7, 8, 9, 10} {
		if last[i].Tick != want {
			t.Fatalf("Last(0)[%d].Tick = %d, want %d (chronological order)", i, last[i].Tick, want)
		}
	}
	if got := tr.Last(2); len(got) != 2 || got[0].Tick != 9 || got[1].Tick != 10 {
		t.Fatalf("Last(2) = %v", got)
	}
	if got := tr.Last(100); len(got) != 4 {
		t.Fatalf("Last(100) returned %d traces", len(got))
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	for i := 0; i < DefaultTraceCapacity+5; i++ {
		tr.Record(TickTrace{Tick: uint64(i)})
	}
	if tr.Len() != DefaultTraceCapacity {
		t.Fatalf("Len = %d, want %d", tr.Len(), DefaultTraceCapacity)
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	traces := []TickTrace{sampleTrace(1), sampleTrace(2)}
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, traces); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("not valid trace_event JSON: %v\n%s", err, sb.String())
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", decoded.DisplayTimeUnit)
	}
	// 2 ticks × (1 enclosing event + 3 spans).
	if len(decoded.TraceEvents) != 8 {
		t.Fatalf("got %d events, want 8", len(decoded.TraceEvents))
	}
	// Per tick: the span events must sum to the breakdown total, and every
	// event must be a complete ("X") event inside its tick window.
	spanSum := 0.0
	var tickDur float64
	for _, ev := range decoded.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has ph=%q, want X", ev.Name, ev.Ph)
		}
		if ev.Name == "tick" {
			tickDur = ev.Dur
			continue
		}
		if ev.TID != 1 {
			t.Fatalf("span %q on tid %d", ev.Name, ev.TID)
		}
		spanSum += ev.Dur
	}
	wantSum := 2 * sampleTrace(1).TotalMS() * 1000 // µs
	if math.Abs(spanSum-wantSum) > 1e-9 {
		t.Fatalf("span durations sum to %g µs, want %g", spanSum, wantSum)
	}
	if tickDur != 1.2*1000 {
		t.Fatalf("tick event dur = %g µs, want 1200", tickDur)
	}
}

func TestWriteTraceJSONLRoundTrip(t *testing.T) {
	traces := []TickTrace{sampleTrace(1), sampleTrace(2), sampleTrace(3)}
	var sb strings.Builder
	if err := WriteTraceJSONL(&sb, traces); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, line := range lines {
		var tt TickTrace
		if err := json.Unmarshal([]byte(line), &tt); err != nil {
			t.Fatalf("line %d invalid: %v", i, err)
		}
		if tt.Tick != traces[i].Tick || len(tt.Spans) != 3 {
			t.Fatalf("line %d round-trip mismatch: %+v", i, tt)
		}
	}
}

func TestTickTraceTotal(t *testing.T) {
	tt := sampleTrace(1)
	if got := tt.TotalMS(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("TotalMS = %g, want 1.0", got)
	}
	if (TickTrace{}).TotalMS() != 0 {
		t.Fatal("empty trace total != 0")
	}
}
