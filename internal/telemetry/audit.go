package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// ServerSnapshot is the per-server input to one RTF-RMS decision, mirrored
// from rms.ServerState so the audit log is self-contained.
type ServerSnapshot struct {
	ID       string  `json:"id"`
	Users    int     `json:"users"`
	TickMS   float64 `json:"tick_ms"`
	Power    float64 `json:"power"`
	Class    string  `json:"class,omitempty"`
	Ready    bool    `json:"ready"`
	Draining bool    `json:"draining,omitempty"`
}

// AuditAction is one executed (or failed) action within a decision record,
// together with the reason the controller chose it and — for migrations —
// the Eq. (5) budgets that bounded it.
type AuditAction struct {
	// Kind is the rms.ActionKind string ("migrate", "replicate", ...).
	Kind string `json:"kind"`
	Src  string `json:"src,omitempty"`
	Dst  string `json:"dst,omitempty"`
	// Users is the migration count, when applicable.
	Users int `json:"users,omitempty"`
	// Reason explains the decision in terms of the model thresholds.
	Reason string `json:"reason"`
	// XMaxIni / XMaxRcv are the Eq. (5) per-second migration budgets of the
	// source and destination at decision time (migrations only).
	XMaxIni int `json:"x_max_ini,omitempty"`
	XMaxRcv int `json:"x_max_rcv,omitempty"`
	// Err records an execution failure.
	Err string `json:"err,omitempty"`
}

// DecisionRecord captures one RTF-RMS control-loop step: its inputs, the
// scalability-model thresholds that gated the choice, and the resulting
// actions. One record per Manager.Step, actions or not, so controller
// behaviour is explainable and diffable across runs.
type DecisionRecord struct {
	// Time is the control-loop timestamp (session seconds).
	Time float64 `json:"time"`
	// Zone identifies the managed zone in multi-zone deployments (0 when
	// the manager is not zone-tagged; see rms.Manager.SetZone).
	Zone uint32 `json:"zone,omitempty"`
	// Users, NPCs, Replicas are the model's n, m and l (ready replicas).
	Users    int `json:"n"`
	NPCs     int `json:"m"`
	Replicas int `json:"l"`
	// Servers snapshots every replica, including provisioning/draining ones.
	Servers []ServerSnapshot `json:"servers"`
	// NMax is the power-aware capacity of the ready group (Eq. 2 for a
	// homogeneous fleet) and Trigger the enactment threshold derived from it.
	NMax            int     `json:"n_max"`
	Trigger         int     `json:"trigger"`
	TriggerFraction float64 `json:"trigger_fraction"`
	// LMax is the effective replica cap (Eq. 3 or the configured override).
	LMax int `json:"l_max"`
	// RemoveHeadroom is the scale-down guard fraction.
	RemoveHeadroom float64 `json:"remove_headroom"`
	// Settled reports whether the group was eligible for replica-set
	// changes this step (no provisioning, no draining, cooldown expired).
	Settled bool `json:"settled"`
	// Actions are the step's decisions, in execution order (empty when the
	// controller held steady).
	Actions []AuditAction `json:"actions,omitempty"`
}

// DecisionSink consumes decision records. Implementations: AuditLog
// (JSONL) and MemorySink (tests, experiments).
type DecisionSink interface {
	Record(DecisionRecord)
}

// AuditLog streams decision records as JSONL to a writer. It is safe for
// concurrent use. Encoding errors are sticky and reported by Err, so the
// hot control loop never has to handle them inline.
type AuditLog struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   int
	err error
}

// NewAuditLog returns an audit log writing one JSON record per line to w.
func NewAuditLog(w io.Writer) *AuditLog {
	return &AuditLog{enc: json.NewEncoder(w)}
}

// Record implements DecisionSink.
func (l *AuditLog) Record(r DecisionRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if err := l.enc.Encode(r); err != nil {
		l.err = err
		return
	}
	l.n++
}

// Records reports how many records were written.
func (l *AuditLog) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Err returns the first encoding error, if any.
func (l *AuditLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// MemorySink collects decision records in memory, keeping the newest
// memorySinkCap records.
type MemorySink struct {
	mu      sync.Mutex
	records []DecisionRecord
	dropped uint64
}

// Record implements DecisionSink.
func (s *MemorySink) Record(r DecisionRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.records) >= memorySinkCap {
		copy(s.records, s.records[1:])
		s.records[len(s.records)-1] = r
		s.dropped++
		return
	}
	s.records = append(s.records, r)
}

// Snapshot returns a copy of the collected records.
func (s *MemorySink) Snapshot() []DecisionRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]DecisionRecord(nil), s.records...)
}

// Dropped reports how many old records the cap evicted.
func (s *MemorySink) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
