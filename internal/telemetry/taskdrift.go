package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// TaskDrift tracks model drift per task: one Drift tracker per named model
// term, so a diverging calibration can be attributed to the specific task
// curve (t_ua, t_npc, ...) that no longer matches the deployed workload,
// instead of only flagging the total tick prediction. The aggregate Drift
// answers "is the model wrong"; TaskDrift answers "which of the four terms
// is wrong".
type TaskDrift struct {
	mu    sync.Mutex
	tasks map[string]*Drift
	order []string
}

// NewTaskDrift returns a tracker. Tasks named up front keep a stable
// export order; unknown tasks are registered on first Observe.
func NewTaskDrift(tasks ...string) *TaskDrift {
	td := &TaskDrift{tasks: make(map[string]*Drift, len(tasks))}
	for _, name := range tasks {
		td.tasks[name] = &Drift{}
		td.order = append(td.order, name)
	}
	return td
}

func (td *TaskDrift) drift(task string) *Drift {
	td.mu.Lock()
	defer td.mu.Unlock()
	d := td.tasks[task]
	if d == nil {
		d = &Drift{}
		td.tasks[task] = d
		td.order = append(td.order, task)
	}
	return d
}

// Observe records one prediction/measurement pair (ms) for a task.
func (td *TaskDrift) Observe(task string, predictedMS, measuredMS float64) {
	td.drift(task).Observe(predictedMS, measuredMS)
}

// Snapshot returns the per-task drift snapshots in registration order.
func (td *TaskDrift) Snapshot() map[string]DriftSnapshot {
	td.mu.Lock()
	names := append([]string(nil), td.order...)
	drifts := make([]*Drift, len(names))
	for i, name := range names {
		drifts[i] = td.tasks[name]
	}
	td.mu.Unlock()
	out := make(map[string]DriftSnapshot, len(names))
	for i, name := range names {
		out[name] = drifts[i].Snapshot()
	}
	return out
}

// Worst returns the task with the largest mean |relative error| among
// tasks with at least one observation. ok is false when nothing was
// observed yet.
func (td *TaskDrift) Worst() (task string, snap DriftSnapshot, ok bool) {
	for name, s := range td.Snapshot() {
		if s.Samples == 0 {
			continue
		}
		if !ok || s.MeanAbsRatio > snap.MeanAbsRatio ||
			(s.MeanAbsRatio == snap.MeanAbsRatio && name < task) {
			task, snap, ok = name, s, true
		}
	}
	return task, snap, ok
}

// WriteMetrics writes the per-task drift gauges in the Prometheus text
// exposition format, one sample per task under each family.
//
// Exported families (all labeled {task=...}):
//
//	roia_model_task_predicted_ms        latest per-item prediction
//	roia_model_task_measured_ms         latest measured per-item cost
//	roia_model_task_error_ratio         latest signed relative error
//	roia_model_task_error_ratio_mean    mean |relative error| over the run
//	roia_model_task_error_ratio_worst   worst |relative error| over the run
//	roia_model_task_drift_samples_total observation count
func (td *TaskDrift) WriteMetrics(w io.Writer, labels string) error {
	snaps := td.Snapshot()
	names := make([]string, 0, len(snaps))
	for name := range snaps {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	families := []struct {
		name string
		typ  string
		v    func(DriftSnapshot) string
	}{
		{"roia_model_task_predicted_ms", "gauge", func(s DriftSnapshot) string { return fmt.Sprintf("%g", s.PredictedMS) }},
		{"roia_model_task_measured_ms", "gauge", func(s DriftSnapshot) string { return fmt.Sprintf("%g", s.MeasuredMS) }},
		{"roia_model_task_error_ratio", "gauge", func(s DriftSnapshot) string { return fmt.Sprintf("%g", s.ErrRatio) }},
		{"roia_model_task_error_ratio_mean", "gauge", func(s DriftSnapshot) string { return fmt.Sprintf("%g", s.MeanAbsRatio) }},
		{"roia_model_task_error_ratio_worst", "gauge", func(s DriftSnapshot) string { return fmt.Sprintf("%g", s.WorstRatio) }},
		{"roia_model_task_drift_samples_total", "counter", func(s DriftSnapshot) string { return fmt.Sprintf("%d", s.Samples) }},
	}
	for _, fam := range families {
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, name := range names {
			fmt.Fprintf(&b, "%s%s %s\n", fam.name, FormatLabels(labels, fmt.Sprintf("task=%q", name)), fam.v(snaps[name]))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
