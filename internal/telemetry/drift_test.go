package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestDriftObserve(t *testing.T) {
	var d Drift
	d.Observe(10, 8) // |err| = 2, rel = 0.25
	d.Observe(9, 10) // |err| = 1, rel = 0.1
	s := d.Snapshot()
	if s.Samples != 2 {
		t.Fatalf("Samples = %d", s.Samples)
	}
	if s.PredictedMS != 9 || s.MeasuredMS != 10 {
		t.Fatalf("latest pair = (%g, %g)", s.PredictedMS, s.MeasuredMS)
	}
	if math.Abs(s.ErrMS - -1) > 1e-12 {
		t.Fatalf("ErrMS = %g, want -1", s.ErrMS)
	}
	if math.Abs(s.ErrRatio - -0.1) > 1e-12 {
		t.Fatalf("ErrRatio = %g, want -0.1", s.ErrRatio)
	}
	if math.Abs(s.MeanAbsErrMS-1.5) > 1e-12 {
		t.Fatalf("MeanAbsErrMS = %g, want 1.5", s.MeanAbsErrMS)
	}
	if math.Abs(s.MeanAbsRatio-0.175) > 1e-12 {
		t.Fatalf("MeanAbsRatio = %g, want 0.175", s.MeanAbsRatio)
	}
	if math.Abs(s.WorstRatio-0.25) > 1e-12 {
		t.Fatalf("WorstRatio = %g, want 0.25", s.WorstRatio)
	}
}

func TestDriftIgnoresNonFinite(t *testing.T) {
	var d Drift
	d.Observe(math.NaN(), 1)
	d.Observe(1, math.Inf(1))
	if s := d.Snapshot(); s.Samples != 0 {
		t.Fatalf("non-finite observations recorded: %+v", s)
	}
}

func TestDriftZeroMeasurement(t *testing.T) {
	var d Drift
	d.Observe(5, 0) // idle server: no measured ticks yet
	s := d.Snapshot()
	if s.ErrRatio != 0 {
		t.Fatalf("ErrRatio = %g for zero measurement", s.ErrRatio)
	}
	if s.MeanAbsErrMS != 5 {
		t.Fatalf("MeanAbsErrMS = %g", s.MeanAbsErrMS)
	}
}

func TestDriftWriteMetrics(t *testing.T) {
	var d Drift
	d.Observe(12, 10)
	var sb strings.Builder
	if err := d.WriteMetrics(&sb, `server="s1"`); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE roia_model_predicted_tick_ms gauge",
		`roia_model_predicted_tick_ms{server="s1"} 12`,
		`roia_model_measured_tick_ms{server="s1"} 10`,
		`roia_model_tick_error_ms{server="s1"} 2`,
		`roia_model_tick_error_ratio{server="s1"} 0.2`,
		`roia_model_drift_samples_total{server="s1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}
