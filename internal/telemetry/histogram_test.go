package telemetry

import (
	"strconv"
	"strings"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram(1, 5, 10)
	for _, v := range []float64{0.5, 1, 3, 7, 20, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 131.5 {
		t.Fatalf("Sum = %g", h.Sum())
	}
	// Bucket assignment is le (inclusive upper bound): 0.5 and 1 → le=1,
	// 3 → le=5, 7 → le=10, 20 and 100 → +Inf.
	want := []uint64{2, 1, 1, 2}
	for i, w := range want {
		if h.counts[i] != w {
			t.Fatalf("counts[%d] = %d, want %d", i, h.counts[i], w)
		}
	}
}

func TestHistogramWriteCumulative(t *testing.T) {
	h := NewHistogram(1, 5, 10)
	for _, v := range []float64{0.5, 3, 7, 20} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := h.Write(&sb, "roia_tick_duration_ms", `server="s1"`); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE roia_tick_duration_ms histogram") {
		t.Fatalf("missing TYPE header:\n%s", out)
	}
	for _, want := range []string{
		`roia_tick_duration_ms_bucket{server="s1",le="1"} 1`,
		`roia_tick_duration_ms_bucket{server="s1",le="5"} 2`,
		`roia_tick_duration_ms_bucket{server="s1",le="10"} 3`,
		`roia_tick_duration_ms_bucket{server="s1",le="+Inf"} 4`,
		`roia_tick_duration_ms_sum{server="s1"} 30.5`,
		`roia_tick_duration_ms_count{server="s1"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets must be monotonically non-decreasing and end with
	// bucket(+Inf) == count.
	var prev uint64
	var inf uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "roia_tick_duration_ms_bucket") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket value in %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket values not monotonic: %d after %d\n%s", v, prev, out)
		}
		prev = v
		inf = v
	}
	if inf != h.Count() {
		t.Fatalf("+Inf bucket %d != count %d", inf, h.Count())
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram(DefTickBuckets()...)
	h.Observe(3)
	c := h.Clone()
	h.Observe(7)
	if c.Count() != 1 || h.Count() != 2 {
		t.Fatalf("clone not independent: clone=%d orig=%d", c.Count(), h.Count())
	}
}

func TestHistogramValidatesBounds(t *testing.T) {
	for _, bounds := range [][]float64{{}, {5, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for bounds %v", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}
