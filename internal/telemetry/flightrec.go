package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// TickRecord is the complete per-tick observation the flight recorder
// retains: the wall/CPU split, the workload gauges the scalability model is
// parameterized with (n, a, m, l, w), the receive-queue depth, the QoS
// deadline and its slack, and the per-task decomposition. One record is
// everything needed to explain a single slow tick after the fact.
type TickRecord struct {
	// Tick is the server's tick counter.
	Tick uint64 `json:"tick"`
	// StartUnixMicro is the tick's wall-clock start in Unix microseconds.
	StartUnixMicro int64 `json:"start_unix_us"`
	// WallMS is the elapsed tick duration — the axis the QoS deadline and
	// the hiccup detector judge.
	WallMS float64 `json:"wall_ms"`
	// CPUMS is the tick's CPU sum across workers (≥ WallMS under the
	// parallel executor).
	CPUMS float64 `json:"cpu_ms"`
	// DeadlineMS is the tick QoS deadline 1/U in force (0 = disabled).
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	// SlackMS is DeadlineMS − WallMS: negative on a violating tick.
	// Meaningless (0) when no deadline is set.
	SlackMS float64 `json:"slack_ms,omitempty"`
	// Users/ActiveUsers/NPCs/Replicas/Workers are the model's n, a, m, l, w
	// during the tick.
	Users       int `json:"users"`
	ActiveUsers int `json:"active_users"`
	NPCs        int `json:"npcs,omitempty"`
	Replicas    int `json:"replicas,omitempty"`
	Workers     int `json:"workers,omitempty"`
	// QueueDepth is the number of frames drained from the receive queue at
	// the start of the tick — backlog pressure when a previous tick ran long.
	QueueDepth int `json:"queue_depth"`
	// BytesIn/BytesOut are the tick's framed wire bytes (transport header
	// + payload, matching what the transport reads and writes).
	BytesIn  int `json:"bytes_in,omitempty"`
	BytesOut int `json:"bytes_out,omitempty"`
	// GCPauseMS is the stop-the-world GC pause time that landed inside the
	// tick and GCCycles the GC cycles that completed in it; AllocBytes and
	// AllocObjects are the tick's heap allocations. All four come from the
	// server's CostTracker and stay zero when cost tracking is off.
	GCPauseMS    float64 `json:"gc_pause_ms,omitempty"`
	GCCycles     uint64  `json:"gc_cycles,omitempty"`
	AllocBytes   uint64  `json:"alloc_bytes,omitempty"`
	AllocObjects uint64  `json:"alloc_objects,omitempty"`
	// Tasks is the per-task (t_ua, t_npc, ...) time/item decomposition of
	// the tick, in loop order; tasks that did no work are omitted.
	Tasks []Span `json:"tasks,omitempty"`
}

// FlightCapture is one frozen pre/post window around a triggering tick.
// A capture is immutable once it appears in FlightRecorder.Captures.
type FlightCapture struct {
	// ID numbers captures per recorder, starting at 1.
	ID uint64 `json:"capture"`
	// Reason is why the trigger fired: "deadline" (WallMS exceeded the QoS
	// deadline) or "hiccup" (WallMS exceeded K× the rolling median).
	Reason string `json:"reason"`
	// TriggerTick is the tick counter of the offending tick.
	TriggerTick uint64 `json:"trigger_tick"`
	// MedianMS is the rolling-median tick wall time at the trigger (0 until
	// the detector's window has filled).
	MedianMS float64 `json:"median_ms"`
	// GCAttributed classifies the capture: true when the triggering tick
	// observed in-tick GC activity (a nonzero pause or a completed cycle),
	// so GC-caused tail spikes are distinguishable from simulation cost.
	// Always false when the server runs without a CostTracker.
	GCAttributed bool `json:"gc_attributed"`
	// Records is the surrounding window in chronological order: up to Pre
	// ticks before the trigger, the trigger itself, and Post ticks after.
	Records []TickRecord `json:"-"`
}

// Flight-recorder defaults: a 16-tick window either side of the trigger
// (±0.64 s at 25 Hz), a hiccup at 4× the median of the last 64 ticks but
// never below 1 ms (sub-millisecond jitter is noise, not a hiccup), and at
// most 16 retained captures (oldest dropped first).
const (
	DefaultFlightPre    = 16
	DefaultFlightPost   = 16
	DefaultHiccupK      = 4.0
	DefaultHiccupWindow = 64
	DefaultMinHiccupMS  = 1.0
	DefaultMaxCaptures  = 16
)

// FlightRecConfig parameterises a FlightRecorder. The zero value selects
// every default above.
type FlightRecConfig struct {
	// Pre/Post are how many ticks before/after the trigger a capture keeps.
	// Negative Post means no post window (the capture closes on the
	// triggering tick itself).
	Pre, Post int
	// K is the hiccup factor: a tick is a hiccup when its wall time exceeds
	// K× the rolling-window median (and MinHiccupMS).
	K float64
	// MinHiccupMS is the absolute floor below which no tick counts as a
	// hiccup, whatever the median. Negative disables the floor (tests).
	MinHiccupMS float64
	// Window is the rolling-median window length in ticks; hiccup detection
	// stays dormant until the window has filled once.
	Window int
	// MaxCaptures bounds the retained capture list; when full, the oldest
	// capture is dropped (counted by Dropped).
	MaxCaptures int
}

func (c FlightRecConfig) withDefaults() FlightRecConfig {
	if c.Pre <= 0 {
		c.Pre = DefaultFlightPre
	}
	if c.Post == 0 {
		c.Post = DefaultFlightPost
	} else if c.Post < 0 {
		c.Post = 0
	}
	if c.K <= 0 {
		c.K = DefaultHiccupK
	}
	if c.MinHiccupMS == 0 {
		c.MinHiccupMS = DefaultMinHiccupMS
	} else if c.MinHiccupMS < 0 {
		c.MinHiccupMS = 0
	}
	if c.Window <= 0 {
		c.Window = DefaultHiccupWindow
	}
	if c.MaxCaptures <= 0 {
		c.MaxCaptures = DefaultMaxCaptures
	}
	return c
}

// FlightRecorder is the tick loop's black box: it keeps the last Pre tick
// records in a ring, watches each new record for a deadline violation or a
// hiccup (wall time above K× the rolling-window median), and on a trigger
// freezes the surrounding pre/post window into an immutable FlightCapture.
// A p99.9 outlier then ships with its own explanation — the offending
// tick's task breakdown plus the ticks around it — instead of a bare
// histogram bucket increment.
//
// FlightRecorder is safe for concurrent use: the real-time loop records
// while HTTP handlers and the fleet collector read. Recording is O(Window)
// (one insertion into a sorted median window) and allocation-free outside
// captures, so it can stay enabled in production.
type FlightRecorder struct {
	mu  sync.Mutex
	cfg FlightRecConfig

	// ring holds the most recent records (capacity Pre+1: the pre window
	// plus the current tick), overwritten oldest-first.
	ring []TickRecord
	next int

	// window is the rolling wall-time window the median is computed over;
	// sorted is its sorted mirror, maintained incrementally.
	window []float64
	wnext  int
	sorted []float64

	// open is the capture still collecting its post window, if any. While a
	// capture is open, further triggers count (hiccups) but do not open a
	// second capture — one anomaly yields one capture.
	open     *FlightCapture
	postLeft int

	captures []*FlightCapture
	nextID   uint64
	hiccups  uint64
	dropped  uint64
}

// NewFlightRecorder returns a recorder with the given configuration (zero
// fields take the Default* values).
func NewFlightRecorder(cfg FlightRecConfig) *FlightRecorder {
	cfg = cfg.withDefaults()
	return &FlightRecorder{
		cfg:    cfg,
		ring:   make([]TickRecord, 0, cfg.Pre+1),
		window: make([]float64, 0, cfg.Window),
		sorted: make([]float64, 0, cfg.Window),
	}
}

// Record ingests one tick record, runs the trigger checks, and maintains
// any open capture. The recorder takes ownership of rec.Tasks.
func (r *FlightRecorder) Record(rec TickRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()

	// The median is computed before rec enters the window, so a hiccup is
	// judged against the recent past, not against itself.
	median, windowFull := r.medianLocked()
	reason := ""
	if rec.DeadlineMS > 0 && rec.WallMS > rec.DeadlineMS {
		reason = "deadline"
	}
	if windowFull && median > 0 && rec.WallMS > r.cfg.K*median && rec.WallMS >= r.cfg.MinHiccupMS {
		r.hiccups++
		if reason == "" {
			reason = "hiccup"
		}
	}
	r.pushWindowLocked(rec.WallMS)

	// Pre-window ring: append until full, then overwrite oldest.
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
	} else {
		r.ring[r.next] = rec
		r.next = (r.next + 1) % cap(r.ring)
	}

	switch {
	case r.open != nil:
		r.open.Records = append(r.open.Records, rec)
		r.postLeft--
		if r.postLeft <= 0 {
			r.freezeLocked()
		}
	case reason != "":
		r.nextID++
		c := &FlightCapture{
			ID:           r.nextID,
			Reason:       reason,
			TriggerTick:  rec.Tick,
			MedianMS:     median,
			GCAttributed: rec.GCPauseMS > 0 || rec.GCCycles > 0,
			Records:      r.ringOrderedLocked(),
		}
		r.open = c
		r.postLeft = r.cfg.Post
		if r.postLeft <= 0 {
			r.freezeLocked()
		}
	}
}

// medianLocked returns the rolling median and whether the window is full
// (detection stays dormant until one full window has been observed).
func (r *FlightRecorder) medianLocked() (float64, bool) {
	if len(r.window) < cap(r.window) {
		return 0, false
	}
	n := len(r.sorted)
	if n%2 == 1 {
		return r.sorted[n/2], true
	}
	return (r.sorted[n/2-1] + r.sorted[n/2]) / 2, true
}

// pushWindowLocked inserts one wall time into the rolling window and its
// sorted mirror, evicting the oldest value once the window is full.
func (r *FlightRecorder) pushWindowLocked(ms float64) {
	if len(r.window) < cap(r.window) {
		r.window = append(r.window, ms)
	} else {
		old := r.window[r.wnext]
		r.window[r.wnext] = ms
		r.wnext = (r.wnext + 1) % cap(r.window)
		// Remove one instance of the evicted value from the sorted mirror.
		if i := sort.SearchFloat64s(r.sorted, old); i < len(r.sorted) && r.sorted[i] == old {
			r.sorted = append(r.sorted[:i], r.sorted[i+1:]...)
		}
	}
	i := sort.SearchFloat64s(r.sorted, ms)
	r.sorted = append(r.sorted, 0)
	copy(r.sorted[i+1:], r.sorted[i:])
	r.sorted[i] = ms
}

// ringOrderedLocked copies the ring's records in chronological order (the
// current tick last).
func (r *FlightRecorder) ringOrderedLocked() []TickRecord {
	out := make([]TickRecord, 0, len(r.ring))
	if len(r.ring) == cap(r.ring) {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring...)
	}
	return out
}

// freezeLocked finalizes the open capture into the bounded capture list,
// dropping the oldest capture when the list is at MaxCaptures.
func (r *FlightRecorder) freezeLocked() {
	if len(r.captures) >= r.cfg.MaxCaptures {
		copy(r.captures, r.captures[1:])
		r.captures[len(r.captures)-1] = nil
		r.captures = r.captures[:len(r.captures)-1]
		r.dropped++
	}
	r.captures = append(r.captures, r.open)
	r.open = nil
	r.postLeft = 0
}

// Captures returns the finalized captures, oldest first. The capture
// structs are immutable; the slice is a copy. A capture still collecting
// its post window is not included.
func (r *FlightRecorder) Captures() []*FlightCapture {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*FlightCapture(nil), r.captures...)
}

// Hiccups reports how many ticks the hiccup detector flagged (including
// ones that fell inside an already-open capture, which open no new one).
func (r *FlightRecorder) Hiccups() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hiccups
}

// CapturesTotal reports how many captures were ever opened (including
// dropped and still-open ones).
func (r *FlightRecorder) CapturesTotal() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextID
}

// Dropped reports how many finalized captures were evicted at MaxCaptures.
func (r *FlightRecorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// WriteFlightJSONL renders captures as JSONL: one capture-header line (the
// FlightCapture metadata plus a record count) followed by one line per
// TickRecord in chronological order. Header lines carry the "capture" key,
// record lines the "tick" key, so jq can split the stream:
//
//	{"capture":1,"reason":"hiccup","trigger_tick":412,...,"records":33}
//	{"tick":396,"wall_ms":1.9,...}
//	...
func WriteFlightJSONL(w io.Writer, captures []*FlightCapture) error {
	enc := json.NewEncoder(w)
	for _, c := range captures {
		header := struct {
			FlightCapture
			Count int `json:"records"`
		}{FlightCapture: *c, Count: len(c.Records)}
		if err := enc.Encode(&header); err != nil {
			return fmt.Errorf("telemetry: encode capture %d: %w", c.ID, err)
		}
		for _, rec := range c.Records {
			if err := enc.Encode(&rec); err != nil {
				return fmt.Errorf("telemetry: encode capture %d tick %d: %w", c.ID, rec.Tick, err)
			}
		}
	}
	return nil
}

// FlightRecHandler serves a recorder's finalized captures as JSONL (the
// /debug/flightrec endpoint). Query parameter n limits the response to the
// n most recent captures (absent = all, 0 = none); a negative or
// non-numeric n is a 400.
func FlightRecHandler(r *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n, err := QueryIntParam(req.URL.Query(), "n", -1)
		if err != nil {
			http.Error(w, "flightrec: "+err.Error(), http.StatusBadRequest)
			return
		}
		captures := r.Captures()
		if n >= 0 && n < len(captures) {
			captures = captures[len(captures)-n:]
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := WriteFlightJSONL(w, captures); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// WriteMetrics exports the recorder's counters in the Prometheus text
// exposition format; it matches MetricsWriter.
//
// Exported families:
//
//	roia_tick_hiccups_total              counter, detector-flagged ticks
//	roia_flightrec_captures_total        counter, captures ever opened
//	roia_flightrec_captures_dropped_total counter, captures evicted at the cap
func (r *FlightRecorder) WriteMetrics(w io.Writer, labels string) error {
	r.mu.Lock()
	hiccups, total, dropped := r.hiccups, r.nextID, r.dropped
	r.mu.Unlock()
	lbl := FormatLabels(labels, "")
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE roia_tick_hiccups_total counter\n")
	fmt.Fprintf(&b, "roia_tick_hiccups_total%s %d\n", lbl, hiccups)
	fmt.Fprintf(&b, "# TYPE roia_flightrec_captures_total counter\n")
	fmt.Fprintf(&b, "roia_flightrec_captures_total%s %d\n", lbl, total)
	fmt.Fprintf(&b, "# TYPE roia_flightrec_captures_dropped_total counter\n")
	fmt.Fprintf(&b, "roia_flightrec_captures_dropped_total%s %d\n", lbl, dropped)
	_, err := io.WriteString(w, b.String())
	return err
}
