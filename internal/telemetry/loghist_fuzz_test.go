package telemetry

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeObservations turns fuzzer bytes into a value stream: each 8-byte
// window is one float64 observation. Non-finite and negative values are
// kept — Observe must reject them without disturbing the histogram.
func decodeObservations(data []byte) []float64 {
	var out []float64
	for len(data) >= 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
		data = data[8:]
	}
	return out
}

func seedBytes(vals ...float64) []byte {
	var out []byte
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// FuzzLogHistogramMerge checks the merge algebra the fleet aggregator
// depends on: merging per-replica histograms must be exactly equivalent to
// having observed every value in one histogram — additive counts (per
// bucket and in total), additive sums, max of maxes — and commutative.
func FuzzLogHistogramMerge(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add(seedBytes(0.001, 1, 16.5), seedBytes(250, 3e6))
	f.Add(seedBytes(math.NaN(), math.Inf(1), -4), seedBytes(0))
	f.Add(seedBytes(0.5, 0.5, 0.5), seedBytes(0.5))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		va, vb := decodeObservations(a), decodeObservations(b)
		ha, hb, all := NewLogHistogram(), NewLogHistogram(), NewLogHistogram()
		for _, v := range va {
			ha.Observe(v)
			all.Observe(v)
		}
		for _, v := range vb {
			hb.Observe(v)
			all.Observe(v)
		}

		merged := ha.Clone()
		merged.Merge(hb)
		if merged.Count() != ha.Count()+hb.Count() {
			t.Fatalf("count not additive: %d + %d != %d", ha.Count(), hb.Count(), merged.Count())
		}
		if merged.Count() != all.Count() {
			t.Fatalf("merged count %d != direct count %d", merged.Count(), all.Count())
		}
		if merged.Sum() != ha.Sum()+hb.Sum() {
			t.Fatalf("sum not additive: %g + %g != %g", ha.Sum(), hb.Sum(), merged.Sum())
		}
		wantMax := ha.Max()
		if hb.Max() > wantMax {
			wantMax = hb.Max()
		}
		if merged.Max() != wantMax {
			t.Fatalf("max not max-of-maxes: %g vs %g", merged.Max(), wantMax)
		}
		if merged.counts != all.counts {
			t.Fatal("merged bucket counts differ from observing the union directly")
		}

		// Commutativity: b.Merge(a) lands on the same buckets and count.
		flipped := hb.Clone()
		flipped.Merge(ha)
		if flipped.counts != merged.counts || flipped.Count() != merged.Count() || flipped.Max() != merged.Max() {
			t.Fatal("merge is not commutative")
		}

		// Merge(nil) and merging an empty histogram are identities.
		before := merged.counts
		merged.Merge(nil)
		merged.Merge(NewLogHistogram())
		if merged.counts != before || merged.Count() != all.Count() {
			t.Fatal("nil/empty merge is not the identity")
		}

		// The top quantile never exceeds the exact tracked maximum.
		if q := merged.Quantile(1); q != merged.Max() {
			t.Fatalf("Quantile(1) = %g, want exact max %g", q, merged.Max())
		}
	})
}
