// The SLO engine turns the paper's QoS definition — sustain the update
// rate U, i.e. finish every tick (and deliver every input→update round
// trip) within 1/U — into an error-budget contract over retained history.
// A point-in-time violation-rate alert answers "is it bad right now?"; the
// burn-rate rules answer the operational question "at this rate, will the
// objective survive the window?", using the multi-window multi-burn-rate
// discipline (a fast 5m/1h page and a slow 30m/6h warn) so a lone spike
// neither pages nor hides a slow bleed.
package tsdb

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"roia/internal/telemetry"
)

// Selector names the counter series an SLI reads: every series of Family
// whose labels include the Match pairs is summed.
type Selector struct {
	Family string
	Match  map[string]string
}

// SLO declares one service-level objective over two cumulative counter
// families in the store: Total counts events, Bad counts the events that
// missed the contract. The error budget is 1-Objective of the events in
// BudgetWindowSec.
type SLO struct {
	// Name keys the SLO in metrics, rules and queries (e.g. "tick_deadline").
	Name string
	// Objective is the required good fraction in (0,1), e.g. 0.99: at most
	// 1% of events may miss the deadline.
	Objective float64
	// Total and Bad select the event and violation counters.
	Total, Bad Selector
	// BudgetWindowSec is the rolling window the error budget is accounted
	// over (default 6h — the slow burn rule's long window, so "budget
	// exhausted" and "slow burn at 1×" agree).
	BudgetWindowSec float64
}

// Burn-rate rule defaults: the Google SRE workbook's two-window pairs,
// scaled to a 6h budget horizon. The fast pair pages on a budget-destroying
// burst (14.4× burn: a 30-day budget gone in 2 days, or here a 6h budget
// gone in 25 minutes); the slow pair warns on a sustained bleed.
const (
	DefaultFastShortSec  = 5 * 60
	DefaultFastLongSec   = 3600
	DefaultFastThreshold = 14.4
	DefaultSlowShortSec  = 30 * 60
	DefaultSlowLongSec   = 6 * 3600
	DefaultSlowThreshold = 6
	DefaultBudgetWindow  = 6 * 3600
)

// Rule names exported by SLOEngine.Rules.
const (
	RuleSLOBurnFast = "slo_burn_fast"
	RuleSLOBurnSlow = "slo_burn_slow"
)

// SLOEngine evaluates SLOs against the store's retained counter history.
// It is stateless between calls — every number is recomputed from the
// store, so the engine inherits the store's bounded retention and injected
// clock.
type SLOEngine struct {
	store *Store
	slos  []SLO

	// Burn windows and thresholds; zero fields take the defaults above.
	FastShortSec, FastLongSec, FastThreshold float64
	SlowShortSec, SlowLongSec, SlowThreshold float64
}

// NewSLOEngine returns an engine over the given SLOs (burn windows at the
// defaults; override the exported fields before first use to tune them).
func NewSLOEngine(st *Store, slos ...SLO) *SLOEngine {
	e := &SLOEngine{
		store:         st,
		FastShortSec:  DefaultFastShortSec,
		FastLongSec:   DefaultFastLongSec,
		FastThreshold: DefaultFastThreshold,
		SlowShortSec:  DefaultSlowShortSec,
		SlowLongSec:   DefaultSlowLongSec,
		SlowThreshold: DefaultSlowThreshold,
	}
	for _, s := range slos {
		if s.BudgetWindowSec <= 0 {
			s.BudgetWindowSec = DefaultBudgetWindow
		}
		e.slos = append(e.slos, s)
	}
	return e
}

// SLOs returns the declared objectives.
func (e *SLOEngine) SLOs() []SLO { return append([]SLO(nil), e.slos...) }

// IncreaseOver computes the reset-aware increase summed over every series
// matching sel in the window (now-windowSec, now]. The sample at or before
// the window start is the delta baseline, so a window that opens between
// two scrapes still measures the growth that landed inside it.
func (e *SLOEngine) IncreaseOver(sel Selector, windowSec, now float64) float64 {
	// Query one extra window back so the baseline sample is in hand; the
	// store bounds retention anyway.
	from := now - 2*windowSec
	start := now - windowSec
	var total float64
	for _, sd := range e.store.Query(sel.Family, sel.Match, from, now) {
		// Trim to the run starting at the last sample with T <= start.
		lo := 0
		for i, s := range sd.Samples {
			if s.T <= start {
				lo = i
			} else {
				break
			}
		}
		total += Increase(sd.Samples[lo:])
	}
	return total
}

// BurnRate reports how fast the SLO consumes its error budget over the
// trailing window: the bad-event fraction divided by the budget fraction
// 1-Objective. 1.0 means "exactly sustainable"; 14.4 means the budget
// burns 14.4× faster than allotted. A window with no total events burns 0.
func (e *SLOEngine) BurnRate(s SLO, windowSec, now float64) float64 {
	total := e.IncreaseOver(s.Total, windowSec, now)
	if total <= 0 {
		return 0
	}
	bad := e.IncreaseOver(s.Bad, windowSec, now)
	budget := 1 - s.Objective
	if budget <= 0 {
		return 0
	}
	return (bad / total) / budget
}

// BudgetRemaining reports the unburned fraction of the SLO's error budget
// over its BudgetWindowSec: 1 means untouched, 0 exhausted, negative
// overspent. (This is 1 minus the burn rate over the budget window.)
func (e *SLOEngine) BudgetRemaining(s SLO, now float64) float64 {
	return 1 - e.BurnRate(s, s.BudgetWindowSec, now)
}

// Rules returns the multi-window burn-rate rules for the alert engine, new
// telemetry.Rule kinds flowing through the same pending→firing→resolved
// lifecycle as the model-threshold rules:
//
//   - slo_burn_fast: burn rate over BOTH the fast short (5m) and fast long
//     (1h) windows exceeds FastThreshold (14.4×) — page-worthy; at this
//     rate the budget is gone within the hour. The short window makes the
//     rule resolve quickly once the burst ends; the long window keeps a
//     lone spike from paging.
//   - slo_burn_slow: burn rate over both the slow short (30m) and slow
//     long (6h) windows exceeds SlowThreshold (6×) — a sustained bleed
//     that will exhaust the budget within the day; warn-worthy.
//
// One instance per SLO (key = SLO name). The windows read the store clock,
// so the rules stay deterministic under an injected clock regardless of
// the evaluation timestamps the alert engine passes.
func (e *SLOEngine) Rules(pendingFor int) []telemetry.Rule {
	burn := func(shortSec, longSec, threshold float64) func(float64) []telemetry.RuleResult {
		return func(_ float64) []telemetry.RuleResult {
			now := e.store.NowSec()
			var out []telemetry.RuleResult
			for _, s := range e.slos {
				short := e.BurnRate(s, shortSec, now)
				long := e.BurnRate(s, longSec, now)
				if short <= threshold || long <= threshold {
					continue
				}
				out = append(out, telemetry.RuleResult{
					Key:       s.Name,
					Value:     short,
					Threshold: threshold,
					Detail: fmt.Sprintf("error budget burning at %.1fx/%.1fx over %s/%s (budget %.2g, remaining %.0f%%)",
						short, long, fmtWindow(shortSec), fmtWindow(longSec),
						1-s.Objective, 100*e.BudgetRemaining(s, now)),
				})
			}
			return out
		}
	}
	return []telemetry.Rule{
		{Name: RuleSLOBurnFast, PendingFor: pendingFor, Eval: burn(e.FastShortSec, e.FastLongSec, e.FastThreshold)},
		{Name: RuleSLOBurnSlow, PendingFor: pendingFor, Eval: burn(e.SlowShortSec, e.SlowLongSec, e.SlowThreshold)},
	}
}

// fmtWindow renders a window length in seconds as a compact duration
// ("5m", "1h", "90s").
func fmtWindow(sec float64) string {
	switch {
	case sec >= 3600 && sec == float64(int(sec/3600))*3600:
		return fmt.Sprintf("%dh", int(sec/3600))
	case sec >= 60 && sec == float64(int(sec/60))*60:
		return fmt.Sprintf("%dm", int(sec/60))
	default:
		return fmt.Sprintf("%gs", sec)
	}
}

// WriteMetrics exports the live SLO state in the Prometheus text
// exposition format; it matches telemetry.MetricsWriter.
//
// Exported families:
//
//	roia_slo_objective{slo}          gauge, the declared good fraction
//	roia_slo_budget_remaining{slo}   gauge, unburned budget over the
//	                                 budget window (1 full … <0 overspent)
//	roia_slo_burn_rate{slo,window}   gauge, burn rate over each rule window
func (e *SLOEngine) WriteMetrics(w io.Writer, labels string) error {
	now := e.store.NowSec()
	windows := e.metricWindows()
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE roia_slo_objective gauge\n")
	for _, s := range e.slos {
		fmt.Fprintf(&b, "roia_slo_objective%s %g\n",
			telemetry.FormatLabels(labels, fmt.Sprintf("slo=%q", s.Name)), s.Objective)
	}
	fmt.Fprintf(&b, "# TYPE roia_slo_budget_remaining gauge\n")
	for _, s := range e.slos {
		fmt.Fprintf(&b, "roia_slo_budget_remaining%s %g\n",
			telemetry.FormatLabels(labels, fmt.Sprintf("slo=%q", s.Name)), e.BudgetRemaining(s, now))
	}
	fmt.Fprintf(&b, "# TYPE roia_slo_burn_rate gauge\n")
	for _, s := range e.slos {
		for _, win := range windows {
			fmt.Fprintf(&b, "roia_slo_burn_rate%s %g\n",
				telemetry.FormatLabels(labels, fmt.Sprintf("slo=%q,window=%q", s.Name, fmtWindow(win))),
				e.BurnRate(s, win, now))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// metricWindows returns the distinct rule windows, ascending.
func (e *SLOEngine) metricWindows() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, w := range []float64{e.FastShortSec, e.SlowShortSec, e.FastLongSec, e.SlowLongSec} {
		if w > 0 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Float64s(out)
	return out
}
