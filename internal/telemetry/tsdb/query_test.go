package tsdb

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestQueryHandlerValidation(t *testing.T) {
	st, clk := newTestStore(16)
	clk.Set(100)
	h := QueryHandler(st)
	cases := []struct {
		url  string
		code int
	}{
		{"/fleet/query", http.StatusBadRequest},                                     // family required
		{"/fleet/query?family=Robots;DROP", http.StatusBadRequest},                  // grammar
		{"/fleet/query?family=http_requests", http.StatusBadRequest},                // wrong prefix
		{"/fleet/query?family=roia_x&since=abc", http.StatusBadRequest},             // non-numeric
		{"/fleet/query?family=roia_x&since=-5", http.StatusBadRequest},              // negative
		{"/fleet/query?family=roia_x&since=1e300", http.StatusBadRequest},           // over the cap
		{"/fleet/query?family=roia_x&since=NaN", http.StatusBadRequest},             // NaN
		{"/fleet/query?family=roia_x&step=nope", http.StatusBadRequest},             // bad step
		{"/fleet/query?family=roia_x&since=10&step=20", http.StatusBadRequest},      // step > since
		{"/fleet/query?family=roia_x&label=broken", http.StatusBadRequest},          // label not k=v
		{"/fleet/query?family=roia_x", http.StatusOK},                               // empty result is fine
		{"/fleet/query?family=roia_x&since=60&step=10&label=zone=1", http.StatusOK}, // fully specified
		{"/fleet/query?family=fleet_y&since=0.5", http.StatusOK},                    // fleet_ prefix ok
	}
	for _, tc := range cases {
		req := httptest.NewRequest("GET", tc.url, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != tc.code {
			t.Errorf("%s: status = %d, want %d (body %q)", tc.url, rec.Code, tc.code, rec.Body.String())
		}
	}
}

// TestQueryHandlerRangeAggregates is the acceptance fixture: an
// injected-clock store with known samples, whose /fleet/query aggregates
// must match hand-computed values.
func TestQueryHandlerRangeAggregates(t *testing.T) {
	st, clk := newTestStore(64)
	// Gauge: tick p99 per zone, 1 Hz for 20 s. Zone 1 is flat 4 ms then
	// spikes to 12 ms for the last 10 s; zone 2 stays at 2 ms.
	for i := 1; i <= 20; i++ {
		v := 4.0
		if i > 10 {
			v = 12.0
		}
		st.AppendAt(float64(i), "roia_fleet_tick_wall_q_ms", map[string]string{"zone": "1", "q": "p99"}, Gauge, v)
		st.AppendAt(float64(i), "roia_fleet_tick_wall_q_ms", map[string]string{"zone": "2", "q": "p99"}, Gauge, 2.0)
	}
	// Counter: ticks per replica, +25/s.
	for i := 0; i <= 20; i++ {
		st.AppendAt(float64(i), "roia_fleet_ticks_total", map[string]string{"zone": "1", "replica": "r1"}, Counter, float64(25*i))
	}
	clk.Set(20)

	req := httptest.NewRequest("GET", "/fleet/query?family=roia_fleet_tick_wall_q_ms&label=zone=1&since=20&step=10", nil)
	rec := httptest.NewRecorder()
	QueryHandler(st).ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var samples int
	var aggs []WindowAgg
	for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		var ql struct {
			Family string            `json:"family"`
			Labels map[string]string `json:"labels"`
			Kind   string            `json:"kind"`
			T      *float64          `json:"t"`
			Agg    *WindowAgg        `json:"agg"`
		}
		if err := json.Unmarshal([]byte(line), &ql); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if ql.Labels["zone"] != "1" {
			t.Fatalf("zone filter leaked: %q", line)
		}
		if ql.Kind != "gauge" {
			t.Errorf("kind = %q, want gauge", ql.Kind)
		}
		switch {
		case ql.T != nil:
			samples++
		case ql.Agg != nil:
			aggs = append(aggs, *ql.Agg)
		}
	}
	if samples != 20 {
		t.Errorf("raw samples = %d, want 20", samples)
	}
	if len(aggs) != 2 {
		t.Fatalf("aggregate windows = %d, want 2", len(aggs))
	}
	// Window (0,10]: ten 4 ms samples → avg 4, max 4. Window (10,20]: ten
	// 12 ms samples → avg 12, max 12.
	if aggs[0].Count != 10 || aggs[0].Avg != 4 || aggs[0].Max != 4 {
		t.Errorf("window 1 = %+v, want count=10 avg=4 max=4", aggs[0])
	}
	if aggs[1].Count != 10 || aggs[1].Avg != 12 || aggs[1].Max != 12 {
		t.Errorf("window 2 = %+v, want count=10 avg=12 max=12", aggs[1])
	}

	// Counter rate: 25 ticks/s in every full window.
	req = httptest.NewRequest("GET", "/fleet/query?family=roia_fleet_ticks_total&since=20&step=5", nil)
	rec = httptest.NewRecorder()
	QueryHandler(st).ServeHTTP(rec, req)
	var rates []float64
	for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		var ql struct {
			Kind string     `json:"kind"`
			Agg  *WindowAgg `json:"agg"`
		}
		if err := json.Unmarshal([]byte(line), &ql); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if ql.Agg != nil {
			if ql.Kind != "counter" {
				t.Errorf("kind = %q, want counter", ql.Kind)
			}
			rates = append(rates, ql.Agg.Rate)
		}
	}
	if len(rates) != 4 {
		t.Fatalf("counter windows = %d, want 4", len(rates))
	}
	for i, r := range rates {
		if r != 25 {
			t.Errorf("window %d rate = %g, want 25 ticks/s", i, r)
		}
	}
}
