package tsdb

import (
	"math"
	"strings"
	"testing"

	"roia/internal/telemetry"
)

// approx absorbs float division rounding (0.2/0.01 ≠ exactly 20).
func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// feedTicks appends one scrape of the tick counters: cumulative ticks and
// cumulative deadline violations at time t.
func feedTicks(st *Store, t, ticks, violations float64) {
	lbl := map[string]string{"zone": "1", "replica": "r1"}
	st.AppendAt(t, "roia_fleet_ticks_total", lbl, Counter, ticks)
	st.AppendAt(t, "roia_fleet_deadline_violations_total", lbl, Counter, violations)
}

func tickSLO() SLO {
	return SLO{
		Name:      "tick_deadline",
		Objective: 0.99,
		Total:     Selector{Family: "roia_fleet_ticks_total"},
		Bad:       Selector{Family: "roia_fleet_deadline_violations_total"},
	}
}

func TestBurnRateHandComputed(t *testing.T) {
	// Store big enough to retain the whole synthetic session.
	clk := &fakeClock{}
	st := NewStore(Config{SeriesCapacity: 8192, Now: clk.Now})
	e := NewSLOEngine(st, tickSLO())
	s := e.SLOs()[0]

	// 25 ticks/s for 600 s; violations appear only in (300, 600]: 5 of the
	// 25 ticks each second miss the deadline → bad fraction 0.2.
	var viol float64
	for sec := 0; sec <= 600; sec++ {
		if sec > 300 {
			viol += 5
		}
		feedTicks(st, float64(sec), float64(25*sec), viol)
	}
	now := 600.0
	// Over the last 300 s: bad = 5*300 = 1500, total = 25*300 = 7500 →
	// fraction 0.2; budget 0.01 → burn 20.
	if burn := e.BurnRate(s, 300, now); !approx(burn, 20) {
		t.Errorf("BurnRate(5m) = %g, want 20", burn)
	}
	// Over the last 600 s: bad 1500, total 15000 → fraction 0.1 → burn 10.
	if burn := e.BurnRate(s, 600, now); !approx(burn, 10) {
		t.Errorf("BurnRate(10m) = %g, want 10", burn)
	}
	// Budget over the default 6 h window: only 600 s of history exists, so
	// the increase-based accounting sees the same 1500/15000 → burn 10 →
	// remaining 1-10 = -9 (overspent).
	if rem := e.BudgetRemaining(s, now); !approx(rem, -9) {
		t.Errorf("BudgetRemaining = %g, want -9", rem)
	}
	// A healthy window burns 0: all violations stopped by t=300 in reverse —
	// query the clean prefix via a shifted now.
	if burn := e.BurnRate(s, 300, 300); burn != 0 {
		t.Errorf("BurnRate over the clean prefix = %g, want 0", burn)
	}
}

// TestSLOBurstLifecycle drives a synthetic deadline-violation burst
// through the alert engine and asserts the burn rules pass pending →
// firing → resolved at both the fast and slow windows.
func TestSLOBurstLifecycle(t *testing.T) {
	clk := &fakeClock{}
	st := NewStore(Config{SeriesCapacity: 65536, Now: clk.Now})
	e := NewSLOEngine(st, tickSLO())
	// Shrink the windows so the test stays fast while keeping the
	// short/long pairing: fast 10s/60s at 14.4×, slow 30s/120s at 6×.
	e.FastShortSec, e.FastLongSec = 10, 60
	e.SlowShortSec, e.SlowLongSec = 30, 120

	sink := &telemetry.MemoryAlerts{}
	engine := telemetry.NewAlertEngine(sink, e.Rules(1)...)

	var ticks, viol float64
	step := func(sec int, badPerSec float64) {
		ticks += 25
		viol += badPerSec
		feedTicks(st, float64(sec), ticks, viol)
		clk.Set(float64(sec))
		engine.Eval(float64(sec))
	}

	// Phase 1 — healthy for 200 s: no transitions.
	sec := 0
	for ; sec < 200; sec++ {
		step(sec, 0)
	}
	if n := len(sink.Snapshot()); n != 0 {
		t.Fatalf("healthy phase emitted %d transitions", n)
	}

	// Phase 2 — burst: every second 10 of 25 ticks violate (fraction 0.4 →
	// burn 40× ≫ 14.4 and 6). Run long enough to saturate both long
	// windows (120 s), so fast AND slow fire.
	for ; sec < 340; sec++ {
		step(sec, 10)
	}
	active := engine.Active()
	var fastFiring, slowFiring bool
	for _, a := range active {
		if a.Key != "tick_deadline" || a.State != telemetry.AlertFiring {
			continue
		}
		switch a.Rule {
		case RuleSLOBurnFast:
			fastFiring = true
		case RuleSLOBurnSlow:
			slowFiring = true
		}
	}
	if !fastFiring || !slowFiring {
		t.Fatalf("after the burst want both burn rules firing, got %+v", active)
	}

	// Phase 3 — recovery: no further violations. The fast rule must
	// resolve once the 60 s long window drains; the slow rule once the
	// 120 s window drains.
	for ; sec < 600; sec++ {
		step(sec, 0)
	}
	if n := len(engine.Active()); n != 0 {
		t.Fatalf("after recovery want no active alerts, got %+v", engine.Active())
	}

	// The JSONL event sequence per rule must be pending → firing →
	// resolved, in that order.
	for _, rule := range []string{RuleSLOBurnFast, RuleSLOBurnSlow} {
		var states []string
		for _, ev := range sink.Snapshot() {
			if ev.Rule == rule {
				states = append(states, ev.State)
			}
		}
		want := []string{"pending", "firing", "resolved"}
		if len(states) != len(want) {
			t.Fatalf("%s transitions = %v, want %v", rule, states, want)
		}
		for i := range want {
			if states[i] != want[i] {
				t.Fatalf("%s transitions = %v, want %v", rule, states, want)
			}
		}
	}
	// The fast rule must have resolved before the slow one (its long
	// window is shorter), pinning the multi-window semantics.
	var fastResolved, slowResolved float64
	for _, ev := range sink.Snapshot() {
		if ev.State == "resolved" {
			switch ev.Rule {
			case RuleSLOBurnFast:
				fastResolved = ev.Time
			case RuleSLOBurnSlow:
				slowResolved = ev.Time
			}
		}
	}
	if !(fastResolved < slowResolved) {
		t.Errorf("fast resolved at %g, slow at %g: fast must resolve first", fastResolved, slowResolved)
	}
}

func TestSLOWriteMetrics(t *testing.T) {
	clk := &fakeClock{}
	st := NewStore(Config{SeriesCapacity: 1024, Now: clk.Now})
	// Objective 0.5 and a 0.25 bad fraction keep every division exact in
	// binary floating point, so the exposition values are byte-predictable.
	slo := tickSLO()
	slo.Objective = 0.5
	e := NewSLOEngine(st, slo)
	for sec := 0; sec <= 100; sec++ {
		feedTicks(st, float64(sec), float64(16*sec), float64(4*sec)) // 25% bad
	}
	clk.Set(100)
	var b strings.Builder
	if err := e.WriteMetrics(&b, `zone="1"`); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE roia_slo_objective gauge",
		`roia_slo_objective{zone="1",slo="tick_deadline"} 0.5`,
		"# TYPE roia_slo_budget_remaining gauge",
		`roia_slo_budget_remaining{zone="1",slo="tick_deadline"} 0.5`,
		"# TYPE roia_slo_burn_rate gauge",
		`roia_slo_burn_rate{zone="1",slo="tick_deadline",window="5m"} 0.5`,
		`roia_slo_burn_rate{zone="1",slo="tick_deadline",window="30m"} 0.5`,
		`roia_slo_burn_rate{zone="1",slo="tick_deadline",window="1h"} 0.5`,
		`roia_slo_burn_rate{zone="1",slo="tick_deadline",window="6h"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
