package tsdb

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, settable store clock.
type fakeClock struct {
	mu  sync.Mutex
	sec float64
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Unix(0, int64(c.sec*1e9))
}

func (c *fakeClock) Set(sec float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sec = sec
}

func newTestStore(capacity int) (*Store, *fakeClock) {
	clk := &fakeClock{}
	return NewStore(Config{SeriesCapacity: capacity, Now: clk.Now}), clk
}

func TestSeriesRingRetention(t *testing.T) {
	st, _ := newTestStore(4)
	for i := 0; i < 10; i++ {
		st.AppendAt(float64(i), "roia_x_total", nil, Counter, float64(i))
	}
	got := st.Query("roia_x_total", nil, 0, 0)
	if len(got) != 1 {
		t.Fatalf("series = %d, want 1", len(got))
	}
	s := got[0].Samples
	if len(s) != 4 {
		t.Fatalf("retained = %d, want 4 (ring capacity)", len(s))
	}
	for i, smp := range s {
		if want := float64(6 + i); smp.T != want || smp.V != want {
			t.Errorf("sample %d = (%g,%g), want (%g,%g): newest must survive, oldest drop", i, smp.T, smp.V, want, want)
		}
	}
	if st.DroppedSamples() != 6 {
		t.Errorf("DroppedSamples = %d, want 6", st.DroppedSamples())
	}
	if st.Appends() != 10 {
		t.Errorf("Appends = %d, want 10", st.Appends())
	}
}

func TestStoreSeriesCap(t *testing.T) {
	st := NewStore(Config{SeriesCapacity: 8, MaxSeries: 3, Now: (&fakeClock{}).Now})
	for i := 0; i < 5; i++ {
		st.AppendAt(1, "roia_x", map[string]string{"id": fmt.Sprint(i)}, Gauge, 1)
	}
	if st.SeriesCount() != 3 {
		t.Errorf("SeriesCount = %d, want 3 (MaxSeries)", st.SeriesCount())
	}
	if st.DroppedSeries() != 2 {
		t.Errorf("DroppedSeries = %d, want 2", st.DroppedSeries())
	}
	// Existing series still accept samples at the cap.
	st.AppendAt(2, "roia_x", map[string]string{"id": "0"}, Gauge, 2)
	got := st.Query("roia_x", map[string]string{"id": "0"}, 0, 0)
	if len(got) != 1 || len(got[0].Samples) != 2 {
		t.Fatalf("existing series must keep accepting samples at the series cap: %+v", got)
	}
}

func TestQueryRangeAndMatch(t *testing.T) {
	st, _ := newTestStore(16)
	for i := 0; i < 10; i++ {
		st.AppendAt(float64(i), "roia_g", map[string]string{"zone": "1", "replica": "a"}, Gauge, float64(10*i))
		st.AppendAt(float64(i), "roia_g", map[string]string{"zone": "2", "replica": "b"}, Gauge, float64(100*i))
	}
	got := st.Query("roia_g", map[string]string{"zone": "1"}, 3, 6)
	if len(got) != 1 {
		t.Fatalf("series = %d, want 1 (zone match)", len(got))
	}
	if got[0].Labels["replica"] != "a" {
		t.Errorf("labels = %v", got[0].Labels)
	}
	if n := len(got[0].Samples); n != 4 {
		t.Fatalf("samples in [3,6] = %d, want 4", n)
	}
	if got[0].Samples[0].T != 3 || got[0].Samples[3].T != 6 {
		t.Errorf("range bounds inclusive: got %v", got[0].Samples)
	}
	if got := st.Query("roia_g", map[string]string{"zone": "3"}, 0, 0); len(got) != 0 {
		t.Errorf("unmatched labels must return no series, got %v", got)
	}
	if got := st.Query("roia_missing", nil, 0, 0); len(got) != 0 {
		t.Errorf("unknown family must return no series, got %v", got)
	}
}

// TestConcurrentAppendQuery drives appends and queries from many
// goroutines under -race: the acceptance gate for ring retention/eviction
// being safe while readers iterate.
func TestConcurrentAppendQuery(t *testing.T) {
	st, _ := newTestStore(32)
	const writers, readers, per = 4, 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			labels := map[string]string{"writer": fmt.Sprint(w)}
			for i := 0; i < per; i++ {
				st.AppendAt(float64(i), "roia_conc_total", labels, Counter, float64(i))
				st.AppendAt(float64(i), "roia_conc_ms", labels, Gauge, float64(i%7))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for _, sd := range st.Query("roia_conc_total", nil, 0, 0) {
					if len(sd.Samples) > 32 {
						t.Errorf("series over ring capacity: %d", len(sd.Samples))
						return
					}
					// Returned slices must be stable copies.
					for j := 1; j < len(sd.Samples); j++ {
						if sd.Samples[j].T < sd.Samples[j-1].T {
							t.Errorf("samples out of order")
							return
						}
					}
				}
				_ = st.DroppedSamples()
			}
		}()
	}
	wg.Wait()
	if st.SeriesCount() != 2*writers {
		t.Errorf("SeriesCount = %d, want %d", st.SeriesCount(), 2*writers)
	}
	var sb strings.Builder
	if err := st.WriteMetrics(&sb, `zone="1"`); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	for _, fam := range []string{"roia_tsdb_series", "roia_tsdb_samples_total", "roia_tsdb_dropped_samples_total", "roia_tsdb_dropped_series_total"} {
		if !strings.Contains(sb.String(), fam+`{zone="1"}`) {
			t.Errorf("WriteMetrics missing %s:\n%s", fam, sb.String())
		}
	}
}

func TestIncrease(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		want float64
	}{
		{"monotone", []float64{10, 15, 25}, 15},
		{"reset", []float64{10, 15, 3, 8}, 10}, // 5 + (reset: 3) + 5... = 5+3+5=13? see below
		{"single", []float64{7}, 0},
		{"flat", []float64{4, 4, 4}, 0},
	}
	// Hand-check the reset case: deltas 15-10=5, reset to 3 contributes 3,
	// then 8-3=5 → 13.
	cases[1].want = 13
	for _, tc := range cases {
		var samples []Sample
		for i, v := range tc.vals {
			samples = append(samples, Sample{T: float64(i), V: v})
		}
		if got := Increase(samples); got != tc.want {
			t.Errorf("%s: Increase = %g, want %g", tc.name, got, tc.want)
		}
	}
}

func TestAggregateGaugeHandComputed(t *testing.T) {
	sd := SeriesData{Family: "roia_g", Kind: Gauge}
	// Samples at t=1..10, value = t (ms-ish magnitudes).
	for i := 1; i <= 10; i++ {
		sd.Samples = append(sd.Samples, Sample{T: float64(i), V: float64(i)})
	}
	aggs := Aggregate(sd, 0, 10, 5)
	if len(aggs) != 2 {
		t.Fatalf("windows = %d, want 2", len(aggs))
	}
	// Window (0,5]: samples 1..5 → avg 3, max 5. Window (5,10]: 6..10 → avg 8, max 10.
	if aggs[0].Count != 5 || aggs[0].Avg != 3 || aggs[0].Max != 5 {
		t.Errorf("window 1 = %+v, want count=5 avg=3 max=5", aggs[0])
	}
	if aggs[1].Count != 5 || aggs[1].Avg != 8 || aggs[1].Max != 10 {
		t.Errorf("window 2 = %+v, want count=5 avg=8 max=10", aggs[1])
	}
	// Quantiles go through the LogHistogram: p99 of window 2 must sit in
	// the top bucket (resolution ~6%), and never exceed the exact max.
	if p := aggs[1].P99; p < 9 || p > 10 {
		t.Errorf("window 2 p99 = %g, want within bucket resolution of 10", p)
	}
}

func TestAggregateCounterHandComputed(t *testing.T) {
	sd := SeriesData{Family: "roia_c_total", Kind: Counter}
	// Counter grows by 2 per second: t=0..10, v=2t.
	for i := 0; i <= 10; i++ {
		sd.Samples = append(sd.Samples, Sample{T: float64(i), V: float64(2 * i)})
	}
	aggs := Aggregate(sd, 0, 10, 5)
	if len(aggs) != 2 {
		t.Fatalf("windows = %d, want 2", len(aggs))
	}
	// Window (5,10] has samples t=6..10 plus baseline t=5 (v=10): increase
	// = 20-10 = 10, rate = 2/s.
	if aggs[1].Increase != 10 || aggs[1].Rate != 2 {
		t.Errorf("window 2 = %+v, want increase=10 rate=2", aggs[1])
	}
	// Window (0,5] has samples t=1..5 plus baseline t=0 (v=0): increase 10.
	if aggs[0].Increase != 10 || aggs[0].Rate != 2 {
		t.Errorf("window 1 = %+v, want increase=10 rate=2", aggs[0])
	}
	// Empty-window omission: a sparse series skips windows with no samples.
	sparse := SeriesData{Family: "roia_c_total", Kind: Counter, Samples: []Sample{{T: 9, V: 1}, {T: 10, V: 3}}}
	aggs = Aggregate(sparse, 0, 10, 5)
	if len(aggs) != 1 {
		t.Fatalf("sparse windows = %d, want 1 (empty windows omitted)", len(aggs))
	}
	if aggs[0].Increase != 2 {
		t.Errorf("sparse increase = %g, want 2", aggs[0].Increase)
	}
}
