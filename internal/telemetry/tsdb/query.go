package tsdb

import (
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"

	"roia/internal/telemetry"
)

// Query endpoint defaults: a 5-minute lookback and a hard cap on it so a
// single request cannot ask the store to materialise unbounded ranges.
const (
	DefaultQuerySinceSec = 300
	MaxQuerySinceSec     = 24 * 3600
)

// familyPattern mirrors the roialint metric-name grammar: the query
// endpoint rejects anything that could not be a metric family, before it
// touches the store.
var familyPattern = regexp.MustCompile(`^(roia|fleet)_[a-z0-9_]+$`)

// queryLine is one JSONL line of a /fleet/query response: either a raw
// sample (T/V set) or, when step > 0, a windowed aggregate (Agg set).
type queryLine struct {
	Family string            `json:"family"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	T      *float64          `json:"t,omitempty"`
	V      *float64          `json:"v,omitempty"`
	Agg    *WindowAgg        `json:"agg,omitempty"`
}

// QueryHandler serves range queries over the store as JSONL (the
// /fleet/query endpoint). Query parameters:
//
//	family  required; the metric family to read (roia_/fleet_ grammar)
//	label   repeatable k=v matchers; a series must carry every pair
//	since   lookback window in seconds from the store clock's now
//	        (default 300, max 86400)
//	step    aggregation window in seconds; when > 0 each series
//	        additionally gets windowed aggregate lines (rate and increase
//	        for counters; avg/max and LogHistogram p50/p90/p99 for gauges)
//
// Every parameter is validated with the shared telemetry helpers: a
// malformed value is a 400, never a silent default. One JSON object per
// line: raw samples first (chronological per series), then the aggregate
// lines, series ordered by canonical label key.
func QueryHandler(st *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		family := q.Get("family")
		if family == "" {
			http.Error(w, "query: family is required", http.StatusBadRequest)
			return
		}
		if !familyPattern.MatchString(family) {
			http.Error(w, fmt.Sprintf("query: family %q does not match the metric grammar", family), http.StatusBadRequest)
			return
		}
		match := make(map[string]string)
		for _, kv := range q["label"] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok || k == "" {
				http.Error(w, fmt.Sprintf("query: label %q must be key=value", kv), http.StatusBadRequest)
				return
			}
			match[k] = v
		}
		since, err := telemetry.QueryFloatParam(q, "since", DefaultQuerySinceSec)
		if err != nil {
			http.Error(w, "query: "+err.Error(), http.StatusBadRequest)
			return
		}
		if since == 0 || since > MaxQuerySinceSec {
			http.Error(w, fmt.Sprintf("query: since must be in (0, %d] seconds", MaxQuerySinceSec), http.StatusBadRequest)
			return
		}
		step, err := telemetry.QueryFloatParam(q, "step", 0)
		if err != nil {
			http.Error(w, "query: "+err.Error(), http.StatusBadRequest)
			return
		}
		if step > since {
			http.Error(w, "query: step must not exceed since", http.StatusBadRequest)
			return
		}

		now := st.NowSec()
		from := now - since
		series := st.Query(family, match, from, now)
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, sd := range series {
			for _, s := range sd.Samples {
				t, v := s.T, s.V
				if err := enc.Encode(queryLine{
					Family: sd.Family, Labels: sd.Labels, Kind: sd.Kind.String(), T: &t, V: &v,
				}); err != nil {
					return // client went away; nothing useful to report
				}
			}
		}
		if step > 0 {
			for _, sd := range series {
				for _, agg := range Aggregate(sd, from, now, step) {
					a := agg
					if err := enc.Encode(queryLine{
						Family: sd.Family, Labels: sd.Labels, Kind: sd.Kind.String(), Agg: &a,
					}); err != nil {
						return
					}
				}
			}
		}
	})
}
