package tsdb

import (
	"math"

	"roia/internal/telemetry"
)

// WindowAgg is one aggregation window over one series. Which fields carry
// information depends on the series kind: gauges get Avg/Max and the
// LogHistogram quantiles (exact to bucket resolution, mergeable across
// replicas upstream), counters get the reset-aware Increase and the
// per-second Rate. Count is the number of samples in the window either way.
type WindowAgg struct {
	// Start/End bound the window: samples with Start < T <= End.
	Start float64 `json:"t0"`
	End   float64 `json:"t1"`
	Count int     `json:"count"`

	// Gauge aggregates.
	Avg float64 `json:"avg,omitempty"`
	Max float64 `json:"max,omitempty"`
	P50 float64 `json:"p50,omitempty"`
	P90 float64 `json:"p90,omitempty"`
	P99 float64 `json:"p99,omitempty"`

	// Counter aggregates.
	Increase float64 `json:"increase,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
}

// Increase computes the reset-aware increase of a cumulative counter over
// the given chronological samples: the sum of the positive deltas, with a
// decrease read as a restart contributing the new value (the Prometheus
// increase() convention). Fewer than two samples yield 0 — no
// extrapolation is attempted.
func Increase(samples []Sample) float64 {
	if len(samples) < 2 {
		return 0
	}
	var inc float64
	prev := samples[0].V
	for _, s := range samples[1:] {
		if s.V >= prev {
			inc += s.V - prev
		} else {
			inc += s.V // counter reset: the new value is all growth
		}
		prev = s.V
	}
	return inc
}

// Aggregate buckets a series' samples into fixed step-width windows
// covering (since, until] and computes the per-window aggregates for the
// series' kind. step must be positive; windows with no samples are
// omitted. Windows are aligned to until, counting backwards, so the newest
// window always ends exactly at the query time.
func Aggregate(sd SeriesData, since, until, step float64) []WindowAgg {
	if step <= 0 || until <= since || len(sd.Samples) == 0 {
		return nil
	}
	n := int(math.Ceil((until - since) / step))
	if n <= 0 {
		n = 1
	}
	var out []WindowAgg
	idx := 0
	for w := n - 1; w >= 0; w-- {
		end := until - float64(w)*step
		start := end - step
		// Collect the chronological run of samples in (start, end]. A
		// counter window also needs the sample just before it as the delta
		// baseline, so remember where the run began.
		first := idx
		for first < len(sd.Samples) && sd.Samples[first].T <= start {
			first++
		}
		last := first
		for last < len(sd.Samples) && sd.Samples[last].T <= end {
			last++
		}
		idx = first
		in := sd.Samples[first:last]
		if len(in) == 0 {
			continue
		}
		agg := WindowAgg{Start: start, End: end, Count: len(in)}
		switch sd.Kind {
		case Counter:
			// Prepend the preceding sample (when there is one) so the first
			// in-window delta is measured, not discarded.
			run := in
			if first > 0 {
				run = sd.Samples[first-1 : last]
			}
			agg.Increase = Increase(run)
			agg.Rate = agg.Increase / step
		default:
			hist := telemetry.NewLogHistogram()
			var sum float64
			for _, s := range in {
				sum += s.V
				if s.V > agg.Max {
					agg.Max = s.V
				}
				hist.Observe(s.V)
			}
			agg.Avg = sum / float64(len(in))
			agg.P50 = hist.Quantile(0.50)
			agg.P90 = hist.Quantile(0.90)
			agg.P99 = hist.Quantile(0.99)
		}
		out = append(out, agg)
	}
	return out
}
