// Package tsdb is an embedded, bounded, in-memory time-series store for
// the fleet's observability surface. Every scrape the collector takes is a
// point-in-time snapshot; QoS — sustaining the update rate U — is a
// property over *time*, so judging it needs retained history: burn rates
// over minutes, tail quantiles over a session, capacity headroom trends.
// The store keeps that history without any external dependency: a
// fixed-capacity ring of samples per {family, label set}, drop-oldest with
// dropped counters, and an injected clock so simulations and tests stay
// deterministic (the repo-wide tickclock invariant).
package tsdb

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"roia/internal/telemetry"
)

// Kind is a sample family's semantic: gauges are instantaneous values,
// counters are cumulative monotone values whose information is in their
// deltas (queries report reset-aware rates and increases, never the raw
// running total).
type Kind uint8

// The sample kinds.
const (
	Gauge Kind = iota
	Counter
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Gauge:
		return "gauge"
	case Counter:
		return "counter"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Sample is one timestamped observation. T is in seconds on the store's
// clock (Unix seconds under the default clock, session seconds under an
// injected one).
type Sample struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// Series is a fixed-capacity ring of samples for one {family, label set}.
// Appends past the capacity overwrite the oldest sample and count it as
// dropped — retention is bounded by design, the same discipline as every
// other long-lived telemetry buffer in the repo.
type Series struct {
	family  string
	labels  map[string]string
	kind    Kind
	buf     []Sample
	next    int
	cap     int
	dropped uint64
}

// append adds one sample, overwriting the oldest when the ring is full.
func (s *Series) append(smp Sample) {
	if len(s.buf) < s.cap {
		s.buf = append(s.buf, smp)
		return
	}
	s.buf[s.next] = smp
	s.next = (s.next + 1) % s.cap
	s.dropped++
}

// samples returns the retained samples in chronological order.
func (s *Series) samples() []Sample {
	out := make([]Sample, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// SeriesData is one series' query result: identity plus the retained
// samples in the requested range, chronological.
type SeriesData struct {
	Family  string            `json:"family"`
	Labels  map[string]string `json:"labels,omitempty"`
	Kind    Kind              `json:"-"`
	Samples []Sample          `json:"-"`
}

// Config parameterises a Store. The zero value selects every default.
type Config struct {
	// SeriesCapacity is the per-series ring size (default 720 samples: 12
	// minutes of 1 Hz scrapes, or 12 hours at one per minute).
	SeriesCapacity int
	// MaxSeries bounds the number of distinct {family, label set} series;
	// appends to new series beyond it are dropped and counted (default
	// 4096). Label cardinality explosions degrade to a counter, not OOM.
	MaxSeries int
	// Now is the store's clock, used to stamp Append samples and to resolve
	// relative query windows (default time.Now). Inject a fake clock for
	// deterministic fixtures.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.SeriesCapacity <= 0 {
		c.SeriesCapacity = 720
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = 4096
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Store holds bounded time series keyed by {family, label set}. It is safe
// for concurrent use: the collector appends while HTTP query handlers and
// the SLO engine read.
type Store struct {
	mu            sync.Mutex
	cfg           Config
	series        map[string]*Series
	droppedSeries uint64
	appends       uint64
}

// NewStore returns an empty store (zero cfg fields take the defaults).
func NewStore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	return &Store{cfg: cfg, series: make(map[string]*Series)}
}

// NowSec reports the store clock's current time in seconds.
func (st *Store) NowSec() float64 {
	st.mu.Lock()
	now := st.cfg.Now
	st.mu.Unlock()
	t := now()
	return float64(t.UnixNano()) / 1e9
}

// seriesKey renders the canonical identity of a series: the family plus
// the label pairs sorted by key.
func seriesKey(family string, labels map[string]string) string {
	if len(labels) == 0 {
		return family
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(family)
	for _, k := range keys {
		b.WriteByte('\x00')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// Append records one sample stamped with the store clock.
func (st *Store) Append(family string, labels map[string]string, kind Kind, v float64) {
	st.AppendAt(st.NowSec(), family, labels, kind, v)
}

// AppendAt records one sample with an explicit timestamp (seconds on the
// store's time base) — the fixture and replay path.
func (st *Store) AppendAt(t float64, family string, labels map[string]string, kind Kind, v float64) {
	key := seriesKey(family, labels)
	st.mu.Lock()
	defer st.mu.Unlock()
	sr := st.series[key]
	if sr == nil {
		if len(st.series) >= st.cfg.MaxSeries {
			st.droppedSeries++
			return
		}
		lbl := make(map[string]string, len(labels))
		for k, v := range labels {
			lbl[k] = v
		}
		sr = &Series{family: family, labels: lbl, kind: kind, cap: st.cfg.SeriesCapacity}
		st.series[key] = sr
	}
	sr.append(Sample{T: t, V: v})
	st.appends++
}

// Query returns every series of the given family whose labels include all
// match pairs, with the samples falling in [since, until] (chronological).
// until <= 0 means "no upper bound". Series with no samples in range are
// omitted; results are ordered by canonical series key, so a query is
// deterministic for a given store state.
func (st *Store) Query(family string, match map[string]string, since, until float64) []SeriesData {
	st.mu.Lock()
	defer st.mu.Unlock()
	type keyed struct {
		key string
		sd  SeriesData
	}
	var out []keyed
	for key, sr := range st.series {
		if sr.family != family || !labelsMatch(sr.labels, match) {
			continue
		}
		all := sr.samples()
		lo := sort.Search(len(all), func(i int) bool { return all[i].T >= since })
		hi := len(all)
		if until > 0 {
			hi = sort.Search(len(all), func(i int) bool { return all[i].T > until })
		}
		if lo >= hi {
			continue
		}
		lbl := make(map[string]string, len(sr.labels))
		for k, v := range sr.labels {
			lbl[k] = v
		}
		out = append(out, keyed{key: key, sd: SeriesData{
			Family:  sr.family,
			Labels:  lbl,
			Kind:    sr.kind,
			Samples: append([]Sample(nil), all[lo:hi]...),
		}})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	res := make([]SeriesData, len(out))
	for i, k := range out {
		res[i] = k.sd
	}
	return res
}

// Families returns the distinct family names with retained series, sorted.
func (st *Store) Families() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	seen := make(map[string]bool)
	for _, sr := range st.series {
		seen[sr.family] = true
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// SeriesCount reports the number of retained series.
func (st *Store) SeriesCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.series)
}

// DroppedSamples reports how many samples ring eviction discarded.
func (st *Store) DroppedSamples() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var n uint64
	for _, sr := range st.series {
		n += sr.dropped
	}
	return n
}

// DroppedSeries reports how many appends were refused at the series cap.
func (st *Store) DroppedSeries() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.droppedSeries
}

// Appends reports how many samples were ever accepted.
func (st *Store) Appends() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.appends
}

// labelsMatch reports whether have includes every want pair.
func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// WriteMetrics exports the store's own health in the Prometheus text
// exposition format (observability of the observability substrate), so a
// cardinality explosion or eviction churn is itself visible on the scrape.
//
// Exported families:
//
//	roia_tsdb_series                  gauge, retained series
//	roia_tsdb_samples_total           counter, samples ever accepted
//	roia_tsdb_dropped_samples_total   counter, samples evicted by the rings
//	roia_tsdb_dropped_series_total    counter, appends refused at MaxSeries
func (st *Store) WriteMetrics(w io.Writer, labels string) error {
	st.mu.Lock()
	series := len(st.series)
	appends := st.appends
	droppedSeries := st.droppedSeries
	var droppedSamples uint64
	for _, sr := range st.series {
		droppedSamples += sr.dropped
	}
	st.mu.Unlock()
	lbl := telemetry.FormatLabels(labels, "")
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE roia_tsdb_series gauge\nroia_tsdb_series%s %d\n", lbl, series)
	fmt.Fprintf(&b, "# TYPE roia_tsdb_samples_total counter\nroia_tsdb_samples_total%s %d\n", lbl, appends)
	fmt.Fprintf(&b, "# TYPE roia_tsdb_dropped_samples_total counter\nroia_tsdb_dropped_samples_total%s %d\n", lbl, droppedSamples)
	fmt.Fprintf(&b, "# TYPE roia_tsdb_dropped_series_total counter\nroia_tsdb_dropped_series_total%s %d\n", lbl, droppedSeries)
	_, err := io.WriteString(w, b.String())
	return err
}
