package telemetry

import (
	"math"
	"regexp"
	"strings"
	"testing"
)

// metricLineRE matches one sample line of the Prometheus text format:
// name{label="value",...} number.
var metricLineRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9.eE+-]+(e[+-]?[0-9]+)?$`)

// assertExposition checks every non-comment line against the exposition
// line grammar so a malformed label set or missing value fails loudly.
func assertExposition(t *testing.T, out string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLineRE.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestLogBucketMonotoneAndBounded(t *testing.T) {
	prev := -1
	for us := uint64(0); us < 1<<14; us++ {
		b := logBucket(us)
		if b < prev {
			t.Fatalf("bucket index not monotone at %dµs: %d < %d", us, b, prev)
		}
		if b < 0 || b >= numLogBuckets {
			t.Fatalf("bucket index out of range at %dµs: %d", us, b)
		}
		prev = b
	}
	if b := logBucket(math.MaxUint64); b != numLogBuckets-1 {
		t.Fatalf("max uint64 should land in the last bucket, got %d of %d", b, numLogBuckets)
	}
}

func TestLogBucketBoundsContainValue(t *testing.T) {
	for _, us := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 12345, 1 << 20, 1<<40 + 12345} {
		i := logBucket(us)
		lo := logBucketLow(i)
		hi := lo + logBucketWidth(i)
		if us < lo || us >= hi {
			t.Fatalf("value %dµs not inside bucket %d [%d, %d)", us, i, lo, hi)
		}
	}
}

func TestLogBucketRelativeError(t *testing.T) {
	for _, us := range []uint64{32, 100, 999, 4096, 65537, 1 << 22} {
		i := logBucket(us)
		w := logBucketWidth(i)
		if rel := float64(w) / float64(logBucketLow(i)); rel > 1.0/logSubBuckets {
			t.Fatalf("bucket %d for %dµs has relative width %.4f > %.4f", i, us, rel, 1.0/logSubBuckets)
		}
	}
}

func TestLogHistogramExactBelow32us(t *testing.T) {
	h := NewLogHistogram()
	// 0.005 ms = 5 µs: exact bucket.
	for i := 0; i < 10; i++ {
		h.Observe(0.005)
	}
	// Bucket midpoint is 5.5 µs but quantiles are clamped to the exact max.
	if got := h.Quantile(0.5); math.Abs(got-0.005) > 1e-9 {
		t.Fatalf("p50 of exact bucket = %g, want 0.005 (midpoint clamped to max)", got)
	}
}

func TestLogHistogramQuantiles(t *testing.T) {
	h := NewLogHistogram()
	// 1..1000 ms uniformly.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct{ q, want float64 }{{0.50, 500}, {0.95, 950}, {0.99, 990}, {0.999, 999}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if rel := math.Abs(got-c.want) / c.want; rel > 0.07 {
			t.Errorf("q%g = %g, want %g ± 7%%", c.q, got, c.want)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("q1 = %g, want exact max %g", h.Quantile(1), h.Max())
	}
	if mean := h.Mean(); math.Abs(mean-500.5) > 1e-6 {
		t.Errorf("mean = %g, want exact 500.5", mean)
	}
}

func TestLogHistogramIgnoresBadValues(t *testing.T) {
	h := NewLogHistogram()
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(-1)
	if h.Count() != 0 {
		t.Fatalf("bad values recorded: count = %d", h.Count())
	}
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty quantile = %g", h.Quantile(0.5))
	}
}

func TestLogHistogramMerge(t *testing.T) {
	a, b := NewLogHistogram(), NewLogHistogram()
	for i := 1; i <= 500; i++ {
		a.Observe(float64(i))
	}
	for i := 501; i <= 1000; i++ {
		b.Observe(float64(i))
	}
	whole := NewLogHistogram()
	for i := 1; i <= 1000; i++ {
		whole.Observe(float64(i))
	}
	a.Merge(b)
	a.Merge(nil) // no-op
	if a.Count() != whole.Count() || a.Sum() != whole.Sum() || a.Max() != whole.Max() {
		t.Fatalf("merge totals diverge: count %d/%d sum %g/%g max %g/%g",
			a.Count(), whole.Count(), a.Sum(), whole.Sum(), a.Max(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q%g: merged %g != whole %g", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

// TestLogHistogramQuantileEdges pins the documented edge cases of
// Quantile: empty histograms, q at and beyond both ends of [0, 1], and
// single-bucket histograms, where the midpoint clamp must keep the answer
// at the exact observed value.
func TestLogHistogramQuantileEdges(t *testing.T) {
	empty := NewLogHistogram()
	for _, q := range []float64{-1, 0, 0.5, 0.999, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}

	// Single-bucket histogram: every observation is the same value, so
	// every quantile — including the q<=0 and q>=1 clamps — must report
	// exactly that value (midpoint clamped to the tracked max).
	single := NewLogHistogram()
	for i := 0; i < 7; i++ {
		single.Observe(5)
	}
	for _, q := range []float64{-0.5, 0, 0.001, 0.5, 0.999, 1, 1.5} {
		if got := single.Quantile(q); got != 5 {
			t.Errorf("single-bucket Quantile(%g) = %g, want 5", q, got)
		}
	}

	// Interpolation ends of a spread distribution: q<=0 estimates the
	// minimum at bucket resolution, q>=1 is the exact maximum.
	h := NewLogHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0); math.Abs(got-1) > 0.07 {
		t.Errorf("Quantile(0) = %g, want ≈ minimum 1", got)
	}
	if got, lo := h.Quantile(0), h.Quantile(0.5); got > lo {
		t.Errorf("Quantile(0) = %g above Quantile(0.5) = %g", got, lo)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %g, want exact max 100", got)
	}
	if got := h.Quantile(2); got != 100 {
		t.Errorf("Quantile(2) = %g, want clamp to max 100", got)
	}
}

// TestLogHistogramMergeWithEmpty pins merge-with-empty in both directions:
// neither direction may invent or lose observations.
func TestLogHistogramMergeWithEmpty(t *testing.T) {
	h := NewLogHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	want := h.Clone()

	// Merging an empty histogram into a full one changes nothing.
	h.Merge(NewLogHistogram())
	if h.Count() != want.Count() || h.Sum() != want.Sum() || h.Max() != want.Max() {
		t.Fatalf("merge(empty) changed totals: count %d/%d sum %g/%g max %g/%g",
			h.Count(), want.Count(), h.Sum(), want.Sum(), h.Max(), want.Max())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if h.Quantile(q) != want.Quantile(q) {
			t.Errorf("merge(empty) moved Quantile(%g): %g != %g", q, h.Quantile(q), want.Quantile(q))
		}
	}

	// Merging into an empty histogram reproduces the source distribution.
	into := NewLogHistogram()
	into.Merge(want)
	if into.Count() != want.Count() || into.Sum() != want.Sum() || into.Max() != want.Max() {
		t.Fatalf("empty.Merge(h) totals: count %d/%d sum %g/%g max %g/%g",
			into.Count(), want.Count(), into.Sum(), want.Sum(), into.Max(), want.Max())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if into.Quantile(q) != want.Quantile(q) {
			t.Errorf("empty.Merge(h) Quantile(%g): %g != %g", q, into.Quantile(q), want.Quantile(q))
		}
	}
}

func TestLogHistogramClone(t *testing.T) {
	h := NewLogHistogram()
	h.Observe(42)
	c := h.Clone()
	c.Observe(100)
	if h.Count() != 1 || c.Count() != 2 {
		t.Fatalf("clone not independent: %d / %d", h.Count(), c.Count())
	}
}

func TestLatencyDeadlineAccounting(t *testing.T) {
	l := NewLatency(40)
	for i := 0; i < 95; i++ {
		l.Observe(10)
	}
	for i := 0; i < 5; i++ {
		l.Observe(80)
	}
	s := l.Snapshot()
	if s.Count != 100 || s.Violations != 5 {
		t.Fatalf("count=%d violations=%d, want 100/5", s.Count, s.Violations)
	}
	if got := s.ViolationRate(); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("violation rate = %g", got)
	}
	if s.DeadlineMS != 40 {
		t.Fatalf("deadline = %g", s.DeadlineMS)
	}
	// Exactly at the deadline is not a violation.
	l2 := NewLatency(40)
	l2.Observe(40)
	if v := l2.Snapshot().Violations; v != 0 {
		t.Fatalf("observation at deadline counted as violation: %d", v)
	}
	// Disabled deadline never counts.
	l3 := NewLatency(0)
	l3.Observe(1e6)
	if v := l3.Snapshot().Violations; v != 0 {
		t.Fatalf("disabled deadline counted violation: %d", v)
	}
}

func TestLatencyMerge(t *testing.T) {
	a, b := NewLatency(40), NewLatency(40)
	a.Observe(10)
	b.Observe(90)
	b.Observe(95)
	a.Merge(b)
	a.Merge(nil)
	a.Merge(a) // self-merge must not double
	s := a.Snapshot()
	if s.Count != 3 || s.Violations != 2 {
		t.Fatalf("merged count=%d violations=%d, want 3/2", s.Count, s.Violations)
	}
}

func TestLatencyWriteMetrics(t *testing.T) {
	l := NewLatency(40)
	l.Observe(10)
	l.Observe(90)
	var sb strings.Builder
	if err := l.WriteMetrics(&sb, "roia_client_rtt", `zone="0"`); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`roia_client_rtt_ms{zone="0",stat="p99"}`,
		`roia_client_rtt_count{zone="0"} 2`,
		`roia_client_rtt_deadline_ms{zone="0"} 40`,
		`roia_client_rtt_deadline_violations_total{zone="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	assertExposition(t, out)
}

func TestTaskDrift(t *testing.T) {
	names := PhaseNames()
	td := NewTaskDrift(names[:]...)
	td.Observe("npc_update", 1.0, 2.0) // 100% off
	td.Observe("user_input", 1.0, 1.05)
	name, snap, ok := td.Worst()
	if !ok || name != "npc_update" {
		t.Fatalf("worst = %q ok=%v, want npc_update", name, ok)
	}
	if snap.Samples != 1 {
		t.Fatalf("worst samples = %d", snap.Samples)
	}
	snaps := td.Snapshot()
	if len(snaps) != NumPhases {
		t.Fatalf("snapshot has %d tasks, want %d", len(snaps), NumPhases)
	}
	if snaps["aoi_su"].Samples != 0 {
		t.Fatalf("unobserved task has samples")
	}
	var sb strings.Builder
	if err := td.WriteMetrics(&sb, ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`roia_model_task_error_ratio_mean{task="npc_update"}`,
		`roia_model_task_drift_samples_total{task="user_input"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	assertExposition(t, out)
}

func TestTaskProfiler(t *testing.T) {
	p := NewTaskProfiler()
	for i := 0; i < 10; i++ {
		p.RecordTick(
			[NumPhases]float64{1, 2, 3, 4},
			[NumPhases]int{5, 6, 7, 8},
		)
	}
	snaps, ticks := p.Snapshot()
	if ticks != 10 {
		t.Fatalf("ticks = %d", ticks)
	}
	if snaps[int(PhaseNPCUpdate)].Items != 70 {
		t.Fatalf("npc items = %d, want 70", snaps[int(PhaseNPCUpdate)].Items)
	}
	if got := snaps[int(PhaseAOISU)].Share; math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("aoi_su share = %g, want 0.4", got)
	}
	if got := snaps[int(PhaseUserInput)].MeanMS; math.Abs(got-1) > 1e-9 {
		t.Fatalf("user_input mean = %g, want 1", got)
	}
	var sb strings.Builder
	if err := p.WriteMetrics(&sb, `replica="r1"`); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`roia_phase_tick_ms{replica="r1",phase="npc_update",stat="p95"}`,
		`roia_phase_share{replica="r1",phase="aoi_su"} 0.4`,
		`roia_phase_ticks_total{replica="r1"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	assertExposition(t, out)
}

func TestPhaseString(t *testing.T) {
	if PhaseNPCUpdate.String() != "npc_update" {
		t.Fatalf("got %q", PhaseNPCUpdate.String())
	}
	if got := Phase(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("out-of-range phase string = %q", got)
	}
}
