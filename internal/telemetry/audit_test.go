package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleRecord(t float64) DecisionRecord {
	return DecisionRecord{
		Time: t, Users: 200, NPCs: 10, Replicas: 1,
		Servers: []ServerSnapshot{
			{ID: "s1", Users: 200, TickMS: 35.2, Power: 1, Class: "standard", Ready: true},
		},
		NMax: 235, Trigger: 188, TriggerFraction: 0.8, LMax: 8, RemoveHeadroom: 0.9,
		Settled: true,
		Actions: []AuditAction{
			{Kind: "replicate", Dst: "s2", Reason: "n=200 >= trigger=188 (80% of n_max=235), l=1 < l_max=8"},
		},
	}
}

func TestAuditLogJSONL(t *testing.T) {
	var sb strings.Builder
	log := NewAuditLog(&sb)
	log.Record(sampleRecord(0))
	log.Record(sampleRecord(1))
	if log.Records() != 2 {
		t.Fatalf("Records = %d", log.Records())
	}
	if log.Err() != nil {
		t.Fatal(log.Err())
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for i, line := range lines {
		var r DecisionRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %d invalid JSON: %v", i, err)
		}
		if r.Time != float64(i) || r.NMax != 235 || r.LMax != 8 || r.Trigger != 188 {
			t.Fatalf("line %d round-trip mismatch: %+v", i, r)
		}
		if len(r.Actions) != 1 || r.Actions[0].Kind != "replicate" {
			t.Fatalf("line %d actions mismatch: %+v", i, r.Actions)
		}
		if !strings.Contains(r.Actions[0].Reason, "n_max") {
			t.Fatalf("reason lacks threshold context: %q", r.Actions[0].Reason)
		}
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, errWrite
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestAuditLogStickyError(t *testing.T) {
	log := NewAuditLog(failingWriter{})
	log.Record(sampleRecord(0))
	log.Record(sampleRecord(1))
	if log.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if log.Records() != 0 {
		t.Fatalf("Records = %d after failed writes", log.Records())
	}
}

func TestMemorySink(t *testing.T) {
	var sink MemorySink
	sink.Record(sampleRecord(0))
	sink.Record(sampleRecord(1))
	got := sink.Snapshot()
	if len(got) != 2 || got[1].Time != 1 {
		t.Fatalf("Snapshot = %+v", got)
	}
	got[0].NMax = -1
	if sink.Snapshot()[0].NMax != 235 {
		t.Fatal("Snapshot aliases internal storage")
	}
}
