package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Fleet event kinds: the replica-group lifecycle transitions worth a line
// in the fleet log. They mirror the RMS actions (spawn = replication
// enactment, drain/stop = resource removal) plus the zoning distribution's
// user handoffs between zones.
const (
	// FleetEventSpawn records a new replica joining the group.
	FleetEventSpawn = "spawn"
	// FleetEventDrain records a replica starting to drain (undrain when
	// reversed — Detail says which).
	FleetEventDrain = "drain"
	// FleetEventStop records a replica leaving the group.
	FleetEventStop = "stop"
	// FleetEventZoneHandoff records a user crossing into another zone.
	FleetEventZoneHandoff = "zone_handoff"
)

// FleetEvent is one replica-group lifecycle event, logged as JSONL in the
// same style as the RMS decision audit.
type FleetEvent struct {
	// UnixMicro is the event's wall-clock time in Unix microseconds.
	UnixMicro int64 `json:"unix_us"`
	// Kind is one of the FleetEvent* constants.
	Kind string `json:"kind"`
	// Zone is the zone the event belongs to.
	Zone uint32 `json:"zone"`
	// Replica is the affected server ID.
	Replica string `json:"replica"`
	// Detail carries event-specific context (destination zone of a
	// handoff, drain direction, ...).
	Detail string `json:"detail,omitempty"`
}

// FleetEventSink consumes fleet events. Implementations: FleetEventLog
// (JSONL) and MemoryFleetEvents (tests).
type FleetEventSink interface {
	FleetEvent(FleetEvent)
}

// FleetEventLog streams fleet events as JSONL to a writer. It is safe for
// concurrent use; encoding errors are sticky and reported by Err.
type FleetEventLog struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   int
	err error
}

// NewFleetEventLog returns a log writing one JSON event per line to w.
func NewFleetEventLog(w io.Writer) *FleetEventLog {
	return &FleetEventLog{enc: json.NewEncoder(w)}
}

// FleetEvent implements FleetEventSink.
func (l *FleetEventLog) FleetEvent(e FleetEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if err := l.enc.Encode(e); err != nil {
		l.err = err
		return
	}
	l.n++
}

// Events reports how many events were written.
func (l *FleetEventLog) Events() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Err returns the first encoding error, if any.
func (l *FleetEventLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// MemoryFleetEvents collects fleet events in memory, keeping the newest
// memorySinkCap events.
type MemoryFleetEvents struct {
	mu      sync.Mutex
	events  []FleetEvent
	dropped uint64
}

// FleetEvent implements FleetEventSink.
func (s *MemoryFleetEvents) FleetEvent(e FleetEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) >= memorySinkCap {
		copy(s.events, s.events[1:])
		s.events[len(s.events)-1] = e
		s.dropped++
		return
	}
	s.events = append(s.events, e)
}

// Snapshot returns a copy of the collected events.
func (s *MemoryFleetEvents) Snapshot() []FleetEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]FleetEvent(nil), s.events...)
}

// Dropped reports how many old events the cap evicted.
func (s *MemoryFleetEvents) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
