package telemetry

import (
	"runtime"
	"strings"
	"testing"
)

// costSink keeps test allocations live so the compiler cannot elide them.
var costSink [][]byte

func allocMB(n int) {
	for i := 0; i < n; i++ {
		costSink = append(costSink, make([]byte, 1<<20))
	}
	if len(costSink) > 64 {
		costSink = costSink[:0]
	}
}

func TestCostTrackerStageAttribution(t *testing.T) {
	c := NewCostTracker()
	c.BeginTick()
	allocMB(2)
	c.EndStage(CostStageDecode)
	allocMB(4)
	c.EndStage(CostStageApply)
	cost := c.EndTick()

	snap := c.Snapshot()
	if snap.Ticks != 1 {
		t.Fatalf("ticks = %d, want 1", snap.Ticks)
	}
	if got := snap.AllocBytes[CostStageDecode]; got < 2<<20 {
		t.Fatalf("decode bytes = %d, want >= 2 MiB", got)
	}
	if got := snap.AllocBytes[CostStageApply]; got < 4<<20 {
		t.Fatalf("apply bytes = %d, want >= 4 MiB", got)
	}
	// The stage deltas partition [BeginTick, EndTick], so their sum must
	// equal the tick total exactly (the residue is charged to "other").
	var sumB, sumO uint64
	for _, v := range snap.AllocBytes {
		sumB += v
	}
	for _, v := range snap.AllocObjects {
		sumO += v
	}
	if sumB != cost.AllocBytes || sumO != cost.AllocObjects {
		t.Fatalf("stage sums (%d B, %d objs) != tick totals (%d B, %d objs)",
			sumB, sumO, cost.AllocBytes, cost.AllocObjects)
	}
	if _, ok := snap.AllocBytes[CostStageOther]; !ok {
		t.Fatal("no residual \"other\" stage recorded")
	}
}

func TestCostTrackerStageVocabularyBounded(t *testing.T) {
	c := NewCostTracker()
	c.BeginTick()
	for i := 0; i < 2*maxCostStages; i++ {
		c.EndStage(strings.Repeat("x", i+1))
	}
	c.EndTick()
	if n := len(c.Snapshot().AllocBytes); n > maxCostStages+1 {
		t.Fatalf("stage map grew to %d entries, want <= %d", n, maxCostStages+1)
	}
}

func TestCostTrackerGCAttribution(t *testing.T) {
	c := NewCostTracker()
	c.BeginTick()
	runtime.GC()
	cost := c.EndTick()
	if cost.GCCycles == 0 {
		t.Fatal("forced GC inside the tick, but GCCycles delta is 0")
	}
	if cost.GCPauseMS <= 0 {
		t.Fatalf("forced GC inside the tick, but pause delta is %g ms", cost.GCPauseMS)
	}
	snap := c.Snapshot()
	if snap.GCCycles != cost.GCCycles || snap.GCPauseTotalMS != cost.GCPauseMS {
		t.Fatalf("snapshot GC totals (%d, %g) != tick cost (%d, %g)",
			snap.GCCycles, snap.GCPauseTotalMS, cost.GCCycles, cost.GCPauseMS)
	}
	if q := snap.GCPause.Quantile(1); q <= 0 {
		t.Fatalf("windowed pause max = %g, want > 0", q)
	}

	// A tick without a GC must not inherit the previous tick's pauses.
	c.BeginTick()
	cost = c.EndTick()
	if cost.GCPauseMS != 0 && cost.GCCycles == 0 {
		t.Fatalf("no GC cycle in tick but pause delta = %g ms", cost.GCPauseMS)
	}
}

func TestCostTrackerOutsideTickNoOps(t *testing.T) {
	c := NewCostTracker()
	c.EndStage(CostStageDecode) // before any tick: must not attribute
	if cost := c.EndTick(); cost != (TickCost{}) {
		t.Fatalf("EndTick outside a tick = %+v, want zero", cost)
	}
	if snap := c.Snapshot(); snap.Ticks != 0 || len(snap.AllocBytes) != 0 {
		t.Fatalf("tracker mutated outside a tick: %+v", snap)
	}
}

func TestCostTrackerEgressAccounting(t *testing.T) {
	c := NewCostTracker()
	c.ObserveEgress("c1", "state_update", 100)
	c.ObserveEgress("c1", "state_update", 50)
	c.ObserveEgress("c2", "join_ack", 30)
	c.ObserveEgress("", "shadow_update", 500) // server-to-server: type only
	c.ObserveEgress("c1", "input", 0)         // empty frames are ignored

	snap := c.Snapshot()
	if got := snap.EgressByType["state_update"]; got != 150 {
		t.Fatalf("state_update bytes = %d, want 150", got)
	}
	if got := snap.EgressByType["shadow_update"]; got != 500 {
		t.Fatalf("shadow_update bytes = %d, want 500", got)
	}
	if snap.EgressClientBytes != 180 {
		t.Fatalf("client bytes = %d, want 180 (shadow traffic must not count)", snap.EgressClientBytes)
	}
	if snap.EgressClients != 2 {
		t.Fatalf("clients = %d, want 2", snap.EgressClients)
	}
	if b, ok := c.ClientEgressBytes("c1"); !ok || b != 150 {
		t.Fatalf("ClientEgressBytes(c1) = %d, %v, want 150, true", b, ok)
	}
	if max := snap.Payload.Quantile(1); max != 100 {
		t.Fatalf("payload max = %g, want 100", max)
	}

	c.EvictClient("c1")
	if _, ok := c.ClientEgressBytes("c1"); ok {
		t.Fatal("c1 still tracked after EvictClient")
	}
	snap = c.Snapshot()
	if snap.EgressClients != 1 {
		t.Fatalf("clients after evict = %d, want 1", snap.EgressClients)
	}
	if snap.EgressClientBytes != 180 {
		t.Fatalf("cumulative client bytes changed on evict: %d", snap.EgressClientBytes)
	}
}

func TestCostTrackerEgressTypeVocabularyBounded(t *testing.T) {
	c := NewCostTracker()
	for i := 0; i < 3*maxEgressTypes; i++ {
		c.ObserveEgress("", strings.Repeat("t", i+1), 1)
	}
	snap := c.Snapshot()
	if n := len(snap.EgressByType); n > maxEgressTypes+1 {
		t.Fatalf("egress type map grew to %d entries, want <= %d", n, maxEgressTypes+1)
	}
	if snap.EgressByType["other"] == 0 {
		t.Fatal("overflow types not collapsed into \"other\"")
	}
}

func TestCostTrackerChurn(t *testing.T) {
	c := NewCostTracker()
	for i := 0; i < 10; i++ {
		c.ObserveChurn(2, 0)
	}
	c.ObserveChurn(40, 7)
	snap := c.Snapshot()
	if max := snap.ChurnEnter.Quantile(1); max != 40 {
		t.Fatalf("churn enter max = %g, want 40", max)
	}
	if max := snap.ChurnLeave.Quantile(1); max != 7 {
		t.Fatalf("churn leave max = %g, want 7", max)
	}
	if med := snap.ChurnEnter.Quantile(0.5); med <= 0 || med > 3 {
		t.Fatalf("churn enter median = %g, want ~2", med)
	}
}

func TestCostTrackerWriteMetrics(t *testing.T) {
	c := NewCostTracker()
	c.BeginTick()
	runtime.GC()
	c.EndStage(CostStagePublish)
	c.EndTick()
	c.ObserveEgress("c1", "state_update", 64)
	c.ObserveChurn(1, 1)

	var b strings.Builder
	if err := c.WriteMetrics(&b, `zone="1"`); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE roia_alloc_bytes_total counter",
		`roia_alloc_bytes_total{zone="1",stage="publish"} `,
		"# TYPE roia_alloc_objects_total counter",
		"# TYPE roia_gc_cycles_total counter",
		`roia_gc_cycles_total{zone="1"} `,
		"# TYPE roia_gc_pause_ms_total counter",
		"# TYPE roia_gc_pause_q_ms gauge",
		`roia_gc_pause_q_ms{zone="1",q="0.99"} `,
		"# TYPE roia_egress_bytes_total counter",
		`roia_egress_bytes_total{zone="1",type="state_update"} 64`,
		"# TYPE roia_egress_client_bytes_total counter",
		`roia_egress_client_bytes_total{zone="1"} 64`,
		"# TYPE roia_egress_clients gauge",
		`roia_egress_clients{zone="1"} 1`,
		"# TYPE roia_egress_payload_q_bytes gauge",
		`roia_egress_payload_q_bytes{zone="1",q="1"} `,
		"# TYPE roia_aoi_churn_enter_q gauge",
		"# TYPE roia_aoi_churn_leave_q gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("cost metrics missing %q:\n%s", want, out)
		}
	}
}
