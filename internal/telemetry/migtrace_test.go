package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestMigTracerRingEviction(t *testing.T) {
	tr := NewMigTracer(3)
	for i := 1; i <= 5; i++ {
		tr.Record(MigEvent{ID: uint64(i), Phase: MigPhaseInit})
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.Total())
	}
	events := tr.Events()
	for i, want := range []uint64{3, 4, 5} {
		if events[i].ID != want {
			t.Fatalf("events[%d].ID = %d, want %d (ring not chronological)", i, events[i].ID, want)
		}
	}
}

func TestMigTracerDefaultCapacity(t *testing.T) {
	tr := NewMigTracer(0)
	if got := cap(tr.buf); got != DefaultMigTraceCapacity {
		t.Fatalf("capacity = %d, want %d", got, DefaultMigTraceCapacity)
	}
}

// twoReplicaEvents is a migration observed on both endpoints (ID 1) plus an
// init whose transfer was lost (ID 2) and a recv whose init was evicted
// from the source ring (ID 3).
func twoReplicaEvents() map[string][]MigEvent {
	return map[string][]MigEvent{
		"server-1": {
			{ID: 1, Phase: MigPhaseInit, User: "u1", From: "server-1", To: "server-2", Tick: 10, UnixMicro: 1000, DurMS: 0.5},
			{ID: 2, Phase: MigPhaseInit, User: "u2", From: "server-1", To: "server-2", Tick: 11, UnixMicro: 2000, DurMS: 0.4},
			{ID: 1, Phase: MigPhaseAck, User: "u1", From: "server-1", To: "server-2", Tick: 12, UnixMicro: 3000},
		},
		"server-2": {
			{ID: 1, Phase: MigPhaseRecv, User: "u1", From: "server-1", To: "server-2", Tick: 8, UnixMicro: 1500, DurMS: 0.3},
			{ID: 3, Phase: MigPhaseRecv, User: "u3", From: "server-1", To: "server-2", Tick: 9, UnixMicro: 2500, DurMS: 0.2},
		},
	}
}

func TestStitchMigrations(t *testing.T) {
	migs := StitchMigrations(twoReplicaEvents())
	if len(migs) != 3 {
		t.Fatalf("stitched %d migrations, want 3: %+v", len(migs), migs)
	}
	byID := make(map[uint64]Migration)
	for _, m := range migs {
		byID[m.ID] = m
	}
	m1 := byID[1]
	if !m1.Complete || m1.Init == nil || m1.Recv == nil || m1.Ack == nil {
		t.Fatalf("migration 1 should be complete with all phases: %+v", m1)
	}
	if m1.User != "u1" || m1.From != "server-1" || m1.To != "server-2" {
		t.Fatalf("migration 1 endpoints = %+v", m1)
	}
	// init at 1000µs, recv at 1500µs + 0.3ms install.
	if m1.LatencyMS < 0.79 || m1.LatencyMS > 0.81 {
		t.Fatalf("migration 1 latency = %g ms, want 0.8", m1.LatencyMS)
	}
	if m2 := byID[2]; m2.Complete || m2.Init == nil || m2.Recv != nil {
		t.Fatalf("migration 2 (lost transfer) should be incomplete with init only: %+v", m2)
	}
	if m3 := byID[3]; m3.Complete || m3.Recv == nil || m3.Init != nil {
		t.Fatalf("migration 3 (evicted init) should be incomplete with recv only: %+v", m3)
	}
	// Ordered by init (or earliest observation) time: 1 (1000), 2 (2000), 3 (2500).
	for i, want := range []uint64{1, 2, 3} {
		if migs[i].ID != want {
			t.Fatalf("migs[%d].ID = %d, want %d", i, migs[i].ID, want)
		}
	}
}

func TestWriteMigrationChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMigrationChromeTrace(&buf, twoReplicaEvents()); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	// One process row per replica.
	procs := make(map[int]string)
	for _, e := range trace.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			procs[e.PID] = e.Args["name"].(string)
		}
	}
	if len(procs) != 2 {
		t.Fatalf("process rows = %v, want one per replica", procs)
	}
	// The complete migration's init and recv spans sit on different process
	// rows and share the migration ID.
	var initPID, recvPID int
	incomplete := 0
	for _, e := range trace.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.Dur <= 0 {
			t.Fatalf("span %q has non-positive dur %g", e.Name, e.Dur)
		}
		id := uint64(e.Args["migration_id"].(float64))
		if id == 1 {
			switch e.Name {
			case "mig_init":
				initPID = e.PID
			case "mig_recv":
				recvPID = e.PID
			}
			if _, flagged := e.Args["incomplete"]; flagged {
				t.Fatalf("complete migration flagged incomplete: %+v", e)
			}
		}
		if _, flagged := e.Args["incomplete"]; flagged {
			incomplete++
		}
	}
	if initPID == 0 || recvPID == 0 || initPID == recvPID {
		t.Fatalf("init pid %d / recv pid %d: spans must land on distinct replica rows", initPID, recvPID)
	}
	if incomplete != 2 {
		t.Fatalf("flagged %d incomplete spans, want 2 (lost transfer + evicted init)", incomplete)
	}
}

func TestWriteMigrationJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMigrationJSONL(&buf, StitchMigrations(twoReplicaEvents())); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var m Migration
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("jsonl lines = %d, want 3", lines)
	}
}

func TestFleetEventLogJSONL(t *testing.T) {
	var buf bytes.Buffer
	log := NewFleetEventLog(&buf)
	log.FleetEvent(FleetEvent{UnixMicro: 1, Kind: FleetEventSpawn, Zone: 1, Replica: "server-1"})
	log.FleetEvent(FleetEvent{UnixMicro: 2, Kind: FleetEventDrain, Zone: 1, Replica: "server-1", Detail: "on"})
	if log.Events() != 2 || log.Err() != nil {
		t.Fatalf("events = %d err = %v", log.Events(), log.Err())
	}
	var first FleetEvent
	line := strings.SplitN(buf.String(), "\n", 2)[0]
	if err := json.Unmarshal([]byte(line), &first); err != nil {
		t.Fatal(err)
	}
	if first.Kind != FleetEventSpawn || first.Replica != "server-1" {
		t.Fatalf("first event = %+v", first)
	}
}
