package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
)

// Drift tracks live model drift: how far the calibrated scalability model's
// predicted tick duration T(l,n,m,a) strays from the measured mean tick.
// The paper validates its model offline (Fig. 4/6 fits); Drift turns that
// validation into a continuous runtime signal — a growing error ratio means
// the calibration no longer matches the deployed workload and the RMS
// thresholds derived from it are stale.
type Drift struct {
	mu sync.Mutex

	predicted float64
	measured  float64
	samples   uint64
	sumAbsErr float64
	sumAbsRel float64
	worstRel  float64
}

// DriftSnapshot is a point-in-time view of the drift tracker.
type DriftSnapshot struct {
	// PredictedMS / MeasuredMS are the latest observation pair.
	PredictedMS, MeasuredMS float64
	// ErrMS is the latest signed prediction error (predicted − measured).
	ErrMS float64
	// ErrRatio is the latest signed relative error, ErrMS / measured
	// (0 while no measurement exists).
	ErrRatio float64
	// MeanAbsErrMS / MeanAbsRatio average |error| over all observations.
	MeanAbsErrMS, MeanAbsRatio float64
	// WorstRatio is the largest |relative error| seen.
	WorstRatio float64
	// Samples counts observations.
	Samples uint64
}

// Observe records one prediction/measurement pair (both in ms).
// Non-finite inputs are ignored.
func (d *Drift) Observe(predictedMS, measuredMS float64) {
	if math.IsNaN(predictedMS) || math.IsInf(predictedMS, 0) ||
		math.IsNaN(measuredMS) || math.IsInf(measuredMS, 0) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.predicted = predictedMS
	d.measured = measuredMS
	d.samples++
	absErr := math.Abs(predictedMS - measuredMS)
	d.sumAbsErr += absErr
	if measuredMS > 0 {
		rel := absErr / measuredMS
		d.sumAbsRel += rel
		if rel > d.worstRel {
			d.worstRel = rel
		}
	}
}

// Snapshot returns the current drift state.
func (d *Drift) Snapshot() DriftSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := DriftSnapshot{
		PredictedMS: d.predicted,
		MeasuredMS:  d.measured,
		ErrMS:       d.predicted - d.measured,
		WorstRatio:  d.worstRel,
		Samples:     d.samples,
	}
	if d.measured > 0 {
		s.ErrRatio = s.ErrMS / d.measured
	}
	if d.samples > 0 {
		s.MeanAbsErrMS = d.sumAbsErr / float64(d.samples)
		s.MeanAbsRatio = d.sumAbsRel / float64(d.samples)
	}
	return s
}

// WriteMetrics writes the drift gauges in the Prometheus text exposition
// format.
//
// Exported families:
//
//	roia_model_predicted_tick_ms       latest model prediction T(l,n,m,a)
//	roia_model_measured_tick_ms        latest measured mean tick
//	roia_model_tick_error_ms           signed prediction error
//	roia_model_tick_error_ratio        signed relative error
//	roia_model_tick_error_ratio_mean   mean |relative error| over the run
//	roia_model_tick_error_ratio_worst  worst |relative error| over the run
//	roia_model_drift_samples_total     observation count
func (d *Drift) WriteMetrics(w io.Writer, labels string) error {
	s := d.Snapshot()
	lbl := FormatLabels(labels, "")
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE roia_model_predicted_tick_ms gauge\nroia_model_predicted_tick_ms%s %g\n", lbl, s.PredictedMS)
	fmt.Fprintf(&b, "# TYPE roia_model_measured_tick_ms gauge\nroia_model_measured_tick_ms%s %g\n", lbl, s.MeasuredMS)
	fmt.Fprintf(&b, "# TYPE roia_model_tick_error_ms gauge\nroia_model_tick_error_ms%s %g\n", lbl, s.ErrMS)
	fmt.Fprintf(&b, "# TYPE roia_model_tick_error_ratio gauge\nroia_model_tick_error_ratio%s %g\n", lbl, s.ErrRatio)
	fmt.Fprintf(&b, "# TYPE roia_model_tick_error_ratio_mean gauge\nroia_model_tick_error_ratio_mean%s %g\n", lbl, s.MeanAbsRatio)
	fmt.Fprintf(&b, "# TYPE roia_model_tick_error_ratio_worst gauge\nroia_model_tick_error_ratio_worst%s %g\n", lbl, s.WorstRatio)
	fmt.Fprintf(&b, "# TYPE roia_model_drift_samples_total counter\nroia_model_drift_samples_total%s %d\n", lbl, s.Samples)
	_, err := io.WriteString(w, b.String())
	return err
}
