// Package telemetry is the observability layer of the reproduction: the
// paper's whole contribution is making the real-time loop legible —
// decomposing a tick into timed tasks (Section III-C) and using those
// measurements to drive RTF-RMS decisions — and this package turns that
// legibility into machine-readable exhaust:
//
//   - Tracer records per-task spans of every tick into a bounded ring
//     buffer, exportable as Chrome trace_event JSON (loadable in Perfetto
//     or chrome://tracing) or JSONL (trace.go, handler.go);
//   - DecisionRecord / AuditLog capture every RTF-RMS control-loop step —
//     its inputs, the model thresholds that gated the choice, and the
//     resulting actions with reasons — as JSONL (audit.go);
//   - Drift continuously compares the calibrated model's predicted tick
//     duration against the measured one, the live version of the paper's
//     offline validation figures (drift.go);
//   - Histogram is a cumulative-bucket Prometheus histogram for tick
//     durations, where tail behaviour (not means) dominates scalability
//     analysis (histogram.go);
//   - WriteRuntimeMetrics exposes Go runtime health (goroutines, heap, GC)
//     next to the application metrics (this file).
//
// The package depends only on the standard library so that monitor, rms
// and server can all import it without cycles.
package telemetry

import (
	"fmt"
	"io"
	"runtime"
	"strings"
)

// FormatLabels renders an optional comma-separated label set plus extra
// labels into the {...} form of the Prometheus text exposition. Both
// arguments may be empty.
func FormatLabels(labels, extra string) string {
	parts := make([]string, 0, 2)
	if labels != "" {
		parts = append(parts, labels)
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteRuntimeMetrics writes Go runtime health metrics in the Prometheus
// text exposition format: goroutine count, heap usage, and GC activity.
// labels is an optional comma-separated label set rendered into every
// sample.
//
// Exported families:
//
//	roia_go_goroutines            current goroutine count
//	roia_go_heap_alloc_bytes      live heap bytes
//	roia_go_heap_objects          live heap object count
//	roia_go_gc_runs_total         completed GC cycles
//	roia_go_gc_pause_total_ms     cumulative stop-the-world pause time
//	roia_go_gc_pause_last_ms      most recent stop-the-world pause
func WriteRuntimeMetrics(w io.Writer, labels string) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	lbl := FormatLabels(labels, "")
	lastPause := 0.0
	if ms.NumGC > 0 {
		lastPause = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e6
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE roia_go_goroutines gauge\nroia_go_goroutines%s %d\n", lbl, runtime.NumGoroutine())
	fmt.Fprintf(&b, "# TYPE roia_go_heap_alloc_bytes gauge\nroia_go_heap_alloc_bytes%s %d\n", lbl, ms.HeapAlloc)
	fmt.Fprintf(&b, "# TYPE roia_go_heap_objects gauge\nroia_go_heap_objects%s %d\n", lbl, ms.HeapObjects)
	fmt.Fprintf(&b, "# TYPE roia_go_gc_runs_total counter\nroia_go_gc_runs_total%s %d\n", lbl, ms.NumGC)
	fmt.Fprintf(&b, "# TYPE roia_go_gc_pause_total_ms counter\nroia_go_gc_pause_total_ms%s %g\n", lbl, float64(ms.PauseTotalNs)/1e6)
	fmt.Fprintf(&b, "# TYPE roia_go_gc_pause_last_ms gauge\nroia_go_gc_pause_last_ms%s %g\n", lbl, lastPause)
	_, err := io.WriteString(w, b.String())
	return err
}
