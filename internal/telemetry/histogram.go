package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// DefTickBuckets returns the default bucket upper bounds (in ms) for tick
// duration histograms: roughly logarithmic from 50 µs to 1.28 s, bracketing
// both an idle in-process tick and a badly overloaded 25 Hz server.
func DefTickBuckets() []float64 {
	return []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 20, 40, 80, 160, 320, 640, 1280}
}

// Histogram is a fixed-bucket histogram in the Prometheus style: counts per
// upper bound plus an implicit +Inf bucket, a running sum, and a total
// count. Rendering is cumulative, as the exposition format requires.
// Histogram is not synchronized; callers holding per-sample locks (like
// monitor.Monitor) synchronize externally and hand snapshots (Clone) to
// renderers.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; the last entry is the +Inf bucket
	sum    float64
	count  uint64
}

// NewHistogram returns a histogram over the given upper bounds, which must
// be non-empty and strictly ascending (it panics otherwise — static wiring
// error).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must be ascending")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] == bounds[i-1] {
			panic("telemetry: duplicate histogram bound")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Clone returns an independent copy, for lock-free rendering of a snapshot.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{
		bounds: h.bounds, // immutable after construction
		counts: append([]uint64(nil), h.counts...),
		sum:    h.sum,
		count:  h.count,
	}
}

// Write renders the histogram as one Prometheus histogram family: a # TYPE
// header, cumulative <name>_bucket samples with le labels (ending in
// le="+Inf"), and <name>_sum / <name>_count. labels is an optional
// comma-separated label set added to every sample.
func (h *Histogram) Write(w io.Writer, name, labels string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(&b, "%s_bucket%s %d\n", name, FormatLabels(labels, fmt.Sprintf(`le="%g"`, bound)), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(&b, "%s_bucket%s %d\n", name, FormatLabels(labels, `le="+Inf"`), cum)
	fmt.Fprintf(&b, "%s_sum%s %g\n", name, FormatLabels(labels, ""), h.sum)
	fmt.Fprintf(&b, "%s_count%s %d\n", name, FormatLabels(labels, ""), h.count)
	_, err := io.WriteString(w, b.String())
	return err
}
