package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func tracerWith(n int) *Tracer {
	tr := NewTracer(n + 8)
	for i := 1; i <= n; i++ {
		tr.Record(sampleTrace(uint64(i)))
	}
	return tr
}

func TestTraceHandlerChrome(t *testing.T) {
	srv := httptest.NewServer(TraceHandler(tracerWith(150)))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "?n=100")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 100 ticks × (1 tick event + 3 spans).
	if len(decoded.TraceEvents) != 400 {
		t.Fatalf("got %d events, want 400", len(decoded.TraceEvents))
	}
}

func TestTraceHandlerJSONL(t *testing.T) {
	srv := httptest.NewServer(TraceHandler(tracerWith(5)))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "?n=3&format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var tt TickTrace
	if err := json.Unmarshal([]byte(lines[0]), &tt); err != nil {
		t.Fatal(err)
	}
	if tt.Tick != 3 { // last 3 of 5: ticks 3,4,5
		t.Fatalf("first exported tick = %d, want 3", tt.Tick)
	}
}

func TestTraceHandlerBadParams(t *testing.T) {
	srv := httptest.NewServer(TraceHandler(tracerWith(1)))
	defer srv.Close()
	for _, q := range []string{"?n=-1", "?n=abc", "?format=xml"} {
		resp, err := srv.Client().Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("%s: status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestMetricsHandlerComposes(t *testing.T) {
	var d Drift
	d.Observe(5, 4)
	srv := httptest.NewServer(MetricsHandler(`zone="1"`, d.WriteMetrics, WriteRuntimeMetrics))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		`roia_model_predicted_tick_ms{zone="1"} 5`,
		`roia_go_goroutines{zone="1"} `,
		"# TYPE roia_go_gc_runs_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("composed metrics missing %q:\n%s", want, out)
		}
	}
}

func TestWriteRuntimeMetricsNoLabels(t *testing.T) {
	var sb strings.Builder
	if err := WriteRuntimeMetrics(&sb, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "roia_go_heap_alloc_bytes ") {
		t.Fatalf("unlabeled runtime metrics missing:\n%s", sb.String())
	}
}
