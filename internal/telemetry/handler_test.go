package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func tracerWith(n int) *Tracer {
	tr := NewTracer(n + 8)
	for i := 1; i <= n; i++ {
		tr.Record(sampleTrace(uint64(i)))
	}
	return tr
}

func TestTraceHandlerChrome(t *testing.T) {
	srv := httptest.NewServer(TraceHandler(tracerWith(150)))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "?n=100")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 100 ticks × (1 tick event + 3 spans).
	if len(decoded.TraceEvents) != 400 {
		t.Fatalf("got %d events, want 400", len(decoded.TraceEvents))
	}
}

func TestTraceHandlerJSONL(t *testing.T) {
	srv := httptest.NewServer(TraceHandler(tracerWith(5)))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "?n=3&format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var tt TickTrace
	if err := json.Unmarshal([]byte(lines[0]), &tt); err != nil {
		t.Fatal(err)
	}
	if tt.Tick != 3 { // last 3 of 5: ticks 3,4,5
		t.Fatalf("first exported tick = %d, want 3", tt.Tick)
	}
}

func TestTraceHandlerBadParams(t *testing.T) {
	srv := httptest.NewServer(TraceHandler(tracerWith(1)))
	defer srv.Close()
	for _, q := range []string{"?n=-1", "?n=abc", "?format=xml"} {
		resp, err := srv.Client().Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("%s: status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestFlightRecHandlerBadParams(t *testing.T) {
	srv := httptest.NewServer(FlightRecHandler(NewFlightRecorder(FlightRecConfig{})))
	defer srv.Close()
	for _, q := range []string{"?n=-1", "?n=abc", "?n=1.5"} {
		resp, err := srv.Client().Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("%s: status = %d, want 400", q, resp.StatusCode)
		}
	}
	// Absent and zero n still serve.
	for _, q := range []string{"", "?n=0", "?n=2"} {
		resp, err := srv.Client().Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status = %d, want 200", q, resp.StatusCode)
		}
	}
}

func TestQueryIntParam(t *testing.T) {
	parse := func(raw string) url.Values {
		v, err := url.ParseQuery(raw)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if n, err := QueryIntParam(parse(""), "n", 7); err != nil || n != 7 {
		t.Errorf("absent = %d,%v, want default 7", n, err)
	}
	if n, err := QueryIntParam(parse("n=42"), "n", 7); err != nil || n != 42 {
		t.Errorf("present = %d,%v", n, err)
	}
	for _, raw := range []string{"n=-1", "n=abc", "n=1.5", "n="} {
		if _, err := QueryIntParam(parse(raw), "n", 0); err == nil {
			t.Errorf("%s: accepted, want error", raw)
		}
	}
}

func TestQueryFloatParam(t *testing.T) {
	parse := func(raw string) url.Values {
		v, err := url.ParseQuery(raw)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if f, err := QueryFloatParam(parse(""), "since", 300); err != nil || f != 300 {
		t.Errorf("absent = %g,%v, want default 300", f, err)
	}
	if f, err := QueryFloatParam(parse("since=0.5"), "since", 300); err != nil || f != 0.5 {
		t.Errorf("present = %g,%v", f, err)
	}
	for _, raw := range []string{"since=-1", "since=abc", "since=NaN", "since=Inf", "since="} {
		if _, err := QueryFloatParam(parse(raw), "since", 0); err == nil {
			t.Errorf("%s: accepted, want error", raw)
		}
	}
}

func TestReadyHandler(t *testing.T) {
	ready := false
	srv := httptest.NewServer(ReadyHandler(func() bool { return ready }))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 || !strings.Contains(string(body), "not ready") {
		t.Fatalf("unready: status %d body %q, want 503 not ready", resp.StatusCode, body)
	}
	ready = true
	resp, err = srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("ready: status %d body %q, want 200 ok", resp.StatusCode, body)
	}
}

func TestMetricsHandlerComposes(t *testing.T) {
	var d Drift
	d.Observe(5, 4)
	srv := httptest.NewServer(MetricsHandler(`zone="1"`, d.WriteMetrics, WriteRuntimeMetrics))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		`roia_model_predicted_tick_ms{zone="1"} 5`,
		`roia_go_goroutines{zone="1"} `,
		"# TYPE roia_go_gc_runs_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("composed metrics missing %q:\n%s", want, out)
		}
	}
}

func TestWriteRuntimeMetricsNoLabels(t *testing.T) {
	var sb strings.Builder
	if err := WriteRuntimeMetrics(&sb, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "roia_go_heap_alloc_bytes ") {
		t.Fatalf("unlabeled runtime metrics missing:\n%s", sb.String())
	}
}
