package telemetry

// DefaultTailWindow is the tail tracker's rotation window: with two live
// windows, quantiles reflect the last ~1–2k observations (≈40–80 s of
// ticks at 25 Hz) rather than the whole process lifetime.
const DefaultTailWindow = 1024

// TailQuantiles is one snapshot of a windowed tick-duration distribution.
// All values are in milliseconds.
type TailQuantiles struct {
	// Count is the number of observations the snapshot covers.
	Count uint64
	P50   float64
	P90   float64
	P99   float64
	P999  float64
	Max   float64
}

// TailTracker maintains *windowed* latency quantiles over a stream of
// observations. A cumulative histogram answers "what was p99 since boot",
// which buries a ten-minute incident under hours of healthy samples; the
// tracker instead keeps two LogHistograms — the filling current window and
// the last full one — and reports quantiles over their union, so gauges
// scraped from /metrics track the recent distribution (between one and two
// windows of history) and recover after an incident passes.
//
// Like LogHistogram, TailTracker is not synchronized: the monitor's mutex
// (or any single-writer discipline) must guard Observe against snapshots.
type TailTracker struct {
	window uint64
	cur    *LogHistogram
	prev   *LogHistogram
}

// NewTailTracker returns a tracker rotating every window observations
// (DefaultTailWindow when window is not positive).
func NewTailTracker(window int) *TailTracker {
	if window <= 0 {
		window = DefaultTailWindow
	}
	return &TailTracker{
		window: uint64(window),
		cur:    NewLogHistogram(),
		prev:   NewLogHistogram(),
	}
}

// Observe records one value (ms), rotating the windows when the current
// one is full.
func (t *TailTracker) Observe(ms float64) {
	if t.cur.Count() >= t.window {
		t.prev = t.cur
		t.cur = NewLogHistogram()
	}
	t.cur.Observe(ms)
}

// Histogram returns an independent histogram of the tracked window (the
// union of the current and previous windows). The result is mergeable
// across replicas, which is how the fleet collector builds zone-level
// quantiles from per-replica trackers.
func (t *TailTracker) Histogram() *LogHistogram {
	h := t.prev.Clone()
	h.Merge(t.cur)
	return h
}

// Quantiles snapshots the windowed distribution's headline quantiles.
func (t *TailTracker) Quantiles() TailQuantiles {
	h := t.Histogram()
	return TailQuantiles{
		Count: h.Count(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}
