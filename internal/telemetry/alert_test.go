package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// thresholdRule returns a rule that is active while *value > threshold.
func thresholdRule(name string, pendingFor int, value *float64, threshold float64) Rule {
	return Rule{
		Name:       name,
		PendingFor: pendingFor,
		Eval: func(now float64) []RuleResult {
			if *value <= threshold {
				return nil
			}
			return []RuleResult{{Key: "k", Value: *value, Threshold: threshold}}
		},
	}
}

func statesOf(events []AlertEvent) []string {
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = e.State
	}
	return out
}

func TestAlertLifecyclePendingFiringResolved(t *testing.T) {
	v := 0.0
	sink := &MemoryAlerts{}
	engine := NewAlertEngine(sink, thresholdRule("over", 1, &v, 10))

	engine.Eval(1) // below threshold: nothing
	v = 15
	engine.Eval(2) // first breach: pending
	engine.Eval(3) // held: firing
	engine.Eval(4) // still firing: no new transition
	v = 5
	engine.Eval(5) // cleared: resolved

	got := statesOf(sink.Snapshot())
	want := []string{"pending", "firing", "resolved"}
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", got, want)
		}
	}
	ev := sink.Snapshot()[1]
	if ev.Value != 15 || ev.Threshold != 10 || ev.Time != 3 {
		t.Fatalf("firing event = %+v", ev)
	}
	if len(engine.Active()) != 0 {
		t.Fatalf("active after resolve = %+v", engine.Active())
	}
}

// TestAlertRefireAfterResolve pins the re-fire semantics: a resolved
// instance is forgotten, so a recurrence of the same rule+key must walk
// the full pending → firing ladder again (with its PendingFor hold), not
// resume as firing — and the JSONL stream must show both complete cycles.
func TestAlertRefireAfterResolve(t *testing.T) {
	v := 0.0
	var jsonl bytes.Buffer
	log := NewAlertLog(&jsonl)
	engine := NewAlertEngine(log, thresholdRule("over", 2, &v, 10))

	// Cycle 1: breach, hold through PendingFor=2, fire, clear.
	v = 20
	engine.Eval(1) // pending
	engine.Eval(2) // held (still pending)
	engine.Eval(3) // firing
	v = 0
	engine.Eval(4) // resolved
	if n := len(engine.Active()); n != 0 {
		t.Fatalf("active after first resolve = %d", n)
	}

	// Cycle 2: the same key breaches again. It must re-enter pending —
	// one consecutive breach is not enough to fire with PendingFor=2.
	v = 30
	engine.Eval(5)
	active := engine.Active()
	if len(active) != 1 || active[0].State != AlertPending {
		t.Fatalf("recurrence state = %+v, want pending again", active)
	}
	engine.Eval(6) // held
	engine.Eval(7) // firing again
	active = engine.Active()
	if len(active) != 1 || active[0].State != AlertFiring {
		t.Fatalf("recurrence after hold = %+v, want firing", active)
	}
	v = 0
	engine.Eval(8) // resolved again

	if err := log.Err(); err != nil {
		t.Fatal(err)
	}
	// The event stream carries both full cycles, in order, with the
	// recurrence's values — not a deduplicated or resumed instance.
	var events []AlertEvent
	for _, line := range strings.Split(strings.TrimSpace(jsonl.String()), "\n") {
		var e AlertEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad JSONL %q: %v", line, err)
		}
		if e.Rule != "over" || e.Key != "k" {
			t.Fatalf("unexpected event %+v", e)
		}
		events = append(events, e)
	}
	want := []string{"pending", "firing", "resolved", "pending", "firing", "resolved"}
	if got := statesOf(events); len(got) != len(want) {
		t.Fatalf("JSONL states = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("JSONL states = %v, want %v", got, want)
			}
		}
	}
	// Each cycle's timestamps are its own: the second pending is at t=5.
	if events[3].Time != 5 || events[3].Value != 30 {
		t.Fatalf("second pending = %+v, want time=5 value=30", events[3])
	}
	if events[4].Time != 7 {
		t.Fatalf("second firing = %+v, want time=7", events[4])
	}
}

func TestAlertPendingCancelsSilently(t *testing.T) {
	v := 0.0
	sink := &MemoryAlerts{}
	engine := NewAlertEngine(sink, thresholdRule("over", 3, &v, 10))

	v = 15
	engine.Eval(1) // pending
	v = 5
	engine.Eval(2) // cleared before firing: silent cancel

	got := statesOf(sink.Snapshot())
	if len(got) != 1 || got[0] != "pending" {
		t.Fatalf("transitions = %v, want [pending] only (no spurious resolved)", got)
	}
	if len(engine.Active()) != 0 {
		t.Fatalf("active = %+v", engine.Active())
	}
}

func TestAlertPendingForHoldsPromotion(t *testing.T) {
	v := 20.0
	sink := &MemoryAlerts{}
	engine := NewAlertEngine(sink, thresholdRule("over", 3, &v, 10))

	for now := 1.0; now <= 3; now++ {
		engine.Eval(now)
	}
	if active := engine.Active(); len(active) != 1 || active[0].State != AlertPending {
		t.Fatalf("after 3 evals: %+v, want still pending (PendingFor=3)", active)
	}
	engine.Eval(4)
	if active := engine.Active(); len(active) != 1 || active[0].State != AlertFiring {
		t.Fatalf("after 4 evals: %+v, want firing", active)
	}
	if active := engine.Active(); active[0].Since != 1 {
		t.Fatalf("since = %g, want 1 (first breach)", active[0].Since)
	}
}

func TestAlertInstancesTrackedPerKey(t *testing.T) {
	active := map[string]float64{}
	rule := Rule{
		Name: "per_replica",
		Eval: func(now float64) []RuleResult {
			var out []RuleResult
			for k, v := range active {
				out = append(out, RuleResult{Key: k, Value: v, Threshold: 1})
			}
			return out
		},
	}
	sink := &MemoryAlerts{}
	engine := NewAlertEngine(sink, rule)

	active["server-1"] = 5
	active["server-2"] = 7
	engine.Eval(1)
	engine.Eval(2)
	if got := engine.Active(); len(got) != 2 || got[0].State != AlertFiring || got[1].State != AlertFiring {
		t.Fatalf("active = %+v, want both firing", got)
	}
	delete(active, "server-1")
	engine.Eval(3)
	got := engine.Active()
	if len(got) != 1 || got[0].Key != "server-2" {
		t.Fatalf("active = %+v, want only server-2", got)
	}
	resolved := 0
	for _, e := range sink.Snapshot() {
		if e.State == "resolved" {
			if e.Key != "server-1" {
				t.Fatalf("resolved key = %q, want server-1", e.Key)
			}
			resolved++
		}
	}
	if resolved != 1 {
		t.Fatalf("resolved events = %d, want 1", resolved)
	}
}

func TestAlertLogJSONLAndMetrics(t *testing.T) {
	var buf bytes.Buffer
	log := NewAlertLog(&buf)
	v := 20.0
	engine := NewAlertEngine(log, thresholdRule("over", 1, &v, 10))
	engine.Eval(1)
	engine.Eval(2)
	if log.Events() != 2 || log.Err() != nil {
		t.Fatalf("log events = %d err = %v", log.Events(), log.Err())
	}
	if !strings.Contains(buf.String(), `"state":"firing"`) || !strings.Contains(buf.String(), `"threshold":10`) {
		t.Fatalf("jsonl = %q", buf.String())
	}

	var metrics bytes.Buffer
	if err := engine.WriteMetrics(&metrics, ""); err != nil {
		t.Fatal(err)
	}
	out := metrics.String()
	for _, want := range []string{
		`roia_alert_state{rule="over",key="k"} 2`,
		"roia_alerts_firing 1",
		"roia_alerts_pending 0",
		"roia_alert_transitions_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestAlertResolvedOrderDeterministic pins the JSONL stream contract:
// when several instances of one rule resolve on the same evaluation, the
// resolved events are emitted sorted by instance key, not in map order —
// downstream diffing and dedup rely on byte-stable streams.
func TestAlertResolvedOrderDeterministic(t *testing.T) {
	active := true
	keys := []string{"replica-9", "replica-1", "replica-5", "replica-3", "replica-7"}
	rule := Rule{
		Name: "over",
		Eval: func(now float64) []RuleResult {
			if !active {
				return nil
			}
			out := make([]RuleResult, len(keys))
			for i, k := range keys {
				out[i] = RuleResult{Key: k, Value: 1, Threshold: 0}
			}
			return out
		},
	}
	sink := &MemoryAlerts{}
	engine := NewAlertEngine(sink, rule)
	engine.Eval(1) // all pending
	engine.Eval(2) // all firing
	active = false
	engine.Eval(3) // all resolve on one evaluation

	var resolved []string
	for _, e := range sink.Snapshot() {
		if e.State == "resolved" {
			resolved = append(resolved, e.Key)
		}
	}
	want := []string{"replica-1", "replica-3", "replica-5", "replica-7", "replica-9"}
	if len(resolved) != len(want) {
		t.Fatalf("resolved keys = %v, want %v", resolved, want)
	}
	for i := range want {
		if resolved[i] != want[i] {
			t.Fatalf("resolved keys = %v, want sorted %v", resolved, want)
		}
	}
}
