package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// thresholdRule returns a rule that is active while *value > threshold.
func thresholdRule(name string, pendingFor int, value *float64, threshold float64) Rule {
	return Rule{
		Name:       name,
		PendingFor: pendingFor,
		Eval: func(now float64) []RuleResult {
			if *value <= threshold {
				return nil
			}
			return []RuleResult{{Key: "k", Value: *value, Threshold: threshold}}
		},
	}
}

func statesOf(events []AlertEvent) []string {
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = e.State
	}
	return out
}

func TestAlertLifecyclePendingFiringResolved(t *testing.T) {
	v := 0.0
	sink := &MemoryAlerts{}
	engine := NewAlertEngine(sink, thresholdRule("over", 1, &v, 10))

	engine.Eval(1) // below threshold: nothing
	v = 15
	engine.Eval(2) // first breach: pending
	engine.Eval(3) // held: firing
	engine.Eval(4) // still firing: no new transition
	v = 5
	engine.Eval(5) // cleared: resolved

	got := statesOf(sink.Snapshot())
	want := []string{"pending", "firing", "resolved"}
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", got, want)
		}
	}
	ev := sink.Snapshot()[1]
	if ev.Value != 15 || ev.Threshold != 10 || ev.Time != 3 {
		t.Fatalf("firing event = %+v", ev)
	}
	if len(engine.Active()) != 0 {
		t.Fatalf("active after resolve = %+v", engine.Active())
	}
}

func TestAlertPendingCancelsSilently(t *testing.T) {
	v := 0.0
	sink := &MemoryAlerts{}
	engine := NewAlertEngine(sink, thresholdRule("over", 3, &v, 10))

	v = 15
	engine.Eval(1) // pending
	v = 5
	engine.Eval(2) // cleared before firing: silent cancel

	got := statesOf(sink.Snapshot())
	if len(got) != 1 || got[0] != "pending" {
		t.Fatalf("transitions = %v, want [pending] only (no spurious resolved)", got)
	}
	if len(engine.Active()) != 0 {
		t.Fatalf("active = %+v", engine.Active())
	}
}

func TestAlertPendingForHoldsPromotion(t *testing.T) {
	v := 20.0
	sink := &MemoryAlerts{}
	engine := NewAlertEngine(sink, thresholdRule("over", 3, &v, 10))

	for now := 1.0; now <= 3; now++ {
		engine.Eval(now)
	}
	if active := engine.Active(); len(active) != 1 || active[0].State != AlertPending {
		t.Fatalf("after 3 evals: %+v, want still pending (PendingFor=3)", active)
	}
	engine.Eval(4)
	if active := engine.Active(); len(active) != 1 || active[0].State != AlertFiring {
		t.Fatalf("after 4 evals: %+v, want firing", active)
	}
	if active := engine.Active(); active[0].Since != 1 {
		t.Fatalf("since = %g, want 1 (first breach)", active[0].Since)
	}
}

func TestAlertInstancesTrackedPerKey(t *testing.T) {
	active := map[string]float64{}
	rule := Rule{
		Name: "per_replica",
		Eval: func(now float64) []RuleResult {
			var out []RuleResult
			for k, v := range active {
				out = append(out, RuleResult{Key: k, Value: v, Threshold: 1})
			}
			return out
		},
	}
	sink := &MemoryAlerts{}
	engine := NewAlertEngine(sink, rule)

	active["server-1"] = 5
	active["server-2"] = 7
	engine.Eval(1)
	engine.Eval(2)
	if got := engine.Active(); len(got) != 2 || got[0].State != AlertFiring || got[1].State != AlertFiring {
		t.Fatalf("active = %+v, want both firing", got)
	}
	delete(active, "server-1")
	engine.Eval(3)
	got := engine.Active()
	if len(got) != 1 || got[0].Key != "server-2" {
		t.Fatalf("active = %+v, want only server-2", got)
	}
	resolved := 0
	for _, e := range sink.Snapshot() {
		if e.State == "resolved" {
			if e.Key != "server-1" {
				t.Fatalf("resolved key = %q, want server-1", e.Key)
			}
			resolved++
		}
	}
	if resolved != 1 {
		t.Fatalf("resolved events = %d, want 1", resolved)
	}
}

func TestAlertLogJSONLAndMetrics(t *testing.T) {
	var buf bytes.Buffer
	log := NewAlertLog(&buf)
	v := 20.0
	engine := NewAlertEngine(log, thresholdRule("over", 1, &v, 10))
	engine.Eval(1)
	engine.Eval(2)
	if log.Events() != 2 || log.Err() != nil {
		t.Fatalf("log events = %d err = %v", log.Events(), log.Err())
	}
	if !strings.Contains(buf.String(), `"state":"firing"`) || !strings.Contains(buf.String(), `"threshold":10`) {
		t.Fatalf("jsonl = %q", buf.String())
	}

	var metrics bytes.Buffer
	if err := engine.WriteMetrics(&metrics, ""); err != nil {
		t.Fatal(err)
	}
	out := metrics.String()
	for _, want := range []string{
		`roia_alert_state{rule="over",key="k"} 2`,
		"roia_alerts_firing 1",
		"roia_alerts_pending 0",
		"roia_alert_transitions_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}
