package proto

import (
	"bytes"
	"testing"

	"roia/internal/rtf/entity"
	"roia/internal/rtf/wire"
)

// FuzzRegistryDecode throws arbitrary bytes at the protocol decoder: it
// must never panic or allocate absurdly, only return messages or errors.
// The seed corpus covers every message kind, so `go test` alone exercises
// the interesting shapes; `go test -fuzz=FuzzRegistryDecode` explores
// further.
func FuzzRegistryDecode(f *testing.F) {
	seeds := [][]byte{
		{},
		{0x00},
		{0xFF, 0xFF},
		Registry.EncodeToBytes(&Join{UserName: "u", Zone: 1, Pos: entity.Vec2{X: 1, Y: 2}}),
		Registry.EncodeToBytes(&JoinAck{Entity: 9, Tick: 3}),
		Registry.EncodeToBytes(&Leave{}),
		Registry.EncodeToBytes(&Input{Seq: 1, Payload: []byte{1, 2, 3}}),
		Registry.EncodeToBytes(&StateUpdate{
			Tick: 1, Self: entity.Entity{ID: 1, Owner: "s"},
			Visible: []entity.Entity{{ID: 2}}, Events: []byte("e"),
		}),
		Registry.EncodeToBytes(&ShadowUpdate{Tick: 2, Entities: []entity.Entity{{ID: 3}}, Removed: []entity.ID{4}}),
		Registry.EncodeToBytes(&Forwarded{Actor: 1, Target: 2, Payload: []byte{7}}),
		Registry.EncodeToBytes(&MigrateInit{User: "u", Avatar: entity.Entity{ID: 5}, AppState: []byte{1}}),
		Registry.EncodeToBytes(&MigrateAck{User: "u", Avatar: 5}),
		Registry.EncodeToBytes(&MigrateNotice{NewServer: "s2"}),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Registry.Decode(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode without panicking, and the
		// re-encoded form must decode to the same kind (no aliasing of
		// the input buffer).
		out := Registry.EncodeToBytes(msg)
		again, err := Registry.Decode(out)
		if err != nil {
			t.Fatalf("re-decode of re-encoded %T failed: %v", msg, err)
		}
		if again.WireKind() != msg.WireKind() {
			t.Fatalf("kind changed across round trip: %d → %d", msg.WireKind(), again.WireKind())
		}
	})
}

// FuzzProtoUnmarshal targets the truncation paths of the decoder: the seed
// corpus is every message kind cut off mid-field, which is exactly what a
// short TCP read or a dropped UDP fragment hands the unmarshaller. Any
// successful decode must re-encode deterministically and survive a full
// round trip; a decode of a truncated re-encoding must fail or succeed
// cleanly, never panic.
func FuzzProtoUnmarshal(f *testing.F) {
	full := [][]byte{
		Registry.EncodeToBytes(&Join{UserName: "user-name", Zone: 7, Pos: entity.Vec2{X: -3.5, Y: 44}}),
		Registry.EncodeToBytes(&Input{Seq: 900, Payload: []byte{9, 8, 7, 6, 5}}),
		Registry.EncodeToBytes(&StateUpdate{
			Tick: 42, Self: entity.Entity{ID: 11, Owner: "srv"},
			Visible: []entity.Entity{{ID: 12}, {ID: 13}}, Events: []byte("evts"),
		}),
		Registry.EncodeToBytes(&ShadowUpdate{Tick: 5, Entities: []entity.Entity{{ID: 3}}, Removed: []entity.ID{4, 5}}),
		Registry.EncodeToBytes(&Forwarded{Actor: 1, Target: 2, Payload: []byte("fw")}),
		Registry.EncodeToBytes(&MigrateInit{User: "mover", Avatar: entity.Entity{ID: 6}, AppState: []byte{0xAA, 0xBB}}),
	}
	for _, enc := range full {
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
		if len(enc) > 1 {
			f.Add(enc[:len(enc)-1])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Registry.Decode(data)
		if err != nil {
			return
		}
		once := Registry.EncodeToBytes(msg)
		twice := Registry.EncodeToBytes(msg)
		if !bytes.Equal(once, twice) {
			t.Fatalf("non-deterministic encoding of %T", msg)
		}
		again, err := Registry.Decode(once)
		if err != nil {
			t.Fatalf("re-decode of re-encoded %T failed: %v", msg, err)
		}
		if !bytes.Equal(Registry.EncodeToBytes(again), once) {
			t.Fatalf("%T not stable across encode/decode/encode", msg)
		}
		// Chopping the tail off a valid encoding must degrade to an error
		// (or a shorter valid message), never a panic or corrupted state.
		if len(once) > 0 {
			_, _ = Registry.Decode(once[:len(once)-1])
		}
	})
}

// FuzzReaderPrimitives stresses the sticky-error reader with arbitrary
// buffers and read sequences.
func FuzzReaderPrimitives(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(3))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, ops uint8) {
		r := wire.NewReader(data)
		for i := uint8(0); i < ops%16; i++ {
			switch i % 7 {
			case 0:
				r.Uint8()
			case 1:
				r.Uint32()
			case 2:
				r.Varint()
			case 3:
				_ = r.String()
			case 4:
				r.Blob()
			case 5:
				r.Float64()
			case 6:
				r.Uvarint()
			}
		}
		if r.Remaining() < 0 {
			t.Fatal("negative remaining")
		}
	})
}
