package proto

import (
	"testing"

	"roia/internal/rtf/entity"
	"roia/internal/rtf/wire"
)

// FuzzRegistryDecode throws arbitrary bytes at the protocol decoder: it
// must never panic or allocate absurdly, only return messages or errors.
// The seed corpus covers every message kind, so `go test` alone exercises
// the interesting shapes; `go test -fuzz=FuzzRegistryDecode` explores
// further.
func FuzzRegistryDecode(f *testing.F) {
	seeds := [][]byte{
		{},
		{0x00},
		{0xFF, 0xFF},
		Registry.EncodeToBytes(&Join{UserName: "u", Zone: 1, Pos: entity.Vec2{X: 1, Y: 2}}),
		Registry.EncodeToBytes(&JoinAck{Entity: 9, Tick: 3}),
		Registry.EncodeToBytes(&Leave{}),
		Registry.EncodeToBytes(&Input{Seq: 1, Payload: []byte{1, 2, 3}}),
		Registry.EncodeToBytes(&StateUpdate{
			Tick: 1, Self: entity.Entity{ID: 1, Owner: "s"},
			Visible: []entity.Entity{{ID: 2}}, Events: []byte("e"),
		}),
		Registry.EncodeToBytes(&ShadowUpdate{Tick: 2, Entities: []entity.Entity{{ID: 3}}, Removed: []entity.ID{4}}),
		Registry.EncodeToBytes(&Forwarded{Actor: 1, Target: 2, Payload: []byte{7}}),
		Registry.EncodeToBytes(&MigrateInit{User: "u", Avatar: entity.Entity{ID: 5}, AppState: []byte{1}}),
		Registry.EncodeToBytes(&MigrateAck{User: "u", Avatar: 5}),
		Registry.EncodeToBytes(&MigrateNotice{NewServer: "s2"}),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Registry.Decode(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode without panicking, and the
		// re-encoded form must decode to the same kind (no aliasing of
		// the input buffer).
		out := Registry.EncodeToBytes(msg)
		again, err := Registry.Decode(out)
		if err != nil {
			t.Fatalf("re-decode of re-encoded %T failed: %v", msg, err)
		}
		if again.WireKind() != msg.WireKind() {
			t.Fatalf("kind changed across round trip: %d → %d", msg.WireKind(), again.WireKind())
		}
	})
}

// FuzzReaderPrimitives stresses the sticky-error reader with arbitrary
// buffers and read sequences.
func FuzzReaderPrimitives(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(3))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, ops uint8) {
		r := wire.NewReader(data)
		for i := uint8(0); i < ops%16; i++ {
			switch i % 7 {
			case 0:
				r.Uint8()
			case 1:
				r.Uint32()
			case 2:
				r.Varint()
			case 3:
				_ = r.String()
			case 4:
				r.Blob()
			case 5:
				r.Float64()
			case 6:
				r.Uvarint()
			}
		}
		if r.Remaining() < 0 {
			t.Fatal("negative remaining")
		}
	})
}
