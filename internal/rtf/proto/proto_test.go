package proto

import (
	"bytes"
	"testing"
	"testing/quick"

	"roia/internal/rtf/entity"
	"roia/internal/rtf/wire"
)

func roundTrip(t *testing.T, msg wire.Message) wire.Message {
	t.Helper()
	payload := Registry.EncodeToBytes(msg)
	got, err := Registry.Decode(payload)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	if got.WireKind() != msg.WireKind() {
		t.Fatalf("kind changed: %d -> %d", msg.WireKind(), got.WireKind())
	}
	return got
}

func TestJoinRoundTrip(t *testing.T) {
	m := roundTrip(t, &Join{UserName: "bot-1", Zone: 3, Pos: entity.Vec2{X: 1, Y: 2}}).(*Join)
	if m.UserName != "bot-1" || m.Zone != 3 || m.Pos != (entity.Vec2{X: 1, Y: 2}) {
		t.Fatalf("join = %+v", m)
	}
}

func TestJoinAckLeaveRoundTrip(t *testing.T) {
	a := roundTrip(t, &JoinAck{Entity: 77, Tick: 12}).(*JoinAck)
	if a.Entity != 77 || a.Tick != 12 {
		t.Fatalf("ack = %+v", a)
	}
	roundTrip(t, &Leave{})
}

func TestInputRoundTrip(t *testing.T) {
	m := roundTrip(t, &Input{Seq: 5, Payload: []byte{9, 8, 7}}).(*Input)
	if m.Seq != 5 || !bytes.Equal(m.Payload, []byte{9, 8, 7}) {
		t.Fatalf("input = %+v", m)
	}
}

func TestStateUpdateRoundTrip(t *testing.T) {
	in := &StateUpdate{
		Tick:   100,
		AckSeq: 41,
		Self:   entity.Entity{ID: 1, Owner: "s1", Health: 95, Pos: entity.Vec2{X: 4, Y: 5}},
		Visible: []entity.Entity{
			{ID: 2, Owner: "s1", Seq: 3},
			{ID: 3, Owner: "s2", Kind: entity.NPC},
		},
		Events: []byte("hit:2"),
	}
	m := roundTrip(t, in).(*StateUpdate)
	if m.Tick != 100 || m.AckSeq != 41 || m.Self != in.Self || len(m.Visible) != 2 {
		t.Fatalf("update = %+v", m)
	}
	if m.Visible[0] != in.Visible[0] || m.Visible[1] != in.Visible[1] {
		t.Fatalf("visible = %+v", m.Visible)
	}
	if string(m.Events) != "hit:2" {
		t.Fatalf("events = %q", m.Events)
	}
}

func TestStateUpdateEmptyVisible(t *testing.T) {
	m := roundTrip(t, &StateUpdate{Tick: 1, Self: entity.Entity{ID: 9}}).(*StateUpdate)
	if len(m.Visible) != 0 || len(m.Events) != 0 {
		t.Fatalf("empty update = %+v", m)
	}
}

func TestShadowUpdateRoundTrip(t *testing.T) {
	in := &ShadowUpdate{Tick: 7, Entities: []entity.Entity{{ID: 4, Seq: 9, Owner: "s2"}}}
	m := roundTrip(t, in).(*ShadowUpdate)
	if m.Tick != 7 || len(m.Entities) != 1 || m.Entities[0] != in.Entities[0] {
		t.Fatalf("shadow = %+v", m)
	}
}

func TestForwardedRoundTrip(t *testing.T) {
	m := roundTrip(t, &Forwarded{Actor: 10, Target: 20, Payload: []byte{1}}).(*Forwarded)
	if m.Actor != 10 || m.Target != 20 || len(m.Payload) != 1 {
		t.Fatalf("forwarded = %+v", m)
	}
}

func TestMigrationMessagesRoundTrip(t *testing.T) {
	mi := roundTrip(t, &MigrateInit{
		MigID:    0x0001000000000007,
		User:     "client-9",
		Avatar:   entity.Entity{ID: 33, Owner: "s1", Health: 50},
		AppState: []byte("ammo=7"),
	}).(*MigrateInit)
	if mi.User != "client-9" || mi.Avatar.ID != 33 || string(mi.AppState) != "ammo=7" {
		t.Fatalf("migrate init = %+v", mi)
	}
	if mi.MigID != 0x0001000000000007 {
		t.Fatalf("migration ID lost on the wire: %#x", mi.MigID)
	}
	ack := roundTrip(t, &MigrateAck{MigID: 0x0001000000000007, User: "client-9", Avatar: 33}).(*MigrateAck)
	if ack.User != "client-9" || ack.Avatar != 33 || ack.MigID != 0x0001000000000007 {
		t.Fatalf("migrate ack = %+v", ack)
	}
	n := roundTrip(t, &MigrateNotice{NewServer: "server-2"}).(*MigrateNotice)
	if n.NewServer != "server-2" {
		t.Fatalf("notice = %+v", n)
	}
}

func TestStateUpdateAckSeqRoundTripProperty(t *testing.T) {
	prop := func(tick, ackSeq uint64) bool {
		got, err := Registry.Decode(Registry.EncodeToBytes(&StateUpdate{Tick: tick, AckSeq: ackSeq}))
		if err != nil {
			return false
		}
		su := got.(*StateUpdate)
		return su.Tick == tick && su.AckSeq == ackSeq
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStateUpdateTruncatedEveryPrefix decodes every strict prefix of an
// encoded StateUpdate; all must fail cleanly (the v3 AckSeq field sits in
// the fixed prefix, so a v2 frame is 8 bytes short and must be rejected,
// not misparsed).
func TestStateUpdateTruncatedEveryPrefix(t *testing.T) {
	payload := Registry.EncodeToBytes(&StateUpdate{
		Tick:    9,
		AckSeq:  1234,
		Self:    entity.Entity{ID: 1},
		Visible: []entity.Entity{{ID: 2}},
		Gone:    []entity.ID{3},
		Events:  []byte("e"),
	})
	for cut := 0; cut < len(payload); cut++ {
		if _, err := Registry.Decode(payload[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(payload))
		}
	}
	if _, err := Registry.Decode(payload); err != nil {
		t.Fatalf("full payload rejected: %v", err)
	}
}

func TestDecodeRejectsCorruptStateUpdate(t *testing.T) {
	payload := Registry.EncodeToBytes(&StateUpdate{
		Tick:    1,
		Self:    entity.Entity{ID: 1},
		Visible: []entity.Entity{{ID: 2}, {ID: 3}},
	})
	// Truncate mid-entity.
	if _, err := Registry.Decode(payload[:len(payload)-10]); err == nil {
		t.Fatal("truncated state update decoded")
	}
}

func TestDecodeRejectsHostileEntityCount(t *testing.T) {
	// Hand-craft a ShadowUpdate declaring 2^40 entities.
	w := wire.NewWriter(0)
	w.Uint16(uint16(KindShadowUpdate))
	w.Uint64(1)        // tick
	w.Uvarint(1 << 40) // entity count
	if _, err := Registry.Decode(w.Bytes()); err == nil {
		t.Fatal("hostile entity count decoded (would allocate 2^40 entities)")
	}
}

func TestInputRoundTripProperty(t *testing.T) {
	prop := func(seq uint64, payload []byte) bool {
		got, err := Registry.Decode(Registry.EncodeToBytes(&Input{Seq: seq, Payload: payload}))
		if err != nil {
			return false
		}
		in := got.(*Input)
		return in.Seq == seq && bytes.Equal(in.Payload, payload)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
