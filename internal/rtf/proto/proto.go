// Package proto defines the wire messages of the RTF runtime protocol:
// client↔server traffic (join, inputs, state updates), server↔server
// replication traffic (shadow updates, forwarded interactions) and the
// user-migration handshake. Application-specific payloads (the actual game
// commands and events) travel as opaque byte blobs inside these envelopes —
// RTF is middleware and stays agnostic of the application logic.
package proto

import (
	"roia/internal/rtf/entity"
	"roia/internal/rtf/wire"
)

// Version is the protocol revision. Changes that alter any message's wire
// layout must bump it; both sides of a connection must agree.
//
//	v1  seed protocol
//	v2  MigrateInit/MigrateAck gained MigID (fleet migration tracing)
//	v3  StateUpdate gained AckSeq (client-perceived response time)
//	v4  JoinNack added (draining servers reject joins explicitly)
//	v5  StateDelta/StateKeyframe added (masked per-entity field deltas
//	    with periodic keyframes; see DESIGN §17)
//
// The format has no in-band negotiation: fields are appended at the end of
// a message's fixed prefix or, as with AckSeq, inserted with a version
// bump, and mixed-version fleets are not supported.
const Version = 5

// Message kinds of the RTF protocol.
const (
	KindJoin wire.Kind = iota + 1
	KindJoinAck
	KindLeave
	KindInput
	KindStateUpdate
	KindShadowUpdate
	KindForwarded
	KindMigrateInit
	KindMigrateAck
	KindMigrateNotice
	KindJoinNack
	KindStateDelta
	KindStateKeyframe
)

// Registry decodes every RTF protocol message.
var Registry = wire.NewRegistry(
	func() wire.Message { return &Join{} },
	func() wire.Message { return &JoinAck{} },
	func() wire.Message { return &Leave{} },
	func() wire.Message { return &Input{} },
	func() wire.Message { return &StateUpdate{} },
	func() wire.Message { return &ShadowUpdate{} },
	func() wire.Message { return &Forwarded{} },
	func() wire.Message { return &MigrateInit{} },
	func() wire.Message { return &MigrateAck{} },
	func() wire.Message { return &MigrateNotice{} },
	func() wire.Message { return &JoinNack{} },
	func() wire.Message { return &StateDelta{} },
	func() wire.Message { return &StateKeyframe{} },
)

// Join is sent by a client to enter a zone.
type Join struct {
	// UserName is a display name; the network node ID identifies the user.
	UserName string
	// Zone is the zone to join.
	Zone uint32
	// Pos is the requested spawn position.
	Pos entity.Vec2
}

// WireKind implements wire.Message.
func (*Join) WireKind() wire.Kind { return KindJoin }

// MarshalWire implements wire.Message.
func (m *Join) MarshalWire(w *wire.Writer) {
	w.String(m.UserName)
	w.Uint32(m.Zone)
	w.Float64(m.Pos.X)
	w.Float64(m.Pos.Y)
}

// UnmarshalWire implements wire.Message.
func (m *Join) UnmarshalWire(r *wire.Reader) error {
	m.UserName = r.String()
	m.Zone = r.Uint32()
	m.Pos.X = r.Float64()
	m.Pos.Y = r.Float64()
	return r.Err()
}

// JoinAck confirms a join and tells the client its avatar entity ID.
type JoinAck struct {
	Entity entity.ID
	// Tick is the server tick at which the avatar became live.
	Tick uint64
}

// WireKind implements wire.Message.
func (*JoinAck) WireKind() wire.Kind { return KindJoinAck }

// MarshalWire implements wire.Message.
func (m *JoinAck) MarshalWire(w *wire.Writer) {
	w.Uint64(uint64(m.Entity))
	w.Uint64(m.Tick)
}

// UnmarshalWire implements wire.Message.
func (m *JoinAck) UnmarshalWire(r *wire.Reader) error {
	m.Entity = entity.ID(r.Uint64())
	m.Tick = r.Uint64()
	return r.Err()
}

// Leave is sent by a client disconnecting cleanly.
type Leave struct{}

// WireKind implements wire.Message.
func (*Leave) WireKind() wire.Kind { return KindLeave }

// MarshalWire implements wire.Message.
func (*Leave) MarshalWire(*wire.Writer) {}

// UnmarshalWire implements wire.Message.
func (*Leave) UnmarshalWire(r *wire.Reader) error { return r.Err() }

// Input carries one application-specific user command.
type Input struct {
	// Seq is a client-side sequence number (diagnostics, dedup).
	Seq uint64
	// Payload is the application-encoded command.
	Payload []byte
}

// WireKind implements wire.Message.
func (*Input) WireKind() wire.Kind { return KindInput }

// MarshalWire implements wire.Message.
func (m *Input) MarshalWire(w *wire.Writer) {
	w.Uint64(m.Seq)
	w.Blob(m.Payload)
}

// UnmarshalWire implements wire.Message.
func (m *Input) UnmarshalWire(r *wire.Reader) error {
	m.Seq = r.Uint64()
	m.Payload = r.Blob()
	return r.Err()
}

// StateUpdate is the per-tick, area-of-interest-filtered state delivered to
// one client (step 3 of the real-time loop).
type StateUpdate struct {
	// Tick is the server tick this update reflects.
	Tick uint64
	// AckSeq is the sequence number of the last input of this client the
	// server applied before building the update (0 while none). The client
	// matches it against its send timestamps to measure the user-perceived
	// input→update response time the model's QoS threshold U promises.
	AckSeq uint64
	// Self is the client's own avatar state.
	Self entity.Entity
	// Visible is the filtered set of other entities in the client's area
	// of interest. Under delta updates (server.Config.DeltaUpdates) only
	// entities that changed since the last update are listed.
	Visible []entity.Entity
	// Gone lists entities that left the client's area of interest since
	// the last update (only used under delta updates); the client drops
	// them from its world cache.
	Gone []entity.ID
	// Events is an opaque application payload (e.g. hits suffered).
	Events []byte
}

// WireKind implements wire.Message.
func (*StateUpdate) WireKind() wire.Kind { return KindStateUpdate }

// MarshalWire implements wire.Message.
func (m *StateUpdate) MarshalWire(w *wire.Writer) {
	w.Uint64(m.Tick)
	w.Uint64(m.AckSeq)
	m.Self.MarshalWire(w)
	w.Uvarint(uint64(len(m.Visible)))
	for i := range m.Visible {
		m.Visible[i].MarshalWire(w)
	}
	w.Uvarint(uint64(len(m.Gone)))
	for _, id := range m.Gone {
		w.Uint64(uint64(id))
	}
	w.Blob(m.Events)
}

// UnmarshalWire implements wire.Message.
func (m *StateUpdate) UnmarshalWire(r *wire.Reader) error {
	m.Tick = r.Uint64()
	m.AckSeq = r.Uint64()
	if err := m.Self.UnmarshalWire(r); err != nil {
		return err
	}
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if n > uint64(r.Remaining()) { // each entity needs >1 byte
		return wire.ErrStringTooLong
	}
	m.Visible = make([]entity.Entity, n)
	for i := range m.Visible {
		if err := m.Visible[i].UnmarshalWire(r); err != nil {
			return err
		}
	}
	g := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if g > uint64(r.Remaining()) {
		return wire.ErrStringTooLong
	}
	m.Gone = make([]entity.ID, g)
	for i := range m.Gone {
		m.Gone[i] = entity.ID(r.Uint64())
	}
	m.Events = r.Blob()
	return r.Err()
}

// ShadowUpdate replicates the states of a server's active entities to the
// other replicas of the zone ("sending updates of their own users to other
// servers that are replicating the same zone").
type ShadowUpdate struct {
	Tick     uint64
	Entities []entity.Entity
	// Removed lists entities that left the zone (disconnected users,
	// despawned NPCs); replicas drop their shadow copies.
	Removed []entity.ID
}

// WireKind implements wire.Message.
func (*ShadowUpdate) WireKind() wire.Kind { return KindShadowUpdate }

// MarshalWire implements wire.Message.
func (m *ShadowUpdate) MarshalWire(w *wire.Writer) {
	w.Uint64(m.Tick)
	w.Uvarint(uint64(len(m.Entities)))
	for i := range m.Entities {
		m.Entities[i].MarshalWire(w)
	}
	w.Uvarint(uint64(len(m.Removed)))
	for _, id := range m.Removed {
		w.Uint64(uint64(id))
	}
}

// UnmarshalWire implements wire.Message.
func (m *ShadowUpdate) UnmarshalWire(r *wire.Reader) error {
	m.Tick = r.Uint64()
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if n > uint64(r.Remaining()) {
		return wire.ErrStringTooLong
	}
	m.Entities = make([]entity.Entity, n)
	for i := range m.Entities {
		if err := m.Entities[i].UnmarshalWire(r); err != nil {
			return err
		}
	}
	k := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if k > uint64(r.Remaining()) {
		return wire.ErrStringTooLong
	}
	m.Removed = make([]entity.ID, k)
	for i := range m.Removed {
		m.Removed[i] = entity.ID(r.Uint64())
	}
	return r.Err()
}

// Forwarded carries an interaction whose target is active on another
// replica ("forwarding the interactions between users that are connected
// to different servers to the responsible server").
type Forwarded struct {
	// Actor is the entity that caused the interaction.
	Actor entity.ID
	// Target is the entity the interaction applies to (active on the
	// receiving server).
	Target entity.ID
	// Payload is the application-encoded interaction.
	Payload []byte
}

// WireKind implements wire.Message.
func (*Forwarded) WireKind() wire.Kind { return KindForwarded }

// MarshalWire implements wire.Message.
func (m *Forwarded) MarshalWire(w *wire.Writer) {
	w.Uint64(uint64(m.Actor))
	w.Uint64(uint64(m.Target))
	w.Blob(m.Payload)
}

// UnmarshalWire implements wire.Message.
func (m *Forwarded) UnmarshalWire(r *wire.Reader) error {
	m.Actor = entity.ID(r.Uint64())
	m.Target = entity.ID(r.Uint64())
	m.Payload = r.Blob()
	return r.Err()
}

// MigrateInit transfers responsibility for a user from the source server to
// the target server: the avatar state plus an opaque application state blob
// (inventory, cooldowns, ...).
type MigrateInit struct {
	// MigID is the migration's unique identifier, assigned by the source
	// server and echoed in the MigrateAck, so begin/end spans recorded on
	// different replicas stitch into one cross-replica trace.
	MigID uint64
	// User is the network ID of the migrating client.
	User string
	// Avatar is the user's entity state at handoff.
	Avatar entity.Entity
	// AppState is the application-specific user state.
	AppState []byte
}

// WireKind implements wire.Message.
func (*MigrateInit) WireKind() wire.Kind { return KindMigrateInit }

// MarshalWire implements wire.Message.
func (m *MigrateInit) MarshalWire(w *wire.Writer) {
	w.Uint64(m.MigID)
	w.String(m.User)
	m.Avatar.MarshalWire(w)
	w.Blob(m.AppState)
}

// UnmarshalWire implements wire.Message.
func (m *MigrateInit) UnmarshalWire(r *wire.Reader) error {
	m.MigID = r.Uint64()
	m.User = r.String()
	if err := m.Avatar.UnmarshalWire(r); err != nil {
		return err
	}
	m.AppState = r.Blob()
	return r.Err()
}

// MigrateAck confirms a completed migration back to the source server.
type MigrateAck struct {
	// MigID echoes the MigrateInit's migration identifier.
	MigID  uint64
	User   string
	Avatar entity.ID
}

// WireKind implements wire.Message.
func (*MigrateAck) WireKind() wire.Kind { return KindMigrateAck }

// MarshalWire implements wire.Message.
func (m *MigrateAck) MarshalWire(w *wire.Writer) {
	w.Uint64(m.MigID)
	w.String(m.User)
	w.Uint64(uint64(m.Avatar))
}

// UnmarshalWire implements wire.Message.
func (m *MigrateAck) UnmarshalWire(r *wire.Reader) error {
	m.MigID = r.Uint64()
	m.User = r.String()
	m.Avatar = entity.ID(r.Uint64())
	return r.Err()
}

// MigrateNotice tells a client to switch its connection to a new server.
type MigrateNotice struct {
	// NewServer is the node ID of the server now responsible for the user.
	NewServer string
}

// WireKind implements wire.Message.
func (*MigrateNotice) WireKind() wire.Kind { return KindMigrateNotice }

// MarshalWire implements wire.Message.
func (m *MigrateNotice) MarshalWire(w *wire.Writer) { w.String(m.NewServer) }

// UnmarshalWire implements wire.Message.
func (m *MigrateNotice) UnmarshalWire(r *wire.Reader) error {
	m.NewServer = r.String()
	return r.Err()
}

// JoinNack rejects a Join outright: the server cannot admit the user and
// knows no peer to redirect to (a draining last replica). Without it a
// draining server would silently drop the Join and the client would hang;
// with it the client fails fast and can retry against a fresh assignment.
type JoinNack struct {
	// Reason is a short human-readable explanation ("draining").
	Reason string
}

// WireKind implements wire.Message.
func (*JoinNack) WireKind() wire.Kind { return KindJoinNack }

// MarshalWire implements wire.Message.
func (m *JoinNack) MarshalWire(w *wire.Writer) { w.String(m.Reason) }

// UnmarshalWire implements wire.Message.
func (m *JoinNack) UnmarshalWire(r *wire.Reader) error {
	m.Reason = r.String()
	return r.Err()
}
