package proto

import (
	"roia/internal/rtf/entity"
	"roia/internal/rtf/wire"
)

// EntityDelta is one entity's masked field changes inside a StateDelta.
// Only the field groups named by Mask are meaningful in State; the client
// applies them onto its previous copy of the entity. On the wire the ID
// travels gap-encoded at the StateDelta framing level, not here.
type EntityDelta struct {
	ID    entity.ID
	Mask  entity.FieldMask
	State entity.Entity
}

// StateDelta is the per-tick incremental state update of protocol v5: the
// difference between the client's visible world at BaseTick (the previous
// update it applied) and at Tick. A client that missed the base — joins,
// migrations, dropped frames — cannot apply it and waits for the next
// StateKeyframe instead (resync).
//
// Updates, Enters and Gone are strictly ascending by entity ID; ID columns
// are gap-encoded (first absolute, then successive differences) so dense ID
// ranges cost one byte per entity. Encoding is fully deterministic, which
// preserves the byte-identical-across-parallelism pipeline contract.
type StateDelta struct {
	// Tick is the server tick this delta advances the client to.
	Tick uint64
	// BaseTick is the tick of the update this delta applies on top of.
	BaseTick uint64
	// AckSeq is the last applied input sequence number (see StateUpdate).
	AckSeq uint64
	// SelfMask names the avatar field groups that changed; Self carries
	// only those (the avatar's ID never travels — the client knows it).
	SelfMask entity.FieldMask
	Self     entity.Entity
	// Updates are masked changes to entities already visible at BaseTick.
	Updates []EntityDelta
	// Enters are full records of entities that entered the visible set.
	Enters []entity.Entity
	// Gone lists entities that left the visible set.
	Gone []entity.ID
	// Events is an opaque application payload (e.g. hits suffered).
	Events []byte
}

// WireKind implements wire.Message.
func (*StateDelta) WireKind() wire.Kind { return KindStateDelta }

// MarshalWire implements wire.Message.
func (m *StateDelta) MarshalWire(w *wire.Writer) {
	w.Uvarint(m.Tick)
	w.Uvarint(m.Tick - m.BaseTick)
	w.Uvarint(m.AckSeq)
	w.Uint8(uint8(m.SelfMask))
	m.Self.MarshalDelta(w, m.SelfMask)
	w.Uvarint(uint64(len(m.Updates)))
	prev := uint64(0)
	for i := range m.Updates {
		u := &m.Updates[i]
		w.Uvarint(uint64(u.ID) - prev)
		prev = uint64(u.ID)
		w.Uint8(uint8(u.Mask))
		u.State.MarshalDelta(w, u.Mask)
	}
	w.Uvarint(uint64(len(m.Enters)))
	for i := range m.Enters {
		m.Enters[i].MarshalWire(w)
	}
	w.Uvarint(uint64(len(m.Gone)))
	prev = 0
	for _, id := range m.Gone {
		w.Uvarint(uint64(id) - prev)
		prev = uint64(id)
	}
	w.Blob(m.Events)
}

// UnmarshalWire implements wire.Message.
func (m *StateDelta) UnmarshalWire(r *wire.Reader) error {
	m.Tick = r.Uvarint()
	m.BaseTick = m.Tick - r.Uvarint()
	m.AckSeq = r.Uvarint()
	m.SelfMask = entity.FieldMask(r.Uint8())
	if err := m.Self.UnmarshalDelta(r, m.SelfMask); err != nil {
		return err
	}
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if n > uint64(r.Remaining()) { // each update needs >1 byte
		return wire.ErrStringTooLong
	}
	m.Updates = make([]EntityDelta, n)
	prev := uint64(0)
	for i := range m.Updates {
		u := &m.Updates[i]
		prev += r.Uvarint()
		u.ID = entity.ID(prev)
		u.Mask = entity.FieldMask(r.Uint8())
		if err := u.State.UnmarshalDelta(r, u.Mask); err != nil {
			return err
		}
	}
	e := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if e > uint64(r.Remaining()) {
		return wire.ErrStringTooLong
	}
	m.Enters = make([]entity.Entity, e)
	for i := range m.Enters {
		if err := m.Enters[i].UnmarshalWire(r); err != nil {
			return err
		}
	}
	g := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if g > uint64(r.Remaining()) {
		return wire.ErrStringTooLong
	}
	m.Gone = make([]entity.ID, g)
	prev = 0
	for i := range m.Gone {
		prev += r.Uvarint()
		m.Gone[i] = entity.ID(prev)
	}
	m.Events = r.Blob()
	return r.Err()
}

// StateKeyframe is a full self-contained state update of protocol v5: the
// client replaces its visible world wholesale. Keyframes are emitted on a
// configurable cadence and forced whenever a client has no valid delta base
// (join, migration, resync after loss), bounding how long a desynchronized
// client stays stale.
type StateKeyframe struct {
	// Tick is the server tick this keyframe reflects.
	Tick uint64
	// AckSeq is the last applied input sequence number (see StateUpdate).
	AckSeq uint64
	// Self is the client's own avatar state.
	Self entity.Entity
	// Visible is the complete area-of-interest-filtered entity set, in
	// ascending ID order.
	Visible []entity.Entity
	// Events is an opaque application payload (e.g. hits suffered).
	Events []byte
}

// WireKind implements wire.Message.
func (*StateKeyframe) WireKind() wire.Kind { return KindStateKeyframe }

// MarshalWire implements wire.Message.
func (m *StateKeyframe) MarshalWire(w *wire.Writer) {
	w.Uvarint(m.Tick)
	w.Uvarint(m.AckSeq)
	m.Self.MarshalWire(w)
	w.Uvarint(uint64(len(m.Visible)))
	for i := range m.Visible {
		m.Visible[i].MarshalWire(w)
	}
	w.Blob(m.Events)
}

// UnmarshalWire implements wire.Message.
func (m *StateKeyframe) UnmarshalWire(r *wire.Reader) error {
	m.Tick = r.Uvarint()
	m.AckSeq = r.Uvarint()
	if err := m.Self.UnmarshalWire(r); err != nil {
		return err
	}
	n := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if n > uint64(r.Remaining()) { // each entity needs >1 byte
		return wire.ErrStringTooLong
	}
	m.Visible = make([]entity.Entity, n)
	for i := range m.Visible {
		if err := m.Visible[i].UnmarshalWire(r); err != nil {
			return err
		}
	}
	m.Events = r.Blob()
	return r.Err()
}
