// Package zone implements RTF's application-state distribution methods:
// zoning (disjoint areas processed by distinct servers), instancing
// (independent copies of a zone) and replication (multiple servers
// cooperating on one zone, each responsible for a disjoint subset of
// entities) — the right-hand side of Fig. 1 in the paper.
package zone

import (
	"fmt"
	"sort"
	"sync"

	"roia/internal/rtf/entity"
)

// ID identifies a zone within a world.
type ID uint32

// Rect is an axis-aligned area of the virtual environment.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether p lies in the rectangle (inclusive lower edge,
// exclusive upper edge, so adjacent zones tile without overlap).
func (r Rect) Contains(p entity.Vec2) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// Center returns the rectangle's midpoint.
func (r Rect) Center() entity.Vec2 {
	return entity.Vec2{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Zone is one disjoint area of the virtual environment.
type Zone struct {
	ID     ID
	Name   string
	Bounds Rect
}

// World is the static zone layout of one application.
type World struct {
	zones map[ID]*Zone
	order []ID
}

// NewWorld returns an empty world.
func NewWorld() *World {
	return &World{zones: make(map[ID]*Zone)}
}

// GridWorld builds a world of cols×rows equal zones tiling the given area,
// the usual layout for open-world ROIA.
func GridWorld(cols, rows int, width, height float64) *World {
	w := NewWorld()
	zw, zh := width/float64(cols), height/float64(rows)
	id := ID(1)
	for ry := 0; ry < rows; ry++ {
		for cx := 0; cx < cols; cx++ {
			w.Add(&Zone{
				ID:   id,
				Name: fmt.Sprintf("zone-%d-%d", cx, ry),
				Bounds: Rect{
					MinX: float64(cx) * zw, MinY: float64(ry) * zh,
					MaxX: float64(cx+1) * zw, MaxY: float64(ry+1) * zh,
				},
			})
			id++
		}
	}
	return w
}

// Add registers a zone; it panics on a duplicate ID (layout is static
// configuration, so a duplicate is a programming error).
func (w *World) Add(z *Zone) {
	if _, dup := w.zones[z.ID]; dup {
		panic(fmt.Sprintf("zone: duplicate zone id %d", z.ID))
	}
	w.zones[z.ID] = z
	w.order = append(w.order, z.ID)
	sort.Slice(w.order, func(i, j int) bool { return w.order[i] < w.order[j] })
}

// Get looks a zone up by ID.
func (w *World) Get(id ID) (*Zone, bool) {
	z, ok := w.zones[id]
	return z, ok
}

// Zones returns all zones in ID order.
func (w *World) Zones() []*Zone {
	out := make([]*Zone, 0, len(w.order))
	for _, id := range w.order {
		out = append(out, w.zones[id])
	}
	return out
}

// Locate returns the zone containing p, or false if p is outside every
// zone.
func (w *World) Locate(p entity.Vec2) (*Zone, bool) {
	for _, id := range w.order {
		if w.zones[id].Bounds.Contains(p) {
			return w.zones[id], true
		}
	}
	return nil, false
}

// Assignment tracks which servers process which zone: the replica group of
// each zone (replication), and independent instance copies (instancing).
// Assignment is safe for concurrent use — the resource manager mutates it
// while servers read it.
type Assignment struct {
	mu sync.RWMutex
	// replicas[zone] is the ordered replica group (server IDs).
	replicas map[ID][]string
	// instances[zone] is the list of instance session names.
	instances map[ID][]string
}

// NewAssignment returns an empty assignment.
func NewAssignment() *Assignment {
	return &Assignment{
		replicas:  make(map[ID][]string),
		instances: make(map[ID][]string),
	}
}

// AddReplica appends a server to the zone's replica group. It reports
// false if the server is already in the group.
func (a *Assignment) AddReplica(z ID, serverID string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range a.replicas[z] {
		if s == serverID {
			return false
		}
	}
	a.replicas[z] = append(a.replicas[z], serverID)
	return true
}

// RemoveReplica removes a server from the zone's replica group. It reports
// false if the server was not in the group, and refuses (returning false)
// to remove the last replica — every zone must be assigned to at least one
// server (Section IV, resource removal).
func (a *Assignment) RemoveReplica(z ID, serverID string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	group := a.replicas[z]
	if len(group) <= 1 {
		return false
	}
	for i, s := range group {
		if s == serverID {
			a.replicas[z] = append(append([]string(nil), group[:i]...), group[i+1:]...)
			return true
		}
	}
	return false
}

// Replicas returns a copy of the zone's replica group in assignment order.
func (a *Assignment) Replicas(z ID) []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return append([]string(nil), a.replicas[z]...)
}

// ReplicaCount reports the size of the zone's replica group.
func (a *Assignment) ReplicaCount(z ID) int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.replicas[z])
}

// Peers returns the zone's replica group without the given server.
func (a *Assignment) Peers(z ID, serverID string) []string {
	return a.PeersInto(nil, z, serverID)
}

// PeersInto appends the zone's replica group without the given server to
// dst and returns the extended slice. The tick loop passes a recycled
// dst[:0] so the per-tick peer lookup stays allocation-free.
func (a *Assignment) PeersInto(dst []string, z ID, serverID string) []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, s := range a.replicas[z] {
		if s != serverID {
			dst = append(dst, s)
		}
	}
	return dst
}

// IsReplica reports whether the server is in the zone's replica group.
func (a *Assignment) IsReplica(z ID, serverID string) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, s := range a.replicas[z] {
		if s == serverID {
			return true
		}
	}
	return false
}

// AddInstance registers a new independent instance session of a zone and
// returns its instance name.
func (a *Assignment) AddInstance(z ID) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	name := fmt.Sprintf("zone%d-inst%d", z, len(a.instances[z])+1)
	a.instances[z] = append(a.instances[z], name)
	return name
}

// Instances returns the zone's instance session names.
func (a *Assignment) Instances(z ID) []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return append([]string(nil), a.instances[z]...)
}

// Zones returns every zone that has at least one replica, in ID order.
func (a *Assignment) Zones() []ID {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]ID, 0, len(a.replicas))
	for z := range a.replicas {
		out = append(out, z)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
