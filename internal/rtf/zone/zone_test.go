package zone

import (
	"testing"

	"roia/internal/rtf/entity"
)

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	cases := []struct {
		p    entity.Vec2
		want bool
	}{
		{entity.Vec2{X: 5, Y: 5}, true},
		{entity.Vec2{X: 0, Y: 0}, true},   // inclusive lower edge
		{entity.Vec2{X: 10, Y: 5}, false}, // exclusive upper edge
		{entity.Vec2{X: 5, Y: 10}, false}, // exclusive upper edge
		{entity.Vec2{X: -1, Y: 5}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Fatalf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := r.Center(); got != (entity.Vec2{X: 5, Y: 5}) {
		t.Fatalf("Center = %v", got)
	}
}

func TestGridWorldTilesWithoutOverlap(t *testing.T) {
	w := GridWorld(3, 2, 300, 200)
	if got := len(w.Zones()); got != 6 {
		t.Fatalf("zones = %d, want 6", got)
	}
	// Every interior point belongs to exactly one zone.
	for x := 5.0; x < 300; x += 29 {
		for y := 5.0; y < 200; y += 17 {
			count := 0
			for _, z := range w.Zones() {
				if z.Bounds.Contains(entity.Vec2{X: x, Y: y}) {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("point (%g,%g) in %d zones", x, y, count)
			}
		}
	}
	// Locate agrees with Contains.
	z, ok := w.Locate(entity.Vec2{X: 150, Y: 50})
	if !ok {
		t.Fatal("Locate failed inside the world")
	}
	if !z.Bounds.Contains(entity.Vec2{X: 150, Y: 50}) {
		t.Fatal("Locate returned wrong zone")
	}
	if _, ok := w.Locate(entity.Vec2{X: 999, Y: 999}); ok {
		t.Fatal("Locate succeeded outside the world")
	}
}

func TestWorldDuplicateZonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate zone ID")
		}
	}()
	w := NewWorld()
	w.Add(&Zone{ID: 1})
	w.Add(&Zone{ID: 1})
}

func TestWorldGet(t *testing.T) {
	w := GridWorld(2, 2, 100, 100)
	if _, ok := w.Get(1); !ok {
		t.Fatal("Get(1) missing")
	}
	if _, ok := w.Get(99); ok {
		t.Fatal("Get(99) found nonexistent zone")
	}
}

func TestAssignmentReplicaLifecycle(t *testing.T) {
	a := NewAssignment()
	if !a.AddReplica(1, "s1") {
		t.Fatal("first AddReplica failed")
	}
	if a.AddReplica(1, "s1") {
		t.Fatal("duplicate AddReplica succeeded")
	}
	a.AddReplica(1, "s2")
	a.AddReplica(1, "s3")
	if got := a.ReplicaCount(1); got != 3 {
		t.Fatalf("ReplicaCount = %d", got)
	}
	if got := a.Replicas(1); len(got) != 3 || got[0] != "s1" {
		t.Fatalf("Replicas = %v", got)
	}
	if got := a.Peers(1, "s2"); len(got) != 2 || got[0] != "s1" || got[1] != "s3" {
		t.Fatalf("Peers = %v", got)
	}
	if !a.IsReplica(1, "s2") || a.IsReplica(1, "ghost") {
		t.Fatal("IsReplica wrong")
	}
	if !a.RemoveReplica(1, "s2") {
		t.Fatal("RemoveReplica failed")
	}
	if a.RemoveReplica(1, "s2") {
		t.Fatal("double RemoveReplica succeeded")
	}
	if got := a.ReplicaCount(1); got != 2 {
		t.Fatalf("ReplicaCount after remove = %d", got)
	}
}

func TestAssignmentNeverRemovesLastReplica(t *testing.T) {
	a := NewAssignment()
	a.AddReplica(1, "s1")
	if a.RemoveReplica(1, "s1") {
		t.Fatal("removed the last replica of a zone")
	}
	if got := a.ReplicaCount(1); got != 1 {
		t.Fatalf("ReplicaCount = %d, want 1", got)
	}
}

func TestAssignmentReplicasReturnsCopy(t *testing.T) {
	a := NewAssignment()
	a.AddReplica(1, "s1")
	got := a.Replicas(1)
	got[0] = "mutated"
	if a.Replicas(1)[0] != "s1" {
		t.Fatal("Replicas exposed internal slice")
	}
}

func TestAssignmentInstances(t *testing.T) {
	a := NewAssignment()
	n1 := a.AddInstance(7)
	n2 := a.AddInstance(7)
	if n1 == n2 {
		t.Fatalf("instance names collide: %q", n1)
	}
	if got := a.Instances(7); len(got) != 2 {
		t.Fatalf("Instances = %v", got)
	}
	if got := a.Instances(8); len(got) != 0 {
		t.Fatalf("Instances(8) = %v", got)
	}
}

func TestAssignmentZonesSorted(t *testing.T) {
	a := NewAssignment()
	a.AddReplica(5, "s")
	a.AddReplica(2, "s")
	a.AddReplica(9, "s")
	got := a.Zones()
	if len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("Zones = %v", got)
	}
}
