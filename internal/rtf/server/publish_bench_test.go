package server_test

// Allocation benchmark for the publish half of the tick: n users in mutual
// view, moving NPCs dirtying the world every tick, proto v5 delta stream.
// The sink node discards frames without copying, so the measurement is the
// server pipeline alone — the acceptance bar is 0 allocs/op in steady
// state (see DESIGN §17 and ISSUE 10).

import (
	"fmt"
	"testing"

	"roia/internal/rtf/aoi"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/proto"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/wire"
	"roia/internal/rtf/zone"
)

// sinkNode is a transport.Node that counts and discards everything sent
// through it. Its inbox is fed directly by the benchmark setup (joins) and
// is empty in steady state. It implements transport.BatchSender so the
// server's outbox takes the vectored-write path.
type sinkNode struct {
	id     string
	in     chan transport.Frame
	frames int64
	bytes  int64
}

func newSinkNode(id string, depth int) *sinkNode {
	return &sinkNode{id: id, in: make(chan transport.Frame, depth)}
}

func (n *sinkNode) ID() string { return n.id }

func (n *sinkNode) Send(to string, payload []byte) error {
	n.frames++
	n.bytes += int64(len(payload))
	return nil
}

func (n *sinkNode) SendBatch(to string, payloads [][]byte) error {
	n.frames += int64(len(payloads))
	for _, p := range payloads {
		n.bytes += int64(len(p))
	}
	return nil
}

func (n *sinkNode) Inbox() <-chan transport.Frame { return n.in }
func (n *sinkNode) Close() error                  { close(n.in); return nil }

// benchApp is a minimal allocation-free Application: NPCs drift every tick
// (keeping the world dirty so deltas are never empty), users apply inputs
// by moving.
type benchApp struct{}

func (benchApp) SpawnAvatar(env *server.Env, id entity.ID, pos entity.Vec2, zoneID uint32) *entity.Entity {
	return &entity.Entity{ID: id, Pos: pos, Health: 100}
}

func (benchApp) ApplyInput(env *server.Env, actor *entity.Entity, payload []byte) ([]server.Forward, error) {
	if len(payload) >= 2 {
		actor.Pos.X += float64(int8(payload[0]))
		actor.Pos.Y += float64(int8(payload[1]))
	}
	return nil, nil
}

func (benchApp) ApplyForwarded(env *server.Env, actor entity.ID, target *entity.Entity, payload []byte) error {
	return nil
}

func (benchApp) UpdateNPC(env *server.Env, npc *entity.Entity) []server.Forward {
	// Oscillating patrol: every NPC moves every tick (keeping the world
	// dirty) but stays in its neighbourhood, so visible sets — and with
	// them the steady-state buffer capacities — stay bounded.
	d := 1.0
	if env.Tick%16 >= 8 {
		d = -1.0
	}
	npc.Pos.X += d * 0.5 * float64(1+npc.ID%7)
	npc.Pos.Y += d * 0.25 * float64(1+npc.ID%3)
	return nil
}

func (benchApp) DrainEvents(env *server.Env, avatar entity.ID) []byte     { return nil }
func (benchApp) EncodeUserState(env *server.Env, avatar entity.ID) []byte { return nil }
func (benchApp) ApplyUserState(env *server.Env, avatar entity.ID, data []byte) {
}

// benchServer builds a server on a sink node with n joined users spread
// over a grid sized so AoI neighbourhoods stay populated, plus n/10 NPCs.
func benchServer(b *testing.B, n int, delta bool, parallelism int) (*server.Server, *sinkNode) {
	b.Helper()
	node := newSinkNode("s1", n+16)
	srv, err := server.New(server.Config{
		Node:          node,
		Zone:          1,
		Assignment:    zone.NewAssignment(),
		App:           benchApp{},
		AOI:           aoi.NewIncremental(60),
		IDPrefix:      1,
		Seed:          1,
		Parallelism:   parallelism,
		DeltaUpdates:  delta,
		KeyframeTicks: 32,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv.Start()
	b.Cleanup(func() { srv.Stop() })
	w := wire.NewWriter(256)
	for i := 0; i < n; i++ {
		join := &proto.Join{
			UserName: fmt.Sprintf("u%d", i),
			Zone:     1,
			Pos:      entity.Vec2{X: float64(20 * (i % 32)), Y: float64(20 * (i / 32))},
		}
		payload := proto.Registry.Encode(w, join)
		cp := make([]byte, len(payload))
		copy(cp, payload)
		node.in <- transport.Frame{From: fmt.Sprintf("c%d", i), To: "s1", Payload: cp}
	}
	srv.Tick() // admit everyone
	for i := 0; i < n/10; i++ {
		srv.SpawnNPC(entity.Vec2{X: float64(25 * (i % 16)), Y: float64(40 * (i / 16))})
	}
	return srv, node
}

// BenchmarkPublish measures a full tick — incremental AoI rebuild, visible
// -set diff, delta encoding and vectored staging for every user — at
// n=500 with a dirty world. The publish stage dominates; the whole tick
// must be allocation-free in steady state.
func BenchmarkPublish(b *testing.B) {
	for _, mode := range []struct {
		name  string
		delta bool
	}{{"delta", true}, {"full", false}} {
		b.Run(mode.name, func(b *testing.B) {
			srv, node := benchServer(b, 500, mode.delta, 1)
			// Warm up past two keyframe cycles so every reusable buffer
			// has reached steady-state capacity.
			for i := 0; i < 80; i++ {
				srv.Tick()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv.Tick()
			}
			b.StopTimer()
			if node.frames == 0 {
				b.Fatal("sink received no frames")
			}
		})
	}
}
