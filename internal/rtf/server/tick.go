package server

import (
	"encoding/binary"
	"slices"
	"strconv"
	"time"

	"roia/internal/rtf/aoi"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/monitor"
	"roia/internal/rtf/proto"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/wire"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

// decodedInput is a deserialized user input awaiting application.
type decodedInput struct {
	from string
	msg  *proto.Input
}

// decodedFrame is one slot of the decode stage: the pre-decoded message for
// a frame (nil on decode error or for kinds decoded inline by the apply
// stage) plus its deserialization accounting, merged into the Breakdown in
// frame order by the apply stage.
type decodedFrame struct {
	msg   wire.Message
	ms    float64
	items int
}

// npcResult is one slot of the NPC compute phase under the
// ConcurrentSimulator capability: the forwards returned by UpdateNPC and
// the compute time, applied sequentially in slice order.
type npcResult struct {
	fwds []Forward
	ms   float64
}

// pubItem is one slot of the publish stage: everything worker i needs to
// build user i's state update, and everything the sequential merge needs to
// send it and account for it. Slots live in the server's reusable pubItems
// buffer; payload keeps its capacity across ticks.
type pubItem struct {
	uid    string
	u      *user
	av     *entity.Entity
	avMask entity.FieldMask
	events []byte

	payload     []byte
	aoiMS, suMS float64
	ok          bool

	// entered/left count AoI churn for this user's tick: entities that
	// appeared in / dropped out of its visible set (fed to the CostTracker
	// by the sequential merge; left zero when churn is not tracked).
	entered, left int
}

// Tick executes one iteration of the real-time loop:
//
//  1. receive and deserialize inputs from connected users, forwarded
//     inputs and shadow updates from peer replicas, and migration traffic;
//  2. compute the new application state (apply user inputs, apply
//     forwarded inputs, update NPCs);
//  3. send the newly computed state to connected users (area-of-interest
//     filtered) and to the other replicas of the zone.
//
// Every task is timed into the paper's model parameters via the Monitor:
// t_ua_dser/t_ua for user inputs, t_fa_dser/t_fa for forwarded inputs and
// per-shadow-entity replication traffic, t_npc for NPC updates, t_aoi/t_su
// for interest management and state updates, and t_mig_ini/t_mig_rcv for
// the migration handshake.
func (s *Server) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	// All tick timing goes through the executor's injected clock (not
	// time.Now directly), so tests can drive a synthetic slow tick and the
	// flight recorder's triggers stay deterministic under a fake clock.
	tickStart := s.exec.now()
	s.tick++
	s.env.Tick = s.tick
	s.tickBytesOut = 0
	var br monitor.Breakdown
	cost := s.cfg.Cost
	if cost != nil {
		cost.BeginTick()
	}

	// --- Step 1: receive + decode stage ---
	//
	// Deserialization of input, forwarded-input and shadow-update frames is
	// side-effect-free, so it fans out over the executor: worker k decodes a
	// contiguous chunk of frames into indexed slots, timing each item with
	// the executor's injected clock. The apply stage below then walks the
	// frames in their original order, merging the slot accounting into the
	// Breakdown and performing every state mutation sequentially — so the
	// observable effects are identical to the seed's single loop.
	// The frame buffer is owned by the server and reused across ticks:
	// frames are dead once the apply stage below finishes, so last tick's
	// capacity serves this tick without reallocating.
	frames := transport.DrainInto(s.cfg.Node, s.frameBuf[:0], 0)
	s.frameBuf = frames
	for _, f := range frames {
		// Framed wire bytes (header + payload): what the transport's peer
		// actually wrote, matching the BytesOut convention in sendRaw.
		br.BytesIn += transport.FrameWireBytes(f.From, s.ID(), len(f.Payload))
	}
	if cap(s.decBuf) < len(frames) {
		s.decBuf = make([]decodedFrame, len(frames))
	}
	dec := s.decBuf[:len(frames)]
	clear(dec)
	//roialint:ignore lockhold the pool's wake channels are buffered and drained by the previous run's wg.Wait, so the send never blocks; workers never take s.mu
	s.exec.run(len(frames), s.decodeFn)
	if cost != nil {
		cost.EndStage(telemetry.CostStageDecode)
	}

	// --- Apply stage: frames in arrival order, all mutations sequential ---
	inputs := s.inputsBuf[:0]
	forwards := s.fwdBuf[:0]
	removed := s.removedBuf[:0]
	for i, f := range frames {
		if len(f.Payload) < 2 {
			continue
		}
		switch wire.Kind(binary.BigEndian.Uint16(f.Payload)) {
		case proto.KindInput:
			d := &dec[i]
			br.Add(monitor.UADeser, d.ms, d.items)
			if d.msg != nil {
				inputs = append(inputs, decodedInput{from: f.From, msg: d.msg.(*proto.Input)})
			}
		case proto.KindForwarded:
			d := &dec[i]
			br.Add(monitor.FADeser, d.ms, d.items)
			if d.msg != nil {
				forwards = append(forwards, d.msg.(*proto.Forwarded))
			}
		case proto.KindShadowUpdate:
			// Per-shadow-entity replication traffic: the model charges
			// each of the zone's (n − n/l) shadow entities a per-tick
			// deserialization + application cost, which is exactly this
			// message's per-entity work.
			d := &dec[i]
			br.Add(monitor.FADeser, d.ms, d.items)
			if d.msg == nil {
				continue
			}
			su := d.msg.(*proto.ShadowUpdate)
			t1 := s.exec.now()
			for i := range su.Entities {
				s.store.ApplyShadowUpdate(s.ID(), &su.Entities[i])
			}
			for _, id := range su.Removed {
				if e, ok := s.store.Get(id); ok && e.Owner != s.ID() {
					s.store.Remove(id)
				}
			}
			br.Add(monitor.FA, s.exec.since(t1), len(su.Entities))
		case proto.KindMigrateInit:
			t0 := s.exec.now()
			msg, err := proto.Registry.Decode(f.Payload)
			if err != nil {
				continue
			}
			mi := msg.(*proto.MigrateInit)
			s.receiveMigration(mi)
			dur := s.exec.since(t0)
			br.Add(monitor.MigRcv, dur, 1)
			s.recordMigEvent(telemetry.MigEvent{
				ID: mi.MigID, Phase: telemetry.MigPhaseRecv,
				User: mi.User, From: mi.Avatar.Owner, To: s.ID(),
			}, dur)
		case proto.KindMigrateAck:
			// Ownership already handed off optimistically at initiation;
			// the ack closes the migration span in the trace.
			if s.cfg.MigTrace != nil {
				if msg, err := proto.Registry.Decode(f.Payload); err == nil {
					ack := msg.(*proto.MigrateAck)
					s.recordMigEvent(telemetry.MigEvent{
						ID: ack.MigID, Phase: telemetry.MigPhaseAck,
						User: ack.User, From: s.ID(), To: f.From,
					}, 0)
				}
			}
		case proto.KindJoin:
			if msg, err := proto.Registry.Decode(f.Payload); err == nil {
				s.handleJoin(f.From, msg.(*proto.Join))
			}
		case proto.KindLeave:
			if id, ok := s.removeUser(f.From); ok {
				removed = append(removed, id)
			}
		}
	}

	// --- Step 2a: apply user inputs ---
	for _, in := range inputs {
		u, ok := s.users[in.from]
		if !ok {
			continue // disconnected or migrated away
		}
		if in.msg.Seq <= u.seq && in.msg.Seq != 0 {
			continue // duplicate
		}
		u.seq = in.msg.Seq
		u.lastInput = s.tick
		actor, ok := s.store.Get(u.avatar)
		if !ok {
			continue
		}
		t0 := s.exec.now()
		fwds, err := s.cfg.App.ApplyInput(s.env, actor, in.msg.Payload)
		br.Add(monitor.UA, s.exec.since(t0), 1)
		if err != nil {
			continue
		}
		actor.Seq++
		for _, fw := range fwds {
			target, ok := s.store.Get(fw.Target)
			if !ok {
				continue
			}
			if target.Owner == s.ID() {
				// Local interaction: apply directly. The time still
				// belongs to input application (t_ua), not to forwarded
				// inputs — no items are added so the per-item cost of
				// t_ua absorbs it.
				t1 := s.exec.now()
				if s.cfg.App.ApplyForwarded(s.env, actor.ID, target, fw.Payload) == nil {
					target.Seq++
				}
				br.Add(monitor.UA, s.exec.since(t1), 0)
			} else {
				s.send(target.Owner, &proto.Forwarded{Actor: actor.ID, Target: fw.Target, Payload: fw.Payload})
			}
		}
	}

	// --- Step 2b: apply forwarded inputs ---
	for _, fw := range forwards {
		target, ok := s.store.Get(fw.Target)
		if !ok {
			continue
		}
		if target.Owner != s.ID() {
			// The target migrated since the sender forwarded: re-forward
			// to the current owner.
			s.send(target.Owner, fw)
			continue
		}
		t0 := s.exec.now()
		if s.cfg.App.ApplyForwarded(s.env, fw.Actor, target, fw.Payload) == nil {
			target.Seq++
		}
		br.Add(monitor.FA, s.exec.since(t0), 1)
	}
	s.inputsBuf, s.fwdBuf = inputs[:0], forwards[:0]
	if cost != nil {
		cost.EndStage(telemetry.CostStageApply)
	}

	// --- Step 2c: update NPCs (simulate stage) ---
	npcs := s.store.ActiveInto(s.npcActive[:0], s.ID(), int(entity.NPC))
	s.npcActive = npcs
	if cs, ok := s.cfg.App.(ConcurrentSimulator); ok && cs.ConcurrentNPCUpdates() {
		// Capability-declared applications run two-phase on every worker
		// count: compute all updates into indexed slots (parallel), then
		// apply the returned forwards sequentially in slice order — so the
		// sequential and parallel executions are identical by construction.
		if cap(s.npcBuf) < len(npcs) {
			s.npcBuf = make([]npcResult, len(npcs))
		}
		results := s.npcBuf[:len(npcs)]
		clear(results)
		//roialint:ignore lockhold the pool's wake channels are buffered and drained by the previous run's wg.Wait, so the send never blocks; workers never take s.mu
		s.exec.run(len(npcs), s.npcFn)
		for i, npc := range npcs {
			t0 := s.exec.now()
			s.applyNPCForwards(npc, results[i].fwds)
			br.Add(monitor.NPC, results[i].ms+s.exec.since(t0), 1)
			npc.Seq++
		}
	} else {
		// Default path, bit-identical to the seed loop: applications whose
		// UpdateNPC draws from the shared env.Rand (internal/game does, for
		// movement) depend on NPCs updating in order, so they stay inline on
		// the tick goroutine regardless of Parallelism.
		for _, npc := range npcs {
			t0 := s.exec.now()
			fwds := s.cfg.App.UpdateNPC(s.env, npc)
			s.applyNPCForwards(npc, fwds)
			br.Add(monitor.NPC, s.exec.since(t0), 1)
			npc.Seq++
		}
	}
	if cost != nil {
		cost.EndStage(telemetry.CostStageSimulate)
	}

	// --- Idle eviction: drop users whose clients went silent ---
	if s.cfg.IdleTimeoutTicks > 0 {
		for _, uid := range s.sortedUserIDs() {
			u := s.users[uid]
			if s.tick-u.lastInput > s.cfg.IdleTimeoutTicks {
				if id, ok := s.removeUser(uid); ok {
					removed = append(removed, id)
				}
			}
		}
	}

	// --- Zone handoffs (zoning distribution) ---
	if s.cfg.World != nil {
		s.processZoneTransfers(&br, &removed)
	}

	// --- Migrations ordered by the resource manager ---
	s.processMigrationOrders(&br)

	// --- Step 3a: state updates to connected users (publish stage) ---
	//
	// Publishing fans out per user: AoI query, visible-set diffing and wire
	// serialization are independent across users once the world state is
	// frozen. The stage runs against an immutable store snapshot so workers
	// never touch live entities; each worker encodes into its own writer and
	// copies the payload into the user's slot. Application callbacks
	// (DrainEvents) stay on the tick goroutine per the Application contract,
	// and the actual sends happen in the sequential merge in sorted-user
	// order — so the wire output is byte-identical to the sequential loop.
	// Every buffer in the stage (snapshot arenas, AoI index, per-user
	// visible sets, delta scratch, payload slots, the outbox) is reused
	// across ticks: the steady-state publish path allocates nothing.
	snap := s.store.Snapshot()
	s.pubSnap = snap
	world := snap.All()
	s.pubWorld = world
	s.cfg.AOI.Build(world)
	uids := s.sortedUserIDs()
	if cap(s.pubItems) < len(uids) {
		grown := make([]pubItem, len(uids))
		copy(grown, s.pubItems[:cap(s.pubItems)])
		s.pubItems = grown
	}
	items := s.pubItems[:len(uids)]
	s.pubItems = items
	for i, uid := range uids {
		it := &items[i]
		u := s.users[uid]
		av, mask, ok := snap.Lookup(u.avatar)
		if !ok {
			it.ok = false
			continue
		}
		it.uid, it.u, it.av, it.avMask, it.ok = uid, u, av, mask, true
		it.events = s.cfg.App.DrainEvents(s.env, av.ID)
		it.payload = it.payload[:0]
		it.entered, it.left = 0, 0
	}
	//roialint:ignore lockhold the pool's wake channels are buffered and drained by the previous run's wg.Wait, so the send never blocks; workers never take s.mu
	s.exec.run(len(items), s.publishFn)
	for i := range items {
		it := &items[i]
		if !it.ok {
			continue
		}
		br.Add(monitor.AOI, it.aoiMS, 1)
		// Staging copies the payload into the outbox arena — per-byte work
		// that is part of serializing the user's state update, so it counts
		// toward t_su alongside the encoding measured in publishItem.
		t0 := s.exec.now()
		s.sendRaw(it.uid, it.payload)
		br.Add(monitor.SU, it.suMS+s.exec.since(t0), 1)
		if cost != nil {
			cost.ObserveChurn(it.entered, it.left)
		}
	}

	// --- Step 3b: shadow updates to peer replicas ---
	peers := s.cfg.Assignment.PeersInto(s.peersBuf[:0], s.cfg.Zone, s.ID())
	s.peersBuf = peers
	if len(peers) > 0 {
		actives := s.store.ActiveInto(s.npcActive[:0], s.ID(), -1)
		s.npcActive = actives[:0]
		su := proto.ShadowUpdate{Tick: s.tick, Removed: removed}
		su.Entities = s.suEnts[:0]
		for _, e := range actives {
			su.Entities = append(su.Entities, *e)
		}
		// Entities handed off this tick ride along once more so the new
		// owner learns of the transfer.
		for _, id := range s.handoffs {
			if e, ok := s.store.Get(id); ok {
				su.Entities = append(su.Entities, *e)
			}
		}
		for _, p := range peers {
			s.send(p, &su)
		}
		s.suEnts = su.Entities[:0]
	}
	s.handoffs = s.handoffs[:0]
	s.removedBuf = removed[:0]
	// Flush the tick's staged frames — one batched (vectored, on capable
	// transports) write per destination — inside the publish stage window
	// so its resource cost stays attributed to publishing. The wall time is
	// egress work proportional to the staged bytes; it folds into the t_su
	// bucket (time only — the per-user items were counted above), keeping
	// the fitted per-user t_su sensitive to how much each update weighs.
	tFlush := s.exec.now()
	s.ob.flush(s.cfg.Node)
	br.Add(monitor.SU, s.exec.since(tFlush), 0)
	if cost != nil {
		cost.EndStage(telemetry.CostStagePublish)
	}

	// --- Bookkeeping ---
	br.Users = s.zoneUsersLocked()
	br.ActiveUsers = len(s.users)
	for _, e := range s.store.All() {
		if e.Kind == entity.NPC {
			br.NPCs++
		}
	}
	br.Replicas = s.cfg.Assignment.ReplicaCount(s.cfg.Zone)
	br.BytesOut = s.tickBytesOut
	// TimeMS sums CPU time across workers; WallMS is the elapsed tick time.
	// With Parallelism > 1 the two diverge, and their ratio is the live
	// speedup reported by Monitor.MeanTickCPU / mean wall.
	br.WallMS = s.exec.since(tickStart)
	s.mon.RecordTick(br)
	var tickCost telemetry.TickCost
	if cost != nil {
		tickCost = cost.EndTick()
	}
	if s.cfg.Profiler != nil {
		dur, items := br.PhaseBreakdown()
		s.cfg.Profiler.RecordTick(dur, items)
	}
	if s.cfg.Tracer != nil {
		s.recordTrace(tickStart, &br)
	}
	if s.cfg.FlightRec != nil {
		s.recordFlight(tickStart, &br, len(frames), tickCost)
	}
}

// recordFlight converts the tick's Breakdown into a telemetry.TickRecord
// for the flight recorder. Like tracing, it reuses the Breakdown already
// timed for the Monitor — recording adds no clock reads to the hot loop.
// The tick's resource cost rides along (zero without a CostTracker), so a
// capture can classify GC-caused spikes.
func (s *Server) recordFlight(start time.Time, br *monitor.Breakdown, queueDepth int, tc telemetry.TickCost) {
	tasks := make([]telemetry.Span, 0, len(br.TimeMS))
	offset := 0.0
	for _, t := range monitor.Tasks() {
		dur := br.TimeMS[t]
		items := br.Items[t]
		if dur == 0 && items == 0 {
			continue
		}
		tasks = append(tasks, telemetry.Span{Name: t.String(), StartMS: offset, DurMS: dur, Items: items})
		offset += dur
	}
	deadline := s.mon.DeadlineMS()
	rec := telemetry.TickRecord{
		Tick:           s.tick,
		StartUnixMicro: start.UnixMicro(),
		WallMS:         br.WallMS,
		CPUMS:          br.Total(),
		DeadlineMS:     deadline,
		Users:          br.Users,
		ActiveUsers:    br.ActiveUsers,
		NPCs:           br.NPCs,
		Replicas:       br.Replicas,
		Workers:        s.exec.workers,
		QueueDepth:     queueDepth,
		BytesIn:        br.BytesIn,
		BytesOut:       br.BytesOut,
		GCPauseMS:      tc.GCPauseMS,
		GCCycles:       tc.GCCycles,
		AllocBytes:     tc.AllocBytes,
		AllocObjects:   tc.AllocObjects,
		Tasks:          tasks,
	}
	if deadline > 0 {
		rec.SlackMS = deadline - br.WallMS
	}
	s.cfg.FlightRec.Record(rec)
}

// recordTrace converts the tick's Breakdown into a telemetry.TickTrace:
// one span per task that did work, laid out sequentially in loop order so
// the spans sum exactly to the breakdown total.
func (s *Server) recordTrace(start time.Time, br *monitor.Breakdown) {
	spans := make([]telemetry.Span, 0, len(br.TimeMS))
	offset := 0.0
	for _, t := range monitor.Tasks() {
		dur := br.TimeMS[t]
		items := br.Items[t]
		if dur == 0 && items == 0 {
			continue
		}
		spans = append(spans, telemetry.Span{
			Name:    t.String(),
			StartMS: offset,
			DurMS:   dur,
			Items:   items,
		})
		offset += dur
	}
	s.cfg.Tracer.Record(telemetry.TickTrace{
		Tick:           s.tick,
		StartUnixMicro: start.UnixMicro(),
		WallMS:         br.WallMS,
		Spans:          spans,
	})
}

// decodeItem is the decode-stage body (executor slot discipline: frame i
// in, decBuf slot i out). Deserialization is side-effect-free, so it runs
// on any worker; the apply stage merges the slot accounting in frame order.
func (s *Server) decodeItem(i int, _ *workerCtx) {
	f := s.frameBuf[i]
	if len(f.Payload) < 2 {
		return
	}
	d := &s.decBuf[i]
	switch wire.Kind(binary.BigEndian.Uint16(f.Payload)) {
	case proto.KindInput, proto.KindForwarded:
		t0 := s.exec.now()
		msg, err := proto.Registry.Decode(f.Payload)
		d.ms = s.exec.since(t0)
		d.items = 1
		if err == nil {
			d.msg = msg
		}
	case proto.KindShadowUpdate:
		t0 := s.exec.now()
		msg, err := proto.Registry.Decode(f.Payload)
		d.ms = s.exec.since(t0)
		if err == nil {
			d.msg = msg
			d.items = len(msg.(*proto.ShadowUpdate).Entities)
		}
	}
}

// npcItem is the two-phase NPC compute body under the ConcurrentSimulator
// capability: UpdateNPC for active NPC i into result slot i; the forwards
// are applied sequentially afterwards.
func (s *Server) npcItem(i int, _ *workerCtx) {
	t0 := s.exec.now()
	s.npcBuf[i].fwds = s.cfg.App.UpdateNPC(s.env, s.npcActive[i])
	s.npcBuf[i].ms = s.exec.since(t0)
}

// publishItem is the publish-stage body for user slot i: AoI query, diff
// against the user's previously published visible set, and wire encoding
// into the slot's payload buffer. It reads the tick's immutable snapshot
// (never the live store) and writes only slot i, the passed workerCtx and
// the one user's publish bookkeeping (prevVis/lastPub/nextKey), so the
// stage may fan out across workers.
//
// Under DeltaUpdates the user gets a StateDelta when its delta chain is
// intact (published last tick, no periodic keyframe due) and a
// StateKeyframe otherwise; without DeltaUpdates, the classic full
// StateUpdate. All three encodings consume only reused scratch.
func (s *Server) publishItem(i int, ctx *workerCtx) {
	it := &s.pubItems[i]
	if !it.ok {
		return
	}
	snap := s.pubSnap
	t0 := s.exec.now()
	ctx.vis = s.cfg.AOI.Visible(ctx.vis[:0], it.av.ID, it.av.Pos, s.pubWorld)
	// The visible-set diff below merge-walks sorted sets. Euclid emits in
	// ID order already; grid managers emit in cell order, so sort. (For
	// full updates this also fixes the wire order, keeping output
	// byte-identical across AoI managers' bucketing choices.)
	slices.Sort(ctx.vis)
	it.aoiMS = s.exec.since(t0)

	t1 := s.exec.now()
	u := it.u
	deltaOK := s.cfg.DeltaUpdates && u.lastPub == s.tick-1 && u.lastPub != 0 && s.tick < u.nextKey
	wantDiff := s.cfg.DeltaUpdates || s.cfg.Cost != nil
	if wantDiff {
		ctx.enters, ctx.gone = ctx.enters[:0], ctx.gone[:0]
		ctx.enters, ctx.gone = aoi.Diff(u.prevVis, ctx.vis, ctx.enters, ctx.gone)
		it.entered, it.left = len(ctx.enters), len(ctx.gone)
	}
	switch {
	case deltaOK:
		// StateDelta: masked field changes for entities that stayed
		// visible, full records for entrants, IDs for leavers. The
		// entity-level change masks come from the snapshot diff; an
		// unchanged entity costs nothing on the wire.
		upd := &ctx.delta
		upd.Tick, upd.BaseTick, upd.AckSeq = s.tick, u.lastPub, u.seq
		upd.SelfMask, upd.Self = it.avMask, *it.av
		upd.Gone, upd.Events = ctx.gone, it.events
		ctx.updates = ctx.updates[:0]
		ctx.ents = ctx.ents[:0]
		e := 0 // walks ctx.enters (ascending, a subset of ctx.vis)
		for _, id := range ctx.vis {
			if e < len(ctx.enters) && ctx.enters[e] == id {
				e++
				if ent, ok := snap.Get(id); ok {
					ctx.ents = append(ctx.ents, *ent)
				}
				continue
			}
			ent, mask, ok := snap.Lookup(id)
			if !ok || mask == 0 {
				continue
			}
			ctx.updates = append(ctx.updates, proto.EntityDelta{ID: id, Mask: mask, State: *ent})
		}
		upd.Updates = ctx.updates
		upd.Enters = ctx.ents
		it.payload = append(it.payload, proto.Registry.Encode(ctx.w, upd)...)
	case s.cfg.DeltaUpdates:
		// StateKeyframe: full refresh; the client replaces its world
		// wholesale, re-anchoring the delta chain.
		upd := &ctx.keyframe
		upd.Tick, upd.AckSeq, upd.Self, upd.Events = s.tick, u.seq, *it.av, it.events
		ctx.ents = ctx.ents[:0]
		for _, id := range ctx.vis {
			if ent, ok := snap.Get(id); ok {
				ctx.ents = append(ctx.ents, *ent)
			}
		}
		upd.Visible = ctx.ents
		it.payload = append(it.payload, proto.Registry.Encode(ctx.w, upd)...)
		u.nextKey = s.tick + s.keyframeTicks
	default:
		// u.seq is the last input sequence applied for this user; echoing
		// it lets the client close the input→update response-time loop.
		upd := &ctx.update
		upd.Tick, upd.AckSeq, upd.Self, upd.Events = s.tick, u.seq, *it.av, it.events
		ctx.ents = ctx.ents[:0]
		for _, id := range ctx.vis {
			if ent, ok := snap.Get(id); ok {
				ctx.ents = append(ctx.ents, *ent)
			}
		}
		upd.Visible = ctx.ents
		it.payload = append(it.payload, proto.Registry.Encode(ctx.w, upd)...)
	}
	u.prevVis = append(u.prevVis[:0], ctx.vis...)
	u.lastPub = s.tick
	it.suMS = s.exec.since(t1)
}

// sortedUserIDs returns connected user IDs in deterministic order. The
// backing buffer is reused across calls (tick goroutine only); callers
// must finish iterating before the next call.
func (s *Server) sortedUserIDs() []string {
	ids := s.uidBuf[:0]
	for id := range s.users {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	s.uidBuf = ids
	return ids
}

// applyNPCForwards routes the forwards produced by one NPC update: local
// targets are applied directly (their cost stays inside the NPC's t_npc
// window), remote targets are forwarded to their owning replica.
func (s *Server) applyNPCForwards(npc *entity.Entity, fwds []Forward) {
	for _, fw := range fwds {
		target, ok := s.store.Get(fw.Target)
		if !ok {
			continue
		}
		if target.Owner == s.ID() {
			if s.cfg.App.ApplyForwarded(s.env, npc.ID, target, fw.Payload) == nil {
				target.Seq++
			}
		} else {
			s.send(target.Owner, &proto.Forwarded{Actor: npc.ID, Target: fw.Target, Payload: fw.Payload})
		}
	}
}

// handleJoin admits a new user: spawn an avatar, register the connection,
// acknowledge. A draining server no longer admits anyone, but it must not
// drop the join on the floor either — the client is waiting on a reply. If
// the zone has peer replicas the join is answered with a MigrateNotice
// redirecting the client to one of them (lowest ID, for determinism);
// otherwise with an explicit JoinNack so the client can surface the
// rejection instead of hanging.
func (s *Server) handleJoin(from string, j *proto.Join) {
	if s.draining {
		peers := s.cfg.Assignment.Peers(s.cfg.Zone, s.ID())
		if len(peers) > 0 {
			slices.Sort(peers)
			s.send(from, &proto.MigrateNotice{NewServer: peers[0]})
		} else {
			s.send(from, &proto.JoinNack{Reason: "draining"})
		}
		return
	}
	if _, dup := s.users[from]; dup {
		return
	}
	id := s.allocIDLocked()
	av := s.cfg.App.SpawnAvatar(s.env, id, j.Pos, uint32(s.cfg.Zone))
	av.ID = id
	av.Kind = entity.Avatar
	av.Zone = uint32(s.cfg.Zone)
	av.Owner = s.ID()
	if av.Seq == 0 {
		av.Seq = 1
	}
	s.store.Put(av)
	s.users[from] = &user{id: from, avatar: id, lastInput: s.tick}
	s.send(from, &proto.JoinAck{Entity: id, Tick: s.tick})
}

// removeUser disconnects a user and deletes its avatar, returning the
// avatar ID for removal propagation.
func (s *Server) removeUser(uid string) (entity.ID, bool) {
	u, ok := s.users[uid]
	if !ok {
		return 0, false
	}
	s.forgetUser(uid)
	s.store.Remove(u.avatar)
	return u.avatar, true
}

// forgetUser drops a user's connection-scoped state: the users-map entry
// and, when cost tracking is on, its per-client egress counter. Every path
// that disconnects a user (leave, idle eviction, zone handoff, migration)
// must go through here so the CostTracker's per-client map stays bounded by
// the live connection count.
func (s *Server) forgetUser(uid string) {
	delete(s.users, uid)
	if s.cfg.Cost != nil {
		s.cfg.Cost.EvictClient(uid)
	}
}

// receiveMigration installs a user handed off by a peer replica.
func (s *Server) receiveMigration(mi *proto.MigrateInit) {
	av := mi.Avatar
	av.Owner = s.ID()
	av.Seq++
	if cur, ok := s.store.Get(av.ID); ok {
		*cur = av
	} else {
		s.store.Put(av.Clone())
	}
	s.users[mi.User] = &user{id: mi.User, avatar: av.ID, lastInput: s.tick}
	s.cfg.App.ApplyUserState(s.env, av.ID, mi.AppState)
	s.send(mi.Avatar.Owner, &proto.MigrateAck{MigID: mi.MigID, User: mi.User, Avatar: av.ID})
}

// recordMigEvent stamps and stores one migration-phase observation in the
// server's migration tracer (no-op when tracing is off).
func (s *Server) recordMigEvent(e telemetry.MigEvent, durMS float64) {
	if s.cfg.MigTrace == nil {
		return
	}
	e.Tick = s.tick
	e.UnixMicro = s.exec.now().UnixMicro()
	e.DurMS = durMS
	s.cfg.MigTrace.Record(e)
}

// processZoneTransfers hands off users whose avatars moved into another
// zone of the world: the avatar state migrates to a replica of the
// destination zone (removal propagates to this zone's peers), and the
// client is re-pointed at its new server. Zone transfers reuse the
// user-migration machinery, so their overhead lands in t_mig_ini like any
// other migration.
func (s *Server) processZoneTransfers(br *monitor.Breakdown, removed *[]entity.ID) {
	for _, uid := range s.sortedUserIDs() {
		u := s.users[uid]
		av, ok := s.store.Get(u.avatar)
		if !ok {
			continue
		}
		dest, ok := s.cfg.World.Locate(av.Pos)
		if !ok || dest.ID == s.cfg.Zone {
			continue
		}
		targets := s.cfg.Assignment.Replicas(dest.ID)
		if len(targets) == 0 {
			// The destination zone is unstaffed; keep serving the user
			// here rather than dropping the session.
			continue
		}
		target := targets[0]
		t0 := s.exec.now()
		handoff := *av
		handoff.Zone = uint32(dest.ID)
		mi := &proto.MigrateInit{
			MigID:    s.allocMigIDLocked(),
			User:     uid,
			Avatar:   handoff,
			AppState: s.cfg.App.EncodeUserState(s.env, av.ID),
		}
		s.send(target, mi)
		dur := s.exec.since(t0)
		br.Add(monitor.MigIni, dur, 1)
		s.recordMigEvent(telemetry.MigEvent{
			ID: mi.MigID, Phase: telemetry.MigPhaseInit,
			User: uid, From: s.ID(), To: target,
		}, dur)
		if s.cfg.Events != nil {
			s.cfg.Events.FleetEvent(telemetry.FleetEvent{
				UnixMicro: s.exec.now().UnixMicro(),
				Kind:      telemetry.FleetEventZoneHandoff,
				Zone:      uint32(s.cfg.Zone),
				Replica:   s.ID(),
				Detail:    s.handoffDetail(uid, dest.ID, target),
			})
		}

		s.send(uid, &proto.MigrateNotice{NewServer: target})
		s.forgetUser(uid)
		s.store.Remove(av.ID)
		*removed = append(*removed, av.ID)
	}
}

// handoffDetail renders "user <uid> → zone <id> (<target>)" into the
// server's reused scratch buffer: it runs once per zone handoff on the
// tick path, where fmt's formatting machinery (boxing plus verb parsing)
// is avoidable cost. Only the final string conversion allocates.
func (s *Server) handoffDetail(uid string, dest zone.ID, target string) string {
	b := s.detailBuf[:0]
	b = append(b, "user "...)
	b = append(b, uid...)
	b = append(b, " → zone "...)
	b = strconv.AppendUint(b, uint64(dest), 10)
	b = append(b, " ("...)
	b = append(b, target...)
	b = append(b, ')')
	s.detailBuf = b
	return string(b)
}

// processMigrationOrders executes the pending migration orders, handing
// off users to target replicas. Each handoff serializes the user's avatar
// and application state (t_mig_ini), transfers responsibility, and points
// the client at its new server.
func (s *Server) processMigrationOrders(br *monitor.Breakdown) {
	if len(s.orders) == 0 {
		return
	}
	orders := s.orders
	s.orders = nil
	uids := s.sortedUserIDs()
	next := 0
	for _, ord := range orders {
		if !s.cfg.Assignment.IsReplica(s.cfg.Zone, ord.target) {
			continue // target disappeared (e.g. removed by the RMS)
		}
		for moved := 0; moved < ord.count && next < len(uids); next++ {
			uid := uids[next]
			u, ok := s.users[uid]
			if !ok {
				continue
			}
			av, ok := s.store.Get(u.avatar)
			if !ok {
				s.forgetUser(uid)
				continue
			}
			t0 := s.exec.now()
			appState := s.cfg.App.EncodeUserState(s.env, av.ID)
			mi := &proto.MigrateInit{MigID: s.allocMigIDLocked(), User: uid, Avatar: *av, AppState: appState}
			s.send(ord.target, mi)
			dur := s.exec.since(t0)
			br.Add(monitor.MigIni, dur, 1)
			s.recordMigEvent(telemetry.MigEvent{
				ID: mi.MigID, Phase: telemetry.MigPhaseInit,
				User: uid, From: s.ID(), To: ord.target,
			}, dur)

			// Optimistic ownership handoff: the target assumes control on
			// receipt; locally the entity becomes a shadow.
			av.Owner = ord.target
			s.forgetUser(uid)
			s.send(uid, &proto.MigrateNotice{NewServer: ord.target})
			moved++
		}
	}
}
