package server

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"roia/internal/rtf/entity"
	"roia/internal/rtf/monitor"
	"roia/internal/rtf/proto"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/wire"
	"roia/internal/telemetry"
)

// msSince converts a wall-clock delta into the model's millisecond unit.
func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Nanoseconds()) / 1e6
}

// decodedInput is a deserialized user input awaiting application.
type decodedInput struct {
	from string
	msg  *proto.Input
}

// Tick executes one iteration of the real-time loop:
//
//  1. receive and deserialize inputs from connected users, forwarded
//     inputs and shadow updates from peer replicas, and migration traffic;
//  2. compute the new application state (apply user inputs, apply
//     forwarded inputs, update NPCs);
//  3. send the newly computed state to connected users (area-of-interest
//     filtered) and to the other replicas of the zone.
//
// Every task is timed into the paper's model parameters via the Monitor:
// t_ua_dser/t_ua for user inputs, t_fa_dser/t_fa for forwarded inputs and
// per-shadow-entity replication traffic, t_npc for NPC updates, t_aoi/t_su
// for interest management and state updates, and t_mig_ini/t_mig_rcv for
// the migration handshake.
func (s *Server) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	tickStart := time.Now()
	s.tick++
	s.env.Tick = s.tick
	s.tickBytesOut = 0
	var br monitor.Breakdown

	// --- Step 1: receive ---
	frames := transport.Drain(s.cfg.Node, 0)
	for _, f := range frames {
		br.BytesIn += len(f.Payload)
	}
	inputs := make([]decodedInput, 0, len(frames))
	var forwards []*proto.Forwarded
	var removed []entity.ID
	for _, f := range frames {
		if len(f.Payload) < 2 {
			continue
		}
		switch wire.Kind(binary.BigEndian.Uint16(f.Payload)) {
		case proto.KindInput:
			t0 := time.Now()
			msg, err := proto.Registry.Decode(f.Payload)
			br.Add(monitor.UADeser, msSince(t0), 1)
			if err == nil {
				inputs = append(inputs, decodedInput{from: f.From, msg: msg.(*proto.Input)})
			}
		case proto.KindForwarded:
			t0 := time.Now()
			msg, err := proto.Registry.Decode(f.Payload)
			br.Add(monitor.FADeser, msSince(t0), 1)
			if err == nil {
				forwards = append(forwards, msg.(*proto.Forwarded))
			}
		case proto.KindShadowUpdate:
			// Per-shadow-entity replication traffic: the model charges
			// each of the zone's (n − n/l) shadow entities a per-tick
			// deserialization + application cost, which is exactly this
			// message's per-entity work.
			t0 := time.Now()
			msg, err := proto.Registry.Decode(f.Payload)
			if err != nil {
				br.Add(monitor.FADeser, msSince(t0), 0)
				continue
			}
			su := msg.(*proto.ShadowUpdate)
			br.Add(monitor.FADeser, msSince(t0), len(su.Entities))
			t1 := time.Now()
			for i := range su.Entities {
				s.store.ApplyShadowUpdate(s.ID(), &su.Entities[i])
			}
			for _, id := range su.Removed {
				if e, ok := s.store.Get(id); ok && e.Owner != s.ID() {
					s.store.Remove(id)
				}
			}
			br.Add(monitor.FA, msSince(t1), len(su.Entities))
		case proto.KindMigrateInit:
			t0 := time.Now()
			msg, err := proto.Registry.Decode(f.Payload)
			if err != nil {
				continue
			}
			mi := msg.(*proto.MigrateInit)
			s.receiveMigration(mi)
			dur := msSince(t0)
			br.Add(monitor.MigRcv, dur, 1)
			s.recordMigEvent(telemetry.MigEvent{
				ID: mi.MigID, Phase: telemetry.MigPhaseRecv,
				User: mi.User, From: mi.Avatar.Owner, To: s.ID(),
			}, dur)
		case proto.KindMigrateAck:
			// Ownership already handed off optimistically at initiation;
			// the ack closes the migration span in the trace.
			if s.cfg.MigTrace != nil {
				if msg, err := proto.Registry.Decode(f.Payload); err == nil {
					ack := msg.(*proto.MigrateAck)
					s.recordMigEvent(telemetry.MigEvent{
						ID: ack.MigID, Phase: telemetry.MigPhaseAck,
						User: ack.User, From: s.ID(), To: f.From,
					}, 0)
				}
			}
		case proto.KindJoin:
			if msg, err := proto.Registry.Decode(f.Payload); err == nil {
				s.handleJoin(f.From, msg.(*proto.Join))
			}
		case proto.KindLeave:
			if id, ok := s.removeUser(f.From); ok {
				removed = append(removed, id)
			}
		}
	}

	// --- Step 2a: apply user inputs ---
	for _, in := range inputs {
		u, ok := s.users[in.from]
		if !ok {
			continue // disconnected or migrated away
		}
		if in.msg.Seq <= u.seq && in.msg.Seq != 0 {
			continue // duplicate
		}
		u.seq = in.msg.Seq
		u.lastInput = s.tick
		actor, ok := s.store.Get(u.avatar)
		if !ok {
			continue
		}
		t0 := time.Now()
		fwds, err := s.cfg.App.ApplyInput(s.env, actor, in.msg.Payload)
		br.Add(monitor.UA, msSince(t0), 1)
		if err != nil {
			continue
		}
		actor.Seq++
		for _, fw := range fwds {
			target, ok := s.store.Get(fw.Target)
			if !ok {
				continue
			}
			if target.Owner == s.ID() {
				// Local interaction: apply directly. The time still
				// belongs to input application (t_ua), not to forwarded
				// inputs — no items are added so the per-item cost of
				// t_ua absorbs it.
				t1 := time.Now()
				if s.cfg.App.ApplyForwarded(s.env, actor.ID, target, fw.Payload) == nil {
					target.Seq++
				}
				br.Add(monitor.UA, msSince(t1), 0)
			} else {
				s.send(target.Owner, &proto.Forwarded{Actor: actor.ID, Target: fw.Target, Payload: fw.Payload})
			}
		}
	}

	// --- Step 2b: apply forwarded inputs ---
	for _, fw := range forwards {
		target, ok := s.store.Get(fw.Target)
		if !ok {
			continue
		}
		if target.Owner != s.ID() {
			// The target migrated since the sender forwarded: re-forward
			// to the current owner.
			s.send(target.Owner, fw)
			continue
		}
		t0 := time.Now()
		if s.cfg.App.ApplyForwarded(s.env, fw.Actor, target, fw.Payload) == nil {
			target.Seq++
		}
		br.Add(monitor.FA, msSince(t0), 1)
	}

	// --- Step 2c: update NPCs ---
	for _, npc := range s.store.Active(s.ID(), int(entity.NPC)) {
		t0 := time.Now()
		fwds := s.cfg.App.UpdateNPC(s.env, npc)
		for _, fw := range fwds {
			target, ok := s.store.Get(fw.Target)
			if !ok {
				continue
			}
			if target.Owner == s.ID() {
				if s.cfg.App.ApplyForwarded(s.env, npc.ID, target, fw.Payload) == nil {
					target.Seq++
				}
			} else {
				s.send(target.Owner, &proto.Forwarded{Actor: npc.ID, Target: fw.Target, Payload: fw.Payload})
			}
		}
		br.Add(monitor.NPC, msSince(t0), 1)
		npc.Seq++
	}

	// --- Idle eviction: drop users whose clients went silent ---
	if s.cfg.IdleTimeoutTicks > 0 {
		for _, uid := range s.sortedUserIDs() {
			u := s.users[uid]
			if s.tick-u.lastInput > s.cfg.IdleTimeoutTicks {
				if id, ok := s.removeUser(uid); ok {
					removed = append(removed, id)
				}
			}
		}
	}

	// --- Zone handoffs (zoning distribution) ---
	if s.cfg.World != nil {
		s.processZoneTransfers(&br, &removed)
	}

	// --- Migrations ordered by the resource manager ---
	s.processMigrationOrders(&br)

	// --- Step 3a: state updates to connected users ---
	world := s.store.All()
	s.cfg.AOI.Build(world)
	var visBuf []entity.ID
	for _, uid := range s.sortedUserIDs() {
		u := s.users[uid]
		av, ok := s.store.Get(u.avatar)
		if !ok {
			continue
		}
		t0 := time.Now()
		visBuf = s.cfg.AOI.Visible(visBuf[:0], av.ID, av.Pos, world)
		br.Add(monitor.AOI, msSince(t0), 1)

		t1 := time.Now()
		// u.seq is the last input sequence applied for this user; echoing
		// it lets the client close the input→update response-time loop.
		upd := proto.StateUpdate{Tick: s.tick, AckSeq: u.seq, Self: *av, Events: s.cfg.App.DrainEvents(s.env, av.ID)}
		if s.cfg.DeltaUpdates {
			s.fillDeltaUpdate(u, visBuf, &upd)
		} else if len(visBuf) > 0 {
			upd.Visible = make([]entity.Entity, 0, len(visBuf))
			for _, id := range visBuf {
				if e, ok := s.store.Get(id); ok {
					upd.Visible = append(upd.Visible, *e)
				}
			}
		}
		s.send(uid, &upd)
		br.Add(monitor.SU, msSince(t1), 1)
	}

	// --- Step 3b: shadow updates to peer replicas ---
	peers := s.cfg.Assignment.Peers(s.cfg.Zone, s.ID())
	if len(peers) > 0 {
		actives := s.store.Active(s.ID(), -1)
		su := proto.ShadowUpdate{Tick: s.tick, Removed: removed}
		su.Entities = make([]entity.Entity, len(actives), len(actives)+len(s.handoffs))
		for i, e := range actives {
			su.Entities[i] = *e
		}
		// Entities handed off this tick ride along once more so the new
		// owner learns of the transfer.
		for _, id := range s.handoffs {
			if e, ok := s.store.Get(id); ok {
				su.Entities = append(su.Entities, *e)
			}
		}
		for _, p := range peers {
			s.send(p, &su)
		}
	}
	s.handoffs = nil

	// --- Bookkeeping ---
	br.Users = s.zoneUsersLocked()
	br.ActiveUsers = len(s.users)
	for _, e := range s.store.All() {
		if e.Kind == entity.NPC {
			br.NPCs++
		}
	}
	br.Replicas = s.cfg.Assignment.ReplicaCount(s.cfg.Zone)
	br.BytesOut = s.tickBytesOut
	s.mon.RecordTick(br)
	if s.cfg.Profiler != nil {
		dur, items := br.PhaseBreakdown()
		s.cfg.Profiler.RecordTick(dur, items)
	}
	if s.cfg.Tracer != nil {
		s.recordTrace(tickStart, &br)
	}
}

// recordTrace converts the tick's Breakdown into a telemetry.TickTrace:
// one span per task that did work, laid out sequentially in loop order so
// the spans sum exactly to the breakdown total.
func (s *Server) recordTrace(start time.Time, br *monitor.Breakdown) {
	spans := make([]telemetry.Span, 0, len(br.TimeMS))
	offset := 0.0
	for _, t := range monitor.Tasks() {
		dur := br.TimeMS[t]
		items := br.Items[t]
		if dur == 0 && items == 0 {
			continue
		}
		spans = append(spans, telemetry.Span{
			Name:    t.String(),
			StartMS: offset,
			DurMS:   dur,
			Items:   items,
		})
		offset += dur
	}
	s.cfg.Tracer.Record(telemetry.TickTrace{
		Tick:           s.tick,
		StartUnixMicro: start.UnixMicro(),
		WallMS:         msSince(start),
		Spans:          spans,
	})
}

// fillDeltaUpdate populates a state update with only the changes since the
// user's previous update: entities whose sequence number advanced (or that
// newly entered the area of interest) plus a removal list for entities that
// left it — RTF's bandwidth optimization.
func (s *Server) fillDeltaUpdate(u *user, visible []entity.ID, upd *proto.StateUpdate) {
	if u.known == nil {
		u.known = make(map[entity.ID]uint64, len(visible))
	}
	inView := make(map[entity.ID]bool, len(visible))
	for _, id := range visible {
		e, ok := s.store.Get(id)
		if !ok {
			continue
		}
		inView[id] = true
		if last, seen := u.known[id]; !seen || e.Seq > last {
			upd.Visible = append(upd.Visible, *e)
			u.known[id] = e.Seq
		}
	}
	for id := range u.known {
		if !inView[id] {
			upd.Gone = append(upd.Gone, id)
			delete(u.known, id)
		}
	}
	// Deterministic wire output: map iteration scrambles Gone.
	sort.Slice(upd.Gone, func(i, j int) bool { return upd.Gone[i] < upd.Gone[j] })
}

// sortedUserIDs returns connected user IDs in deterministic order.
func (s *Server) sortedUserIDs() []string {
	ids := make([]string, 0, len(s.users))
	for id := range s.users {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// handleJoin admits a new user: spawn an avatar, register the connection,
// acknowledge.
func (s *Server) handleJoin(from string, j *proto.Join) {
	if s.draining {
		return // shutting down: the client will retry elsewhere
	}
	if _, dup := s.users[from]; dup {
		return
	}
	id := s.allocIDLocked()
	av := s.cfg.App.SpawnAvatar(s.env, id, j.Pos, uint32(s.cfg.Zone))
	av.ID = id
	av.Kind = entity.Avatar
	av.Zone = uint32(s.cfg.Zone)
	av.Owner = s.ID()
	if av.Seq == 0 {
		av.Seq = 1
	}
	s.store.Put(av)
	s.users[from] = &user{id: from, avatar: id, lastInput: s.tick}
	s.send(from, &proto.JoinAck{Entity: id, Tick: s.tick})
}

// removeUser disconnects a user and deletes its avatar, returning the
// avatar ID for removal propagation.
func (s *Server) removeUser(uid string) (entity.ID, bool) {
	u, ok := s.users[uid]
	if !ok {
		return 0, false
	}
	delete(s.users, uid)
	s.store.Remove(u.avatar)
	return u.avatar, true
}

// receiveMigration installs a user handed off by a peer replica.
func (s *Server) receiveMigration(mi *proto.MigrateInit) {
	av := mi.Avatar
	av.Owner = s.ID()
	av.Seq++
	if cur, ok := s.store.Get(av.ID); ok {
		*cur = av
	} else {
		s.store.Put(av.Clone())
	}
	s.users[mi.User] = &user{id: mi.User, avatar: av.ID, lastInput: s.tick}
	s.cfg.App.ApplyUserState(s.env, av.ID, mi.AppState)
	s.send(mi.Avatar.Owner, &proto.MigrateAck{MigID: mi.MigID, User: mi.User, Avatar: av.ID})
}

// recordMigEvent stamps and stores one migration-phase observation in the
// server's migration tracer (no-op when tracing is off).
func (s *Server) recordMigEvent(e telemetry.MigEvent, durMS float64) {
	if s.cfg.MigTrace == nil {
		return
	}
	e.Tick = s.tick
	e.UnixMicro = time.Now().UnixMicro()
	e.DurMS = durMS
	s.cfg.MigTrace.Record(e)
}

// processZoneTransfers hands off users whose avatars moved into another
// zone of the world: the avatar state migrates to a replica of the
// destination zone (removal propagates to this zone's peers), and the
// client is re-pointed at its new server. Zone transfers reuse the
// user-migration machinery, so their overhead lands in t_mig_ini like any
// other migration.
func (s *Server) processZoneTransfers(br *monitor.Breakdown, removed *[]entity.ID) {
	for _, uid := range s.sortedUserIDs() {
		u := s.users[uid]
		av, ok := s.store.Get(u.avatar)
		if !ok {
			continue
		}
		dest, ok := s.cfg.World.Locate(av.Pos)
		if !ok || dest.ID == s.cfg.Zone {
			continue
		}
		targets := s.cfg.Assignment.Replicas(dest.ID)
		if len(targets) == 0 {
			// The destination zone is unstaffed; keep serving the user
			// here rather than dropping the session.
			continue
		}
		target := targets[0]
		t0 := time.Now()
		handoff := *av
		handoff.Zone = uint32(dest.ID)
		mi := &proto.MigrateInit{
			MigID:    s.allocMigIDLocked(),
			User:     uid,
			Avatar:   handoff,
			AppState: s.cfg.App.EncodeUserState(s.env, av.ID),
		}
		s.send(target, mi)
		dur := msSince(t0)
		br.Add(monitor.MigIni, dur, 1)
		s.recordMigEvent(telemetry.MigEvent{
			ID: mi.MigID, Phase: telemetry.MigPhaseInit,
			User: uid, From: s.ID(), To: target,
		}, dur)
		if s.cfg.Events != nil {
			s.cfg.Events.FleetEvent(telemetry.FleetEvent{
				UnixMicro: time.Now().UnixMicro(),
				Kind:      telemetry.FleetEventZoneHandoff,
				Zone:      uint32(s.cfg.Zone),
				Replica:   s.ID(),
				Detail:    fmt.Sprintf("user %s → zone %d (%s)", uid, dest.ID, target),
			})
		}

		s.send(uid, &proto.MigrateNotice{NewServer: target})
		delete(s.users, uid)
		s.store.Remove(av.ID)
		*removed = append(*removed, av.ID)
	}
}

// processMigrationOrders executes the pending migration orders, handing
// off users to target replicas. Each handoff serializes the user's avatar
// and application state (t_mig_ini), transfers responsibility, and points
// the client at its new server.
func (s *Server) processMigrationOrders(br *monitor.Breakdown) {
	if len(s.orders) == 0 {
		return
	}
	orders := s.orders
	s.orders = nil
	uids := s.sortedUserIDs()
	next := 0
	for _, ord := range orders {
		if !s.cfg.Assignment.IsReplica(s.cfg.Zone, ord.target) {
			continue // target disappeared (e.g. removed by the RMS)
		}
		for moved := 0; moved < ord.count && next < len(uids); next++ {
			uid := uids[next]
			u, ok := s.users[uid]
			if !ok {
				continue
			}
			av, ok := s.store.Get(u.avatar)
			if !ok {
				delete(s.users, uid)
				continue
			}
			t0 := time.Now()
			appState := s.cfg.App.EncodeUserState(s.env, av.ID)
			mi := &proto.MigrateInit{MigID: s.allocMigIDLocked(), User: uid, Avatar: *av, AppState: appState}
			s.send(ord.target, mi)
			dur := msSince(t0)
			br.Add(monitor.MigIni, dur, 1)
			s.recordMigEvent(telemetry.MigEvent{
				ID: mi.MigID, Phase: telemetry.MigPhaseInit,
				User: uid, From: s.ID(), To: ord.target,
			}, dur)

			// Optimistic ownership handoff: the target assumes control on
			// receipt; locally the entity becomes a shadow.
			av.Owner = ord.target
			delete(s.users, uid)
			s.send(uid, &proto.MigrateNotice{NewServer: ord.target})
			moved++
		}
	}
}
