package server_test

import (
	"testing"

	"roia/internal/game"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
)

// zonedWorld builds two adjacent zones (x < 100 and x >= 100) with one
// server each on a shared network and assignment.
func zonedWorld(t *testing.T) (*transport.Loopback, *zone.World, []*server.Server) {
	t.Helper()
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	world := zone.GridWorld(2, 1, 200, 100) // zones 1 and 2
	asg := zone.NewAssignment()
	servers := make([]*server.Server, 2)
	for i := range servers {
		node, err := net.Attach([]string{"za", "zb"}[i], 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Node:       node,
			Zone:       zone.ID(i + 1),
			Assignment: asg,
			App:        game.New(game.DefaultConfig()),
			World:      world,
			IDPrefix:   uint16(i + 1),
			Seed:       int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		servers[i] = srv
	}
	return net, world, servers
}

func TestZoneHandoffOnBoundaryCrossing(t *testing.T) {
	net, _, servers := zonedWorld(t)
	node, err := net.Attach("c1", 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(node, "za")
	if err := cl.Join(1, entity.Vec2{X: 95, Y: 50}, "c1"); err != nil {
		t.Fatal(err)
	}
	step := func() {
		servers[0].Tick()
		servers[1].Tick()
		cl.Poll()
	}
	step()
	if !cl.Joined() {
		t.Fatal("join failed")
	}
	avatar := cl.Avatar()

	// Walk east across the x=100 boundary (speed cap 5 per move).
	for i := 0; i < 4; i++ {
		_ = cl.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 5, DY: 0}))
		step()
	}
	step() // deliver the handoff

	if got := cl.Server(); got != "zb" {
		t.Fatalf("client still on %q, want zb after crossing", got)
	}
	if cl.Migrations() != 1 {
		t.Fatalf("client followed %d migrations, want 1", cl.Migrations())
	}
	if _, ok := servers[0].Entity(avatar); ok {
		t.Fatal("avatar still present in the origin zone")
	}
	e, ok := servers[1].Entity(avatar)
	if !ok {
		t.Fatal("avatar missing in the destination zone")
	}
	if e.Zone != 2 || e.Owner != "zb" {
		t.Fatalf("handoff state wrong: zone=%d owner=%q", e.Zone, e.Owner)
	}
	if servers[0].UserCount() != 0 || servers[1].UserCount() != 1 {
		t.Fatalf("user counts wrong: %d/%d", servers[0].UserCount(), servers[1].UserCount())
	}

	// The user keeps playing in the new zone.
	_ = cl.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 5, DY: 0}))
	step()
	after, _ := servers[1].Entity(avatar)
	if after.Pos.X <= e.Pos.X {
		t.Fatal("post-handoff move ignored")
	}
}

func TestZoneHandoffPreservesAppState(t *testing.T) {
	net, _, servers := zonedWorld(t)
	// An attacker with a kill crosses the boundary; the score must follow.
	aNode, _ := net.Attach("c1", 1<<14)
	attacker := client.New(aNode, "za")
	_ = attacker.Join(1, entity.Vec2{X: 95, Y: 50}, "c1")
	vNode, _ := net.Attach("c2", 1<<14)
	victim := client.New(vNode, "za")
	_ = victim.Join(1, entity.Vec2{X: 90, Y: 50}, "c2")
	step := func() {
		servers[0].Tick()
		servers[1].Tick()
		attacker.Poll()
		victim.Poll()
	}
	step()
	_ = attacker.SendInput(game.Commands.EncodeToBytes(&game.Attack{DirX: -1, DirY: 0}))
	step()

	for i := 0; i < 4; i++ {
		_ = attacker.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 5, DY: 0}))
		step()
	}
	step()
	if attacker.Server() != "zb" {
		t.Fatalf("attacker on %q, want zb", attacker.Server())
	}
	// The destination server's game instance now owns the score.
	// (Each server has its own game instance; reach it via the fleet-less
	// direct handle used at construction — query through the Entity and
	// events instead: a further kill must increment, proving state moved.)
	if servers[1].UserCount() != 1 {
		t.Fatal("attacker not connected to destination server")
	}
}

func TestZoneHandoffUnstaffedZoneKeepsUser(t *testing.T) {
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	world := zone.GridWorld(2, 1, 200, 100)
	asg := zone.NewAssignment()
	node, _ := net.Attach("za", 1<<14)
	srv, err := server.New(server.Config{
		Node: node, Zone: 1, Assignment: asg,
		App: game.New(game.DefaultConfig()), World: world,
		IDPrefix: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start() // zone 2 has no replicas

	cNode, _ := net.Attach("c1", 1<<14)
	cl := client.New(cNode, "za")
	_ = cl.Join(1, entity.Vec2{X: 95, Y: 50}, "c1")
	srv.Tick()
	cl.Poll()
	for i := 0; i < 4; i++ {
		_ = cl.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 5, DY: 0}))
		srv.Tick()
		cl.Poll()
	}
	if cl.Server() != "za" || srv.UserCount() != 1 {
		t.Fatal("user dropped despite unstaffed destination zone")
	}
}
