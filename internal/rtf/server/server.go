// Package server implements the RTF application server: the real-time loop
// (receive inputs → compute state → send updates), replication with shadow
// entities and forwarded interactions, user migration, and the per-task
// monitoring hooks that feed the scalability model.
//
// A Server processes one zone. Multiple servers replicating the same zone
// coordinate through a shared zone.Assignment and exchange shadow updates
// and forwarded inputs over a transport.Network — the architecture of
// Fig. 1 in the paper.
package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"roia/internal/rtf/aoi"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/monitor"
	"roia/internal/rtf/proto"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/wire"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

// Config assembles a Server.
type Config struct {
	// Node is this server's attached network endpoint; its ID is the
	// server's identity.
	Node transport.Node
	// Zone is the zone this server processes.
	Zone zone.ID
	// Assignment is the shared zone→replica mapping; the server registers
	// itself on Start and consults it for its peer replicas.
	Assignment *zone.Assignment
	// World optionally describes the zone layout. When set, avatars whose
	// position leaves this server's zone are handed off to a replica of
	// the destination zone (the zoning distribution method); when nil the
	// zone is unbounded.
	World *zone.World
	// App is the application logic.
	App Application
	// AOI computes areas of interest; nil defaults to the Euclidean
	// Distance Algorithm with radius 50 (RTFDemo's interest management).
	AOI aoi.Manager
	// IDPrefix makes entity IDs allocated by this server globally unique;
	// give every server in a session a distinct prefix.
	IDPrefix uint16
	// Seed seeds the server's deterministic random source.
	Seed int64
	// TickInterval is the tick period for Run (default 40 ms — 25 Hz, the
	// first-person-shooter rate of Section V).
	TickInterval time.Duration
	// DeltaUpdates enables RTF's bandwidth optimization for client state
	// updates: protocol v5 StateDelta frames carrying only the field groups
	// that changed since the client's previous update (plus enter records
	// and a removal list for area-of-interest churn), with periodic
	// StateKeyframe full refreshes. Keyframes are forced whenever a client
	// has no valid delta base — join, migration, resync after loss. The
	// client maintains a world cache (client.World). Server-to-server
	// shadow updates remain full refreshes so replicas stay loss-tolerant.
	DeltaUpdates bool
	// KeyframeTicks is the cadence of periodic StateKeyframe refreshes
	// under DeltaUpdates: a client receives a keyframe at least every
	// KeyframeTicks ticks, which bounds how long a desynchronized client
	// (dropped or reordered delta) stays stale. 0 defaults to 32 ticks
	// (~1.3 s at 25 Hz). Ignored without DeltaUpdates.
	KeyframeTicks int
	// Parallelism is the worker count for the embarrassingly-parallel
	// stages of the tick pipeline (frame decode, per-user AoI queries and
	// state-update serialization, and — for applications declaring the
	// ConcurrentSimulator capability — NPC updates). 0 or 1 runs every
	// stage sequentially on the tick goroutine, the original behaviour.
	// Client-visible wire output is byte-identical across Parallelism
	// values and GOMAXPROCS settings; only wall time changes. The model's
	// T(l,n,m,w) describes the effect (model.Par).
	Parallelism int
	// IdleTimeoutTicks evicts users that have not sent any input for this
	// many ticks — the cleanup path for crashed or vanished clients, whose
	// avatars would otherwise haunt the zone forever. 0 disables eviction.
	// At 25 Hz, 250 ticks ≈ 10 s of silence.
	IdleTimeoutTicks uint64
	// Tracer, when set, records a per-task span decomposition of every tick
	// into its bounded ring buffer (exportable as Chrome trace_event JSON
	// via telemetry.TraceHandler — see cmd/roiaserver's /debug/ticktrace).
	// The spans are synthesized from the same Breakdown the Monitor
	// ingests, so tracing adds no extra clock reads to the hot loop.
	Tracer *telemetry.Tracer
	// Profiler, when set, aggregates each tick's task timings into the
	// four model phases (user_input, forwarded_input, npc_update, aoi_su)
	// with per-phase latency distributions. Like the Tracer it reuses the
	// Breakdown already timed for the Monitor — no extra clock reads.
	Profiler *telemetry.TaskProfiler
	// FlightRec, when set, receives one telemetry.TickRecord per tick and
	// freezes a pre/post window around deadline-violating or hiccup ticks
	// into immutable captures (exportable as JSONL via
	// telemetry.FlightRecHandler — see cmd/roiaserver's /debug/flightrec).
	// Like the Tracer it reuses the Breakdown already timed for the
	// Monitor, so recording adds no clock reads to the hot loop.
	FlightRec *telemetry.FlightRecorder
	// Cost, when set, receives the tick pipeline's resource attribution:
	// per-stage heap-allocation deltas and in-tick GC pauses sampled from
	// runtime/metrics at the stage barriers, framed egress bytes per
	// message type and per client, and per-client AoI churn. The tick's
	// GC/alloc totals also ride on every FlightRec TickRecord, so hiccup
	// captures classify whether GC caused the spike (gc_attributed).
	Cost *telemetry.CostTracker
	// MigTrace, when set, records the server's side of every user
	// migration (init on the source, recv/ack on the destination) keyed by
	// the wire-level migration ID, so a fleet collector can stitch the
	// per-replica events into one cross-replica trace
	// (telemetry.StitchMigrations).
	MigTrace *telemetry.MigTracer
	// Events, when set, receives replica-group lifecycle events this
	// server observes locally — currently zone handoffs. Fleet-level
	// events (spawn, drain, stop) are emitted by the fleet that owns the
	// server.
	Events telemetry.FleetEventSink
}

// DefaultAOIRadius is the visibility radius used when Config.AOI is nil.
const DefaultAOIRadius = 50

// user is one connected client.
type user struct {
	id     string
	avatar entity.ID
	seq    uint64 // last input sequence seen
	// lastInput is the tick of the user's most recent input (or join),
	// for idle eviction.
	lastInput uint64
	// prevVis is the ascending-ID visible set of the user's last published
	// update; the publish stage diffs the new set against it to produce
	// enter/leave events (AoI churn) and, under delta updates, the
	// StateDelta's Updates/Enters/Gone columns. Owned by the publish
	// worker handling this user (slot discipline), reused across ticks.
	prevVis []entity.ID
	// lastPub is the tick of the user's last published update; a delta is
	// only valid on an unbroken chain (lastPub == tick-1), anything else
	// forces a keyframe.
	lastPub uint64
	// nextKey is the tick at which the next periodic keyframe is due.
	nextKey uint64
}

// migrationOrder is an instruction (from the resource manager) to move
// users to a target replica.
type migrationOrder struct {
	target string
	count  int
}

// Server is one RTF application server.
type Server struct {
	cfg Config

	mu       sync.Mutex
	store    *entity.Store
	users    map[string]*user
	orders   []migrationOrder
	mon      *monitor.Monitor
	env      *Env
	tick     uint64
	nextID   uint32
	nextMig  uint32
	stopped  bool
	draining bool // true while shutting down: reject joins

	w *wire.Writer // reusable serialization buffer (tick goroutine only)
	// exec runs the tick pipeline's parallel stages; with Parallelism <= 1
	// it degenerates to inline loops on the tick goroutine.
	exec *executor
	// tickBytesOut accumulates sent payload bytes within the current tick
	// for the monitor's traffic counters.
	tickBytesOut int
	// handoffs lists entities whose ownership was just transferred away;
	// they ride along in the next shadow update (they are no longer
	// "active" here, but the new owner must learn of the transfer).
	handoffs []entity.ID
	// detailBuf is a reusable scratch buffer for building event detail
	// strings without fmt on the tick path (tick goroutine only).
	detailBuf []byte
	// frameBuf is the reusable receive buffer the tick's Drain fills;
	// frames are only referenced within the tick that drained them.
	frameBuf []transport.Frame

	// keyframeTicks is Config.KeyframeTicks with the default applied.
	keyframeTicks uint64
	// ob stages every frame the tick produces and flushes them in
	// per-destination batches at the end of the tick (vectored writes on
	// transports that support them).
	ob outbox
	// decodeFn/npcFn/publishFn are the executor stage bodies, bound once at
	// construction: handing run a stored func field instead of a fresh
	// closure keeps the per-tick fan-out allocation-free. Their per-tick
	// inputs live in the server fields below; workers read them while the
	// tick goroutine is parked in run, so the slot discipline still holds.
	decodeFn, npcFn, publishFn func(i int, ctx *workerCtx)
	// Reusable per-tick stage buffers (tick goroutine only): decoded-frame
	// slots, applied inputs, forwarded inputs, removed entities, the NPC
	// active set and result slots, the publish items and their snapshot,
	// sorted user IDs, peer replicas, and the shadow-update entity scratch.
	decBuf     []decodedFrame
	inputsBuf  []decodedInput
	fwdBuf     []*proto.Forwarded
	removedBuf []entity.ID
	npcActive  []*entity.Entity
	npcBuf     []npcResult
	pubItems   []pubItem
	pubSnap    *entity.Snapshot
	pubWorld   []*entity.Entity
	uidBuf     []string
	peersBuf   []string
	suEnts     []entity.Entity
}

// New assembles a server from the configuration. The server is inert until
// Start (or manual Tick calls in tests).
func New(cfg Config) (*Server, error) {
	if cfg.Node == nil {
		return nil, errors.New("server: config needs a transport node")
	}
	if cfg.App == nil {
		return nil, errors.New("server: config needs an application")
	}
	if cfg.Assignment == nil {
		return nil, errors.New("server: config needs a zone assignment")
	}
	if cfg.AOI == nil {
		cfg.AOI = aoi.NewEuclid(DefaultAOIRadius)
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 40 * time.Millisecond
	}
	if cfg.KeyframeTicks <= 0 {
		cfg.KeyframeTicks = 32
	}
	s := &Server{
		cfg:           cfg,
		store:         entity.NewStore(),
		users:         make(map[string]*user),
		mon:           monitor.New(),
		w:             wire.NewWriter(4 << 10),
		exec:          newExecutor(cfg.Parallelism, time.Now),
		keyframeTicks: uint64(cfg.KeyframeTicks),
	}
	s.decodeFn = s.decodeItem
	s.npcFn = s.npcItem
	s.publishFn = s.publishItem
	// The tick interval is the QoS deadline 1/U: a tick that computes
	// longer than its period cannot deliver every user's update in time.
	s.mon.SetDeadline(float64(cfg.TickInterval) / float64(time.Millisecond))
	s.env = &Env{
		ServerID: cfg.Node.ID(),
		Store:    s.store,
		Rand:     rand.New(rand.NewSource(cfg.Seed)),
	}
	return s, nil
}

// ID returns the server's node ID.
func (s *Server) ID() string { return s.cfg.Node.ID() }

// Zone returns the zone this server processes.
func (s *Server) Zone() zone.ID { return s.cfg.Zone }

// Monitor exposes the server's timing monitor.
func (s *Server) Monitor() *monitor.Monitor { return s.mon }

// Tracer exposes the server's tick tracer (nil unless configured).
func (s *Server) Tracer() *telemetry.Tracer { return s.cfg.Tracer }

// FlightRecorder exposes the server's tick flight recorder (nil unless
// configured).
func (s *Server) FlightRecorder() *telemetry.FlightRecorder { return s.cfg.FlightRec }

// MigTrace exposes the server's migration tracer (nil unless configured).
func (s *Server) MigTrace() *telemetry.MigTracer { return s.cfg.MigTrace }

// Profiler exposes the server's phase profiler (nil unless configured).
func (s *Server) Profiler() *telemetry.TaskProfiler { return s.cfg.Profiler }

// CostTracker exposes the server's resource cost tracker (nil unless
// configured).
func (s *Server) CostTracker() *telemetry.CostTracker { return s.cfg.Cost }

// Start registers the server as a replica of its zone. It is idempotent.
func (s *Server) Start() {
	s.cfg.Assignment.AddReplica(s.cfg.Zone, s.ID())
}

// Run starts the real-time loop at the configured tick rate until the
// context is cancelled.
func (s *Server) Run(ctx context.Context) error {
	s.Start()
	ticker := time.NewTicker(s.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			s.Tick()
		}
	}
}

// UserCount reports the number of users connected to this server (its
// active avatars, the model's a).
func (s *Server) UserCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.users)
}

// ZoneUserCount reports the zone-wide user count n: connected users plus
// shadow avatars replicated from peers.
func (s *Server) ZoneUserCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.zoneUsersLocked()
}

func (s *Server) zoneUsersLocked() int {
	n := 0
	for _, e := range s.store.All() {
		if e.Kind == entity.Avatar {
			n++
		}
	}
	return n
}

// Users returns the connected user IDs in deterministic order.
func (s *Server) Users() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.users))
	for id := range s.users {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Entity returns a copy of an entity's current state.
func (s *Server) Entity(id entity.ID) (entity.Entity, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.store.Get(id)
	if !ok {
		return entity.Entity{}, false
	}
	return *e, true
}

// SpawnNPC creates an NPC owned by this server at the given position and
// returns its ID. NPCs spread over replicas via ownership, matching the
// model's assumption that the zone's m NPCs are distributed equally.
func (s *Server) SpawnNPC(pos entity.Vec2) entity.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.allocIDLocked()
	s.store.Put(&entity.Entity{
		ID: id, Kind: entity.NPC, Pos: pos, Health: 100,
		Zone: uint32(s.cfg.Zone), Owner: s.ID(), Seq: 1,
	})
	return id
}

// TransferNPCs reassigns up to count locally-owned NPCs to the target
// replica and reports how many moved. The scalability model assumes the
// zone's m NPCs are distributed equally over the l replicas (the m/l term
// of Eq. 1); the resource manager calls this after replica-set changes to
// keep that assumption true. Ownership propagates with the next shadow
// update.
func (s *Server) TransferNPCs(target string, count int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if count <= 0 || target == s.ID() || !s.cfg.Assignment.IsReplica(s.cfg.Zone, target) {
		return 0
	}
	moved := 0
	for _, npc := range s.store.Active(s.ID(), int(entity.NPC)) {
		if moved >= count {
			break
		}
		npc.Owner = target
		npc.Seq++
		s.handoffs = append(s.handoffs, npc.ID)
		moved++
	}
	return moved
}

// NPCCount reports the number of NPCs this server actively processes.
func (s *Server) NPCCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.CountActive(s.ID(), int(entity.NPC))
}

// MigrateUsers orders the server to hand off count users to the target
// replica. The handoffs are executed during subsequent ticks; the resource
// manager caps count per second using the scalability model's x_max
// thresholds (Eq. 5).
func (s *Server) MigrateUsers(target string, count int) {
	if count <= 0 || target == s.ID() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.orders = append(s.orders, migrationOrder{target: target, count: count})
}

// SetDraining marks the server as shutting down: new joins are rejected
// while remaining users migrate away (used by the resource-removal and
// substitution actions).
func (s *Server) SetDraining(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = on
}

// Draining reports whether the server is refusing new joins.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stop detaches the server from the replica group and closes its node.
func (s *Server) Stop() error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	s.mu.Unlock()
	s.exec.close()
	s.cfg.Assignment.RemoveReplica(s.cfg.Zone, s.ID())
	return s.cfg.Node.Close()
}

// allocIDLocked returns a fresh globally-unique entity ID.
func (s *Server) allocIDLocked() entity.ID {
	s.nextID++
	return entity.ID(uint64(s.cfg.IDPrefix)<<32 | uint64(s.nextID))
}

// allocMigIDLocked returns a fresh globally-unique migration ID, carried in
// the wire-level transfer so both endpoints trace the same migration.
func (s *Server) allocMigIDLocked() uint64 {
	s.nextMig++
	return uint64(s.cfg.IDPrefix)<<32 | uint64(s.nextMig)
}

// send serializes and sends one protocol message. Errors are swallowed:
// RTF transmits asynchronously and a lost frame is repaired by the next
// tick's update.
func (s *Server) send(to string, msg wire.Message) {
	s.sendRaw(to, proto.Registry.Encode(s.w, msg))
}

// sendRaw stages an already-encoded payload in the tick's outbox — the
// publish merge path, where workers encoded state updates into their own
// buffers and the tick goroutine stages them in deterministic user order.
// Must only be called from the tick goroutine (it accumulates the tick's
// byte counter); the payload is copied, so the caller may reuse its buffer
// immediately. Delivery happens in per-destination batches when the tick's
// outbox flushes (end of Tick), preserving per-destination frame order.
//
// Byte accounting uses the framed wire size (transport header + payload),
// mirroring what a TCP peer actually writes, so BytesOut matches BytesIn
// on the receiving end whatever the transport.
func (s *Server) sendRaw(to string, payload []byte) {
	frameBytes := transport.FrameWireBytes(s.ID(), to, len(payload))
	s.tickBytesOut += frameBytes
	if c := s.cfg.Cost; c != nil && len(payload) >= 2 {
		client := ""
		if _, ok := s.users[to]; ok {
			client = to
		}
		c.ObserveEgress(client, egressTypeName(wire.Kind(binary.BigEndian.Uint16(payload))), frameBytes)
	}
	s.ob.stage(to, payload)
}

// egressTypeName maps a wire kind to the message-type label of the
// roia_egress_bytes_total family.
func egressTypeName(k wire.Kind) string {
	switch k {
	case proto.KindJoin:
		return "join"
	case proto.KindJoinAck:
		return "join_ack"
	case proto.KindJoinNack:
		return "join_nack"
	case proto.KindLeave:
		return "leave"
	case proto.KindInput:
		return "input"
	case proto.KindStateUpdate:
		return "state_update"
	case proto.KindShadowUpdate:
		return "shadow_update"
	case proto.KindForwarded:
		return "forwarded"
	case proto.KindMigrateInit:
		return "migrate_init"
	case proto.KindMigrateAck:
		return "migrate_ack"
	case proto.KindMigrateNotice:
		return "migrate_notice"
	case proto.KindStateDelta:
		return "state_delta"
	case proto.KindStateKeyframe:
		return "state_keyframe"
	}
	return "other"
}

func (s *Server) String() string {
	return fmt.Sprintf("server(%s zone=%d users=%d)", s.ID(), s.cfg.Zone, s.UserCount())
}
