package server_test

import (
	"math"
	"testing"

	"roia/internal/game"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

// tracedServer builds a single-replica server with tick tracing enabled
// and one connected client driving load.
func tracedServer(t *testing.T) (*server.Server, *client.Client, *telemetry.Tracer) {
	t.Helper()
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	node, err := net.Attach("s1", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	tracer := telemetry.NewTracer(64)
	srv, err := server.New(server.Config{
		Node:       node,
		Zone:       1,
		Assignment: zone.NewAssignment(),
		App:        game.New(game.DefaultConfig()),
		IDPrefix:   1,
		Seed:       7,
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	cnode, err := net.Attach("c1", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(cnode, "s1")
	if err := cl.Join(1, entity.Vec2{X: 10, Y: 10}, "c1"); err != nil {
		t.Fatal(err)
	}
	return srv, cl, tracer
}

func TestTickTraceRecordsSpans(t *testing.T) {
	srv, cl, tracer := tracedServer(t)
	srv.SpawnNPC(entity.Vec2{X: 12, Y: 12})
	for i := 0; i < 10; i++ {
		srv.Tick()
		cl.Poll()
		if err := cl.SendInput([]byte{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if tracer.Len() == 0 {
		t.Fatal("no traces recorded")
	}
	traces := tracer.Last(0)
	last := traces[len(traces)-1]
	if last.Tick != srv.Monitor().Ticks() {
		t.Fatalf("last trace tick = %d, monitor ticks = %d", last.Tick, srv.Monitor().Ticks())
	}
	if len(last.Spans) == 0 {
		t.Fatal("last trace has no spans")
	}
	// The spans are synthesized from the same Breakdown the monitor
	// ingests, so they must sum exactly to its task total.
	br := srv.Monitor().LastBreakdown()
	if diff := math.Abs(last.TotalMS() - br.Total()); diff > 1e-9 {
		t.Fatalf("trace total %g ms != breakdown total %g ms", last.TotalMS(), br.Total())
	}
	// Wall time covers at least the task time.
	if last.WallMS < last.TotalMS() {
		t.Fatalf("wall %g ms < task total %g ms", last.WallMS, last.TotalMS())
	}
	// Spans are contiguous from 0 in loop order.
	offset := 0.0
	for _, sp := range last.Spans {
		if math.Abs(sp.StartMS-offset) > 1e-9 {
			t.Fatalf("span %s starts at %g, want %g", sp.Name, sp.StartMS, offset)
		}
		offset += sp.DurMS
	}
	// NPC work must show up as a named model parameter.
	found := false
	for _, sp := range last.Spans {
		if sp.Name == "t_npc" && sp.Items == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("t_npc span missing: %+v", last.Spans)
	}
}

func TestTickTraceDisabledByDefault(t *testing.T) {
	c := newCluster(t, 1)
	if c.servers[0].Tracer() != nil {
		t.Fatal("tracer set without configuration")
	}
	c.servers[0].Tick() // must not panic with a nil tracer
}
