package server

import (
	"fmt"
	"testing"

	"roia/internal/rtf/zone"
)

// TestHandoffDetailMatchesFmt pins the hand-rolled formatter to the
// fmt.Sprintf it replaced: the audit text of a zone handoff must not
// change just because the tick path stopped paying for fmt.
func TestHandoffDetailMatchesFmt(t *testing.T) {
	var s Server
	cases := []struct {
		uid    string
		dest   zone.ID
		target string
	}{
		{"user-1", 2, "east-1"},
		{"", 0, ""},
		{"u", 4294967295, "west-12"},
		{"bot-42", 7, "zone-7-replica-3"},
	}
	for _, c := range cases {
		got := s.handoffDetail(c.uid, c.dest, c.target)
		want := fmt.Sprintf("user %s → zone %d (%s)", c.uid, c.dest, c.target)
		if got != want {
			t.Errorf("handoffDetail(%q, %d, %q) = %q, want %q", c.uid, c.dest, c.target, got, want)
		}
	}
}

// TestHandoffDetailReuseKeepsResults checks that reusing the scratch
// buffer does not corrupt strings returned by earlier calls.
func TestHandoffDetailReuseKeepsResults(t *testing.T) {
	var s Server
	first := s.handoffDetail("aaaa", 1, "t1")
	second := s.handoffDetail("bbbb", 22, "t2")
	if first != "user aaaa → zone 1 (t1)" {
		t.Errorf("first result corrupted by reuse: %q", first)
	}
	if second != "user bbbb → zone 22 (t2)" {
		t.Errorf("second result wrong: %q", second)
	}
}
