package server

import (
	"sync"
	"time"

	"roia/internal/rtf/entity"
	"roia/internal/rtf/wire"
)

// workerCtx is the per-worker scratch state of the tick pipeline's
// parallel stages, reused across ticks so the fan-out allocates nothing
// per stage: a serialization buffer for state-update encoding and an AoI
// result buffer. A workerCtx is only ever touched by the one worker it
// belongs to during a run, and by the tick goroutine between runs.
type workerCtx struct {
	w   *wire.Writer
	vis []entity.ID
}

// executor fans the embarrassingly-parallel tick stages (frame decode,
// per-user AoI + state-update serialization, capability-gated NPC updates)
// over a bounded worker pool. Determinism is structural, not accidental:
//
//   - Work item i always writes only slot i of a result slice sized
//     before the fan-out; workers share no mutable state but their own
//     workerCtx.
//   - Items are partitioned into contiguous chunks, so which worker runs
//     an item depends only on (n, workers) — never on scheduling.
//   - All cross-item effects (sends, monitor accounting, store writes)
//     happen in the sequential merge that follows a run, in slice order.
//
// Client-visible wire output is therefore byte-identical for any worker
// count and any GOMAXPROCS, and workers == 1 degenerates to a plain loop
// on the tick goroutine — the seed's sequential behaviour.
//
// Workers must never lock the server mutex (the tick goroutine holds it
// for the whole tick — a worker locking it would deadlock) and must read
// time only through the executor's injected clock; tools/roialint enforces
// both rules on the closures passed to run.
type executor struct {
	workers int
	clock   func() time.Time
	ctxs    []*workerCtx
}

// newExecutor returns an executor with the given worker count (clamped to
// at least 1). clock is the executor's only time source, injected so
// simulated runs stay deterministic and lint-checkable.
func newExecutor(workers int, clock func() time.Time) *executor {
	if workers < 1 {
		workers = 1
	}
	e := &executor{workers: workers, clock: clock}
	e.ctxs = make([]*workerCtx, workers)
	for i := range e.ctxs {
		e.ctxs[i] = &workerCtx{w: wire.NewWriter(4 << 10)}
	}
	return e
}

// parallel reports whether run fans out to more than one goroutine.
func (e *executor) parallel() bool { return e.workers > 1 }

// now reads the injected clock; workers time their items with now/since
// instead of the wall clock.
func (e *executor) now() time.Time { return e.clock() }

// since returns the elapsed time from t0 in the model's millisecond unit.
func (e *executor) since(t0 time.Time) float64 {
	return float64(e.clock().Sub(t0).Nanoseconds()) / 1e6
}

// run invokes fn(i, ctx) for every i in [0, n), partitioned contiguously
// over the worker pool, and returns when all items are done. fn must obey
// the slot discipline documented on executor: write only state owned by
// item i plus the passed workerCtx. With one worker (or n <= 1) everything
// runs inline on the calling goroutine.
func (e *executor) run(n int, fn func(i int, ctx *workerCtx)) {
	if n <= 0 {
		return
	}
	w := e.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		ctx := e.ctxs[0]
		for i := 0; i < n; i++ {
			fn(i, ctx)
		}
		return
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := n*k/w, n*(k+1)/w
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int, ctx *workerCtx) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i, ctx)
			}
		}(lo, hi, e.ctxs[k])
	}
	wg.Wait()
}
