package server

import (
	"sync"
	"time"

	"roia/internal/rtf/entity"
	"roia/internal/rtf/proto"
	"roia/internal/rtf/wire"
)

// workerCtx is the per-worker scratch state of the tick pipeline's
// parallel stages, reused across ticks so the fan-out allocates nothing
// per stage: a serialization buffer for state-update encoding, an AoI
// result buffer, and the delta-publish scratch (masked update records,
// visible-set diff buffers, and a full-entity buffer for keyframes and
// enter records). A workerCtx is only ever touched by the one worker it
// belongs to during a run, and by the tick goroutine between runs.
type workerCtx struct {
	w   *wire.Writer
	vis []entity.ID

	updates []proto.EntityDelta
	enters  []entity.ID
	gone    []entity.ID
	ents    []entity.Entity

	// Reusable message shells: encoding passes the message by interface,
	// so a stack-allocated struct would escape — one heap allocation per
	// user per tick. These live as long as the worker; publishItem fills
	// every field before each encode.
	delta    proto.StateDelta
	keyframe proto.StateKeyframe
	update   proto.StateUpdate
}

// executor fans the embarrassingly-parallel tick stages (frame decode,
// per-user AoI + state-update serialization, capability-gated NPC updates)
// over a bounded worker pool. Determinism is structural, not accidental:
//
//   - Work item i always writes only slot i of a result slice sized
//     before the fan-out; workers share no mutable state but their own
//     workerCtx.
//   - Items are partitioned into contiguous chunks, so which worker runs
//     an item depends only on (n, workers) — never on scheduling.
//   - All cross-item effects (sends, monitor accounting, store writes)
//     happen in the sequential merge that follows a run, in slice order.
//
// Client-visible wire output is therefore byte-identical for any worker
// count and any GOMAXPROCS, and workers == 1 degenerates to a plain loop
// on the tick goroutine — the seed's sequential behaviour.
//
// The pool is persistent: worker goroutines are spawned once at
// construction and parked on per-worker wake channels between runs, so a
// run costs two channel operations per worker instead of a goroutine spawn
// (and the closure allocation that came with it). close releases the pool;
// Server.Stop calls it.
//
// Workers must never lock the server mutex (the tick goroutine holds it
// for the whole tick — a worker locking it would deadlock) and must read
// time only through the executor's injected clock; tools/roialint enforces
// both rules on the closures passed to run.
type executor struct {
	workers int
	clock   func() time.Time
	ctxs    []*workerCtx

	// Per-run state, written by run before waking any worker (the wake
	// send is the happens-before edge) and read-only while workers are
	// live; wg joins the run.
	fn     func(i int, ctx *workerCtx)
	n      int
	active int
	wg     sync.WaitGroup
	wake   []chan struct{}
	stopc  chan struct{}
}

// newExecutor returns an executor with the given worker count (clamped to
// at least 1). clock is the executor's only time source, injected so
// simulated runs stay deterministic and lint-checkable.
func newExecutor(workers int, clock func() time.Time) *executor {
	if workers < 1 {
		workers = 1
	}
	e := &executor{workers: workers, clock: clock}
	e.ctxs = make([]*workerCtx, workers)
	for i := range e.ctxs {
		e.ctxs[i] = &workerCtx{w: wire.NewWriter(4 << 10)}
	}
	if workers > 1 {
		e.stopc = make(chan struct{})
		e.wake = make([]chan struct{}, workers)
		for k := range e.wake {
			e.wake[k] = make(chan struct{}, 1)
			go e.worker(k)
		}
	}
	return e
}

// worker is the loop of pool worker k: park until woken, process the
// contiguous chunk k of the current run, signal completion, repeat until
// close. Chunk bounds depend only on (n, active), preserving the
// deterministic partition of the spawn-per-run predecessor.
func (e *executor) worker(k int) {
	for {
		select {
		case <-e.stopc:
			return
		case <-e.wake[k]:
			w := e.active
			fn := e.fn
			ctx := e.ctxs[k]
			for i := e.n * k / w; i < e.n*(k+1)/w; i++ {
				fn(i, ctx)
			}
			e.wg.Done()
		}
	}
}

// parallel reports whether run fans out to more than one goroutine.
func (e *executor) parallel() bool { return e.workers > 1 }

// now reads the injected clock; workers time their items with now/since
// instead of the wall clock.
func (e *executor) now() time.Time { return e.clock() }

// since returns the elapsed time from t0 in the model's millisecond unit.
func (e *executor) since(t0 time.Time) float64 {
	return float64(e.clock().Sub(t0).Nanoseconds()) / 1e6
}

// run invokes fn(i, ctx) for every i in [0, n), partitioned contiguously
// over the worker pool, and returns when all items are done. fn must obey
// the slot discipline documented on executor: write only state owned by
// item i plus the passed workerCtx. With one worker (or n <= 1) everything
// runs inline on the calling goroutine.
func (e *executor) run(n int, fn func(i int, ctx *workerCtx)) {
	if n <= 0 {
		return
	}
	w := e.workers
	if w > n {
		w = n // every chunk non-empty
	}
	if w <= 1 {
		ctx := e.ctxs[0]
		for i := 0; i < n; i++ {
			fn(i, ctx)
		}
		return
	}
	e.n, e.fn, e.active = n, fn, w
	e.wg.Add(w)
	for k := 0; k < w; k++ {
		e.wake[k] <- struct{}{}
	}
	e.wg.Wait()
	e.fn = nil
}

// close releases the pool's worker goroutines. Idempotence is the caller's
// concern (Server.Stop already runs once); run must not be called after.
func (e *executor) close() {
	if e.stopc != nil {
		close(e.stopc)
	}
}
