package server_test

import (
	"fmt"
	"testing"
	"time"

	"roia/internal/bots"
	"roia/internal/game"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
)

// TestTCPEndToEnd runs the full networked deployment path of
// cmd/roiaserver + cmd/roiabot inside one test: two replicas over real TCP
// sockets, bots generating load, replication traffic between servers, and
// a model-ordered migration with the client following its handoff.
func TestTCPEndToEnd(t *testing.T) {
	net := transport.NewTCP()
	asg := zone.NewAssignment()
	servers := make([]*server.Server, 2)
	for i := range servers {
		node, err := net.Attach(fmt.Sprintf("s%d", i+1), 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Node:       node,
			Zone:       1,
			Assignment: asg,
			App:        game.New(game.DefaultConfig()),
			IDPrefix:   uint16(i + 1),
			Seed:       int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		servers[i] = srv
		t.Cleanup(func() { srv.Stop() })
	}

	const nBots = 6
	swarm := make([]*bots.Bot, nBots)
	for i := range swarm {
		node, err := net.Attach(fmt.Sprintf("c%d", i+1), 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		cl := client.New(node, servers[i%2].ID())
		if err := cl.Join(1, entity.Vec2{X: float64(100 + 5*i), Y: 100}, node.ID()); err != nil {
			t.Fatal(err)
		}
		swarm[i] = bots.New(cl, bots.DefaultProfile(), int64(i+1))
	}

	// TCP delivery is asynchronous: tick until all bots joined and each
	// server replicates the full population.
	deadline := time.Now().Add(10 * time.Second)
	step := func() {
		for _, s := range servers {
			s.Tick()
		}
		for _, b := range swarm {
			b.Step()
		}
		time.Sleep(time.Millisecond)
	}
	for {
		step()
		allJoined := true
		for _, b := range swarm {
			if !b.Client().Joined() {
				allJoined = false
			}
		}
		if allJoined && servers[0].ZoneUserCount() == nBots && servers[1].ZoneUserCount() == nBots {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged: joined=%v zone=%d/%d",
				allJoined, servers[0].ZoneUserCount(), servers[1].ZoneUserCount())
		}
	}

	// Load flows: bots send inputs, servers measure the model parameters.
	for i := 0; i < 30; i++ {
		step()
	}
	for i, s := range servers {
		if s.Monitor().MeanTick() <= 0 {
			t.Fatalf("server %d measured no tick time", i+1)
		}
		if s.Monitor().LastBreakdown().BytesIn == 0 {
			t.Fatalf("server %d saw no inbound traffic", i+1)
		}
	}

	// Migrate one user from s1 to s2 over TCP and verify the handoff.
	before := servers[1].UserCount()
	servers[0].MigrateUsers("s2", 1)
	deadline = time.Now().Add(10 * time.Second)
	for servers[1].UserCount() != before+1 {
		step()
		if time.Now().After(deadline) {
			t.Fatalf("migration never completed over TCP: s2 users=%d", servers[1].UserCount())
		}
	}
	migrated := 0
	for _, b := range swarm {
		migrated += b.Client().Migrations()
	}
	if migrated != 1 {
		t.Fatalf("clients followed %d migrations, want 1", migrated)
	}
	// The migrated client keeps receiving updates from its new server.
	for i := 0; i < 10; i++ {
		step()
	}
	for _, b := range swarm {
		if b.Client().Server() == "s2" && b.Client().Updates() == 0 {
			t.Fatal("migrated client receives no updates")
		}
	}
}
