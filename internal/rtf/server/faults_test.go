package server_test

import (
	"fmt"
	"testing"

	"roia/internal/game"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
)

// lossyCluster builds a two-server replica group whose inter-node links
// drop the given fraction of frames.
func lossyCluster(t *testing.T, rate float64) (*transport.Loopback, []*server.Server, *zone.Assignment) {
	t.Helper()
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	asg := zone.NewAssignment()
	servers := make([]*server.Server, 2)
	for i := range servers {
		raw, err := net.Attach(fmt.Sprintf("s%d", i+1), 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		node := transport.NewLossy(raw, rate, int64(100+i))
		srv, err := server.New(server.Config{
			Node:       node,
			Zone:       1,
			Assignment: asg,
			App:        game.New(game.DefaultConfig()),
			IDPrefix:   uint16(i + 1),
			Seed:       int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		servers[i] = srv
	}
	return net, servers, asg
}

func TestShadowStateConvergesDespiteFrameLoss(t *testing.T) {
	// 30 % of every server's outbound frames vanish. Because shadow
	// updates are full-state refreshes guarded by sequence numbers, the
	// replicas must still converge on entity positions.
	net, servers, _ := lossyCluster(t, 0.3)
	node, err := net.Attach("c1", 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(node, "s1")
	if err := cl.Join(1, entity.Vec2{X: 100, Y: 100}, "c1"); err != nil {
		t.Fatal(err)
	}
	// Joins may be dropped too: retry until acknowledged.
	for i := 0; i < 100 && !cl.Joined(); i++ {
		servers[0].Tick()
		servers[1].Tick()
		cl.Poll()
		if !cl.Joined() && i%10 == 9 {
			_ = cl.Join(1, entity.Vec2{X: 100, Y: 100}, "c1")
		}
	}
	if !cl.Joined() {
		t.Fatal("client never joined through the lossy link")
	}

	// Move repeatedly; both replicas must track the final position.
	for i := 0; i < 60; i++ {
		_ = cl.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 2, DY: 0}))
		servers[0].Tick()
		servers[1].Tick()
		cl.Poll()
	}
	// Quiesce: no new inputs, let refreshes flow through the lossy link.
	for i := 0; i < 50; i++ {
		servers[0].Tick()
		servers[1].Tick()
	}
	authoritative, ok := servers[0].Entity(cl.Avatar())
	if !ok {
		t.Fatal("avatar missing on its server")
	}
	if authoritative.Pos.X <= 100 {
		t.Fatal("moves were all lost — loss rate too destructive for the test")
	}
	shadow, ok := servers[1].Entity(cl.Avatar())
	if !ok {
		t.Fatal("shadow copy never arrived through the lossy link")
	}
	if shadow.Pos != authoritative.Pos {
		t.Fatalf("replicas diverged: authoritative %v vs shadow %v", authoritative.Pos, shadow.Pos)
	}
}

func TestLossyDropAccounting(t *testing.T) {
	net := transport.NewLoopback()
	defer net.Close()
	raw, _ := net.Attach("a", 16)
	_, _ = net.Attach("b", 1<<12)
	l := transport.NewLossy(raw, 0.5, 42)
	for i := 0; i < 200; i++ {
		if err := l.Send("b", []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	dropped, sent := l.Stats()
	if dropped+sent != 200 {
		t.Fatalf("accounting broken: %d + %d", dropped, sent)
	}
	if dropped < 60 || dropped > 140 {
		t.Fatalf("drop rate implausible for p=0.5: %d/200", dropped)
	}
	if l.ID() != "a" {
		t.Fatal("ID not forwarded")
	}
}

func TestLossyRateClamping(t *testing.T) {
	net := transport.NewLoopback()
	defer net.Close()
	raw, _ := net.Attach("a", 16)
	_, _ = net.Attach("b", 1<<12)
	never := transport.NewLossy(raw, -1, 1)
	for i := 0; i < 50; i++ {
		_ = never.Send("b", []byte{1})
	}
	if d, _ := never.Stats(); d != 0 {
		t.Fatalf("rate<0 dropped %d frames", d)
	}
	raw2, _ := net.Attach("c", 16)
	always := transport.NewLossy(raw2, 2, 1)
	for i := 0; i < 50; i++ {
		_ = always.Send("b", []byte{1})
	}
	if _, s := always.Stats(); s != 0 {
		t.Fatalf("rate>1 delivered %d frames", s)
	}
}
