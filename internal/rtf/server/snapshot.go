package server

import (
	"errors"
	"fmt"

	"roia/internal/rtf/entity"
	"roia/internal/rtf/wire"
)

// snapshotMagic guards against restoring arbitrary payloads.
const snapshotMagic = uint32(0x52544653) // "RTFS"

// Snapshot serializes this server's full replica of the zone state — every
// entity plus the tick counter — for crash recovery or for moving a zone
// to a fresh process. Because replication keeps a complete copy of the
// zone on every replica, any replica's snapshot can restore the whole
// zone.
func (s *Server) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := wire.NewWriter(4 << 10)
	w.Uint32(snapshotMagic)
	w.Uint64(s.tick)
	w.Uint32(uint32(s.cfg.Zone))
	all := s.store.All()
	w.Uvarint(uint64(len(all)))
	for _, e := range all {
		e.MarshalWire(w)
	}
	return append([]byte(nil), w.Bytes()...)
}

// RestoreSnapshot installs a snapshot into this (fresh) server: the tick
// counter resumes past the snapshot's and all entities are adopted into
// the local store with their recorded owners. Call AdoptEntities
// afterwards to take over the entities a failed server owned. Restoring
// into a server that already holds state is refused.
func (s *Server) RestoreSnapshot(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store.Len() > 0 || len(s.users) > 0 {
		return errors.New("server: restore into a non-empty server")
	}
	r := wire.NewReader(data)
	if r.Uint32() != snapshotMagic {
		return errors.New("server: not a snapshot payload")
	}
	tick := r.Uint64()
	zoneID := r.Uint32()
	if err := r.Err(); err != nil {
		return fmt.Errorf("server: snapshot header: %w", err)
	}
	if zoneID != uint32(s.cfg.Zone) {
		return fmt.Errorf("server: snapshot is for zone %d, this server processes zone %d", zoneID, s.cfg.Zone)
	}
	count := r.Uvarint()
	if r.Err() != nil {
		return fmt.Errorf("server: snapshot count: %w", r.Err())
	}
	if count > uint64(r.Remaining()) {
		return errors.New("server: snapshot declares more entities than payload holds")
	}
	for i := uint64(0); i < count; i++ {
		var e entity.Entity
		if err := e.UnmarshalWire(r); err != nil {
			return fmt.Errorf("server: snapshot entity %d: %w", i, err)
		}
		s.store.Put(e.Clone())
	}
	if tick >= s.tick {
		s.tick = tick + 1
	}
	return nil
}

// AdoptEntities takes ownership of every entity owned by failedID — the
// recovery step after a replica crash: a surviving (or freshly restored)
// replica adopts the dead server's active entities so they keep being
// processed. Adopted avatars have no connection; their users re-join (or
// idle eviction reaps them). It returns the number of adopted entities.
func (s *Server) AdoptEntities(failedID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if failedID == s.ID() {
		return 0
	}
	adopted := 0
	for _, e := range s.store.All() {
		if e.Owner == failedID {
			e.Owner = s.ID()
			e.Seq++
			adopted++
		}
	}
	return adopted
}
