package server_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"roia/internal/game"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/monitor"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
)

// cluster is an in-process RTF deployment for integration tests.
type cluster struct {
	net        *transport.Loopback
	assignment *zone.Assignment
	servers    []*server.Server
	games      []*game.Game
	clients    []*client.Client
}

func newCluster(t *testing.T, nServers int) *cluster {
	t.Helper()
	c := &cluster{
		net:        transport.NewLoopback(),
		assignment: zone.NewAssignment(),
	}
	t.Cleanup(func() { c.net.Close() })
	for i := 0; i < nServers; i++ {
		node, err := c.net.Attach(fmt.Sprintf("s%d", i+1), 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		g := game.New(game.DefaultConfig())
		srv, err := server.New(server.Config{
			Node:       node,
			Zone:       1,
			Assignment: c.assignment,
			App:        g,
			IDPrefix:   uint16(i + 1),
			Seed:       int64(1000 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		c.servers = append(c.servers, srv)
		c.games = append(c.games, g)
	}
	return c
}

// addClient attaches a client pointed at the given server and joins it.
func (c *cluster) addClient(t *testing.T, serverIdx int, pos entity.Vec2) *client.Client {
	t.Helper()
	id := fmt.Sprintf("c%d", len(c.clients)+1)
	node, err := c.net.Attach(id, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(node, c.servers[serverIdx].ID())
	if err := cl.Join(1, pos, id); err != nil {
		t.Fatal(err)
	}
	c.clients = append(c.clients, cl)
	return cl
}

// tickAll runs one tick on every server, then polls every client.
func (c *cluster) tickAll() {
	for _, s := range c.servers {
		s.Tick()
	}
	for _, cl := range c.clients {
		cl.Poll()
	}
}

func TestJoinFlow(t *testing.T) {
	c := newCluster(t, 1)
	cl := c.addClient(t, 0, entity.Vec2{X: 10, Y: 10})
	c.tickAll()
	if !cl.Joined() {
		t.Fatal("join not acknowledged")
	}
	if cl.Avatar() == 0 {
		t.Fatal("no avatar assigned")
	}
	if got := c.servers[0].UserCount(); got != 1 {
		t.Fatalf("UserCount = %d, want 1", got)
	}
	// A second join from the same client is ignored.
	if err := cl.Join(1, entity.Vec2{}, "dup"); err != nil {
		t.Fatal(err)
	}
	c.tickAll()
	if got := c.servers[0].UserCount(); got != 1 {
		t.Fatalf("UserCount after dup join = %d, want 1", got)
	}
}

func TestMoveCommandUpdatesPosition(t *testing.T) {
	c := newCluster(t, 1)
	cl := c.addClient(t, 0, entity.Vec2{X: 100, Y: 100})
	c.tickAll()
	if err := cl.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 3, DY: -2})); err != nil {
		t.Fatal(err)
	}
	c.tickAll()
	e, ok := c.servers[0].Entity(cl.Avatar())
	if !ok {
		t.Fatal("avatar missing")
	}
	if e.Pos != (entity.Vec2{X: 103, Y: 98}) {
		t.Fatalf("pos = %v, want (103,98)", e.Pos)
	}
	// The client's state update reflects the move.
	upd := cl.LastUpdate()
	if upd == nil || upd.Self.Pos != (entity.Vec2{X: 103, Y: 98}) {
		t.Fatalf("client update = %+v", upd)
	}
}

func TestMoveSpeedClamped(t *testing.T) {
	c := newCluster(t, 1)
	cl := c.addClient(t, 0, entity.Vec2{X: 100, Y: 100})
	c.tickAll()
	cl.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 1000, DY: 1000}))
	c.tickAll()
	e, _ := c.servers[0].Entity(cl.Avatar())
	if e.Pos != (entity.Vec2{X: 105, Y: 105}) { // MoveSpeed = 5
		t.Fatalf("pos = %v, want clamped (105,105)", e.Pos)
	}
}

func TestReplicationShadowEntities(t *testing.T) {
	c := newCluster(t, 2)
	c.addClient(t, 0, entity.Vec2{X: 10, Y: 10})
	c.addClient(t, 1, entity.Vec2{X: 20, Y: 20})
	c.tickAll() // joins processed, shadow updates sent
	c.tickAll() // shadow updates applied
	for i, s := range c.servers {
		if got := s.ZoneUserCount(); got != 2 {
			t.Fatalf("server %d sees %d zone users, want 2", i+1, got)
		}
		if got := s.UserCount(); got != 1 {
			t.Fatalf("server %d has %d connected users, want 1", i+1, got)
		}
	}
}

func TestForwardedAttackAcrossReplicas(t *testing.T) {
	c := newCluster(t, 2)
	attacker := c.addClient(t, 0, entity.Vec2{X: 100, Y: 100})
	victim := c.addClient(t, 1, entity.Vec2{X: 120, Y: 100}) // within range 60
	c.tickAll()
	c.tickAll() // both servers now see both avatars

	// Attacker fires along +X, straight at the victim's shadow entity.
	attacker.SendInput(game.Commands.EncodeToBytes(&game.Attack{DirX: 1, DirY: 0}))
	c.tickAll() // s1 applies attack, emits Forwarded to s2
	c.tickAll() // s2 applies forwarded damage

	e, ok := c.servers[1].Entity(victim.Avatar())
	if !ok {
		t.Fatal("victim missing on its own server")
	}
	if e.Health != 90 {
		t.Fatalf("victim health = %d, want 90", e.Health)
	}
	// The victim's client learns about the hit via events.
	if ev := victim.DrainEvents(); len(ev) == 0 {
		t.Fatal("victim received no hit event")
	}
}

func TestRespawnAfterLethalDamage(t *testing.T) {
	c := newCluster(t, 1)
	attacker := c.addClient(t, 0, entity.Vec2{X: 100, Y: 100})
	victim := c.addClient(t, 0, entity.Vec2{X: 110, Y: 100})
	c.tickAll()
	// 10 damage per hit, 100 health: 10 hits kill.
	for i := 0; i < 10; i++ {
		attacker.SendInput(game.Commands.EncodeToBytes(&game.Attack{DirX: 1, DirY: 0}))
		c.tickAll()
	}
	e, _ := c.servers[0].Entity(victim.Avatar())
	if e.Health != 100 {
		t.Fatalf("victim health = %d, want respawned at 100", e.Health)
	}
	if _, deaths, ok := c.games[0].Score(victim.Avatar()); !ok || deaths == 0 {
		t.Fatalf("victim deaths not recorded (ok=%v deaths=%d)", ok, deaths)
	}
}

func TestUserMigration(t *testing.T) {
	c := newCluster(t, 2)
	cl := c.addClient(t, 0, entity.Vec2{X: 10, Y: 10})
	c.tickAll()
	c.tickAll()
	avatar := cl.Avatar()

	c.servers[0].MigrateUsers("s2", 1)
	c.tickAll() // s1 initiates, client notified
	c.tickAll() // s2 receives MigrateInit

	if got := cl.Server(); got != "s2" {
		t.Fatalf("client server = %q, want s2", got)
	}
	if cl.Migrations() != 1 {
		t.Fatalf("client migrations = %d, want 1", cl.Migrations())
	}
	if got := c.servers[0].UserCount(); got != 0 {
		t.Fatalf("source still has %d users", got)
	}
	if got := c.servers[1].UserCount(); got != 1 {
		t.Fatalf("target has %d users, want 1", got)
	}
	e, ok := c.servers[1].Entity(avatar)
	if !ok || e.Owner != "s2" {
		t.Fatalf("avatar ownership not transferred: %+v ok=%v", e, ok)
	}
	// The client keeps playing against the new server.
	cl.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 5, DY: 0}))
	c.tickAll()
	e, _ = c.servers[1].Entity(avatar)
	if e.Pos.X != 15 {
		t.Fatalf("post-migration move ignored: %v", e.Pos)
	}
}

func TestMigrationPreservesAppState(t *testing.T) {
	c := newCluster(t, 2)
	attacker := c.addClient(t, 0, entity.Vec2{X: 100, Y: 100})
	c.addClient(t, 0, entity.Vec2{X: 110, Y: 100})
	c.tickAll()
	attacker.SendInput(game.Commands.EncodeToBytes(&game.Attack{DirX: 1, DirY: 0}))
	c.tickAll()
	kills, _, ok := c.games[0].Score(attacker.Avatar())
	if !ok || kills == 0 {
		t.Fatalf("no kills recorded before migration (ok=%v)", ok)
	}

	c.servers[0].MigrateUsers("s2", 2)
	c.tickAll()
	c.tickAll()
	gotKills, _, ok := c.games[1].Score(attacker.Avatar())
	if !ok {
		t.Fatal("app state not installed on target")
	}
	if gotKills != kills {
		t.Fatalf("kills after migration = %d, want %d", gotKills, kills)
	}
	// And the source dropped its copy.
	if _, _, ok := c.games[0].Score(attacker.Avatar()); ok {
		t.Fatal("source retained app state after migration")
	}
}

func TestMigrationToUnknownTargetIsDropped(t *testing.T) {
	c := newCluster(t, 1)
	c.addClient(t, 0, entity.Vec2{X: 1, Y: 1})
	c.tickAll()
	c.servers[0].MigrateUsers("ghost", 1)
	c.tickAll()
	if got := c.servers[0].UserCount(); got != 1 {
		t.Fatalf("user lost to unknown target: count = %d", got)
	}
}

func TestLeaveRemovesEverywhere(t *testing.T) {
	c := newCluster(t, 2)
	cl := c.addClient(t, 0, entity.Vec2{X: 10, Y: 10})
	c.addClient(t, 1, entity.Vec2{X: 20, Y: 20})
	c.tickAll()
	c.tickAll()
	avatar := cl.Avatar()
	if err := cl.Leave(); err != nil {
		t.Fatal(err)
	}
	c.tickAll() // s1 removes, propagates removal
	c.tickAll() // s2 applies removal
	if _, ok := c.servers[0].Entity(avatar); ok {
		t.Fatal("avatar still on own server after leave")
	}
	if _, ok := c.servers[1].Entity(avatar); ok {
		t.Fatal("shadow avatar not removed on peer")
	}
}

func TestDrainingRejectsJoins(t *testing.T) {
	c := newCluster(t, 1)
	c.servers[0].SetDraining(true)
	cl := c.addClient(t, 0, entity.Vec2{})
	c.tickAll()
	c.tickAll()
	if cl.Joined() {
		t.Fatal("join accepted while draining")
	}
	if got := c.servers[0].UserCount(); got != 0 {
		t.Fatalf("draining server admitted %d users", got)
	}
	// With no peer replica to redirect to, the rejection is explicit: the
	// client must receive a JoinNack rather than silence.
	if got := cl.JoinNacks(); got != 1 {
		t.Fatalf("JoinNacks = %d, want 1", got)
	}
}

func TestDrainingRedirectsJoinToPeer(t *testing.T) {
	c := newCluster(t, 2)
	c.servers[0].SetDraining(true)
	cl := c.addClient(t, 0, entity.Vec2{X: 5, Y: 5})
	c.tickAll() // s1 answers the join with a redirect to its peer
	c.tickAll() // client re-joins at s2, which acks
	c.tickAll()
	if !cl.Joined() {
		t.Fatal("redirected join never acknowledged")
	}
	if got := cl.Server(); got != c.servers[1].ID() {
		t.Fatalf("client connected to %q, want %q", got, c.servers[1].ID())
	}
	if got := c.servers[0].UserCount(); got != 0 {
		t.Fatalf("draining server admitted %d users", got)
	}
	if got := c.servers[1].UserCount(); got != 1 {
		t.Fatalf("peer admitted %d users, want 1", got)
	}
	if got := cl.JoinNacks(); got != 0 {
		t.Fatalf("redirect produced %d nacks, want 0", got)
	}
}

func TestMonitorRecordsModelParameters(t *testing.T) {
	c := newCluster(t, 2)
	a := c.addClient(t, 0, entity.Vec2{X: 100, Y: 100})
	c.addClient(t, 1, entity.Vec2{X: 110, Y: 100})
	c.tickAll()
	c.tickAll()
	for i := 0; i < 5; i++ {
		a.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 1, DY: 0}))
		a.SendInput(game.Commands.EncodeToBytes(&game.Attack{DirX: 1, DirY: 0}))
		c.tickAll()
	}
	mon := c.servers[0].Monitor()
	if mon.Ticks() == 0 {
		t.Fatal("no ticks recorded")
	}
	lb := mon.LastBreakdown()
	if lb.Users != 2 || lb.ActiveUsers != 1 || lb.Replicas != 2 {
		t.Fatalf("breakdown workload wrong: %+v", lb)
	}
	if s := mon.TaskSummary(monitor.UADeser); s.Count == 0 {
		t.Fatal("t_ua_dser never measured")
	}
	if s := mon.TaskSummary(monitor.UA); s.Count == 0 {
		t.Fatal("t_ua never measured")
	}
	if s := mon.TaskSummary(monitor.SU); s.Count == 0 {
		t.Fatal("t_su never measured")
	}
	// Shadow traffic from the peer must have been measured as t_fa_dser.
	if s := mon.TaskSummary(monitor.FADeser); s.Count == 0 {
		t.Fatal("t_fa_dser never measured")
	}
}

func TestNPCWandersAndReplicates(t *testing.T) {
	c := newCluster(t, 2)
	id := c.servers[0].SpawnNPC(entity.Vec2{X: 500, Y: 500})
	start, _ := c.servers[0].Entity(id)
	c.tickAll()
	c.tickAll()
	moved, ok := c.servers[0].Entity(id)
	if !ok {
		t.Fatal("NPC vanished")
	}
	if moved.Pos == start.Pos {
		t.Fatal("NPC never moved")
	}
	// The peer replica received the NPC as a shadow entity.
	shadow, ok := c.servers[1].Entity(id)
	if !ok {
		t.Fatal("NPC not replicated to peer")
	}
	if shadow.Owner != "s1" {
		t.Fatalf("NPC shadow owner = %q", shadow.Owner)
	}
}

func TestNPCAttacksUserOnRemoteReplica(t *testing.T) {
	c := newCluster(t, 2)
	victim := c.addClient(t, 1, entity.Vec2{X: 505, Y: 500}) // connects to s2
	c.tickAll()
	c.tickAll() // s1 now has the victim as a shadow entity
	// NPC owned by s1, right next to the victim's shadow.
	c.servers[0].SpawnNPC(entity.Vec2{X: 500, Y: 500})

	start, _ := c.servers[1].Entity(victim.Avatar())
	for i := 0; i < 120; i++ {
		c.tickAll()
		if e, ok := c.servers[1].Entity(victim.Avatar()); ok && e.Health < start.Health {
			return // forwarded NPC damage arrived on the victim's server
		}
	}
	t.Fatal("NPC attack never reached the user's replica")
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []entity.Vec2 {
		c := newCluster(t, 2)
		for i := 0; i < 6; i++ {
			c.addClient(t, i%2, entity.Vec2{X: float64(50 + i*10), Y: 100})
		}
		c.servers[0].SpawnNPC(entity.Vec2{X: 200, Y: 200})
		c.tickAll()
		for step := 0; step < 20; step++ {
			for ci, cl := range c.clients {
				cl.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: float64(ci%3 - 1), DY: 1}))
				if step%3 == ci%3 {
					cl.SendInput(game.Commands.EncodeToBytes(&game.Attack{DirX: 1, DirY: 0}))
				}
			}
			c.tickAll()
		}
		var out []entity.Vec2
		for _, cl := range c.clients {
			for si := range c.servers {
				if e, ok := c.servers[si].Entity(cl.Avatar()); ok && e.Owner == c.servers[si].ID() {
					out = append(out, e.Pos)
					break
				}
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at avatar %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestServerStopDetaches(t *testing.T) {
	c := newCluster(t, 2)
	if got := c.assignment.ReplicaCount(1); got != 2 {
		t.Fatalf("replica count = %d", got)
	}
	if err := c.servers[1].Stop(); err != nil {
		t.Fatal(err)
	}
	if got := c.assignment.ReplicaCount(1); got != 1 {
		t.Fatalf("replica count after stop = %d", got)
	}
	// Stopping twice is safe; ticking a stopped server is a no-op.
	if err := c.servers[1].Stop(); err != nil {
		t.Fatal(err)
	}
	c.servers[1].Tick()
}

func TestServerAccessorsAndRunLoop(t *testing.T) {
	c := newCluster(t, 1)
	srv := c.servers[0]
	if srv.Zone() != 1 {
		t.Fatalf("Zone = %d", srv.Zone())
	}
	if !strings.Contains(srv.String(), "s1") {
		t.Fatalf("String = %q", srv.String())
	}
	cl := c.addClient(t, 0, entity.Vec2{X: 1, Y: 1})
	c.tickAll()
	if got := srv.Users(); len(got) != 1 || got[0] != cl.ID() {
		t.Fatalf("Users = %v", got)
	}
	if srv.Draining() {
		t.Fatal("fresh server draining")
	}

	// Run drives the tick loop until the context is cancelled.
	before := srv.Monitor().Ticks()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	deadline := time.After(5 * time.Second)
	for srv.Monitor().Ticks() < before+2 {
		select {
		case <-deadline:
			t.Fatal("Run never ticked")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

func TestConfigValidation(t *testing.T) {
	net := transport.NewLoopback()
	defer net.Close()
	node, _ := net.Attach("s", 8)
	asg := zone.NewAssignment()
	g := game.New(game.DefaultConfig())
	if _, err := server.New(server.Config{Zone: 1, Assignment: asg, App: g}); err == nil {
		t.Fatal("nil node accepted")
	}
	if _, err := server.New(server.Config{Node: node, Zone: 1, Assignment: asg}); err == nil {
		t.Fatal("nil app accepted")
	}
	if _, err := server.New(server.Config{Node: node, Zone: 1, App: g}); err == nil {
		t.Fatal("nil assignment accepted")
	}
}
