package server_test

import (
	"testing"

	"roia/internal/game"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
)

// evictionCluster builds two replicas with a short idle timeout.
func evictionCluster(t *testing.T, timeout uint64) (*transport.Loopback, []*server.Server) {
	t.Helper()
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	asg := zone.NewAssignment()
	servers := make([]*server.Server, 2)
	for i := range servers {
		node, err := net.Attach([]string{"e1", "e2"}[i], 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Node:             node,
			Zone:             1,
			Assignment:       asg,
			App:              game.New(game.DefaultConfig()),
			IDPrefix:         uint16(i + 1),
			Seed:             int64(i + 1),
			IdleTimeoutTicks: timeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		servers[i] = srv
	}
	return net, servers
}

func TestIdleClientEvicted(t *testing.T) {
	net, servers := evictionCluster(t, 10)
	node, _ := net.Attach("quiet", 1<<14)
	quiet := client.New(node, "e1")
	_ = quiet.Join(1, entity.Vec2{X: 10, Y: 10}, "quiet")

	node2, _ := net.Attach("chatty", 1<<14)
	chatty := client.New(node2, "e1")
	_ = chatty.Join(1, entity.Vec2{X: 20, Y: 20}, "chatty")

	step := func() {
		servers[0].Tick()
		servers[1].Tick()
		quiet.Poll()
		chatty.Poll()
	}
	step()
	if !quiet.Joined() || !chatty.Joined() {
		t.Fatal("joins failed")
	}
	quietAvatar := quiet.Avatar()

	// The chatty client keeps sending; the quiet one goes silent.
	for i := 0; i < 25; i++ {
		_ = chatty.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 1, DY: 0}))
		step()
	}
	if got := servers[0].UserCount(); got != 1 {
		t.Fatalf("server has %d users, want only the chatty one", got)
	}
	if _, ok := servers[0].Entity(quietAvatar); ok {
		t.Fatal("idle avatar not removed")
	}
	// The eviction propagated to the peer replica.
	if _, ok := servers[1].Entity(quietAvatar); ok {
		t.Fatal("idle avatar still shadowed on peer")
	}
	// The chatty client is untouched.
	if _, ok := servers[0].Entity(chatty.Avatar()); !ok {
		t.Fatal("active client was evicted")
	}
}

func TestEvictionDisabledByDefault(t *testing.T) {
	net, servers := evictionCluster(t, 0)
	node, _ := net.Attach("quiet", 1<<14)
	quiet := client.New(node, "e1")
	_ = quiet.Join(1, entity.Vec2{X: 10, Y: 10}, "quiet")
	for i := 0; i < 40; i++ {
		servers[0].Tick()
	}
	if got := servers[0].UserCount(); got != 1 {
		t.Fatalf("user evicted with eviction disabled: %d users", got)
	}
}

func TestInputsResetIdleTimer(t *testing.T) {
	net, servers := evictionCluster(t, 10)
	node, _ := net.Attach("c", 1<<14)
	cl := client.New(node, "e1")
	_ = cl.Join(1, entity.Vec2{X: 10, Y: 10}, "c")
	servers[0].Tick()
	cl.Poll()
	// Send one input every 8 ticks — always inside the 10-tick window.
	for i := 0; i < 50; i++ {
		if i%8 == 0 {
			_ = cl.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 1, DY: 0}))
		}
		servers[0].Tick()
		cl.Poll()
	}
	if got := servers[0].UserCount(); got != 1 {
		t.Fatal("sporadically-active client was evicted")
	}
}
