package server

import (
	"math/rand"

	"roia/internal/rtf/entity"
)

// Application is the callback interface through which RTF executes the
// application logic inside the real-time loop. The game (internal/game)
// implements it; RTF itself stays application-agnostic, exactly as the
// paper's middleware separates application developers from the framework.
//
// All callbacks run on the server's tick goroutine; implementations may
// freely mutate the entities they are handed and need no locking of their
// own.
type Application interface {
	// SpawnAvatar returns the initial entity state for a joining user.
	SpawnAvatar(env *Env, id entity.ID, pos entity.Vec2, zoneID uint32) *entity.Entity

	// ApplyInput validates and applies one user input to the actor's
	// state. Interactions that target entities active on other replicas
	// are returned as forwards; RTF routes them to the responsible server
	// (the "forwarded inputs" of the model). Invalid inputs return an
	// error and are dropped.
	ApplyInput(env *Env, actor *entity.Entity, payload []byte) ([]Forward, error)

	// ApplyForwarded applies an interaction forwarded from another replica
	// to a locally-active target (e.g. lowering the target's health after
	// a remote attack).
	ApplyForwarded(env *Env, actor entity.ID, target *entity.Entity, payload []byte) error

	// UpdateNPC advances one locally-active NPC by one tick. Like user
	// inputs, NPC behaviour may produce interactions with entities active
	// on other replicas; they are returned as forwards. The model's
	// t_npc(n, m) covers exactly this: "calculating interactions between
	// NPCs and users".
	UpdateNPC(env *Env, npc *entity.Entity) []Forward

	// DrainEvents returns and clears the application events pending for
	// the user owning the given avatar (delivered in the Events field of
	// the next state update).
	DrainEvents(env *Env, avatar entity.ID) []byte

	// EncodeUserState serializes the application-specific state attached
	// to an avatar for migration (the payload whose cost is t_mig_ini on
	// the source server).
	EncodeUserState(env *Env, avatar entity.ID) []byte

	// ApplyUserState installs migrated application state on the receiving
	// server (cost t_mig_rcv).
	ApplyUserState(env *Env, avatar entity.ID, data []byte)
}

// ConcurrentSimulator is an optional Application capability: an
// application whose UpdateNPC is a pure per-NPC function may declare it to
// let the tick pipeline fan NPC updates over the executor's workers.
//
// Declaring the capability asserts that UpdateNPC
//
//   - never uses env.Rand (the shared sequential random source would make
//     results depend on NPC scheduling order), and
//   - mutates only the npc entity it is handed — it may not write any
//     other entity or the store; cross-entity effects must be returned as
//     forwards.
//
// In exchange, the server runs NPC updates in two phases regardless of
// worker count — compute all updates (parallel, results in per-NPC slots),
// then apply the returned forwards sequentially in NPC ID order — so
// sequential and parallel executions are byte-identical by construction.
// Applications that do not implement the capability (internal/game uses
// env.Rand for movement) keep the original inline sequential path on every
// worker count.
type ConcurrentSimulator interface {
	// ConcurrentNPCUpdates reports whether UpdateNPC satisfies the purity
	// contract above.
	ConcurrentNPCUpdates() bool
}

// Forward is an interaction that must be applied on the replica owning the
// target entity.
type Forward struct {
	// Target is the entity the interaction applies to.
	Target entity.ID
	// Payload is the application-encoded interaction.
	Payload []byte
}

// Env is the execution environment RTF hands to application callbacks.
type Env struct {
	// ServerID is the node ID of the executing server.
	ServerID string
	// Tick is the current tick number.
	Tick uint64
	// Store is the server's full replica of the zone state.
	Store *entity.Store
	// Rand is the server's deterministic random source. Seeded from the
	// server configuration, so simulated sessions replay identically.
	Rand *rand.Rand
}
