package server

import "roia/internal/rtf/transport"

// outbox stages every frame a tick produces, grouped by destination, and
// flushes each destination's frames as one batch at the end of the tick.
// Staging copies the payload into a per-destination arena (senders reuse
// their serialization buffers immediately), so in the steady state the
// whole send path allocates nothing; the flush hands the frames to the
// transport's BatchSender when available — one vectored write per client
// per tick instead of a syscall per frame — and falls back to per-frame
// Send otherwise.
//
// Ordering: destinations flush in first-staged order and frames within a
// destination in staged order, both fully determined by the tick's
// sequential send sequence — the byte-identical-across-parallelism
// contract is unaffected.
type outbox struct {
	dests map[string]int
	bufs  []destBuf
}

// destBuf accumulates one destination's frames: payload bytes appended to
// a shared arena, with ends marking each frame's boundary, and a reusable
// frame-slice vector assembled at flush time.
type destBuf struct {
	to     string
	arena  []byte
	ends   []int
	frames [][]byte
}

// stage appends one payload for the destination, copying it into the
// destination's arena.
func (ob *outbox) stage(to string, payload []byte) {
	if ob.dests == nil {
		ob.dests = make(map[string]int)
	}
	idx, ok := ob.dests[to]
	if !ok {
		idx = len(ob.bufs)
		if idx < cap(ob.bufs) {
			ob.bufs = ob.bufs[:idx+1]
		} else {
			ob.bufs = append(ob.bufs, destBuf{})
		}
		ob.bufs[idx].to = to
		ob.dests[to] = idx
	}
	b := &ob.bufs[idx]
	b.arena = append(b.arena, payload...)
	b.ends = append(b.ends, len(b.arena))
}

// flush delivers every staged frame and resets the outbox for the next
// tick, retaining every buffer's capacity. Send errors are swallowed like
// the per-frame send path's: RTF transmits asynchronously and the next
// tick's update repairs a lost frame.
func (ob *outbox) flush(node transport.Node) {
	bs, batched := node.(transport.BatchSender)
	for i := range ob.bufs {
		b := &ob.bufs[i]
		b.frames = b.frames[:0]
		start := 0
		for _, end := range b.ends {
			b.frames = append(b.frames, b.arena[start:end])
			start = end
		}
		if batched {
			_ = bs.SendBatch(b.to, b.frames)
		} else {
			for _, f := range b.frames {
				_ = node.Send(b.to, f)
			}
		}
		b.to = ""
		b.arena = b.arena[:0]
		b.ends = b.ends[:0]
		b.frames = b.frames[:0]
	}
	ob.bufs = ob.bufs[:0]
	clear(ob.dests)
}
