package server_test

import (
	"testing"

	"roia/internal/game"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/server"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	c := newCluster(t, 2)
	cl := c.addClient(t, 0, entity.Vec2{X: 50, Y: 60})
	npc := c.servers[0].SpawnNPC(entity.Vec2{X: 200, Y: 200})
	c.tickAll()
	c.tickAll()
	cl.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 3, DY: 4}))
	c.tickAll()
	c.tickAll()

	snap := c.servers[0].Snapshot()

	// A fresh server (s3) restores the snapshot and adopts s1's entities,
	// simulating s1's crash.
	node, err := c.net.Attach("s3", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := server.New(server.Config{
		Node:       node,
		Zone:       1,
		Assignment: c.assignment,
		App:        game.New(game.DefaultConfig()),
		IDPrefix:   3,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	adopted := s3.AdoptEntities("s1")
	if adopted != 2 { // the avatar and the NPC
		t.Fatalf("adopted %d entities, want 2", adopted)
	}
	// Every entity of the zone is present with identical state.
	avatar, ok := s3.Entity(cl.Avatar())
	if !ok {
		t.Fatal("avatar missing after restore")
	}
	orig, _ := c.servers[0].Entity(cl.Avatar())
	if avatar.Pos != orig.Pos || avatar.Health != orig.Health {
		t.Fatalf("restored avatar diverged: %+v vs %+v", avatar, orig)
	}
	if avatar.Owner != "s3" {
		t.Fatalf("avatar owner = %q, want adopted s3", avatar.Owner)
	}
	// The restored server resumes ticking and processes the adopted NPC.
	s3.Start()
	before, ok := s3.Entity(npc)
	if !ok {
		t.Fatal("NPC missing after restore")
	}
	s3.Tick()
	s3.Tick()
	after, _ := s3.Entity(npc)
	if before.Pos == after.Pos {
		t.Fatal("adopted NPC not processed after restore")
	}
}

func TestRestoreGuards(t *testing.T) {
	c := newCluster(t, 1)
	c.addClient(t, 0, entity.Vec2{X: 1, Y: 1})
	c.tickAll()
	snap := c.servers[0].Snapshot()

	// Restore into a non-empty server is refused.
	if err := c.servers[0].RestoreSnapshot(snap); err == nil {
		t.Fatal("restored into a populated server")
	}

	node, _ := c.net.Attach("fresh", 1<<14)
	fresh, err := server.New(server.Config{
		Node: node, Zone: 2, Assignment: c.assignment,
		App: game.New(game.DefaultConfig()), IDPrefix: 9, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong zone.
	if err := fresh.RestoreSnapshot(snap); err == nil {
		t.Fatal("restored a zone-1 snapshot into a zone-2 server")
	}
	// Garbage payloads.
	if err := fresh.RestoreSnapshot([]byte{1, 2, 3}); err == nil {
		t.Fatal("restored garbage")
	}
	if err := fresh.RestoreSnapshot(snap[:8]); err == nil {
		t.Fatal("restored truncated snapshot")
	}
}

func TestAdoptEntitiesSelfNoop(t *testing.T) {
	c := newCluster(t, 1)
	c.addClient(t, 0, entity.Vec2{X: 1, Y: 1})
	c.tickAll()
	if got := c.servers[0].AdoptEntities("s1"); got != 0 {
		t.Fatalf("self-adoption moved %d entities", got)
	}
}
