package server

// Race-enabled integration test for GC attribution in flight-recorder
// captures: a hiccup whose tick provably contains a forced garbage
// collection must be classified gc_attributed, and the trigger record must
// carry the tick's GC and allocation deltas. Lives in-package (like the
// flight recorder tests) to swap the executor's injected clock.

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"roia/internal/rtf/entity"
	"roia/internal/rtf/proto"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/wire"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

// gcApp extends flightApp with an on-demand garbage collection inside
// ApplyInput, so a GC pause provably lands between the cost tracker's
// BeginTick and EndTick of a chosen tick.
type gcApp struct {
	flightApp
	force atomic.Bool
}

func (a *gcApp) ApplyInput(env *Env, actor *entity.Entity, payload []byte) ([]Forward, error) {
	if a.force.Load() {
		runtime.GC()
	}
	return a.flightApp.ApplyInput(env, actor, payload)
}

func TestFlightCaptureGCAttribution(t *testing.T) {
	const (
		pre, post = 4, 3
		window    = 8
	)
	rec := telemetry.NewFlightRecorder(telemetry.FlightRecConfig{
		Pre: pre, Post: post, K: 4, Window: window,
		MinHiccupMS: -1, // wall times here are synthetic µs-scale values
	})
	app := &gcApp{}
	cost := telemetry.NewCostTracker()

	clk := newStepClock(20 * time.Microsecond)
	net := transport.NewLoopback()
	defer net.Close()
	node, err := net.Attach("s1", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Node:        node,
		Zone:        1,
		Assignment:  zone.NewAssignment(),
		App:         app,
		IDPrefix:    1,
		Seed:        42,
		Parallelism: 4,
		FlightRec:   rec,
		Cost:        cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.exec.clock = clk.Now
	srv.Start()
	srv.Monitor().SetDeadline(0) // exercise the hiccup trigger, not the deadline

	clients := make([]*flightClient, 2)
	for i := range clients {
		cn, err := net.Attach(fmt.Sprintf("c%d", i+1), 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		c := &flightClient{node: cn, w: wire.NewWriter(256), srv: srv.ID()}
		join := &proto.Join{
			UserName: fmt.Sprintf("c%d", i+1),
			Zone:     1,
			Pos:      entity.Vec2{X: float64(100 + 10*i), Y: 100},
		}
		_ = cn.Send(c.srv, proto.Registry.Encode(c.w, join))
		clients[i] = c
	}
	for i := 0; i < 3; i++ {
		srv.Tick()
		for _, c := range clients {
			transport.Drain(c.node, 0)
		}
	}

	for i := 0; i < window+pre; i++ {
		steadyTick(srv, clients)
	}

	// The hiccup tick: slow clock AND a forced in-tick GC.
	app.force.Store(true)
	clk.setStep(2 * time.Millisecond)
	steadyTick(srv, clients)
	app.force.Store(false)
	clk.setStep(20 * time.Microsecond)
	gcTick := srv.tick

	for i := 0; i < post+4; i++ {
		steadyTick(srv, clients)
	}

	caps := rec.Captures()
	if len(caps) != 1 {
		t.Fatalf("captures = %d, want exactly 1", len(caps))
	}
	cap := caps[0]
	if cap.TriggerTick != gcTick {
		t.Fatalf("trigger tick = %d, want %d", cap.TriggerTick, gcTick)
	}
	if !cap.GCAttributed {
		t.Fatalf("capture with a forced in-tick GC not gc_attributed: %+v", cap)
	}
	trigger := cap.Records[pre]
	if trigger.Tick != gcTick {
		t.Fatalf("record at pre index has tick %d, want trigger %d", trigger.Tick, gcTick)
	}
	if trigger.GCCycles == 0 {
		t.Fatalf("trigger record GCCycles = 0, want >= 1 (forced GC in tick)")
	}
	if trigger.GCPauseMS <= 0 {
		t.Fatalf("trigger record GCPauseMS = %g, want > 0", trigger.GCPauseMS)
	}
	if trigger.AllocBytes == 0 || trigger.AllocObjects == 0 {
		t.Fatalf("trigger record alloc deltas = (%d B, %d objs), want nonzero",
			trigger.AllocBytes, trigger.AllocObjects)
	}

	// A second hiccup with no forced GC: the classification must agree with
	// the trigger record's own GC deltas (a background cycle may still land
	// in the tick, so assert consistency rather than a hard false).
	clk.setStep(2 * time.Millisecond)
	steadyTick(srv, clients)
	clk.setStep(20 * time.Microsecond)
	slowTick := srv.tick
	for i := 0; i < post+4; i++ {
		steadyTick(srv, clients)
	}
	caps = rec.Captures()
	if len(caps) != 2 {
		t.Fatalf("captures after second hiccup = %d, want 2", len(caps))
	}
	cap2 := caps[1]
	if cap2.TriggerTick != slowTick {
		t.Fatalf("second trigger tick = %d, want %d", cap2.TriggerTick, slowTick)
	}
	trig2 := cap2.Records[pre]
	if want := trig2.GCPauseMS > 0 || trig2.GCCycles > 0; cap2.GCAttributed != want {
		t.Fatalf("gc_attributed = %v, but trigger GC deltas are (%g ms, %d cycles)",
			cap2.GCAttributed, trig2.GCPauseMS, trig2.GCCycles)
	}

	// The cost tracker's per-stage attribution ran for every tick.
	snap := cost.Snapshot()
	if snap.Ticks == 0 || snap.AllocBytes[telemetry.CostStageApply] == 0 {
		t.Fatalf("cost tracker snapshot missing stage attribution: %+v", snap)
	}
}
