package server

// Race-enabled integration tests for the tick flight recorder: a synthetic
// slow tick — injected through the executor's clock, not by sleeping — must
// produce exactly one capture whose pre/post window brackets the offending
// tick and whose trigger record carries the per-task breakdown; steady load
// must produce none. The tests live in-package so they can swap the
// executor's injected clock; run with -race so the workers' concurrent
// clock reads are exercised under the detector.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"roia/internal/rtf/entity"
	"roia/internal/rtf/proto"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/wire"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

// stepClock is a deterministic time source: every read advances the clock
// by the current step, so a tick's measured wall time is exactly
// (clock reads during the tick) × step. Under steady load the read count
// per tick is constant — the pipeline times a fixed set of operations — so
// wall time is flat regardless of worker interleaving, and raising step for
// one tick scales that tick's wall proportionally: a hiccup on demand with
// no real sleeping. Reads are atomic because executor workers time their
// items concurrently.
type stepClock struct {
	nowNS  atomic.Int64
	stepNS atomic.Int64
}

func newStepClock(step time.Duration) *stepClock {
	c := &stepClock{}
	c.stepNS.Store(int64(step))
	return c
}

func (c *stepClock) Now() time.Time {
	return time.Unix(0, c.nowNS.Add(c.stepNS.Load()))
}

func (c *stepClock) setStep(step time.Duration) { c.stepNS.Store(int64(step)) }

// flightApp is a minimal Application for driving the tick pipeline from an
// in-package test (internal/game cannot be imported here — it imports
// server). Inputs nudge the actor, NPCs drift; payloads are ignored.
type flightApp struct{}

func (flightApp) SpawnAvatar(env *Env, id entity.ID, pos entity.Vec2, zoneID uint32) *entity.Entity {
	return &entity.Entity{ID: id, Pos: pos, Health: 100}
}

func (flightApp) ApplyInput(env *Env, actor *entity.Entity, payload []byte) ([]Forward, error) {
	actor.Pos.X++
	return nil, nil
}

func (flightApp) ApplyForwarded(env *Env, actor entity.ID, target *entity.Entity, payload []byte) error {
	return nil
}

func (flightApp) UpdateNPC(env *Env, npc *entity.Entity) []Forward {
	npc.Pos.Y += 0.5
	return nil
}

func (flightApp) DrainEvents(env *Env, avatar entity.ID) []byte          { return nil }
func (flightApp) EncodeUserState(env *Env, avatar entity.ID) []byte      { return nil }
func (flightApp) ApplyUserState(env *Env, avatar entity.ID, data []byte) {}

// flightClient is a joined wire-level user that sends one input per tick.
type flightClient struct {
	node transport.Node
	w    *wire.Writer
	seq  uint64
	srv  string
}

func (c *flightClient) input() {
	c.seq++
	msg := &proto.Input{Seq: c.seq, Payload: []byte{1}}
	_ = c.node.Send(c.srv, proto.Registry.Encode(c.w, msg))
}

// startFlightServer builds a single-replica server on a loopback transport
// with the given flight recorder and a step clock swapped in for the
// executor's time source, joins nClients users, and runs a few settle ticks
// so the per-tick clock-read count is steady before measurement starts.
func startFlightServer(t *testing.T, rec *telemetry.FlightRecorder, nClients int) (*Server, *stepClock, []*flightClient, func()) {
	t.Helper()
	clk := newStepClock(20 * time.Microsecond)
	net := transport.NewLoopback()
	node, err := net.Attach("s1", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Node:        node,
		Zone:        1,
		Assignment:  zone.NewAssignment(),
		App:         flightApp{},
		IDPrefix:    1,
		Seed:        42,
		Parallelism: 4,
		FlightRec:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.exec.clock = clk.Now
	srv.Start()
	srv.SpawnNPC(entity.Vec2{X: 150, Y: 150})
	srv.SpawnNPC(entity.Vec2{X: 180, Y: 120})

	clients := make([]*flightClient, nClients)
	for i := range clients {
		cn, err := net.Attach(fmt.Sprintf("c%d", i+1), 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		c := &flightClient{node: cn, w: wire.NewWriter(256), srv: srv.ID()}
		join := &proto.Join{
			UserName: fmt.Sprintf("c%d", i+1),
			Zone:     1,
			Pos:      entity.Vec2{X: float64(100 + 10*i), Y: 100},
		}
		_ = cn.Send(c.srv, proto.Registry.Encode(c.w, join))
		clients[i] = c
	}
	// Settle: process the joins, then a couple of plain ticks so every
	// subsequent steady tick times an identical set of operations.
	for i := 0; i < 3; i++ {
		srv.Tick()
		for _, c := range clients {
			transport.Drain(c.node, 0)
		}
	}
	cleanup := func() { net.Close() }
	return srv, clk, clients, cleanup
}

// steadyTick drives one tick of steady load: every client sends one input,
// the server ticks, clients drain their updates.
func steadyTick(srv *Server, clients []*flightClient) {
	for _, c := range clients {
		c.input()
	}
	srv.Tick()
	for _, c := range clients {
		transport.Drain(c.node, 0)
	}
}

func TestFlightRecorderCapturesInjectedSlowTick(t *testing.T) {
	const (
		pre, post = 4, 3
		window    = 8
	)
	rec := telemetry.NewFlightRecorder(telemetry.FlightRecConfig{
		Pre: pre, Post: post, K: 4, Window: window,
		MinHiccupMS: -1, // wall times here are synthetic µs-scale values
	})
	srv, clk, clients, cleanup := startFlightServer(t, rec, 3)
	defer cleanup()
	// Disable the QoS deadline so the capture exercises the hiccup
	// detector; the deadline trigger otherwise wins (it takes precedence).
	srv.Monitor().SetDeadline(0)

	// Fill the rolling median window with steady ticks.
	for i := 0; i < window+pre; i++ {
		steadyTick(srv, clients)
	}
	if n := rec.Hiccups(); n != 0 {
		t.Fatalf("hiccups during steady warmup = %d, want 0", n)
	}

	// One slow tick: a 100× clock step scales that tick's wall 100×,
	// far past K=4× the steady median.
	clk.setStep(2 * time.Millisecond)
	steadyTick(srv, clients)
	clk.setStep(20 * time.Microsecond)
	slowTick := srv.tick

	// Let the post window fill, plus slack.
	for i := 0; i < post+4; i++ {
		steadyTick(srv, clients)
	}

	caps := rec.Captures()
	if len(caps) != 1 {
		t.Fatalf("captures = %d, want exactly 1", len(caps))
	}
	cap := caps[0]
	if cap.Reason != "hiccup" {
		t.Fatalf("capture reason = %q, want hiccup", cap.Reason)
	}
	if cap.TriggerTick != slowTick {
		t.Fatalf("trigger tick = %d, want %d", cap.TriggerTick, slowTick)
	}
	if want := pre + 1 + post; len(cap.Records) != want {
		t.Fatalf("capture records = %d, want %d (pre+trigger+post)", len(cap.Records), want)
	}
	// The window must be contiguous ticks bracketing the trigger.
	for i, r := range cap.Records {
		if want := slowTick - pre + uint64(i); r.Tick != want {
			t.Fatalf("record %d tick = %d, want %d (contiguous window)", i, r.Tick, want)
		}
	}
	trigger := cap.Records[pre]
	if trigger.Tick != slowTick {
		t.Fatalf("record at pre index has tick %d, want trigger %d", trigger.Tick, slowTick)
	}
	if trigger.WallMS <= cap.MedianMS*4 {
		t.Fatalf("trigger wall %.3f ms not above 4× median %.3f ms", trigger.WallMS, cap.MedianMS)
	}
	// The trigger record must carry the per-task breakdown: the steady
	// load applies three user inputs (UA) and updates two NPCs per tick.
	tasks := map[string]telemetry.Span{}
	for _, s := range trigger.Tasks {
		tasks[s.Name] = s
	}
	if s, ok := tasks["t_ua"]; !ok || s.Items != len(clients) {
		t.Fatalf("trigger t_ua span = %+v (present=%v), want %d items", s, ok, len(clients))
	}
	if s, ok := tasks["t_npc"]; !ok || s.Items != 2 {
		t.Fatalf("trigger t_npc span = %+v (present=%v), want 2 items", s, ok)
	}
	if trigger.Workers != 4 {
		t.Fatalf("trigger workers = %d, want 4", trigger.Workers)
	}
	if trigger.Users != len(clients) {
		t.Fatalf("trigger users = %d, want %d", trigger.Users, len(clients))
	}
	if n := rec.Hiccups(); n != 1 {
		t.Fatalf("hiccup count = %d, want 1", n)
	}
}

func TestFlightRecorderNoFalsePositivesUnderSteadyLoad(t *testing.T) {
	rec := telemetry.NewFlightRecorder(telemetry.FlightRecConfig{
		Pre: 4, Post: 3, K: 4, Window: 8,
		MinHiccupMS: -1,
	})
	srv, _, clients, cleanup := startFlightServer(t, rec, 3)
	defer cleanup()

	for i := 0; i < 200; i++ {
		steadyTick(srv, clients)
	}
	if n := len(rec.Captures()); n != 0 {
		t.Fatalf("steady load produced %d captures, want 0", n)
	}
	if n := rec.Hiccups(); n != 0 {
		t.Fatalf("steady load produced %d hiccups, want 0", n)
	}
}
