package server_test

// Determinism harness for the staged tick pipeline: the client-visible wire
// output of a scripted session must be byte-identical whatever the server's
// Parallelism and whatever GOMAXPROCS the process runs under. Clients here
// operate at the transport level and hash every received payload, so any
// reordering, re-encoding or state divergence shows up as a digest mismatch.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"runtime"
	"testing"

	"roia/internal/game"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/proto"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/wire"
	"roia/internal/rtf/zone"
)

// scriptedClient is a wire-level user connection: it joins, follows
// redirects, sends a deterministic input script, and hashes every payload
// it receives in arrival order.
type scriptedClient struct {
	node   transport.Node
	w      *wire.Writer
	h      hash.Hash
	join   *proto.Join
	server string
	joined bool
	seq    uint64
}

func (c *scriptedClient) send(msg wire.Message) {
	_ = c.node.Send(c.server, proto.Registry.Encode(c.w, msg))
}

// poll drains received frames into the digest (length-prefixed so stream
// boundaries are unambiguous) and reacts to join acks and redirects.
func (c *scriptedClient) poll() {
	for _, f := range transport.Drain(c.node, 0) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(f.Payload)))
		c.h.Write(n[:])
		c.h.Write(f.Payload)
		if len(f.Payload) < 2 {
			continue
		}
		switch wire.Kind(binary.BigEndian.Uint16(f.Payload)) {
		case proto.KindJoinAck:
			c.joined = true
		case proto.KindMigrateNotice:
			if msg, err := proto.Registry.Decode(f.Payload); err == nil {
				c.server = msg.(*proto.MigrateNotice).NewServer
				if !c.joined {
					c.send(c.join)
				}
			}
		}
	}
}

// runPipelineScenario plays a fixed multi-server session — joins, scripted
// movement and attacks, NPCs, a mid-run migration wave — and returns one
// hex digest per client of everything that client received.
func runPipelineScenario(t *testing.T, parallelism int, app func(i int) server.Application) []string {
	t.Helper()
	return runPipelineScenarioDelta(t, parallelism, app, false)
}

// runPipelineScenarioDelta is runPipelineScenario with the proto v5
// delta+keyframe stream switched on (KeyframeTicks 8 so the scenario spans
// several keyframe boundaries and the mid-run migration forces resyncs).
func runPipelineScenarioDelta(t *testing.T, parallelism int, app func(i int) server.Application, delta bool) []string {
	t.Helper()
	const (
		nServers = 2
		nClients = 6
		nTicks   = 40
	)
	net := transport.NewLoopback()
	defer net.Close()
	assignment := zone.NewAssignment()
	servers := make([]*server.Server, nServers)
	for i := range servers {
		node, err := net.Attach(fmt.Sprintf("s%d", i+1), 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Node:          node,
			Zone:          1,
			Assignment:    assignment,
			App:           app(i),
			IDPrefix:      uint16(i + 1),
			Seed:          int64(7000 + i),
			Parallelism:   parallelism,
			DeltaUpdates:  delta,
			KeyframeTicks: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		servers[i] = srv
	}
	for k := 0; k < 4; k++ {
		servers[0].SpawnNPC(entity.Vec2{X: float64(100 + 50*k), Y: 120})
	}

	clients := make([]*scriptedClient, nClients)
	for i := range clients {
		node, err := net.Attach(fmt.Sprintf("c%d", i+1), 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		c := &scriptedClient{
			node:   node,
			w:      wire.NewWriter(256),
			h:      sha256.New(),
			server: servers[i%nServers].ID(),
			join: &proto.Join{
				UserName: fmt.Sprintf("c%d", i+1),
				Zone:     1,
				Pos:      entity.Vec2{X: float64(100 + 10*i), Y: float64(100 + 5*i)},
			},
		}
		c.send(c.join)
		clients[i] = c
	}

	for tick := 0; tick < nTicks; tick++ {
		if tick == 15 {
			servers[0].MigrateUsers(servers[1].ID(), 2)
		}
		for _, s := range servers {
			s.Tick()
		}
		for i, c := range clients {
			c.poll()
			if c.joined && tick%2 == i%2 {
				c.seq++
				dx := float64(1 + (tick+i)%3)
				dy := float64(-1 + (tick*i)%3)
				c.send(&proto.Input{Seq: c.seq, Payload: game.Commands.EncodeToBytes(&game.Move{DX: dx, DY: dy})})
			}
		}
	}

	out := make([]string, nClients)
	for i, c := range clients {
		out[i] = hex.EncodeToString(c.h.Sum(nil))
		_ = c.node.Close()
	}
	return out
}

func gameApp(i int) server.Application { return game.New(game.DefaultConfig()) }

func TestPipelineDeterministicAcrossParallelism(t *testing.T) {
	base := runPipelineScenario(t, 1, gameApp)
	for _, w := range []int{2, 4, 8} {
		got := runPipelineScenario(t, w, gameApp)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("client %d wire stream diverged at Parallelism=%d:\n seq: %s\n par: %s",
					i+1, w, base[i], got[i])
			}
		}
	}
}

// TestPipelineDeterministicDeltaAcrossParallelism pins the proto v5
// delta+keyframe encoding to the same byte-identical-across-parallelism
// contract as the full-update stream: masked field deltas, gap-encoded IDs,
// keyframe cadence and migration-forced keyframes must all be functions of
// the simulation state alone, never of worker scheduling.
func TestPipelineDeterministicDeltaAcrossParallelism(t *testing.T) {
	base := runPipelineScenarioDelta(t, 1, gameApp, true)
	for _, w := range []int{2, 4, 8} {
		got := runPipelineScenarioDelta(t, w, gameApp, true)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("client %d delta wire stream diverged at Parallelism=%d:\n seq: %s\n par: %s",
					i+1, w, base[i], got[i])
			}
		}
	}
}

func TestPipelineDeterministicAcrossGOMAXPROCS(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	runtime.GOMAXPROCS(1)
	base := runPipelineScenario(t, 4, gameApp)
	for _, procs := range []int{2, 8} {
		runtime.GOMAXPROCS(procs)
		got := runPipelineScenario(t, 4, gameApp)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("client %d wire stream diverged at GOMAXPROCS=%d", i+1, procs)
			}
		}
	}
}

// parApp is a minimal Application that satisfies the ConcurrentSimulator
// contract: UpdateNPC is a pure function of the NPC it is handed (no
// env.Rand, no writes to other entities), with cross-entity effects
// expressed as forwards.
type parApp struct {
	avatars []entity.ID
}

func (a *parApp) ConcurrentNPCUpdates() bool { return true }

func (a *parApp) SpawnAvatar(env *server.Env, id entity.ID, pos entity.Vec2, zoneID uint32) *entity.Entity {
	a.avatars = append(a.avatars, id)
	return &entity.Entity{ID: id, Pos: pos, Health: 100}
}

func (a *parApp) ApplyInput(env *server.Env, actor *entity.Entity, payload []byte) ([]server.Forward, error) {
	if len(payload) >= 2 {
		actor.Pos.X += float64(int8(payload[0]))
		actor.Pos.Y += float64(int8(payload[1]))
	}
	return nil, nil
}

func (a *parApp) ApplyForwarded(env *server.Env, actor entity.ID, target *entity.Entity, payload []byte) error {
	target.Health--
	return nil
}

func (a *parApp) UpdateNPC(env *server.Env, npc *entity.Entity) []server.Forward {
	npc.Pos.X += 0.5 * float64(1+npc.ID%5)
	npc.Pos.Y += 0.25
	if env.Tick%4 == 0 && len(a.avatars) > 0 {
		target := a.avatars[int(npc.ID)%len(a.avatars)]
		return []server.Forward{{Target: target, Payload: []byte{1}}}
	}
	return nil
}

func (a *parApp) DrainEvents(env *server.Env, avatar entity.ID) []byte     { return nil }
func (a *parApp) EncodeUserState(env *server.Env, avatar entity.ID) []byte { return nil }
func (a *parApp) ApplyUserState(env *server.Env, avatar entity.ID, data []byte) {
}

func TestPipelineDeterministicConcurrentSimulator(t *testing.T) {
	app := func(i int) server.Application { return &parApp{} }
	base := runPipelineScenario(t, 1, app)
	for _, w := range []int{2, 4} {
		got := runPipelineScenario(t, w, app)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("client %d wire stream diverged at Parallelism=%d with concurrent NPC updates", i+1, w)
			}
		}
	}
}
