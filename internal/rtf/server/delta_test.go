package server_test

import (
	"fmt"
	"sort"
	"testing"

	"roia/internal/game"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
)

// deltaCluster builds a single-server cluster in the requested update mode
// with n clients standing in mutual view.
func deltaCluster(t *testing.T, delta bool, n int) (*server.Server, []*client.Client, func()) {
	t.Helper()
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	node, err := net.Attach("s1", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Node:         node,
		Zone:         1,
		Assignment:   zone.NewAssignment(),
		App:          game.New(game.DefaultConfig()),
		IDPrefix:     1,
		Seed:         1,
		DeltaUpdates: delta,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	clients := make([]*client.Client, n)
	for i := range clients {
		cn, err := net.Attach(fmt.Sprintf("c%d", i+1), 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = client.New(cn, "s1")
		if err := clients[i].Join(1, entity.Vec2{X: float64(100 + i*5), Y: 100}, cn.ID()); err != nil {
			t.Fatal(err)
		}
	}
	step := func() {
		srv.Tick()
		for _, cl := range clients {
			cl.Poll()
		}
	}
	return srv, clients, step
}

func worldIDs(cl *client.Client) []entity.ID {
	var ids []entity.ID
	for _, e := range cl.World() {
		ids = append(ids, e.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestDeltaUpdatesMatchFullUpdatesView(t *testing.T) {
	const n = 5
	_, fullClients, fullStep := deltaCluster(t, false, n)
	_, deltaClients, deltaStep := deltaCluster(t, true, n)
	for i := 0; i < 6; i++ {
		fullStep()
		deltaStep()
	}
	// Same movement in both clusters.
	for i, cl := range fullClients {
		cl.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: float64(i), DY: 1}))
	}
	for i, cl := range deltaClients {
		cl.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: float64(i), DY: 1}))
	}
	for i := 0; i < 4; i++ {
		fullStep()
		deltaStep()
	}
	for i := range fullClients {
		fw, dw := fullClients[i].World(), deltaClients[i].World()
		if len(fw) != len(dw) {
			t.Fatalf("client %d world sizes differ: full=%d delta=%d", i, len(fw), len(dw))
		}
		for j := range fw {
			if fw[j] != dw[j] {
				t.Fatalf("client %d world diverged at %d:\nfull  %+v\ndelta %+v", i, j, fw[j], dw[j])
			}
		}
	}
}

func TestDeltaUpdatesSaveBandwidthWhenIdle(t *testing.T) {
	const n, warm, idle = 8, 4, 10
	run := func(delta bool) int {
		srv, _, step := deltaCluster(t, delta, n)
		for i := 0; i < warm; i++ {
			step()
		}
		// Idle phase: nobody moves, nothing changes.
		bytes := 0
		for i := 0; i < idle; i++ {
			step()
			bytes += srv.Monitor().LastBreakdown().BytesOut
		}
		return bytes
	}
	full := run(false)
	withDelta := run(true)
	if withDelta >= full {
		t.Fatalf("delta mode not cheaper when idle: %d >= %d bytes", withDelta, full)
	}
	// The saving must be substantial — idle full updates resend every
	// entity every tick, idle delta updates send only the self state.
	if withDelta > full/3 {
		t.Fatalf("delta saving too small: %d vs %d bytes", withDelta, full)
	}
}

func TestDeltaGoneListPrunesClientWorld(t *testing.T) {
	// Two clients in view; one walks out of the other's AoI (radius 50).
	srv, clients, step := deltaCluster(t, true, 2)
	for i := 0; i < 3; i++ {
		step()
	}
	watcher, walker := clients[0], clients[1]
	if ids := worldIDs(watcher); len(ids) != 1 || ids[0] != walker.Avatar() {
		t.Fatalf("watcher world = %v, want [walker]", ids)
	}
	// Walk the walker far away (AoI radius is 50; positions start 5 apart).
	for i := 0; i < 30; i++ {
		walker.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 5, DY: 0}))
		step()
	}
	if ids := worldIDs(watcher); len(ids) != 0 {
		t.Fatalf("watcher world after walk-away = %v, want empty", ids)
	}
	// And the walker's own server-side view lost the watcher too.
	e, _ := srv.Entity(walker.Avatar())
	if d := e.Pos.Dist(entity.Vec2{X: 100, Y: 100}); d < 50 {
		t.Fatalf("walker only moved %g units", d)
	}
}

// TestDeltaKeyframeResyncAfterLoss drops most server→client traffic while
// everyone moves, then heals the link: the clients must report resyncs
// (gaps detected, never silently applied) and converge back to the exact
// server state once keyframes get through — within two keyframe periods of
// the link healing.
func TestDeltaKeyframeResyncAfterLoss(t *testing.T) {
	const n, keyframeTicks = 3, 4
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	raw, err := net.Attach("s1", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	lossy := transport.NewLossy(raw, 0, 99)
	srv, err := server.New(server.Config{
		Node:          lossy,
		Zone:          1,
		Assignment:    zone.NewAssignment(),
		App:           game.New(game.DefaultConfig()),
		IDPrefix:      1,
		Seed:          1,
		DeltaUpdates:  true,
		KeyframeTicks: keyframeTicks,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	clients := make([]*client.Client, n)
	for i := range clients {
		cn, err := net.Attach(fmt.Sprintf("c%d", i+1), 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = client.New(cn, "s1")
		if err := clients[i].Join(1, entity.Vec2{X: float64(100 + i*5), Y: 100}, cn.ID()); err != nil {
			t.Fatal(err)
		}
	}
	step := func() {
		srv.Tick()
		for _, cl := range clients {
			cl.Poll()
		}
	}
	for i := 0; i < 4; i++ {
		step()
	}
	// Loss phase: 60% of updates vanish while everyone keeps moving.
	lossy.SetRate(0.6)
	for i := 0; i < 20; i++ {
		for j, cl := range clients {
			cl.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 1, DY: float64(j % 2)}))
		}
		step()
	}
	// Heal and let two keyframe periods pass with no further movement.
	lossy.SetRate(0)
	for i := 0; i < 2*keyframeTicks+2; i++ {
		step()
	}
	resyncs := uint64(0)
	for i, cl := range clients {
		resyncs += cl.Resyncs()
		if !cl.Synced() {
			t.Fatalf("client %d not re-anchored after link healed", i)
		}
		world := cl.World()
		if len(world) != n-1 {
			t.Fatalf("client %d world has %d entities, want %d", i, len(world), n-1)
		}
		for _, got := range world {
			want, ok := srv.Entity(got.ID)
			if !ok {
				t.Fatalf("client %d sees entity %d the server does not have", i, got.ID)
			}
			if got != want {
				t.Fatalf("client %d diverged on entity %d:\nclient %+v\nserver %+v", i, got.ID, got, want)
			}
		}
	}
	if resyncs == 0 {
		t.Fatal("no client reported a resync despite 60% loss")
	}
}

func TestDeltaReappearsAfterReturn(t *testing.T) {
	_, clients, step := deltaCluster(t, true, 2)
	for i := 0; i < 3; i++ {
		step()
	}
	watcher, walker := clients[0], clients[1]
	// Leave the AoI...
	for i := 0; i < 30; i++ {
		walker.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 5, DY: 0}))
		step()
	}
	if len(worldIDs(watcher)) != 0 {
		t.Fatal("walker still visible after leaving")
	}
	// ...and come back: the delta protocol must re-announce the entity.
	for i := 0; i < 30; i++ {
		walker.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: -5, DY: 0}))
		step()
	}
	if ids := worldIDs(watcher); len(ids) != 1 || ids[0] != walker.Avatar() {
		t.Fatalf("walker did not reappear: %v", ids)
	}
}
