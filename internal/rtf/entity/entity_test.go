package entity

import (
	"math"
	"testing"
	"testing/quick"

	"roia/internal/rtf/wire"
)

func TestVec2Ops(t *testing.T) {
	a := Vec2{1, 2}
	b := Vec2{4, 6}
	if got := a.Add(b); got != (Vec2{5, 8}) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Vec2{3, 4}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec2{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.Dist(b); got != 5 {
		t.Fatalf("Dist = %g, want 5", got)
	}
	if got := a.Dist2(b); got != 25 {
		t.Fatalf("Dist2 = %g, want 25", got)
	}
}

func TestVec2Clamp(t *testing.T) {
	v := Vec2{-5, 150}
	if got := v.Clamp(0, 100); got != (Vec2{0, 100}) {
		t.Fatalf("Clamp = %v", got)
	}
	if got := (Vec2{50, 50}).Clamp(0, 100); got != (Vec2{50, 50}) {
		t.Fatalf("Clamp identity = %v", got)
	}
}

func TestDist2MatchesDistSquared(t *testing.T) {
	prop := func(ax, ay, bx, by float64) bool {
		ax, ay = math.Mod(ax, 1e6), math.Mod(ay, 1e6)
		bx, by = math.Mod(bx, 1e6), math.Mod(by, 1e6)
		a, b := Vec2{ax, ay}, Vec2{bx, by}
		d := a.Dist(b)
		return math.Abs(d*d-a.Dist2(b)) <= 1e-6*math.Max(1, a.Dist2(b))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Avatar.String() != "avatar" || NPC.String() != "npc" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
}

func TestEntityWireRoundTrip(t *testing.T) {
	e := &Entity{
		ID: 42, Kind: NPC, Pos: Vec2{1.5, -2.5}, Health: -7,
		Zone: 3, Owner: "server-2", Seq: 99,
	}
	w := wire.NewWriter(0)
	e.MarshalWire(w)
	var got Entity
	if err := got.UnmarshalWire(wire.NewReader(w.Bytes())); err != nil {
		t.Fatalf("UnmarshalWire: %v", err)
	}
	if got != *e {
		t.Fatalf("round trip: got %+v, want %+v", got, *e)
	}
}

func TestEntityWireTruncated(t *testing.T) {
	e := &Entity{ID: 1, Owner: "s"}
	w := wire.NewWriter(0)
	e.MarshalWire(w)
	var got Entity
	if err := got.UnmarshalWire(wire.NewReader(w.Bytes()[:5])); err == nil {
		t.Fatal("truncated entity decoded")
	}
}

func TestActiveOnAndClone(t *testing.T) {
	e := &Entity{ID: 1, Owner: "s1"}
	if !e.ActiveOn("s1") || e.ActiveOn("s2") {
		t.Fatal("ActiveOn wrong")
	}
	c := e.Clone()
	c.Owner = "s2"
	if e.Owner != "s1" {
		t.Fatal("Clone aliased original")
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 {
		t.Fatal("fresh store not empty")
	}
	s.Put(&Entity{ID: 2, Owner: "a"})
	s.Put(&Entity{ID: 1, Owner: "b"})
	s.Put(&Entity{ID: 3, Owner: "a", Kind: NPC})
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if _, ok := s.Get(2); !ok {
		t.Fatal("Get(2) missing")
	}
	all := s.All()
	if all[0].ID != 1 || all[1].ID != 2 || all[2].ID != 3 {
		t.Fatalf("All not in ID order: %v", []ID{all[0].ID, all[1].ID, all[2].ID})
	}
	if !s.Remove(2) || s.Remove(2) {
		t.Fatal("Remove semantics wrong")
	}
	if s.Len() != 2 {
		t.Fatalf("len after remove = %d", s.Len())
	}
}

func TestStorePartitions(t *testing.T) {
	s := NewStore()
	s.Put(&Entity{ID: 1, Owner: "a", Kind: Avatar})
	s.Put(&Entity{ID: 2, Owner: "a", Kind: NPC})
	s.Put(&Entity{ID: 3, Owner: "b", Kind: Avatar})

	if got := s.Active("a", -1); len(got) != 2 {
		t.Fatalf("Active(a, all) = %d entities", len(got))
	}
	if got := s.Active("a", int(Avatar)); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("Active(a, avatar) wrong: %v", got)
	}
	if got := s.Shadows("a"); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("Shadows(a) wrong")
	}
	if got := s.CountActive("a", int(NPC)); got != 1 {
		t.Fatalf("CountActive(a, npc) = %d", got)
	}
	if got := s.CountActive("b", -1); got != 1 {
		t.Fatalf("CountActive(b) = %d", got)
	}
}

func TestApplyShadowUpdate(t *testing.T) {
	s := NewStore()
	// Unknown entity: inserted.
	upd := &Entity{ID: 5, Owner: "remote", Seq: 1, Health: 100}
	if !s.ApplyShadowUpdate("local", upd) {
		t.Fatal("new shadow not applied")
	}
	// The stored copy must not alias the update.
	upd.Health = 1
	if e, _ := s.Get(5); e.Health != 100 {
		t.Fatal("shadow update aliased")
	}
	// Stale sequence: ignored.
	if s.ApplyShadowUpdate("local", &Entity{ID: 5, Owner: "remote", Seq: 1, Health: 50}) {
		t.Fatal("stale update applied")
	}
	// Newer sequence: applied in place.
	if !s.ApplyShadowUpdate("local", &Entity{ID: 5, Owner: "remote", Seq: 2, Health: 80}) {
		t.Fatal("newer update not applied")
	}
	if e, _ := s.Get(5); e.Health != 80 {
		t.Fatalf("health = %d, want 80", e.Health)
	}
	// Never overwrite an entity the local server owns.
	s.Put(&Entity{ID: 9, Owner: "local", Seq: 1})
	if s.ApplyShadowUpdate("local", &Entity{ID: 9, Owner: "remote", Seq: 10}) {
		t.Fatal("update overwrote locally-owned entity")
	}
}

func TestStoreOrderCacheInvalidation(t *testing.T) {
	s := NewStore()
	s.Put(&Entity{ID: 2})
	_ = s.All()
	s.Put(&Entity{ID: 1})
	all := s.All()
	if len(all) != 2 || all[0].ID != 1 {
		t.Fatalf("order cache stale: %v", all)
	}
	s.Remove(1)
	if all := s.All(); len(all) != 1 || all[0].ID != 2 {
		t.Fatalf("order cache stale after remove: %v", all)
	}
}
