package entity

import (
	"sync"
	"testing"
)

// TestSnapshotImmutableUnderMutation is the regression test for the
// Store.All() shared-slice footgun: a snapshot taken before a burst of
// Put/Remove/in-place mutation must keep returning the captured state,
// element for element, while the live store changes underneath it.
func TestSnapshotImmutableUnderMutation(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 8; i++ {
		s.Put(&Entity{ID: ID(i), Kind: Avatar, Pos: Vec2{X: float64(i)}, Health: 100, Owner: "s1", Seq: uint64(i)})
	}
	snap := s.Snapshot()
	if snap.Len() != 8 {
		t.Fatalf("snapshot Len = %d, want 8", snap.Len())
	}

	// Mutate the live store every way it can change: remove, insert, and
	// edit entities in place (what the tick loop does between stages).
	s.Remove(ID(3))
	s.Put(&Entity{ID: ID(100), Kind: NPC, Owner: "s1"})
	for _, e := range s.All() {
		e.Pos.X += 1000
		e.Health = 1
	}

	for i, want := 0, 1; want <= 8; i, want = i+1, want+1 {
		e := snap.All()[i]
		if e.ID != ID(want) {
			t.Fatalf("snapshot order[%d] = %d, want %d", i, e.ID, want)
		}
		if e.Pos.X != float64(want) || e.Health != 100 {
			t.Errorf("snapshot entity %d mutated: pos.X=%v health=%d", want, e.Pos.X, e.Health)
		}
		got, ok := snap.Get(ID(want))
		if !ok || got != e {
			t.Errorf("snapshot Get(%d) = %v, %v; want the captured copy", want, got, ok)
		}
	}
	if _, ok := snap.Get(ID(100)); ok {
		t.Error("snapshot sees entity inserted after capture")
	}
	if _, ok := s.Get(ID(3)); ok {
		t.Error("live store still has removed entity")
	}
}

// TestSnapshotConcurrentReaders drives concurrent snapshot reads against
// live-store mutation; run with -race this proves the publish fan-out can
// read a snapshot while the tick loop mutates the store.
func TestSnapshotConcurrentReaders(t *testing.T) {
	s := NewStore()
	for i := 1; i <= 64; i++ {
		s.Put(&Entity{ID: ID(i), Kind: Avatar, Pos: Vec2{X: float64(i)}, Owner: "s1"})
	}
	snap := s.Snapshot()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 100; iter++ {
				sum := 0.0
				for _, e := range snap.All() {
					sum += e.Pos.X
				}
				if want := 64.0 * 65 / 2; sum != want {
					t.Errorf("snapshot sum = %v, want %v", sum, want)
					return
				}
			}
		}()
	}
	for i := 1; i <= 64; i++ {
		if i%2 == 0 {
			s.Remove(ID(i))
		} else if e, ok := s.Get(ID(i)); ok {
			e.Pos.X = -1
		}
		s.Put(&Entity{ID: ID(1000 + i), Kind: NPC, Owner: "s1"})
	}
	wg.Wait()
}
