// Package entity defines the application-state building blocks of RTF:
// entities (user avatars and computer-controlled characters), their
// positions in the virtual environment, and the active/shadow distinction
// that underpins the replication distribution method.
//
// In replication, every server keeps a complete copy of a zone's entity
// set, but each server is responsible only for a disjoint subset (its
// *active* entities) and receives updates for the remaining *shadow*
// entities from the servers responsible for them (Fig. 1 of the paper).
package entity

import (
	"fmt"
	"math"

	"roia/internal/rtf/wire"
)

// ID identifies an entity uniquely within one application session.
type ID uint64

// Kind distinguishes user avatars from computer-controlled characters.
type Kind uint8

// Entity kinds.
const (
	// Avatar is a user-controlled entity.
	Avatar Kind = iota
	// NPC is a computer-controlled non-player character.
	NPC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Avatar:
		return "avatar"
	case NPC:
		return "npc"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Vec2 is a position or displacement in the 2-D virtual environment.
type Vec2 struct {
	X, Y float64
}

// Add returns v + o.
func (v Vec2) Add(o Vec2) Vec2 { return Vec2{v.X + o.X, v.Y + o.Y} }

// Sub returns v − o.
func (v Vec2) Sub(o Vec2) Vec2 { return Vec2{v.X - o.X, v.Y - o.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dist returns the Euclidean distance to o.
func (v Vec2) Dist(o Vec2) float64 {
	dx, dy := v.X-o.X, v.Y-o.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance to o (cheaper when only
// comparisons are needed, as in interest management).
func (v Vec2) Dist2(o Vec2) float64 {
	dx, dy := v.X-o.X, v.Y-o.Y
	return dx*dx + dy*dy
}

// Clamp returns v with both coordinates clamped to [min, max].
func (v Vec2) Clamp(min, max float64) Vec2 {
	clamp := func(x float64) float64 {
		if x < min {
			return min
		}
		if x > max {
			return max
		}
		return x
	}
	return Vec2{clamp(v.X), clamp(v.Y)}
}

// Entity is one object of the application state.
type Entity struct {
	// ID is the session-unique identifier.
	ID ID
	// Kind distinguishes avatars from NPCs.
	Kind Kind
	// Pos is the position in the virtual environment.
	Pos Vec2
	// Health is the game-specific vitality (RTFDemo semantics: avatars die
	// at 0 and respawn).
	Health int32
	// Zone is the zone the entity currently inhabits.
	Zone uint32
	// Owner is the ID of the server responsible for this entity. On that
	// server the entity is active; on every other replica of the zone it
	// is a shadow entity.
	Owner string
	// Seq is a per-entity update sequence number; replicas discard stale
	// shadow updates that arrive out of order.
	Seq uint64
}

// ActiveOn reports whether the entity is active on the given server (the
// server holds responsibility for processing its inputs and state).
func (e *Entity) ActiveOn(serverID string) bool { return e.Owner == serverID }

// Clone returns a copy of the entity.
func (e *Entity) Clone() *Entity {
	c := *e
	return &c
}

// MarshalWire serializes the entity's replicated fields.
func (e *Entity) MarshalWire(w *wire.Writer) {
	w.Uint64(uint64(e.ID))
	w.Uint8(uint8(e.Kind))
	w.Float64(e.Pos.X)
	w.Float64(e.Pos.Y)
	w.Varint(int64(e.Health))
	w.Uint32(e.Zone)
	w.String(e.Owner)
	w.Uint64(e.Seq)
}

// UnmarshalWire parses the entity's replicated fields.
func (e *Entity) UnmarshalWire(r *wire.Reader) error {
	e.ID = ID(r.Uint64())
	e.Kind = Kind(r.Uint8())
	e.Pos.X = r.Float64()
	e.Pos.Y = r.Float64()
	e.Health = int32(r.Varint())
	e.Zone = r.Uint32()
	e.Owner = r.String()
	e.Seq = r.Uint64()
	return r.Err()
}
