package entity

import "roia/internal/rtf/wire"

// FieldMask is a bitset of Entity field groups, the unit of the delta wire
// protocol: a state update that carries only the masked fields of an entity
// instead of a full record. Masks are produced by diffing consecutive store
// snapshots (DiffMask), so "dirty" means "changed since the previous
// snapshot" without the store having to hook every mutation — applications
// write entity fields directly.
type FieldMask uint8

// Field groups of an Entity. The bit order is also the wire order of the
// masked fields (MarshalDelta/UnmarshalDelta), mirroring the field order of
// the full MarshalWire encoding.
const (
	// FieldKind marks a Kind change (never expected after spawn, but the
	// diff is exhaustive so the delta protocol cannot silently drift).
	FieldKind FieldMask = 1 << iota
	// FieldPos marks a position change (both coordinates travel together).
	FieldPos
	// FieldHealth marks a Health change.
	FieldHealth
	// FieldZone marks a zone transfer.
	FieldZone
	// FieldOwner marks an ownership change (migration, NPC transfer).
	FieldOwner
	// FieldSeq marks a sequence-number advance. Seq increments with every
	// applied change, so FieldSeq is set on effectively every dirty entity;
	// it still travels masked so a delta stream reproduces the exact Seq a
	// full update would have delivered.
	FieldSeq

	// FieldAll marks every field group: the mask of a newly appeared entity.
	FieldAll FieldMask = FieldKind | FieldPos | FieldHealth | FieldZone | FieldOwner | FieldSeq
)

// DiffMask reports which field groups of e differ from prev.
func (e *Entity) DiffMask(prev *Entity) FieldMask {
	var m FieldMask
	if e.Kind != prev.Kind {
		m |= FieldKind
	}
	if e.Pos != prev.Pos {
		m |= FieldPos
	}
	if e.Health != prev.Health {
		m |= FieldHealth
	}
	if e.Zone != prev.Zone {
		m |= FieldZone
	}
	if e.Owner != prev.Owner {
		m |= FieldOwner
	}
	if e.Seq != prev.Seq {
		m |= FieldSeq
	}
	return m
}

// ApplyMasked copies the masked field groups of src onto e — the receiving
// side of a delta: src carries only the masked fields, e is the receiver's
// previous copy of the entity.
func (e *Entity) ApplyMasked(src *Entity, mask FieldMask) {
	if mask&FieldKind != 0 {
		e.Kind = src.Kind
	}
	if mask&FieldPos != 0 {
		e.Pos = src.Pos
	}
	if mask&FieldHealth != 0 {
		e.Health = src.Health
	}
	if mask&FieldZone != 0 {
		e.Zone = src.Zone
	}
	if mask&FieldOwner != 0 {
		e.Owner = src.Owner
	}
	if mask&FieldSeq != 0 {
		e.Seq = src.Seq
	}
}

// MarshalDelta serializes only the masked field groups, in mask bit order.
// The entity ID is not written; delta framing carries it separately.
func (e *Entity) MarshalDelta(w *wire.Writer, mask FieldMask) {
	if mask&FieldKind != 0 {
		w.Uint8(uint8(e.Kind))
	}
	if mask&FieldPos != 0 {
		w.Float64(e.Pos.X)
		w.Float64(e.Pos.Y)
	}
	if mask&FieldHealth != 0 {
		w.Varint(int64(e.Health))
	}
	if mask&FieldZone != 0 {
		w.Uint32(e.Zone)
	}
	if mask&FieldOwner != 0 {
		w.String(e.Owner)
	}
	if mask&FieldSeq != 0 {
		w.Uvarint(e.Seq)
	}
}

// UnmarshalDelta parses the masked field groups written by MarshalDelta,
// leaving unmasked fields untouched — applying a delta onto the receiver's
// previous copy of the entity.
func (e *Entity) UnmarshalDelta(r *wire.Reader, mask FieldMask) error {
	if mask&FieldKind != 0 {
		e.Kind = Kind(r.Uint8())
	}
	if mask&FieldPos != 0 {
		e.Pos.X = r.Float64()
		e.Pos.Y = r.Float64()
	}
	if mask&FieldHealth != 0 {
		e.Health = int32(r.Varint())
	}
	if mask&FieldZone != 0 {
		e.Zone = r.Uint32()
	}
	if mask&FieldOwner != 0 {
		e.Owner = r.String()
	}
	if mask&FieldSeq != 0 {
		e.Seq = r.Uvarint()
	}
	return r.Err()
}
