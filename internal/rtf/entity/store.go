package entity

import "slices"

// Store holds a server's full replica of one zone's entity set, with fast
// partitions into active and shadow subsets. Store is not safe for
// concurrent use; the real-time loop owns it exclusively.
type Store struct {
	byID map[ID]*Entity
	// order caches the sorted iteration order; rebuilt (reusing the backing
	// array) when dirty.
	order []*Entity
	dirty bool
	// version is a monotonic snapshot counter: each Snapshot() call stamps
	// the capture with the next version, so consumers can correlate "what
	// changed since version T" with their own tick numbering.
	version uint64
	// snaps double-buffers the snapshot arenas: the capture at version V
	// reuses the buffers of version V-2, and diffs itself against V-1 to
	// compute per-entity changed-field masks without hooking mutations.
	snaps [2]*Snapshot
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byID: make(map[ID]*Entity), dirty: true}
}

// Put inserts or replaces an entity.
func (s *Store) Put(e *Entity) {
	s.byID[e.ID] = e
	s.dirty = true
}

// Get looks up an entity by ID.
func (s *Store) Get(id ID) (*Entity, bool) {
	e, ok := s.byID[id]
	return e, ok
}

// Remove deletes an entity, reporting whether it existed.
func (s *Store) Remove(id ID) bool {
	if _, ok := s.byID[id]; !ok {
		return false
	}
	delete(s.byID, id)
	s.dirty = true
	return true
}

// Len reports the number of stored entities.
func (s *Store) Len() int { return len(s.byID) }

// All returns every entity in deterministic (ID) order. The returned slice
// is shared and must not be modified; it is invalidated by Put/Remove.
// Deterministic order keeps simulation runs reproducible across executions,
// which the experiment harness depends on.
//
// Footgun: because the slice is shared, callers must not retain it across
// any store mutation, and must never hand it to code that runs while the
// tick loop keeps mutating the store — the backing array is reused and a
// concurrent or later Put/Remove silently invalidates every element the
// caller still holds. Stages that read the world concurrently (the publish
// fan-out) must take a Snapshot instead.
func (s *Store) All() []*Entity {
	if s.dirty {
		if cap(s.order) < len(s.byID) {
			s.order = make([]*Entity, 0, len(s.byID))
		}
		s.order = s.order[:0]
		s.dirty = false
		for _, e := range s.byID {
			s.order = append(s.order, e)
		}
		slices.SortFunc(s.order, func(a, b *Entity) int {
			switch {
			case a.ID < b.ID:
				return -1
			case a.ID > b.ID:
				return 1
			}
			return 0
		})
	}
	return s.order
}

// Snapshot is a point-in-time copy of a Store, safe to read from any number
// of goroutines while the live store keeps mutating. It is the view the
// publish stage hands to the parallel AoI / state-update workers: entity
// values are deep-copied at capture, so neither Put/Remove on the live
// store nor in-place edits of live entities are visible through (or able to
// corrupt) a snapshot.
//
// Each snapshot also carries per-entity changed-field masks relative to the
// previous snapshot of the same store, which is what the delta wire
// protocol publishes instead of full entity records.
//
// Lifetime: snapshot buffers are double-buffered inside the store, so a
// snapshot stays valid until the second following Snapshot() call on the
// same store (i.e. the capture of tick T is reusable scratch at tick T+2).
// The tick loop takes exactly one snapshot per tick and every reader is
// joined before the tick returns, so this is invisible on the hot path;
// callers that need a longer-lived copy must clone the entities out.
type Snapshot struct {
	version uint64
	base    uint64
	// ents is the arena of entity copies in ID order; all and byID point
	// into it.
	ents    []Entity
	all     []*Entity
	changed []FieldMask
	byID    map[ID]int32
}

// Snapshot captures a deep copy of the store in ID order, diffed against
// the previous capture: Changed/Lookup report which field groups of each
// entity differ from the prior snapshot (FieldAll for entities that appeared
// since). Buffers are recycled from the snapshot before last, making the
// steady-state capture allocation-free; see the Snapshot type for the
// resulting lifetime contract.
func (s *Store) Snapshot() *Snapshot {
	src := s.All()
	prev := s.snaps[s.version&1]
	s.version++
	sn := s.snaps[s.version&1]
	if sn == nil {
		sn = &Snapshot{byID: make(map[ID]int32, len(src))}
		s.snaps[s.version&1] = sn
	}
	sn.version = s.version
	sn.base = 0
	if prev != nil {
		sn.base = prev.version
	}
	if cap(sn.ents) < len(src) {
		sn.ents = make([]Entity, len(src))
		sn.all = make([]*Entity, len(src))
		sn.changed = make([]FieldMask, len(src))
	}
	sn.ents = sn.ents[:len(src)]
	sn.all = sn.all[:len(src)]
	sn.changed = sn.changed[:len(src)]
	clear(sn.byID)
	j := 0
	for i, e := range src {
		sn.ents[i] = *e
		sn.all[i] = &sn.ents[i]
		sn.byID[e.ID] = int32(i)
		mask := FieldAll
		if prev != nil {
			// Both arenas are ID-sorted: a single merge walk pairs each
			// entity with its previous copy (if any) to diff field groups.
			for j < len(prev.ents) && prev.ents[j].ID < e.ID {
				j++
			}
			if j < len(prev.ents) && prev.ents[j].ID == e.ID {
				mask = e.DiffMask(&prev.ents[j])
			}
		}
		sn.changed[i] = mask
	}
	return sn
}

// All returns every captured entity in ID order. Callers must not modify
// the entities: the slice is shared by every reader of the snapshot.
func (sn *Snapshot) All() []*Entity { return sn.all }

// Get looks up a captured entity by ID.
func (sn *Snapshot) Get(id ID) (*Entity, bool) {
	i, ok := sn.byID[id]
	if !ok {
		return nil, false
	}
	return &sn.ents[i], true
}

// Lookup returns a captured entity together with its changed-field mask
// relative to the previous snapshot, in one map probe.
func (sn *Snapshot) Lookup(id ID) (*Entity, FieldMask, bool) {
	i, ok := sn.byID[id]
	if !ok {
		return nil, 0, false
	}
	return &sn.ents[i], sn.changed[i], true
}

// Changed reports the changed-field mask of a captured entity relative to
// the previous snapshot (zero when the ID was not captured).
func (sn *Snapshot) Changed(id ID) FieldMask {
	i, ok := sn.byID[id]
	if !ok {
		return 0
	}
	return sn.changed[i]
}

// Version is the monotonic capture version assigned by the store.
func (sn *Snapshot) Version() uint64 { return sn.version }

// Base is the version the changed-field masks are relative to (zero for the
// first capture, whose masks are all FieldAll).
func (sn *Snapshot) Base() uint64 { return sn.base }

// Len reports the number of captured entities.
func (sn *Snapshot) Len() int { return len(sn.all) }

// Active returns the entities owned by serverID of the given kind
// (pass kind < 0 for all kinds), in ID order.
func (s *Store) Active(serverID string, kind int) []*Entity {
	return s.ActiveInto(nil, serverID, kind)
}

// ActiveInto appends the entities owned by serverID of the given kind
// (kind < 0 for all kinds) to dst, in ID order, and returns the extended
// slice. Passing a recycled dst[:0] keeps the per-tick partition
// allocation-free.
func (s *Store) ActiveInto(dst []*Entity, serverID string, kind int) []*Entity {
	for _, e := range s.All() {
		if e.Owner == serverID && (kind < 0 || Kind(kind) == e.Kind) {
			dst = append(dst, e)
		}
	}
	return dst
}

// Shadows returns the entities NOT owned by serverID, in ID order.
func (s *Store) Shadows(serverID string) []*Entity {
	var out []*Entity
	for _, e := range s.All() {
		if e.Owner != serverID {
			out = append(out, e)
		}
	}
	return out
}

// CountActive reports how many entities of the given kind serverID owns
// (kind < 0 counts all kinds).
func (s *Store) CountActive(serverID string, kind int) int {
	n := 0
	for _, e := range s.byID {
		if e.Owner == serverID && (kind < 0 || Kind(kind) == e.Kind) {
			n++
		}
	}
	return n
}

// ApplyShadowUpdate merges a replicated entity state received from the
// owning server. Stale updates (sequence number not newer than the stored
// one) are ignored, and an update never overwrites an entity the receiving
// server itself owns — ownership changes only through the migration
// protocol. It reports whether the update was applied.
func (s *Store) ApplyShadowUpdate(serverID string, upd *Entity) bool {
	cur, ok := s.byID[upd.ID]
	if !ok {
		s.Put(upd.Clone())
		return true
	}
	if cur.Owner == serverID {
		return false
	}
	if upd.Seq <= cur.Seq {
		return false
	}
	*cur = *upd
	return true
}
