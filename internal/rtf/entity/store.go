package entity

import "sort"

// Store holds a server's full replica of one zone's entity set, with fast
// partitions into active and shadow subsets. Store is not safe for
// concurrent use; the real-time loop owns it exclusively.
type Store struct {
	byID map[ID]*Entity
	// order caches the sorted iteration order; nil when dirty.
	order []*Entity
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byID: make(map[ID]*Entity)}
}

// Put inserts or replaces an entity.
func (s *Store) Put(e *Entity) {
	s.byID[e.ID] = e
	s.order = nil
}

// Get looks up an entity by ID.
func (s *Store) Get(id ID) (*Entity, bool) {
	e, ok := s.byID[id]
	return e, ok
}

// Remove deletes an entity, reporting whether it existed.
func (s *Store) Remove(id ID) bool {
	if _, ok := s.byID[id]; !ok {
		return false
	}
	delete(s.byID, id)
	s.order = nil
	return true
}

// Len reports the number of stored entities.
func (s *Store) Len() int { return len(s.byID) }

// All returns every entity in deterministic (ID) order. The returned slice
// is shared and must not be modified; it is invalidated by Put/Remove.
// Deterministic order keeps simulation runs reproducible across executions,
// which the experiment harness depends on.
//
// Footgun: because the slice is shared, callers must not retain it across
// any store mutation, and must never hand it to code that runs while the
// tick loop keeps mutating the store — the backing array is reused and a
// concurrent or later Put/Remove silently invalidates every element the
// caller still holds. Stages that read the world concurrently (the publish
// fan-out) must take a Snapshot instead.
func (s *Store) All() []*Entity {
	if s.order == nil {
		s.order = make([]*Entity, 0, len(s.byID))
		for _, e := range s.byID {
			s.order = append(s.order, e)
		}
		sort.Slice(s.order, func(i, j int) bool { return s.order[i].ID < s.order[j].ID })
	}
	return s.order
}

// Snapshot is an immutable point-in-time copy of a Store, safe to read
// from any number of goroutines while the live store keeps mutating. It is
// the view the publish stage hands to the parallel AoI / state-update
// workers: entity values are deep-copied at capture, so neither Put/Remove
// on the live store nor in-place edits of live entities are visible through
// (or able to corrupt) a snapshot.
type Snapshot struct {
	all  []*Entity
	byID map[ID]*Entity
}

// Snapshot captures an immutable deep copy of the store in ID order.
func (s *Store) Snapshot() *Snapshot {
	src := s.All()
	// One backing allocation for all entity copies keeps capture cheap:
	// the snapshot is taken once per tick on the hot path.
	ents := make([]Entity, len(src))
	sn := &Snapshot{
		all:  make([]*Entity, len(src)),
		byID: make(map[ID]*Entity, len(src)),
	}
	for i, e := range src {
		ents[i] = *e
		sn.all[i] = &ents[i]
		sn.byID[e.ID] = &ents[i]
	}
	return sn
}

// All returns every captured entity in ID order. Callers must not modify
// the entities: the slice is shared by every reader of the snapshot.
func (sn *Snapshot) All() []*Entity { return sn.all }

// Get looks up a captured entity by ID.
func (sn *Snapshot) Get(id ID) (*Entity, bool) {
	e, ok := sn.byID[id]
	return e, ok
}

// Len reports the number of captured entities.
func (sn *Snapshot) Len() int { return len(sn.all) }

// Active returns the entities owned by serverID of the given kind
// (pass kind < 0 for all kinds), in ID order.
func (s *Store) Active(serverID string, kind int) []*Entity {
	var out []*Entity
	for _, e := range s.All() {
		if e.Owner == serverID && (kind < 0 || Kind(kind) == e.Kind) {
			out = append(out, e)
		}
	}
	return out
}

// Shadows returns the entities NOT owned by serverID, in ID order.
func (s *Store) Shadows(serverID string) []*Entity {
	var out []*Entity
	for _, e := range s.All() {
		if e.Owner != serverID {
			out = append(out, e)
		}
	}
	return out
}

// CountActive reports how many entities of the given kind serverID owns
// (kind < 0 counts all kinds).
func (s *Store) CountActive(serverID string, kind int) int {
	n := 0
	for _, e := range s.byID {
		if e.Owner == serverID && (kind < 0 || Kind(kind) == e.Kind) {
			n++
		}
	}
	return n
}

// ApplyShadowUpdate merges a replicated entity state received from the
// owning server. Stale updates (sequence number not newer than the stored
// one) are ignored, and an update never overwrites an entity the receiving
// server itself owns — ownership changes only through the migration
// protocol. It reports whether the update was applied.
func (s *Store) ApplyShadowUpdate(serverID string, upd *Entity) bool {
	cur, ok := s.byID[upd.ID]
	if !ok {
		s.Put(upd.Clone())
		return true
	}
	if cur.Owner == serverID {
		return false
	}
	if upd.Seq <= cur.Seq {
		return false
	}
	*cur = *upd
	return true
}
