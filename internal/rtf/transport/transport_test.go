package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLoopbackDelivery(t *testing.T) {
	net := NewLoopback()
	defer net.Close()
	a, err := net.Attach("a", 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Attach("b", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	f := <-b.Inbox()
	if f.From != "a" || f.To != "b" || string(f.Payload) != "hello" {
		t.Fatalf("frame = %+v", f)
	}
}

func TestLoopbackPayloadIsCopied(t *testing.T) {
	net := NewLoopback()
	defer net.Close()
	a, _ := net.Attach("a", 8)
	b, _ := net.Attach("b", 8)
	buf := []byte("abc")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // sender reuses its buffer
	f := <-b.Inbox()
	if string(f.Payload) != "abc" {
		t.Fatalf("payload aliased sender buffer: %q", f.Payload)
	}
}

func TestLoopbackUnknownTarget(t *testing.T) {
	net := NewLoopback()
	defer net.Close()
	a, _ := net.Attach("a", 8)
	if err := a.Send("ghost", []byte("x")); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("err = %v, want ErrUnknownTarget", err)
	}
}

func TestLoopbackDuplicateID(t *testing.T) {
	net := NewLoopback()
	defer net.Close()
	if _, err := net.Attach("a", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach("a", 8); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err = %v, want ErrDuplicateID", err)
	}
}

func TestLoopbackInboxFullNonBlocking(t *testing.T) {
	net := NewLoopback()
	defer net.Close()
	a, _ := net.Attach("a", 8)
	_, _ = net.Attach("b", 1)
	if err := a.Send("b", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("2")); !errors.Is(err, ErrInboxFull) {
		t.Fatalf("err = %v, want ErrInboxFull", err)
	}
}

func TestLoopbackClosedNode(t *testing.T) {
	net := NewLoopback()
	defer net.Close()
	a, _ := net.Attach("a", 8)
	b, _ := net.Attach("b", 8)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send from closed node: err = %v, want ErrClosed", err)
	}
	if err := b.Send("a", []byte("x")); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("send to detached node: err = %v, want ErrUnknownTarget", err)
	}
	if _, ok := <-a.Inbox(); ok {
		t.Fatal("inbox not closed")
	}
	// Closing twice is safe.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLoopbackNetworkClose(t *testing.T) {
	net := NewLoopback()
	a, _ := net.Attach("a", 8)
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-a.Inbox(); ok {
		t.Fatal("inbox not closed by network close")
	}
	if _, err := net.Attach("c", 8); !errors.Is(err, ErrClosed) {
		t.Fatalf("attach after close: err = %v, want ErrClosed", err)
	}
}

func TestDrain(t *testing.T) {
	net := NewLoopback()
	defer net.Close()
	a, _ := net.Attach("a", 8)
	b, _ := net.Attach("b", 64)
	for i := 0; i < 10; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := Drain(b, 4); len(got) != 4 {
		t.Fatalf("Drain(4) returned %d frames", len(got))
	}
	rest := Drain(b, 0)
	if len(rest) != 6 {
		t.Fatalf("Drain(all) returned %d frames, want 6", len(rest))
	}
	// In-order delivery per sender.
	if rest[0].Payload[0] != 4 || rest[5].Payload[0] != 9 {
		t.Fatalf("out of order: %v", rest)
	}
	if got := Drain(b, 0); len(got) != 0 {
		t.Fatalf("Drain on empty inbox returned %d frames", len(got))
	}
}

func TestLoopbackConcurrentSenders(t *testing.T) {
	net := NewLoopback()
	net.Block = true
	defer net.Close()
	dst, _ := net.Attach("dst", 16)
	const senders, perSender = 8, 100

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		node, err := net.Attach(fmt.Sprintf("s%d", s), 1)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(n Node) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := n.Send("dst", []byte{1}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(node)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	got := 0
	timeout := time.After(5 * time.Second)
	for got < senders*perSender {
		select {
		case <-dst.Inbox():
			got++
		case <-timeout:
			t.Fatalf("received %d of %d frames", got, senders*perSender)
		}
	}
	<-done
}

func TestTCPRoundTrip(t *testing.T) {
	net := NewTCP()
	a, err := net.Attach("a", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := net.Attach("b", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send("b", []byte("over tcp")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case f := <-b.Inbox():
		if f.From != "a" || f.To != "b" || string(f.Payload) != "over tcp" {
			t.Fatalf("frame = %+v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame not delivered")
	}

	// And the reverse direction (separate connection).
	if err := b.Send("a", []byte("reply")); err != nil {
		t.Fatalf("Send reply: %v", err)
	}
	select {
	case f := <-a.Inbox():
		if string(f.Payload) != "reply" {
			t.Fatalf("reply frame = %+v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reply not delivered")
	}
}

func TestTCPManyFramesInOrder(t *testing.T) {
	net := NewTCP()
	a, _ := net.Attach("a", 8)
	defer a.Close()
	b, _ := net.Attach("b", 4096)
	defer b.Close()

	const count = 500
	for i := 0; i < count; i++ {
		if err := a.Send("b", []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < count; i++ {
		select {
		case f := <-b.Inbox():
			got := int(f.Payload[0]) | int(f.Payload[1])<<8
			if got != i {
				t.Fatalf("frame %d out of order: got %d", i, got)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("missing frame %d", i)
		}
	}
}

func TestTCPUnknownTarget(t *testing.T) {
	net := NewTCP()
	a, _ := net.Attach("a", 8)
	defer a.Close()
	if err := a.Send("nowhere", []byte("x")); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("err = %v, want ErrUnknownTarget", err)
	}
}

func TestTCPDuplicateID(t *testing.T) {
	net := NewTCP()
	a, _ := net.Attach("a", 8)
	defer a.Close()
	if _, err := net.Attach("a", 8); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err = %v, want ErrDuplicateID", err)
	}
}

func TestTCPCloseReleasesID(t *testing.T) {
	net := NewTCP()
	a, _ := net.Attach("a", 8)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := net.Lookup("a"); ok {
		t.Fatal("closed node still in directory")
	}
	b, err := net.Attach("a", 8) // ID reusable after close
	if err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	b.Close()
}

func TestTCPSendAfterClose(t *testing.T) {
	net := NewTCP()
	a, _ := net.Attach("a", 8)
	b, _ := net.Attach("b", 8)
	defer b.Close()
	a.Close()
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	net := NewTCP()
	a, _ := net.Attach("a", 8)
	defer a.Close()
	b, _ := net.Attach("b", 8)
	defer b.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := a.Send("b", big); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-b.Inbox():
		if len(f.Payload) != len(big) {
			t.Fatalf("payload size %d, want %d", len(f.Payload), len(big))
		}
		for i := 0; i < len(big); i += 4097 {
			if f.Payload[i] != big[i] {
				t.Fatalf("payload corrupted at %d", i)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("large frame not delivered")
	}
}

// TestDrainIntoReusesBuffer pins the tick receive stage's buffer-reuse
// contract: frames append in arrival order after any existing elements,
// a pre-sized buffer is not regrown, and Drain stays a nil-buffer shim.
func TestDrainIntoReusesBuffer(t *testing.T) {
	net := NewLoopback()
	defer net.Close()
	a, _ := net.Attach("a", 16)
	b, _ := net.Attach("b", 16)
	for i := 0; i < 3; i++ {
		if err := a.Send("b", []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}

	buf := make([]Frame, 0, 8)
	got := DrainInto(b, buf, 0)
	if len(got) != 3 {
		t.Fatalf("drained %d frames, want 3", len(got))
	}
	for i, f := range got {
		if want := string(rune('0' + i)); string(f.Payload) != want {
			t.Errorf("frame %d payload = %q, want %q (arrival order)", i, f.Payload, want)
		}
	}
	if cap(got) != 8 {
		t.Errorf("cap grew to %d, want the caller's 8 (no reallocation)", cap(got))
	}

	// Next tick: drain into the truncated previous buffer.
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	got = DrainInto(b, got[:0], 0)
	if len(got) != 1 || string(got[0].Payload) != "x" {
		t.Fatalf("second drain = %d frames (first %q), want 1 frame \"x\"", len(got), got[0].Payload)
	}

	// Existing elements are preserved, and max counts only new frames.
	for i := 0; i < 5; i++ {
		if err := a.Send("b", []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	pre := []Frame{{From: "pre"}}
	out := DrainInto(b, pre, 2)
	if len(out) != 3 || out[0].From != "pre" {
		t.Fatalf("DrainInto with prefix = %+v, want prefix plus 2 frames", out)
	}
	if rest := Drain(b, 0); len(rest) != 3 {
		t.Fatalf("Drain left %d frames, want 3", len(rest))
	}
}

// TestTCPSendBatchRoundTrip pins the vectored batch framing: every frame
// of a batch must decode on the receiver byte-identical to the payloads
// handed to SendBatch, in order, interleaved correctly with single Sends
// on the same connection.
func TestTCPSendBatchRoundTrip(t *testing.T) {
	net := NewTCP()
	a, _ := net.Attach("a", 64)
	defer a.Close()
	b, _ := net.Attach("b", 64)
	defer b.Close()

	batch := [][]byte{
		[]byte("first"),
		{},                      // empty payload must still frame
		[]byte("third-payload"), // varied lengths exercise the uvarint prefix
		make([]byte, 300),       // >255 forces a 2-byte uvarint
	}
	for i := range batch[3] {
		batch[3][i] = byte(i * 7)
	}
	bs, ok := a.(BatchSender)
	if !ok {
		t.Fatal("tcp node does not implement BatchSender")
	}
	if err := bs.SendBatch("b", batch); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	if err := a.Send("b", []byte("single-after")); err != nil {
		t.Fatalf("Send after batch: %v", err)
	}

	want := append(append([][]byte{}, batch...), []byte("single-after"))
	for i, w := range want {
		select {
		case f := <-b.Inbox():
			if f.From != "a" || f.To != "b" {
				t.Fatalf("frame %d routing = %s->%s, want a->b", i, f.From, f.To)
			}
			if string(f.Payload) != string(w) {
				t.Fatalf("frame %d payload = %q (%d bytes), want %q (%d bytes)",
					i, f.Payload, len(f.Payload), w, len(w))
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("frame %d not delivered", i)
		}
	}
}

// TestTCPReplyRidesInboundConnection simulates the real roiaserver/roiabot
// split: two TCPNetwork directories in (conceptually) different processes.
// The client knows the server's address, the server has never heard of the
// client — its reply must be adopted onto the connection the client dialed
// in on. Without adoption, JoinAck is undeliverable and no client can ever
// join over real sockets.
func TestTCPReplyRidesInboundConnection(t *testing.T) {
	serverNet := NewTCP()
	srv, err := serverNet.AttachListener("s1", "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, _ := serverNet.Lookup("s1")

	clientNet := NewTCP() // separate directory: the client's process
	clientNet.Register("s1", addr)
	cl, err := clientNet.Attach("bot-1", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Send("s1", []byte("join")); err != nil {
		t.Fatalf("client send: %v", err)
	}
	var join Frame
	select {
	case join = <-srv.Inbox():
	case <-time.After(5 * time.Second):
		t.Fatal("join not delivered")
	}

	// The server directory has no entry for bot-1; the reply must still
	// route — over the adopted inbound connection.
	if _, ok := serverNet.Lookup(join.From); ok {
		t.Fatalf("test invariant broken: %s is in the server directory", join.From)
	}
	if err := srv.Send(join.From, []byte("ack")); err != nil {
		t.Fatalf("reply Send: %v", err)
	}
	select {
	case f := <-cl.Inbox():
		if string(f.Payload) != "ack" || f.From != "s1" {
			t.Fatalf("reply frame = %+v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reply not delivered over inbound connection")
	}

	// State updates flow through the outbox as batches: same route.
	if err := srv.(BatchSender).SendBatch(join.From, [][]byte{[]byte("u1"), []byte("u2")}); err != nil {
		t.Fatalf("reply SendBatch: %v", err)
	}
	for _, want := range []string{"u1", "u2"} {
		select {
		case f := <-cl.Inbox():
			if string(f.Payload) != want {
				t.Fatalf("batch frame = %q, want %q", f.Payload, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("batch frame %q not delivered", want)
		}
	}
}

// TestTCPAdoptedRouteDropsWithConnection verifies the cleanup side of
// adoption: when the client hangs up, the server's adopted route is
// removed, and a later send fails with ErrUnknownTarget instead of
// writing into a dead socket forever.
func TestTCPAdoptedRouteDropsWithConnection(t *testing.T) {
	serverNet := NewTCP()
	srv, err := serverNet.AttachListener("s1", "127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, _ := serverNet.Lookup("s1")

	clientNet := NewTCP()
	clientNet.Register("s1", addr)
	cl, err := clientNet.Attach("bot-2", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Send("s1", []byte("join")); err != nil {
		t.Fatal(err)
	}
	join := <-srv.Inbox()
	if err := srv.Send(join.From, []byte("ack")); err != nil {
		t.Fatalf("reply before hangup: %v", err)
	}
	<-cl.Inbox()
	cl.Close()

	// The server read loop notices the hangup and drops the route; the
	// send path then has nowhere to go. Poll briefly: connection teardown
	// is asynchronous.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := srv.Send(join.From, []byte("late"))
		if errors.Is(err, ErrUnknownTarget) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("send after hangup = %v, want ErrUnknownTarget", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
