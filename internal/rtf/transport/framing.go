package transport

import "math/bits"

// FrameWireBytes returns the on-wire size of one framed message from→to
// carrying payloadLen payload bytes, as the TCP transport writes it: a
// 4-byte big-endian length prefix followed by the uvarint-length-prefixed
// sender ID, target ID, and payload blob (see tcpNode.Send / readLoop).
//
// Loopback delivery carries no real framing, but the byte accounting in the
// server uses this convention everywhere so that BytesIn/BytesOut mean the
// same thing whichever transport backs the session: the bytes a TCP peer
// would actually read or write.
func FrameWireBytes(from, to string, payloadLen int) int {
	if payloadLen < 0 {
		payloadLen = 0
	}
	return 4 +
		uvarintLen(uint64(len(from))) + len(from) +
		uvarintLen(uint64(len(to))) + len(to) +
		uvarintLen(uint64(payloadLen)) + payloadLen
}

// uvarintLen is the encoded size of v as a binary.PutUvarint varint.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}
