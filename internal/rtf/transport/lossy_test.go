package transport

import "testing"

func TestLossyPassthrough(t *testing.T) {
	net := NewLoopback()
	defer net.Close()
	raw, err := net.Attach("a", 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Attach("b", 8)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLossy(raw, 0, 1) // never drops
	if l.ID() != "a" {
		t.Fatalf("ID = %q", l.ID())
	}
	if err := l.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if f := <-b.Inbox(); string(f.Payload) != "x" {
		t.Fatalf("frame = %+v", f)
	}
	// Inbound frames flow through the wrapped inbox.
	if err := b.Send("a", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if f := <-l.Inbox(); string(f.Payload) != "y" {
		t.Fatalf("inbox frame = %+v", f)
	}
	if dropped, sent := l.Stats(); dropped != 0 || sent != 1 {
		t.Fatalf("stats = %d/%d", dropped, sent)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-l.Inbox(); ok {
		t.Fatal("inbox open after close")
	}
}

func TestLossyAlwaysDropsAtRateOne(t *testing.T) {
	net := NewLoopback()
	defer net.Close()
	raw, _ := net.Attach("a", 8)
	_, _ = net.Attach("b", 1) // tiny inbox: would fill if sends leaked
	l := NewLossy(raw, 1, 1)
	for i := 0; i < 100; i++ {
		if err := l.Send("b", []byte{1}); err != nil {
			t.Fatalf("dropped send reported error: %v", err)
		}
	}
	if dropped, sent := l.Stats(); dropped != 100 || sent != 0 {
		t.Fatalf("stats = %d/%d, want 100/0", dropped, sent)
	}
}
