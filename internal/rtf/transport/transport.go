// Package transport moves wire payloads between RTF nodes (application
// servers and clients). Two interchangeable implementations are provided:
//
//   - Loopback: an in-process hub routing frames over channels. It is
//     deterministic enough for tests and lets experiments run a whole
//     multi-server cluster inside one process, mirroring how the paper's
//     experiments run multiple RTF servers on one testbed.
//   - TCP: length-prefix framed connections over net, for the real
//     networked deployment used by cmd/roiaserver and cmd/roiabot.
//
// Both satisfy Network/Node, so the RTF server and client code above this
// package is transport-agnostic.
package transport

import (
	"errors"
	"fmt"
	"sync"
)

// Frame is one routed payload.
type Frame struct {
	// From and To are node IDs (e.g. "server-1", "client-42").
	From, To string
	// Payload is an opaque wire-encoded message body.
	Payload []byte
}

// Node is one attached endpoint of a Network.
type Node interface {
	// ID returns the node's network-unique identifier.
	ID() string
	// Send enqueues a payload for delivery to the named node. Send is safe
	// for concurrent use. Delivery is asynchronous; an error reports only
	// local failures (unknown target, closed node, full inbox policy).
	Send(to string, payload []byte) error
	// Inbox returns the channel on which received frames arrive. The
	// channel is closed when the node is closed.
	Inbox() <-chan Frame
	// Close detaches the node and releases its resources.
	Close() error
}

// Network attaches nodes by ID.
type Network interface {
	// Attach registers a node. inboxSize bounds the receive queue.
	Attach(id string, inboxSize int) (Node, error)
}

// BatchSender is an optional Node capability: deliver several payloads to
// one destination in a single operation. The TCP transport turns a batch
// into one vectored write (net.Buffers) instead of len(payloads) syscalls,
// which is how the server flushes a whole tick's frames per client. Frames
// are delivered in slice order; on error, a prefix of the batch may have
// been delivered. Callers fall back to per-payload Send when the node does
// not implement BatchSender.
type BatchSender interface {
	SendBatch(to string, payloads [][]byte) error
}

// Errors shared by transport implementations.
var (
	// ErrClosed is returned by operations on a closed node or network.
	ErrClosed = errors.New("transport: closed")
	// ErrUnknownTarget is returned when sending to an unattached ID.
	ErrUnknownTarget = errors.New("transport: unknown target")
	// ErrDuplicateID is returned when attaching an already-taken ID.
	ErrDuplicateID = errors.New("transport: duplicate node id")
	// ErrInboxFull is returned when the receiver's queue is saturated and
	// the network is configured to reject rather than block.
	ErrInboxFull = errors.New("transport: inbox full")
)

// Loopback is an in-process Network. The zero value is not usable; create
// one with NewLoopback.
type Loopback struct {
	mu     sync.RWMutex
	nodes  map[string]*loopNode
	closed bool
	// Block controls back-pressure: when true, Send blocks until the
	// receiver drains its inbox; when false, Send fails with ErrInboxFull.
	// RTF's asynchronous sends never block the real-time loop, so the
	// default (false) models the paper's middleware; tests that need strict
	// delivery can opt in to blocking.
	Block bool
}

// NewLoopback returns an empty in-process network.
func NewLoopback() *Loopback {
	return &Loopback{nodes: make(map[string]*loopNode)}
}

type loopNode struct {
	net    *Loopback
	id     string
	inbox  chan Frame
	closed chan struct{}
	once   sync.Once
}

// Attach implements Network.
func (l *Loopback) Attach(id string, inboxSize int) (Node, error) {
	if inboxSize <= 0 {
		inboxSize = 1024
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if _, dup := l.nodes[id]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	n := &loopNode{
		net:    l,
		id:     id,
		inbox:  make(chan Frame, inboxSize),
		closed: make(chan struct{}),
	}
	l.nodes[id] = n
	return n, nil
}

// Close shuts down the network and every attached node.
func (l *Loopback) Close() error {
	l.mu.Lock()
	nodes := make([]*loopNode, 0, len(l.nodes))
	for _, n := range l.nodes {
		nodes = append(nodes, n)
	}
	l.closed = true
	l.mu.Unlock()
	for _, n := range nodes {
		_ = n.Close()
	}
	return nil
}

func (n *loopNode) ID() string          { return n.id }
func (n *loopNode) Inbox() <-chan Frame { return n.inbox }

func (n *loopNode) Send(to string, payload []byte) error {
	select {
	case <-n.closed:
		return ErrClosed
	default:
	}
	n.net.mu.RLock()
	target, ok := n.net.nodes[to]
	block := n.net.Block
	n.net.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTarget, to)
	}
	// Copy the payload: senders reuse their serialization buffers.
	frame := Frame{From: n.id, To: to, Payload: append([]byte(nil), payload...)}
	if block {
		select {
		case target.inbox <- frame:
			return nil
		case <-target.closed:
			return ErrClosed
		}
	}
	select {
	case target.inbox <- frame:
		return nil
	case <-target.closed:
		return ErrClosed
	default:
		return fmt.Errorf("%w: %s", ErrInboxFull, to)
	}
}

// SendBatch implements BatchSender as sequential Sends: the loopback hub
// has no syscall boundary to amortize, so batching only preserves the
// ordering contract. Delivery stops at the first local failure.
func (n *loopNode) SendBatch(to string, payloads [][]byte) error {
	for _, p := range payloads {
		if err := n.Send(to, p); err != nil {
			return err
		}
	}
	return nil
}

func (n *loopNode) Close() error {
	n.once.Do(func() {
		n.net.mu.Lock()
		delete(n.net.nodes, n.id)
		n.net.mu.Unlock()
		close(n.closed)
		close(n.inbox)
	})
	return nil
}

// Drain reads every frame currently queued on the node without blocking.
// It is the helper the real-time loop uses at the start of each tick
// (step 1 of the tick: "each server receives inputs from its users").
func Drain(n Node, max int) []Frame {
	return DrainInto(n, nil, max)
}

// DrainInto is Drain appending into a caller-owned buffer (typically
// buf[:0] of last tick's slice): the receive stage runs every tick, and
// growing a fresh slice from nil each time is repeated reallocation the
// tick path can skip entirely once the buffer has reached steady-state
// capacity. Returns the filled buffer; frames are appended in arrival
// order.
func DrainInto(n Node, buf []Frame, max int) []Frame {
	start := len(buf)
	for max <= 0 || len(buf)-start < max {
		select {
		case f, ok := <-n.Inbox():
			if !ok {
				return buf
			}
			buf = append(buf, f)
		default:
			return buf
		}
	}
	return buf
}
