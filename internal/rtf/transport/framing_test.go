package transport

import (
	"bytes"
	"testing"

	"roia/internal/rtf/wire"
)

// TestFrameWireBytesMatchesTCPFraming pins FrameWireBytes to the byte
// layout tcpNode.Send actually produces: a 4-byte length prefix plus the
// uvarint-prefixed from/to/payload triple. If the TCP framing ever changes,
// this test forces the accounting helper to change with it.
func TestFrameWireBytesMatchesTCPFraming(t *testing.T) {
	payloads := []int{0, 1, 17, 127, 128, 4096, 16383, 16384}
	ids := [][2]string{
		{"s1", "c1"},
		{"server-with-a-long-id", "x"},
		{"", "peer"},
	}
	w := wire.NewWriter(64)
	for _, pair := range ids {
		from, to := pair[0], pair[1]
		for _, n := range payloads {
			payload := bytes.Repeat([]byte{0xAB}, n)
			w.Reset()
			w.Uint32(0) // length placeholder, exactly as tcpNode.Send writes it
			w.String(from)
			w.String(to)
			w.Blob(payload)
			want := len(w.Bytes())
			if got := FrameWireBytes(from, to, n); got != want {
				t.Errorf("FrameWireBytes(%q, %q, %d) = %d, want %d (actual framed size)",
					from, to, n, got, want)
			}
		}
	}
}

// TestFrameWireBytesOverhead pins the framing overhead for short node IDs:
// 4 length-prefix bytes plus one uvarint length byte per field. Payloads
// below 128 bytes encode their length in a single uvarint byte too.
func TestFrameWireBytesOverhead(t *testing.T) {
	const from, to = "s1", "c1"
	// 4 (length prefix) + 1+2 (from) + 1+2 (to) + 1 (payload length) = 11.
	if got := FrameWireBytes(from, to, 100) - 100; got != 11 {
		t.Errorf("framing overhead for %q→%q with a short payload = %d, want 11", from, to, got)
	}
	// A 128-byte payload needs a second uvarint length byte.
	if got := FrameWireBytes(from, to, 128) - 128; got != 12 {
		t.Errorf("framing overhead at 128-byte payload = %d, want 12", got)
	}
}
