package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"roia/internal/rtf/wire"
)

// MaxFrameSize bounds a single TCP frame; larger declared lengths indicate
// a corrupt or hostile stream and abort the connection.
const MaxFrameSize = 16 << 20

// TCPNetwork is a Network whose nodes communicate over framed TCP
// connections. Node addresses are resolved through a directory that maps
// node IDs to listen addresses; nodes attached in-process self-register,
// and peers in other processes are added with Register.
type TCPNetwork struct {
	mu        sync.RWMutex
	directory map[string]string
}

// NewTCP returns an empty TCP network.
func NewTCP() *TCPNetwork {
	return &TCPNetwork{directory: make(map[string]string)}
}

// Register adds (or replaces) a remote peer's address in the directory.
func (t *TCPNetwork) Register(id, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.directory[id] = addr
}

// Lookup resolves a node ID to its address.
func (t *TCPNetwork) Lookup(id string) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	addr, ok := t.directory[id]
	return addr, ok
}

// Attach implements Network, listening on an ephemeral localhost port.
func (t *TCPNetwork) Attach(id string, inboxSize int) (Node, error) {
	return t.AttachListener(id, "127.0.0.1:0", inboxSize)
}

// AttachListener attaches a node listening on the given address.
func (t *TCPNetwork) AttachListener(id, addr string, inboxSize int) (Node, error) {
	if inboxSize <= 0 {
		inboxSize = 1024
	}
	t.mu.Lock()
	if _, dup := t.directory[id]; dup {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	t.mu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &tcpNode{
		net:     t,
		id:      id,
		ln:      ln,
		inbox:   make(chan Frame, inboxSize),
		conns:   make(map[string]*tcpConn),
		inbound: make(map[net.Conn]struct{}),
		closed:  make(chan struct{}),
	}
	t.Register(id, ln.Addr().String())
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

type tcpNode struct {
	net    *TCPNetwork
	id     string
	ln     net.Listener
	inbox  chan Frame
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup

	mu      sync.Mutex
	conns   map[string]*tcpConn   // send routes by peer ID: dialed or adopted inbound
	inbound map[net.Conn]struct{} // every connection with a readLoop, closed on Close
}

type tcpConn struct {
	mu   sync.Mutex // serializes writes
	conn net.Conn
	w    *wire.Writer
	// ends/bufs are SendBatch scratch (header end offsets into w's buffer
	// and the vectored-write slice), reused across batches under mu.
	ends []int
	bufs net.Buffers
}

func (n *tcpNode) ID() string          { return n.id }
func (n *tcpNode) Inbox() <-chan Frame { return n.inbox }

func (n *tcpNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		select {
		case <-n.closed:
			n.mu.Unlock()
			conn.Close()
			return
		default:
		}
		n.inbound[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop decodes inbound frames from one connection into the inbox.
func (n *tcpNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		// Drop any reply route adopted from this connection, so a later
		// send re-dials (or re-adopts a fresh inbound connection).
		for id, c := range n.conns {
			if c.conn == conn {
				delete(n.conns, id)
			}
		}
		n.mu.Unlock()
	}()
	adopted := false
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenBuf[:])
		if size == 0 || size > MaxFrameSize {
			return
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		r := wire.NewReader(body)
		frame := Frame{From: r.String(), To: r.String(), Payload: r.Blob()}
		if r.Err() != nil {
			return
		}
		if !adopted {
			// Adopt this connection as the reply path to the sender. A
			// client process is not in this process's directory (its
			// listener, if any, is behind its own NAT/process boundary),
			// so replies must ride the socket it dialed in on — exactly
			// how JoinAck and state updates reach roiabot swarms.
			n.adopt(frame.From, conn)
			adopted = true
		}
		select {
		case n.inbox <- frame:
		case <-n.closed:
			return
		default:
			// Inbox saturated: drop the frame. RTF's state updates are
			// refreshed every tick, so dropping under overload is safer
			// than stalling the peer's send path.
		}
	}
}

// Send implements Node. The first send to a target dials and caches a
// full-duplex connection (replies ride it back); concurrent sends to the
// same target serialize on it. A target that already dialed in is reached
// over its adopted inbound connection — no directory entry needed.
func (n *tcpNode) Send(to string, payload []byte) error {
	select {
	case <-n.closed:
		return ErrClosed
	default:
	}
	c, err := n.conn(to)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Reset()
	c.w.Uint32(0) // length placeholder
	c.w.String(n.id)
	c.w.String(to)
	c.w.Blob(payload)
	buf := c.w.Bytes()
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	//roialint:ignore lockhold the per-connection mutex exists to serialize writes on this socket
	if _, err := c.conn.Write(buf); err != nil {
		// Connection broke: drop it so the next send re-dials.
		n.mu.Lock()
		if n.conns[to] == c {
			delete(n.conns, to)
		}
		n.mu.Unlock()
		//roialint:ignore lockhold teardown of this connection under its own write lock, not a shared one
		c.conn.Close()
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	return nil
}

// SendBatch implements BatchSender: all frame headers are serialized into
// the connection's writer first (sizes are known up front), then headers
// and caller payloads are interleaved into one net.Buffers vectored write —
// a single writev(2) for the whole batch, with zero copies of the payloads.
func (n *tcpNode) SendBatch(to string, payloads [][]byte) error {
	select {
	case <-n.closed:
		return ErrClosed
	default:
	}
	if len(payloads) == 0 {
		return nil
	}
	c, err := n.conn(to)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Reset()
	c.ends = c.ends[:0]
	for _, p := range payloads {
		c.w.Uint32(0) // length placeholder
		c.w.String(n.id)
		c.w.String(to)
		c.w.Uvarint(uint64(len(p))) // Blob prefix; the body rides in the vector
		c.ends = append(c.ends, c.w.Len())
	}
	hdr := c.w.Bytes()
	c.bufs = c.bufs[:0]
	start := 0
	for i, p := range payloads {
		h := hdr[start:c.ends[i]]
		start = c.ends[i]
		binary.BigEndian.PutUint32(h[:4], uint32(len(h)-4+len(p)))
		c.bufs = append(c.bufs, h, p)
	}
	nb := c.bufs // WriteTo consumes its receiver; keep c.bufs for reuse
	//roialint:ignore lockhold the per-connection mutex exists to serialize writes on this socket
	if _, err := nb.WriteTo(c.conn); err != nil {
		n.mu.Lock()
		if n.conns[to] == c {
			delete(n.conns, to)
		}
		n.mu.Unlock()
		//roialint:ignore lockhold teardown of this connection under its own write lock, not a shared one
		c.conn.Close()
		return fmt.Errorf("transport: send batch to %s: %w", to, err)
	}
	return nil
}

// adopt registers an accepted connection as the outbound route to id, so
// peers that never appear in the directory (clients dialing in from other
// processes) can be answered. An existing route wins: a node that already
// dialed id (or adopted an earlier connection from it) keeps that path.
func (n *tcpNode) adopt(id string, raw net.Conn) {
	if id == "" {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.conns[id]; ok {
		return
	}
	n.conns[id] = &tcpConn{conn: raw, w: wire.NewWriter(256)}
}

func (n *tcpNode) conn(to string) (*tcpConn, error) {
	n.mu.Lock()
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	n.mu.Unlock()

	addr, ok := n.net.Lookup(to)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTarget, to)
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", to, addr, err)
	}
	c := &tcpConn{conn: raw, w: wire.NewWriter(256)}

	// Register under the lock, but keep the raw socket teardown outside
	// it: Close on a TCP connection can block in the kernel, and the
	// registry mutex is on every send path.
	n.mu.Lock()
	existing, raced := n.conns[to]
	closed := false
	select {
	case <-n.closed:
		closed = true
	default:
	}
	if !raced && !closed {
		n.conns[to] = c
		// Connections are full-duplex: the peer replies over the socket
		// we dialed (it adopts it — see readLoop), so the dialer must
		// read it too. Tracked in the inbound set for Close teardown.
		n.inbound[raw] = struct{}{}
		n.wg.Add(1)
		go n.readLoop(raw)
	}
	n.mu.Unlock()
	if raced {
		// Lost the race: keep the first connection.
		raw.Close()
		return existing, nil
	}
	if closed {
		raw.Close()
		return nil, ErrClosed
	}
	return c, nil
}

// Close implements Node: stops the listener, closes every connection,
// waits for reader goroutines, then closes the inbox.
func (n *tcpNode) Close() error {
	n.once.Do(func() {
		close(n.closed)
		n.ln.Close()
		// Snapshot the connection sets under the lock, close outside it:
		// socket Close can block, and readLoop goroutines need the mutex
		// to unregister themselves before wg.Wait can return.
		n.mu.Lock()
		toClose := make([]net.Conn, 0, len(n.conns)+len(n.inbound))
		for _, c := range n.conns {
			toClose = append(toClose, c.conn)
		}
		n.conns = make(map[string]*tcpConn)
		for conn := range n.inbound {
			toClose = append(toClose, conn)
		}
		n.mu.Unlock()
		for _, conn := range toClose {
			conn.Close()
		}
		n.wg.Wait()
		close(n.inbox)
		n.net.mu.Lock()
		delete(n.net.directory, n.id)
		n.net.mu.Unlock()
	})
	return nil
}
