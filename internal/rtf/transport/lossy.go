package transport

import (
	"math/rand"
	"sync"
)

// Lossy wraps a Node and silently drops a deterministic fraction of
// outbound payloads — a failure-injection harness for the protocol's
// robustness claims. RTF's state replication is refresh-based (every tick
// resends full entity states, stale shadow updates are discarded by
// sequence number), so the application must converge despite drops; tests
// use Lossy to prove it.
type Lossy struct {
	node Node

	mu   sync.Mutex
	rate float64
	rng  *rand.Rand

	dropped, sent int
}

// NewLossy wraps node, dropping each Send with probability rate (0..1),
// driven by a deterministic seed.
func NewLossy(node Node, rate float64, seed int64) *Lossy {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Lossy{node: node, rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// SetRate changes the drop probability (clamped to 0..1). Fault-injection
// tests use it to phase loss in and out — e.g. join clients reliably, then
// degrade the link under migrations.
func (l *Lossy) SetRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	l.mu.Lock()
	l.rate = rate
	l.mu.Unlock()
}

// ID implements Node.
func (l *Lossy) ID() string { return l.node.ID() }

// Inbox implements Node.
func (l *Lossy) Inbox() <-chan Frame { return l.node.Inbox() }

// Close implements Node.
func (l *Lossy) Close() error { return l.node.Close() }

// Send implements Node, dropping the payload with the configured
// probability. A dropped send reports success — exactly how a lost UDP
// datagram or an overflowed async queue looks to the sender.
func (l *Lossy) Send(to string, payload []byte) error {
	l.mu.Lock()
	drop := l.rng.Float64() < l.rate
	if drop {
		l.dropped++
	} else {
		l.sent++
	}
	l.mu.Unlock()
	if drop {
		return nil
	}
	return l.node.Send(to, payload)
}

// SendBatch implements BatchSender, applying the drop probability to each
// frame of the batch independently — loss on a real link is per-packet, so
// a batched flush must not become an all-or-nothing unit.
func (l *Lossy) SendBatch(to string, payloads [][]byte) error {
	keep := make([][]byte, 0, len(payloads))
	l.mu.Lock()
	for _, p := range payloads {
		if l.rng.Float64() < l.rate {
			l.dropped++
			continue
		}
		l.sent++
		keep = append(keep, p)
	}
	l.mu.Unlock()
	if len(keep) == 0 {
		return nil
	}
	if bs, ok := l.node.(BatchSender); ok {
		return bs.SendBatch(to, keep)
	}
	for _, p := range keep {
		if err := l.node.Send(to, p); err != nil {
			return err
		}
	}
	return nil
}

// Stats reports how many sends were dropped and delivered.
func (l *Lossy) Stats() (dropped, sent int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped, l.sent
}
