package monitor

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"roia/internal/telemetry"
)

// WriteMetrics writes the monitor's current state in the Prometheus text
// exposition format (stdlib only), so a standard monitoring stack can
// scrape a live RTF server. labels is an optional comma-separated label
// set rendered into every sample (e.g. `server="s1",zone="1"`).
//
// Exported families:
//
//	roia_ticks_total                       counter, processed ticks
//	roia_tick_duration_ms                  histogram of tick durations
//	                                       (cumulative buckets, sum, count)
//	roia_tick_stat_ms{stat=...}            mean/p50/p95/p99/max of recent
//	                                       tick wall durations
//	roia_tick_wall_q_ms{q=...}             windowed tail gauges of tick wall
//	                                       durations (p50/p90/p99/p999 over
//	                                       the last ~1–2k ticks)
//	roia_tick_cpu_stat_ms{stat=...}        mean/p95 of recent tick CPU sums
//	                                       (across workers; ÷ wall = live
//	                                       pipeline speedup)
//	roia_task_ms{task=...,stat=...}        per-item cost of each model parameter
//	roia_zone_users / roia_active_users    the model's n and a
//	roia_npcs / roia_replicas              the model's m and l
//	roia_tick_bytes{direction=...}         wire bytes of the last tick
//	roia_tick_deadline_ms                  QoS tick deadline 1/U (0 = off)
//	roia_tick_deadline_violations_total    ticks that exceeded the deadline
//	roia_monitor_dropped_samples_total     calibration observations discarded
//	                                       at the sample-log cap
//
// WriteMetrics matches telemetry.MetricsWriter, so it composes with the
// drift and runtime sections via telemetry.MetricsHandler.
func (m *Monitor) WriteMetrics(w io.Writer, labels string) error {
	m.mu.Lock()
	ticks := m.ticks
	dropped := m.dropped
	deadline := m.deadlineMS
	violations := m.violations
	tickSummary := m.tickTotals.Summary()
	cpuSummary := m.tickCPU.Summary()
	tailQ := m.tail.Quantiles()
	hist := m.tickHist.Clone()
	last := m.lastBreak
	type taskStat struct {
		task Task
		sum  struct{ mean, p95 float64 }
		n    int
	}
	var tasks []taskStat
	for t := Task(0); t < numTasks; t++ {
		s := m.perTask[t].Summary()
		if s.Count == 0 {
			continue
		}
		ts := taskStat{task: t, n: s.Count}
		ts.sum.mean, ts.sum.p95 = s.Mean, s.P95
		tasks = append(tasks, ts)
	}
	m.mu.Unlock()

	lbl := func(extra string) string { return telemetry.FormatLabels(labels, extra) }

	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE roia_ticks_total counter\n")
	fmt.Fprintf(&b, "roia_ticks_total%s %d\n", lbl(""), ticks)

	if err := hist.Write(&b, "roia_tick_duration_ms", labels); err != nil {
		return err
	}

	fmt.Fprintf(&b, "# TYPE roia_tick_stat_ms gauge\n")
	for _, st := range []struct {
		name string
		v    float64
	}{
		{"mean", tickSummary.Mean}, {"p50", tickSummary.P50},
		{"p95", tickSummary.P95}, {"p99", tickSummary.P99}, {"max", tickSummary.Max},
	} {
		fmt.Fprintf(&b, "roia_tick_stat_ms%s %g\n", lbl(fmt.Sprintf("stat=%q", st.name)), st.v)
	}

	fmt.Fprintf(&b, "# TYPE roia_tick_wall_q_ms gauge\n")
	for _, st := range []struct {
		name string
		v    float64
	}{
		{"p50", tailQ.P50}, {"p90", tailQ.P90}, {"p99", tailQ.P99}, {"p999", tailQ.P999},
	} {
		fmt.Fprintf(&b, "roia_tick_wall_q_ms%s %g\n", lbl(fmt.Sprintf("q=%q", st.name)), st.v)
	}

	fmt.Fprintf(&b, "# TYPE roia_tick_cpu_stat_ms gauge\n")
	for _, st := range []struct {
		name string
		v    float64
	}{
		{"mean", cpuSummary.Mean}, {"p95", cpuSummary.P95},
	} {
		fmt.Fprintf(&b, "roia_tick_cpu_stat_ms%s %g\n", lbl(fmt.Sprintf("stat=%q", st.name)), st.v)
	}

	fmt.Fprintf(&b, "# TYPE roia_task_ms gauge\n")
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].task < tasks[j].task })
	for _, ts := range tasks {
		fmt.Fprintf(&b, "roia_task_ms%s %g\n",
			lbl(fmt.Sprintf("task=%q,stat=\"mean\"", ts.task)), ts.sum.mean)
		fmt.Fprintf(&b, "roia_task_ms%s %g\n",
			lbl(fmt.Sprintf("task=%q,stat=\"p95\"", ts.task)), ts.sum.p95)
	}

	fmt.Fprintf(&b, "# TYPE roia_zone_users gauge\nroia_zone_users%s %d\n", lbl(""), last.Users)
	fmt.Fprintf(&b, "# TYPE roia_active_users gauge\nroia_active_users%s %d\n", lbl(""), last.ActiveUsers)
	fmt.Fprintf(&b, "# TYPE roia_npcs gauge\nroia_npcs%s %d\n", lbl(""), last.NPCs)
	fmt.Fprintf(&b, "# TYPE roia_replicas gauge\nroia_replicas%s %d\n", lbl(""), last.Replicas)
	fmt.Fprintf(&b, "# TYPE roia_tick_bytes gauge\n")
	fmt.Fprintf(&b, "roia_tick_bytes%s %d\n", lbl(`direction="in"`), last.BytesIn)
	fmt.Fprintf(&b, "roia_tick_bytes%s %d\n", lbl(`direction="out"`), last.BytesOut)
	fmt.Fprintf(&b, "# TYPE roia_tick_deadline_ms gauge\nroia_tick_deadline_ms%s %g\n", lbl(""), deadline)
	fmt.Fprintf(&b, "# TYPE roia_tick_deadline_violations_total counter\n")
	fmt.Fprintf(&b, "roia_tick_deadline_violations_total%s %d\n", lbl(""), violations)
	fmt.Fprintf(&b, "# TYPE roia_monitor_dropped_samples_total counter\n")
	fmt.Fprintf(&b, "roia_monitor_dropped_samples_total%s %d\n", lbl(""), dropped)

	_, err := io.WriteString(w, b.String())
	return err
}

// MetricsHandler serves WriteMetrics over HTTP, for a /metrics endpoint on
// a live server (see cmd/roiaserver -metrics). To add the model-drift and
// Go-runtime sections to the same scrape, compose with
// telemetry.MetricsHandler instead.
func MetricsHandler(m *Monitor, labels string) http.Handler {
	return telemetry.MetricsHandler(labels, m.WriteMetrics)
}
