package monitor

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// WriteMetrics writes the monitor's current state in the Prometheus text
// exposition format (stdlib only), so a standard monitoring stack can
// scrape a live RTF server. labels is an optional comma-separated label
// set rendered into every sample (e.g. `server="s1",zone="1"`).
//
// Exported families:
//
//	roia_ticks_total                     counter, processed ticks
//	roia_tick_duration_ms{stat=...}      mean/p50/p95/p99/max of recent ticks
//	roia_task_ms{task=...,stat=...}      per-item cost of each model parameter
//	roia_zone_users / roia_active_users  the model's n and a
//	roia_npcs / roia_replicas            the model's m and l
//	roia_tick_bytes{direction=...}       wire bytes of the last tick
func (m *Monitor) WriteMetrics(w io.Writer, labels string) error {
	m.mu.Lock()
	ticks := m.ticks
	tickSummary := m.tickTotals.Summary()
	last := m.lastBreak
	type taskStat struct {
		task Task
		sum  struct{ mean, p95 float64 }
		n    int
	}
	var tasks []taskStat
	for t := Task(0); t < numTasks; t++ {
		s := m.perTask[t].Summary()
		if s.Count == 0 {
			continue
		}
		ts := taskStat{task: t, n: s.Count}
		ts.sum.mean, ts.sum.p95 = s.Mean, s.P95
		tasks = append(tasks, ts)
	}
	m.mu.Unlock()

	lbl := func(extra string) string {
		parts := make([]string, 0, 2)
		if labels != "" {
			parts = append(parts, labels)
		}
		if extra != "" {
			parts = append(parts, extra)
		}
		if len(parts) == 0 {
			return ""
		}
		return "{" + strings.Join(parts, ",") + "}"
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE roia_ticks_total counter\n")
	fmt.Fprintf(&b, "roia_ticks_total%s %d\n", lbl(""), ticks)

	fmt.Fprintf(&b, "# TYPE roia_tick_duration_ms gauge\n")
	for _, st := range []struct {
		name string
		v    float64
	}{
		{"mean", tickSummary.Mean}, {"p50", tickSummary.P50},
		{"p95", tickSummary.P95}, {"p99", tickSummary.P99}, {"max", tickSummary.Max},
	} {
		fmt.Fprintf(&b, "roia_tick_duration_ms%s %g\n", lbl(fmt.Sprintf("stat=%q", st.name)), st.v)
	}

	fmt.Fprintf(&b, "# TYPE roia_task_ms gauge\n")
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].task < tasks[j].task })
	for _, ts := range tasks {
		fmt.Fprintf(&b, "roia_task_ms%s %g\n",
			lbl(fmt.Sprintf("task=%q,stat=\"mean\"", ts.task)), ts.sum.mean)
		fmt.Fprintf(&b, "roia_task_ms%s %g\n",
			lbl(fmt.Sprintf("task=%q,stat=\"p95\"", ts.task)), ts.sum.p95)
	}

	fmt.Fprintf(&b, "# TYPE roia_zone_users gauge\nroia_zone_users%s %d\n", lbl(""), last.Users)
	fmt.Fprintf(&b, "# TYPE roia_active_users gauge\nroia_active_users%s %d\n", lbl(""), last.ActiveUsers)
	fmt.Fprintf(&b, "# TYPE roia_npcs gauge\nroia_npcs%s %d\n", lbl(""), last.NPCs)
	fmt.Fprintf(&b, "# TYPE roia_replicas gauge\nroia_replicas%s %d\n", lbl(""), last.Replicas)
	fmt.Fprintf(&b, "# TYPE roia_tick_bytes gauge\n")
	fmt.Fprintf(&b, "roia_tick_bytes%s %d\n", lbl(`direction="in"`), last.BytesIn)
	fmt.Fprintf(&b, "roia_tick_bytes%s %d\n", lbl(`direction="out"`), last.BytesOut)

	_, err := io.WriteString(w, b.String())
	return err
}

// MetricsHandler serves WriteMetrics over HTTP, for a /metrics endpoint on
// a live server (see cmd/roiaserver -metrics).
func MetricsHandler(m *Monitor, labels string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := m.WriteMetrics(w, labels); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
