// Package monitor implements RTF's monitoring and distribution-handling
// hooks: per-tick timing of the four computational tasks of the real-time
// loop, plus migration overheads. These are exactly the quantities the
// scalability model is parameterized with (t_ua_dser, t_ua, t_fa_dser,
// t_fa, t_npc, t_aoi, t_su, t_mig_ini, t_mig_rcv), measured inside the
// middleware regardless of the application logic (Section III-C).
//
// The calibration pipeline (internal/calibrate) consumes Samples recorded
// here and fits the model's approximation functions to them.
package monitor

import (
	"sync"

	"roia/internal/stats"
	"roia/internal/telemetry"
)

// Task identifies one timed portion of the real-time loop.
type Task int

// The timed tasks, in loop order.
const (
	// UADeser is reception + deserialization of connected users' inputs.
	UADeser Task = iota
	// UA is validation + application of user inputs.
	UA
	// FADeser is reception + deserialization of forwarded inputs.
	FADeser
	// FA is application of forwarded inputs.
	FA
	// NPC is the NPC update.
	NPC
	// AOI is area-of-interest computation.
	AOI
	// SU is state-update computation + serialization.
	SU
	// MigIni is initiation of user migrations.
	MigIni
	// MigRcv is reception of user migrations.
	MigRcv
	numTasks
)

// String implements fmt.Stringer with the paper's parameter names.
func (t Task) String() string {
	names := [...]string{"t_ua_dser", "t_ua", "t_fa_dser", "t_fa", "t_npc", "t_aoi", "t_su", "t_mig_ini", "t_mig_rcv"}
	if int(t) < len(names) {
		return names[t]
	}
	return "t_unknown"
}

// Tasks returns every task in loop order, for iteration.
func Tasks() []Task {
	out := make([]Task, numTasks)
	for i := range out {
		out[i] = Task(i)
	}
	return out
}

// Breakdown is the timing of one tick, in milliseconds per task, together
// with the per-task item counts needed to derive per-item costs.
//
// With the parallel tick pipeline the two time axes diverge: TimeMS sums
// CPU time across all workers (what the paper's per-item curves are fitted
// from — per-item cost does not shrink when work runs on more cores),
// while WallMS is the elapsed time of the whole tick (what the QoS
// deadline 1/U is compared against — wall time does shrink with workers).
// With one worker the axes coincide up to untimed loop overhead.
type Breakdown struct {
	// TimeMS[t] is the total CPU time spent in task t this tick, summed
	// over every worker that executed part of the task.
	TimeMS [numTasks]float64
	// WallMS is the tick's elapsed wall-clock duration. Zero means
	// "unmeasured" and wall-facing statistics fall back to Total(), the
	// CPU sum — the pre-pipeline behaviour, which simulations that
	// synthesize Breakdowns still rely on.
	WallMS float64
	// Items[t] is how many items task t processed (inputs deserialized,
	// users updated, NPCs stepped, migrations handled, ...).
	Items [numTasks]int
	// Users is the zone-wide user count n during the tick.
	Users int
	// ActiveUsers is the number of users active on this server (a).
	ActiveUsers int
	// NPCs is the zone-wide NPC count m.
	NPCs int
	// Replicas is the zone's replica count l.
	Replicas int
	// BytesIn / BytesOut count the wire payload bytes received and sent
	// this tick. The paper names bandwidth analysis as future work and
	// cites the in/out asymmetry of game traffic (Kim et al.); these
	// counters feed the traffic model in internal/traffic.
	BytesIn, BytesOut int
}

// Add accumulates time and item count for a task.
func (b *Breakdown) Add(t Task, ms float64, items int) {
	b.TimeMS[t] += ms
	b.Items[t] += items
}

// Total returns the tick's CPU time: the sum over all tasks (and, under
// the parallel executor, over all workers).
func (b *Breakdown) Total() float64 {
	sum := 0.0
	for _, v := range b.TimeMS {
		sum += v
	}
	return sum
}

// Wall returns the tick duration as the deadline sees it: the measured
// wall-clock duration when available, else the CPU sum.
func (b *Breakdown) Wall() float64 {
	if b.WallMS > 0 {
		return b.WallMS
	}
	return b.Total()
}

// Merge folds another breakdown's task accounting into b — the
// deterministic reduction the executor applies to per-worker breakdowns
// after a parallel stage. Wall time and workload gauges are not merged:
// they describe the whole tick, not one worker's share.
func (b *Breakdown) Merge(other *Breakdown) {
	for t := Task(0); t < numTasks; t++ {
		b.TimeMS[t] += other.TimeMS[t]
		b.Items[t] += other.Items[t]
	}
}

// PerItem returns the average per-item time of a task in this tick and
// whether any items were processed.
func (b *Breakdown) PerItem(t Task) (float64, bool) {
	if b.Items[t] == 0 {
		return 0, false
	}
	return b.TimeMS[t] / float64(b.Items[t]), true
}

// Sample is one calibration data point: the per-item cost of a task
// observed at a given workload.
type Sample struct {
	Task Task
	// X is the workload coordinate the model's curves are functions of
	// (the zone-wide user count n).
	X float64
	// Y is the measured per-item CPU time in ms.
	Y float64
}

// Monitor aggregates tick breakdowns for one server. It keeps a bounded
// recent history (for threshold decisions by the resource manager), a
// cumulative tick-duration histogram (for tail analysis via /metrics), and
// a calibration sample log (enabled on demand, capped at SampleLimit).
// Monitor is safe for concurrent use: the real-time loop records while the
// resource manager reads.
type Monitor struct {
	mu sync.Mutex

	// tickTotals tracks wall-facing tick durations (Breakdown.Wall);
	// tickCPU tracks the CPU sums (Breakdown.Total). They coincide for
	// sequential ticks and for synthesized breakdowns without WallMS.
	tickTotals *stats.Reservoir
	tickCPU    *stats.Reservoir
	perTask    [numTasks]*stats.Reservoir
	tickHist   *telemetry.Histogram
	// tail tracks windowed wall-duration quantiles (p50…p99.9) over the
	// recent past — the QoS deadline is a tail constraint, and a cumulative
	// histogram buries a ten-minute incident under hours of healthy ticks.
	tail *telemetry.TailTracker

	collect bool
	samples []Sample
	// traffic holds (users, bytesIn, bytesOut) per tick while collecting.
	traffic []TrafficSample
	// sampleLimit caps samples and traffic; excess observations are counted
	// in dropped instead of growing memory without bound.
	sampleLimit int
	dropped     uint64

	ticks     uint64
	lastUsers int
	lastBreak Breakdown

	// deadlineMS is the QoS contract 1/U in milliseconds; ticks whose
	// total exceeds it are counted in violations. Zero disables.
	deadlineMS float64
	violations uint64
}

// TrafficSample is one tick's bandwidth observation.
type TrafficSample struct {
	// Users is the zone-wide user count during the tick.
	Users int
	// BytesIn / BytesOut are the tick's wire payload bytes.
	BytesIn, BytesOut int
}

// HistorySize is the bounded per-server tick history.
const HistorySize = 512

// DefaultSampleLimit caps the calibration sample log (and, separately, the
// traffic log) while collection is on. Generous: at 25 Hz with all nine
// tasks active, ~75 minutes of collection — but a long-lived server with
// collection left on can no longer grow memory without bound.
const DefaultSampleLimit = 1 << 20

// New returns a Monitor with bounded history.
func New() *Monitor {
	m := &Monitor{
		tickTotals:  stats.NewReservoir(HistorySize),
		tickCPU:     stats.NewReservoir(HistorySize),
		tickHist:    telemetry.NewHistogram(telemetry.DefTickBuckets()...),
		tail:        telemetry.NewTailTracker(0),
		sampleLimit: DefaultSampleLimit,
	}
	for i := range m.perTask {
		m.perTask[i] = stats.NewReservoir(HistorySize)
	}
	return m
}

// SetCollecting toggles calibration sample collection (off by default: the
// sample log grows up to the configured SampleLimit while enabled).
func (m *Monitor) SetCollecting(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.collect = on
}

// SetSampleLimit caps the calibration sample and traffic logs at limit
// entries each; observations beyond the cap are counted by DroppedSamples
// instead of stored. A non-positive limit restores DefaultSampleLimit.
func (m *Monitor) SetSampleLimit(limit int) {
	if limit <= 0 {
		limit = DefaultSampleLimit
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sampleLimit = limit
}

// DroppedSamples reports how many calibration observations were discarded
// because a sample log was at its limit.
func (m *Monitor) DroppedSamples() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// SetDeadline sets the tick QoS deadline in milliseconds — the model's
// 1/U, the response-time budget every tick must fit in. Ticks recorded
// with a larger total are counted by DeadlineViolations. A non-positive
// deadline disables the accounting.
func (m *Monitor) SetDeadline(ms float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deadlineMS = ms
}

// DeadlineMS reports the tick QoS deadline in force (0 when disabled).
func (m *Monitor) DeadlineMS() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.deadlineMS
}

// DeadlineViolations reports how many recorded ticks exceeded the
// deadline. The counter is cumulative until Reset.
func (m *Monitor) DeadlineViolations() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.violations
}

// RecordTick ingests one tick's breakdown.
func (m *Monitor) RecordTick(b Breakdown) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ticks++
	m.lastUsers = b.Users
	m.lastBreak = b
	// The deadline, histogram, and recent-tick stats are wall-facing:
	// they must reflect what a parallel tick actually took, not the CPU
	// it burned across workers. Per-item curves below stay CPU-facing.
	wall := b.Wall()
	m.tickTotals.Add(wall)
	m.tickCPU.Add(b.Total())
	m.tickHist.Observe(wall)
	m.tail.Observe(wall)
	if m.deadlineMS > 0 && wall > m.deadlineMS {
		m.violations++
	}
	for t := Task(0); t < numTasks; t++ {
		if per, ok := b.PerItem(t); ok {
			m.perTask[t].Add(per)
			if m.collect {
				if len(m.samples) < m.sampleLimit {
					m.samples = append(m.samples, Sample{Task: t, X: float64(b.Users), Y: per})
				} else {
					m.dropped++
				}
			}
		}
	}
	if m.collect && (b.BytesIn > 0 || b.BytesOut > 0) {
		if len(m.traffic) < m.sampleLimit {
			m.traffic = append(m.traffic, TrafficSample{Users: b.Users, BytesIn: b.BytesIn, BytesOut: b.BytesOut})
		} else {
			m.dropped++
		}
	}
}

// TrafficSamples returns a copy of the per-tick bandwidth log (collected
// while SetCollecting is on).
func (m *Monitor) TrafficSamples() []TrafficSample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]TrafficSample(nil), m.traffic...)
}

// Ticks reports how many ticks have been recorded.
func (m *Monitor) Ticks() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ticks
}

// LastBreakdown returns the most recent tick breakdown.
func (m *Monitor) LastBreakdown() Breakdown {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastBreak
}

// TickSummary summarizes recent tick durations (ms).
func (m *Monitor) TickSummary() stats.Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tickTotals.Summary()
}

// MeanTick returns the mean recent tick wall duration (ms), the runtime
// signal RTF-RMS compares against the provider's thresholds.
func (m *Monitor) MeanTick() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tickTotals.Mean()
}

// TickCPUSummary summarizes recent tick CPU sums (ms): the time burned
// across all workers, which exceeds the wall duration once the parallel
// executor spreads a tick over several cores.
func (m *Monitor) TickCPUSummary() stats.Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tickCPU.Summary()
}

// MeanTickCPU returns the mean recent tick CPU sum (ms). The ratio
// MeanTickCPU/MeanTick is the tick's effective speedup — the live
// counterpart of the model's USL term S(w).
func (m *Monitor) MeanTickCPU() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tickCPU.Mean()
}

// TaskSummary summarizes the recent per-item cost of one task.
func (m *Monitor) TaskSummary(t Task) stats.Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.perTask[t].Summary()
}

// Samples returns a copy of the calibration sample log.
func (m *Monitor) Samples() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Sample(nil), m.samples...)
}

// SamplesFor returns a copy of the calibration samples of one task.
func (m *Monitor) SamplesFor(t Task) []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Sample
	for _, s := range m.samples {
		if s.Task == t {
			out = append(out, s)
		}
	}
	return out
}

// Reset clears all history and samples.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ticks = 0
	m.samples = nil
	m.traffic = nil
	m.dropped = 0
	m.violations = 0
	m.tickTotals = stats.NewReservoir(HistorySize)
	m.tickCPU = stats.NewReservoir(HistorySize)
	m.tickHist = telemetry.NewHistogram(telemetry.DefTickBuckets()...)
	m.tail = telemetry.NewTailTracker(0)
	for i := range m.perTask {
		m.perTask[i] = stats.NewReservoir(HistorySize)
	}
}

// TickHistogram returns a snapshot of the cumulative tick-duration
// histogram (ms).
func (m *Monitor) TickHistogram() *telemetry.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tickHist.Clone()
}

// TailQuantiles snapshots the windowed tick wall-duration quantiles
// (p50/p90/p99/p99.9 over the last ~1–2k ticks) — the tail the QoS
// deadline 1/U is actually governed by.
func (m *Monitor) TailQuantiles() telemetry.TailQuantiles {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tail.Quantiles()
}

// TailHistogram returns an independent log-bucketed histogram of the
// windowed tick wall durations. Histograms from different replicas share
// the same bucket layout, so the fleet collector merges them into
// zone-level tail quantiles.
func (m *Monitor) TailHistogram() *telemetry.LogHistogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tail.Histogram()
}
