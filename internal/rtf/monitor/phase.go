package monitor

import (
	"roia/internal/model"
	"roia/internal/telemetry"
)

// PhaseOf maps a timed task to the model phase it belongs to, following
// the paper's grouping of the real-time loop into four computational
// tasks: deserialization is part of the input tasks, serialization part
// of the state-update task. Migration tasks are RMS overhead outside the
// four-phase loop body; for those (and unknown tasks) ok is false.
func PhaseOf(t Task) (telemetry.Phase, bool) {
	switch t {
	case UADeser, UA:
		return telemetry.PhaseUserInput, true
	case FADeser, FA:
		return telemetry.PhaseForwardedInput, true
	case NPC:
		return telemetry.PhaseNPCUpdate, true
	case AOI, SU:
		return telemetry.PhaseAOISU, true
	default:
		return 0, false
	}
}

// PhaseBreakdown folds the nine timed tasks of one tick into the four
// model phases: per-phase total time (ms) and item counts. Item counts of
// the merged tasks within a phase are not summed — the deser+apply halves
// process the same items, so the count is the max over the phase's tasks.
// Migration time is excluded (it is not part of the loop body the model's
// Eq. 1 predicts).
func (b *Breakdown) PhaseBreakdown() (durMS [telemetry.NumPhases]float64, items [telemetry.NumPhases]int) {
	for t := Task(0); t < numTasks; t++ {
		p, ok := PhaseOf(t)
		if !ok {
			continue
		}
		durMS[p] += b.TimeMS[t]
		if b.Items[t] > items[p] {
			items[p] = b.Items[t]
		}
	}
	return durMS, items
}

// phaseTasks lists each phase's constituent tasks, in loop order.
var phaseTasks = [telemetry.NumPhases][]Task{
	telemetry.PhaseUserInput:      {UADeser, UA},
	telemetry.PhaseForwardedInput: {FADeser, FA},
	telemetry.PhaseNPCUpdate:      {NPC},
	telemetry.PhaseAOISU:          {AOI, SU},
}

// phasePredicted returns the model's per-item cost of one phase at
// workload (n, m): the sum of its constituent task curves.
func phasePredicted(cost model.CostModel, p telemetry.Phase, n, m int) float64 {
	switch p {
	case telemetry.PhaseUserInput:
		return cost.UADeserAt(n, m) + cost.UAAt(n, m)
	case telemetry.PhaseForwardedInput:
		return cost.FADeserAt(n, m) + cost.FAAt(n, m)
	case telemetry.PhaseNPCUpdate:
		return cost.NPCAt(n, m)
	case telemetry.PhaseAOISU:
		return cost.AOIAt(n, m) + cost.SUAt(n, m)
	}
	return 0
}

// ObserveTaskDrift compares the measured per-item cost of each of the
// four phases (mean over the recent per-task reservoirs) against the
// fitted cost curves at the current workload, and feeds one observation
// per phase into td. Phases with no recent samples (e.g. no forwarded
// inputs on a single-replica zone) are skipped, so their drift stays at
// zero samples rather than reading as a spurious 100% error.
func (m *Monitor) ObserveTaskDrift(cost model.CostModel, td *telemetry.TaskDrift) {
	if cost == nil || td == nil {
		return
	}
	m.mu.Lock()
	n, npcs := m.lastBreak.Users, m.lastBreak.NPCs
	type obs struct {
		phase    telemetry.Phase
		measured float64
		ok       bool
	}
	var all [telemetry.NumPhases]obs
	for p := telemetry.Phase(0); int(p) < telemetry.NumPhases; p++ {
		sum, any := 0.0, false
		for _, t := range phaseTasks[p] {
			s := m.perTask[t].Summary()
			if s.Count == 0 {
				continue
			}
			sum += s.Mean
			any = true
		}
		all[p] = obs{phase: p, measured: sum, ok: any}
	}
	m.mu.Unlock()
	for _, o := range all {
		if !o.ok {
			continue
		}
		td.Observe(o.phase.String(), phasePredicted(cost, o.phase, n, npcs), o.measured)
	}
}
