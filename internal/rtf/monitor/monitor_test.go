package monitor

import (
	"sync"
	"testing"
)

func TestTaskNamesMatchPaper(t *testing.T) {
	want := map[Task]string{
		UADeser: "t_ua_dser", UA: "t_ua", FADeser: "t_fa_dser", FA: "t_fa",
		NPC: "t_npc", AOI: "t_aoi", SU: "t_su", MigIni: "t_mig_ini", MigRcv: "t_mig_rcv",
	}
	for task, name := range want {
		if task.String() != name {
			t.Fatalf("%d.String() = %q, want %q", task, task.String(), name)
		}
	}
	if Task(99).String() != "t_unknown" {
		t.Fatal("unknown task name")
	}
	if len(Tasks()) != int(numTasks) {
		t.Fatalf("Tasks() returned %d, want %d", len(Tasks()), numTasks)
	}
}

func TestBreakdownTotals(t *testing.T) {
	var b Breakdown
	b.Add(UA, 2.0, 10)
	b.Add(UA, 1.0, 5)
	b.Add(AOI, 3.0, 15)
	if got := b.Total(); got != 6.0 {
		t.Fatalf("Total = %g, want 6", got)
	}
	per, ok := b.PerItem(UA)
	if !ok || per != 0.2 {
		t.Fatalf("PerItem(UA) = %g ok=%v, want 0.2 true", per, ok)
	}
	if _, ok := b.PerItem(SU); ok {
		t.Fatal("PerItem with zero items reported ok")
	}
}

func TestMonitorRecordAndSummaries(t *testing.T) {
	m := New()
	for i := 1; i <= 3; i++ {
		var b Breakdown
		b.Users = 100 * i
		b.Add(UA, float64(i), i) // per-item cost always 1.0
		b.Add(SU, 2*float64(i), i)
		m.RecordTick(b)
	}
	if m.Ticks() != 3 {
		t.Fatalf("ticks = %d", m.Ticks())
	}
	if got := m.MeanTick(); got != (3.0+6.0+9.0)/3 {
		t.Fatalf("MeanTick = %g", got)
	}
	if s := m.TaskSummary(UA); s.Count != 3 || s.Mean != 1.0 {
		t.Fatalf("TaskSummary(UA) = %+v", s)
	}
	if lb := m.LastBreakdown(); lb.Users != 300 {
		t.Fatalf("LastBreakdown.Users = %d", lb.Users)
	}
}

func TestMonitorSampleCollection(t *testing.T) {
	m := New()
	var b Breakdown
	b.Users = 50
	b.Add(UA, 5, 10)
	m.RecordTick(b) // collection off: no samples
	if got := m.Samples(); len(got) != 0 {
		t.Fatalf("samples recorded while disabled: %v", got)
	}
	m.SetCollecting(true)
	m.RecordTick(b)
	samples := m.Samples()
	if len(samples) != 1 {
		t.Fatalf("samples = %v", samples)
	}
	if s := samples[0]; s.Task != UA || s.X != 50 || s.Y != 0.5 {
		t.Fatalf("sample = %+v", s)
	}
	if got := m.SamplesFor(SU); len(got) != 0 {
		t.Fatal("SamplesFor returned wrong task samples")
	}
	if got := m.SamplesFor(UA); len(got) != 1 {
		t.Fatal("SamplesFor missed UA sample")
	}
}

func TestMonitorReset(t *testing.T) {
	m := New()
	m.SetCollecting(true)
	var b Breakdown
	b.Add(UA, 1, 1)
	m.RecordTick(b)
	m.Reset()
	if m.Ticks() != 0 || len(m.Samples()) != 0 || m.MeanTick() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestMonitorConcurrentAccess(t *testing.T) {
	m := New()
	m.SetCollecting(true)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var b Breakdown
				b.Users = i
				b.Add(UA, 1, 1)
				m.RecordTick(b)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = m.MeanTick()
				_ = m.TickSummary()
				_ = m.LastBreakdown()
			}
		}()
	}
	wg.Wait()
	if m.Ticks() != 800 {
		t.Fatalf("ticks = %d, want 800", m.Ticks())
	}
}

func TestMonitorSampleLimit(t *testing.T) {
	m := New()
	m.SetCollecting(true)
	m.SetSampleLimit(5)
	for i := 0; i < 10; i++ {
		var b Breakdown
		b.Users = i
		b.Add(UA, 1, 1) // one calibration sample per tick
		m.RecordTick(b)
	}
	if got := len(m.Samples()); got != 5 {
		t.Fatalf("samples = %d, want 5 (capped)", got)
	}
	if got := m.DroppedSamples(); got != 5 {
		t.Fatalf("dropped = %d, want 5", got)
	}
	// Traffic log shares the limit but counts separately against it.
	for i := 0; i < 8; i++ {
		var b Breakdown
		b.BytesIn = 100
		m.RecordTick(b)
	}
	if got := len(m.TrafficSamples()); got != 5 {
		t.Fatalf("traffic samples = %d, want 5 (capped)", got)
	}
	if got := m.DroppedSamples(); got != 8 {
		t.Fatalf("dropped = %d, want 8 (5 task + 3 traffic)", got)
	}
	// Reset clears the counter and frees the logs.
	m.Reset()
	if m.DroppedSamples() != 0 || len(m.Samples()) != 0 {
		t.Fatal("Reset did not clear the sample logs")
	}
}

func TestMonitorSampleLimitDefault(t *testing.T) {
	m := New()
	m.SetSampleLimit(0) // restores the default
	m.SetCollecting(true)
	var b Breakdown
	b.Add(UA, 1, 1)
	m.RecordTick(b)
	if got := len(m.Samples()); got != 1 {
		t.Fatalf("samples = %d, want 1", got)
	}
	if m.DroppedSamples() != 0 {
		t.Fatal("default limit dropped samples")
	}
}

func TestMonitorTickHistogram(t *testing.T) {
	m := New()
	for _, ms := range []float64{1, 3, 50} {
		var b Breakdown
		b.Add(UA, ms, 1)
		m.RecordTick(b)
	}
	h := m.TickHistogram()
	if h.Count() != 3 {
		t.Fatalf("histogram count = %d, want 3", h.Count())
	}
	if h.Sum() != 54 {
		t.Fatalf("histogram sum = %g, want 54", h.Sum())
	}
	// The returned histogram is a snapshot: further ticks don't mutate it.
	var b Breakdown
	b.Add(UA, 1, 1)
	m.RecordTick(b)
	if h.Count() != 3 {
		t.Fatal("TickHistogram returned a live reference")
	}
}

// TestCPUWallSplit pins the two-axis accounting: wall-facing statistics
// (recent-tick summary, deadline violations) follow WallMS, per-item
// curves and the CPU summary follow the TimeMS sums, and a breakdown
// without WallMS falls back to the CPU sum everywhere (the pre-pipeline
// behaviour simulations rely on).
func TestCPUWallSplit(t *testing.T) {
	m := New()
	m.SetDeadline(10)

	// Parallel-looking tick: 16 ms of CPU across workers, 6 ms of wall.
	var b Breakdown
	b.Add(AOI, 12, 4)
	b.Add(SU, 4, 4)
	b.WallMS = 6
	m.RecordTick(b)

	if got := m.MeanTick(); got != 6 {
		t.Fatalf("MeanTick = %v, want wall 6", got)
	}
	if got := m.MeanTickCPU(); got != 16 {
		t.Fatalf("MeanTickCPU = %v, want CPU sum 16", got)
	}
	if got := m.DeadlineViolations(); got != 0 {
		t.Fatalf("violations = %d; a 6 ms wall tick must not violate a 10 ms deadline even at 16 ms CPU", got)
	}
	last := m.LastBreakdown()
	if per, ok := last.PerItem(AOI); !ok || per != 3 {
		t.Fatalf("PerItem(AOI) = %v, %v; per-item cost must stay CPU-based", per, ok)
	}

	// Slow wall tick: violates even though CPU is under the deadline.
	var b2 Breakdown
	b2.Add(UA, 4, 2)
	b2.WallMS = 12
	m.RecordTick(b2)
	if got := m.DeadlineViolations(); got != 1 {
		t.Fatalf("violations = %d, want 1 (12 ms wall > 10 ms deadline)", got)
	}

	// Legacy breakdown without WallMS: Wall() falls back to Total().
	var b3 Breakdown
	b3.Add(NPC, 11, 3)
	if b3.Wall() != b3.Total() {
		t.Fatalf("Wall fallback = %v, want Total %v", b3.Wall(), b3.Total())
	}
	m.RecordTick(b3)
	if got := m.DeadlineViolations(); got != 2 {
		t.Fatalf("violations = %d, want 2 (fallback 11 ms > 10 ms)", got)
	}
}

// TestBreakdownMerge pins the executor's per-worker reduction.
func TestBreakdownMerge(t *testing.T) {
	var total, w1, w2 Breakdown
	total.WallMS = 5
	total.Users = 10
	w1.Add(AOI, 2, 3)
	w1.Add(SU, 1, 3)
	w2.Add(AOI, 4, 7)
	total.Merge(&w1)
	total.Merge(&w2)
	if total.TimeMS[AOI] != 6 || total.Items[AOI] != 10 {
		t.Fatalf("merged AOI = %v ms / %d items, want 6 / 10", total.TimeMS[AOI], total.Items[AOI])
	}
	if total.TimeMS[SU] != 1 || total.Items[SU] != 3 {
		t.Fatalf("merged SU = %v ms / %d items, want 1 / 3", total.TimeMS[SU], total.Items[SU])
	}
	if total.WallMS != 5 || total.Users != 10 {
		t.Fatal("Merge must not touch wall time or workload gauges")
	}
}
