package monitor

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func seededMonitor() *Monitor {
	m := New()
	var b Breakdown
	b.Users = 120
	b.ActiveUsers = 60
	b.NPCs = 10
	b.Replicas = 2
	b.BytesIn = 512
	b.BytesOut = 4096
	b.Add(UA, 6.0, 60)
	b.Add(AOI, 3.0, 60)
	m.RecordTick(b)
	return m
}

func TestWriteMetricsExposition(t *testing.T) {
	m := seededMonitor()
	var sb strings.Builder
	if err := m.WriteMetrics(&sb, `server="s1"`); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`roia_ticks_total{server="s1"} 1`,
		`roia_tick_duration_ms{server="s1",stat="mean"} 9`,
		`roia_task_ms{server="s1",task="t_ua",stat="mean"} 0.1`,
		`roia_task_ms{server="s1",task="t_aoi",stat="mean"} 0.05`,
		`roia_zone_users{server="s1"} 120`,
		`roia_active_users{server="s1"} 60`,
		`roia_npcs{server="s1"} 10`,
		`roia_replicas{server="s1"} 2`,
		`roia_tick_bytes{server="s1",direction="in"} 512`,
		`roia_tick_bytes{server="s1",direction="out"} 4096`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	// Prometheus exposition needs TYPE headers.
	if !strings.Contains(out, "# TYPE roia_tick_duration_ms gauge") {
		t.Fatal("missing TYPE header")
	}
}

func TestWriteMetricsNoLabels(t *testing.T) {
	m := seededMonitor()
	var sb strings.Builder
	if err := m.WriteMetrics(&sb, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "roia_ticks_total 1") {
		t.Fatalf("unlabeled sample missing:\n%s", sb.String())
	}
}

func TestMetricsHandler(t *testing.T) {
	m := seededMonitor()
	srv := httptest.NewServer(MetricsHandler(m, `zone="1"`))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `roia_zone_users{zone="1"} 120`) {
		t.Fatalf("handler body:\n%s", body)
	}
}
