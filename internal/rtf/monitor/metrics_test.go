package monitor

import (
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func seededMonitor() *Monitor {
	m := New()
	var b Breakdown
	b.Users = 120
	b.ActiveUsers = 60
	b.NPCs = 10
	b.Replicas = 2
	b.BytesIn = 512
	b.BytesOut = 4096
	b.Add(UA, 6.0, 60)
	b.Add(AOI, 3.0, 60)
	m.RecordTick(b)
	return m
}

func TestWriteMetricsExposition(t *testing.T) {
	m := seededMonitor()
	var sb strings.Builder
	if err := m.WriteMetrics(&sb, `server="s1"`); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`roia_ticks_total{server="s1"} 1`,
		`roia_tick_stat_ms{server="s1",stat="mean"} 9`,
		`roia_tick_duration_ms_bucket{server="s1",le="10"} 1`,
		`roia_tick_duration_ms_sum{server="s1"} 9`,
		`roia_tick_duration_ms_count{server="s1"} 1`,
		`roia_task_ms{server="s1",task="t_ua",stat="mean"} 0.1`,
		`roia_task_ms{server="s1",task="t_aoi",stat="mean"} 0.05`,
		`roia_zone_users{server="s1"} 120`,
		`roia_active_users{server="s1"} 60`,
		`roia_npcs{server="s1"} 10`,
		`roia_replicas{server="s1"} 2`,
		`roia_tick_bytes{server="s1",direction="in"} 512`,
		`roia_tick_bytes{server="s1",direction="out"} 4096`,
		`roia_monitor_dropped_samples_total{server="s1"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	// Prometheus exposition needs TYPE headers.
	if !strings.Contains(out, "# TYPE roia_tick_stat_ms gauge") {
		t.Fatal("missing TYPE header")
	}
	if !strings.Contains(out, "# TYPE roia_tick_duration_ms histogram") {
		t.Fatal("missing histogram TYPE header")
	}
}

var (
	sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.e+-]+|NaN)$`)
	labelPair  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
	typeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

// TestWriteMetricsExpositionGrammar parses the exposition line by line:
// every sample must follow the text-format grammar, carry well-formed
// quoted labels, belong to a declared # TYPE family, and the histogram's
// cumulative buckets must be monotonically non-decreasing and end at the
// series count.
func TestWriteMetricsExpositionGrammar(t *testing.T) {
	m := seededMonitor()
	var sb strings.Builder
	if err := m.WriteMetrics(&sb, `server="s1",zone="1"`); err != nil {
		t.Fatal(err)
	}
	declared := map[string]string{} // family -> kind
	var bucketPrev uint64
	var bucketLast, histCount uint64
	sawInf := false
	for _, line := range strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			tm := typeLine.FindStringSubmatch(line)
			if tm == nil {
				t.Fatalf("malformed comment line %q", line)
			}
			if _, dup := declared[tm[1]]; dup {
				t.Fatalf("family %q declared twice", tm[1])
			}
			declared[tm[1]] = tm[2]
			continue
		}
		sm := sampleLine.FindStringSubmatch(line)
		if sm == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		name, labels := sm[1], sm[2]
		// Every sample must belong to a declared family; histogram series
		// use the family name plus _bucket/_sum/_count.
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && declared[base] == "histogram" {
				family = base
			}
		}
		kind, ok := declared[family]
		if !ok {
			t.Fatalf("sample %q has no # TYPE declaration", name)
		}
		if labels != "" {
			for _, pair := range strings.Split(strings.Trim(labels, "{}"), ",") {
				if !labelPair.MatchString(pair) {
					t.Fatalf("malformed label pair %q in %q", pair, line)
				}
			}
		}
		if kind == "histogram" && strings.HasSuffix(name, "_bucket") {
			v, err := strconv.ParseUint(sm[3], 10, 64)
			if err != nil {
				t.Fatalf("non-integer bucket value in %q", line)
			}
			if v < bucketPrev {
				t.Fatalf("bucket counts not cumulative: %d after %d", v, bucketPrev)
			}
			bucketPrev = v
			bucketLast = v
			if strings.Contains(labels, `le="+Inf"`) {
				sawInf = true
			}
		}
		if name == "roia_tick_duration_ms_count" {
			histCount, _ = strconv.ParseUint(sm[3], 10, 64)
		}
	}
	if !sawInf {
		t.Fatal("histogram lacks an le=\"+Inf\" bucket")
	}
	if bucketLast != histCount {
		t.Fatalf("last bucket %d != histogram count %d", bucketLast, histCount)
	}
}

func TestWriteMetricsNoLabels(t *testing.T) {
	m := seededMonitor()
	var sb strings.Builder
	if err := m.WriteMetrics(&sb, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "roia_ticks_total 1") {
		t.Fatalf("unlabeled sample missing:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `roia_tick_duration_ms_bucket{le="+Inf"} 1`) {
		t.Fatalf("unlabeled histogram bucket missing:\n%s", sb.String())
	}
}

func TestMetricsHandler(t *testing.T) {
	m := seededMonitor()
	srv := httptest.NewServer(MetricsHandler(m, `zone="1"`))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `roia_zone_users{zone="1"} 120`) {
		t.Fatalf("handler body:\n%s", body)
	}
}
