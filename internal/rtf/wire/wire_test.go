package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTripAllTypes(t *testing.T) {
	w := NewWriter(0)
	w.Uint8(200)
	w.Bool(true)
	w.Bool(false)
	w.Uint16(65535)
	w.Uint32(1 << 30)
	w.Uint64(1 << 62)
	w.Varint(-123456789)
	w.Uvarint(987654321)
	w.Float64(3.14159)
	w.Float32(2.5)
	w.String("héllo wörld")
	w.Blob([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if got := r.Uint8(); got != 200 {
		t.Fatalf("Uint8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := r.Uint16(); got != 65535 {
		t.Fatalf("Uint16 = %d", got)
	}
	if got := r.Uint32(); got != 1<<30 {
		t.Fatalf("Uint32 = %d", got)
	}
	if got := r.Uint64(); got != 1<<62 {
		t.Fatalf("Uint64 = %d", got)
	}
	if got := r.Varint(); got != -123456789 {
		t.Fatalf("Varint = %d", got)
	}
	if got := r.Uvarint(); got != 987654321 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Float64(); got != 3.14159 {
		t.Fatalf("Float64 = %g", got)
	}
	if got := r.Float32(); got != 2.5 {
		t.Fatalf("Float32 = %g", got)
	}
	if got := r.String(); got != "héllo wörld" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Blob = %v", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", r.Remaining())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.Uint32() // fails: only 1 byte
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("err = %v, want ErrShortBuffer", r.Err())
	}
	// Subsequent reads return zero values and keep the first error.
	if got := r.Uint8(); got != 0 {
		t.Fatalf("read after error = %d, want 0", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("string after error = %q, want empty", got)
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatal("sticky error lost")
	}
}

func TestReaderRejectsOversizedDeclaredLength(t *testing.T) {
	w := NewWriter(0)
	w.Uvarint(1 << 40) // declared length far beyond payload
	r := NewReader(w.Bytes())
	if got := r.String(); got != "" || !errors.Is(r.Err(), ErrStringTooLong) {
		t.Fatalf("got %q err=%v, want ErrStringTooLong", got, r.Err())
	}
	r2 := NewReader(w.Bytes())
	if got := r2.Blob(); got != nil || !errors.Is(r2.Err(), ErrStringTooLong) {
		t.Fatalf("blob got %v err=%v, want ErrStringTooLong", got, r2.Err())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.Uint64(42)
	if w.Len() != 8 {
		t.Fatalf("len = %d, want 8", w.Len())
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("len after reset = %d, want 0", w.Len())
	}
}

func TestRoundTripProperties(t *testing.T) {
	intProp := func(v int64) bool {
		w := NewWriter(0)
		w.Varint(v)
		return NewReader(w.Bytes()).Varint() == v
	}
	if err := quick.Check(intProp, nil); err != nil {
		t.Fatalf("varint: %v", err)
	}
	uintProp := func(v uint64) bool {
		w := NewWriter(0)
		w.Uvarint(v)
		return NewReader(w.Bytes()).Uvarint() == v
	}
	if err := quick.Check(uintProp, nil); err != nil {
		t.Fatalf("uvarint: %v", err)
	}
	floatProp := func(v float64) bool {
		w := NewWriter(0)
		w.Float64(v)
		got := NewReader(w.Bytes()).Float64()
		return got == v || (math.IsNaN(got) && math.IsNaN(v))
	}
	if err := quick.Check(floatProp, nil); err != nil {
		t.Fatalf("float64: %v", err)
	}
	strProp := func(s string) bool {
		w := NewWriter(0)
		w.String(s)
		return NewReader(w.Bytes()).String() == s
	}
	if err := quick.Check(strProp, nil); err != nil {
		t.Fatalf("string: %v", err)
	}
	blobProp := func(b []byte) bool {
		w := NewWriter(0)
		w.Blob(b)
		return bytes.Equal(NewReader(w.Bytes()).Blob(), b)
	}
	if err := quick.Check(blobProp, nil); err != nil {
		t.Fatalf("blob: %v", err)
	}
}

// testMsg is a minimal registered message for registry tests.
type testMsg struct {
	A uint32
	B string
}

func (*testMsg) WireKind() Kind { return 7 }
func (m *testMsg) MarshalWire(w *Writer) {
	w.Uint32(m.A)
	w.String(m.B)
}
func (m *testMsg) UnmarshalWire(r *Reader) error {
	m.A = r.Uint32()
	m.B = r.String()
	return r.Err()
}

type otherMsg struct{ V uint8 }

func (*otherMsg) WireKind() Kind          { return 9 }
func (m *otherMsg) MarshalWire(w *Writer) { w.Uint8(m.V) }
func (m *otherMsg) UnmarshalWire(r *Reader) error {
	m.V = r.Uint8()
	return r.Err()
}

func TestRegistryEncodeDecode(t *testing.T) {
	reg := NewRegistry(
		func() Message { return &testMsg{} },
		func() Message { return &otherMsg{} },
	)
	payload := reg.EncodeToBytes(&testMsg{A: 99, B: "zone-1"})
	msg, err := reg.Decode(payload)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	got, ok := msg.(*testMsg)
	if !ok {
		t.Fatalf("decoded %T, want *testMsg", msg)
	}
	if got.A != 99 || got.B != "zone-1" {
		t.Fatalf("decoded %+v", got)
	}
}

func TestRegistryUnknownKind(t *testing.T) {
	reg := NewRegistry(func() Message { return &testMsg{} })
	w := NewWriter(4)
	w.Uint16(12345)
	if _, err := reg.Decode(w.Bytes()); err == nil {
		t.Fatal("unknown kind decoded")
	}
}

func TestRegistryTruncatedPayload(t *testing.T) {
	reg := NewRegistry(func() Message { return &testMsg{} })
	payload := reg.EncodeToBytes(&testMsg{A: 1, B: "abc"})
	if _, err := reg.Decode(payload[:3]); err == nil {
		t.Fatal("truncated payload decoded")
	}
	if _, err := reg.Decode(nil); err == nil {
		t.Fatal("empty payload decoded")
	}
}

func TestRegistryDuplicateKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate kind")
		}
	}()
	NewRegistry(
		func() Message { return &testMsg{} },
		func() Message { return &testMsg{} },
	)
}

func TestEncodeReusesWriter(t *testing.T) {
	reg := NewRegistry(func() Message { return &testMsg{} })
	w := NewWriter(16)
	p1 := append([]byte(nil), reg.Encode(w, &testMsg{A: 1, B: "x"})...)
	p2 := append([]byte(nil), reg.Encode(w, &testMsg{A: 2, B: "y"})...)
	m1, err1 := reg.Decode(p1)
	m2, err2 := reg.Decode(p2)
	if err1 != nil || err2 != nil {
		t.Fatalf("decode errors: %v %v", err1, err2)
	}
	if m1.(*testMsg).A != 1 || m2.(*testMsg).A != 2 {
		t.Fatal("writer reuse corrupted payloads")
	}
}
