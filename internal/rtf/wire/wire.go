// Package wire implements RTF's communication-handling substrate: a compact
// binary serialization format with explicit, allocation-conscious writers
// and readers, plus a message registry for self-describing payloads.
//
// The paper's RTF middleware performs automatic (de)serialization and
// (un)marshalling of user inputs, state updates and migration data; this
// package is the equivalent mechanism. Every network payload in this
// repository — client inputs, server state updates, forwarded interactions
// between replicas, and user-migration transfers — goes through wire.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Common errors reported by Reader.
var (
	// ErrShortBuffer indicates a read past the end of the payload.
	ErrShortBuffer = errors.New("wire: short buffer")
	// ErrStringTooLong indicates a declared string/byte length beyond the
	// remaining payload (corrupt or hostile input).
	ErrStringTooLong = errors.New("wire: declared length exceeds payload")
)

// Writer serializes values into a growing byte buffer. The zero value is
// ready to use. Writers are cheap to reset and intended to be reused per
// connection or per tick.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Reset truncates the buffer, retaining capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Bytes returns the serialized payload. The slice aliases the writer's
// internal buffer and is invalidated by the next write or Reset.
func (w *Writer) Bytes() []byte { return w.buf }

// Len reports the current payload size.
func (w *Writer) Len() int { return len(w.buf) }

// Uint8 appends one byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
}

// Uint16 appends a big-endian uint16.
func (w *Writer) Uint16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// Uint32 appends a big-endian uint32.
func (w *Writer) Uint32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// Uint64 appends a big-endian uint64.
func (w *Writer) Uint64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// Varint appends a zig-zag varint-encoded int64.
func (w *Writer) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Uvarint appends a varint-encoded uint64.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Float64 appends an IEEE-754 float64.
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// Float32 appends an IEEE-754 float32.
func (w *Writer) Float32(v float32) { w.Uint32(math.Float32bits(v)) }

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Reader deserializes values from a byte slice. Errors are sticky: after
// the first failure every subsequent read returns the zero value, and Err
// reports the original failure. This keeps message UnmarshalWire methods
// free of per-field error plumbing.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader returns a reader over payload. The payload is not copied.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err reports the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining reports the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.buf) {
		r.fail(ErrShortBuffer)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// Uint8 reads one byte.
func (r *Reader) Uint8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool encoded as one byte.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// Uint16 reads a big-endian uint16.
func (r *Reader) Uint16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// Uint32 reads a big-endian uint32.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 reads a big-endian uint64.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Varint reads a zig-zag varint-encoded int64.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail(ErrShortBuffer)
		return 0
	}
	r.pos += n
	return v
}

// Uvarint reads a varint-encoded uint64.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail(ErrShortBuffer)
		return 0
	}
	r.pos += n
	return v
}

// Float64 reads an IEEE-754 float64.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// Float32 reads an IEEE-754 float32.
func (r *Reader) Float32() float32 { return math.Float32frombits(r.Uint32()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrStringTooLong)
		return ""
	}
	return string(r.take(int(n)))
}

// Blob reads a length-prefixed byte slice. The returned slice is a copy.
func (r *Reader) Blob() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrStringTooLong)
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Kind identifies a registered message type on the wire.
type Kind uint16

// Message is a value that can serialize itself through wire.
type Message interface {
	// WireKind returns the registered type tag.
	WireKind() Kind
	// MarshalWire appends the message body to w.
	MarshalWire(w *Writer)
	// UnmarshalWire parses the message body. Implementations should read
	// through r and return r.Err() (plus any semantic validation error).
	UnmarshalWire(r *Reader) error
}

// Registry maps message kinds to factories so payloads can be decoded into
// concrete types. A Registry is immutable after construction; build one per
// protocol with NewRegistry and share it freely across goroutines.
type Registry struct {
	factories map[Kind]func() Message
}

// NewRegistry builds a registry from prototype factories. It panics on
// duplicate kinds — registration happens at init time, where a duplicate is
// a programming error.
func NewRegistry(factories ...func() Message) *Registry {
	r := &Registry{factories: make(map[Kind]func() Message, len(factories))}
	for _, f := range factories {
		k := f().WireKind()
		if _, dup := r.factories[k]; dup {
			panic(fmt.Sprintf("wire: duplicate message kind %d", k))
		}
		r.factories[k] = f
	}
	return r
}

// Encode serializes msg with its kind prefix into w (which is Reset first)
// and returns the payload (aliasing w's buffer).
func (reg *Registry) Encode(w *Writer, msg Message) []byte {
	w.Reset()
	w.Uint16(uint16(msg.WireKind()))
	msg.MarshalWire(w)
	return w.Bytes()
}

// EncodeToBytes serializes msg into a fresh buffer.
func (reg *Registry) EncodeToBytes(msg Message) []byte {
	w := NewWriter(64)
	return append([]byte(nil), reg.Encode(w, msg)...)
}

// Decode parses a payload produced by Encode into a new message instance.
func (reg *Registry) Decode(payload []byte) (Message, error) {
	r := NewReader(payload)
	kind := Kind(r.Uint16())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wire: decode kind: %w", err)
	}
	f, ok := reg.factories[kind]
	if !ok {
		return nil, fmt.Errorf("wire: unknown message kind %d", kind)
	}
	msg := f()
	if err := msg.UnmarshalWire(r); err != nil {
		return nil, fmt.Errorf("wire: decode kind %d: %w", kind, err)
	}
	return msg, nil
}
