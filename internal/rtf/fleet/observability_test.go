package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"roia/internal/game"
	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

// obsHarness is the fleet harness with migration tracing and lifecycle
// events enabled.
type obsHarness struct {
	*harness
	events *telemetry.MemoryFleetEvents
}

func newObsHarness(t *testing.T) *obsHarness {
	t.Helper()
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	events := &telemetry.MemoryFleetEvents{}
	fl, err := fleet.New(fleet.Config{
		Network:         net,
		Zone:            1,
		Assignment:      zone.NewAssignment(),
		NewApp:          func() server.Application { return game.New(game.DefaultConfig()) },
		Seed:            7,
		Events:          events,
		TraceMigrations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.AddReplica(); err != nil {
		t.Fatal(err)
	}
	return &obsHarness{harness: &harness{net: net, fl: fl}, events: events}
}

// tinyModel returns a scalability model with deliberately large per-user
// costs, so threshold crossings (n_max, migration budgets) are reachable
// with a handful of bots instead of hundreds.
func tinyModel(t *testing.T) *model.Model {
	t.Helper()
	set := &params.Set{
		Name:    "tiny",
		UADeser: params.Constant(1.5),
		UA:      params.Constant(1.5),
		FADeser: params.Constant(0.001),
		FA:      params.Constant(0.001),
		NPC:     params.Constant(0.1),
		AOI:     params.Constant(1.5),
		SU:      params.Constant(1.5),
		MigIni:  params.Constant(1.0),
		MigRcv:  params.Constant(0.7),
	}
	mdl, err := model.New(set, 40, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	return mdl
}

// TestMigrationTraceAcrossReplicas is the tentpole acceptance test: a user
// migration between two live replicas produces one Chrome trace in which
// the init span sits on the source replica's process row, the recv span on
// the destination's, and both carry the same migration ID.
func TestMigrationTraceAcrossReplicas(t *testing.T) {
	h := newObsHarness(t)
	id2, err := h.fl.AddReplica()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		h.addBot(t, "server-1")
	}
	for i := 0; i < 10; i++ {
		h.step()
	}
	s1, _ := h.fl.Server("server-1")
	s1.MigrateUsers(id2, 3)
	for i := 0; i < 10; i++ {
		h.step()
	}

	perReplica := h.fl.MigEvents()
	migs := telemetry.StitchMigrations(perReplica)
	if len(migs) != 3 {
		t.Fatalf("stitched %d migrations, want 3: %+v", len(migs), migs)
	}
	for _, m := range migs {
		if !m.Complete {
			t.Fatalf("migration %d incomplete on a lossless transport: %+v", m.ID, m)
		}
		if m.From != "server-1" || m.To != id2 {
			t.Fatalf("migration %d endpoints = %s -> %s", m.ID, m.From, m.To)
		}
		if m.Ack == nil {
			t.Fatalf("migration %d missing source-side ack", m.ID)
		}
		if m.Init.Tick == 0 || m.Init.UnixMicro == 0 {
			t.Fatalf("init event missing tick/time: %+v", m.Init)
		}
	}

	var buf bytes.Buffer
	if err := telemetry.WriteMigrationChromeTrace(&buf, perReplica); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	// Process rows: one per replica.
	rowOf := make(map[string]int)
	for _, e := range trace.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			rowOf[e.Args["name"].(string)] = e.PID
		}
	}
	if len(rowOf) != 2 {
		t.Fatalf("process rows = %v, want 2 replicas", rowOf)
	}
	// Every migration ID has its init on server-1's row and its recv on
	// server-2's row.
	initRows := make(map[uint64]int)
	recvRows := make(map[uint64]int)
	for _, e := range trace.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		id := uint64(e.Args["migration_id"].(float64))
		switch e.Name {
		case "mig_init":
			initRows[id] = e.PID
		case "mig_recv":
			recvRows[id] = e.PID
		}
	}
	if len(initRows) != 3 || len(recvRows) != 3 {
		t.Fatalf("init rows %v recv rows %v, want 3 migrations on both sides", initRows, recvRows)
	}
	for id, initPID := range initRows {
		recvPID, ok := recvRows[id]
		if !ok {
			t.Fatalf("migration %d has no recv span", id)
		}
		if initPID != rowOf["replica server-1"] || recvPID != rowOf["replica "+id2] {
			t.Fatalf("migration %d spans on rows init=%d recv=%d, want %d and %d",
				id, initPID, recvPID, rowOf["replica server-1"], rowOf["replica "+id2])
		}
	}
}

// TestMigrationTraceOverLossyTransport drives migrations over a transport
// that drops messages: every initiated migration must either stitch
// complete or be flagged incomplete — never vanish from the trace.
func TestMigrationTraceOverLossyTransport(t *testing.T) {
	base := transport.NewLoopback()
	t.Cleanup(func() { base.Close() })
	assign := zone.NewAssignment()
	var links []*transport.Lossy
	newServer := func(name string, idPrefix uint16, tr *telemetry.MigTracer) *server.Server {
		node, err := base.Attach(name, 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		// Joins happen over a clean link; the loss is phased in once the
		// clients are connected, so only the migration traffic is degraded.
		lossy := transport.NewLossy(node, 0, int64(idPrefix))
		links = append(links, lossy)
		srv, err := server.New(server.Config{
			Node:       lossy,
			Zone:       1,
			Assignment: assign,
			App:        game.New(game.DefaultConfig()),
			IDPrefix:   idPrefix,
			Seed:       int64(idPrefix),
			MigTrace:   tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		t.Cleanup(func() { srv.Stop() })
		return srv
	}
	tr1 := telemetry.NewMigTracer(0)
	tr2 := telemetry.NewMigTracer(0)
	s1 := newServer("lossy-1", 1, tr1)
	s2 := newServer("lossy-2", 2, tr2)

	var clients []*client.Client
	step := func() {
		s1.Tick()
		s2.Tick()
		for _, cl := range clients {
			cl.Poll()
		}
	}
	for i := 0; i < 8; i++ {
		node, err := base.Attach(fmt.Sprintf("lc-%d", i), 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		cl := client.New(node, "lossy-1")
		pos := entity.Vec2{X: float64(100 + i), Y: 100}
		if err := cl.Join(1, pos, node.ID()); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
		for j := 0; j < 20 && !cl.Joined(); j++ {
			step()
		}
		if !cl.Joined() {
			t.Fatalf("client %d never joined", i)
		}
	}
	for i := 0; i < 10; i++ {
		step()
	}
	// Degrade both servers' outbound links, then migrate: some transfers
	// and acks will be lost mid-flight.
	for _, l := range links {
		l.SetRate(0.4)
	}
	s1.MigrateUsers("lossy-2", 6)
	for i := 0; i < 20; i++ {
		step()
	}

	perReplica := map[string][]telemetry.MigEvent{
		"lossy-1": tr1.Events(),
		"lossy-2": tr2.Events(),
	}
	migs := telemetry.StitchMigrations(perReplica)
	inits := 0
	for _, e := range tr1.Events() {
		if e.Phase == telemetry.MigPhaseInit {
			inits++
		}
	}
	if inits == 0 {
		t.Fatal("no migrations initiated")
	}
	if len(migs) != inits {
		t.Fatalf("stitched %d migrations from %d inits: initiated migrations must never vanish", len(migs), inits)
	}
	complete, incomplete := 0, 0
	for _, m := range migs {
		if m.Complete {
			complete++
		} else {
			incomplete++
		}
	}
	if complete+incomplete != inits {
		t.Fatalf("complete %d + incomplete %d != initiated %d", complete, incomplete, inits)
	}
	if incomplete == 0 {
		t.Fatal("40% loss dropped no migration transfer; lossy path untested")
	}
	// The incomplete markers must survive into the Chrome export.
	var buf bytes.Buffer
	if err := telemetry.WriteMigrationChromeTrace(&buf, perReplica); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"incomplete":true`) {
		t.Fatal("chrome trace carries no incomplete markers")
	}
}

func TestFleetLifecycleEvents(t *testing.T) {
	h := newObsHarness(t)
	id2, err := h.fl.AddReplica()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.fl.SetDraining(id2, true); err != nil {
		t.Fatal(err)
	}
	if err := h.fl.RemoveReplica(id2); err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, e := range h.events.Snapshot() {
		kinds = append(kinds, e.Kind+":"+e.Replica)
		if e.Zone != 1 {
			t.Fatalf("event zone = %d, want 1: %+v", e.Zone, e)
		}
		if e.UnixMicro == 0 {
			t.Fatalf("event missing timestamp: %+v", e)
		}
	}
	want := []string{"spawn:server-1", "spawn:" + id2, "drain:" + id2, "stop:" + id2}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
}

func TestCollectorServesFleetMetrics(t *testing.T) {
	h := newObsHarness(t)
	id2, err := h.fl.AddReplica()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		h.addBot(t, "server-1")
	}
	for i := 0; i < 10; i++ {
		h.step()
	}
	s1, _ := h.fl.Server("server-1")
	s1.MigrateUsers(id2, 2)
	for i := 0; i < 10; i++ {
		h.step()
	}

	col := fleet.NewCollector(h.fl)
	ts := httptest.NewServer(col.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/fleet/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		`roia_fleet_ticks_total{zone="1",replica="server-1"}`,
		`roia_fleet_tick_mean_ms{zone="1",replica="` + id2 + `"}`,
		`roia_fleet_users{zone="1",replica="server-1"} 2`,
		`roia_fleet_users{zone="1",replica="` + id2 + `"} 2`,
		`roia_fleet_zone_users{zone="1"} 4`,
		`roia_fleet_replicas{zone="1"} 2`,
		`roia_fleet_migrations{zone="1",state="complete"} 2`,
		`roia_fleet_migrations{zone="1",state="incomplete"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	// Each family must declare its TYPE exactly once even with two replicas.
	if got := strings.Count(out, "# TYPE roia_fleet_users "); got != 1 {
		t.Fatalf("roia_fleet_users TYPE declared %d times", got)
	}

	// The stitched migration trace is served in both formats.
	resp, err = http.Get(ts.URL + "/fleet/migrations")
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	err = json.NewDecoder(resp.Body).Decode(&trace)
	resp.Body.Close()
	if err != nil || len(trace.TraceEvents) == 0 {
		t.Fatalf("chrome endpoint: err=%v events=%d", err, len(trace.TraceEvents))
	}
	resp, err = http.Get(ts.URL + "/fleet/migrations?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if lines := strings.Count(strings.TrimSpace(string(body)), "\n") + 1; lines != 2 {
		t.Fatalf("jsonl endpoint returned %d migrations, want 2", lines)
	}
	resp, err = http.Get(ts.URL + "/fleet/migrations?format=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus format: status %d, want 400", resp.StatusCode)
	}
}

func TestCollectorServeGracefulShutdown(t *testing.T) {
	h := newObsHarness(t)
	col := fleet.NewCollector(h.fl)
	ctx, cancel := context.WithCancel(context.Background())
	addr, err := col.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/fleet/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	cancel()
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, err := http.Get("http://" + addr + "/fleet/metrics")
		if err != nil {
			break // listener closed: shutdown completed
		}
		if time.Now().After(deadline) {
			t.Fatal("collector still serving 3s after ctx cancel")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFlashCrowdAlertLifecycle is the alerting acceptance test: a flash
// crowd pushes one replica past its n_max share, the alert goes
// pending → firing, the RMS manager replicates and rebalances, and the
// alert resolves. The JSONL log records the thresholds at each transition.
func TestFlashCrowdAlertLifecycle(t *testing.T) {
	h := newObsHarness(t)
	mdl := tinyModel(t)

	nmax1, ok := mdl.MaxUsers(1, 0)
	if !ok {
		t.Fatal("tiny model has no n_max(1)")
	}
	crowd := nmax1 + 4 // decisively past a single replica's capacity

	var jsonl bytes.Buffer
	log := telemetry.NewAlertLog(&jsonl)
	engine := telemetry.NewAlertEngine(log, h.fl.AlertRules(fleet.AlertConfig{Model: mdl})...)
	mgr := rms.NewManager(h.fl, rms.Config{Model: mdl, UnpacedMigrations: true})

	for i := 0; i < crowd; i++ {
		h.addBot(t, "server-1")
	}
	for i := 0; i < 10; i++ {
		h.step()
	}

	// The flash crowd lands before the control loop reacts: the overload
	// alert must walk pending → firing on live evaluations alone.
	seen := make(map[string]bool)
	observe := func(sec float64) {
		engine.Eval(sec)
		for _, a := range engine.Active() {
			if a.Rule == fleet.AlertReplicaOverNMax {
				seen[a.State.String()] = true
			}
		}
		for _, line := range strings.Split(jsonl.String(), "\n") {
			if strings.Contains(line, fleet.AlertReplicaOverNMax) && strings.Contains(line, `"state":"resolved"`) {
				seen["resolved"] = true
			}
		}
	}
	observe(0)
	observe(1)
	if !seen["firing"] {
		t.Fatalf("overload alert not firing before RMS reacts (saw %v)\nlog:\n%s", seen, jsonl.String())
	}
	// Now the RMS manager takes over: replication + migrations should
	// clear the overload and resolve the alert.
	for sec := 2; sec < 120 && !seen["resolved"]; sec++ {
		mgr.Step(float64(sec))
		for i := 0; i < 5; i++ {
			h.step()
		}
		observe(float64(sec))
	}
	for _, state := range []string{"pending", "firing", "resolved"} {
		if !seen[state] {
			t.Fatalf("alert never reached %q (saw %v)\nlog:\n%s", state, seen, jsonl.String())
		}
	}
	// The JSONL transitions carry the measured value and model threshold.
	var firing telemetry.AlertEvent
	found := false
	for _, line := range strings.Split(strings.TrimSpace(jsonl.String()), "\n") {
		var e telemetry.AlertEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("alert log line %q: %v", line, err)
		}
		if e.Rule == fleet.AlertReplicaOverNMax && e.State == "firing" {
			firing, found = e, true
		}
	}
	if !found {
		t.Fatalf("no firing event in log:\n%s", jsonl.String())
	}
	if firing.Key != "server-1" || firing.Value <= firing.Threshold || firing.Threshold <= 0 {
		t.Fatalf("firing event = %+v, want server-1 over a positive threshold", firing)
	}
	// After the manager rebalanced, the fleet should have grown.
	if len(h.fl.IDs()) < 2 {
		t.Fatalf("manager never replicated: replicas = %v", h.fl.IDs())
	}
}

func TestFleetAtLMaxRule(t *testing.T) {
	h := newObsHarness(t)
	mdl := tinyModel(t)
	engine := telemetry.NewAlertEngine(nil, h.fl.AlertRules(fleet.AlertConfig{Model: mdl, MaxReplicas: 2})...)
	engine.Eval(0)
	for _, a := range engine.Active() {
		if a.Rule == fleet.AlertFleetAtLMax {
			t.Fatalf("l_max alert active with one replica: %+v", a)
		}
	}
	if _, err := h.fl.AddReplica(); err != nil {
		t.Fatal(err)
	}
	engine.Eval(1)
	found := false
	for _, a := range engine.Active() {
		if a.Rule == fleet.AlertFleetAtLMax {
			found = true
			if a.Value != 2 || a.Threshold != 2 {
				t.Fatalf("l_max alert = %+v, want l=2 at threshold 2", a)
			}
		}
	}
	if !found {
		t.Fatal("l_max alert not active at the replica cap")
	}
}
