package fleet_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"roia/internal/rtf/fleet"
	"roia/internal/telemetry"
	"roia/internal/telemetry/tsdb"
)

// testClock is a settable store clock for deterministic history tests.
type testClock struct {
	mu  sync.Mutex
	sec float64
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Unix(0, int64(c.sec*1e9))
}

func (c *testClock) Set(sec float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sec = sec
}

// TestCollectorRecordsHistory drives the collector with an injected-clock
// store: every /fleet/metrics scrape must land one sample per series, and
// /fleet/query must serve the retained range with aggregates.
func TestCollectorRecordsHistory(t *testing.T) {
	h := newObsHarness(t)
	for i := 0; i < 3; i++ {
		h.addBot(t, "server-1")
	}
	for i := 0; i < 5; i++ {
		h.step()
	}

	clk := &testClock{}
	st := tsdb.NewStore(tsdb.Config{SeriesCapacity: 64, Now: clk.Now})
	col := fleet.NewCollector(h.fl)
	col.SetStore(st)
	col.SetModel(tinyModel(t))
	col.SetClientLatency(func() telemetry.LatencySnapshot {
		return telemetry.LatencySnapshot{Count: 100, Violations: 2}
	})
	ts := httptest.NewServer(col.Handler())
	t.Cleanup(ts.Close)

	// healthz must refuse before the first scrape is recorded.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz before first record: status = %d, want 503", resp.StatusCode)
	}

	// Three scrapes at t=1,2,3: each must append to the retained history.
	for sec := 1; sec <= 3; sec++ {
		clk.Set(float64(sec))
		resp, err := http.Get(ts.URL + "/fleet/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if sec == 1 {
			out := string(body)
			for _, want := range []string{
				"# TYPE roia_fleet_nmax gauge",
				`roia_fleet_nmax{zone="1"}`,
				`roia_fleet_lmax{zone="1"}`,
			} {
				if !strings.Contains(out, want) {
					t.Fatalf("scrape with model attached missing %q:\n%s", want, out)
				}
			}
		}
	}
	if got := col.Recorded(); got != 3 {
		t.Fatalf("Recorded = %d, want 3", got)
	}

	// healthz flips to ready after the first recorded scrape.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after record: status = %d, want 200", resp.StatusCode)
	}

	// The retained history serves range queries per replica.
	resp, err = http.Get(ts.URL + "/fleet/query?family=roia_fleet_ticks_total&label=replica=server-1&since=10")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %s", resp.StatusCode, body)
	}
	var times []float64
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		var ql struct {
			Labels map[string]string `json:"labels"`
			Kind   string            `json:"kind"`
			T      *float64          `json:"t"`
			V      *float64          `json:"v"`
		}
		if err := json.Unmarshal([]byte(line), &ql); err != nil {
			t.Fatalf("bad JSONL %q: %v", line, err)
		}
		if ql.Labels["replica"] != "server-1" || ql.Labels["zone"] != "1" {
			t.Fatalf("labels = %v", ql.Labels)
		}
		if ql.Kind != "counter" {
			t.Fatalf("kind = %q, want counter", ql.Kind)
		}
		if ql.T != nil {
			times = append(times, *ql.T)
		}
	}
	if len(times) != 3 || times[0] != 1 || times[2] != 3 {
		t.Fatalf("retained scrape timestamps = %v, want [1 2 3]", times)
	}

	// The client RTT SLI counters landed too.
	if got := st.Query("roia_client_rtt_count", nil, 0, 0); len(got) != 1 || len(got[0].Samples) != 3 {
		t.Fatalf("roia_client_rtt_count history = %+v, want 1 series with 3 samples", got)
	}
	// Model ceilings are recorded as gauges per zone.
	if got := st.Query("roia_fleet_nmax", map[string]string{"zone": "1"}, 0, 0); len(got) != 1 {
		t.Fatalf("roia_fleet_nmax history missing: %+v", got)
	}

	// Bad query parameters are rejected, not served.
	resp, err = http.Get(ts.URL + "/fleet/query?family=roia_fleet_ticks_total&since=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative since: status = %d, want 400", resp.StatusCode)
	}
}

// TestCollectorWithoutStore pins the degraded surface: no /fleet/query
// route, but scrapes still serve and still flip readiness.
func TestCollectorWithoutStore(t *testing.T) {
	h := newObsHarness(t)
	col := fleet.NewCollector(h.fl)
	ts := httptest.NewServer(col.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/fleet/query?family=roia_fleet_ticks_total")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query without store: status = %d, want 404", resp.StatusCode)
	}
	// Scrapes still work and still count as records for readiness.
	resp, err = http.Get(ts.URL + "/fleet/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after a scrape: status = %d, want 200", resp.StatusCode)
	}
}
