package fleet_test

import (
	"fmt"
	"testing"

	"roia/internal/bots"
	"roia/internal/game"
	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
)

type harness struct {
	net   *transport.Loopback
	fl    *fleet.Fleet
	bots  []*bots.Bot
	nextC int
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	fl, err := fleet.New(fleet.Config{
		Network:    net,
		Zone:       1,
		Assignment: zone.NewAssignment(),
		NewApp:     func() server.Application { return game.New(game.DefaultConfig()) },
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.AddReplica(); err != nil {
		t.Fatal(err)
	}
	return &harness{net: net, fl: fl}
}

func (h *harness) addBot(t *testing.T, srvID string) *bots.Bot {
	t.Helper()
	h.nextC++
	node, err := h.net.Attach(fmt.Sprintf("bot-%d", h.nextC), 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(node, srvID)
	if err := cl.Join(1, entity.Vec2{X: float64(100 + h.nextC), Y: 100}, node.ID()); err != nil {
		t.Fatal(err)
	}
	b := bots.New(cl, bots.DefaultProfile(), int64(h.nextC))
	h.bots = append(h.bots, b)
	return b
}

func (h *harness) step() {
	h.fl.TickAll()
	for _, b := range h.bots {
		b.Step()
	}
}

func TestFleetSpawnsAndTracksServers(t *testing.T) {
	h := newHarness(t)
	if got := h.fl.IDs(); len(got) != 1 || got[0] != "server-1" {
		t.Fatalf("ids = %v", got)
	}
	id2, err := h.fl.AddReplica()
	if err != nil {
		t.Fatal(err)
	}
	states := h.fl.Servers()
	if len(states) != 2 || !states[1].Ready || states[1].ID != id2 {
		t.Fatalf("states = %+v", states)
	}
	if _, ok := h.fl.Server(id2); !ok {
		t.Fatal("Server lookup failed")
	}
}

func TestFleetBotsGenerateLoadAndState(t *testing.T) {
	h := newHarness(t)
	for i := 0; i < 8; i++ {
		h.addBot(t, "server-1")
	}
	for i := 0; i < 20; i++ {
		h.step()
	}
	if got := h.fl.ZoneUsers(); got != 8 {
		t.Fatalf("zone users = %d", got)
	}
	for _, b := range h.bots {
		if !b.Client().Joined() {
			t.Fatal("bot never joined")
		}
		if b.InputsSent() == 0 {
			t.Fatal("bot never sent inputs")
		}
		if b.Client().Updates() == 0 {
			t.Fatal("bot never received updates")
		}
	}
	srv, _ := h.fl.Server("server-1")
	if srv.Monitor().Ticks() == 0 {
		t.Fatal("no ticks recorded")
	}
	if srv.Monitor().MeanTick() <= 0 {
		t.Fatal("no tick time measured")
	}
}

func TestManagerDrivesLiveFleet(t *testing.T) {
	// The same RMS manager used against the simulator manages a live RTF
	// fleet: force an imbalance and watch Listing-1 migrations repair it.
	h := newHarness(t)
	id2, err := h.fl.AddReplica()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		h.addBot(t, "server-1") // all load on server-1
	}
	for i := 0; i < 5; i++ {
		h.step()
	}
	mdl, err := model.New(params.RTFDemo(), params.UFirstPersonShooter, params.CDefault)
	if err != nil {
		t.Fatal(err)
	}
	mgr := rms.NewManager(h.fl, rms.Config{Model: mdl})

	migrated := false
	for sec := 0; sec < 20 && !migrated; sec++ {
		actions := mgr.Step(float64(sec))
		for _, a := range actions {
			if a.Kind == rms.ActMigrate && a.Err == nil {
				migrated = true
			}
		}
		for i := 0; i < 5; i++ {
			h.step()
		}
	}
	if !migrated {
		t.Fatal("manager never migrated users on the live fleet")
	}
	s2, _ := h.fl.Server(id2)
	if s2.UserCount() == 0 {
		t.Fatal("second replica received no users")
	}
	// Bots keep playing after migration (clients followed the handoff).
	before := h.bots[0].Client().Updates()
	for i := 0; i < 10; i++ {
		h.step()
	}
	for _, b := range h.bots {
		if b.Client().Updates() <= before && b.Client().Server() != "server-1" {
			t.Fatal("migrated bot stopped receiving updates")
		}
	}
}

func TestFleetRemoveGuards(t *testing.T) {
	h := newHarness(t)
	if err := h.fl.RemoveReplica("server-1"); err == nil {
		t.Fatal("removed the last replica")
	}
	id2, _ := h.fl.AddReplica()
	if err := h.fl.RemoveReplica("ghost"); err == nil {
		t.Fatal("removed unknown server")
	}
	h.addBot(t, id2)
	for i := 0; i < 4; i++ {
		h.step()
	}
	if err := h.fl.RemoveReplica(id2); err == nil {
		t.Fatal("removed a populated server")
	}
	if err := h.fl.RemoveReplica("server-1"); err != nil {
		t.Fatalf("removing empty server: %v", err)
	}
	if got := h.fl.IDs(); len(got) != 1 || got[0] != id2 {
		t.Fatalf("ids after removal = %v", got)
	}
}

func TestBalanceNPCsEqualizesOwnership(t *testing.T) {
	h := newHarness(t)
	s1, _ := h.fl.Server("server-1")
	for i := 0; i < 9; i++ {
		s1.SpawnNPC(entity.Vec2{X: float64(100 + i*10), Y: 100})
	}
	id2, err := h.fl.AddReplica()
	if err != nil {
		t.Fatal(err)
	}
	id3, err := h.fl.AddReplica()
	if err != nil {
		t.Fatal(err)
	}
	if got := h.fl.BalanceNPCs(); got != 6 {
		t.Fatalf("moved %d NPCs, want 6 (9 split 3/3/3)", got)
	}
	// Ticks propagate the handoffs; every server then actively processes
	// its share.
	for i := 0; i < 4; i++ {
		h.fl.TickAll()
	}
	for _, id := range []string{"server-1", id2, id3} {
		srv, _ := h.fl.Server(id)
		if got := srv.NPCCount(); got != 3 {
			t.Fatalf("%s processes %d NPCs, want 3", id, got)
		}
		// Each replica still sees all 9 NPCs (shadow copies included).
		b := srv.Monitor().LastBreakdown()
		if b.NPCs != 9 {
			t.Fatalf("%s sees %d NPCs in the zone, want 9", id, b.NPCs)
		}
	}
	// Balanced fleet: a second call is a no-op.
	if got := h.fl.BalanceNPCs(); got != 0 {
		t.Fatalf("re-balance moved %d NPCs", got)
	}
}

func TestTransferNPCsGuards(t *testing.T) {
	h := newHarness(t)
	s1, _ := h.fl.Server("server-1")
	s1.SpawnNPC(entity.Vec2{X: 1, Y: 1})
	if got := s1.TransferNPCs("server-1", 1); got != 0 {
		t.Fatal("transferred NPC to itself")
	}
	if got := s1.TransferNPCs("ghost", 1); got != 0 {
		t.Fatal("transferred NPC to non-replica")
	}
	if got := s1.TransferNPCs("server-1", 0); got != 0 {
		t.Fatal("zero-count transfer moved NPCs")
	}
}

func TestFleetSubstituteReportsSaturation(t *testing.T) {
	h := newHarness(t)
	if _, err := h.fl.Substitute("server-1"); err == nil {
		t.Fatal("substitution succeeded on a homogeneous fleet")
	}
}

func TestFleetDraining(t *testing.T) {
	h := newHarness(t)
	if err := h.fl.SetDraining("server-1", true); err != nil {
		t.Fatal(err)
	}
	if !h.fl.Servers()[0].Draining {
		t.Fatal("draining flag not visible")
	}
	if err := h.fl.SetDraining("ghost", true); err == nil {
		t.Fatal("drained unknown server")
	}
}
