package fleet_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"roia/internal/game"
	"roia/internal/params"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/monitor"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

// metricValue extracts the value of the first sample of family name whose
// label set contains labelFrag.
func metricValue(t *testing.T, exposition, name, labelFrag string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(\{[^}]*\})? (\S+)$`)
	for _, m := range re.FindAllStringSubmatch(exposition, -1) {
		if labelFrag != "" && !strings.Contains(m[1], labelFrag) {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("metric %s: bad value %q", name, m[2])
		}
		return v
	}
	t.Fatalf("metric %s with labels containing %q not found in:\n%s", name, labelFrag, exposition)
	return 0
}

// TestClientRTTAndDeadlinesOnFleetMetrics is the response-time acceptance
// test: bots drive a live fleet over a lossy transport, and the
// /fleet/metrics scrape exports both halves of the QoS contract — the
// client-side input→update RTT distribution (p99, deadline violations)
// and the per-replica tick-deadline violation counters.
func TestClientRTTAndDeadlinesOnFleetMetrics(t *testing.T) {
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	fl, err := fleet.New(fleet.Config{
		Network:    net,
		Zone:       1,
		Assignment: zone.NewAssignment(),
		NewApp:     func() server.Application { return game.New(game.DefaultConfig()) },
		Seed:       7,
		// A 1 ns tick budget makes every tick a deadline violation, so the
		// counter provably counts without real 40 ms overload runs.
		TickInterval: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.AddReplica(); err != nil {
		t.Fatal(err)
	}

	// Clients talk through lossy links; joins happen at rate 0, then loss
	// is phased in so only steady-state traffic is degraded.
	var clients []*client.Client
	var links []*transport.Lossy
	for i := 0; i < 6; i++ {
		node, err := net.Attach(fmt.Sprintf("rtt-bot-%d", i), 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		lossy := transport.NewLossy(node, 0, int64(i))
		links = append(links, lossy)
		cl := client.New(lossy, "server-1")
		// Sub-microsecond RTT deadline: every measured RTT violates, so
		// the violation counter is exercised deterministically.
		cl.SetLatencyDeadline(1e-6)
		if err := cl.Join(1, entity.Vec2{X: float64(100 + i), Y: 100}, node.ID()); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
	}
	step := func() {
		for _, cl := range clients {
			if cl.Joined() {
				if err := cl.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 1})); err != nil {
					t.Fatal(err)
				}
			}
		}
		fl.TickAll()
		for _, cl := range clients {
			cl.Poll()
		}
	}
	for i := 0; i < 10; i++ {
		step()
	}
	for _, cl := range clients {
		if !cl.Joined() {
			t.Fatal("client never joined")
		}
	}
	for _, l := range links {
		l.SetRate(0.3)
	}
	for i := 0; i < 100; i++ {
		step()
	}

	// Fleet-wide RTT distribution, merged at scrape time so it tracks the
	// live swarm (the same shape cmd/roiarms exports).
	clientRTT := func() *telemetry.Latency {
		all := telemetry.NewLatency(1e-6)
		for _, cl := range clients {
			all.Merge(cl.Latency())
		}
		return all
	}
	if clientRTT().Snapshot().Count == 0 {
		t.Fatal("no RTTs measured under 30% loss")
	}

	col := fleet.NewCollector(fl)
	col.AddMetrics(func(w io.Writer, labels string) error {
		return clientRTT().WriteMetrics(w, "roia_client_rtt", labels)
	})
	ts := httptest.NewServer(col.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/fleet/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)

	if p99 := metricValue(t, out, "roia_client_rtt_ms", `stat="p99"`); p99 <= 0 {
		t.Fatalf("client p99 RTT = %g, want > 0", p99)
	}
	rttViol := metricValue(t, out, "roia_client_rtt_deadline_violations_total", "")
	rttCount := metricValue(t, out, "roia_client_rtt_count", "")
	if rttViol <= 0 || rttViol != rttCount {
		t.Fatalf("RTT violations = %g of %g observations, want all (deadline ~0)", rttViol, rttCount)
	}
	if dl := metricValue(t, out, "roia_fleet_deadline_ms", `replica="server-1"`); dl <= 0 {
		t.Fatalf("replica deadline = %g, want > 0", dl)
	}
	tickViol := metricValue(t, out, "roia_fleet_deadline_violations_total", `replica="server-1"`)
	ticks := metricValue(t, out, "roia_fleet_ticks_total", `replica="server-1"`)
	if tickViol <= 0 || tickViol != ticks {
		t.Fatalf("tick violations = %g of %g ticks, want all (1ns budget)", tickViol, ticks)
	}
}

// slowableApp wraps the game and injects a busy-wait into one application
// hook, so a slowdown lands in exactly one of the model's task phases.
type slowableApp struct {
	server.Application
	npcDelay atomic.Int64 // nanoseconds per UpdateNPC call
}

func (a *slowableApp) UpdateNPC(env *server.Env, npc *entity.Entity) []server.Forward {
	if d := a.npcDelay.Load(); d > 0 {
		for start := time.Now(); time.Since(start) < time.Duration(d); {
		}
	}
	return a.Application.UpdateNPC(env, npc)
}

// TestTaskDriftFlagsInjectedNPCSlowdown calibrates per-task cost curves
// from a live fleet, injects a 100×-scale slowdown into the NPC update
// hook only, and asserts the per-task drift gauges flag npc_update — and
// no other phase — as diverged from the model.
func TestTaskDriftFlagsInjectedNPCSlowdown(t *testing.T) {
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	var apps []*slowableApp
	fl, err := fleet.New(fleet.Config{
		Network:    net,
		Zone:       1,
		Assignment: zone.NewAssignment(),
		NewApp: func() server.Application {
			a := &slowableApp{Application: game.New(game.DefaultConfig())}
			apps = append(apps, a)
			return a
		},
		Seed:          7,
		ProfilePhases: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.AddReplica(); err != nil {
		t.Fatal(err)
	}
	// A second replica produces shadow-update traffic, so the
	// forwarded_input phase has samples too and all four phases are live.
	if _, err := fl.AddReplica(); err != nil {
		t.Fatal(err)
	}
	h := &harness{net: net, fl: fl}
	s1, _ := fl.Server("server-1")
	for i := 0; i < 8; i++ {
		s1.SpawnNPC(entity.Vec2{X: float64(100 + i*20), Y: 300})
	}
	for i := 0; i < 4; i++ {
		h.addBot(t, "server-1")
	}
	for i := 0; i < 60; i++ {
		h.step()
	}

	// Calibrate: fit constant curves to the measured per-item costs, as a
	// calibration run would. Each task is averaged over the replicas that
	// actually ran it (forwarded inputs only land on the shadow-holding
	// replica), so predictions match the workload everywhere.
	mon := s1.Monitor()
	c := func(task monitor.Task) params.Curve {
		var sum float64
		var k int
		for _, id := range fl.IDs() {
			srv, ok := fl.Server(id)
			if !ok {
				continue
			}
			if s := srv.Monitor().TaskSummary(task); s.Count > 0 {
				sum += s.Mean
				k++
			}
		}
		if k == 0 || sum <= 0 {
			return params.Constant(1e-6)
		}
		return params.Constant(sum / float64(k))
	}
	set := &params.Set{
		Name:    "calibrated",
		UADeser: c(monitor.UADeser), UA: c(monitor.UA),
		FADeser: c(monitor.FADeser), FA: c(monitor.FA),
		NPC: c(monitor.NPC), AOI: c(monitor.AOI), SU: c(monitor.SU),
		MigIni: params.Constant(1), MigRcv: params.Constant(1),
	}

	// Inject: only the NPC hook slows down, by ~100× its calibrated cost.
	npcDelay := 100 * time.Duration(mon.TaskSummary(monitor.NPC).Mean*float64(time.Millisecond))
	if min := 200 * time.Microsecond; npcDelay < min {
		npcDelay = min
	}
	for _, a := range apps {
		a.npcDelay.Store(int64(npcDelay))
	}
	// Enough post-injection ticks that the recent-history reservoirs are
	// dominated by slowed samples (HistorySize=512, 8 NPC items/tick).
	for i := 0; i < 80; i++ {
		h.step()
	}

	names := telemetry.PhaseNames()
	td := telemetry.NewTaskDrift(names[:]...)
	fl.ObserveTaskDrift(set, td)
	flagged := []string{}
	for task, s := range td.Snapshot() {
		if s.Samples == 0 {
			continue
		}
		if s.PredictedMS <= 0 {
			t.Fatalf("task %s predicted %g, want > 0", task, s.PredictedMS)
		}
		// A drift gauge "flags" a task when measurement and prediction
		// disagree by over 8× in either direction — far past timing noise,
		// far under the injected 100×.
		if s.MeasuredMS > 8*s.PredictedMS || s.PredictedMS > 8*s.MeasuredMS {
			flagged = append(flagged, task)
		}
	}
	if len(flagged) != 1 || flagged[0] != "npc_update" {
		t.Fatalf("drift flagged %v, want exactly [npc_update]\nsnapshot: %+v", flagged, td.Snapshot())
	}
	if task, snap, ok := td.Worst(); !ok || task != "npc_update" || snap.MeanAbsRatio <= 0.5 {
		t.Fatalf("worst drift = %q (%+v), want npc_update saturated low", task, snap)
	}

	// The phase profiler sees the same story: npc_update dominates the
	// tick once slowed.
	prof, ok := fl.Profiler("server-1")
	if !ok || prof == nil {
		t.Fatal("ProfilePhases did not attach a profiler")
	}
	snaps, ticks := prof.Snapshot()
	if ticks == 0 {
		t.Fatal("profiler recorded no ticks")
	}
	var npcShare, maxOther float64
	for _, s := range snaps {
		if s.Phase == "npc_update" {
			npcShare = s.Share
		} else if s.Share > maxOther {
			maxOther = s.Share
		}
	}
	if npcShare <= maxOther {
		t.Fatalf("npc_update share %g not dominant (max other %g)", npcShare, maxOther)
	}

	// And the per-task drift gauges export through the fleet scrape.
	col := fleet.NewCollector(fl)
	col.AddMetrics(td.WriteMetrics)
	ts := httptest.NewServer(col.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/fleet/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	meas := metricValue(t, out, "roia_model_task_measured_ms", `task="npc_update"`)
	pred := metricValue(t, out, "roia_model_task_predicted_ms", `task="npc_update"`)
	if meas <= 8*pred {
		t.Fatalf("exported npc_update drift measured=%g predicted=%g, want >8x gap", meas, pred)
	}
}
