package fleet

import (
	"fmt"

	"roia/internal/model"
	"roia/internal/telemetry"
)

// AlertConfig parameterises the model-threshold alert rules. The rules are
// the alerting counterpart of the RMS triggers: the manager reacts to the
// same thresholds, the rules make it visible when the fleet sits on or past
// them.
type AlertConfig struct {
	// Model supplies the scalability-model thresholds (Eq. 2/3/5).
	Model *model.Model
	// MaxReplicas optionally caps l below the model's l_max (mirrors
	// rms.Config.MaxReplicas). 0 means use the model's l_max alone.
	MaxReplicas int
	// Drift, when set, enables the model-drift rule on the tracker's live
	// snapshot.
	Drift *telemetry.Drift
	// DriftTolerance is the |relative error| above which the drift rule is
	// active (default 0.5, i.e. the prediction is off by more than 50%).
	DriftTolerance float64
	// PendingFor is how many consecutive true evaluations promote a rule
	// instance from pending to firing (default 1: the second consecutive
	// breach fires).
	PendingFor int
	// QoSViolationRate is the fraction of deadline-violating ticks (per
	// replica, between evaluations) above which the qos_tick_deadline rule
	// is active (default 0.05: more than 5% of recent ticks ran long).
	QoSViolationRate float64
	// HiccupRate is the fraction of ticks (per replica, between
	// evaluations) flagged by the flight recorder's hiccup detector above
	// which the qos_tick_hiccup rule is active (default 0.01: more than 1%
	// of recent ticks stalled). The rule is inert on replicas without a
	// flight recorder (fleet Config.FlightRecorders off).
	HiccupRate float64
	// TailInflation is the windowed p99/p50 tick-wall ratio above which the
	// qos_tail_inflation rule is active (default 4: the tail runs 4× the
	// typical tick). Replicas with fewer than TailMinCount recent ticks in
	// the window are skipped so a cold start cannot fire the rule.
	TailInflation float64
	// TailMinCount is the minimum recent-tick count before the tail
	// inflation rule evaluates a replica (default 64).
	TailMinCount int
	// ClientLatency, when set, enables the qos_client_rtt rule: it is
	// polled each evaluation for the fleet-wide input→update RTT recorder
	// (e.g. bots.FleetDriver.ClientLatency) and the rule fires when the
	// violation rate of the RTTs observed since the previous evaluation
	// exceeds QoSViolationRate.
	ClientLatency func() telemetry.LatencySnapshot
	// GCPauseBudget is the fraction of the tick deadline 1/U that in-tick
	// GC pause may consume before the qos_gc_pause rule is active (default
	// 0.25: the windowed per-tick GC-pause p99 eats more than a quarter of
	// the deadline). The rule is inert on replicas without a cost tracker
	// (fleet Config.CostTrackers off).
	GCPauseBudget float64
	// EgressPerUserCeiling is the per-user egress budget in framed wire
	// bytes per tick; the egress_per_user_ceiling rule fires when a
	// replica's client egress since the previous evaluation, divided by
	// new ticks and connected users, exceeds it. 0 disables the rule (no
	// universal ceiling exists — it is a deployment bandwidth budget).
	EgressPerUserCeiling float64
}

// Rule names exported by AlertRules.
const (
	AlertReplicaOverNMax  = "replica_over_nmax"
	AlertFleetAtLMax      = "fleet_at_lmax"
	AlertMigBudgetDry     = "migration_budget_exhausted"
	AlertModelDrift       = "model_drift"
	AlertQoSTickDeadline  = "qos_tick_deadline"
	AlertQoSClientRTT     = "qos_client_rtt"
	AlertQoSTickHiccup    = "qos_tick_hiccup"
	AlertQoSTailInflation = "qos_tail_inflation"
	AlertQoSGCPause       = "qos_gc_pause"
	AlertEgressPerUser    = "egress_per_user_ceiling"
)

// AlertRules builds the fleet's threshold rules for a telemetry.AlertEngine.
// Every evaluation reads the live cluster state, so the rules track the
// same numbers the RMS manager decides on:
//
//   - replica_over_nmax: a ready replica holds more users than its share
//     n_max(l)/l of the zone capacity (Eq. 2). One instance per replica.
//   - fleet_at_lmax: the replica group has reached l_max (Eq. 3, or the
//     configured MaxReplicas cap) — the zone cannot scale further and the
//     paper's model predicts replication stops paying off.
//   - migration_budget_exhausted: a replica is over its fair share of
//     users but its Eq. 5 initiation budget x_max_ini is zero — it is too
//     overloaded to shed load within the tick budget, the regime where
//     the paper falls back to unpaced migration.
//   - model_drift: the live |prediction error| ratio exceeds
//     DriftTolerance — the calibrated cost model no longer matches the
//     deployed workload, so every threshold above is suspect.
//   - qos_tick_deadline: more than QoSViolationRate of a replica's ticks
//     since the previous evaluation exceeded the tick deadline 1/U — the
//     server-side half of the QoS contract is being broken sustainedly
//     (PendingFor consecutive breaches), not by a lone outlier tick. One
//     instance per replica.
//   - qos_client_rtt: the fleet-wide client input→update RTT violation
//     rate since the previous evaluation exceeds QoSViolationRate — the
//     user-perceived half of the contract, measured end to end (requires
//     ClientLatency).
//   - qos_tick_hiccup: more than HiccupRate of a replica's ticks since the
//     previous evaluation tripped the flight recorder's hiccup detector
//     (wall time k× above the rolling median) — the server stalls in
//     bursts even if mean tick time looks healthy. One instance per
//     replica; requires fleet Config.FlightRecorders.
//   - qos_tail_inflation: a replica's windowed p99 tick wall runs more
//     than TailInflation× its p50 — sustained tail-latency inflation, the
//     regime where mean-based capacity numbers (n_max from mean task
//     costs) stop protecting the QoS deadline. One instance per replica.
//   - qos_gc_pause: a replica's windowed per-tick GC-pause p99 exceeds
//     GCPauseBudget of the tick deadline 1/U — the runtime, not the
//     workload, is eating the QoS budget, and no migration or replication
//     decision can win it back. One instance per replica; requires fleet
//     Config.CostTrackers.
//   - egress_per_user_ceiling: a replica's client egress since the
//     previous evaluation, per user per tick, exceeds the configured
//     bandwidth budget — the interest-management cost model (what the
//     paper folds into the per-user cost term) is under-charging for
//     update fan-out. One instance per replica; requires CostTrackers
//     and a non-zero EgressPerUserCeiling.
func (f *Fleet) AlertRules(cfg AlertConfig) []telemetry.Rule {
	if cfg.DriftTolerance <= 0 {
		cfg.DriftTolerance = 0.5
	}
	if cfg.QoSViolationRate <= 0 {
		cfg.QoSViolationRate = 0.05
	}
	if cfg.HiccupRate <= 0 {
		cfg.HiccupRate = 0.01
	}
	if cfg.TailInflation <= 0 {
		cfg.TailInflation = 4
	}
	if cfg.TailMinCount <= 0 {
		cfg.TailMinCount = 64
	}
	if cfg.GCPauseBudget <= 0 {
		cfg.GCPauseBudget = 0.25
	}
	zoneKey := fmt.Sprintf("zone-%d", f.cfg.Zone)
	rules := []telemetry.Rule{
		{
			Name:       AlertReplicaOverNMax,
			PendingFor: cfg.PendingFor,
			Eval: func(now float64) []telemetry.RuleResult {
				servers := f.Servers()
				l := 0
				for _, s := range servers {
					if s.Ready && !s.Draining {
						l++
					}
				}
				if l == 0 {
					return nil
				}
				m := f.NPCCount()
				nmax, ok := cfg.Model.MaxUsers(l, m)
				if !ok {
					return nil
				}
				share := nmax / l
				var out []telemetry.RuleResult
				for _, s := range servers {
					if !s.Ready || s.Draining || s.Users <= share {
						continue
					}
					out = append(out, telemetry.RuleResult{
						Key:       s.ID,
						Value:     float64(s.Users),
						Threshold: float64(share),
						Detail: fmt.Sprintf("replica holds %d users, over its n_max share %d (n_max(%d)=%d, m=%d)",
							s.Users, share, l, nmax, m),
					})
				}
				return out
			},
		},
		{
			Name:       AlertFleetAtLMax,
			PendingFor: cfg.PendingFor,
			Eval: func(now float64) []telemetry.RuleResult {
				l := len(f.IDs())
				m := f.NPCCount()
				lmax, ok := cfg.Model.MaxReplicas(m)
				if !ok {
					// The Eq. 3 search did not converge (replication never
					// stops paying off within the cap); only an explicit
					// deployment cap can bound the group then.
					if cfg.MaxReplicas <= 0 {
						return nil
					}
					lmax = cfg.MaxReplicas
				} else if cfg.MaxReplicas > 0 && cfg.MaxReplicas < lmax {
					lmax = cfg.MaxReplicas
				}
				if l < lmax {
					return nil
				}
				return []telemetry.RuleResult{{
					Key:       zoneKey,
					Value:     float64(l),
					Threshold: float64(lmax),
					Detail:    fmt.Sprintf("replica group at l=%d of l_max=%d (m=%d): replication headroom exhausted", l, lmax, m),
				}}
			},
		},
		{
			Name:       AlertMigBudgetDry,
			PendingFor: cfg.PendingFor,
			Eval: func(now float64) []telemetry.RuleResult {
				servers := f.Servers()
				l := 0
				for _, s := range servers {
					if s.Ready && !s.Draining {
						l++
					}
				}
				if l < 2 {
					return nil
				}
				n := f.ZoneUsers()
				m := f.NPCCount()
				fair := (n + l - 1) / l
				var out []telemetry.RuleResult
				for _, s := range servers {
					if !s.Ready || s.Draining || s.Users <= fair {
						continue
					}
					budget := cfg.Model.MaxMigrationsIni(l, n, m, s.Users)
					if budget > 0 {
						continue
					}
					out = append(out, telemetry.RuleResult{
						Key:       s.ID,
						Value:     float64(s.Users - fair),
						Threshold: 0,
						Detail: fmt.Sprintf("replica is %d users over its fair share %d but x_max_ini(l=%d,n=%d,m=%d,a=%d)=0: cannot shed load within the tick budget",
							s.Users-fair, fair, l, n, m, s.Users),
					})
				}
				return out
			},
		},
	}
	// qos_tick_deadline compares violation deltas between evaluations, so
	// a replica that ran long during warm-up but recovered resolves
	// instead of staying firing on its cumulative counter.
	type qosPrev struct{ ticks, violations uint64 }
	tickPrev := make(map[string]qosPrev)
	rules = append(rules, telemetry.Rule{
		Name:       AlertQoSTickDeadline,
		PendingFor: cfg.PendingFor,
		Eval: func(now float64) []telemetry.RuleResult {
			var out []telemetry.RuleResult
			seen := make(map[string]bool)
			for _, id := range f.IDs() {
				srv, ok := f.Server(id)
				if !ok {
					continue
				}
				seen[id] = true
				mon := srv.Monitor()
				cur := qosPrev{ticks: mon.Ticks(), violations: mon.DeadlineViolations()}
				prev := tickPrev[id]
				tickPrev[id] = cur
				if cur.ticks <= prev.ticks {
					continue // no new ticks (or monitor reset)
				}
				rate := float64(cur.violations-prev.violations) / float64(cur.ticks-prev.ticks)
				if rate <= cfg.QoSViolationRate {
					continue
				}
				out = append(out, telemetry.RuleResult{
					Key:       id,
					Value:     rate,
					Threshold: cfg.QoSViolationRate,
					Detail: fmt.Sprintf("%.1f%% of the last %d ticks exceeded the %.1fms deadline (QoS budget %.1f%%)",
						rate*100, cur.ticks-prev.ticks, mon.DeadlineMS(), cfg.QoSViolationRate*100),
				})
			}
			for id := range tickPrev {
				if !seen[id] {
					delete(tickPrev, id) // replica stopped; forget its counters
				}
			}
			return out
		},
	})
	// qos_tick_hiccup uses the same delta idiom on the flight recorder's
	// hiccup counter: only stalls since the previous evaluation count, so
	// one bad burst resolves once the server steadies.
	type hiccupPrev struct{ ticks, hiccups uint64 }
	hicPrev := make(map[string]hiccupPrev)
	rules = append(rules, telemetry.Rule{
		Name:       AlertQoSTickHiccup,
		PendingFor: cfg.PendingFor,
		Eval: func(now float64) []telemetry.RuleResult {
			var out []telemetry.RuleResult
			seen := make(map[string]bool)
			for _, id := range f.IDs() {
				srv, ok := f.Server(id)
				if !ok {
					continue
				}
				rec := srv.FlightRecorder()
				if rec == nil {
					continue
				}
				seen[id] = true
				cur := hiccupPrev{ticks: srv.Monitor().Ticks(), hiccups: rec.Hiccups()}
				prev := hicPrev[id]
				hicPrev[id] = cur
				if cur.ticks <= prev.ticks {
					continue // no new ticks (or monitor reset)
				}
				rate := float64(cur.hiccups-prev.hiccups) / float64(cur.ticks-prev.ticks)
				if rate <= cfg.HiccupRate {
					continue
				}
				out = append(out, telemetry.RuleResult{
					Key:       id,
					Value:     rate,
					Threshold: cfg.HiccupRate,
					Detail: fmt.Sprintf("%.1f%% of the last %d ticks were hiccups (wall over the rolling-median threshold; budget %.1f%%)",
						rate*100, cur.ticks-prev.ticks, cfg.HiccupRate*100),
				})
			}
			for id := range hicPrev {
				if !seen[id] {
					delete(hicPrev, id) // replica stopped; forget its counters
				}
			}
			return out
		},
	})
	rules = append(rules, telemetry.Rule{
		Name:       AlertQoSTailInflation,
		PendingFor: cfg.PendingFor,
		Eval: func(now float64) []telemetry.RuleResult {
			var out []telemetry.RuleResult
			for _, id := range f.IDs() {
				srv, ok := f.Server(id)
				if !ok {
					continue
				}
				q := srv.Monitor().TailQuantiles()
				if q.Count < uint64(cfg.TailMinCount) || q.P50 <= 0 {
					continue
				}
				ratio := q.P99 / q.P50
				if ratio <= cfg.TailInflation {
					continue
				}
				out = append(out, telemetry.RuleResult{
					Key:       id,
					Value:     ratio,
					Threshold: cfg.TailInflation,
					Detail: fmt.Sprintf("windowed tick wall p99 %.2fms is %.1f× p50 %.2fms over the last %d ticks (budget %.1f×)",
						q.P99, ratio, q.P50, q.Count, cfg.TailInflation),
				})
			}
			return out
		},
	})
	rules = append(rules, telemetry.Rule{
		Name:       AlertQoSGCPause,
		PendingFor: cfg.PendingFor,
		Eval: func(now float64) []telemetry.RuleResult {
			var out []telemetry.RuleResult
			for _, id := range f.IDs() {
				srv, ok := f.Server(id)
				if !ok {
					continue
				}
				ct := srv.CostTracker()
				if ct == nil {
					continue
				}
				snap := ct.Snapshot()
				if snap.Ticks == 0 {
					continue
				}
				budgetMS := cfg.GCPauseBudget * srv.Monitor().DeadlineMS()
				if budgetMS <= 0 {
					continue
				}
				p99 := snap.GCPause.Quantile(0.99)
				if p99 <= budgetMS {
					continue
				}
				out = append(out, telemetry.RuleResult{
					Key:       id,
					Value:     p99,
					Threshold: budgetMS,
					Detail: fmt.Sprintf("windowed per-tick GC pause p99 %.3fms exceeds %.0f%% of the %.1fms tick deadline",
						p99, cfg.GCPauseBudget*100, srv.Monitor().DeadlineMS()),
				})
			}
			return out
		},
	})
	if cfg.EgressPerUserCeiling > 0 {
		// Same delta idiom as the QoS rules: only egress since the previous
		// evaluation counts, so a join burst resolves once traffic settles.
		type egressPrev struct{ ticks, bytes uint64 }
		egrPrev := make(map[string]egressPrev)
		rules = append(rules, telemetry.Rule{
			Name:       AlertEgressPerUser,
			PendingFor: cfg.PendingFor,
			Eval: func(now float64) []telemetry.RuleResult {
				var out []telemetry.RuleResult
				seen := make(map[string]bool)
				for _, id := range f.IDs() {
					srv, ok := f.Server(id)
					if !ok {
						continue
					}
					ct := srv.CostTracker()
					if ct == nil {
						continue
					}
					seen[id] = true
					snap := ct.Snapshot()
					cur := egressPrev{ticks: snap.Ticks, bytes: snap.EgressClientBytes}
					prev := egrPrev[id]
					egrPrev[id] = cur
					users := srv.UserCount()
					if cur.ticks <= prev.ticks || users == 0 {
						continue // no new ticks (or tracker reset), or nobody to bill
					}
					perUserTick := float64(cur.bytes-prev.bytes) / float64(cur.ticks-prev.ticks) / float64(users)
					if perUserTick <= cfg.EgressPerUserCeiling {
						continue
					}
					out = append(out, telemetry.RuleResult{
						Key:       id,
						Value:     perUserTick,
						Threshold: cfg.EgressPerUserCeiling,
						Detail: fmt.Sprintf("client egress ran %.1f B/user/tick over the last %d ticks (%d users), above the %.1f B ceiling",
							perUserTick, cur.ticks-prev.ticks, users, cfg.EgressPerUserCeiling),
					})
				}
				for id := range egrPrev {
					if !seen[id] {
						delete(egrPrev, id) // replica stopped; forget its counters
					}
				}
				return out
			},
		})
	}
	if cfg.ClientLatency != nil {
		var prev telemetry.LatencySnapshot
		rules = append(rules, telemetry.Rule{
			Name:       AlertQoSClientRTT,
			PendingFor: cfg.PendingFor,
			Eval: func(now float64) []telemetry.RuleResult {
				cur := cfg.ClientLatency()
				last := prev
				prev = cur
				if cur.Count <= last.Count {
					return nil
				}
				rate := float64(cur.Violations-last.Violations) / float64(cur.Count-last.Count)
				if rate <= cfg.QoSViolationRate {
					return nil
				}
				return []telemetry.RuleResult{{
					Key:       zoneKey,
					Value:     rate,
					Threshold: cfg.QoSViolationRate,
					Detail: fmt.Sprintf("%.1f%% of the last %d input→update RTTs exceeded the %.1fms deadline (p99 %.1fms)",
						rate*100, cur.Count-last.Count, cur.DeadlineMS, cur.P99),
				}}
			},
		})
	}
	if cfg.Drift != nil {
		tol := cfg.DriftTolerance
		rules = append(rules, telemetry.Rule{
			Name:       AlertModelDrift,
			PendingFor: cfg.PendingFor,
			Eval: func(now float64) []telemetry.RuleResult {
				s := cfg.Drift.Snapshot()
				if s.Samples == 0 {
					return nil
				}
				abs := s.ErrRatio
				if abs < 0 {
					abs = -abs
				}
				if abs <= tol {
					return nil
				}
				return []telemetry.RuleResult{{
					Key:       zoneKey,
					Value:     abs,
					Threshold: tol,
					Detail: fmt.Sprintf("model predicts %.2fms vs measured %.2fms (|rel err| %.2f > %.2f): calibration is stale",
						s.PredictedMS, s.MeasuredMS, abs, tol),
				}}
			},
		})
	}
	return rules
}
