package fleet

import (
	"fmt"

	"roia/internal/model"
	"roia/internal/telemetry"
)

// AlertConfig parameterises the model-threshold alert rules. The rules are
// the alerting counterpart of the RMS triggers: the manager reacts to the
// same thresholds, the rules make it visible when the fleet sits on or past
// them.
type AlertConfig struct {
	// Model supplies the scalability-model thresholds (Eq. 2/3/5).
	Model *model.Model
	// MaxReplicas optionally caps l below the model's l_max (mirrors
	// rms.Config.MaxReplicas). 0 means use the model's l_max alone.
	MaxReplicas int
	// Drift, when set, enables the model-drift rule on the tracker's live
	// snapshot.
	Drift *telemetry.Drift
	// DriftTolerance is the |relative error| above which the drift rule is
	// active (default 0.5, i.e. the prediction is off by more than 50%).
	DriftTolerance float64
	// PendingFor is how many consecutive true evaluations promote a rule
	// instance from pending to firing (default 1: the second consecutive
	// breach fires).
	PendingFor int
	// QoSViolationRate is the fraction of deadline-violating ticks (per
	// replica, between evaluations) above which the qos_tick_deadline rule
	// is active (default 0.05: more than 5% of recent ticks ran long).
	QoSViolationRate float64
	// ClientLatency, when set, enables the qos_client_rtt rule: it is
	// polled each evaluation for the fleet-wide input→update RTT recorder
	// (e.g. bots.FleetDriver.ClientLatency) and the rule fires when the
	// violation rate of the RTTs observed since the previous evaluation
	// exceeds QoSViolationRate.
	ClientLatency func() telemetry.LatencySnapshot
}

// Rule names exported by AlertRules.
const (
	AlertReplicaOverNMax = "replica_over_nmax"
	AlertFleetAtLMax     = "fleet_at_lmax"
	AlertMigBudgetDry    = "migration_budget_exhausted"
	AlertModelDrift      = "model_drift"
	AlertQoSTickDeadline = "qos_tick_deadline"
	AlertQoSClientRTT    = "qos_client_rtt"
)

// AlertRules builds the fleet's threshold rules for a telemetry.AlertEngine.
// Every evaluation reads the live cluster state, so the rules track the
// same numbers the RMS manager decides on:
//
//   - replica_over_nmax: a ready replica holds more users than its share
//     n_max(l)/l of the zone capacity (Eq. 2). One instance per replica.
//   - fleet_at_lmax: the replica group has reached l_max (Eq. 3, or the
//     configured MaxReplicas cap) — the zone cannot scale further and the
//     paper's model predicts replication stops paying off.
//   - migration_budget_exhausted: a replica is over its fair share of
//     users but its Eq. 5 initiation budget x_max_ini is zero — it is too
//     overloaded to shed load within the tick budget, the regime where
//     the paper falls back to unpaced migration.
//   - model_drift: the live |prediction error| ratio exceeds
//     DriftTolerance — the calibrated cost model no longer matches the
//     deployed workload, so every threshold above is suspect.
//   - qos_tick_deadline: more than QoSViolationRate of a replica's ticks
//     since the previous evaluation exceeded the tick deadline 1/U — the
//     server-side half of the QoS contract is being broken sustainedly
//     (PendingFor consecutive breaches), not by a lone outlier tick. One
//     instance per replica.
//   - qos_client_rtt: the fleet-wide client input→update RTT violation
//     rate since the previous evaluation exceeds QoSViolationRate — the
//     user-perceived half of the contract, measured end to end (requires
//     ClientLatency).
func (f *Fleet) AlertRules(cfg AlertConfig) []telemetry.Rule {
	if cfg.DriftTolerance <= 0 {
		cfg.DriftTolerance = 0.5
	}
	if cfg.QoSViolationRate <= 0 {
		cfg.QoSViolationRate = 0.05
	}
	zoneKey := fmt.Sprintf("zone-%d", f.cfg.Zone)
	rules := []telemetry.Rule{
		{
			Name:       AlertReplicaOverNMax,
			PendingFor: cfg.PendingFor,
			Eval: func(now float64) []telemetry.RuleResult {
				servers := f.Servers()
				l := 0
				for _, s := range servers {
					if s.Ready && !s.Draining {
						l++
					}
				}
				if l == 0 {
					return nil
				}
				m := f.NPCCount()
				nmax, ok := cfg.Model.MaxUsers(l, m)
				if !ok {
					return nil
				}
				share := nmax / l
				var out []telemetry.RuleResult
				for _, s := range servers {
					if !s.Ready || s.Draining || s.Users <= share {
						continue
					}
					out = append(out, telemetry.RuleResult{
						Key:       s.ID,
						Value:     float64(s.Users),
						Threshold: float64(share),
						Detail: fmt.Sprintf("replica holds %d users, over its n_max share %d (n_max(%d)=%d, m=%d)",
							s.Users, share, l, nmax, m),
					})
				}
				return out
			},
		},
		{
			Name:       AlertFleetAtLMax,
			PendingFor: cfg.PendingFor,
			Eval: func(now float64) []telemetry.RuleResult {
				l := len(f.IDs())
				m := f.NPCCount()
				lmax, ok := cfg.Model.MaxReplicas(m)
				if !ok {
					// The Eq. 3 search did not converge (replication never
					// stops paying off within the cap); only an explicit
					// deployment cap can bound the group then.
					if cfg.MaxReplicas <= 0 {
						return nil
					}
					lmax = cfg.MaxReplicas
				} else if cfg.MaxReplicas > 0 && cfg.MaxReplicas < lmax {
					lmax = cfg.MaxReplicas
				}
				if l < lmax {
					return nil
				}
				return []telemetry.RuleResult{{
					Key:       zoneKey,
					Value:     float64(l),
					Threshold: float64(lmax),
					Detail:    fmt.Sprintf("replica group at l=%d of l_max=%d (m=%d): replication headroom exhausted", l, lmax, m),
				}}
			},
		},
		{
			Name:       AlertMigBudgetDry,
			PendingFor: cfg.PendingFor,
			Eval: func(now float64) []telemetry.RuleResult {
				servers := f.Servers()
				l := 0
				for _, s := range servers {
					if s.Ready && !s.Draining {
						l++
					}
				}
				if l < 2 {
					return nil
				}
				n := f.ZoneUsers()
				m := f.NPCCount()
				fair := (n + l - 1) / l
				var out []telemetry.RuleResult
				for _, s := range servers {
					if !s.Ready || s.Draining || s.Users <= fair {
						continue
					}
					budget := cfg.Model.MaxMigrationsIni(l, n, m, s.Users)
					if budget > 0 {
						continue
					}
					out = append(out, telemetry.RuleResult{
						Key:       s.ID,
						Value:     float64(s.Users - fair),
						Threshold: 0,
						Detail: fmt.Sprintf("replica is %d users over its fair share %d but x_max_ini(l=%d,n=%d,m=%d,a=%d)=0: cannot shed load within the tick budget",
							s.Users-fair, fair, l, n, m, s.Users),
					})
				}
				return out
			},
		},
	}
	// qos_tick_deadline compares violation deltas between evaluations, so
	// a replica that ran long during warm-up but recovered resolves
	// instead of staying firing on its cumulative counter.
	type qosPrev struct{ ticks, violations uint64 }
	tickPrev := make(map[string]qosPrev)
	rules = append(rules, telemetry.Rule{
		Name:       AlertQoSTickDeadline,
		PendingFor: cfg.PendingFor,
		Eval: func(now float64) []telemetry.RuleResult {
			var out []telemetry.RuleResult
			seen := make(map[string]bool)
			for _, id := range f.IDs() {
				srv, ok := f.Server(id)
				if !ok {
					continue
				}
				seen[id] = true
				mon := srv.Monitor()
				cur := qosPrev{ticks: mon.Ticks(), violations: mon.DeadlineViolations()}
				prev := tickPrev[id]
				tickPrev[id] = cur
				if cur.ticks <= prev.ticks {
					continue // no new ticks (or monitor reset)
				}
				rate := float64(cur.violations-prev.violations) / float64(cur.ticks-prev.ticks)
				if rate <= cfg.QoSViolationRate {
					continue
				}
				out = append(out, telemetry.RuleResult{
					Key:       id,
					Value:     rate,
					Threshold: cfg.QoSViolationRate,
					Detail: fmt.Sprintf("%.1f%% of the last %d ticks exceeded the %.1fms deadline (QoS budget %.1f%%)",
						rate*100, cur.ticks-prev.ticks, mon.DeadlineMS(), cfg.QoSViolationRate*100),
				})
			}
			for id := range tickPrev {
				if !seen[id] {
					delete(tickPrev, id) // replica stopped; forget its counters
				}
			}
			return out
		},
	})
	if cfg.ClientLatency != nil {
		var prev telemetry.LatencySnapshot
		rules = append(rules, telemetry.Rule{
			Name:       AlertQoSClientRTT,
			PendingFor: cfg.PendingFor,
			Eval: func(now float64) []telemetry.RuleResult {
				cur := cfg.ClientLatency()
				last := prev
				prev = cur
				if cur.Count <= last.Count {
					return nil
				}
				rate := float64(cur.Violations-last.Violations) / float64(cur.Count-last.Count)
				if rate <= cfg.QoSViolationRate {
					return nil
				}
				return []telemetry.RuleResult{{
					Key:       zoneKey,
					Value:     rate,
					Threshold: cfg.QoSViolationRate,
					Detail: fmt.Sprintf("%.1f%% of the last %d input→update RTTs exceeded the %.1fms deadline (p99 %.1fms)",
						rate*100, cur.Count-last.Count, cur.DeadlineMS, cur.P99),
				}}
			},
		})
	}
	if cfg.Drift != nil {
		tol := cfg.DriftTolerance
		rules = append(rules, telemetry.Rule{
			Name:       AlertModelDrift,
			PendingFor: cfg.PendingFor,
			Eval: func(now float64) []telemetry.RuleResult {
				s := cfg.Drift.Snapshot()
				if s.Samples == 0 {
					return nil
				}
				abs := s.ErrRatio
				if abs < 0 {
					abs = -abs
				}
				if abs <= tol {
					return nil
				}
				return []telemetry.RuleResult{{
					Key:       zoneKey,
					Value:     abs,
					Threshold: tol,
					Detail: fmt.Sprintf("model predicts %.2fms vs measured %.2fms (|rel err| %.2f > %.2f): calibration is stale",
						s.PredictedMS, s.MeasuredMS, abs, tol),
				}}
			},
		})
	}
	return rules
}
