package fleet_test

// Tail-latency observability at fleet level: the collector's hiccup and
// capture counters and zone-merged tail quantile gauges, and the
// qos_tick_hiccup / qos_tail_inflation alert rules. The alert tests feed
// the monitor and flight recorder synthetic ticks directly, so thresholds
// are crossed by construction rather than by hoping the host machine
// stalls on cue.

import (
	"strings"
	"testing"

	"roia/internal/game"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/monitor"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

func newTailHarness(t *testing.T) *harness {
	t.Helper()
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	fl, err := fleet.New(fleet.Config{
		Network:         net,
		Zone:            1,
		Assignment:      zone.NewAssignment(),
		NewApp:          func() server.Application { return game.New(game.DefaultConfig()) },
		Seed:            7,
		FlightRecorders: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.AddReplica(); err != nil {
		t.Fatal(err)
	}
	return &harness{net: net, fl: fl}
}

func TestFleetTailMetricsExposition(t *testing.T) {
	h := newTailHarness(t)
	h.addBot(t, "server-1")
	for i := 0; i < 80; i++ {
		h.step()
	}
	rec, ok := h.fl.FlightRecorder("server-1")
	if !ok || rec == nil {
		t.Fatalf("FlightRecorder(server-1) = %v, %v; want a recorder with FlightRecorders on", rec, ok)
	}

	c := fleet.NewCollector(h.fl)
	var b strings.Builder
	if err := c.WriteMetrics(&b, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE roia_fleet_tick_hiccups_total counter",
		`roia_fleet_tick_hiccups_total{zone="1",replica="server-1"} `,
		"# TYPE roia_fleet_flightrec_captures_total counter",
		`roia_fleet_flightrec_captures_total{zone="1",replica="server-1"} `,
		"# TYPE roia_fleet_tick_wall_q_ms gauge",
		`roia_fleet_tick_wall_q_ms{zone="1",q="p50"}`,
		`roia_fleet_tick_wall_q_ms{zone="1",q="p90"}`,
		`roia_fleet_tick_wall_q_ms{zone="1",q="p99"}`,
		`roia_fleet_tick_wall_q_ms{zone="1",q="p999"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet metrics missing %q:\n%s", want, out)
		}
	}
}

// synthTicks feeds n synthetic ticks of the given wall time into a
// replica's monitor and flight recorder, as if the tick pipeline had run.
func synthTicks(t *testing.T, h *harness, id string, n int, wallMS float64) {
	t.Helper()
	srv, ok := h.fl.Server(id)
	if !ok {
		t.Fatalf("server %s not running", id)
	}
	rec, _ := h.fl.FlightRecorder(id)
	for i := 0; i < n; i++ {
		srv.Monitor().RecordTick(monitor.Breakdown{WallMS: wallMS, Users: 1})
		if rec != nil {
			rec.Record(telemetry.TickRecord{WallMS: wallMS})
		}
	}
}

func TestQoSTickHiccupRule(t *testing.T) {
	h := newTailHarness(t)
	engine := telemetry.NewAlertEngine(nil, h.fl.AlertRules(fleet.AlertConfig{Model: tinyModel(t)})...)

	// Steady baseline: a full hiccup window of identical ticks, no stalls.
	synthTicks(t, h, "server-1", telemetry.DefaultHiccupWindow+16, 2)
	engine.Eval(0)
	for _, a := range engine.Active() {
		if a.Rule == fleet.AlertQoSTickHiccup {
			t.Fatalf("hiccup alert active on steady ticks: %+v", a)
		}
	}

	// A burst of 20 ms stalls on a 2 ms median: 10× the K=4 threshold,
	// 5 hiccups over ~21 new ticks — far past the 1% budget.
	synthTicks(t, h, "server-1", 5, 20)
	synthTicks(t, h, "server-1", 16, 2)
	engine.Eval(1)
	found := false
	for _, a := range engine.Active() {
		if a.Rule == fleet.AlertQoSTickHiccup {
			found = true
			if a.Key != "server-1" || a.Value <= a.Threshold {
				t.Fatalf("hiccup alert = %+v, want server-1 over threshold", a)
			}
		}
	}
	if !found {
		rec, _ := h.fl.FlightRecorder("server-1")
		t.Fatalf("hiccup alert not active after stall burst (recorder hiccups=%d)", rec.Hiccups())
	}
}

func TestQoSTailInflationRule(t *testing.T) {
	h := newTailHarness(t)
	engine := telemetry.NewAlertEngine(nil, h.fl.AlertRules(fleet.AlertConfig{Model: tinyModel(t)})...)

	// A flat distribution: p99/p50 = 1, rule stays inactive.
	synthTicks(t, h, "server-1", 100, 1)
	engine.Eval(0)
	for _, a := range engine.Active() {
		if a.Rule == fleet.AlertQoSTailInflation {
			t.Fatalf("tail inflation active on flat distribution: %+v", a)
		}
	}

	// Inflate the tail: 10 ticks of 50 ms against a 1 ms median pushes
	// the windowed p99 to 50× p50, past the default 4× budget.
	synthTicks(t, h, "server-1", 10, 50)
	engine.Eval(1)
	found := false
	for _, a := range engine.Active() {
		if a.Rule == fleet.AlertQoSTailInflation {
			found = true
			if a.Key != "server-1" || a.Value <= a.Threshold || a.Threshold != 4 {
				t.Fatalf("tail inflation alert = %+v, want server-1 over 4x", a)
			}
		}
	}
	if !found {
		srv, _ := h.fl.Server("server-1")
		t.Fatalf("tail inflation not active after tail burst (quantiles %+v)", srv.Monitor().TailQuantiles())
	}
}
