package fleet_test

// Cost observability at fleet level: the collector's zone-merged egress /
// GC / AoI-churn families and the qos_gc_pause and egress_per_user_ceiling
// alert rules. The GC rule test forces a collection from inside ApplyInput
// so a GC pause provably lands between BeginTick and EndTick, instead of
// hoping the runtime collects on cue.

import (
	"runtime"
	"strings"
	"testing"

	"roia/internal/game"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

// gcForceApp wraps the game application and forces a garbage collection on
// every user input, guaranteeing in-tick GC pause for the cost tracker to
// attribute.
type gcForceApp struct{ server.Application }

func (a gcForceApp) ApplyInput(env *server.Env, actor *entity.Entity, payload []byte) ([]server.Forward, error) {
	runtime.GC()
	return a.Application.ApplyInput(env, actor, payload)
}

func newCostHarness(t *testing.T, forceGC bool) *harness {
	t.Helper()
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	newApp := func() server.Application { return game.New(game.DefaultConfig()) }
	if forceGC {
		newApp = func() server.Application { return gcForceApp{game.New(game.DefaultConfig())} }
	}
	fl, err := fleet.New(fleet.Config{
		Network:      net,
		Zone:         1,
		Assignment:   zone.NewAssignment(),
		NewApp:       newApp,
		Seed:         7,
		CostTrackers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.AddReplica(); err != nil {
		t.Fatal(err)
	}
	return &harness{net: net, fl: fl}
}

func TestFleetCostMetricsExposition(t *testing.T) {
	h := newCostHarness(t, false)
	h.addBot(t, "server-1")
	for i := 0; i < 40; i++ {
		h.step()
	}
	ct, ok := h.fl.CostTracker("server-1")
	if !ok || ct == nil {
		t.Fatalf("CostTracker(server-1) = %v, %v; want a tracker with CostTrackers on", ct, ok)
	}
	if ct.Ticks() == 0 {
		t.Fatal("cost tracker recorded no ticks")
	}

	c := fleet.NewCollector(h.fl)
	var b strings.Builder
	if err := c.WriteMetrics(&b, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE roia_fleet_egress_bytes_total counter",
		`roia_fleet_egress_bytes_total{zone="1",type="state_update"} `,
		"# TYPE roia_fleet_egress_client_bytes_total counter",
		`roia_fleet_egress_client_bytes_total{zone="1"} `,
		"# TYPE roia_fleet_egress_payload_q_bytes gauge",
		`roia_fleet_egress_payload_q_bytes{zone="1",q="p50"}`,
		`roia_fleet_egress_payload_q_bytes{zone="1",q="p999"}`,
		"# TYPE roia_fleet_gc_cycles_total counter",
		`roia_fleet_gc_cycles_total{zone="1"} `,
		"# TYPE roia_fleet_gc_pause_ms_total counter",
		"# TYPE roia_fleet_gc_pause_q_ms gauge",
		`roia_fleet_gc_pause_q_ms{zone="1",q="p99"}`,
		"# TYPE roia_fleet_alloc_bytes_total counter",
		`roia_fleet_alloc_bytes_total{zone="1",stage="publish"} `,
		"# TYPE roia_fleet_aoi_churn_enter_q gauge",
		`roia_fleet_aoi_churn_enter_q{zone="1",q="p50"}`,
		"# TYPE roia_fleet_aoi_churn_leave_q gauge",
		`roia_fleet_aoi_churn_leave_q{zone="1",q="p50"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet metrics missing %q:\n%s", want, out)
		}
	}
}

func TestFleetCostMetricsOmittedWithoutTrackers(t *testing.T) {
	h := newHarness(t) // CostTrackers off
	h.addBot(t, "server-1")
	for i := 0; i < 10; i++ {
		h.step()
	}
	c := fleet.NewCollector(h.fl)
	var b strings.Builder
	if err := c.WriteMetrics(&b, ""); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "roia_fleet_egress_bytes_total") {
		t.Fatalf("cost families emitted without cost trackers:\n%s", b.String())
	}
}

func TestQoSGCPauseRule(t *testing.T) {
	h := newCostHarness(t, true)
	h.addBot(t, "server-1")
	srv, ok := h.fl.Server("server-1")
	if !ok {
		t.Fatal("server-1 not running")
	}
	srv.Monitor().SetDeadline(25)
	// A near-zero budget fraction makes any in-tick GC pause a breach; the
	// wrapped app forces a collection on every input, so the windowed pause
	// p99 is nonzero by construction after a handful of ticks.
	engine := telemetry.NewAlertEngine(nil, h.fl.AlertRules(fleet.AlertConfig{
		Model:         tinyModel(t),
		GCPauseBudget: 1e-9,
	})...)
	for i := 0; i < 30; i++ {
		h.step()
	}
	engine.Eval(0)
	found := false
	for _, a := range engine.Active() {
		if a.Rule == fleet.AlertQoSGCPause {
			found = true
			if a.Key != "server-1" || a.Value <= a.Threshold {
				t.Fatalf("gc pause alert = %+v, want server-1 over threshold", a)
			}
		}
	}
	if !found {
		ct, _ := h.fl.CostTracker("server-1")
		t.Fatalf("qos_gc_pause not active after forced in-tick GCs (snapshot %+v)", ct.Snapshot())
	}
}

func TestEgressPerUserCeilingRule(t *testing.T) {
	h := newCostHarness(t, false)
	h.addBot(t, "server-1")
	// One byte per user per tick: a single state update frame breaches it.
	engine := telemetry.NewAlertEngine(nil, h.fl.AlertRules(fleet.AlertConfig{
		Model:                tinyModel(t),
		EgressPerUserCeiling: 1,
	})...)
	for i := 0; i < 10; i++ {
		h.step()
	}
	engine.Eval(0)
	for i := 0; i < 10; i++ {
		h.step()
	}
	engine.Eval(1)
	found := false
	for _, a := range engine.Active() {
		if a.Rule == fleet.AlertEgressPerUser {
			found = true
			if a.Key != "server-1" || a.Value <= a.Threshold || a.Threshold != 1 {
				t.Fatalf("egress alert = %+v, want server-1 over the 1-byte ceiling", a)
			}
		}
	}
	if !found {
		ct, _ := h.fl.CostTracker("server-1")
		t.Fatalf("egress_per_user_ceiling not active under live traffic (snapshot %+v)", ct.Snapshot())
	}
}

func TestEgressRuleAbsentWithoutCeiling(t *testing.T) {
	h := newCostHarness(t, false)
	for _, r := range h.fl.AlertRules(fleet.AlertConfig{Model: tinyModel(t)}) {
		if r.Name == fleet.AlertEgressPerUser {
			t.Fatal("egress_per_user_ceiling rule built with a zero ceiling")
		}
	}
}
