// Package fleet adapts a live RTF server group to the rms.Cluster
// interface, so the exact same RTF-RMS controller that drives the
// deterministic simulator also manages real application servers: real
// sockets (or in-process transport), real serialization, real measured
// tick durations from the monitoring hooks.
//
// A Fleet owns the replica group of one zone: it spawns servers on
// demand (replication enactment), drains and stops them (resource
// removal), and forwards migration orders. Resource substitution is not
// available on a homogeneous local fleet and reports
// cloud.ErrNoStrongerClass, the same signal a saturated cloud deployment
// produces.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"roia/internal/cloud"
	"roia/internal/model"
	"roia/internal/rms"
	"roia/internal/rtf/aoi"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

// Config assembles a Fleet.
type Config struct {
	// Network attaches server nodes.
	Network transport.Network
	// Zone is the managed zone.
	Zone zone.ID
	// Assignment is the shared replica map.
	Assignment *zone.Assignment
	// NewApp builds the application logic for each spawned server.
	NewApp func() server.Application
	// World optionally enables zone handoffs on spawned servers (see
	// server.Config.World).
	World *zone.World
	// InboxSize bounds each server node's receive queue (default 1<<16).
	InboxSize int
	// NamePrefix prefixes spawned server IDs (default "server"); give
	// each fleet on a shared network a distinct prefix.
	NamePrefix string
	// IDBase offsets the entity-ID prefixes of spawned servers; give each
	// fleet in a session a distinct base so entity IDs stay unique.
	IDBase uint16
	// Seed bases the per-server deterministic seeds.
	Seed int64
	// Events, when set, receives the fleet's lifecycle log: spawn, drain,
	// stop, and the zone handoffs its servers execute — the replica-group
	// counterpart of the RMS decision audit. Typically a
	// telemetry.FleetEventLog writing JSONL.
	Events telemetry.FleetEventSink
	// TraceMigrations gives every spawned server its own migration tracer,
	// so the wire-level migration IDs recorded on both endpoints can be
	// stitched into one cross-replica trace (MigEvents, Collector).
	TraceMigrations bool
	// MigTraceCapacity bounds each server's migration-event ring
	// (default telemetry.DefaultMigTraceCapacity).
	MigTraceCapacity int
	// FlightRecorders gives every spawned server a tick flight recorder
	// with default thresholds (see telemetry.FlightRecConfig): per-tick
	// records in a bounded ring, with deadline-violating or hiccup ticks
	// frozen into JSONL-exportable captures. The collector exports each
	// replica's hiccup and capture counters with the fleet metrics.
	FlightRecorders bool
	// ProfilePhases gives every spawned server a telemetry.TaskProfiler
	// attributing each tick to the model's four task phases (see
	// server.Config.Profiler and Fleet.Profiler).
	ProfilePhases bool
	// CostTrackers gives every spawned server a telemetry.CostTracker
	// attributing per-stage heap allocations, in-tick GC pauses, framed
	// egress bytes (per message type and per client), and AoI churn (see
	// server.Config.Cost and Fleet.CostTracker). The collector aggregates
	// the per-replica trackers into zone-level cost metrics.
	CostTrackers bool
	// TickInterval is passed to every spawned server (default 40 ms); it
	// also sets each server's tick QoS deadline 1/U.
	TickInterval time.Duration
	// Parallelism is passed to every spawned server (see
	// server.Config.Parallelism); wire output stays byte-identical for
	// any value.
	Parallelism int
	// DeltaUpdates switches every spawned server to the proto v5
	// delta+keyframe stream (see server.Config.DeltaUpdates).
	DeltaUpdates bool
	// KeyframeTicks sets the keyframe cadence of spawned servers under
	// DeltaUpdates (see server.Config.KeyframeTicks; 0 means the server
	// default).
	KeyframeTicks int
	// NewAOI optionally builds the interest manager for each spawned
	// server (e.g. aoi.NewIncremental for the zero-rebuild index); nil
	// uses the server default.
	NewAOI func() aoi.Manager
	// Now stamps lifecycle events (default time.Now). Inject a fake
	// clock to make event logs deterministic in simulations and tests.
	Now func() time.Time
}

// Fleet is a live replica group implementing rms.Cluster.
type Fleet struct {
	cfg Config

	mu      sync.Mutex
	servers map[string]*server.Server
	order   []string
	nextIdx int
	// migs keeps every spawned server's migration tracer, including
	// stopped servers': a migration initiated by a since-removed replica
	// must still stitch (or be flagged incomplete), not vanish.
	migs map[string]*telemetry.MigTracer
}

// New returns an empty fleet. Call AddReplica (directly or through the
// RMS manager) to start the first server.
func New(cfg Config) (*Fleet, error) {
	if cfg.Network == nil || cfg.Assignment == nil || cfg.NewApp == nil {
		return nil, errors.New("fleet: Network, Assignment and NewApp are required")
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 1 << 16
	}
	if cfg.NamePrefix == "" {
		cfg.NamePrefix = "server"
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Fleet{
		cfg:     cfg,
		servers: make(map[string]*server.Server),
		migs:    make(map[string]*telemetry.MigTracer),
	}, nil
}

// Zone returns the zone this fleet replicates.
func (f *Fleet) Zone() zone.ID { return f.cfg.Zone }

// event emits one lifecycle event to the configured sink (no-op otherwise).
func (f *Fleet) event(kind, replica, detail string) {
	if f.cfg.Events == nil {
		return
	}
	f.cfg.Events.FleetEvent(telemetry.FleetEvent{
		UnixMicro: f.cfg.Now().UnixMicro(),
		Kind:      kind,
		Zone:      uint32(f.cfg.Zone),
		Replica:   replica,
		Detail:    detail,
	})
}

// MigTracer returns the migration tracer of a spawned server (including
// already-stopped ones), when TraceMigrations is on.
func (f *Fleet) MigTracer(id string) (*telemetry.MigTracer, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	tr, ok := f.migs[id]
	return tr, ok
}

// MigEvents snapshots every spawned server's migration events, keyed by
// replica ID — the input to telemetry.StitchMigrations and
// telemetry.WriteMigrationChromeTrace.
func (f *Fleet) MigEvents() map[string][]telemetry.MigEvent {
	f.mu.Lock()
	tracers := make(map[string]*telemetry.MigTracer, len(f.migs))
	for id, tr := range f.migs {
		tracers[id] = tr
	}
	f.mu.Unlock()
	out := make(map[string][]telemetry.MigEvent, len(tracers))
	for id, tr := range tracers {
		out[id] = tr.Events()
	}
	return out
}

// Profiler returns a running server's phase profiler (nil unless
// ProfilePhases is on).
func (f *Fleet) Profiler(id string) (*telemetry.TaskProfiler, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.servers[id]
	if !ok {
		return nil, false
	}
	return s.Profiler(), true
}

// FlightRecorder returns a running server's tick flight recorder (nil
// unless FlightRecorders is on).
func (f *Fleet) FlightRecorder(id string) (*telemetry.FlightRecorder, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.servers[id]
	if !ok {
		return nil, false
	}
	return s.FlightRecorder(), true
}

// CostTracker returns a running server's resource cost tracker (nil unless
// CostTrackers is on).
func (f *Fleet) CostTracker(id string) (*telemetry.CostTracker, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.servers[id]
	if !ok {
		return nil, false
	}
	return s.CostTracker(), true
}

// ObserveTaskDrift feeds every running server's measured per-phase costs
// against the cost model's fitted curves into td (see
// monitor.ObserveTaskDrift). Call it periodically, then export td via the
// collector's AddMetrics.
func (f *Fleet) ObserveTaskDrift(cost model.CostModel, td *telemetry.TaskDrift) {
	f.mu.Lock()
	servers := make([]*server.Server, 0, len(f.order))
	for _, id := range f.order {
		servers = append(servers, f.servers[id])
	}
	f.mu.Unlock()
	for _, s := range servers {
		s.Monitor().ObserveTaskDrift(cost, td)
	}
}

// Server returns a running server by ID (for tests and tick driving).
func (f *Fleet) Server(id string) (*server.Server, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.servers[id]
	return s, ok
}

// IDs returns the running server IDs in spawn order.
func (f *Fleet) IDs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.order...)
}

// TickAll advances every server by one real-time-loop iteration, in spawn
// order. Use it to drive the fleet manually (tests, benches); production
// deployments run each server's Run loop instead.
func (f *Fleet) TickAll() {
	f.mu.Lock()
	servers := make([]*server.Server, 0, len(f.order))
	for _, id := range f.order {
		servers = append(servers, f.servers[id])
	}
	f.mu.Unlock()
	for _, s := range servers {
		s.Tick()
	}
}

// BalanceNPCs redistributes NPC ownership so every running server
// processes an equal share — the model's m/l assumption (Eq. 1). Call it
// after replica-set changes; the transfers propagate over the next tick's
// shadow updates. It reports the number of NPCs moved.
func (f *Fleet) BalanceNPCs() int {
	f.mu.Lock()
	ids := append([]string(nil), f.order...)
	servers := make([]*server.Server, len(ids))
	for i, id := range ids {
		servers[i] = f.servers[id]
	}
	f.mu.Unlock()
	if len(servers) < 2 {
		return 0
	}
	counts := make([]int, len(servers))
	total := 0
	for i, s := range servers {
		counts[i] = s.NPCCount()
		total += counts[i]
	}
	base, rem := total/len(servers), total%len(servers)
	target := func(i int) int {
		if i < rem {
			return base + 1
		}
		return base
	}
	moved := 0
	for i, s := range servers {
		surplus := counts[i] - target(i)
		for j := 0; surplus > 0 && j < len(servers); j++ {
			if i == j {
				continue
			}
			deficit := target(j) - counts[j]
			if deficit <= 0 {
				continue
			}
			k := surplus
			if k > deficit {
				k = deficit
			}
			got := s.TransferNPCs(ids[j], k)
			counts[i] -= got
			counts[j] += got
			surplus -= got
			moved += got
		}
	}
	return moved
}

// --- rms.Cluster implementation ---

// Servers implements rms.Cluster.
func (f *Fleet) Servers() []rms.ServerState {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]rms.ServerState, 0, len(f.order))
	for _, id := range f.order {
		s := f.servers[id]
		out = append(out, rms.ServerState{
			ID:       id,
			Users:    s.UserCount(),
			TickMS:   s.Monitor().MeanTick(),
			Power:    1,
			Class:    "local",
			Ready:    true,
			Draining: s.Draining(),
		})
	}
	return out
}

// ZoneUsers implements rms.Cluster: the zone-wide user count is the sum
// of users connected across the replica group.
func (f *Fleet) ZoneUsers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, s := range f.servers {
		n += s.UserCount()
	}
	return n
}

// NPCCount implements rms.Cluster.
func (f *Fleet) NPCCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := 0
	for _, s := range f.servers {
		b := s.Monitor().LastBreakdown()
		if b.NPCs > m {
			m = b.NPCs
		}
	}
	return m
}

// Migrate implements rms.Cluster.
func (f *Fleet) Migrate(src, dst string, count int) error {
	f.mu.Lock()
	s, ok := f.servers[src]
	_, okDst := f.servers[dst]
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: migrate from unknown server %q", src)
	}
	if !okDst {
		return fmt.Errorf("fleet: migrate to unknown server %q", dst)
	}
	s.MigrateUsers(dst, count)
	return nil
}

// AddReplica implements rms.Cluster: spawn a new server for the zone.
func (f *Fleet) AddReplica() (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextIdx++
	id := fmt.Sprintf("%s-%d", f.cfg.NamePrefix, f.nextIdx)
	node, err := f.cfg.Network.Attach(id, f.cfg.InboxSize)
	if err != nil {
		return "", fmt.Errorf("fleet: attach %s: %w", id, err)
	}
	var migTrace *telemetry.MigTracer
	if f.cfg.TraceMigrations {
		migTrace = telemetry.NewMigTracer(f.cfg.MigTraceCapacity)
	}
	var profiler *telemetry.TaskProfiler
	if f.cfg.ProfilePhases {
		profiler = telemetry.NewTaskProfiler()
	}
	var flightRec *telemetry.FlightRecorder
	if f.cfg.FlightRecorders {
		flightRec = telemetry.NewFlightRecorder(telemetry.FlightRecConfig{})
	}
	var cost *telemetry.CostTracker
	if f.cfg.CostTrackers {
		cost = telemetry.NewCostTracker()
	}
	var aoiMgr aoi.Manager
	if f.cfg.NewAOI != nil {
		aoiMgr = f.cfg.NewAOI()
	}
	srv, err := server.New(server.Config{
		Node:          node,
		Zone:          f.cfg.Zone,
		Assignment:    f.cfg.Assignment,
		App:           f.cfg.NewApp(),
		World:         f.cfg.World,
		AOI:           aoiMgr,
		IDPrefix:      f.cfg.IDBase + uint16(f.nextIdx),
		Seed:          f.cfg.Seed + int64(f.nextIdx),
		TickInterval:  f.cfg.TickInterval,
		Parallelism:   f.cfg.Parallelism,
		DeltaUpdates:  f.cfg.DeltaUpdates,
		KeyframeTicks: f.cfg.KeyframeTicks,
		MigTrace:      migTrace,
		Profiler:      profiler,
		FlightRec:     flightRec,
		Cost:          cost,
		Events:        f.cfg.Events,
	})
	if err != nil {
		_ = node.Close()
		return "", err
	}
	srv.Start()
	f.servers[id] = srv
	if migTrace != nil {
		f.migs[id] = migTrace
	}
	f.order = append(f.order, id)
	f.event(telemetry.FleetEventSpawn, id, "")
	return id, nil
}

// RemoveReplica implements rms.Cluster.
func (f *Fleet) RemoveReplica(id string) error {
	f.mu.Lock()
	s, ok := f.servers[id]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("fleet: remove of unknown server %q", id)
	}
	if s.UserCount() > 0 {
		f.mu.Unlock()
		return fmt.Errorf("fleet: remove of non-empty server %q", id)
	}
	if len(f.servers) <= 1 {
		f.mu.Unlock()
		return errors.New("fleet: refusing to remove the last replica")
	}
	delete(f.servers, id)
	for i, oid := range f.order {
		if oid == id {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	f.mu.Unlock()
	f.event(telemetry.FleetEventStop, id, "")
	return s.Stop()
}

// SetDraining implements rms.Cluster.
func (f *Fleet) SetDraining(id string, on bool) error {
	f.mu.Lock()
	s, ok := f.servers[id]
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: drain of unknown server %q", id)
	}
	s.SetDraining(on)
	detail := "on"
	if !on {
		detail = "off"
	}
	f.event(telemetry.FleetEventDrain, id, detail)
	return nil
}

// Substitute implements rms.Cluster. A homogeneous local fleet has no
// stronger resource class to lease.
func (f *Fleet) Substitute(id string) (string, error) {
	return "", cloud.ErrNoStrongerClass
}
