// Fleet-level observability: the collector aggregates every replica's
// monitor snapshot and telemetry into one endpoint, so the reproduction is
// observable as a cluster rather than a set of nodes. Per-node metrics hide
// exactly the cross-node variability (imbalance, stuck drains, lost
// migrations) that dominates replica-group behaviour; the collector's
// per-replica-labeled families and stitched migration traces expose it.
package fleet

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"roia/internal/model"
	"roia/internal/telemetry"
	"roia/internal/telemetry/tsdb"
)

// Collector aggregates one or more fleets (one per zone) into a single
// observability surface: a /fleet/metrics Prometheus exposition with
// replica and zone labels, a /fleet/migrations endpoint serving the
// stitched cross-replica migration trace, and — when a time-series store
// is attached — a /fleet/query range endpoint over the retained history
// the collector records on every scrape.
type Collector struct {
	mu      sync.Mutex
	fleets  []*Fleet
	engine  *telemetry.AlertEngine
	extra   []telemetry.MetricsWriter
	store   *tsdb.Store
	model   *model.Model
	rtt     func() telemetry.LatencySnapshot
	records uint64
}

// NewCollector returns a collector over the given fleets.
func NewCollector(fleets ...*Fleet) *Collector {
	return &Collector{fleets: append([]*Fleet(nil), fleets...)}
}

// Add registers another fleet.
func (c *Collector) Add(fl *Fleet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//roialint:ignore boundedgrowth registration list, one entry per zone wired at startup
	c.fleets = append(c.fleets, fl)
}

// SetAlerts attaches an alert engine whose state is exported with the
// fleet metrics.
func (c *Collector) SetAlerts(e *telemetry.AlertEngine) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.engine = e
}

// AddMetrics appends an extra exposition section (e.g. a model-drift
// tracker's WriteMetrics or telemetry.WriteRuntimeMetrics) to the
// /fleet/metrics scrape.
func (c *Collector) AddMetrics(w telemetry.MetricsWriter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//roialint:ignore boundedgrowth registration list, one exposition section per subsystem wired at startup
	c.extra = append(c.extra, w)
}

// SetStore attaches a bounded time-series store. Once attached, every
// /fleet/metrics scrape (and every explicit Record call) appends the
// scrape's replica and zone numbers to the store, and Handler serves the
// retained history at /fleet/query.
func (c *Collector) SetStore(st *tsdb.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = st
}

// SetModel attaches the scalability model so the scrape can export the
// predicted capacity ceilings n_max(l,m) and l_max(m) next to the observed
// n, l, m — the live headroom comparison the dashboard renders.
func (c *Collector) SetModel(m *model.Model) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.model = m
}

// SetClientLatency attaches a client input→update RTT snapshot source
// (e.g. bots.FleetDriver.ClientLatency().Snapshot); Record then feeds the
// RTT event/violation counters into the store as the client-side SLI.
func (c *Collector) SetClientLatency(fn func() telemetry.LatencySnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rtt = fn
}

func (c *Collector) snapshot() ([]*Fleet, *telemetry.AlertEngine, []telemetry.MetricsWriter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Fleet(nil), c.fleets...), c.engine, append([]telemetry.MetricsWriter(nil), c.extra...)
}

// replicaRow is one live replica's scrape snapshot.
type replicaRow struct {
	zone       uint32
	id         string
	ticks      uint64
	meanMS     float64
	p95MS      float64
	users      int
	draining   bool
	deadlineMS float64
	violations uint64
	hiccups    uint64
	captures   uint64
}

// MigEvents merges the migration events of every registered fleet, keyed by
// replica ID — the collector-level input to telemetry.StitchMigrations.
func (c *Collector) MigEvents() map[string][]telemetry.MigEvent {
	fleets, _, _ := c.snapshot()
	out := make(map[string][]telemetry.MigEvent)
	for _, fl := range fleets {
		for id, events := range fl.MigEvents() {
			out[id] = append(out[id], events...)
		}
	}
	return out
}

// WriteMetrics writes the fleet-level exposition: per-replica-labeled tick
// and user-count families for every live replica, per-zone aggregates,
// migration-trace completeness counters, and (when attached) the alert
// engine's state. It matches telemetry.MetricsWriter.
//
// Exported families:
//
//	roia_fleet_ticks_total{zone,replica}    counter, processed ticks
//	roia_fleet_tick_mean_ms{zone,replica}   gauge, recent mean tick
//	roia_fleet_tick_p95_ms{zone,replica}    gauge, recent p95 tick
//	roia_fleet_deadline_ms{zone,replica}    gauge, tick QoS deadline 1/U
//	roia_fleet_deadline_violations_total{zone,replica}
//	                                        counter, ticks past the deadline
//	roia_fleet_tick_hiccups_total{zone,replica}
//	                                        counter, ticks flagged by the
//	                                        flight recorder's hiccup
//	                                        detector (0 without recorders)
//	roia_fleet_flightrec_captures_total{zone,replica}
//	                                        counter, flight-recorder
//	                                        captures frozen so far
//	roia_fleet_users{zone,replica}          gauge, connected users (a)
//	roia_fleet_draining{zone,replica}       gauge, 1 while draining
//	roia_fleet_tick_wall_q_ms{zone,q}       gauge, windowed tick-wall tail
//	                                        quantiles merged across the
//	                                        zone's replicas (mergeable
//	                                        log histograms, so the merged
//	                                        p99/p999 is exact over the
//	                                        union of recent ticks)
//	roia_fleet_zone_users{zone}             gauge, zone-wide users (n)
//	roia_fleet_npcs{zone}                   gauge, zone-wide NPCs (m)
//	roia_fleet_replicas{zone}               gauge, running replicas (l)
//	roia_fleet_nmax{zone}                   gauge, model ceiling n_max(l,m)
//	                                        (-1 unbounded; only with an
//	                                        attached model)
//	roia_fleet_lmax{zone}                   gauge, model ceiling l_max(m)
//	                                        (-1 unbounded; only with an
//	                                        attached model)
//	roia_fleet_migrations{zone,state}       gauge, stitched migrations in
//	                                        the trace rings (complete /
//	                                        incomplete)
//
// When the fleet runs with CostTrackers, the per-replica trackers are
// additionally merged into zone-level cost families (counters summed,
// windowed log histograms merged so zone quantiles are exact over the
// union):
//
//	roia_fleet_egress_bytes_total{zone,type}       counter, framed wire bytes
//	roia_fleet_egress_client_bytes_total{zone}     counter, client share
//	roia_fleet_egress_payload_q_bytes{zone,q}      gauge, per-client frames
//	roia_fleet_gc_cycles_total{zone}               counter, in-tick GC cycles
//	roia_fleet_gc_pause_ms_total{zone}             counter, in-tick GC pause
//	roia_fleet_gc_pause_q_ms{zone,q}               gauge, per-tick pause tail
//	roia_fleet_alloc_bytes_total{zone,stage}       counter, heap bytes/stage
//	roia_fleet_aoi_churn_enter_q{zone,q}           gauge, AoI entries/client/tick
//	roia_fleet_aoi_churn_leave_q{zone,q}           gauge, AoI exits/client/tick
//
// zoneRow is one zone's aggregated scrape snapshot.
type zoneRow struct {
	zone              uint32
	users, npcs, l    int
	complete, incompl int
	tail              *telemetry.LogHistogram

	// Model capacity ceilings; modeled is false without an attached model,
	// and the nmax/lmax families are omitted from the scrape. A false
	// nmaxOK/lmaxOK means the model reports no finite ceiling at this
	// configuration (exported as -1).
	modeled        bool
	nmax, lmax     int
	nmaxOK, lmaxOK bool

	// Cost aggregates; cost is false when no replica has a tracker,
	// and the cost families are omitted from the scrape.
	cost              bool
	egressType        map[string]uint64
	egressClientBytes uint64
	gcCycles          uint64
	gcPauseTotalMS    float64
	allocBytes        map[string]uint64
	gcPause           *telemetry.LogHistogram
	payload           *telemetry.LogHistogram
	churnEnter        *telemetry.LogHistogram
	churnLeave        *telemetry.LogHistogram
}

// collect walks every registered fleet and returns the per-replica and
// per-zone scrape snapshot — the shared input of the /fleet/metrics
// exposition (WriteMetrics) and the history feed (Record).
func (c *Collector) collect() ([]replicaRow, []zoneRow) {
	c.mu.Lock()
	fleets := append([]*Fleet(nil), c.fleets...)
	mdl := c.model
	c.mu.Unlock()
	var rows []replicaRow
	var zones []zoneRow
	for _, fl := range fleets {
		z := uint32(fl.Zone())
		zoneTail := telemetry.NewLogHistogram()
		zr := zoneRow{
			zone:       z,
			egressType: make(map[string]uint64),
			allocBytes: make(map[string]uint64),
			gcPause:    telemetry.NewLogHistogram(),
			payload:    telemetry.NewLogHistogram(),
			churnEnter: telemetry.NewLogHistogram(),
			churnLeave: telemetry.NewLogHistogram(),
		}
		for _, id := range fl.IDs() {
			srv, ok := fl.Server(id)
			if !ok {
				continue
			}
			mon := srv.Monitor()
			row := replicaRow{
				zone:       z,
				id:         id,
				ticks:      mon.Ticks(),
				meanMS:     mon.MeanTick(),
				p95MS:      mon.TickSummary().P95,
				users:      srv.UserCount(),
				draining:   srv.Draining(),
				deadlineMS: mon.DeadlineMS(),
				violations: mon.DeadlineViolations(),
			}
			if rec := srv.FlightRecorder(); rec != nil {
				row.hiccups = rec.Hiccups()
				row.captures = rec.CapturesTotal()
			}
			if ct := srv.CostTracker(); ct != nil {
				cs := ct.Snapshot()
				zr.cost = true
				for typ, v := range cs.EgressByType {
					zr.egressType[typ] += v
				}
				for stage, v := range cs.AllocBytes {
					zr.allocBytes[stage] += v
				}
				zr.egressClientBytes += cs.EgressClientBytes
				zr.gcCycles += cs.GCCycles
				zr.gcPauseTotalMS += cs.GCPauseTotalMS
				zr.gcPause.Merge(cs.GCPause)
				zr.payload.Merge(cs.Payload)
				zr.churnEnter.Merge(cs.ChurnEnter)
				zr.churnLeave.Merge(cs.ChurnLeave)
			}
			zoneTail.Merge(mon.TailHistogram())
			rows = append(rows, row)
		}
		zr.users, zr.npcs, zr.l, zr.tail = fl.ZoneUsers(), fl.NPCCount(), len(fl.IDs()), zoneTail
		for _, m := range telemetry.StitchMigrations(fl.MigEvents()) {
			if m.Complete {
				zr.complete++
			} else {
				zr.incompl++
			}
		}
		if mdl != nil {
			zr.modeled = true
			zr.nmax, zr.nmaxOK = mdl.MaxUsers(zr.l, zr.npcs)
			zr.lmax, zr.lmaxOK = mdl.MaxReplicas(zr.npcs)
		}
		zones = append(zones, zr)
	}
	return rows, zones
}

func (c *Collector) WriteMetrics(w io.Writer, labels string) error {
	_, engine, extra := c.snapshot()
	rows, zones := c.collect()

	lbl := func(extra string) string { return telemetry.FormatLabels(labels, extra) }
	rlbl := func(r replicaRow) string {
		return lbl(fmt.Sprintf("zone=\"%d\",replica=%q", r.zone, r.id))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE roia_fleet_ticks_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "roia_fleet_ticks_total%s %d\n", rlbl(r), r.ticks)
	}
	fmt.Fprintf(&b, "# TYPE roia_fleet_tick_mean_ms gauge\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "roia_fleet_tick_mean_ms%s %g\n", rlbl(r), r.meanMS)
	}
	fmt.Fprintf(&b, "# TYPE roia_fleet_tick_p95_ms gauge\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "roia_fleet_tick_p95_ms%s %g\n", rlbl(r), r.p95MS)
	}
	fmt.Fprintf(&b, "# TYPE roia_fleet_deadline_ms gauge\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "roia_fleet_deadline_ms%s %g\n", rlbl(r), r.deadlineMS)
	}
	fmt.Fprintf(&b, "# TYPE roia_fleet_deadline_violations_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "roia_fleet_deadline_violations_total%s %d\n", rlbl(r), r.violations)
	}
	fmt.Fprintf(&b, "# TYPE roia_fleet_tick_hiccups_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "roia_fleet_tick_hiccups_total%s %d\n", rlbl(r), r.hiccups)
	}
	fmt.Fprintf(&b, "# TYPE roia_fleet_flightrec_captures_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "roia_fleet_flightrec_captures_total%s %d\n", rlbl(r), r.captures)
	}
	fmt.Fprintf(&b, "# TYPE roia_fleet_users gauge\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "roia_fleet_users%s %d\n", rlbl(r), r.users)
	}
	fmt.Fprintf(&b, "# TYPE roia_fleet_draining gauge\n")
	for _, r := range rows {
		d := 0
		if r.draining {
			d = 1
		}
		fmt.Fprintf(&b, "roia_fleet_draining%s %d\n", rlbl(r), d)
	}
	fmt.Fprintf(&b, "# TYPE roia_fleet_tick_wall_q_ms gauge\n")
	for _, z := range zones {
		for _, q := range []struct {
			name string
			q    float64
		}{
			{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p999", 0.999},
		} {
			fmt.Fprintf(&b, "roia_fleet_tick_wall_q_ms%s %g\n",
				lbl(fmt.Sprintf("zone=\"%d\",q=%q", z.zone, q.name)), z.tail.Quantile(q.q))
		}
	}
	fmt.Fprintf(&b, "# TYPE roia_fleet_zone_users gauge\n")
	for _, z := range zones {
		fmt.Fprintf(&b, "roia_fleet_zone_users%s %d\n", lbl(fmt.Sprintf("zone=\"%d\"", z.zone)), z.users)
	}
	fmt.Fprintf(&b, "# TYPE roia_fleet_npcs gauge\n")
	for _, z := range zones {
		fmt.Fprintf(&b, "roia_fleet_npcs%s %d\n", lbl(fmt.Sprintf("zone=\"%d\"", z.zone)), z.npcs)
	}
	fmt.Fprintf(&b, "# TYPE roia_fleet_replicas gauge\n")
	for _, z := range zones {
		fmt.Fprintf(&b, "roia_fleet_replicas%s %d\n", lbl(fmt.Sprintf("zone=\"%d\"", z.zone)), z.l)
	}
	anyModel := false
	for _, z := range zones {
		if z.modeled {
			anyModel = true
			break
		}
	}
	if anyModel {
		fmt.Fprintf(&b, "# TYPE roia_fleet_nmax gauge\n")
		for _, z := range zones {
			if z.modeled {
				fmt.Fprintf(&b, "roia_fleet_nmax%s %d\n", lbl(fmt.Sprintf("zone=\"%d\"", z.zone)), capOrMinusOne(z.nmax, z.nmaxOK))
			}
		}
		fmt.Fprintf(&b, "# TYPE roia_fleet_lmax gauge\n")
		for _, z := range zones {
			if z.modeled {
				fmt.Fprintf(&b, "roia_fleet_lmax%s %d\n", lbl(fmt.Sprintf("zone=\"%d\"", z.zone)), capOrMinusOne(z.lmax, z.lmaxOK))
			}
		}
	}
	fmt.Fprintf(&b, "# TYPE roia_fleet_migrations gauge\n")
	for _, z := range zones {
		fmt.Fprintf(&b, "roia_fleet_migrations%s %d\n", lbl(fmt.Sprintf("zone=\"%d\",state=\"complete\"", z.zone)), z.complete)
		fmt.Fprintf(&b, "roia_fleet_migrations%s %d\n", lbl(fmt.Sprintf("zone=\"%d\",state=\"incomplete\"", z.zone)), z.incompl)
	}
	anyCost := false
	for _, z := range zones {
		if z.cost {
			anyCost = true
			break
		}
	}
	if anyCost {
		quantiles := []struct {
			name string
			q    float64
		}{
			{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p999", 0.999},
		}
		fmt.Fprintf(&b, "# TYPE roia_fleet_egress_bytes_total counter\n")
		for _, z := range zones {
			if !z.cost {
				continue
			}
			types := make([]string, 0, len(z.egressType))
			for typ := range z.egressType {
				types = append(types, typ)
			}
			sort.Strings(types)
			for _, typ := range types {
				fmt.Fprintf(&b, "roia_fleet_egress_bytes_total%s %d\n",
					lbl(fmt.Sprintf("zone=\"%d\",type=%q", z.zone, typ)), z.egressType[typ])
			}
		}
		fmt.Fprintf(&b, "# TYPE roia_fleet_egress_client_bytes_total counter\n")
		for _, z := range zones {
			if !z.cost {
				continue
			}
			fmt.Fprintf(&b, "roia_fleet_egress_client_bytes_total%s %d\n",
				lbl(fmt.Sprintf("zone=\"%d\"", z.zone)), z.egressClientBytes)
		}
		fmt.Fprintf(&b, "# TYPE roia_fleet_egress_payload_q_bytes gauge\n")
		for _, z := range zones {
			if !z.cost {
				continue
			}
			for _, q := range quantiles {
				fmt.Fprintf(&b, "roia_fleet_egress_payload_q_bytes%s %g\n",
					lbl(fmt.Sprintf("zone=\"%d\",q=%q", z.zone, q.name)), z.payload.Quantile(q.q))
			}
		}
		fmt.Fprintf(&b, "# TYPE roia_fleet_gc_cycles_total counter\n")
		for _, z := range zones {
			if !z.cost {
				continue
			}
			fmt.Fprintf(&b, "roia_fleet_gc_cycles_total%s %d\n",
				lbl(fmt.Sprintf("zone=\"%d\"", z.zone)), z.gcCycles)
		}
		fmt.Fprintf(&b, "# TYPE roia_fleet_gc_pause_ms_total counter\n")
		for _, z := range zones {
			if !z.cost {
				continue
			}
			fmt.Fprintf(&b, "roia_fleet_gc_pause_ms_total%s %g\n",
				lbl(fmt.Sprintf("zone=\"%d\"", z.zone)), z.gcPauseTotalMS)
		}
		fmt.Fprintf(&b, "# TYPE roia_fleet_gc_pause_q_ms gauge\n")
		for _, z := range zones {
			if !z.cost {
				continue
			}
			for _, q := range quantiles {
				fmt.Fprintf(&b, "roia_fleet_gc_pause_q_ms%s %g\n",
					lbl(fmt.Sprintf("zone=\"%d\",q=%q", z.zone, q.name)), z.gcPause.Quantile(q.q))
			}
		}
		fmt.Fprintf(&b, "# TYPE roia_fleet_alloc_bytes_total counter\n")
		for _, z := range zones {
			if !z.cost {
				continue
			}
			stages := make([]string, 0, len(z.allocBytes))
			for stage := range z.allocBytes {
				stages = append(stages, stage)
			}
			sort.Strings(stages)
			for _, stage := range stages {
				fmt.Fprintf(&b, "roia_fleet_alloc_bytes_total%s %d\n",
					lbl(fmt.Sprintf("zone=\"%d\",stage=%q", z.zone, stage)), z.allocBytes[stage])
			}
		}
		fmt.Fprintf(&b, "# TYPE roia_fleet_aoi_churn_enter_q gauge\n")
		for _, z := range zones {
			if !z.cost {
				continue
			}
			for _, q := range quantiles {
				fmt.Fprintf(&b, "roia_fleet_aoi_churn_enter_q%s %g\n",
					lbl(fmt.Sprintf("zone=\"%d\",q=%q", z.zone, q.name)), z.churnEnter.Quantile(q.q))
			}
		}
		fmt.Fprintf(&b, "# TYPE roia_fleet_aoi_churn_leave_q gauge\n")
		for _, z := range zones {
			if !z.cost {
				continue
			}
			for _, q := range quantiles {
				fmt.Fprintf(&b, "roia_fleet_aoi_churn_leave_q%s %g\n",
					lbl(fmt.Sprintf("zone=\"%d\",q=%q", z.zone, q.name)), z.churnLeave.Quantile(q.q))
			}
		}
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	if engine != nil {
		if err := engine.WriteMetrics(w, labels); err != nil {
			return err
		}
	}
	for _, write := range extra {
		if err := write(w, labels); err != nil {
			return err
		}
	}
	return nil
}

// capOrMinusOne renders a model ceiling: the value when the model reports
// a finite cap, -1 when unbounded.
func capOrMinusOne(v int, ok bool) int {
	if !ok {
		return -1
	}
	return v
}

// Record appends the current scrape snapshot to the attached time-series
// store (a no-op without one): per-replica tick/violation/user series,
// per-zone occupancy and tail-quantile series, the model ceilings when a
// model is attached, and the client RTT SLI counters when a latency source
// is attached. Each call lands one sample per series, stamped with the
// store's clock — called once per scrape (or once per session second), the
// ring retention horizon is capacity × that cadence.
func (c *Collector) Record() {
	c.mu.Lock()
	st, rtt := c.store, c.rtt
	c.mu.Unlock()
	if st == nil {
		// Still count the scrape: readiness means "the collector has walked
		// the fleet once", with or without retained history.
		c.mu.Lock()
		c.records++
		c.mu.Unlock()
		return
	}
	rows, zones := c.collect()
	for _, r := range rows {
		lbl := map[string]string{"zone": fmt.Sprintf("%d", r.zone), "replica": r.id}
		st.Append("roia_fleet_ticks_total", lbl, tsdb.Counter, float64(r.ticks))
		st.Append("roia_fleet_tick_mean_ms", lbl, tsdb.Gauge, r.meanMS)
		st.Append("roia_fleet_tick_p95_ms", lbl, tsdb.Gauge, r.p95MS)
		st.Append("roia_fleet_deadline_violations_total", lbl, tsdb.Counter, float64(r.violations))
		st.Append("roia_fleet_tick_hiccups_total", lbl, tsdb.Counter, float64(r.hiccups))
		st.Append("roia_fleet_users", lbl, tsdb.Gauge, float64(r.users))
	}
	for _, z := range zones {
		lbl := map[string]string{"zone": fmt.Sprintf("%d", z.zone)}
		st.Append("roia_fleet_zone_users", lbl, tsdb.Gauge, float64(z.users))
		st.Append("roia_fleet_npcs", lbl, tsdb.Gauge, float64(z.npcs))
		st.Append("roia_fleet_replicas", lbl, tsdb.Gauge, float64(z.l))
		if z.modeled {
			st.Append("roia_fleet_nmax", lbl, tsdb.Gauge, float64(capOrMinusOne(z.nmax, z.nmaxOK)))
			st.Append("roia_fleet_lmax", lbl, tsdb.Gauge, float64(capOrMinusOne(z.lmax, z.lmaxOK)))
		}
		for _, q := range []struct {
			name string
			q    float64
		}{
			{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99},
		} {
			st.Append("roia_fleet_tick_wall_q_ms",
				map[string]string{"zone": fmt.Sprintf("%d", z.zone), "q": q.name},
				tsdb.Gauge, z.tail.Quantile(q.q))
		}
	}
	if rtt != nil {
		snap := rtt()
		st.Append("roia_client_rtt_count", nil, tsdb.Counter, float64(snap.Count))
		st.Append("roia_client_rtt_deadline_violations_total", nil, tsdb.Counter, float64(snap.Violations))
	}
	c.mu.Lock()
	c.records++
	c.mu.Unlock()
}

// Recorded reports how many Record calls have landed — the readiness
// signal for /healthz (503 until the first scrape is retained).
func (c *Collector) Recorded() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.records
}

// Handler returns the collector's HTTP surface:
//
//	/fleet/metrics     the WriteMetrics exposition; with a store attached,
//	                   every scrape also appends to the retained history
//	/fleet/query       range queries over the retained history (with a
//	                   store attached; 404 otherwise)
//	/healthz           readiness: 503 until the first scrape is recorded,
//	                   200 after
//	/fleet/migrations  the stitched cross-replica migration trace;
//	                   ?format=chrome (default; one process row per
//	                   replica, loadable in Perfetto) or ?format=jsonl
//	                   (one stitched migration per line)
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	metrics := telemetry.MetricsHandler("", c.WriteMetrics)
	mux.HandleFunc("/fleet/metrics", func(w http.ResponseWriter, r *http.Request) {
		c.Record()
		metrics.ServeHTTP(w, r)
	})
	c.mu.Lock()
	st := c.store
	c.mu.Unlock()
	if st != nil {
		mux.Handle("/fleet/query", tsdb.QueryHandler(st))
	}
	mux.Handle("/healthz", telemetry.ReadyHandler(func() bool { return c.Recorded() > 0 }))
	mux.HandleFunc("/fleet/migrations", func(w http.ResponseWriter, r *http.Request) {
		events := c.MigEvents()
		switch format := r.URL.Query().Get("format"); format {
		case "", "chrome":
			w.Header().Set("Content-Type", "application/json")
			if err := telemetry.WriteMigrationChromeTrace(w, events); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "jsonl":
			w.Header().Set("Content-Type", "application/x-ndjson")
			if err := telemetry.WriteMigrationJSONL(w, telemetry.StitchMigrations(events)); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "migrations: format must be chrome or jsonl", http.StatusBadRequest)
		}
	})
	return mux
}

// Serve runs the collector's HTTP server on addr until ctx ends, with the
// same hardening as the per-server metrics endpoint: a read-header timeout
// against slowloris connections and a bounded graceful Shutdown so an
// in-flight scrape finishes but a hung one cannot block process exit. The
// listener is bound synchronously, so an address error is reported here and
// the returned string is the bound address (useful with port 0); serving
// then proceeds in the background.
func (c *Collector) Serve(ctx context.Context, addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	httpSrv := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	// done joins the serve goroutine: the shutdown goroutine waits on it
	// after Shutdown so the server has actually stopped accepting before
	// the shutdown path completes, rather than racing process exit.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Printf("fleet: collector: %v\n", err)
		}
	}()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			_ = httpSrv.Close()
		}
		<-done
	}()
	return ln.Addr().String(), nil
}
