// Package instance implements RTF's instancing distribution method at
// runtime: independent copies of a zone template, each processed by its
// own replica group, with users routed to a copy at join time ("instancing
// creates separate independent copies of a particular zone; each copy is
// processed by a different server", Section II).
//
// Instancing complements replication: replication lets several servers
// cooperate on ONE shared world state, while instancing opens additional
// disjoint worlds once a copy is full — the standard dungeon/lobby pattern
// of online games. An Instancer can host replicated instances: each
// instance owns a fleet, and a resource manager may still replicate within
// the instance.
package instance

import (
	"errors"
	"fmt"

	"roia/internal/rtf/fleet"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
)

// ErrInstancesExhausted is returned by Route when every instance is full
// and the instance cap has been reached.
var ErrInstancesExhausted = errors.New("instance: all instances full and MaxInstances reached")

// Config assembles an Instancer.
type Config struct {
	// Network attaches the instances' server nodes.
	Network transport.Network
	// Assignment is the shared zone→replica map (instances register their
	// synthetic zones here).
	Assignment *zone.Assignment
	// Template is the zone being instanced.
	Template zone.ID
	// NewApp builds the application logic for each spawned server.
	NewApp func() server.Application
	// CapacityPerInstance caps users per instance before a new copy
	// opens. Providers derive it from the scalability model (e.g. the
	// replication trigger of the instance's replica group).
	CapacityPerInstance int
	// MaxInstances bounds the number of copies (0 = unlimited).
	MaxInstances int
	// Seed bases the per-instance deterministic seeds.
	Seed int64
}

// Instance is one independent copy of the template zone.
type Instance struct {
	// Name is the instance session name (from zone.Assignment).
	Name string
	// Zone is the synthetic zone ID of this copy.
	Zone zone.ID
	// Fleet is the replica group processing the copy.
	Fleet *fleet.Fleet
}

// Users reports the instance's current population.
func (i *Instance) Users() int { return i.Fleet.ZoneUsers() }

// Entry returns the server ID a joining user should connect to (the
// least-loaded replica of the instance).
func (i *Instance) Entry() string {
	best, bestUsers := "", 1<<30
	for _, s := range i.Fleet.Servers() {
		if s.Draining || !s.Ready {
			continue
		}
		if s.Users < bestUsers {
			best, bestUsers = s.ID, s.Users
		}
	}
	return best
}

// Instancer manages the instance set of one zone template.
type Instancer struct {
	cfg       Config
	instances []*Instance
}

// New validates the configuration and returns an Instancer with no open
// instances; the first Route call opens the first copy.
func New(cfg Config) (*Instancer, error) {
	if cfg.Network == nil || cfg.Assignment == nil || cfg.NewApp == nil {
		return nil, errors.New("instance: Network, Assignment and NewApp are required")
	}
	if cfg.CapacityPerInstance <= 0 {
		return nil, errors.New("instance: CapacityPerInstance must be positive")
	}
	return &Instancer{cfg: cfg}, nil
}

// Instances returns the open instances in creation order.
func (ir *Instancer) Instances() []*Instance {
	return append([]*Instance(nil), ir.instances...)
}

// TotalUsers reports the population across all instances.
func (ir *Instancer) TotalUsers() int {
	n := 0
	for _, inst := range ir.instances {
		n += inst.Users()
	}
	return n
}

// Route returns the instance a new user should join: the least-loaded
// copy with spare capacity, or a freshly opened copy when all are full.
func (ir *Instancer) Route() (*Instance, error) {
	var best *Instance
	bestUsers := 1 << 30
	for _, inst := range ir.instances {
		if u := inst.Users(); u < ir.cfg.CapacityPerInstance && u < bestUsers {
			best, bestUsers = inst, u
		}
	}
	if best != nil {
		return best, nil
	}
	return ir.open()
}

// open creates a new instance copy with one replica.
func (ir *Instancer) open() (*Instance, error) {
	if ir.cfg.MaxInstances > 0 && len(ir.instances) >= ir.cfg.MaxInstances {
		return nil, fmt.Errorf("%w: %d instances of zone %d",
			ErrInstancesExhausted, len(ir.instances), ir.cfg.Template)
	}
	idx := len(ir.instances) + 1
	// Synthetic zone ID: template in the low 16 bits, copy index above —
	// instances never collide with real zones (which use small IDs).
	instZone := zone.ID(uint32(ir.cfg.Template) | uint32(idx)<<16)
	name := ir.cfg.Assignment.AddInstance(ir.cfg.Template)
	fl, err := fleet.New(fleet.Config{
		Network:    ir.cfg.Network,
		Zone:       instZone,
		Assignment: ir.cfg.Assignment,
		NewApp:     ir.cfg.NewApp,
		NamePrefix: name,
		IDBase:     uint16(idx * 256),
		Seed:       ir.cfg.Seed + int64(idx),
	})
	if err != nil {
		return nil, err
	}
	if _, err := fl.AddReplica(); err != nil {
		return nil, err
	}
	inst := &Instance{Name: name, Zone: instZone, Fleet: fl}
	ir.instances = append(ir.instances, inst)
	return inst, nil
}

// TickAll advances every replica of every instance by one tick.
func (ir *Instancer) TickAll() {
	for _, inst := range ir.instances {
		inst.Fleet.TickAll()
	}
}
