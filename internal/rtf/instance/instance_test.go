package instance_test

import (
	"errors"
	"fmt"
	"testing"

	"roia/internal/game"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/instance"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
)

func newInstancer(t *testing.T, capacity, maxInstances int) (*instance.Instancer, *transport.Loopback) {
	t.Helper()
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	ir, err := instance.New(instance.Config{
		Network:             net,
		Assignment:          zone.NewAssignment(),
		Template:            7,
		NewApp:              func() server.Application { return game.New(game.DefaultConfig()) },
		CapacityPerInstance: capacity,
		MaxInstances:        maxInstances,
		Seed:                1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ir, net
}

// joinVia routes a client through the instancer and completes the join.
func joinVia(t *testing.T, ir *instance.Instancer, net *transport.Loopback, name string) (*client.Client, *instance.Instance) {
	t.Helper()
	inst, err := ir.Route()
	if err != nil {
		t.Fatal(err)
	}
	node, err := net.Attach(name, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(node, inst.Entry())
	if err := cl.Join(uint32(inst.Zone), entity.Vec2{X: 100, Y: 100}, name); err != nil {
		t.Fatal(err)
	}
	ir.TickAll()
	cl.Poll()
	if !cl.Joined() {
		t.Fatalf("client %s never joined instance %s", name, inst.Name)
	}
	return cl, inst
}

func TestConfigValidation(t *testing.T) {
	if _, err := instance.New(instance.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	net := transport.NewLoopback()
	defer net.Close()
	if _, err := instance.New(instance.Config{
		Network:    net,
		Assignment: zone.NewAssignment(),
		NewApp:     func() server.Application { return game.New(game.DefaultConfig()) },
	}); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestRouteOpensInstancesAsTheyFill(t *testing.T) {
	ir, net := newInstancer(t, 3, 0)
	clients := make([]*client.Client, 0, 7)
	for i := 0; i < 7; i++ {
		cl, _ := joinVia(t, ir, net, fmt.Sprintf("c%d", i+1))
		clients = append(clients, cl)
	}
	insts := ir.Instances()
	if len(insts) != 3 {
		t.Fatalf("instances = %d, want 3 (7 users at capacity 3)", len(insts))
	}
	if got := ir.TotalUsers(); got != 7 {
		t.Fatalf("total users = %d", got)
	}
	// Population: 3 + 3 + 1.
	if insts[0].Users() != 3 || insts[1].Users() != 3 || insts[2].Users() != 1 {
		t.Fatalf("populations = %d/%d/%d", insts[0].Users(), insts[1].Users(), insts[2].Users())
	}
	// Every client plays in its own copy.
	for _, cl := range clients {
		if cl.Avatar() == 0 {
			t.Fatal("client has no avatar")
		}
	}
}

func TestInstancesAreIsolatedWorlds(t *testing.T) {
	ir, net := newInstancer(t, 1, 0) // one user per copy
	a, instA := joinVia(t, ir, net, "a")
	b, instB := joinVia(t, ir, net, "b")
	if instA == instB {
		t.Fatal("both users routed to the same instance")
	}
	// Several ticks: state updates flow.
	for i := 0; i < 5; i++ {
		ir.TickAll()
		a.Poll()
		b.Poll()
	}
	// Both stand at (100,100) — but in different copies, so neither sees
	// the other in its area of interest.
	for name, cl := range map[string]*client.Client{"a": a, "b": b} {
		upd := cl.LastUpdate()
		if upd == nil {
			t.Fatalf("client %s got no update", name)
		}
		if len(upd.Visible) != 0 {
			t.Fatalf("client %s sees %d entities across instance boundaries", name, len(upd.Visible))
		}
	}
}

func TestRouteReusesFreedCapacity(t *testing.T) {
	ir, net := newInstancer(t, 1, 2)
	a, _ := joinVia(t, ir, net, "a")
	joinVia(t, ir, net, "b")
	// Both copies full: a third user cannot be placed.
	if _, err := ir.Route(); !errors.Is(err, instance.ErrInstancesExhausted) {
		t.Fatalf("err = %v, want ErrInstancesExhausted", err)
	}
	// One user leaves; capacity frees up.
	if err := a.Leave(); err != nil {
		t.Fatal(err)
	}
	ir.TickAll()
	inst, err := ir.Route()
	if err != nil {
		t.Fatalf("route after leave: %v", err)
	}
	if inst.Users() != 0 {
		t.Fatalf("routed to a full instance (%d users)", inst.Users())
	}
}

func TestInstanceZoneIDsDistinct(t *testing.T) {
	ir, net := newInstancer(t, 1, 0)
	joinVia(t, ir, net, "a")
	joinVia(t, ir, net, "b")
	insts := ir.Instances()
	if insts[0].Zone == insts[1].Zone {
		t.Fatal("instance zones collide")
	}
	if insts[0].Name == insts[1].Name {
		t.Fatal("instance names collide")
	}
}
