// Package client implements the RTF client runtime used by bots, examples
// and the load-generator command: it connects a user to an application
// server, sends inputs, receives area-of-interest-filtered state updates,
// and transparently follows user migrations between servers.
package client

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"roia/internal/rtf/entity"
	"roia/internal/rtf/proto"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/wire"
	"roia/internal/telemetry"
)

// ErrNotJoined is returned by input sends before a join is acknowledged.
var ErrNotJoined = errors.New("client: not joined")

// maxPendingInputs bounds the in-flight input ring: when the server (or a
// lossy link) stops acking, the oldest pending timestamps are evicted and
// counted lost instead of growing without bound. 1024 inputs is ~40 s of
// continuous input at 25 Hz — far past any RTT worth measuring.
const maxPendingInputs = 1024

// pendingAge caps how long an unacked input stays pending before it ages
// out as lost. Keeps the ring small under light input rates too.
const pendingAge = 10 * time.Second

// pendingInput is one sent-but-not-yet-acked input.
type pendingInput struct {
	seq uint64
	at  time.Time
}

// Client is one user connection.
type Client struct {
	node transport.Node

	mu         sync.Mutex
	server     string
	avatar     entity.ID
	joined     bool
	inputSeq   uint64
	lastUpdate *proto.StateUpdate
	world      map[entity.ID]entity.Entity
	events     [][]byte
	updates    uint64
	migrations int
	w          *wire.Writer

	// Delta-stream state (proto v5, server.Config.DeltaUpdates). A delta
	// applies only when its BaseTick matches lastTick of a synced client;
	// anything else — a gap, a duplicate, an unknown entity — flips synced
	// off and counts a resync, and the client coasts on its last coherent
	// world until the next keyframe re-anchors it. The client never applies
	// a delta onto a base it does not hold, so it cannot diverge silently.
	synced    bool
	lastTick  uint64
	resyncs   uint64
	keyframes uint64

	// pending holds send timestamps of unacked inputs, oldest first;
	// ackSeq is the highest AckSeq delivered (guards against reordered
	// updates re-acking); lost counts inputs evicted unacked.
	pending []pendingInput
	ackSeq  uint64
	lost    uint64
	now     func() time.Time
	lat     *telemetry.Latency

	// lastJoin is the most recent join request, retained so a redirect
	// (MigrateNotice before the join was acked — a draining server pointing
	// the client at a peer replica) can be answered by re-joining there.
	lastJoin *proto.Join
	// joinNacks counts explicit join rejections (proto.JoinNack).
	joinNacks int
}

// New wraps an attached transport node into a client that will talk to the
// given server.
func New(node transport.Node, server string) *Client {
	return &Client{
		node:   node,
		server: server,
		w:      wire.NewWriter(256),
		now:    time.Now,
		lat:    telemetry.NewLatency(0),
	}
}

// ID returns the client's node ID (its user identity).
func (c *Client) ID() string { return c.node.ID() }

// Server returns the server the client is currently connected to.
func (c *Client) Server() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.server
}

// Joined reports whether the server has acknowledged the join.
func (c *Client) Joined() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.joined
}

// Avatar returns the entity ID assigned at join.
func (c *Client) Avatar() entity.ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.avatar
}

// Updates reports how many state updates have been received.
func (c *Client) Updates() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.updates
}

// Resyncs reports how many times the delta stream lost coherence (a gap,
// duplicate, reorder or unknown-entity delta) and the client had to wait
// for a keyframe to re-anchor. Zero on full-update streams.
func (c *Client) Resyncs() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resyncs
}

// Keyframes reports how many full keyframes the delta stream delivered.
func (c *Client) Keyframes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.keyframes
}

// Synced reports whether the client holds a coherent delta-stream view
// (anchored by a keyframe with no unapplied gap since). Always false on
// full-update streams, where World is maintained per update instead.
func (c *Client) Synced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.synced
}

// JoinNacks reports how many join requests were explicitly rejected
// (servers with no peer to redirect to send proto.JoinNack while draining).
func (c *Client) JoinNacks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.joinNacks
}

// Migrations reports how many times the client followed a user migration.
func (c *Client) Migrations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.migrations
}

// LastUpdate returns the most recent state update, or nil.
func (c *Client) LastUpdate() *proto.StateUpdate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastUpdate
}

// World returns the client's view of nearby entities (everything received
// in state updates and not yet reported gone, excluding its own avatar),
// in ID order. Under delta updates (see server.Config.DeltaUpdates) this
// cache is the authoritative client view; under full updates it is the
// union of recently visible entities.
func (c *Client) World() []entity.Entity {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]entity.Entity, 0, len(c.world))
	for id, e := range c.world {
		if id == c.avatar {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DrainEvents returns and clears the application events accumulated from
// state updates since the last call.
func (c *Client) DrainEvents() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	ev := c.events
	c.events = nil
	return ev
}

// Join requests entry into a zone at the given position. The server's
// acknowledgement arrives asynchronously via Poll.
func (c *Client) Join(zoneID uint32, pos entity.Vec2, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastJoin = &proto.Join{UserName: name, Zone: zoneID, Pos: pos}
	return c.sendLocked(c.lastJoin)
}

// Leave announces a clean disconnect.
func (c *Client) Leave() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.joined = false
	return c.sendLocked(&proto.Leave{})
}

// SendInput transmits one application-encoded command and stamps it for
// response-time measurement: when a state update acknowledging the input's
// sequence arrives, the input→update round trip is recorded in Latency.
func (c *Client) SendInput(payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.joined {
		return ErrNotJoined
	}
	c.inputSeq++
	c.pending = append(c.pending, pendingInput{seq: c.inputSeq, at: c.now()})
	if len(c.pending) > maxPendingInputs {
		drop := len(c.pending) - maxPendingInputs
		c.lost += uint64(drop)
		c.pending = append(c.pending[:0], c.pending[drop:]...)
	}
	return c.sendLocked(&proto.Input{Seq: c.inputSeq, Payload: payload})
}

// resolveAckLocked consumes an AckSeq carried by a state update: the
// exact-match pending input yields an RTT observation; older pending
// inputs were coalesced into the same tick (applied, but not individually
// measurable) and are discarded; newer ones stay pending. Updates whose
// ack is not beyond the highest seen (reordered or duplicated delivery)
// are ignored — the first delivery already measured the RTT. Unacked
// inputs older than pendingAge are aged out as lost.
func (c *Client) resolveAckLocked(ack uint64, at time.Time) {
	if ack > c.ackSeq {
		c.ackSeq = ack
		i := 0
		for ; i < len(c.pending) && c.pending[i].seq < ack; i++ {
		}
		if i < len(c.pending) && c.pending[i].seq == ack {
			c.lat.Observe(float64(at.Sub(c.pending[i].at)) / float64(time.Millisecond))
			i++
		}
		c.pending = append(c.pending[:0], c.pending[i:]...)
	}
	for len(c.pending) > 0 && at.Sub(c.pending[0].at) > pendingAge {
		c.lost++
		c.pending = append(c.pending[:0], c.pending[1:]...)
	}
}

// Latency returns the client's input→update response-time recorder. Set a
// deadline with SetLatencyDeadline to count QoS violations against the
// model's threshold U.
func (c *Client) Latency() *telemetry.Latency { return c.lat }

// SetLatencyDeadline sets the RTT deadline (ms) for QoS violation
// accounting; non-positive disables.
func (c *Client) SetLatencyDeadline(ms float64) { c.lat.SetDeadline(ms) }

// AckSeq returns the highest input sequence the server has acknowledged.
func (c *Client) AckSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ackSeq
}

// PendingInputs reports how many sent inputs await acknowledgement.
func (c *Client) PendingInputs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// LostInputs reports how many inputs aged out or were evicted unacked
// (dropped on a lossy link, or acked only after their timestamp expired).
func (c *Client) LostInputs() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lost
}

func (c *Client) sendLocked(msg wire.Message) error {
	payload := proto.Registry.Encode(c.w, msg)
	return c.node.Send(c.server, payload)
}

// Poll drains and processes all pending server traffic: join acks update
// the avatar binding, state updates are retained (the latest wins), and
// migration notices re-point the client at its new server — the
// "switching user connections between servers" of Section III-B. It
// returns the number of state updates processed.
func (c *Client) Poll() int {
	frames := transport.Drain(c.node, 0)
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	seen := 0
	for _, f := range frames {
		if len(f.Payload) < 2 {
			continue
		}
		switch wire.Kind(binary.BigEndian.Uint16(f.Payload)) {
		case proto.KindJoinAck:
			msg, err := proto.Registry.Decode(f.Payload)
			if err != nil {
				continue
			}
			ack := msg.(*proto.JoinAck)
			c.avatar = ack.Entity
			c.joined = true
		case proto.KindStateUpdate:
			msg, err := proto.Registry.Decode(f.Payload)
			if err != nil {
				continue
			}
			upd := msg.(*proto.StateUpdate)
			c.resolveAckLocked(upd.AckSeq, now)
			c.lastUpdate = upd
			if c.world == nil {
				c.world = make(map[entity.ID]entity.Entity, len(upd.Visible)+1)
			}
			c.world[upd.Self.ID] = upd.Self
			for _, e := range upd.Visible {
				c.world[e.ID] = e
			}
			for _, id := range upd.Gone {
				delete(c.world, id)
			}
			if len(upd.Events) > 0 {
				c.events = append(c.events, upd.Events)
			}
			c.updates++
			seen++
		case proto.KindStateKeyframe:
			msg, err := proto.Registry.Decode(f.Payload)
			if err != nil {
				continue
			}
			kf := msg.(*proto.StateKeyframe)
			c.resolveAckLocked(kf.AckSeq, now)
			// A keyframe is a complete visible set: replace the world
			// wholesale and re-anchor the delta chain.
			if c.world == nil {
				c.world = make(map[entity.ID]entity.Entity, len(kf.Visible)+1)
			} else {
				clear(c.world)
			}
			c.world[kf.Self.ID] = kf.Self
			for _, e := range kf.Visible {
				c.world[e.ID] = e
			}
			c.lastTick = kf.Tick
			c.synced = true
			c.keyframes++
			c.lastUpdate = &proto.StateUpdate{Tick: kf.Tick, AckSeq: kf.AckSeq, Self: kf.Self}
			if len(kf.Events) > 0 {
				c.events = append(c.events, kf.Events)
			}
			c.updates++
			seen++
		case proto.KindStateDelta:
			msg, err := proto.Registry.Decode(f.Payload)
			if err != nil {
				continue
			}
			upd := msg.(*proto.StateDelta)
			c.resolveAckLocked(upd.AckSeq, now)
			if !c.synced || upd.BaseTick != c.lastTick {
				// Base mismatch (dropped, duplicated or reordered frame) or
				// not yet anchored: count a resync once per loss of sync and
				// coast until the next keyframe.
				if c.synced {
					c.synced = false
					c.resyncs++
				}
				continue
			}
			self, ok := c.world[c.avatar]
			if !ok {
				c.synced = false
				c.resyncs++
				continue
			}
			self.ApplyMasked(&upd.Self, upd.SelfMask)
			c.world[self.ID] = self
			applied := true
			for i := range upd.Updates {
				d := &upd.Updates[i]
				prev, known := c.world[d.ID]
				if !known {
					// Delta against an entity this client never saw: the
					// stream and our view have diverged — stop applying and
					// wait for the keyframe rather than guess.
					c.synced = false
					c.resyncs++
					applied = false
					break
				}
				prev.ApplyMasked(&d.State, d.Mask)
				c.world[d.ID] = prev
			}
			if !applied {
				continue
			}
			for _, e := range upd.Enters {
				c.world[e.ID] = e
			}
			for _, id := range upd.Gone {
				delete(c.world, id)
			}
			c.lastTick = upd.Tick
			c.lastUpdate = &proto.StateUpdate{Tick: upd.Tick, AckSeq: upd.AckSeq, Self: self}
			if len(upd.Events) > 0 {
				c.events = append(c.events, upd.Events)
			}
			c.updates++
			seen++
		case proto.KindMigrateNotice:
			msg, err := proto.Registry.Decode(f.Payload)
			if err != nil {
				continue
			}
			c.server = msg.(*proto.MigrateNotice).NewServer
			c.migrations++
			// The new server opens its stream with a keyframe; drop the old
			// server's delta chain so a straggler frame cannot apply.
			c.synced = false
			if !c.joined && c.lastJoin != nil {
				// Redirected before the join was acked (e.g. by a draining
				// server): re-issue the join at the new server.
				_ = c.sendLocked(c.lastJoin)
			}
		case proto.KindJoinNack:
			if _, err := proto.Registry.Decode(f.Payload); err == nil {
				c.joinNacks++
			}
		}
	}
	return seen
}

// Close detaches the client from the network.
func (c *Client) Close() error { return c.node.Close() }

func (c *Client) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("client(%s → %s joined=%v)", c.node.ID(), c.server, c.joined)
}
