package client

import (
	"errors"
	"testing"

	"roia/internal/rtf/entity"
	"roia/internal/rtf/proto"
	"roia/internal/rtf/transport"
)

// fakeServer lets tests hand-feed protocol frames to a client.
type fakeServer struct {
	node transport.Node
}

func setup(t *testing.T) (*Client, *fakeServer) {
	t.Helper()
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	sn, err := net.Attach("srv", 64)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := net.Attach("cli", 64)
	if err != nil {
		t.Fatal(err)
	}
	return New(cn, "srv"), &fakeServer{node: sn}
}

func (f *fakeServer) send(t *testing.T, to string, payload []byte) {
	t.Helper()
	if err := f.node.Send(to, payload); err != nil {
		t.Fatal(err)
	}
}

func TestSendInputBeforeJoinFails(t *testing.T) {
	c, _ := setup(t)
	if err := c.SendInput([]byte{1}); !errors.Is(err, ErrNotJoined) {
		t.Fatalf("err = %v, want ErrNotJoined", err)
	}
}

func TestJoinAckBindsAvatar(t *testing.T) {
	c, srv := setup(t)
	if err := c.Join(1, entity.Vec2{X: 5, Y: 5}, "tester"); err != nil {
		t.Fatal(err)
	}
	// The server received the join frame.
	frames := transport.Drain(srv.node, 0)
	if len(frames) != 1 {
		t.Fatalf("server saw %d frames", len(frames))
	}
	msg, err := proto.Registry.Decode(frames[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if j := msg.(*proto.Join); j.UserName != "tester" || j.Zone != 1 {
		t.Fatalf("join = %+v", j)
	}
	srv.send(t, "cli", proto.Registry.EncodeToBytes(&proto.JoinAck{Entity: 42, Tick: 3}))
	c.Poll()
	if !c.Joined() || c.Avatar() != 42 {
		t.Fatalf("joined=%v avatar=%d", c.Joined(), c.Avatar())
	}
	// Inputs now flow and carry increasing sequence numbers.
	if err := c.SendInput([]byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendInput([]byte{9}); err != nil {
		t.Fatal(err)
	}
	in1, _ := proto.Registry.Decode(transport.Drain(srv.node, 0)[0].Payload)
	if in1.(*proto.Input).Seq != 1 {
		t.Fatalf("first input seq = %d", in1.(*proto.Input).Seq)
	}
}

func TestPollRetainsLatestUpdateAndAccumulatesEvents(t *testing.T) {
	c, srv := setup(t)
	srv.send(t, "cli", proto.Registry.EncodeToBytes(&proto.JoinAck{Entity: 1}))
	srv.send(t, "cli", proto.Registry.EncodeToBytes(&proto.StateUpdate{
		Tick: 1, Self: entity.Entity{ID: 1}, Events: []byte("hit"),
	}))
	srv.send(t, "cli", proto.Registry.EncodeToBytes(&proto.StateUpdate{
		Tick: 2, Self: entity.Entity{ID: 1},
	}))
	if got := c.Poll(); got != 2 {
		t.Fatalf("Poll processed %d updates, want 2", got)
	}
	if c.LastUpdate().Tick != 2 {
		t.Fatalf("latest tick = %d", c.LastUpdate().Tick)
	}
	if c.Updates() != 2 {
		t.Fatalf("updates = %d", c.Updates())
	}
	ev := c.DrainEvents()
	if len(ev) != 1 || string(ev[0]) != "hit" {
		t.Fatalf("events = %q", ev)
	}
	if got := c.DrainEvents(); got != nil {
		t.Fatal("events not cleared")
	}
}

func TestMigrateNoticeSwitchesServer(t *testing.T) {
	c, srv := setup(t)
	srv.send(t, "cli", proto.Registry.EncodeToBytes(&proto.JoinAck{Entity: 1}))
	srv.send(t, "cli", proto.Registry.EncodeToBytes(&proto.MigrateNotice{NewServer: "srv2"}))
	c.Poll()
	if got := c.Server(); got != "srv2" {
		t.Fatalf("server = %q, want srv2", got)
	}
	if c.Migrations() != 1 {
		t.Fatalf("migrations = %d", c.Migrations())
	}
	// Still joined: migration keeps the session alive.
	if !c.Joined() {
		t.Fatal("migration dropped the session")
	}
}

func TestPollIgnoresJunkFrames(t *testing.T) {
	c, srv := setup(t)
	srv.send(t, "cli", []byte{})           // empty
	srv.send(t, "cli", []byte{0xFF})       // too short
	srv.send(t, "cli", []byte{0xFF, 0xFF}) // unknown kind
	srv.send(t, "cli", []byte{0, 2, 1})    // KindJoinAck but truncated
	if got := c.Poll(); got != 0 {
		t.Fatalf("Poll = %d on junk", got)
	}
	if c.Joined() {
		t.Fatal("junk made the client joined")
	}
}

func TestLeaveResetsJoined(t *testing.T) {
	c, srv := setup(t)
	srv.send(t, "cli", proto.Registry.EncodeToBytes(&proto.JoinAck{Entity: 1}))
	c.Poll()
	if err := c.Leave(); err != nil {
		t.Fatal(err)
	}
	if c.Joined() {
		t.Fatal("still joined after leave")
	}
	if err := c.SendInput([]byte{1}); !errors.Is(err, ErrNotJoined) {
		t.Fatal("input accepted after leave")
	}
}
