package client_test

// FuzzDeltaApply throws hostile delta streams at the client: frames from a
// recorded real session delivered out of order, duplicated, truncated or
// replaced with garbage. The client may coast or resync — it must never
// panic and never diverge silently: after a known-good keyframe its world
// must equal that keyframe's content exactly, and any rejected delta must
// be visible in Resyncs.

import (
	"testing"

	"roia/internal/game"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/proto"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/wire"
	"roia/internal/rtf/zone"
)

// recordDeltaSession plays a short two-client session against a real
// delta-mode server and returns every payload the server sent to the
// passive observer client, in order (JoinAck first, then a mix of
// keyframes and deltas while the second client moves through the
// observer's AoI).
func recordDeltaSession(f *testing.F) [][]byte {
	f.Helper()
	net := transport.NewLoopback()
	defer net.Close()
	sn, err := net.Attach("s1", 1<<16)
	if err != nil {
		f.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Node:          sn,
		Zone:          1,
		Assignment:    zone.NewAssignment(),
		App:           game.New(game.DefaultConfig()),
		IDPrefix:      1,
		Seed:          1,
		DeltaUpdates:  true,
		KeyframeTicks: 5,
	})
	if err != nil {
		f.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	observer, err := net.Attach("obs", 1<<12)
	if err != nil {
		f.Fatal(err)
	}
	w := wire.NewWriter(256)
	join := proto.Registry.Encode(w, &proto.Join{UserName: "obs", Zone: 1, Pos: entity.Vec2{X: 100, Y: 100}})
	if err := observer.Send("s1", join); err != nil {
		f.Fatal(err)
	}

	mn, err := net.Attach("m1", 1<<12)
	if err != nil {
		f.Fatal(err)
	}
	mover := client.New(mn, "s1")
	if err := mover.Join(1, entity.Vec2{X: 110, Y: 100}, "m1"); err != nil {
		f.Fatal(err)
	}

	var log [][]byte
	for tick := 0; tick < 16; tick++ {
		srv.Tick()
		mover.Poll()
		_ = mover.SendInput(game.Commands.EncodeToBytes(&game.Move{DX: 2, DY: 1}))
		for _, fr := range transport.Drain(observer, 0) {
			cp := make([]byte, len(fr.Payload))
			copy(cp, fr.Payload)
			log = append(log, cp)
		}
	}
	if len(log) < 8 {
		f.Fatalf("recorded only %d frames", len(log))
	}
	return log
}

func FuzzDeltaApply(f *testing.F) {
	log := recordDeltaSession(f)

	f.Add([]byte{})                                     // keyframe-only client
	f.Add([]byte{0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0})   // in-order delivery
	f.Add([]byte{5, 0, 4, 0, 3, 0, 2, 0, 1, 0})         // reversed
	f.Add([]byte{1, 0, 1, 0, 1, 0})                     // duplicated
	f.Add([]byte{2, 1, 2, 2, 2, 3, 2, 200})             // truncations
	f.Add([]byte{0, 0, 9, 0, 1, 0, 250, 9, 250, 13})    // skips + garbage
	f.Add([]byte{0, 0, 255, 255, 254, 7, 253, 0, 6, 0}) // garbage mixed in

	f.Fuzz(func(t *testing.T, data []byte) {
		net := transport.NewLoopback()
		defer net.Close()
		src, err := net.Attach("s1", 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		cn, err := net.Attach("c1", 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		cl := client.New(cn, "s1")
		deliver := func(payload []byte) {
			if err := src.Send("c1", payload); err != nil {
				t.Fatal(err)
			}
			cl.Poll()
			transport.Drain(src, 0) // discard anything the client sent back
		}

		// The recorded log starts with the JoinAck; anchor the avatar
		// binding deterministically, then let the fuzz schedule loose.
		deliver(log[0])
		avatar := cl.Avatar()
		for i := 0; i+1 < len(data); i += 2 {
			sel, mod := data[i], data[i+1]
			switch {
			case sel >= 250: // raw garbage frame derived from the input
				deliver(data[i:])
			case int(sel) >= len(log): // skip
			case mod == 0: // intact (fuzz repeats cover duplication/reorder)
				deliver(log[sel])
			default: // truncated
				fr := log[sel]
				n := int(mod) % (len(fr) + 1)
				deliver(fr[:n])
			}
		}
		resyncsBefore := cl.Resyncs()

		// A known-good keyframe must always re-anchor the client, whatever
		// state the hostile stream left it in.
		self := entity.Entity{ID: avatar, Pos: entity.Vec2{X: 7, Y: 8}, Health: 42, Owner: "s1", Seq: 9}
		visible := []entity.Entity{
			{ID: avatar + 1, Pos: entity.Vec2{X: 1, Y: 2}, Health: 10, Owner: "s1", Seq: 3},
			{ID: avatar + 2, Pos: entity.Vec2{X: 3, Y: 4}, Health: 20, Owner: "s1", Seq: 5},
		}
		w := wire.NewWriter(512)
		deliver(proto.Registry.Encode(w, &proto.StateKeyframe{Tick: 1 << 30, Self: self, Visible: visible}))

		if !cl.Synced() {
			t.Fatal("client not synced after known-good keyframe")
		}
		if cl.Resyncs() < resyncsBefore {
			t.Fatal("resync counter went backwards")
		}
		world := cl.World()
		if len(world) != len(visible) {
			t.Fatalf("world after keyframe has %d entities, want %d: %+v", len(world), len(visible), world)
		}
		for i, want := range visible {
			if world[i] != want {
				t.Fatalf("world[%d] = %+v, want %+v — client diverged from keyframe", i, world[i], want)
			}
		}
		if lu := cl.LastUpdate(); lu == nil || lu.Self != self {
			t.Fatalf("LastUpdate not synthesized from keyframe: %+v", lu)
		}
	})
}
