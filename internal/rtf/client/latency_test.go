package client

import (
	"testing"
	"time"

	"roia/internal/rtf/entity"
	"roia/internal/rtf/proto"
	"roia/internal/rtf/transport"
)

// fakeClock gives the client deterministic time.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func joinedClient(t *testing.T) (*Client, *fakeServer, *fakeClock) {
	t.Helper()
	c, srv := setup(t)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c.now = clk.now
	srv.send(t, "cli", proto.Registry.EncodeToBytes(&proto.JoinAck{Entity: 1}))
	c.Poll()
	if !c.Joined() {
		t.Fatal("join not acknowledged")
	}
	transport.Drain(srv.node, 0) // discard the join frame
	return c, srv, clk
}

func ack(srv *fakeServer, t *testing.T, tick, ackSeq uint64) {
	t.Helper()
	srv.send(t, "cli", proto.Registry.EncodeToBytes(&proto.StateUpdate{
		Tick: tick, AckSeq: ackSeq, Self: entity.Entity{ID: 1},
	}))
}

func TestInputRTTMeasured(t *testing.T) {
	c, srv, clk := joinedClient(t)
	if err := c.SendInput([]byte{1}); err != nil {
		t.Fatal(err)
	}
	clk.advance(30 * time.Millisecond)
	ack(srv, t, 1, 1)
	c.Poll()
	s := c.Latency().Snapshot()
	if s.Count != 1 {
		t.Fatalf("RTT observations = %d, want 1", s.Count)
	}
	if s.MaxMS < 29 || s.MaxMS > 31 {
		t.Fatalf("RTT = %g ms, want ~30", s.MaxMS)
	}
	if c.AckSeq() != 1 || c.PendingInputs() != 0 {
		t.Fatalf("ackSeq=%d pending=%d", c.AckSeq(), c.PendingInputs())
	}
}

func TestCoalescedInputsDropWithoutObservation(t *testing.T) {
	c, srv, clk := joinedClient(t)
	// Three inputs land in one tick; the ack names only the last.
	for i := 0; i < 3; i++ {
		if err := c.SendInput([]byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	clk.advance(20 * time.Millisecond)
	ack(srv, t, 1, 3)
	c.Poll()
	s := c.Latency().Snapshot()
	if s.Count != 1 {
		t.Fatalf("RTT observations = %d, want 1 (only the acked seq measures)", s.Count)
	}
	if c.PendingInputs() != 0 {
		t.Fatalf("pending = %d, want 0 (older inputs coalesced away)", c.PendingInputs())
	}
	if c.LostInputs() != 0 {
		t.Fatalf("lost = %d; coalesced inputs were delivered, not lost", c.LostInputs())
	}
}

func TestReorderedUpdateDoesNotDoubleCount(t *testing.T) {
	c, srv, clk := joinedClient(t)
	if err := c.SendInput([]byte{1}); err != nil {
		t.Fatal(err)
	}
	clk.advance(10 * time.Millisecond)
	ack(srv, t, 2, 1) // newer update arrives first
	c.Poll()
	if err := c.SendInput([]byte{1}); err != nil {
		t.Fatal(err)
	}
	ack(srv, t, 1, 1) // stale update delivered late: same ack
	c.Poll()
	s := c.Latency().Snapshot()
	if s.Count != 1 {
		t.Fatalf("RTT observations = %d, want 1 (stale ack ignored)", s.Count)
	}
	if c.PendingInputs() != 1 {
		t.Fatalf("pending = %d, want 1 (seq 2 still in flight)", c.PendingInputs())
	}
	// The in-flight input is still measurable once its ack arrives.
	clk.advance(5 * time.Millisecond)
	ack(srv, t, 3, 2)
	c.Poll()
	if got := c.Latency().Snapshot().Count; got != 2 {
		t.Fatalf("RTT observations = %d, want 2", got)
	}
}

func TestLostInputsAgeOutBounded(t *testing.T) {
	c, srv, clk := joinedClient(t)
	if err := c.SendInput([]byte{1}); err != nil {
		t.Fatal(err)
	}
	// The input (or its ack) is lost; much later traffic still flows.
	clk.advance(pendingAge + time.Second)
	ack(srv, t, 50, 0) // server applied nothing from us
	c.Poll()
	if c.PendingInputs() != 0 {
		t.Fatalf("pending = %d, want 0 after age-out", c.PendingInputs())
	}
	if c.LostInputs() != 1 {
		t.Fatalf("lost = %d, want 1", c.LostInputs())
	}
	if got := c.Latency().Snapshot().Count; got != 0 {
		t.Fatalf("RTT observations = %d, want 0", got)
	}
}

func TestPendingRingCapEvictsOldest(t *testing.T) {
	c, srv, _ := joinedClient(t)
	for i := 0; i < maxPendingInputs+10; i++ {
		if err := c.SendInput(nil); err != nil {
			t.Fatal(err)
		}
		transport.Drain(srv.node, 0) // keep the fake server's inbox from filling
	}
	if c.PendingInputs() != maxPendingInputs {
		t.Fatalf("pending = %d, want cap %d", c.PendingInputs(), maxPendingInputs)
	}
	if c.LostInputs() != 10 {
		t.Fatalf("lost = %d, want 10", c.LostInputs())
	}
}

func TestRTTDeadlineViolations(t *testing.T) {
	c, srv, clk := joinedClient(t)
	c.SetLatencyDeadline(25)
	for i := uint64(1); i <= 4; i++ {
		if err := c.SendInput(nil); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			clk.advance(50 * time.Millisecond) // late
		} else {
			clk.advance(10 * time.Millisecond) // in time
		}
		ack(srv, t, i, i)
		c.Poll()
	}
	s := c.Latency().Snapshot()
	if s.Count != 4 || s.Violations != 2 {
		t.Fatalf("count=%d violations=%d, want 4/2", s.Count, s.Violations)
	}
}

// TestRTTUnderLossyTransport drives inputs over a transport that drops
// half the frames: measured RTTs stay sane, unmatched inputs age out, and
// the pending ring never leaks.
func TestRTTUnderLossyTransport(t *testing.T) {
	net := transport.NewLoopback()
	defer net.Close()
	sn, err := net.Attach("srv", 4096)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := net.Attach("cli", 4096)
	if err != nil {
		t.Fatal(err)
	}
	c := New(transport.NewLossy(cn, 0.5, 7), "srv")
	clk := &fakeClock{t: time.Unix(2000, 0)}
	c.now = clk.now
	c.joined = true

	applied := uint64(0)
	for i := 0; i < 200; i++ {
		if err := c.SendInput(nil); err != nil {
			t.Fatal(err)
		}
		clk.advance(4 * time.Millisecond)
		// Server sees whichever inputs survived and acks the highest.
		for _, f := range transport.Drain(sn, 0) {
			if msg, err := proto.Registry.Decode(f.Payload); err == nil {
				if in, ok := msg.(*proto.Input); ok && in.Seq > applied {
					applied = in.Seq
				}
			}
		}
		if err := sn.Send("cli", proto.Registry.EncodeToBytes(&proto.StateUpdate{
			Tick: uint64(i), AckSeq: applied, Self: entity.Entity{ID: 1},
		})); err != nil {
			t.Fatal(err)
		}
		c.Poll()
	}
	// Flush stragglers past the age-out horizon.
	clk.advance(pendingAge + time.Second)
	if err := sn.Send("cli", proto.Registry.EncodeToBytes(&proto.StateUpdate{
		Tick: 1000, AckSeq: applied, Self: entity.Entity{ID: 1},
	})); err != nil {
		t.Fatal(err)
	}
	c.Poll()

	s := c.Latency().Snapshot()
	if s.Count == 0 {
		t.Fatal("no RTTs measured despite surviving traffic")
	}
	if s.Count+c.LostInputs() > 200 {
		t.Fatalf("accounting leak: measured %d + lost %d > 200 sent", s.Count, c.LostInputs())
	}
	if c.PendingInputs() != 0 {
		t.Fatalf("pending = %d, want 0 after age-out", c.PendingInputs())
	}
	if s.MaxMS > float64(pendingAge/time.Millisecond) {
		t.Fatalf("RTT %g ms beyond the age-out horizon", s.MaxMS)
	}
}
