package aoi

import (
	"math/rand"
	"slices"
	"sync"
	"testing"
	"testing/quick"

	"roia/internal/rtf/entity"
)

// TestIncrementalMatchesEuclidProperty drives an incremental index through
// many ticks of random walks, teleports, spawns and despawns and checks
// after every rebuild that its answers match the brute-force Euclid
// reference for every subject. The incremental index only re-buckets moved
// entities, so the property specifically exercises the stale-slot paths a
// single-build comparison cannot reach.
func TestIncrementalMatchesEuclidProperty(t *testing.T) {
	prop := func(seed int64, n8 uint8, radiusRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%60) + 4
		radius := float64(radiusRaw%50) + 1
		euclid := NewEuclid(radius)
		inc := NewIncremental(radius)

		world := make([]*entity.Entity, 0, n)
		nextID := entity.ID(1)
		for i := 0; i < n; i++ {
			world = append(world, &entity.Entity{
				ID:  nextID,
				Pos: entity.Vec2{X: rng.Float64() * 200, Y: rng.Float64() * 200},
			})
			nextID++
		}

		for tick := 0; tick < 12; tick++ {
			for _, e := range world {
				switch rng.Intn(10) {
				case 0: // teleport: arbitrary cell jump
					e.Pos = entity.Vec2{X: rng.Float64()*400 - 100, Y: rng.Float64()*400 - 100}
				case 1, 2, 3: // stand still: slot refresh path
				default: // walk: usually a neighbouring cell at most
					e.Pos.X += rng.Float64()*6 - 3
					e.Pos.Y += rng.Float64()*6 - 3
				}
			}
			if len(world) > 4 && rng.Intn(3) == 0 { // despawn: eviction path
				i := rng.Intn(len(world))
				world = append(world[:i], world[i+1:]...)
			}
			if rng.Intn(3) == 0 { // spawn: first-seen path
				world = append(world, &entity.Entity{
					ID:  nextID,
					Pos: entity.Vec2{X: rng.Float64() * 200, Y: rng.Float64() * 200},
				})
				nextID++
			}
			// The store hands AoI managers ID-sorted worlds; despawn+spawn
			// above preserves order except for the swap-free delete, so
			// re-sort to honour the contract.
			slices.SortFunc(world, func(a, b *entity.Entity) int {
				if a.ID < b.ID {
					return -1
				}
				return 1
			})
			inc.Build(world)
			for _, subj := range world {
				want := euclid.Visible(nil, subj.ID, subj.Pos, world)
				got := inc.Visible(nil, subj.ID, subj.Pos, world)
				slices.Sort(want)
				slices.Sort(got)
				if !slices.Equal(want, got) {
					t.Logf("tick %d subject %d: euclid=%v incremental=%v", tick, subj.ID, want, got)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalVisibleConcurrent hammers Visible from 8 goroutines
// between builds — the Manager contract says Visible is a concurrent
// read-only query, and the race detector holds the incremental index to
// it.
func TestIncrementalVisibleConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	world := make([]*entity.Entity, 64)
	for i := range world {
		world[i] = &entity.Entity{
			ID:  entity.ID(i + 1),
			Pos: entity.Vec2{X: rng.Float64() * 100, Y: rng.Float64() * 100},
		}
	}
	inc := NewIncremental(25)
	euclid := NewEuclid(25)
	for tick := 0; tick < 8; tick++ {
		for _, e := range world {
			e.Pos.X += rng.Float64()*4 - 2
			e.Pos.Y += rng.Float64()*4 - 2
		}
		inc.Build(world)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				dst := make([]entity.ID, 0, 64)
				for i := g; i < len(world); i += 8 {
					subj := world[i]
					got := inc.Visible(dst[:0], subj.ID, subj.Pos, world)
					want := euclid.Visible(nil, subj.ID, subj.Pos, world)
					slices.Sort(got)
					slices.Sort(want)
					if !slices.Equal(want, got) {
						t.Errorf("subject %d: euclid=%v incremental=%v", subj.ID, want, got)
					}
				}
			}(g)
		}
		wg.Wait()
	}
}

// TestDiff pins the enter/leave merge walk on hand-written sets.
func TestDiff(t *testing.T) {
	cases := []struct {
		prev, cur, enters, gone []entity.ID
	}{
		{nil, nil, nil, nil},
		{nil, []entity.ID{1, 2}, []entity.ID{1, 2}, nil},
		{[]entity.ID{1, 2}, nil, nil, []entity.ID{1, 2}},
		{[]entity.ID{1, 2, 4}, []entity.ID{2, 3, 4}, []entity.ID{3}, []entity.ID{1}},
		{[]entity.ID{5}, []entity.ID{5}, nil, nil},
		{[]entity.ID{1, 3, 5}, []entity.ID{2, 4, 6}, []entity.ID{2, 4, 6}, []entity.ID{1, 3, 5}},
	}
	for i, c := range cases {
		enters, gone := Diff(c.prev, c.cur, nil, nil)
		if !slices.Equal(enters, c.enters) || !slices.Equal(gone, c.gone) {
			t.Errorf("case %d: got enters=%v gone=%v, want enters=%v gone=%v",
				i, enters, gone, c.enters, c.gone)
		}
	}
}
