// Package aoi implements interest management: computing each user's area of
// interest so that state-update filtering only transmits visible changes
// (step 4 of the paper's real-time loop, parameter t_aoi).
//
// Two algorithms are provided:
//
//   - Euclid is the Euclidean Distance Algorithm used by RTFDemo (Section
//     V-A, citing Boulanger et al.): for every subject, iterate over all
//     other entities, test the distance against the visibility radius, and
//     guard each subscription with a duplicate check over the subject's
//     update list. Its per-user cost grows quadratically with the user
//     count — exactly the behaviour the paper fits t_aoi with.
//   - Grid is a uniform spatial hash, the standard faster alternative; it
//     exists as the ablation baseline (bench: BenchmarkAoI*) showing how the
//     choice of interest-management algorithm shifts the model parameter.
package aoi

import (
	"math"

	"roia/internal/rtf/entity"
)

// Manager computes the set of entities visible to a subject.
//
// Concurrency contract: Build is called once per tick by the tick
// goroutine, before any Visible call for that tick. Between one Build and
// the next, Visible must be safe to call from multiple goroutines
// concurrently — the parallel publish stage fans per-user queries over a
// worker pool — so Visible must not mutate manager state. Each caller
// passes its own dst slice; world is the same immutable snapshot slice
// Build received and must not be written through. Both implementations in
// this package (Euclid and Grid) satisfy the contract.
type Manager interface {
	// Build prepares the manager for a tick's worth of Visible queries
	// over the given world (e.g. re-indexing a spatial hash). Managers
	// without per-tick state treat it as a no-op.
	Build(world []*entity.Entity)
	// Visible appends to dst the IDs of all entities in world (excluding
	// the subject itself) within the manager's visibility radius of pos,
	// and returns the extended slice. world is in deterministic ID order.
	// Visible is read-only on the manager and on world: see the
	// concurrency contract above.
	Visible(dst []entity.ID, subject entity.ID, pos entity.Vec2, world []*entity.Entity) []entity.ID
}

// Euclid is the paper's O(n²)-flavoured Euclidean Distance Algorithm.
type Euclid struct {
	// Radius is the visibility radius.
	Radius float64
}

// NewEuclid returns a Euclid manager with the given visibility radius.
func NewEuclid(radius float64) *Euclid { return &Euclid{Radius: radius} }

// Build implements Manager; the Euclidean algorithm keeps no per-tick
// state, so it is a no-op.
func (e *Euclid) Build([]*entity.Entity) {}

// Visible implements Manager. Following the paper's description of
// RTFDemo, each candidate subscription scans the update list built so far
// to avoid duplicate entries ("for each subscription, RTFDemo iterates
// through the update list in order to avoid duplicate entries").
func (e *Euclid) Visible(dst []entity.ID, subject entity.ID, pos entity.Vec2, world []*entity.Entity) []entity.ID {
	r2 := e.Radius * e.Radius
	start := len(dst)
	for _, cand := range world {
		if cand.ID == subject {
			continue
		}
		if pos.Dist2(cand.Pos) > r2 {
			continue
		}
		dup := false
		for _, seen := range dst[start:] {
			if seen == cand.ID {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, cand.ID)
		}
	}
	return dst
}

// Grid is a uniform spatial-hash interest manager. Build must be called
// once per tick before Visible.
type Grid struct {
	// Radius is the visibility radius.
	Radius float64
	// CellSize is the edge length of one grid cell; zero defaults to
	// Radius (the usual choice: candidates lie in the 3×3 neighbourhood).
	CellSize float64

	cells map[cellKey][]*entity.Entity
}

type cellKey struct{ cx, cy int32 }

// NewGrid returns a Grid manager with the given visibility radius.
func NewGrid(radius float64) *Grid {
	return &Grid{Radius: radius}
}

func (g *Grid) cellSize() float64 {
	if g.CellSize > 0 {
		return g.CellSize
	}
	if g.Radius > 0 {
		return g.Radius
	}
	return 1
}

func (g *Grid) key(pos entity.Vec2) cellKey {
	cs := g.cellSize()
	return cellKey{int32(math.Floor(pos.X / cs)), int32(math.Floor(pos.Y / cs))}
}

// Build (re)indexes the world into the spatial hash.
func (g *Grid) Build(world []*entity.Entity) {
	g.cells = make(map[cellKey][]*entity.Entity, len(world)/2+1)
	for _, e := range world {
		k := g.key(e.Pos)
		g.cells[k] = append(g.cells[k], e)
	}
}

// Visible implements Manager over the most recent Build. Results are in
// the same relative order as the Build input within each cell and cell
// scan order is deterministic, so outputs are reproducible. Visible never
// mutates the grid (the concurrency contract): if Build has not run yet it
// falls back to a read-only linear scan instead of lazily indexing, so
// concurrent first-tick queries stay race-free.
func (g *Grid) Visible(dst []entity.ID, subject entity.ID, pos entity.Vec2, world []*entity.Entity) []entity.ID {
	if g.cells == nil {
		r2 := g.Radius * g.Radius
		for _, cand := range world {
			if cand.ID != subject && pos.Dist2(cand.Pos) <= r2 {
				dst = append(dst, cand.ID)
			}
		}
		return dst
	}
	r2 := g.Radius * g.Radius
	cs := g.cellSize()
	reach := int32(math.Ceil(g.Radius/cs)) + 1
	center := g.key(pos)
	for dy := -reach; dy <= reach; dy++ {
		for dx := -reach; dx <= reach; dx++ {
			for _, cand := range g.cells[cellKey{center.cx + dx, center.cy + dy}] {
				if cand.ID == subject {
					continue
				}
				if pos.Dist2(cand.Pos) <= r2 {
					dst = append(dst, cand.ID)
				}
			}
		}
	}
	return dst
}
