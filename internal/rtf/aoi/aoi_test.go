package aoi

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"roia/internal/rtf/entity"
)

func mkWorld(positions []entity.Vec2) []*entity.Entity {
	world := make([]*entity.Entity, len(positions))
	for i, p := range positions {
		world[i] = &entity.Entity{ID: entity.ID(i + 1), Pos: p}
	}
	return world
}

func TestEuclidVisibleBasic(t *testing.T) {
	world := mkWorld([]entity.Vec2{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 4}})
	e := NewEuclid(5)
	got := e.Visible(nil, 1, world[0].Pos, world)
	want := []entity.ID{2, 4} // dist 3 and 4; entity 3 at dist 10 excluded
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Visible = %v, want %v", got, want)
	}
}

func TestEuclidExcludesSubject(t *testing.T) {
	world := mkWorld([]entity.Vec2{{X: 0, Y: 0}, {X: 1, Y: 0}})
	e := NewEuclid(100)
	got := e.Visible(nil, 1, world[0].Pos, world)
	for _, id := range got {
		if id == 1 {
			t.Fatal("subject included in own AoI")
		}
	}
}

func TestEuclidBoundaryInclusive(t *testing.T) {
	world := mkWorld([]entity.Vec2{{X: 0, Y: 0}, {X: 5, Y: 0}})
	e := NewEuclid(5)
	got := e.Visible(nil, 1, world[0].Pos, world)
	if len(got) != 1 {
		t.Fatalf("entity exactly at radius excluded: %v", got)
	}
}

func TestEuclidNoDuplicates(t *testing.T) {
	// Duplicate IDs in the world list (e.g. transiently during migration)
	// must not produce duplicate subscriptions.
	world := mkWorld([]entity.Vec2{{X: 0, Y: 0}, {X: 1, Y: 0}})
	world = append(world, world[1]) // same entity listed twice
	e := NewEuclid(10)
	got := e.Visible(nil, 1, world[0].Pos, world)
	if len(got) != 1 {
		t.Fatalf("duplicate subscription: %v", got)
	}
}

func TestGridMatchesEuclidProperty(t *testing.T) {
	prop := func(seed int64, n8 uint8, radiusRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%100) + 2
		radius := float64(radiusRaw%50) + 1
		positions := make([]entity.Vec2, n)
		for i := range positions {
			positions[i] = entity.Vec2{X: rng.Float64() * 200, Y: rng.Float64() * 200}
		}
		world := mkWorld(positions)
		euclid := NewEuclid(radius)
		grid := NewGrid(radius)
		grid.Build(world)
		for _, subj := range world {
			a := euclid.Visible(nil, subj.ID, subj.Pos, world)
			b := grid.Visible(nil, subj.ID, subj.Pos, world)
			sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGridLazyBuild(t *testing.T) {
	world := mkWorld([]entity.Vec2{{X: 0, Y: 0}, {X: 1, Y: 1}})
	g := NewGrid(5)
	// Visible without explicit Build answers via the read-only linear
	// fallback — correct results, no state mutation (see the Manager
	// concurrency contract).
	got := g.Visible(nil, 1, world[0].Pos, world)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("unbuilt Visible = %v", got)
	}
	if g.cells != nil {
		t.Fatal("Visible mutated the grid index; breaks the concurrent-Visible contract")
	}
}

// TestGridUnbuiltMatchesEuclid pins the read-only fallback to the same
// visible sets as Euclid for randomized worlds and radii.
func TestGridUnbuiltMatchesEuclid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(80) + 2
		radius := rng.Float64()*40 + 1
		positions := make([]entity.Vec2, n)
		for i := range positions {
			positions[i] = entity.Vec2{X: rng.Float64() * 150, Y: rng.Float64() * 150}
		}
		world := mkWorld(positions)
		euclid := NewEuclid(radius)
		grid := NewGrid(radius) // no Build: exercises the fallback scan
		for _, subj := range world {
			a := euclid.Visible(nil, subj.ID, subj.Pos, world)
			b := grid.Visible(nil, subj.ID, subj.Pos, world)
			sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
			if len(a) != len(b) {
				t.Fatalf("trial %d subj %d: euclid %v grid %v", trial, subj.ID, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d subj %d: euclid %v grid %v", trial, subj.ID, a, b)
				}
			}
		}
	}
}

// TestVisibleConcurrent exercises the Manager concurrency contract: after
// one Build, Visible must be callable from many goroutines at once. Run
// under -race this proves both implementations are read-only per query.
func TestVisibleConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	positions := make([]entity.Vec2, 200)
	for i := range positions {
		positions[i] = entity.Vec2{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	world := mkWorld(positions)
	for _, tc := range []struct {
		name string
		mgr  Manager
	}{
		{"euclid", NewEuclid(25)},
		{"grid", NewGrid(25)},
		{"grid-unbuilt", &Grid{Radius: 25}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if tc.name != "grid-unbuilt" {
				tc.mgr.Build(world)
			}
			// Reference answers computed sequentially.
			want := make([][]entity.ID, len(world))
			for i, subj := range world {
				want[i] = tc.mgr.Visible(nil, subj.ID, subj.Pos, world)
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var dst []entity.ID
					for i, subj := range world {
						dst = tc.mgr.Visible(dst[:0], subj.ID, subj.Pos, world)
						if len(dst) != len(want[i]) {
							t.Errorf("subj %d: concurrent Visible len %d, want %d", subj.ID, len(dst), len(want[i]))
							return
						}
						for j := range dst {
							if dst[j] != want[i][j] {
								t.Errorf("subj %d: concurrent Visible diverged", subj.ID)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

func TestGridRebuildReflectsMovement(t *testing.T) {
	world := mkWorld([]entity.Vec2{{X: 0, Y: 0}, {X: 100, Y: 100}})
	g := NewGrid(5)
	g.Build(world)
	if got := g.Visible(nil, 1, world[0].Pos, world); len(got) != 0 {
		t.Fatalf("distant entity visible: %v", got)
	}
	world[1].Pos = entity.Vec2{X: 2, Y: 0}
	g.Build(world)
	if got := g.Visible(nil, 1, world[0].Pos, world); len(got) != 1 {
		t.Fatalf("moved entity invisible: %v", got)
	}
}

func TestGridNegativeCoordinates(t *testing.T) {
	world := mkWorld([]entity.Vec2{{X: -10, Y: -10}, {X: -12, Y: -10}, {X: 10, Y: 10}})
	g := NewGrid(5)
	g.Build(world)
	got := g.Visible(nil, 1, world[0].Pos, world)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("negative-coordinate visibility = %v", got)
	}
}

func TestVisibleAppendsToDst(t *testing.T) {
	world := mkWorld([]entity.Vec2{{X: 0, Y: 0}, {X: 1, Y: 0}})
	e := NewEuclid(10)
	dst := make([]entity.ID, 1, 8)
	dst[0] = 99
	got := e.Visible(dst, 1, world[0].Pos, world)
	if len(got) != 2 || got[0] != 99 || got[1] != 2 {
		t.Fatalf("append semantics broken: %v", got)
	}
}
