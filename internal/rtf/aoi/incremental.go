package aoi

import (
	"math"

	"roia/internal/rtf/entity"
)

// Incremental is a uniform spatial hash that is maintained, not rebuilt:
// Build re-buckets only the entities that moved across a cell boundary
// since the previous tick and evicts the ones that despawned, instead of
// reallocating the whole index. In the steady state (no new cells visited,
// slice capacities warmed up) Build allocates nothing, which is what lets
// the publish stage hit 0 allocs/op.
//
// Visible output is deterministic (cell scan order and within-cell
// insertion order are fully determined by the Build history) but NOT
// ID-sorted, unlike Euclid's; callers that need sorted visible sets — the
// delta publish path's merge diff does — must sort the result.
type Incremental struct {
	// Radius is the visibility radius.
	Radius float64
	// CellSize is the edge length of one grid cell; zero defaults to
	// Radius (the usual choice: candidates lie in the 3×3 neighbourhood).
	CellSize float64

	// cells maps a cell to its residents. Emptied cells keep their slice
	// (capacity is the point of the exercise); the map grows with the area
	// the world has ever visited, bounded by world size / cell size.
	cells map[cellKey][]resident
	// slots tracks where each live entity currently resides, so a move is
	// a swap-remove plus an append rather than a rebuild.
	slots map[entity.ID]slot
	// prevIDs/curIDs are reusable ascending-ID scratch sets for the
	// despawn merge walk.
	prevIDs []entity.ID
	curIDs  []entity.ID
}

type resident struct {
	id  entity.ID
	pos entity.Vec2
}

type slot struct {
	key cellKey
	idx int32
}

// NewIncremental returns an Incremental manager with the given visibility
// radius.
func NewIncremental(radius float64) *Incremental {
	return &Incremental{
		Radius: radius,
		cells:  make(map[cellKey][]resident),
		slots:  make(map[entity.ID]slot),
	}
}

func (g *Incremental) cellSize() float64 {
	if g.CellSize > 0 {
		return g.CellSize
	}
	if g.Radius > 0 {
		return g.Radius
	}
	return 1
}

func (g *Incremental) key(pos entity.Vec2) cellKey {
	cs := g.cellSize()
	return cellKey{int32(math.Floor(pos.X / cs)), int32(math.Floor(pos.Y / cs))}
}

// Build implements Manager: it folds the tick's world (ascending ID order)
// into the live index. New entities are bucketed, entities that crossed a
// cell boundary are re-bucketed, entities that moved within their cell get
// their stored position refreshed, and entities absent from world are
// evicted via a merge walk of the previous and current ID sets.
func (g *Incremental) Build(world []*entity.Entity) {
	if g.cells == nil { // zero-value construction
		g.cells = make(map[cellKey][]resident)
		g.slots = make(map[entity.ID]slot)
	}
	g.curIDs = g.curIDs[:0]
	for _, e := range world {
		g.curIDs = append(g.curIDs, e.ID)
		k := g.key(e.Pos)
		sl, ok := g.slots[e.ID]
		switch {
		case !ok:
			g.add(e.ID, e.Pos, k)
		case sl.key == k:
			g.cells[k][sl.idx].pos = e.Pos
		default:
			g.remove(sl)
			g.add(e.ID, e.Pos, k)
		}
	}
	// Evict despawned entities: IDs in the previous set but not the
	// current one. Both sets are ascending, so one merge walk finds them.
	i, j := 0, 0
	for i < len(g.prevIDs) {
		for j < len(g.curIDs) && g.curIDs[j] < g.prevIDs[i] {
			j++
		}
		if j >= len(g.curIDs) || g.curIDs[j] != g.prevIDs[i] {
			id := g.prevIDs[i]
			if sl, ok := g.slots[id]; ok {
				g.remove(sl)
				delete(g.slots, id)
			}
		}
		i++
	}
	g.prevIDs, g.curIDs = g.curIDs, g.prevIDs
}

func (g *Incremental) add(id entity.ID, pos entity.Vec2, k cellKey) {
	c := g.cells[k]
	g.slots[id] = slot{key: k, idx: int32(len(c))}
	g.cells[k] = append(c, resident{id: id, pos: pos})
}

// remove swap-deletes a resident from its cell, fixing the displaced
// resident's slot index. The caller owns the slots entry of the removed ID.
func (g *Incremental) remove(sl slot) {
	c := g.cells[sl.key]
	last := len(c) - 1
	if int(sl.idx) != last {
		moved := c[last]
		c[sl.idx] = moved
		g.slots[moved.id] = slot{key: sl.key, idx: sl.idx}
	}
	g.cells[sl.key] = c[:last]
}

// Visible implements Manager over the state folded in by Build. It never
// mutates the index (the Manager concurrency contract); if Build has not
// run yet it falls back to a read-only linear scan of world.
func (g *Incremental) Visible(dst []entity.ID, subject entity.ID, pos entity.Vec2, world []*entity.Entity) []entity.ID {
	r2 := g.Radius * g.Radius
	if g.slots == nil || len(g.slots) == 0 {
		for _, cand := range world {
			if cand.ID != subject && pos.Dist2(cand.Pos) <= r2 {
				dst = append(dst, cand.ID)
			}
		}
		return dst
	}
	cs := g.cellSize()
	// A disc of radius R around a point inside cell c only reaches cells
	// within ceil(R/cs) index distance: floor((x±R)/cs) is bounded by
	// floor(x/cs) ± ceil(R/cs). With the usual CellSize == Radius this is
	// the classic 3×3 neighbourhood.
	reach := int32(math.Ceil(g.Radius / cs))
	center := g.key(pos)
	for dy := -reach; dy <= reach; dy++ {
		for dx := -reach; dx <= reach; dx++ {
			for _, cand := range g.cells[cellKey{center.cx + dx, center.cy + dy}] {
				if cand.id == subject {
					continue
				}
				if pos.Dist2(cand.pos) <= r2 {
					dst = append(dst, cand.id)
				}
			}
		}
	}
	return dst
}

// Diff merge-walks two ascending entity-ID sets, appending the IDs present
// only in cur to enters and the IDs present only in prev to gone, and
// returns both extended slices. It is the visible-set differ of the delta
// publish path: prev is the client's last published visible set, cur the
// tick's new one, and the outputs become the StateDelta Enters/Gone columns
// (and the AoI-churn metric counts). Passing recycled [:0] slices keeps it
// allocation-free.
func Diff(prev, cur, enters, gone []entity.ID) (e, g []entity.ID) {
	i, j := 0, 0
	for i < len(prev) && j < len(cur) {
		switch {
		case prev[i] == cur[j]:
			i++
			j++
		case prev[i] < cur[j]:
			gone = append(gone, prev[i])
			i++
		default:
			enters = append(enters, cur[j])
			j++
		}
	}
	for ; i < len(prev); i++ {
		gone = append(gone, prev[i])
	}
	for ; j < len(cur); j++ {
		enters = append(enters, cur[j])
	}
	return enters, gone
}
