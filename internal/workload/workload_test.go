package workload

import (
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	c := Constant{N: 42, Len: 100}
	if c.UsersAt(0) != 42 || c.UsersAt(1e9) != 42 || c.Duration() != 100 {
		t.Fatal("constant trace wrong")
	}
}

func TestRampEndpointsAndMidpoint(t *testing.T) {
	r := Ramp{From: 0, To: 100, Len: 50}
	if r.UsersAt(-1) != 0 || r.UsersAt(0) != 0 {
		t.Fatal("ramp start wrong")
	}
	if r.UsersAt(25) != 50 {
		t.Fatalf("ramp midpoint = %d", r.UsersAt(25))
	}
	if r.UsersAt(50) != 100 || r.UsersAt(999) != 100 {
		t.Fatal("ramp end wrong")
	}
	down := Ramp{From: 100, To: 0, Len: 10}
	if down.UsersAt(5) != 50 {
		t.Fatalf("down ramp midpoint = %d", down.UsersAt(5))
	}
	if (Ramp{From: 7, To: 9, Len: 0}).UsersAt(3) != 7 {
		t.Fatal("zero-length ramp should hold From")
	}
}

func TestRampMonotoneProperty(t *testing.T) {
	r := Ramp{From: 10, To: 300, Len: 100}
	prop := func(a, b uint8) bool {
		t1, t2 := float64(a), float64(b)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return r.UsersAt(t1) <= r.UsersAt(t2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSineBoundsAndClamping(t *testing.T) {
	s := Sine{Base: 100, Amplitude: 50, Period: 60, Len: 600}
	for ts := 0.0; ts < 600; ts += 0.5 {
		n := s.UsersAt(ts)
		if n < 50 || n > 150 {
			t.Fatalf("sine out of range at %g: %d", ts, n)
		}
	}
	// Negative counts clamp to 0.
	deep := Sine{Base: 10, Amplitude: 100, Period: 60}
	if got := deep.UsersAt(45); got != 0 {
		t.Fatalf("negative sine = %d, want 0", got)
	}
	// Degenerate period holds base.
	if (Sine{Base: 5}).UsersAt(10) != 5 {
		t.Fatal("zero-period sine wrong")
	}
}

func TestSpike(t *testing.T) {
	s := Spike{Base: 20, Peak: 200, Start: 100, Width: 50, Len: 300}
	if s.UsersAt(99) != 20 || s.UsersAt(100) != 200 || s.UsersAt(149) != 200 || s.UsersAt(150) != 20 {
		t.Fatal("spike edges wrong")
	}
}

func TestPiecewisePhases(t *testing.T) {
	p := Piecewise{Phases: []Phase{
		{Until: 10, Trace: Constant{N: 1}},
		{Until: 20, Trace: Ramp{From: 1, To: 11, Len: 10}},
		{Until: 30, Trace: Constant{N: 11}},
	}}
	if p.Duration() != 30 {
		t.Fatalf("duration = %g", p.Duration())
	}
	if p.UsersAt(5) != 1 {
		t.Fatalf("phase 1 = %d", p.UsersAt(5))
	}
	// Phase-local time: at t=15 the ramp is at its own t=5.
	if p.UsersAt(15) != 6 {
		t.Fatalf("phase 2 = %d, want 6", p.UsersAt(15))
	}
	if p.UsersAt(25) != 11 || p.UsersAt(1000) != 11 {
		t.Fatalf("phase 3 = %d", p.UsersAt(25))
	}
	if (Piecewise{}).UsersAt(5) != 0 || (Piecewise{}).Duration() != 0 {
		t.Fatal("empty piecewise wrong")
	}
}

func TestReplay(t *testing.T) {
	r := Replay{Counts: []int{5, 10, 15}}
	if r.UsersAt(-1) != 5 || r.UsersAt(0.9) != 5 || r.UsersAt(1) != 10 || r.UsersAt(99) != 15 {
		t.Fatal("replay indexing wrong")
	}
	if r.Duration() != 3 {
		t.Fatalf("duration = %g", r.Duration())
	}
	if (Replay{}).UsersAt(0) != 0 {
		t.Fatal("empty replay wrong")
	}
}

func TestPaperSessionShape(t *testing.T) {
	tr := PaperSession()
	if tr.Duration() != 1200 {
		t.Fatalf("duration = %g", tr.Duration())
	}
	if got := Peak(tr); got != 300 {
		t.Fatalf("peak = %d, want 300 (paper: up to 300 users)", got)
	}
	if tr.UsersAt(0) != 0 {
		t.Fatalf("session starts at %d users", tr.UsersAt(0))
	}
	if got := tr.UsersAt(550); got != 300 {
		t.Fatalf("plateau = %d", got)
	}
	if got := tr.UsersAt(1200); got != 0 {
		t.Fatalf("session ends at %d users", got)
	}
	// Growth then decline: monotone up to the plateau, down after it.
	for ts := 1.0; ts <= 480; ts++ {
		if tr.UsersAt(ts) < tr.UsersAt(ts-1) {
			t.Fatalf("growth phase not monotone at %g", ts)
		}
	}
	for ts := 661.0; ts <= 1200; ts++ {
		if tr.UsersAt(ts) > tr.UsersAt(ts-1) {
			t.Fatalf("decline phase not monotone at %g", ts)
		}
	}
}

func TestCheckpoints(t *testing.T) {
	tr := Ramp{From: 0, To: 100, Len: 100}
	got := Checkpoints(tr, []float64{50, 0, 100})
	if got[0] != 0 || got[1] != 50 || got[2] != 100 {
		t.Fatalf("checkpoints = %v", got)
	}
}
