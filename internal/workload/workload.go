// Package workload generates the user-count traces that drive sessions:
// the "continuously changing number of users" of the paper's dynamic
// load-balancing experiment (Fig. 8), plus standard shapes (ramps, diurnal
// sines, flash-crowd spikes, step functions and replayed traces) for wider
// evaluation.
//
// A Trace maps session time in seconds to a target concurrent user count;
// the simulator connects/disconnects users to track it.
package workload

import (
	"math"
	"sort"
)

// Trace is a target user count over session time.
type Trace interface {
	// UsersAt returns the target concurrent user count at time t seconds.
	UsersAt(t float64) int
	// Duration returns the trace length in seconds.
	Duration() float64
}

// Constant holds a fixed user count.
type Constant struct {
	N   int
	Len float64
}

// UsersAt implements Trace.
func (c Constant) UsersAt(float64) int { return c.N }

// Duration implements Trace.
func (c Constant) Duration() float64 { return c.Len }

// Ramp linearly interpolates From → To over its duration, clamping outside.
type Ramp struct {
	From, To int
	Len      float64
}

// UsersAt implements Trace.
func (r Ramp) UsersAt(t float64) int {
	if r.Len <= 0 || t <= 0 {
		return r.From
	}
	if t >= r.Len {
		return r.To
	}
	return r.From + int(math.Round(float64(r.To-r.From)*t/r.Len))
}

// Duration implements Trace.
func (r Ramp) Duration() float64 { return r.Len }

// Sine oscillates around Base with the given Amplitude and Period — the
// classic diurnal player-count pattern.
type Sine struct {
	Base, Amplitude int
	Period          float64
	Len             float64
}

// UsersAt implements Trace.
func (s Sine) UsersAt(t float64) int {
	if s.Period <= 0 {
		return s.Base
	}
	n := float64(s.Base) + float64(s.Amplitude)*math.Sin(2*math.Pi*t/s.Period)
	if n < 0 {
		return 0
	}
	return int(math.Round(n))
}

// Duration implements Trace.
func (s Sine) Duration() float64 { return s.Len }

// Spike is a flash crowd: Base users, jumping to Peak during
// [Start, Start+Width).
type Spike struct {
	Base, Peak   int
	Start, Width float64
	Len          float64
}

// UsersAt implements Trace.
func (s Spike) UsersAt(t float64) int {
	if t >= s.Start && t < s.Start+s.Width {
		return s.Peak
	}
	return s.Base
}

// Duration implements Trace.
func (s Spike) Duration() float64 { return s.Len }

// Phase is one segment of a Piecewise trace.
type Phase struct {
	// Until is the end time of the phase (seconds from session start).
	Until float64
	// Trace shapes the phase; its local time restarts at the phase start.
	Trace Trace
}

// Piecewise concatenates phases. Phases must be ordered by Until.
type Piecewise struct {
	Phases []Phase
}

// UsersAt implements Trace.
func (p Piecewise) UsersAt(t float64) int {
	if len(p.Phases) == 0 {
		return 0
	}
	start := 0.0
	for _, ph := range p.Phases {
		if t < ph.Until {
			return ph.Trace.UsersAt(t - start)
		}
		start = ph.Until
	}
	// Past the end: hold the last phase's final value.
	last := p.Phases[len(p.Phases)-1]
	lastStart := 0.0
	if len(p.Phases) > 1 {
		lastStart = p.Phases[len(p.Phases)-2].Until
	}
	return last.Trace.UsersAt(last.Until - lastStart)
}

// Duration implements Trace.
func (p Piecewise) Duration() float64 {
	if len(p.Phases) == 0 {
		return 0
	}
	return p.Phases[len(p.Phases)-1].Until
}

// Replay plays back a recorded per-second user-count series.
type Replay struct {
	Counts []int
}

// UsersAt implements Trace.
func (r Replay) UsersAt(t float64) int {
	if len(r.Counts) == 0 {
		return 0
	}
	i := int(t)
	if i < 0 {
		i = 0
	}
	if i >= len(r.Counts) {
		i = len(r.Counts) - 1
	}
	return r.Counts[i]
}

// Duration implements Trace.
func (r Replay) Duration() float64 { return float64(len(r.Counts)) }

// PaperSession reproduces the workload of the paper's Fig. 8: a session
// with a continuously changing number of users growing to 300 and shrinking
// back, exercising replication enactment on the way up and resource removal
// on the way down.
func PaperSession() Trace {
	return Piecewise{Phases: []Phase{
		{Until: 120, Trace: Ramp{From: 0, To: 60, Len: 120}},
		{Until: 480, Trace: Ramp{From: 60, To: 300, Len: 360}},
		{Until: 660, Trace: Constant{N: 300, Len: 180}},
		{Until: 1020, Trace: Ramp{From: 300, To: 80, Len: 360}},
		{Until: 1200, Trace: Ramp{From: 80, To: 0, Len: 180}},
	}}
}

// Peak returns the maximum user count a trace reaches, sampled per second.
func Peak(tr Trace) int {
	peak := 0
	for t := 0.0; t <= tr.Duration(); t++ {
		if n := tr.UsersAt(t); n > peak {
			peak = n
		}
	}
	return peak
}

// Checkpoints samples the trace at the given times, for table output.
func Checkpoints(tr Trace, times []float64) []int {
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	out := make([]int, len(sorted))
	for i, t := range sorted {
		out[i] = tr.UsersAt(t)
	}
	return out
}
