// Package model implements the paper's scalability model for Real-Time
// Online Interactive Applications (ROIA): the tick-duration predictions of
// Eq. (1) and Eq. (4) and the derived thresholds — maximum users per replica
// count (Eq. 2), maximum useful replica count (Eq. 3), and maximum user
// migrations per second (Eq. 5).
//
// The model is purely analytical: it consumes a CostModel (typically a
// calibrated params.Set) and produces integer thresholds that a resource
// manager such as internal/rms enforces at runtime.
package model

import (
	"errors"
	"fmt"
)

// CostModel supplies the per-item CPU times (in milliseconds) of the four
// computational tasks of one real-time-loop iteration, plus the user
// migration overheads. n is the total user count of the zone, m the NPC
// count. *params.Set implements CostModel.
type CostModel interface {
	// UADeserAt is t_ua_dser(n,m): receive + deserialize one user input.
	UADeserAt(n, m int) float64
	// UAAt is t_ua(n,m): validate + apply one user input.
	UAAt(n, m int) float64
	// FADeserAt is t_fa_dser(n,m): receive + deserialize one forwarded input.
	FADeserAt(n, m int) float64
	// FAAt is t_fa(n,m): apply one forwarded input.
	FAAt(n, m int) float64
	// NPCAt is t_npc(n,m): update one NPC.
	NPCAt(n, m int) float64
	// AOIAt is t_aoi(n,m): compute one user's area of interest.
	AOIAt(n, m int) float64
	// SUAt is t_su(n,m): compute + serialize one user's state update.
	SUAt(n, m int) float64
	// MigIniAt is t_mig_ini(n): initiate one user migration.
	MigIniAt(n int) float64
	// MigRcvAt is t_mig_rcv(n): receive one user migration.
	MigRcvAt(n int) float64
}

// Defaults used when the corresponding Model field is zero.
const (
	// DefaultUserCap bounds the Eq. (2) search for the maximum user count.
	DefaultUserCap = 1 << 20
	// DefaultReplicaCap bounds the Eq. (3) search for the maximum replica
	// count.
	DefaultReplicaCap = 4096
	// DefaultTriggerFraction is the fraction of n_max at which replication
	// enactment is triggered (the empirical 80 % rule of Section V-A).
	DefaultTriggerFraction = 0.8
)

// Par extends the model with intra-replica parallelism: the staged tick
// pipeline runs its embarrassingly-parallel portion (input/forward
// deserialization, AoI queries, state-update serialization, NPC updates)
// on w workers, while input application stays sequential. The efficiency
// of the parallel portion follows Gunther's Universal Scalability Law,
//
//	S(w) = w / (1 + σ(w−1) + κ·w·(w−1))
//
// with contention coefficient σ (serialization at the merge points) and
// coherency coefficient κ (crosstalk growing quadratically with workers).
// σ and κ are fitted from calibration sweeps (internal/calibrate); the
// zero value (Workers 0, σ=κ=0) is the sequential pipeline and leaves
// every prediction exactly at the paper's Eq. 1–5.
type Par struct {
	// Workers is the executor worker count w used by the un-suffixed
	// model methods; 0 or 1 means sequential.
	Workers int
	// Sigma is the USL contention coefficient σ ≥ 0.
	Sigma float64
	// Kappa is the USL coherency coefficient κ ≥ 0.
	Kappa float64
}

// Speedup evaluates S(w) for w workers. w ≤ 1 (and any negative
// coefficient, clamped to zero) yields exactly 1, pinning the sequential
// case to the unmodified model.
func (p Par) Speedup(w int) float64 {
	if w <= 1 {
		return 1
	}
	sigma, kappa := p.Sigma, p.Kappa
	if sigma < 0 {
		sigma = 0
	}
	if kappa < 0 {
		kappa = 0
	}
	ww := float64(w)
	return ww / (1 + sigma*(ww-1) + kappa*ww*(ww-1))
}

// Model evaluates the scalability model for one application profile.
type Model struct {
	// Cost supplies the application-specific per-task CPU times.
	Cost CostModel
	// U is the upper tick-duration threshold in ms (e.g. 40 for a
	// first-person shooter needing 25 updates/s).
	U float64
	// C is the minimum-improvement factor in (0, 1]: how much of the
	// single-server capacity n_max(1) each additional replica must
	// contribute (Eq. 3). The paper uses c = 0.15 for RTFDemo.
	C float64
	// UserCap bounds threshold searches (default DefaultUserCap).
	UserCap int
	// ReplicaCap bounds the replica search (default DefaultReplicaCap).
	ReplicaCap int
	// Par configures intra-replica parallelism. The zero value keeps the
	// model sequential; setting Par.Workers > 1 makes every threshold —
	// TickTime, MaxUsers, MaxReplicas, migration budgets, and therefore
	// every RMS decision built on them — w-aware.
	Par Par
}

// New returns a Model over the given cost model with threshold U (ms) and
// minimum-improvement factor c. It returns an error for non-positive U or a
// c outside (0, 1].
func New(cost CostModel, u, c float64) (*Model, error) {
	if cost == nil {
		return nil, errors.New("model: nil cost model")
	}
	if u <= 0 {
		return nil, fmt.Errorf("model: threshold U must be positive, got %g", u)
	}
	if c <= 0 || c > 1 {
		return nil, fmt.Errorf("model: improvement factor c must be in (0,1], got %g", c)
	}
	return &Model{Cost: cost, U: u, C: c}, nil
}

func (mdl *Model) userCap() int {
	if mdl.UserCap > 0 {
		return mdl.UserCap
	}
	return DefaultUserCap
}

func (mdl *Model) replicaCap() int {
	if mdl.ReplicaCap > 0 {
		return mdl.ReplicaCap
	}
	return DefaultReplicaCap
}

// TickTime implements Eq. (1): the predicted tick duration in ms for n users
// and m NPCs distributed equally on l replicas.
//
//	T(l,n,m) = n/l·(t_ua_dser + t_ua + t_aoi + t_su)
//	         + (n − n/l)·(t_fa_dser + t_fa)
//	         + m/l·t_npc
//
// With Par.Workers = w > 1 this becomes the extended T(l,n,m,w): the
// parallelizable portion of the tick is divided by the USL speedup S(w)
// (see Par), the sequential portion is not.
func (mdl *Model) TickTime(l, n, m int) float64 {
	return mdl.TickTimeW(l, n, m, mdl.Par.Workers)
}

// TickTimeW is T(l,n,m,w): Eq. (1) evaluated with w pipeline workers,
// overriding Par.Workers. w ≤ 1 reproduces the sequential Eq. (1) exactly.
func (mdl *Model) TickTimeW(l, n, m, w int) float64 {
	if l < 1 || n < 0 || m < 0 {
		return 0
	}
	active := float64(n) / float64(l)
	return mdl.tickW(l, n, m, active, w)
}

// TickTimeUneven implements Eq. (4): the predicted tick duration in ms for a
// server holding a of the zone's n users as active entities (the remaining
// n−a are shadow entities), with the zone's m NPCs spread over l replicas.
// Like TickTime it honours Par.Workers.
func (mdl *Model) TickTimeUneven(l, n, m, a int) float64 {
	return mdl.TickTimeUnevenW(l, n, m, a, mdl.Par.Workers)
}

// TickTimeUnevenW is Eq. (4) evaluated with w pipeline workers.
func (mdl *Model) TickTimeUnevenW(l, n, m, a, w int) float64 {
	if l < 1 || n < 0 || m < 0 || a < 0 || a > n {
		return 0
	}
	return mdl.tickW(l, n, m, float64(a), w)
}

// tick is the sequential Eq. (1)/(4) kernel, kept verbatim so that the
// w ≤ 1 case stays bit-identical to the paper's model.
func (mdl *Model) tick(l, n, m int, active float64) float64 {
	cm := mdl.Cost
	perActive := cm.UADeserAt(n, m) + cm.UAAt(n, m) + cm.AOIAt(n, m) + cm.SUAt(n, m)
	perShadow := cm.FADeserAt(n, m) + cm.FAAt(n, m)
	shadow := float64(n) - active
	return active*perActive + shadow*perShadow + float64(m)/float64(l)*cm.NPCAt(n, m)
}

// tickW evaluates T(l,n,m,w). The split mirrors the executor's stages:
// deserialization (t_ua_dser, t_fa_dser), AoI (t_aoi), state-update
// serialization (t_su) and NPC updates (t_npc) fan out over workers and
// are divided by S(w); input application (t_ua, t_fa) mutates shared game
// state and stays sequential.
func (mdl *Model) tickW(l, n, m int, active float64, w int) float64 {
	sp := mdl.Par.Speedup(w)
	if sp == 1 {
		return mdl.tick(l, n, m, active)
	}
	cm := mdl.Cost
	shadow := float64(n) - active
	seq := active*cm.UAAt(n, m) + shadow*cm.FAAt(n, m)
	par := active*(cm.UADeserAt(n, m)+cm.AOIAt(n, m)+cm.SUAt(n, m)) +
		shadow*cm.FADeserAt(n, m) +
		float64(m)/float64(l)*cm.NPCAt(n, m)
	return seq + par/sp
}

// MaxUsers implements Eq. (2): the maximum user count n such that
// T(l,n,m) < U. ok is false if no user count within UserCap violates the
// threshold (an effectively unbounded configuration), in which case the cap
// is returned.
//
// MaxUsers assumes T(l,·,m) is non-decreasing in n, which holds for any cost
// model with non-negative curves (every term of Eq. 1 grows with n).
func (mdl *Model) MaxUsers(l, m int) (nmax int, ok bool) {
	if l < 1 {
		return 0, false
	}
	cap := mdl.userCap()
	if mdl.TickTime(l, cap, m) < mdl.U {
		return cap, false
	}
	// Binary search for the first n with T(l,n,m) >= U; n_max is one less.
	lo, hi := 0, cap // invariant: T(lo) < U, T(hi) >= U
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if mdl.TickTime(l, mid, m) < mdl.U {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// MaxReplicas implements Eq. (3): the maximum number of replicas for which
// adding replica l still accommodates n_max(l−1) + c·n_max(1) users within
// the tick-duration threshold. ok is false if the search hit ReplicaCap
// without the condition failing.
func (mdl *Model) MaxReplicas(m int) (lmax int, ok bool) {
	base, bounded := mdl.MaxUsers(1, m)
	if !bounded {
		// A single server already handles UserCap users: replication is
		// never required within the supported range.
		return 1, false
	}
	minGain := mdl.C * float64(base)
	prev := base
	for l := 2; l <= mdl.replicaCap(); l++ {
		target := prev + int(minGain)
		if mdl.TickTime(l, target, m) >= mdl.U {
			return l - 1, true
		}
		// n'_max for the next iteration is n_max(l−1); recompute capacity
		// at the now-accepted replica count.
		nmax, _ := mdl.MaxUsers(l, m)
		if nmax < prev {
			// Capacity shrank outright: replication overhead dominates.
			return l - 1, true
		}
		prev = nmax
	}
	return mdl.replicaCap(), false
}

// MaxUsersW is n_max(l,m,U,w): Eq. (2) re-derived against T(l,n,m,w) —
// the user capacity of an l-replica zone whose servers run the tick
// pipeline on w workers. w ≤ 1 matches MaxUsers with a sequential model
// exactly.
func (mdl *Model) MaxUsersW(l, m, w int) (nmax int, ok bool) {
	m2 := *mdl
	m2.Par.Workers = w
	return m2.MaxUsers(l, m)
}

// MaxReplicasW is l_max(m,U,c,w): Eq. (3) re-derived against T(l,n,m,w).
// Both the per-replica capacities and the minimum-gain test use the
// w-worker tick time, so a faster intra-replica pipeline raises n_max(1)
// and shifts where adding replicas stops paying.
func (mdl *Model) MaxReplicasW(m, w int) (lmax int, ok bool) {
	m2 := *mdl
	m2.Par.Workers = w
	return m2.MaxReplicas(m)
}

// MaxUsersSchedule returns n_max(l) for l = 1..lmax, the series plotted in
// Fig. 5 ("maximum # users" vs replica count).
func (mdl *Model) MaxUsersSchedule(m, lmax int) []int {
	sched := make([]int, lmax)
	for l := 1; l <= lmax; l++ {
		sched[l-1], _ = mdl.MaxUsers(l, m)
	}
	return sched
}

// ReplicationTrigger returns the user count at which replication enactment
// should be initiated for a given capacity: fraction·nmax rounded down
// (Section V-A triggers at 80 % of n_max to absorb migration overhead and
// users that connect during load balancing). Fractions outside (0,1] fall
// back to DefaultTriggerFraction.
func ReplicationTrigger(nmax int, fraction float64) int {
	if fraction <= 0 || fraction > 1 {
		fraction = DefaultTriggerFraction
	}
	return int(fraction * float64(nmax))
}

// MaxMigrationsIni implements the first half of Eq. (5): the maximum number
// of user migrations per second that a server with a active entities out of
// n zone users (m NPCs, l replicas) can initiate without its tick duration
// reaching U.
func (mdl *Model) MaxMigrationsIni(l, n, m, a int) int {
	return mdl.maxMigrations(mdl.TickTimeUneven(l, n, m, a), mdl.Cost.MigIniAt(n))
}

// MaxMigrationsRcv implements the second half of Eq. (5): the maximum number
// of user migrations per second the server can receive.
func (mdl *Model) MaxMigrationsRcv(l, n, m, a int) int {
	return mdl.maxMigrations(mdl.TickTimeUneven(l, n, m, a), mdl.Cost.MigRcvAt(n))
}

// maxMigrations solves max{x ∈ ℕ | base + x·perMig < U} in closed form.
func (mdl *Model) maxMigrations(base, perMig float64) int {
	headroom := mdl.U - base
	if headroom <= 0 {
		return 0
	}
	if perMig <= 0 {
		// Migration is free under this cost model; cap at the user-count
		// search bound so callers always receive a finite threshold.
		return mdl.userCap()
	}
	x := int(headroom / perMig)
	// Strict inequality: if x·perMig lands exactly on the headroom, back off.
	if base+float64(x)*perMig >= mdl.U {
		x--
	}
	if x < 0 {
		return 0
	}
	if cap := mdl.userCap(); x > cap {
		return cap
	}
	return x
}

// MigrationBudget reports min{x_max_ini(source), x_max_rcv(target)}: the
// migration rate RTF-RMS applies between one source/target server pair so
// that neither side violates the threshold (Section V-A's worked example).
func (mdl *Model) MigrationBudget(l, n, m, srcActive, dstActive int) int {
	ini := mdl.MaxMigrationsIni(l, n, m, srcActive)
	rcv := mdl.MaxMigrationsRcv(l, n, m, dstActive)
	if rcv < ini {
		return rcv
	}
	return ini
}
