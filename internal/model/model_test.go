package model_test

import (
	"math"
	"testing"
	"testing/quick"

	"roia/internal/model"
	"roia/internal/params"
)

// constCost is a cost model with constant per-item times, making every
// equation hand-checkable.
type constCost struct {
	uaDeser, ua, faDeser, fa, npc, aoi, su float64
	migIni, migRcv                         float64
}

func (c constCost) UADeserAt(n, m int) float64 { return c.uaDeser }
func (c constCost) UAAt(n, m int) float64      { return c.ua }
func (c constCost) FADeserAt(n, m int) float64 { return c.faDeser }
func (c constCost) FAAt(n, m int) float64      { return c.fa }
func (c constCost) NPCAt(n, m int) float64     { return c.npc }
func (c constCost) AOIAt(n, m int) float64     { return c.aoi }
func (c constCost) SUAt(n, m int) float64      { return c.su }
func (c constCost) MigIniAt(n int) float64     { return c.migIni }
func (c constCost) MigRcvAt(n int) float64     { return c.migRcv }

func simpleModel(t *testing.T, u float64) *model.Model {
	t.Helper()
	// Active per-user cost 0.1 ms, shadow 0.01 ms, NPC 0.05 ms.
	cc := constCost{uaDeser: 0.02, ua: 0.03, aoi: 0.03, su: 0.02, faDeser: 0.004, fa: 0.006, npc: 0.05, migIni: 1.0, migRcv: 0.5}
	mdl, err := model.New(cc, u, 0.15)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return mdl
}

func TestNewValidation(t *testing.T) {
	cc := constCost{ua: 1}
	if _, err := model.New(nil, 40, 0.15); err == nil {
		t.Fatal("nil cost model accepted")
	}
	if _, err := model.New(cc, 0, 0.15); err == nil {
		t.Fatal("zero U accepted")
	}
	if _, err := model.New(cc, -1, 0.15); err == nil {
		t.Fatal("negative U accepted")
	}
	if _, err := model.New(cc, 40, 0); err == nil {
		t.Fatal("c = 0 accepted")
	}
	if _, err := model.New(cc, 40, 1.5); err == nil {
		t.Fatal("c > 1 accepted")
	}
	if _, err := model.New(cc, 40, 1.0); err != nil {
		t.Fatalf("c = 1 rejected: %v", err)
	}
}

func TestTickTimeEquationOne(t *testing.T) {
	mdl := simpleModel(t, 40)
	// Eq. (1) by hand for l=2, n=100, m=10:
	// active = 100/2 = 50, shadow = 50, npc share = 5.
	// T = 50·0.1 + 50·0.01 + 5·0.05 = 5 + 0.5 + 0.25 = 5.75.
	if got := mdl.TickTime(2, 100, 10); math.Abs(got-5.75) > 1e-12 {
		t.Fatalf("T(2,100,10) = %g, want 5.75", got)
	}
	// Single replica: no shadow entities.
	// T = 100·0.1 + 0 + 10·0.05 = 10.5.
	if got := mdl.TickTime(1, 100, 10); math.Abs(got-10.5) > 1e-12 {
		t.Fatalf("T(1,100,10) = %g, want 10.5", got)
	}
}

func TestTickTimeInvalidArgs(t *testing.T) {
	mdl := simpleModel(t, 40)
	if got := mdl.TickTime(0, 100, 0); got != 0 {
		t.Fatalf("T with l=0 = %g, want 0", got)
	}
	if got := mdl.TickTime(1, -1, 0); got != 0 {
		t.Fatalf("T with n<0 = %g, want 0", got)
	}
	if got := mdl.TickTimeUneven(1, 10, 0, 11); got != 0 {
		t.Fatalf("T with a>n = %g, want 0", got)
	}
	if got := mdl.TickTimeUneven(1, 10, 0, -1); got != 0 {
		t.Fatalf("T with a<0 = %g, want 0", got)
	}
}

func TestTickTimeUnevenEquationFour(t *testing.T) {
	mdl := simpleModel(t, 40)
	// Eq. (4) for l=2, n=100, m=10, a=70:
	// T = 70·0.1 + 30·0.01 + 5·0.05 = 7 + 0.3 + 0.25 = 7.55.
	if got := mdl.TickTimeUneven(2, 100, 10, 70); math.Abs(got-7.55) > 1e-12 {
		t.Fatalf("T(2,100,10,70) = %g, want 7.55", got)
	}
	// Even distribution must agree with Eq. (1).
	if e1, e4 := mdl.TickTime(2, 100, 10), mdl.TickTimeUneven(2, 100, 10, 50); math.Abs(e1-e4) > 1e-12 {
		t.Fatalf("Eq.1 %g != Eq.4 at a=n/l %g", e1, e4)
	}
}

func TestMaxUsersAgainstBruteForce(t *testing.T) {
	mdl := simpleModel(t, 40)
	for _, l := range []int{1, 2, 4, 8} {
		got, ok := mdl.MaxUsers(l, 10)
		if !ok {
			t.Fatalf("MaxUsers(l=%d) unbounded", l)
		}
		brute := 0
		for n := 0; n < 100000; n++ {
			if mdl.TickTime(l, n, 10) < 40 {
				brute = n
			} else {
				break
			}
		}
		if got != brute {
			t.Fatalf("MaxUsers(l=%d) = %d, brute force %d", l, got, brute)
		}
	}
}

func TestMaxUsersClosedFormConstCost(t *testing.T) {
	mdl := simpleModel(t, 40)
	// l=1, m=0: T = n·0.1 < 40 → n_max = 399 (strict inequality).
	got, ok := mdl.MaxUsers(1, 0)
	if !ok || got != 399 {
		t.Fatalf("MaxUsers(1,0) = %d ok=%v, want 399 true", got, ok)
	}
}

func TestMaxUsersUnbounded(t *testing.T) {
	mdl, err := model.New(constCost{}, 40, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	mdl.UserCap = 10000
	got, ok := mdl.MaxUsers(1, 0)
	if ok || got != 10000 {
		t.Fatalf("zero-cost MaxUsers = %d ok=%v, want cap 10000 false", got, ok)
	}
	if _, ok := mdl.MaxReplicas(0); ok {
		t.Fatal("zero-cost MaxReplicas reported ok")
	}
}

func TestMaxUsersInvalidReplicas(t *testing.T) {
	mdl := simpleModel(t, 40)
	if got, ok := mdl.MaxUsers(0, 0); ok || got != 0 {
		t.Fatalf("MaxUsers(l=0) = %d ok=%v, want 0 false", got, ok)
	}
}

func TestMaxReplicasConstCost(t *testing.T) {
	mdl := simpleModel(t, 40)
	// With A=0.1, F=0.01 constant: n_max(l) = ceil(U/(A/l+(1−1/l)F))−1.
	// Brute-force Eq. (3) for comparison.
	lmax, ok := mdl.MaxReplicas(0)
	if !ok {
		t.Fatal("MaxReplicas unbounded")
	}
	base, _ := mdl.MaxUsers(1, 0)
	brute := 1
	prev := base
	for l := 2; l <= 4096; l++ {
		target := prev + int(0.15*float64(base))
		if mdl.TickTime(l, target, 0) >= 40 {
			break
		}
		brute = l
		prev, _ = mdl.MaxUsers(l, 0)
	}
	if lmax != brute {
		t.Fatalf("MaxReplicas = %d, brute force %d", lmax, brute)
	}
	if lmax < 2 {
		t.Fatalf("MaxReplicas = %d, expected replication to help with cheap forwarding", lmax)
	}
}

func TestMaxUsersScheduleMonotone(t *testing.T) {
	mdl := simpleModel(t, 40)
	sched := mdl.MaxUsersSchedule(0, 10)
	if len(sched) != 10 {
		t.Fatalf("schedule length %d, want 10", len(sched))
	}
	for i := 1; i < len(sched); i++ {
		if sched[i] < sched[i-1] {
			t.Fatalf("schedule not monotone at l=%d: %v", i+1, sched)
		}
	}
}

func TestMaxMigrationsClosedFormVsBruteForce(t *testing.T) {
	mdl := simpleModel(t, 40)
	for _, tc := range []struct{ l, n, m, a int }{
		{1, 100, 0, 100}, {2, 200, 10, 150}, {2, 300, 0, 100}, {1, 399, 0, 399},
	} {
		base := mdl.TickTimeUneven(tc.l, tc.n, tc.m, tc.a)
		for _, mig := range []struct {
			per float64
			got int
		}{
			{1.0, mdl.MaxMigrationsIni(tc.l, tc.n, tc.m, tc.a)},
			{0.5, mdl.MaxMigrationsRcv(tc.l, tc.n, tc.m, tc.a)},
		} {
			brute := 0
			for x := 0; x < 1000000; x++ {
				if base+float64(x)*mig.per < 40 {
					brute = x
				} else {
					break
				}
			}
			if mig.got != brute {
				t.Fatalf("migrations(l=%d n=%d a=%d per=%g) = %d, brute %d",
					tc.l, tc.n, tc.a, mig.per, mig.got, brute)
			}
		}
	}
}

func TestMaxMigrationsOverloadedServer(t *testing.T) {
	mdl := simpleModel(t, 40)
	// A server already at or above the threshold can afford zero migrations.
	if got := mdl.MaxMigrationsIni(1, 500, 0, 500); got != 0 {
		t.Fatalf("overloaded server x_ini = %d, want 0", got)
	}
}

func TestMaxMigrationsStrictInequalityEdge(t *testing.T) {
	// base = 30, per = 5, U = 40: 30 + 2·5 = 40 which is NOT < 40 → x = 1.
	cc := constCost{ua: 0.3, migIni: 5}
	mdl, err := model.New(cc, 40, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	// n=100, a=100: base = 100·0.3 = 30 exactly.
	if got := mdl.MaxMigrationsIni(1, 100, 0, 100); got != 1 {
		t.Fatalf("x at exact boundary = %d, want 1", got)
	}
}

func TestMaxMigrationsFreeMigrationCapped(t *testing.T) {
	cc := constCost{ua: 0.1} // zero migration cost
	mdl, err := model.New(cc, 40, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	mdl.UserCap = 5000
	if got := mdl.MaxMigrationsIni(1, 10, 0, 10); got != 5000 {
		t.Fatalf("free migration x = %d, want cap 5000", got)
	}
}

func TestMigrationBudgetIsMin(t *testing.T) {
	mdl := simpleModel(t, 40)
	ini := mdl.MaxMigrationsIni(2, 200, 0, 150)
	rcv := mdl.MaxMigrationsRcv(2, 200, 0, 50)
	want := ini
	if rcv < want {
		want = rcv
	}
	if got := mdl.MigrationBudget(2, 200, 0, 150, 50); got != want {
		t.Fatalf("MigrationBudget = %d, want min(%d,%d)", got, ini, rcv)
	}
}

func TestReplicationTrigger(t *testing.T) {
	if got := model.ReplicationTrigger(235, 0.8); got != 188 {
		t.Fatalf("trigger(235, 0.8) = %d, want 188", got)
	}
	if got := model.ReplicationTrigger(100, 0); got != 80 {
		t.Fatalf("trigger with invalid fraction = %d, want default 80", got)
	}
	if got := model.ReplicationTrigger(100, 2); got != 80 {
		t.Fatalf("trigger with fraction > 1 = %d, want default 80", got)
	}
}

// --- paper anchors with the calibrated RTFDemo profile (Section V-A) ---

func rtfdemoModel(t *testing.T, c float64) *model.Model {
	t.Helper()
	mdl, err := model.New(params.RTFDemo(), params.UFirstPersonShooter, c)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return mdl
}

func TestPaperAnchorMaxUsersSingleServer(t *testing.T) {
	mdl := rtfdemoModel(t, 0.15)
	nmax, ok := mdl.MaxUsers(1, 0)
	if !ok || nmax != 235 {
		t.Fatalf("n_max(1) = %d ok=%v, want 235 (paper §V-A)", nmax, ok)
	}
	if trig := model.ReplicationTrigger(nmax, 0.8); trig != 188 {
		t.Fatalf("80%% trigger = %d, want 188 (paper §V-A)", trig)
	}
}

func TestPaperAnchorMaxReplicas(t *testing.T) {
	for _, tc := range []struct {
		c    float64
		want int
	}{
		{0.05, 48}, // "l_max = 48 for c = 0.05"
		{0.15, 8},  // "a compromise value of c = 0.15 which results in l_max = 8"
		{1.00, 1},  // "values close or equal to 1 would lead to l_max = 1"
	} {
		mdl := rtfdemoModel(t, tc.c)
		lmax, ok := mdl.MaxReplicas(0)
		if !ok || lmax != tc.want {
			t.Fatalf("l_max(c=%.2f) = %d ok=%v, want %d (paper §V-A)", tc.c, lmax, ok, tc.want)
		}
	}
}

func TestPaperAnchorMigrationExample(t *testing.T) {
	// Section V-A worked example: source at a 35 ms tick with 180 users can
	// initiate max{x | 35 + x·t_mig_ini(180) < 40} = 3 migrations/s; target
	// at 15 ms with 80 users can receive max{x | 15 + x·t_mig_rcv(80) < 40}
	// = 34/s; RTF-RMS migrates min{3, 34} = 3 users/s.
	s := params.RTFDemo()
	count := func(base, per float64) int {
		x := 0
		for base+float64(x+1)*per < 40 {
			x++
		}
		return x
	}
	ini := count(35, s.MigIniAt(180))
	rcv := count(15, s.MigRcvAt(80))
	if ini != 3 || rcv != 34 {
		t.Fatalf("worked example: ini=%d rcv=%d, want 3 and 34", ini, rcv)
	}
}

func TestPaperCapacityGrowsSublinearly(t *testing.T) {
	// Fig. 5's qualitative shape: capacity grows with every replica but
	// with shrinking increments (replication overhead).
	mdl := rtfdemoModel(t, 0.15)
	sched := mdl.MaxUsersSchedule(0, 8)
	prevGain := 1 << 30
	for l := 1; l < len(sched); l++ {
		gain := sched[l] - sched[l-1]
		if gain <= 0 {
			t.Fatalf("no capacity gain at l=%d: %v", l+1, sched)
		}
		if gain > prevGain {
			t.Fatalf("gain increased at l=%d: %v", l+1, sched)
		}
		prevGain = gain
	}
}

// --- properties ---

func TestTickTimeMonotoneInUsers(t *testing.T) {
	mdl := rtfdemoModel(t, 0.15)
	prop := func(l8 uint8, n16 uint16, d8 uint8) bool {
		l := int(l8%16) + 1
		n := int(n16 % 2000)
		d := int(d8)
		return mdl.TickTime(l, n+d, 0) >= mdl.TickTime(l, n, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTickTimeDecreasingInReplicasWhenShadowCheap(t *testing.T) {
	// RTFDemo's shadow cost is far below its active cost, so moving load to
	// more replicas must never increase the (even-distribution) tick time.
	mdl := rtfdemoModel(t, 0.15)
	prop := func(l8 uint8, n16 uint16) bool {
		l := int(l8%16) + 1
		n := int(n16 % 2000)
		return mdl.TickTime(l+1, n, 0) <= mdl.TickTime(l, n, 0)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxUsersConsistentWithTickTime(t *testing.T) {
	mdl := rtfdemoModel(t, 0.15)
	prop := func(l8 uint8, m8 uint8) bool {
		l := int(l8%8) + 1
		m := int(m8)
		nmax, ok := mdl.MaxUsers(l, m)
		if !ok {
			return false
		}
		return mdl.TickTime(l, nmax, m) < 40 && mdl.TickTime(l, nmax+1, m) >= 40
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMoreNPCsReduceCapacity(t *testing.T) {
	mdl := rtfdemoModel(t, 0.15)
	n0, _ := mdl.MaxUsers(1, 0)
	n100, _ := mdl.MaxUsers(1, 100)
	if n100 >= n0 {
		t.Fatalf("n_max with 100 NPCs (%d) not below n_max without (%d)", n100, n0)
	}
}
