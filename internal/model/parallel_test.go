package model_test

import (
	"math"
	"testing"

	"roia/internal/model"
	"roia/internal/params"
)

func TestSpeedupUSL(t *testing.T) {
	p := model.Par{Sigma: 0.1, Kappa: 0.01}
	if got := p.Speedup(1); got != 1 {
		t.Fatalf("S(1) = %v, want exactly 1", got)
	}
	if got := p.Speedup(0); got != 1 {
		t.Fatalf("S(0) = %v, want 1", got)
	}
	// Hand-evaluated: S(4) = 4 / (1 + 0.1·3 + 0.01·4·3) = 4 / 1.42.
	if got, want := p.Speedup(4), 4.0/1.42; math.Abs(got-want) > 1e-12 {
		t.Fatalf("S(4) = %v, want %v", got, want)
	}
	// Linear speedup when both coefficients are zero.
	ideal := model.Par{}
	for w := 1; w <= 16; w *= 2 {
		if got := ideal.Speedup(w); got != float64(w) {
			t.Fatalf("ideal S(%d) = %v, want %d", w, got, w)
		}
	}
	// Retrograde regime: a large coherency term makes more workers slower
	// (Gunther's rational form allows S < 1 and the model must keep it —
	// it is how l_max-style reasoning caps useful worker counts).
	heavy := model.Par{Kappa: 0.5}
	if s8, s2 := heavy.Speedup(8), heavy.Speedup(2); s8 >= s2 {
		t.Fatalf("retrograde regime lost: S(8)=%v >= S(2)=%v under κ=0.5", s8, s2)
	}
	// Negative coefficients clamp to zero rather than producing
	// superlinear nonsense.
	bad := model.Par{Sigma: -5, Kappa: -5}
	if got := bad.Speedup(4); got != 4 {
		t.Fatalf("clamped S(4) = %v, want 4", got)
	}
}

// TestW1PinsSequentialModel is the acceptance anchor: with one worker (or
// an unset Par), every prediction and threshold is bit-identical to the
// original Eq. 1–3 values, including the calibrated paper anchors.
func TestW1PinsSequentialModel(t *testing.T) {
	seq := rtfdemoModel(t, params.CDefault)
	par := rtfdemoModel(t, params.CDefault)
	par.Par = model.Par{Workers: 1, Sigma: 0.08, Kappa: 0.002}

	for _, n := range []int{0, 1, 50, 235, 1000} {
		for _, l := range []int{1, 2, 8} {
			if a, b := seq.TickTime(l, n, 10), par.TickTime(l, n, 10); a != b {
				t.Fatalf("TickTime(%d,%d,10): w=1 %v != sequential %v", l, n, b, a)
			}
			if a, b := seq.TickTimeUneven(l, n, 10, n/2), par.TickTimeUnevenW(l, n, 10, n/2, 1); a != b {
				t.Fatalf("TickTimeUneven(%d,%d): w=1 %v != sequential %v", l, n, b, a)
			}
		}
	}
	if nmax, ok := par.MaxUsersW(1, 0, 1); !ok || nmax != 235 {
		t.Fatalf("n_max(1, w=1) = %d ok=%v, want the paper anchor 235", nmax, ok)
	}
	if lmax, ok := par.MaxReplicasW(0, 1); !ok || lmax != 8 {
		t.Fatalf("l_max(c=0.15, w=1) = %d ok=%v, want the paper anchor 8", lmax, ok)
	}
}

// TestParallelTickTimeSplit hand-checks T(l,n,m,w) on a constant cost
// model: only the deserialization/AoI/SU/NPC portion is divided by S(w).
func TestParallelTickTimeSplit(t *testing.T) {
	cc := constCost{uaDeser: 0.02, ua: 0.03, aoi: 0.03, su: 0.02, faDeser: 0.004, fa: 0.006, npc: 0.05}
	mdl, err := model.New(cc, 40, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	mdl.Par = model.Par{Sigma: 0.1, Kappa: 0.01}
	const l, n, m = 2, 100, 20
	active := float64(n) / float64(l)
	shadow := float64(n) - active
	sp := mdl.Par.Speedup(4)
	seqPart := active*0.03 + shadow*0.006
	parPart := active*(0.02+0.03+0.02) + shadow*0.004 + float64(m)/float64(l)*0.05
	want := seqPart + parPart/sp
	if got := mdl.TickTimeW(l, n, m, 4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("T(%d,%d,%d,4) = %v, want %v", l, n, m, got, want)
	}
	// Amdahl-style floor: even infinite speedup cannot beat the
	// sequential portion.
	if got := mdl.TickTimeW(l, n, m, 4); got <= seqPart {
		t.Fatalf("parallel tick %v fell at or below the sequential floor %v", got, seqPart)
	}
}

// TestParallelRaisesThresholds: a 4-worker pipeline with modest USL
// coefficients must raise n_max and keep the capacity schedule coherent,
// and setting Par.Workers on the model must flow through the un-suffixed
// methods (the path RMS admission and planning consume).
func TestParallelRaisesThresholds(t *testing.T) {
	mdl := rtfdemoModel(t, params.CDefault)
	mdl.Par = model.Par{Sigma: 0.08, Kappa: 0.002}

	seq, ok := mdl.MaxUsersW(1, 0, 1)
	if !ok || seq != 235 {
		t.Fatalf("sequential n_max = %d ok=%v, want 235", seq, ok)
	}
	par4, ok := mdl.MaxUsersW(1, 0, 4)
	if !ok {
		t.Fatal("n_max(1, w=4) unbounded")
	}
	if par4 <= seq {
		t.Fatalf("n_max(1, w=4) = %d, want > sequential %d", par4, seq)
	}
	// More workers help monotonically in the well-behaved regime.
	par2, _ := mdl.MaxUsersW(1, 0, 2)
	if !(seq < par2 && par2 < par4) {
		t.Fatalf("capacity not monotone in w: %d, %d, %d", seq, par2, par4)
	}

	// Un-suffixed methods honour Par.Workers — the RMS path.
	mdl.Par.Workers = 4
	viaDefault, _ := mdl.MaxUsers(1, 0)
	if viaDefault != par4 {
		t.Fatalf("MaxUsers with Par.Workers=4 = %d, want %d", viaDefault, par4)
	}
	if a, b := mdl.TickTime(1, 200, 0), mdl.TickTimeW(1, 200, 0, 4); a != b {
		t.Fatalf("TickTime with Par.Workers=4 = %v, want %v", a, b)
	}

	// l_max stays derivable and within the replica cap.
	if lmax, ok := mdl.MaxReplicasW(0, 4); !ok || lmax < 1 {
		t.Fatalf("l_max(w=4) = %d ok=%v", lmax, ok)
	}
}
