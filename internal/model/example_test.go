package model_test

import (
	"fmt"

	"roia/internal/model"
	"roia/internal/params"
)

// The paper's §V-A numbers, straight from the public API.
func Example() {
	mdl, err := model.New(params.RTFDemo(), params.UFirstPersonShooter, params.CDefault)
	if err != nil {
		panic(err)
	}
	nmax, _ := mdl.MaxUsers(1, 0)
	lmax, _ := mdl.MaxReplicas(0)
	fmt.Printf("n_max(1) = %d users\n", nmax)
	fmt.Printf("trigger  = %d users\n", model.ReplicationTrigger(nmax, model.DefaultTriggerFraction))
	fmt.Printf("l_max    = %d replicas\n", lmax)
	// Output:
	// n_max(1) = 235 users
	// trigger  = 188 users
	// l_max    = 8 replicas
}

func ExampleModel_TickTime() {
	mdl, _ := model.New(params.RTFDemo(), params.UFirstPersonShooter, params.CDefault)
	fmt.Printf("T(1, 200, 0) = %.1f ms\n", mdl.TickTime(1, 200, 0))
	fmt.Printf("T(2, 200, 0) = %.1f ms\n", mdl.TickTime(2, 200, 0))
	// Output:
	// T(1, 200, 0) = 29.3 ms
	// T(2, 200, 0) = 15.3 ms
}

func ExampleModel_MigrationBudget() {
	mdl, _ := model.New(params.RTFDemo(), params.UFirstPersonShooter, params.CDefault)
	// Two replicas, 260 zone users: 180 on the source, 80 on the target.
	budget := mdl.MigrationBudget(2, 260, 0, 180, 80)
	fmt.Printf("RTF-RMS migrates %d users per second\n", budget)
	// Output:
	// RTF-RMS migrates 3 users per second
}
