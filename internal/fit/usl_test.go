package fit

import (
	"math"
	"math/rand"
	"testing"
)

func uslEval(sigma, kappa, w float64) float64 {
	return w / (1 + sigma*(w-1) + kappa*w*(w-1))
}

func TestFitUSLExactRecovery(t *testing.T) {
	const sigma, kappa = 0.08, 0.002
	workers := []int{1, 2, 3, 4, 6, 8, 12, 16}
	speedups := make([]float64, len(workers))
	for i, w := range workers {
		speedups[i] = uslEval(sigma, kappa, float64(w))
	}
	gs, gk, res, err := FitUSL(workers, speedups)
	if err != nil {
		t.Fatalf("FitUSL: %v", err)
	}
	if math.Abs(gs-sigma) > 1e-6 || math.Abs(gk-kappa) > 1e-6 {
		t.Fatalf("recovered σ=%v κ=%v, want %v, %v (SSR %g)", gs, gk, sigma, kappa, res.SSR)
	}
}

func TestFitUSLNoisyRecovery(t *testing.T) {
	const sigma, kappa = 0.12, 0.004
	rng := rand.New(rand.NewSource(3))
	var workers []int
	var speedups []float64
	for _, w := range []int{1, 2, 3, 4, 6, 8, 10, 12, 16} {
		for rep := 0; rep < 5; rep++ {
			workers = append(workers, w)
			noise := 1 + 0.02*rng.NormFloat64()
			speedups = append(speedups, uslEval(sigma, kappa, float64(w))*noise)
		}
	}
	gs, gk, _, err := FitUSL(workers, speedups)
	if err != nil {
		t.Fatalf("FitUSL: %v", err)
	}
	if math.Abs(gs-sigma) > 0.05 || math.Abs(gk-kappa) > 0.005 {
		t.Fatalf("noisy recovery σ=%v κ=%v, want ≈%v, %v", gs, gk, sigma, kappa)
	}
	// The fitted law must stay in the USL family.
	if gs < 0 || gk < 0 {
		t.Fatalf("negative coefficients escaped the clamp: σ=%v κ=%v", gs, gk)
	}
}

func TestFitUSLValidation(t *testing.T) {
	if _, _, _, err := FitUSL([]int{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, _, err := FitUSL([]int{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, _, _, err := FitUSL([]int{0, 2}, []float64{1, 1.8}); err == nil {
		t.Fatal("worker count 0 accepted")
	}
}

// TestFitUSLRetrograde: a sweep whose speedup collapses at high w must fit
// a clearly positive κ — the coefficient that caps the useful worker count.
func TestFitUSLRetrograde(t *testing.T) {
	const sigma, kappa = 0.05, 0.03
	workers := []int{1, 2, 4, 8, 12, 16, 24, 32}
	speedups := make([]float64, len(workers))
	for i, w := range workers {
		speedups[i] = uslEval(sigma, kappa, float64(w))
	}
	if speedups[len(speedups)-1] >= speedups[3] {
		t.Fatal("test sweep is not retrograde")
	}
	_, gk, _, err := FitUSL(workers, speedups)
	if err != nil {
		t.Fatalf("FitUSL: %v", err)
	}
	if gk < 0.01 {
		t.Fatalf("κ = %v, want clearly positive for a retrograde sweep", gk)
	}
}
