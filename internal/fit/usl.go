package fit

import (
	"errors"
	"math"
)

// USLModel returns the Universal Scalability Law as a ModelFunc for LevMar:
//
//	S(w; σ, κ) = w / (1 + σ(w−1) + κ·w·(w−1))
//
// with coeffs = [σ, κ] and x = w (the worker count). This is Gunther's
// rational-function speedup: σ captures contention (the serialized merge
// points of the tick pipeline), κ captures coherency crosstalk that grows
// quadratically with workers and eventually makes speedup retrograde.
func USLModel() ModelFunc {
	return func(c []float64, w float64) float64 {
		den := 1 + c[0]*(w-1) + c[1]*w*(w-1)
		if den <= 0 {
			// Outside the physically meaningful region; return a large
			// value so the optimizer is pushed back toward σ, κ ≥ 0.
			return math.Inf(1)
		}
		return w / den
	}
}

// FitUSL fits σ and κ to measured (workers, speedup) calibration points.
// Speedups are relative to the one-worker run (S(1) = 1); the w = 1 point
// may be included and carries no information beyond anchoring noise.
// Negative fitted coefficients — possible when the sweep is noisy or too
// short — are clamped to zero, keeping the returned law within the
// physically meaningful USL family (S(1) = 1, no superlinear speedup).
func FitUSL(workers []int, speedups []float64) (sigma, kappa float64, res Result, err error) {
	if len(workers) != len(speedups) {
		return 0, 0, Result{}, errors.New("fit: workers and speedups length mismatch")
	}
	if len(workers) < 2 {
		return 0, 0, Result{}, ErrSingular
	}
	xs := make([]float64, len(workers))
	for i, w := range workers {
		if w < 1 {
			return 0, 0, Result{}, errors.New("fit: worker counts must be >= 1")
		}
		xs[i] = float64(w)
	}
	f := USLModel()
	// A small contention-only guess keeps the first Jacobian well
	// conditioned; LevMar moves both coefficients from there.
	res, err = LevMar(f, xs, speedups, []float64{0.05, 0.001}, LMOptions{})
	if err != nil {
		return 0, 0, res, err
	}
	sigma, kappa = res.Coeffs[0], res.Coeffs[1]
	if sigma < 0 || kappa < 0 {
		if sigma < 0 {
			sigma = 0
		}
		if kappa < 0 {
			kappa = 0
		}
		res.Coeffs = []float64{sigma, kappa}
		res.SSR = 0
		for i, x := range xs {
			d := speedups[i] - f(res.Coeffs, x)
			res.SSR += d * d
		}
		res.RMSE = math.Sqrt(res.SSR / float64(len(xs)))
	}
	return sigma, kappa, res, nil
}
