package fit

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution, e.g.
// when fitting a polynomial of degree d to fewer than d+1 distinct points.
var ErrSingular = errors.New("fit: singular system (not enough independent data points)")

// solve solves the n×n linear system a·x = b in place using Gaussian
// elimination with partial pivoting. a is row-major with n*n entries; both a
// and b are clobbered. The solution is written into b.
func solve(a []float64, b []float64, n int) error {
	for col := 0; col < n; col++ {
		// Partial pivot: find the row with the largest magnitude in col.
		pivot := col
		best := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 || math.IsNaN(best) {
			return ErrSingular
		}
		if pivot != col {
			for c := col; c < n; c++ {
				a[col*n+c], a[pivot*n+c] = a[pivot*n+c], a[col*n+c]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			a[r*n+col] = 0
			for c := col + 1; c < n; c++ {
				a[r*n+c] -= f * a[col*n+c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r*n+c] * b[c]
		}
		b[r] = sum / a[r*n+r]
		if math.IsNaN(b[r]) || math.IsInf(b[r], 0) {
			return ErrSingular
		}
	}
	return nil
}
