package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPolyfitExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3.5*x + 1.25
	}
	res, err := Polyfit(xs, ys, 1)
	if err != nil {
		t.Fatalf("Polyfit: %v", err)
	}
	if !approxEq(res.Coeffs[0], 1.25, 1e-9) || !approxEq(res.Coeffs[1], 3.5, 1e-9) {
		t.Fatalf("coefficients = %v, want [1.25 3.5]", res.Coeffs)
	}
	if res.SSR > 1e-18 {
		t.Fatalf("SSR = %g, want ~0", res.SSR)
	}
}

func TestPolyfitExactQuadratic(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2, 5, 10}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 0.5*x*x - 2*x + 7
	}
	res, err := Polyfit(xs, ys, 2)
	if err != nil {
		t.Fatalf("Polyfit: %v", err)
	}
	want := []float64{7, -2, 0.5}
	for i := range want {
		if !approxEq(res.Coeffs[i], want[i], 1e-7) {
			t.Fatalf("coeff[%d] = %g, want %g (all %v)", i, res.Coeffs[i], want[i], res.Coeffs)
		}
	}
}

func TestPolyfitNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		x := float64(i)
		xs[i] = x
		ys[i] = 0.002*x*x + 0.3*x + 5 + rng.NormFloat64()*0.5
	}
	res, err := Polyfit(xs, ys, 2)
	if err != nil {
		t.Fatalf("Polyfit: %v", err)
	}
	if !approxEq(res.Coeffs[2], 0.002, 5e-4) || !approxEq(res.Coeffs[1], 0.3, 5e-2) {
		t.Fatalf("noisy fit drifted: %v", res.Coeffs)
	}
}

func TestPolyfitDegenerateInputs(t *testing.T) {
	if _, err := Polyfit([]float64{1, 1, 1}, []float64{1, 2, 3}, 1); err != ErrSingular {
		t.Fatalf("identical xs: err = %v, want ErrSingular", err)
	}
	if _, err := Polyfit([]float64{1}, []float64{2}, 1); err != ErrSingular {
		t.Fatalf("too few points: err = %v, want ErrSingular", err)
	}
	if _, err := Polyfit([]float64{1, 2}, []float64{2}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Polyfit([]float64{1, 2}, []float64{2, 3}, -1); err == nil {
		t.Fatal("negative degree accepted")
	}
}

func TestLevMarRecoversQuadratic(t *testing.T) {
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		x := float64(i * 6)
		xs[i] = x
		ys[i] = 0.001*x*x + 0.05*x + 2
	}
	res, err := LevMar(PolyModel(), xs, ys, []float64{1, 1, 1}, LMOptions{})
	if err != nil {
		t.Fatalf("LevMar: %v", err)
	}
	want := []float64{2, 0.05, 0.001}
	for i := range want {
		if !approxEq(res.Coeffs[i], want[i], 1e-5) {
			t.Fatalf("coeff[%d] = %g, want %g (SSR=%g iters=%d)", i, res.Coeffs[i], want[i], res.SSR, res.Iterations)
		}
	}
}

func TestLevMarRecoversExponential(t *testing.T) {
	expModel := func(c []float64, x float64) float64 { return c[0] * math.Exp(c[1]*x) }
	xs := make([]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		x := float64(i) / 10
		xs[i] = x
		ys[i] = 2.5 * math.Exp(0.8*x)
	}
	res, err := LevMar(expModel, xs, ys, []float64{1, 0.1}, LMOptions{})
	if err != nil {
		t.Fatalf("LevMar: %v", err)
	}
	if !approxEq(res.Coeffs[0], 2.5, 1e-4) || !approxEq(res.Coeffs[1], 0.8, 1e-4) {
		t.Fatalf("coefficients = %v, want [2.5 0.8]", res.Coeffs)
	}
}

func TestLevMarNoisyLinearMatchesPolyfit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 120)
	ys := make([]float64, 120)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 0.7*xs[i] + 3 + rng.NormFloat64()*0.2
	}
	direct, err := Polyfit(xs, ys, 1)
	if err != nil {
		t.Fatalf("Polyfit: %v", err)
	}
	lm, err := LevMar(PolyModel(), xs, ys, []float64{0, 0}, LMOptions{})
	if err != nil {
		t.Fatalf("LevMar: %v", err)
	}
	for i := range direct.Coeffs {
		if !approxEq(direct.Coeffs[i], lm.Coeffs[i], 1e-4) {
			t.Fatalf("LM %v != direct %v", lm.Coeffs, direct.Coeffs)
		}
	}
}

func TestLevMarInputValidation(t *testing.T) {
	if _, err := LevMar(PolyModel(), []float64{1}, []float64{1, 2}, []float64{0}, LMOptions{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := LevMar(PolyModel(), []float64{1, 2}, []float64{1, 2}, nil, LMOptions{}); err == nil {
		t.Fatal("empty initial guess accepted")
	}
	if _, err := LevMar(PolyModel(), []float64{1}, []float64{1}, []float64{0, 0}, LMOptions{}); err != ErrSingular {
		t.Fatal("underdetermined system accepted")
	}
}

// Property: for any line, LevMar never ends with a larger SSR than it
// started with, and Polyfit on exact polynomial data has ~zero residual.
func TestLevMarNeverWorsensSSR(t *testing.T) {
	prop := func(slope, intercept float64, seed int64) bool {
		slope = math.Mod(slope, 100)
		intercept = math.Mod(intercept, 100)
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 20)
		ys := make([]float64, 20)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = slope*xs[i] + intercept + rng.NormFloat64()
		}
		init := []float64{rng.Float64() * 10, rng.Float64() * 10}
		start := 0.0
		for i := range xs {
			d := evalPoly(init, xs[i]) - ys[i]
			start += d * d
		}
		res, err := LevMar(PolyModel(), xs, ys, init, LMOptions{})
		if err != nil {
			return false
		}
		return res.SSR <= start+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	a := []float64{2, 1, 1, 3}
	b := []float64{5, 10}
	if err := solve(a, b, 2); err != nil {
		t.Fatalf("solve: %v", err)
	}
	if !approxEq(b[0], 1, 1e-12) || !approxEq(b[1], 3, 1e-12) {
		t.Fatalf("solution = %v, want [1 3]", b)
	}
}

func TestSolveSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4}
	b := []float64{3, 6}
	if err := solve(a, b, 2); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := []float64{0, 1, 1, 0}
	b := []float64{2, 3}
	if err := solve(a, b, 2); err != nil {
		t.Fatalf("solve: %v", err)
	}
	if !approxEq(b[0], 3, 1e-12) || !approxEq(b[1], 2, 1e-12) {
		t.Fatalf("solution = %v, want [3 2]", b)
	}
}
