// Package fit provides nonlinear and linear least-squares curve fitting.
//
// The paper determines its model parameters (per-task CPU times as functions
// of the user count) by fitting measured samples with the nonlinear
// least-squares Levenberg–Marquardt algorithm as implemented in gnuplot.
// This package reimplements that fitting machinery from scratch on top of
// the standard library only:
//
//   - Polyfit fits polynomial coefficients exactly via the linear normal
//     equations (sufficient for the linear and quadratic approximation
//     functions the paper uses).
//   - LevMar minimizes the sum of squared residuals of an arbitrary
//     parametric model function, using damped Gauss–Newton steps with an
//     adaptive damping factor — the classic Levenberg–Marquardt scheme.
//
// Both return a Result carrying the fitted coefficients and goodness-of-fit
// diagnostics so that calibration code can reject poor fits.
package fit
