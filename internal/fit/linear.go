package fit

import (
	"errors"
	"math"
)

// Result reports the outcome of a fit: the coefficients of the fitted model
// and residual diagnostics.
type Result struct {
	// Coeffs holds the fitted coefficients. For Polyfit, Coeffs[i] is the
	// coefficient of x^i. For LevMar, the layout is whatever the supplied
	// model function expects.
	Coeffs []float64
	// SSR is the sum of squared residuals at the solution.
	SSR float64
	// RMSE is sqrt(SSR/len(points)).
	RMSE float64
	// Iterations is the number of iterations performed (0 for direct solves).
	Iterations int
}

// Polyfit fits y ≈ Σ c_i·x^i (degree deg) to the sample points by ordinary
// least squares using the normal equations. It needs at least deg+1 points
// with at least deg+1 distinct x values; otherwise it returns ErrSingular.
//
// The paper approximates t_ua_dser, t_su, t_fa, t_fa_dser, t_mig_ini and
// t_mig_rcv with degree-1 polynomials and t_ua, t_aoi with degree-2
// polynomials; Polyfit covers all of those directly.
func Polyfit(xs, ys []float64, deg int) (Result, error) {
	if len(xs) != len(ys) {
		return Result{}, errors.New("fit: xs and ys length mismatch")
	}
	if deg < 0 {
		return Result{}, errors.New("fit: negative degree")
	}
	n := deg + 1
	if len(xs) < n {
		return Result{}, ErrSingular
	}
	// Normal equations: (VᵀV)c = Vᵀy with Vandermonde V. Accumulate the
	// power sums directly; degrees here are tiny (≤3) so conditioning is
	// not a concern at the scales the calibration pipeline uses.
	ata := make([]float64, n*n)
	aty := make([]float64, n)
	pows := make([]float64, 2*deg+1)
	for k, x := range xs {
		p := 1.0
		for i := 0; i <= 2*deg; i++ {
			pows[i] = p
			p *= x
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ata[i*n+j] += pows[i+j]
			}
			aty[i] += pows[i] * ys[k]
		}
	}
	if err := solve(ata, aty, n); err != nil {
		return Result{}, err
	}
	res := Result{Coeffs: aty}
	for k, x := range xs {
		d := evalPoly(aty, x) - ys[k]
		res.SSR += d * d
	}
	res.RMSE = math.Sqrt(res.SSR / float64(len(xs)))
	return res, nil
}

// evalPoly evaluates Σ c_i·x^i via Horner's scheme.
func evalPoly(c []float64, x float64) float64 {
	v := 0.0
	for i := len(c) - 1; i >= 0; i-- {
		v = v*x + c[i]
	}
	return v
}
