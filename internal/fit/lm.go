package fit

import (
	"errors"
	"math"
)

// ModelFunc evaluates a parametric model y = f(x; coeffs). Implementations
// must be deterministic and must not retain the coeffs slice.
type ModelFunc func(coeffs []float64, x float64) float64

// LMOptions configures LevMar. The zero value selects reasonable defaults.
type LMOptions struct {
	// MaxIterations bounds the number of outer LM iterations (default 200).
	MaxIterations int
	// Tolerance stops the iteration once the relative SSR improvement of a
	// successful step falls below it (default 1e-12).
	Tolerance float64
	// InitialLambda is the starting damping factor (default 1e-3).
	InitialLambda float64
}

func (o LMOptions) withDefaults() LMOptions {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 200
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-12
	}
	if o.InitialLambda <= 0 {
		o.InitialLambda = 1e-3
	}
	return o
}

// LevMar fits the parametric model f to the sample points (xs, ys) by
// minimizing the sum of squared residuals, starting from the initial
// coefficient guess. It implements the Levenberg–Marquardt algorithm —
// damped Gauss–Newton with an adaptive damping factor λ that interpolates
// between Gauss–Newton (λ→0) and gradient descent (λ large) — matching the
// fitting procedure the paper runs in gnuplot. The Jacobian is computed by
// central finite differences.
//
// The initial slice is not modified. LevMar returns an error if the inputs
// are inconsistent or the normal equations become singular before any
// progress is made.
func LevMar(f ModelFunc, xs, ys, initial []float64, opts LMOptions) (Result, error) {
	if len(xs) != len(ys) {
		return Result{}, errors.New("fit: xs and ys length mismatch")
	}
	if len(initial) == 0 {
		return Result{}, errors.New("fit: empty initial coefficient guess")
	}
	if len(xs) < len(initial) {
		return Result{}, ErrSingular
	}
	opts = opts.withDefaults()

	np := len(initial)
	coeffs := append([]float64(nil), initial...)
	residual := func(c []float64) float64 {
		ssr := 0.0
		for i, x := range xs {
			d := f(c, x) - ys[i]
			ssr += d * d
		}
		return ssr
	}

	ssr := residual(coeffs)
	lambda := opts.InitialLambda
	jac := make([]float64, len(xs)*np) // row-major m×np
	jtj := make([]float64, np*np)      // JᵀJ (+ damping)
	jtr := make([]float64, np)         // Jᵀr
	trial := make([]float64, np)
	probe := make([]float64, np)

	iters := 0
	for ; iters < opts.MaxIterations; iters++ {
		// Numeric Jacobian of the residual vector r_i = f(c, x_i) - y_i.
		copy(probe, coeffs)
		for j := 0; j < np; j++ {
			h := 1e-6 * math.Max(math.Abs(coeffs[j]), 1e-6)
			probe[j] = coeffs[j] + h
			for i, x := range xs {
				jac[i*np+j] = f(probe, x)
			}
			probe[j] = coeffs[j] - h
			for i, x := range xs {
				jac[i*np+j] = (jac[i*np+j] - f(probe, x)) / (2 * h)
			}
			probe[j] = coeffs[j]
		}
		// Normal equations JᵀJ·δ = -Jᵀr.
		for a := range jtj {
			jtj[a] = 0
		}
		for a := range jtr {
			jtr[a] = 0
		}
		for i, x := range xs {
			r := f(coeffs, x) - ys[i]
			for a := 0; a < np; a++ {
				jtr[a] += jac[i*np+a] * r
				for b := a; b < np; b++ {
					jtj[a*np+b] += jac[i*np+a] * jac[i*np+b]
				}
			}
		}
		for a := 1; a < np; a++ {
			for b := 0; b < a; b++ {
				jtj[a*np+b] = jtj[b*np+a]
			}
		}

		improved := false
		// Try increasing damping until a step lowers the SSR (or give up).
		for attempt := 0; attempt < 30; attempt++ {
			sys := append([]float64(nil), jtj...)
			rhs := make([]float64, np)
			for a := 0; a < np; a++ {
				// Marquardt's scaling: damp by λ·diag(JᵀJ), falling back to
				// identity damping when a diagonal entry vanishes.
				d := jtj[a*np+a]
				if d == 0 {
					d = 1
				}
				sys[a*np+a] += lambda * d
				rhs[a] = -jtr[a]
			}
			if err := solve(sys, rhs, np); err != nil {
				lambda *= 10
				continue
			}
			for a := 0; a < np; a++ {
				trial[a] = coeffs[a] + rhs[a]
			}
			if trialSSR := residual(trial); trialSSR < ssr && !math.IsNaN(trialSSR) {
				rel := (ssr - trialSSR) / math.Max(ssr, 1e-300)
				copy(coeffs, trial)
				ssr = trialSSR
				lambda = math.Max(lambda/10, 1e-14)
				improved = true
				if rel < opts.Tolerance {
					iters++
					goto done
				}
				break
			}
			lambda *= 10
		}
		if !improved {
			break // Converged: no damping level yields an improvement.
		}
	}
done:
	return Result{
		Coeffs:     coeffs,
		SSR:        ssr,
		RMSE:       math.Sqrt(ssr / float64(len(xs))),
		Iterations: iters,
	}, nil
}

// PolyModel returns a ModelFunc evaluating Σ c_i·x^i, for fitting polynomial
// shapes through LevMar (e.g. to cross-check Polyfit, or with constraints
// baked into f).
func PolyModel() ModelFunc {
	return func(c []float64, x float64) float64 { return evalPoly(c, x) }
}
