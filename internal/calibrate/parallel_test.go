package calibrate

import (
	"math"
	"testing"

	"roia/internal/params"
)

func TestSynthesizeAndRecoverParallel(t *testing.T) {
	truth := params.USL{Sigma: 0.08, Kappa: 0.002}
	sweep := SynthesizeParallel(truth, []int{1, 2, 3, 4, 6, 8, 12, 16}, 6, 0.01, 42)
	got, res, err := FitParallel(sweep)
	if err != nil {
		t.Fatalf("FitParallel: %v", err)
	}
	if math.Abs(got.Sigma-truth.Sigma) > 0.03 || math.Abs(got.Kappa-truth.Kappa) > 0.003 {
		t.Fatalf("recovered σ=%v κ=%v, want ≈%v, %v (RMSE %g)",
			got.Sigma, got.Kappa, truth.Sigma, truth.Kappa, res.RMSE)
	}
	if got.Sigma < 0 || got.Kappa < 0 {
		t.Fatalf("fitted coefficients escaped the USL family: %+v", got)
	}
}

func TestFitParallelNeedsIdentifiableSweep(t *testing.T) {
	// Only one worker count above 1: σ and κ cannot be separated.
	sweep := []ParSample{{Workers: 1, Speedup: 1}, {Workers: 4, Speedup: 3.2}, {Workers: 4, Speedup: 3.1}}
	if _, _, err := FitParallel(sweep); err == nil {
		t.Fatal("under-determined sweep accepted")
	}
}

func TestSynthesizeParallelDeterministic(t *testing.T) {
	truth := params.USL{Sigma: 0.1, Kappa: 0.004}
	a := SynthesizeParallel(truth, []int{2, 4, 8}, 3, 0.05, 7)
	b := SynthesizeParallel(truth, []int{8, 2, 4}, 3, 0.05, 7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across input orderings: %+v vs %+v", i, a[i], b[i])
		}
	}
}
