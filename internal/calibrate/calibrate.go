// Package calibrate turns monitoring samples into a scalability-model
// parameter set, reproducing the measurement procedure of Section V-A:
// per-task CPU times are sampled at varying user counts (bots generate the
// workload), an approximation-function shape is chosen per parameter
// (linear or quadratic, following the paper's analysis of RTFDemo), and
// the coefficients are fitted with nonlinear least squares
// (Levenberg–Marquardt, as the paper does in gnuplot).
package calibrate

import (
	"fmt"
	"math/rand"
	"sort"

	"roia/internal/fit"
	"roia/internal/params"
	"roia/internal/rtf/monitor"
)

// DefaultDegrees returns the approximation-function degree per task for an
// RTFDemo-like shooter, as argued in Section V-A: quadratic input
// application (attack scans over all users) and area-of-interest
// computation (Euclidean algorithm with duplicate-checked update lists),
// linear everything else.
func DefaultDegrees() map[monitor.Task]int {
	return map[monitor.Task]int{
		monitor.UADeser: 1,
		monitor.UA:      2,
		monitor.FADeser: 1,
		monitor.FA:      1,
		monitor.NPC:     1,
		monitor.AOI:     2,
		monitor.SU:      1,
		monitor.MigIni:  1,
		monitor.MigRcv:  1,
	}
}

// FitTask fits one task's samples with a polynomial of the given degree.
// The direct least-squares solution seeds a Levenberg–Marquardt refinement
// (the paper's fitting algorithm); both agree on polynomial models, so the
// LM pass doubles as a consistency check.
func FitTask(samples []monitor.Sample, degree int) (params.Curve, fit.Result, error) {
	if len(samples) <= degree {
		return params.Curve{}, fit.Result{}, fmt.Errorf(
			"calibrate: %d samples cannot determine a degree-%d curve", len(samples), degree)
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.X
		ys[i] = s.Y
	}
	direct, err := fit.Polyfit(xs, ys, degree)
	if err != nil {
		return params.Curve{}, fit.Result{}, fmt.Errorf("calibrate: %w", err)
	}
	res, err := fit.LevMar(fit.PolyModel(), xs, ys, direct.Coeffs, fit.LMOptions{})
	if err != nil || res.SSR > direct.SSR {
		res = direct // LM must not make the solution worse
	}
	return params.Curve{Coeffs: res.Coeffs}, res, nil
}

// Result reports one calibration run.
type Result struct {
	// Set is the fitted parameter profile.
	Set *params.Set
	// Fits records per-task goodness of fit.
	Fits map[monitor.Task]fit.Result
	// Missing lists tasks that had no samples; their curves are zero. The
	// four real-time-loop tasks are mandatory and cause an error instead.
	Missing []monitor.Task
}

// FromSamples fits a full parameter set from a calibration sample log.
// degrees may be nil, defaulting to DefaultDegrees. The mandatory tasks of
// the real-time loop (t_ua_dser, t_ua, t_aoi, t_su) must have samples;
// forwarded-input, NPC and migration parameters may be absent (e.g. a
// single-server measurement run) and yield zero curves, reported in
// Missing.
func FromSamples(name string, samples []monitor.Sample, degrees map[monitor.Task]int) (*Result, error) {
	if degrees == nil {
		degrees = DefaultDegrees()
	}
	byTask := make(map[monitor.Task][]monitor.Sample)
	for _, s := range samples {
		byTask[s.Task] = append(byTask[s.Task], s)
	}
	res := &Result{Set: &params.Set{Name: name}, Fits: make(map[monitor.Task]fit.Result)}
	assign := map[monitor.Task]*params.Curve{
		monitor.UADeser: &res.Set.UADeser,
		monitor.UA:      &res.Set.UA,
		monitor.FADeser: &res.Set.FADeser,
		monitor.FA:      &res.Set.FA,
		monitor.NPC:     &res.Set.NPC,
		monitor.AOI:     &res.Set.AOI,
		monitor.SU:      &res.Set.SU,
		monitor.MigIni:  &res.Set.MigIni,
		monitor.MigRcv:  &res.Set.MigRcv,
	}
	mandatory := map[monitor.Task]bool{
		monitor.UADeser: true, monitor.UA: true, monitor.AOI: true, monitor.SU: true,
	}
	for _, task := range monitor.Tasks() {
		ts := byTask[task]
		if len(ts) == 0 {
			if mandatory[task] {
				return nil, fmt.Errorf("calibrate: no samples for mandatory parameter %s", task)
			}
			*assign[task] = params.Constant(0)
			res.Missing = append(res.Missing, task)
			continue
		}
		deg, ok := degrees[task]
		if !ok {
			deg = 1
		}
		curve, fr, err := FitTask(ts, deg)
		if err != nil {
			return nil, fmt.Errorf("calibrate: %s: %w", task, err)
		}
		*assign[task] = curve
		res.Fits[task] = fr
	}
	sort.Slice(res.Missing, func(i, j int) bool { return res.Missing[i] < res.Missing[j] })
	return res, nil
}

// FromMonitor calibrates from a live server's collected samples.
func FromMonitor(name string, m *monitor.Monitor) (*Result, error) {
	return FromSamples(name, m.Samples(), nil)
}

// Synthesize generates noisy calibration samples from a known ground-truth
// profile: for every task and user count it emits repeat samples with
// multiplicative Gaussian noise. This stands in for the paper's testbed
// measurements when reproducing the parameter-determination figures
// (Fig. 4 and Fig. 6) deterministically, and it validates that the fitting
// pipeline recovers the generating coefficients.
func Synthesize(truth *params.Set, tasks []monitor.Task, userCounts []int, repeats int, noise float64, seed int64) []monitor.Sample {
	rng := rand.New(rand.NewSource(seed))
	eval := map[monitor.Task]func(n int) float64{
		monitor.UADeser: func(n int) float64 { return truth.UADeserAt(n, 0) },
		monitor.UA:      func(n int) float64 { return truth.UAAt(n, 0) },
		monitor.FADeser: func(n int) float64 { return truth.FADeserAt(n, 0) },
		monitor.FA:      func(n int) float64 { return truth.FAAt(n, 0) },
		monitor.NPC:     func(n int) float64 { return truth.NPCAt(n, 0) },
		monitor.AOI:     func(n int) float64 { return truth.AOIAt(n, 0) },
		monitor.SU:      func(n int) float64 { return truth.SUAt(n, 0) },
		monitor.MigIni:  func(n int) float64 { return truth.MigIniAt(n) },
		monitor.MigRcv:  func(n int) float64 { return truth.MigRcvAt(n) },
	}
	var out []monitor.Sample
	for _, task := range tasks {
		f := eval[task]
		if f == nil {
			continue
		}
		for _, n := range userCounts {
			base := f(n)
			for r := 0; r < repeats; r++ {
				y := base * (1 + noise*rng.NormFloat64())
				if y < 0 {
					y = 0
				}
				out = append(out, monitor.Sample{Task: task, X: float64(n), Y: y})
			}
		}
	}
	return out
}
