package calibrate

import (
	"fmt"
	"math/rand"
	"sort"

	"roia/internal/fit"
	"roia/internal/params"
)

// ParSample is one observation of a parallel-executor calibration sweep:
// the measured tick speedup at a worker count, relative to the one-worker
// run of the same workload (speedup = wall(w=1) / wall(w), or
// equivalently MeanTickCPU / MeanTick for a single configuration).
type ParSample struct {
	// Workers is the executor worker count w (≥ 1).
	Workers int
	// Speedup is the measured wall-time speedup over the sequential run.
	Speedup float64
}

// FitParallel fits the USL coefficients σ, κ from a worker sweep, the
// parallel analogue of FitTask: run the same workload at several
// Parallelism settings, record the tick wall-time speedups, and fit
// Gunther's rational function through them. The sweep must cover at least
// two distinct worker counts above 1 — below that the two coefficients are
// not identifiable.
func FitParallel(samples []ParSample) (params.USL, fit.Result, error) {
	distinct := map[int]bool{}
	workers := make([]int, 0, len(samples))
	speedups := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s.Workers > 1 {
			distinct[s.Workers] = true
		}
		workers = append(workers, s.Workers)
		speedups = append(speedups, s.Speedup)
	}
	if len(distinct) < 2 {
		return params.USL{}, fit.Result{}, fmt.Errorf(
			"calibrate: parallel sweep needs >= 2 distinct worker counts above 1, got %d", len(distinct))
	}
	sigma, kappa, res, err := fit.FitUSL(workers, speedups)
	if err != nil {
		return params.USL{}, res, fmt.Errorf("calibrate: %w", err)
	}
	return params.USL{Sigma: sigma, Kappa: kappa}, res, nil
}

// SynthesizeParallel generates a noisy worker sweep from known ground-truth
// coefficients, mirroring Synthesize for the per-task curves: it validates
// that FitParallel recovers the generating σ, κ and stands in for a
// multi-core testbed when reproducing the speedup figure deterministically.
func SynthesizeParallel(truth params.USL, workerCounts []int, repeats int, noise float64, seed int64) []ParSample {
	rng := rand.New(rand.NewSource(seed))
	counts := append([]int(nil), workerCounts...)
	sort.Ints(counts)
	var out []ParSample
	for _, w := range counts {
		if w < 1 {
			continue
		}
		ww := float64(w)
		base := ww / (1 + truth.Sigma*(ww-1) + truth.Kappa*ww*(ww-1))
		for r := 0; r < repeats; r++ {
			s := base * (1 + noise*rng.NormFloat64())
			if s < 0.1 {
				s = 0.1
			}
			out = append(out, ParSample{Workers: w, Speedup: s})
		}
	}
	return out
}
