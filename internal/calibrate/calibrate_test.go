package calibrate

import (
	"math"
	"testing"

	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rtf/monitor"
)

func TestFitTaskRecoversLine(t *testing.T) {
	var samples []monitor.Sample
	for n := 10; n <= 300; n += 10 {
		samples = append(samples, monitor.Sample{Task: monitor.SU, X: float64(n), Y: 0.012 + 0.00008*float64(n)})
	}
	curve, res, err := FitTask(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(curve.Coeffs[0]-0.012) > 1e-9 || math.Abs(curve.Coeffs[1]-0.00008) > 1e-12 {
		t.Fatalf("coeffs = %v", curve.Coeffs)
	}
	if res.SSR > 1e-15 {
		t.Fatalf("SSR = %g", res.SSR)
	}
}

func TestFitTaskInsufficientSamples(t *testing.T) {
	s := []monitor.Sample{{X: 1, Y: 1}, {X: 2, Y: 2}}
	if _, _, err := FitTask(s, 2); err == nil {
		t.Fatal("underdetermined fit accepted")
	}
}

func TestSynthesizeAndRecoverFullProfile(t *testing.T) {
	truth := params.RTFDemo()
	var counts []int
	for n := 10; n <= 300; n += 5 {
		counts = append(counts, n)
	}
	samples := Synthesize(truth, monitor.Tasks(), counts, 5, 0.05, 42)
	res, err := FromSamples("recovered", samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 0 {
		t.Fatalf("missing tasks: %v", res.Missing)
	}
	// The recovered profile must predict per-task costs within a few
	// percent of the truth across the measured range.
	for _, n := range []int{50, 150, 235, 300} {
		for name, pair := range map[string][2]float64{
			"active": {truth.ActivePerUser(n, 0), res.Set.ActivePerUser(n, 0)},
			"shadow": {truth.ShadowPerUser(n, 0), res.Set.ShadowPerUser(n, 0)},
			"migIni": {truth.MigIniAt(n), res.Set.MigIniAt(n)},
			"migRcv": {truth.MigRcvAt(n), res.Set.MigRcvAt(n)},
		} {
			want, got := pair[0], pair[1]
			if math.Abs(got-want) > 0.05*want {
				t.Fatalf("%s(%d) = %g, truth %g (drift > 5%%)", name, n, got, want)
			}
		}
	}
	// Crucially, the recovered model reproduces the capacity threshold
	// within a tight band — this is the end-to-end calibration check.
	mdl, err := model.New(res.Set, params.UFirstPersonShooter, params.CDefault)
	if err != nil {
		t.Fatal(err)
	}
	nmax, ok := mdl.MaxUsers(1, 0)
	if !ok || nmax < 225 || nmax > 245 {
		t.Fatalf("recovered n_max(1) = %d, want ≈235", nmax)
	}
}

func TestFromSamplesMandatoryTasks(t *testing.T) {
	truth := params.RTFDemo()
	// Leave out t_ua: must fail.
	tasks := []monitor.Task{monitor.UADeser, monitor.AOI, monitor.SU}
	samples := Synthesize(truth, tasks, []int{10, 50, 100, 200}, 3, 0, 1)
	if _, err := FromSamples("x", samples, nil); err == nil {
		t.Fatal("missing mandatory t_ua accepted")
	}
}

func TestFromSamplesOptionalTasksReportedMissing(t *testing.T) {
	truth := params.RTFDemo()
	tasks := []monitor.Task{monitor.UADeser, monitor.UA, monitor.AOI, monitor.SU}
	samples := Synthesize(truth, tasks, []int{10, 50, 100, 150, 200}, 3, 0, 1)
	res, err := FromSamples("partial", samples, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 5 {
		t.Fatalf("missing = %v, want 5 optional tasks", res.Missing)
	}
	// Zero curves for the missing parameters.
	if res.Set.MigIniAt(100) != 0 || res.Set.FAAt(100, 0) != 0 {
		t.Fatal("missing tasks have non-zero curves")
	}
	// Mandatory curves still fitted.
	if res.Set.UAAt(100, 0) <= 0 {
		t.Fatal("t_ua not fitted")
	}
}

func TestFromMonitorEndToEnd(t *testing.T) {
	// Feed a monitor synthetic per-tick breakdowns and calibrate from it.
	truth := params.RTFDemo()
	m := monitor.New()
	m.SetCollecting(true)
	for n := 20; n <= 300; n += 20 {
		for rep := 0; rep < 3; rep++ {
			var b monitor.Breakdown
			b.Users = n
			items := n
			b.Add(monitor.UADeser, truth.UADeserAt(n, 0)*float64(items), items)
			b.Add(monitor.UA, truth.UAAt(n, 0)*float64(items), items)
			b.Add(monitor.AOI, truth.AOIAt(n, 0)*float64(items), items)
			b.Add(monitor.SU, truth.SUAt(n, 0)*float64(items), items)
			m.RecordTick(b)
		}
	}
	res, err := FromMonitor("live", m)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Set.UAAt(200, 0); math.Abs(got-truth.UAAt(200, 0)) > 1e-6 {
		t.Fatalf("t_ua(200) = %g, truth %g", got, truth.UAAt(200, 0))
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	truth := params.RTFDemo()
	a := Synthesize(truth, []monitor.Task{monitor.UA}, []int{10, 20}, 2, 0.1, 9)
	b := Synthesize(truth, []monitor.Task{monitor.UA}, []int{10, 20}, 2, 0.1, 9)
	if len(a) != len(b) || len(a) != 4 {
		t.Fatalf("lengths: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("synthesis not deterministic")
		}
	}
	// Noise must never produce negative CPU times.
	noisy := Synthesize(truth, monitor.Tasks(), []int{1, 5}, 50, 3.0, 11)
	for _, s := range noisy {
		if s.Y < 0 {
			t.Fatalf("negative sample: %+v", s)
		}
	}
}
