package sim

import (
	"roia/internal/rms"
	"roia/internal/workload"
)

// SessionResult aggregates one simulated session.
type SessionResult struct {
	// Stats holds one entry per simulated second.
	Stats []SecondStats
	// TotalMigrations is the number of user migrations performed.
	TotalMigrations int
	// TotalViolations counts server-seconds whose tick exceeded U.
	TotalViolations int
	// PeakTickMS is the worst tick duration of the session.
	PeakTickMS float64
	// PeakReplicas is the maximum concurrently-leased server count.
	PeakReplicas int
	// ServerSeconds integrates leased servers over time (resource usage).
	ServerSeconds float64
	// Cost is the provider bill at session end.
	Cost float64
}

// MaxAvgCPU returns the session's highest per-second average CPU load.
func (r SessionResult) MaxAvgCPU() float64 {
	max := 0.0
	for _, s := range r.Stats {
		if s.AvgCPU > max {
			max = s.AvgCPU
		}
	}
	return max
}

// ReplicasAt returns the ready-replica count at the given second.
func (r SessionResult) ReplicasAt(t int) int {
	if t < 0 || t >= len(r.Stats) {
		return 0
	}
	return r.Stats[t].ReadyReplicas
}

// RunSession drives the cluster through the workload trace under the
// given controller, one control-loop step per simulated second — the
// procedure of the paper's dynamic load-balancing experiment (Fig. 8).
// A nil controller runs the session without any load balancing (the
// overprovisioning-free worst case).
func RunSession(c *Cluster, ctrl rms.Controller, trace workload.Trace) SessionResult {
	var res SessionResult
	dur := int(trace.Duration())
	for t := 0; t < dur; t++ {
		c.SetTargetUsers(trace.UsersAt(float64(t)))
		if ctrl != nil {
			ctrl.Step(c.Now())
		}
		st := c.EndSecond()
		res.Stats = append(res.Stats, st)
		res.ServerSeconds += float64(st.Replicas)
	}
	res.TotalMigrations = c.TotalMigrations()
	res.TotalViolations = c.TotalViolations()
	res.PeakTickMS = c.PeakTickMS()
	res.PeakReplicas = c.PeakReplicas()
	res.Cost = c.Provider().Cost(c.Now())
	return res
}
