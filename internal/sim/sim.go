// Package sim is the deterministic cluster simulator behind the figure
// reproductions: it evaluates a multi-replica ROIA session second by
// second on a virtual clock, charging CPU time from a calibrated cost
// model (params.Set) instead of measuring wall time. Sessions that take
// twenty minutes on the paper's testbed replay here in milliseconds, are
// bit-for-bit reproducible across machines, and still exercise the exact
// RTF-RMS controller code (package rms) used against live RTF clusters,
// because Cluster implements rms.Cluster.
//
// Per simulated second the session driver:
//
//  1. adjusts the connected-user population to the workload trace
//     (arrivals join per the configured policy, departures leave),
//  2. runs the resource-management controller (which may migrate users,
//     lease or release replicas, or substitute resources), and
//  3. evaluates the second: every server's tick duration follows Eq. (4)
//     of the scalability model — scaled by its resource power — plus the
//     migration overhead x·t_mig charged by Eq. (5) for the migrations it
//     initiated and received this second.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"roia/internal/cloud"
	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
)

// JoinPolicy selects the server new users connect to.
type JoinPolicy int

// Join policies.
const (
	// JoinLeastLoaded connects each arrival to the replica with the
	// fewest users (a typical lobby/load-balancer frontend).
	JoinLeastLoaded JoinPolicy = iota
	// JoinRandom connects arrivals uniformly at random, leaving imbalance
	// for user migration to repair.
	JoinRandom
	// JoinFirst sends every arrival to the oldest replica, the worst case
	// for migration load.
	JoinFirst
)

// Config assembles a simulated cluster.
type Config struct {
	// Params is the application's calibrated cost model.
	Params *params.Set
	// Model is the scalability model over those parameters (supplies U).
	Model *model.Model
	// TickMS is the tick period (default 40 ms — 25 Hz).
	TickMS float64
	// Provider leases server resources; nil creates a provider with
	// cloud.DefaultClasses.
	Provider *cloud.Provider
	// BaseClass is the resource class for new replicas (default
	// "standard").
	BaseClass string
	// InitialServers is the number of replicas provisioned (and
	// immediately ready) at session start; default 1.
	InitialServers int
	// NPCs is the zone-wide NPC count m.
	NPCs int
	// Join picks the arrival policy.
	Join JoinPolicy
	// Seed drives the deterministic random source.
	Seed int64
}

type simServer struct {
	id    string
	res   *cloud.Resource
	users int
	// inbound counts users migrated in during the current second; they
	// are charged t_mig_rcv now but join the processing load only at the
	// end of the second, matching Eq. (5)'s additive overhead on top of
	// the receiver's current tick time.
	inbound  int
	draining bool
	removed  bool

	// Per-second migration charges in ms (Eq. 5's x·t_mig terms).
	migCharge float64
	// lastTick is the most recent evaluated tick duration (ms).
	lastTick float64
}

// SecondStats summarizes one evaluated second, one row of the Fig. 8 time
// series.
type SecondStats struct {
	// Time is the session second the stats describe.
	Time float64
	// Users is the zone-wide user count n.
	Users int
	// Replicas counts all leased servers; ReadyReplicas only serving ones.
	Replicas, ReadyReplicas int
	// AvgCPU is the mean CPU load of ready servers in percent
	// (tick duration / tick period, capped at 100).
	AvgCPU float64
	// MaxTickMS is the worst tick duration across ready servers.
	MaxTickMS float64
	// Violations counts servers whose tick exceeded the threshold U.
	Violations int
	// Migrations is the number of users migrated during the second.
	Migrations int
}

// Cluster is a simulated replica group for one zone.
type Cluster struct {
	cfg      Config
	provider *cloud.Provider
	servers  []*simServer
	byID     map[string]*simServer
	now      float64
	rng      *rand.Rand

	secondMigrations int
	totalMigrations  int
	totalViolations  int
	peakTick         float64
	peakReplicas     int
}

// NewCluster builds a simulated cluster. It returns an error when the
// configuration is incomplete or initial provisioning fails.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Params == nil || cfg.Model == nil {
		return nil, errors.New("sim: Config.Params and Config.Model must be set")
	}
	if cfg.TickMS <= 0 {
		cfg.TickMS = 40
	}
	if cfg.BaseClass == "" {
		cfg.BaseClass = "standard"
	}
	if cfg.InitialServers <= 0 {
		cfg.InitialServers = 1
	}
	provider := cfg.Provider
	if provider == nil {
		provider = cloud.NewProvider(cloud.DefaultClasses()...)
	}
	c := &Cluster{
		cfg:      cfg,
		provider: provider,
		byID:     make(map[string]*simServer),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := 0; i < cfg.InitialServers; i++ {
		res, err := provider.LeaseReady(cfg.BaseClass, 0)
		if err != nil {
			return nil, fmt.Errorf("sim: initial lease: %w", err)
		}
		c.attach(res)
	}
	c.peakReplicas = cfg.InitialServers
	return c, nil
}

func (c *Cluster) attach(res *cloud.Resource) *simServer {
	s := &simServer{id: res.ID, res: res}
	c.servers = append(c.servers, s)
	c.byID[s.id] = s
	return s
}

// Now returns the session clock in seconds.
func (c *Cluster) Now() float64 { return c.now }

// TotalMigrations reports the users migrated since session start.
func (c *Cluster) TotalMigrations() int { return c.totalMigrations }

// TotalViolations reports server-seconds above the threshold U.
func (c *Cluster) TotalViolations() int { return c.totalViolations }

// PeakTickMS reports the worst tick duration ever evaluated.
func (c *Cluster) PeakTickMS() float64 { return c.peakTick }

// PeakReplicas reports the largest concurrently-leased replica count.
func (c *Cluster) PeakReplicas() int { return c.peakReplicas }

// Provider exposes the cloud provider (for cost queries).
func (c *Cluster) Provider() *cloud.Provider { return c.provider }

// ready lists serving servers (provisioned, not draining, not removed).
func (c *Cluster) ready() []*simServer {
	var out []*simServer
	for _, s := range c.servers {
		if !s.removed && !s.draining && s.res.Ready(c.now) {
			out = append(out, s)
		}
	}
	return out
}

// serving lists all provisioned servers including draining ones — they
// still replicate the zone until empty.
func (c *Cluster) serving() []*simServer {
	var out []*simServer
	for _, s := range c.servers {
		if !s.removed && s.res.Ready(c.now) {
			out = append(out, s)
		}
	}
	return out
}

// --- rms.Cluster implementation ---

// Servers implements rms.Cluster.
func (c *Cluster) Servers() []rms.ServerState {
	out := make([]rms.ServerState, 0, len(c.servers))
	for _, s := range c.servers {
		if s.removed {
			continue
		}
		out = append(out, rms.ServerState{
			ID:       s.id,
			Users:    s.users + s.inbound,
			TickMS:   s.lastTick,
			Power:    s.res.Class.Power,
			Class:    s.res.Class.Name,
			Ready:    s.res.Ready(c.now),
			Draining: s.draining,
		})
	}
	return out
}

// ZoneUsers implements rms.Cluster.
func (c *Cluster) ZoneUsers() int {
	n := 0
	for _, s := range c.servers {
		if !s.removed {
			n += s.users + s.inbound
		}
	}
	return n
}

// NPCCount implements rms.Cluster.
func (c *Cluster) NPCCount() int { return c.cfg.NPCs }

// Migrate implements rms.Cluster: it moves users instantly and charges
// both ends the model's migration overhead for this second.
func (c *Cluster) Migrate(src, dst string, count int) error {
	if count <= 0 {
		return nil
	}
	from, ok := c.byID[src]
	if !ok || from.removed {
		return fmt.Errorf("sim: migrate from unknown server %q", src)
	}
	to, ok := c.byID[dst]
	if !ok || to.removed {
		return fmt.Errorf("sim: migrate to unknown server %q", dst)
	}
	if !to.res.Ready(c.now) {
		return fmt.Errorf("sim: migration target %q not ready", dst)
	}
	if count > from.users {
		count = from.users
	}
	if count == 0 {
		return nil
	}
	n := c.ZoneUsers()
	from.users -= count
	to.inbound += count
	from.migCharge += float64(count) * c.cfg.Params.MigIniAt(n) / from.res.Class.Power
	to.migCharge += float64(count) * c.cfg.Params.MigRcvAt(n) / to.res.Class.Power
	c.secondMigrations += count
	c.totalMigrations += count
	return nil
}

// AddReplica implements rms.Cluster.
func (c *Cluster) AddReplica() (string, error) {
	res, err := c.provider.Lease(c.cfg.BaseClass, c.now)
	if err != nil {
		return "", err
	}
	s := c.attach(res)
	if n := c.leasedCount(); n > c.peakReplicas {
		c.peakReplicas = n
	}
	return s.id, nil
}

// RemoveReplica implements rms.Cluster.
func (c *Cluster) RemoveReplica(id string) error {
	s, ok := c.byID[id]
	if !ok || s.removed {
		return fmt.Errorf("sim: remove of unknown server %q", id)
	}
	if s.users+s.inbound > 0 {
		return fmt.Errorf("sim: remove of non-empty server %q (%d users)", id, s.users+s.inbound)
	}
	if len(c.serving()) <= 1 && s.res.Ready(c.now) {
		return errors.New("sim: refusing to remove the last replica of the zone")
	}
	s.removed = true
	delete(c.byID, id)
	return c.provider.Release(id, c.now)
}

// SetDraining implements rms.Cluster.
func (c *Cluster) SetDraining(id string, on bool) error {
	s, ok := c.byID[id]
	if !ok || s.removed {
		return fmt.Errorf("sim: drain of unknown server %q", id)
	}
	s.draining = on
	return nil
}

// Substitute implements rms.Cluster: leases a stronger resource as a new
// replica; the caller drains the old server once the replacement is ready.
func (c *Cluster) Substitute(id string) (string, error) {
	s, ok := c.byID[id]
	if !ok || s.removed {
		return "", fmt.Errorf("sim: substitute of unknown server %q", id)
	}
	class, err := c.provider.StrongerClass(s.res.Class.Name)
	if err != nil {
		return "", err
	}
	res, err := c.provider.Lease(class.Name, c.now)
	if err != nil {
		return "", err
	}
	ns := c.attach(res)
	if n := c.leasedCount(); n > c.peakReplicas {
		c.peakReplicas = n
	}
	return ns.id, nil
}

func (c *Cluster) leasedCount() int {
	n := 0
	for _, s := range c.servers {
		if !s.removed {
			n++
		}
	}
	return n
}

// --- session driving ---

// SetTargetUsers adjusts the connected population to the trace's target:
// arrivals join per the configured policy, departures leave weighted by
// server occupancy.
func (c *Cluster) SetTargetUsers(target int) {
	if target < 0 {
		target = 0
	}
	cur := c.ZoneUsers()
	for cur < target {
		s := c.pickJoinServer()
		if s == nil {
			break // no ready server can admit users
		}
		s.users++
		cur++
	}
	for cur > target {
		s := c.pickLeaveServer()
		if s == nil {
			break
		}
		s.users--
		cur--
	}
}

func (c *Cluster) pickJoinServer() *simServer {
	ready := c.ready()
	if len(ready) == 0 {
		return nil
	}
	switch c.cfg.Join {
	case JoinRandom:
		return ready[c.rng.Intn(len(ready))]
	case JoinFirst:
		return ready[0]
	default: // JoinLeastLoaded
		sort.SliceStable(ready, func(i, j int) bool { return ready[i].users < ready[j].users })
		return ready[0]
	}
}

// pickLeaveServer removes a departing user from a server chosen weighted
// by occupancy (each connected user is equally likely to quit).
func (c *Cluster) pickLeaveServer() *simServer {
	total := c.ZoneUsers()
	if total == 0 {
		return nil
	}
	pick := c.rng.Intn(total)
	for _, s := range c.servers {
		if s.removed || s.users == 0 {
			continue
		}
		if pick < s.users {
			return s
		}
		pick -= s.users
	}
	return nil
}

// EndSecond evaluates the elapsed second — every serving server's tick
// duration via Eq. (4), scaled by resource power, plus this second's
// migration charges — records the statistics, clears the charges and
// advances the clock.
func (c *Cluster) EndSecond() SecondStats {
	serving := c.serving()
	n := c.ZoneUsers()
	l := len(serving)
	st := SecondStats{
		Time:          c.now,
		Users:         n,
		Replicas:      c.leasedCount(),
		ReadyReplicas: l,
		Migrations:    c.secondMigrations,
	}
	cpuSum := 0.0
	for _, s := range serving {
		tick := c.cfg.Model.TickTimeUneven(l, n, c.cfg.NPCs, s.users)/s.res.Class.Power + s.migCharge
		s.lastTick = tick
		s.migCharge = 0
		s.users += s.inbound
		s.inbound = 0
		if tick > st.MaxTickMS {
			st.MaxTickMS = tick
		}
		if tick > c.peakTick {
			c.peakTick = tick
		}
		if tick > c.cfg.Model.U {
			st.Violations++
		}
		cpu := tick / c.cfg.TickMS * 100
		if cpu > 100 {
			cpu = 100
		}
		cpuSum += cpu
	}
	if l > 0 {
		st.AvgCPU = cpuSum / float64(l)
	}
	c.totalViolations += st.Violations
	c.secondMigrations = 0
	c.now++
	return st
}
