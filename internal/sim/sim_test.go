package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"roia/internal/cloud"
	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
	"roia/internal/workload"
)

func testModel(t *testing.T) (*params.Set, *model.Model) {
	t.Helper()
	p := params.RTFDemo()
	mdl, err := model.New(p, params.UFirstPersonShooter, params.CDefault)
	if err != nil {
		t.Fatal(err)
	}
	return p, mdl
}

func testCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Params == nil {
		cfg.Params, cfg.Model = testModel(t)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	p, mdl := testModel(t)
	c, err := NewCluster(Config{Params: p, Model: mdl, InitialServers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Servers()); got != 3 {
		t.Fatalf("servers = %d", got)
	}
	for _, s := range c.Servers() {
		if !s.Ready {
			t.Fatal("initial server not ready")
		}
	}
}

func TestSetTargetUsersLeastLoaded(t *testing.T) {
	c := testCluster(t, Config{InitialServers: 2, Join: JoinLeastLoaded})
	c.SetTargetUsers(10)
	s := c.Servers()
	if s[0].Users != 5 || s[1].Users != 5 {
		t.Fatalf("least-loaded join uneven: %d/%d", s[0].Users, s[1].Users)
	}
	// Departures shrink the population.
	c.SetTargetUsers(4)
	if got := c.ZoneUsers(); got != 4 {
		t.Fatalf("users after shrink = %d", got)
	}
	c.SetTargetUsers(0)
	if got := c.ZoneUsers(); got != 0 {
		t.Fatalf("users after drain to zero = %d", got)
	}
	c.SetTargetUsers(-5)
	if got := c.ZoneUsers(); got != 0 {
		t.Fatalf("negative target: %d", got)
	}
}

func TestSetTargetUsersJoinFirst(t *testing.T) {
	c := testCluster(t, Config{InitialServers: 2, Join: JoinFirst})
	c.SetTargetUsers(10)
	s := c.Servers()
	if s[0].Users != 10 || s[1].Users != 0 {
		t.Fatalf("join-first distribution: %d/%d", s[0].Users, s[1].Users)
	}
}

func TestMigrateMovesAndCharges(t *testing.T) {
	p, mdl := testModel(t)
	c := testCluster(t, Config{Params: p, Model: mdl, InitialServers: 2, Join: JoinFirst})
	c.SetTargetUsers(100)
	ids := []string{c.Servers()[0].ID, c.Servers()[1].ID}
	if err := c.Migrate(ids[0], ids[1], 30); err != nil {
		t.Fatal(err)
	}
	s := c.Servers()
	if s[0].Users != 70 || s[1].Users != 30 {
		t.Fatalf("post-migration users: %d/%d", s[0].Users, s[1].Users)
	}
	if c.ZoneUsers() != 100 {
		t.Fatalf("users not conserved: %d", c.ZoneUsers())
	}
	st := c.EndSecond()
	if st.Migrations != 30 {
		t.Fatalf("migrations = %d", st.Migrations)
	}
	// Source tick: Eq.(4) at its post-initiation load plus 30·t_mig_ini.
	wantSrc := mdl.TickTimeUneven(2, 100, 0, 70) + 30*p.MigIniAt(100)
	// Receiver tick: Eq.(4) at its PRE-migration load plus 30·t_mig_rcv
	// (the migrated users join the load next second).
	wantDst := mdl.TickTimeUneven(2, 100, 0, 0) + 30*p.MigRcvAt(100)
	got := c.Servers()
	if math.Abs(got[0].TickMS-wantSrc) > 1e-9 {
		t.Fatalf("source tick = %g, want %g", got[0].TickMS, wantSrc)
	}
	if math.Abs(got[1].TickMS-wantDst) > 1e-9 {
		t.Fatalf("receiver tick = %g, want %g", got[1].TickMS, wantDst)
	}
	// Charges are per-second: the next second has no migration overhead.
	st = c.EndSecond()
	if st.Migrations != 0 {
		t.Fatal("migration charge leaked into the next second")
	}
}

func TestMigrateErrors(t *testing.T) {
	c := testCluster(t, Config{InitialServers: 1, Join: JoinFirst})
	c.SetTargetUsers(10)
	id := c.Servers()[0].ID
	if err := c.Migrate("ghost", id, 1); err == nil {
		t.Fatal("migrate from unknown server")
	}
	if err := c.Migrate(id, "ghost", 1); err == nil {
		t.Fatal("migrate to unknown server")
	}
	// A provisioning replica cannot receive migrations.
	nid, err := c.AddReplica()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Migrate(id, nid, 1); err == nil {
		t.Fatal("migrated to a provisioning replica")
	}
	// Zero and negative counts are no-ops.
	if err := c.Migrate(id, nid, 0); err != nil {
		t.Fatal(err)
	}
	// Count clamps at the source's population.
	for c.Now() < 100 {
		c.EndSecond()
	}
	if err := c.Migrate(id, nid, 99); err != nil {
		t.Fatal(err)
	}
	if got := c.Servers()[1].Users; got != 10 {
		t.Fatalf("clamped migration moved %d users", got)
	}
}

func TestAddReplicaProvisioningDelay(t *testing.T) {
	c := testCluster(t, Config{InitialServers: 1})
	id, err := c.AddReplica()
	if err != nil {
		t.Fatal(err)
	}
	var fresh rms.ServerState
	for _, s := range c.Servers() {
		if s.ID == id {
			fresh = s
		}
	}
	if fresh.Ready {
		t.Fatal("fresh replica ready without startup delay")
	}
	// Default standard class: 30 s startup.
	for i := 0; i < 31; i++ {
		c.EndSecond()
	}
	for _, s := range c.Servers() {
		if s.ID == id && !s.Ready {
			t.Fatal("replica not ready after startup delay")
		}
	}
}

func TestRemoveReplicaGuards(t *testing.T) {
	c := testCluster(t, Config{InitialServers: 2, Join: JoinFirst})
	c.SetTargetUsers(5)
	ids := []string{c.Servers()[0].ID, c.Servers()[1].ID}
	if err := c.RemoveReplica(ids[0]); err == nil {
		t.Fatal("removed a non-empty server")
	}
	if err := c.RemoveReplica("ghost"); err == nil {
		t.Fatal("removed an unknown server")
	}
	if err := c.RemoveReplica(ids[1]); err != nil {
		t.Fatal(err)
	}
	// Last replica is protected.
	c.SetTargetUsers(0)
	if err := c.RemoveReplica(ids[0]); err == nil {
		t.Fatal("removed the last replica")
	}
	if c.Provider().ActiveCount() != 1 {
		t.Fatalf("provider active = %d", c.Provider().ActiveCount())
	}
}

func TestSubstituteLeasesStrongerClass(t *testing.T) {
	c := testCluster(t, Config{InitialServers: 1})
	old := c.Servers()[0].ID
	nid, err := c.Substitute(old)
	if err != nil {
		t.Fatal(err)
	}
	var ns rms.ServerState
	for _, s := range c.Servers() {
		if s.ID == nid {
			ns = s
		}
	}
	if ns.Power <= 1 {
		t.Fatalf("substitute power = %g, want > 1", ns.Power)
	}
	if !strings.HasPrefix(nid, "highcpu") {
		t.Fatalf("substitute class id = %q", nid)
	}
}

func TestEndSecondMatchesModelClosedForm(t *testing.T) {
	p, mdl := testModel(t)
	c := testCluster(t, Config{Params: p, Model: mdl, InitialServers: 1})
	c.SetTargetUsers(100)
	st := c.EndSecond()
	want := mdl.TickTime(1, 100, 0)
	if math.Abs(st.MaxTickMS-want) > 1e-9 {
		t.Fatalf("tick = %g, want Eq.(1) %g", st.MaxTickMS, want)
	}
	if st.Users != 100 || st.ReadyReplicas != 1 {
		t.Fatalf("stats = %+v", st)
	}
	wantCPU := want / 40 * 100
	if math.Abs(st.AvgCPU-wantCPU) > 1e-9 {
		t.Fatalf("cpu = %g, want %g", st.AvgCPU, wantCPU)
	}
}

func TestPowerScalesTickTime(t *testing.T) {
	p, mdl := testModel(t)
	prov := cloud.NewProvider(cloud.Class{Name: "fast", Power: 2})
	c := testCluster(t, Config{Params: p, Model: mdl, Provider: prov, BaseClass: "fast", InitialServers: 1})
	c.SetTargetUsers(100)
	st := c.EndSecond()
	want := mdl.TickTime(1, 100, 0) / 2
	if math.Abs(st.MaxTickMS-want) > 1e-9 {
		t.Fatalf("tick on 2x machine = %g, want %g", st.MaxTickMS, want)
	}
}

func TestViolationCounting(t *testing.T) {
	p, mdl := testModel(t)
	c := testCluster(t, Config{Params: p, Model: mdl, InitialServers: 1})
	c.SetTargetUsers(300) // far beyond n_max(1)=235
	st := c.EndSecond()
	if st.Violations != 1 {
		t.Fatalf("violations = %d", st.Violations)
	}
	if c.TotalViolations() != 1 {
		t.Fatalf("total violations = %d", c.TotalViolations())
	}
	if c.PeakTickMS() <= 40 {
		t.Fatalf("peak tick = %g", c.PeakTickMS())
	}
}

func TestPaperSessionNoViolationsWithManager(t *testing.T) {
	// The paper's dynamic load-balancing experiment (Fig. 8): "the tick
	// duration on all application servers did not exceed 40 ms, i.e.,
	// performance requirements were not violated."
	p, mdl := testModel(t)
	c := testCluster(t, Config{Params: p, Model: mdl, Seed: 1})
	mgr := rms.NewManager(c, rms.Config{Model: mdl})
	res := RunSession(c, mgr, workload.PaperSession())
	if res.TotalViolations != 0 {
		t.Fatalf("violations = %d, paper reports none", res.TotalViolations)
	}
	if res.PeakTickMS >= 40 {
		t.Fatalf("peak tick = %g ms, must stay below U=40", res.PeakTickMS)
	}
	// Replication enactment kicked in as users grew (Fig. 8 shape)...
	if res.PeakReplicas < 2 {
		t.Fatalf("peak replicas = %d, replication never enacted", res.PeakReplicas)
	}
	// ...and resources were removed again on the decline.
	if last := res.Stats[len(res.Stats)-1]; last.ReadyReplicas != 1 {
		t.Fatalf("session ends with %d replicas, want scale-down to 1", last.ReadyReplicas)
	}
	// Average CPU stays below saturation — RTF-RMS "intentionally causes
	// this behavior" via the 80% trigger.
	if res.MaxAvgCPU() >= 100 {
		t.Fatalf("avg CPU saturated: %g", res.MaxAvgCPU())
	}
}

func TestSessionDeterministicReplay(t *testing.T) {
	run := func() SessionResult {
		p, mdl := testModel(t)
		c := testCluster(t, Config{Params: p, Model: mdl, Seed: 7, Join: JoinRandom})
		mgr := rms.NewManager(c, rms.Config{Model: mdl})
		return RunSession(c, mgr, workload.PaperSession())
	}
	a, b := run(), run()
	if a.TotalMigrations != b.TotalMigrations || a.TotalViolations != b.TotalViolations ||
		a.PeakTickMS != b.PeakTickMS || a.ServerSeconds != b.ServerSeconds {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
	for i := range a.Stats {
		if a.Stats[i] != b.Stats[i] {
			t.Fatalf("stats diverged at second %d", i)
		}
	}
}

func TestSessionWithoutControllerViolates(t *testing.T) {
	// Without load balancing a single server must eventually violate the
	// threshold under the paper workload (300 > n_max(1) = 235).
	p, mdl := testModel(t)
	c := testCluster(t, Config{Params: p, Model: mdl, Seed: 1})
	res := RunSession(c, nil, workload.PaperSession())
	if res.TotalViolations == 0 {
		t.Fatal("uncontrolled session never violated — workload too light to be meaningful")
	}
	if res.PeakReplicas != 1 {
		t.Fatalf("replicas changed without a controller: %d", res.PeakReplicas)
	}
}

func TestSessionResultHelpers(t *testing.T) {
	res := SessionResult{Stats: []SecondStats{
		{AvgCPU: 10, ReadyReplicas: 1},
		{AvgCPU: 55, ReadyReplicas: 2},
		{AvgCPU: 20, ReadyReplicas: 2},
	}}
	if got := res.MaxAvgCPU(); got != 55 {
		t.Fatalf("MaxAvgCPU = %g", got)
	}
	if res.ReplicasAt(1) != 2 || res.ReplicasAt(-1) != 0 || res.ReplicasAt(99) != 0 {
		t.Fatal("ReplicasAt wrong")
	}
}

func TestSessionInvariantsUnderRandomTraces(t *testing.T) {
	// Property: for arbitrary workload shapes under the model-driven
	// manager, the simulated session conserves users (population always
	// equals the trace target while at least one server can admit), never
	// reports negative statistics, and keeps leased ≥ ready replicas.
	p, mdl := testModel(t)
	prop := func(seed int64, base8, amp8, spike8 uint8) bool {
		trace := workload.Piecewise{Phases: []workload.Phase{
			{Until: 100, Trace: workload.Ramp{From: 0, To: int(base8), Len: 100}},
			{Until: 250, Trace: workload.Sine{Base: int(base8), Amplitude: int(amp8 % 60), Period: 70, Len: 150}},
			{Until: 300, Trace: workload.Spike{Base: int(base8), Peak: int(base8) + int(spike8), Start: 20, Width: 25, Len: 50}},
		}}
		c, err := NewCluster(Config{Params: p, Model: mdl, Seed: seed, Join: JoinRandom})
		if err != nil {
			return false
		}
		mgr := rms.NewManager(c, rms.Config{Model: mdl})
		dur := int(trace.Duration())
		for ts := 0; ts < dur; ts++ {
			target := trace.UsersAt(float64(ts))
			c.SetTargetUsers(target)
			if c.ZoneUsers() != target {
				return false // conservation broken
			}
			mgr.Step(c.Now())
			if c.ZoneUsers() != target {
				return false // migrations must not create or destroy users
			}
			st := c.EndSecond()
			if st.Users < 0 || st.Migrations < 0 || st.MaxTickMS < 0 {
				return false
			}
			if st.ReadyReplicas > st.Replicas || st.Replicas < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineControllersRunClean(t *testing.T) {
	p, mdl := testModel(t)
	for _, tc := range []struct {
		name string
		mk   func(c *Cluster) rms.Controller
	}{
		{"static-interval", func(c *Cluster) rms.Controller {
			return &rms.StaticInterval{Cluster: c, IntervalSec: 60, UpperMS: 32, LowerMS: 8, MaxReplicas: 8}
		}},
		{"static-threshold", func(c *Cluster) rms.Controller {
			return &rms.StaticThreshold{Cluster: c, MaxUsersPerServer: 150, MaxReplicas: 8}
		}},
		{"proportional", func(c *Cluster) rms.Controller {
			return &rms.Proportional{Cluster: c}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := testCluster(t, Config{Params: p, Model: mdl, Seed: 3, Join: JoinRandom, InitialServers: 2})
			res := RunSession(c, tc.mk(c), workload.PaperSession())
			if got := res.Stats[len(res.Stats)-1].Users; got != 0 {
				t.Fatalf("session did not drain: %d users left", got)
			}
			if c.ZoneUsers() != 0 {
				t.Fatal("user conservation broken")
			}
		})
	}
}

func TestCoordinatorOverTwoSimulatedZones(t *testing.T) {
	// Two zones with opposite-phase populations (players commuting
	// between areas), each with its own simulated cluster; one
	// coordinator drives both through the same model. Both zones must
	// scale independently and stay violation-free.
	p, mdl := testModel(t)
	mk := func(seed int64, initial int) *Cluster {
		return testCluster(t, Config{Params: p, Model: mdl, Seed: seed, InitialServers: initial})
	}
	// West opens at its 250-user peak and is provisioned for it; east
	// starts in its trough on one server.
	west, east := mk(1, 2), mk(2, 1)
	co := rms.NewCoordinator()
	co.Add(1, rms.NewManager(west, rms.Config{Model: mdl}))
	co.Add(2, rms.NewManager(east, rms.Config{Model: mdl}))

	duration := 1200.0
	westTrace := workload.Piecewise{Phases: []workload.Phase{
		{Until: 600, Trace: workload.Ramp{From: 250, To: 40, Len: 600}},
		{Until: 1200, Trace: workload.Ramp{From: 40, To: 250, Len: 600}},
	}}
	eastTrace := workload.Piecewise{Phases: []workload.Phase{
		{Until: 600, Trace: workload.Ramp{From: 40, To: 250, Len: 600}},
		{Until: 1200, Trace: workload.Ramp{From: 250, To: 40, Len: 600}},
	}}

	westPeak, eastPeak := 0, 0
	for ts := 0.0; ts < duration; ts++ {
		west.SetTargetUsers(westTrace.UsersAt(ts))
		east.SetTargetUsers(eastTrace.UsersAt(ts))
		co.Step(ts)
		ws := west.EndSecond()
		es := east.EndSecond()
		if ws.ReadyReplicas > westPeak {
			westPeak = ws.ReadyReplicas
		}
		if es.ReadyReplicas > eastPeak {
			eastPeak = es.ReadyReplicas
		}
	}
	if west.TotalViolations() != 0 || east.TotalViolations() != 0 {
		t.Fatalf("violations: west=%d east=%d", west.TotalViolations(), east.TotalViolations())
	}
	// Both zones replicated during their respective peaks (250 > trigger
	// 188) and scaled back down during their troughs.
	if westPeak < 2 || eastPeak < 2 {
		t.Fatalf("zones never replicated: west=%d east=%d", westPeak, eastPeak)
	}
	// At the end, west is at its peak again (2 replicas) and east shrunk.
	if lastWest := len(west.ready()); lastWest < 2 {
		t.Fatalf("west ended with %d replicas at peak load", lastWest)
	}
	if lastEast := len(east.ready()); lastEast != 1 {
		t.Fatalf("east ended with %d replicas at trough load", lastEast)
	}
}

func TestManagerBeatsStaticIntervalOnViolations(t *testing.T) {
	// Section IV: "the static approach causes an unnecessarily high
	// amount of additional workload which may lead to a lower application
	// performance". Under a steep ramp, the static-interval baseline
	// reacts late (fixed schedule, static thresholds) and then equalizes
	// without migration budgets — violating the 40 ms requirement. The
	// model-driven manager triggers at 80 % of n_max and paces migrations
	// by Eq. (5), staying clean on the same workload.
	p, mdl := testModel(t)
	trace := workload.Piecewise{Phases: []workload.Phase{
		{Until: 520, Trace: workload.Ramp{From: 0, To: 260, Len: 520}},
		{Until: 720, Trace: workload.Constant{N: 260, Len: 200}},
	}}

	cm := testCluster(t, Config{Params: p, Model: mdl, Seed: 5})
	managed := RunSession(cm, rms.NewManager(cm, rms.Config{Model: mdl}), trace)

	cb := testCluster(t, Config{Params: p, Model: mdl, Seed: 5})
	baseline := RunSession(cb, &rms.StaticInterval{Cluster: cb, IntervalSec: 60, UpperMS: 32, LowerMS: 8}, trace)

	if managed.TotalViolations != 0 {
		t.Fatalf("managed session violated %d times", managed.TotalViolations)
	}
	if baseline.TotalViolations == 0 {
		t.Fatal("static baseline never violated — comparison workload too light")
	}
	if baseline.PeakTickMS <= managed.PeakTickMS {
		t.Fatalf("baseline peak tick %.2f <= managed %.2f", baseline.PeakTickMS, managed.PeakTickMS)
	}
}
