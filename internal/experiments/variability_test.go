package experiments

import "testing"

func TestVariabilityHarnessShape(t *testing.T) {
	res, err := Variability(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultVariabilityScenarios()
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(want))
	}
	for i, r := range res.Rows {
		sc := want[i]
		if r.Scenario.Name != sc.Name {
			t.Fatalf("row %d scenario = %q, want %q", i, r.Scenario.Name, sc.Name)
		}
		if wantSamples := uint64(r.Ticks * sc.Replicas); r.Samples != wantSamples {
			t.Errorf("%s: samples = %d, want %d (ticks × replicas)", sc.Name, r.Samples, wantSamples)
		}
		if r.MeanMS <= 0 {
			t.Errorf("%s: mean = %g, want > 0 (real measured ticks)", sc.Name, r.MeanMS)
		}
		// Quantiles of one distribution must be monotone.
		if !(r.P50MS <= r.P99MS && r.P99MS <= r.P999MS && r.P999MS <= r.MaxMS+1e-9) {
			t.Errorf("%s: quantiles not monotone: p50=%g p99=%g p999=%g max=%g",
				sc.Name, r.P50MS, r.P99MS, r.P999MS, r.MaxMS)
		}
		if r.CoV != 0 {
			t.Errorf("%s: CoV = %g, want 0 for a single run", sc.Name, r.CoV)
		}
		if !r.NMaxOK || r.NMax <= 0 {
			t.Errorf("%s: n_max = %d (ok=%v), want bounded positive capacity", sc.Name, r.NMax, r.NMaxOK)
		}
	}
	if out := FormatVariability(res); len(out) == 0 {
		t.Fatal("empty formatted table")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if cv := coefficientOfVariation([]float64{5}); cv != 0 {
		t.Fatalf("single sample CoV = %g, want 0", cv)
	}
	if cv := coefficientOfVariation([]float64{3, 3, 3}); cv != 0 {
		t.Fatalf("constant CoV = %g, want 0", cv)
	}
	// mean 10, population stddev 2 → CoV 0.2.
	if cv := coefficientOfVariation([]float64{8, 12}); cv < 0.199 || cv > 0.201 {
		t.Fatalf("CoV = %g, want 0.2", cv)
	}
}
