package experiments

import (
	"roia/internal/rms"
	"roia/internal/sim"
	"roia/internal/workload"
)

// PacingRow summarizes one arm of the migration-pacing ablation.
type PacingRow struct {
	Name                   string
	Violations, Migrations int
	PeakTickMS             float64
	MaxMigrationsPerSecond int
}

// PacingAblation isolates the paper's contribution over its predecessor
// model [15]: the migration-overhead terms t_mig_ini/t_mig_rcv and the
// Eq. (5) per-second budgets. Both arms run the identical manager on the
// identical Fig. 8 workload; the ablated arm equalizes without budgets
// (as a model without migration terms would), moving the n/(l(l+1))
// post-replication share in a single burst.
func PacingAblation(seed int64) ([]PacingRow, error) {
	rows := make([]PacingRow, 0, 2)
	for _, arm := range []struct {
		name    string
		unpaced bool
	}{
		{"paced (Eq. 5 budgets)", false},
		{"unpaced ([15]-style)", true},
	} {
		p, mdl := DefaultModel()
		cluster, err := sim.NewCluster(sim.Config{Params: p, Model: mdl, Seed: seed})
		if err != nil {
			return nil, err
		}
		mgr := rms.NewManager(cluster, rms.Config{Model: mdl, UnpacedMigrations: arm.unpaced})
		res := sim.RunSession(cluster, mgr, workload.PaperSession())
		maxPerSec := 0
		for _, s := range res.Stats {
			if s.Migrations > maxPerSec {
				maxPerSec = s.Migrations
			}
		}
		rows = append(rows, PacingRow{
			Name:                   arm.name,
			Violations:             res.TotalViolations,
			Migrations:             res.TotalMigrations,
			PeakTickMS:             res.PeakTickMS,
			MaxMigrationsPerSecond: maxPerSec,
		})
	}
	return rows, nil
}
