package experiments

import (
	"fmt"

	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
	"roia/internal/sim"
	"roia/internal/workload"
)

// BaselineRow summarizes one load-balancing strategy on the Fig. 8
// workload.
type BaselineRow struct {
	Name string
	// Violations counts server-seconds above U, Migrations the users
	// moved, PeakReplicas the largest fleet, ServerSeconds the integrated
	// resource usage and Cost the provider bill.
	Violations, Migrations, PeakReplicas int
	PeakTickMS                           float64
	ServerSeconds, Cost                  float64
}

// BaselineComparison runs the paper-session workload under the
// model-driven RTF-RMS and the baseline strategies of Sections IV/VI on
// identical clusters, quantifying the paper's argument that static
// strategies either violate performance requirements or waste resources.
func BaselineComparison(seed int64) ([]BaselineRow, error) {
	type entry struct {
		name    string
		initial int
		join    sim.JoinPolicy
		mk      func(c *sim.Cluster, mdl *model.Model) rms.Controller
	}
	entries := []entry{
		{"model-rms", 1, sim.JoinLeastLoaded, func(c *sim.Cluster, mdl *model.Model) rms.Controller {
			return rms.NewManager(c, rms.Config{Model: mdl})
		}},
		{"static-interval-60s", 1, sim.JoinLeastLoaded, func(c *sim.Cluster, mdl *model.Model) rms.Controller {
			return &rms.StaticInterval{Cluster: c, IntervalSec: 60, UpperMS: 32, LowerMS: 8, MaxReplicas: 8}
		}},
		{"static-threshold-150", 1, sim.JoinLeastLoaded, func(c *sim.Cluster, mdl *model.Model) rms.Controller {
			return &rms.StaticThreshold{Cluster: c, MaxUsersPerServer: 150, MaxReplicas: 8}
		}},
		{"proportional-fixed-3", 3, sim.JoinRandom, func(c *sim.Cluster, mdl *model.Model) rms.Controller {
			return &rms.Proportional{Cluster: c}
		}},
		{"no-balancing", 1, sim.JoinLeastLoaded, func(*sim.Cluster, *model.Model) rms.Controller {
			return nil
		}},
	}
	p, mdl := DefaultModel()
	trace := workload.PaperSession()
	rows := make([]BaselineRow, 0, len(entries))
	for _, e := range entries {
		cluster, err := sim.NewCluster(sim.Config{
			Params: p, Model: mdl, Seed: seed, InitialServers: e.initial, Join: e.join,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.name, err)
		}
		var ctrl rms.Controller
		if mk := e.mk(cluster, mdl); mk != nil {
			ctrl = mk
		}
		res := sim.RunSession(cluster, ctrl, trace)
		rows = append(rows, BaselineRow{
			Name:          e.name,
			Violations:    res.TotalViolations,
			Migrations:    res.TotalMigrations,
			PeakReplicas:  res.PeakReplicas,
			PeakTickMS:    res.PeakTickMS,
			ServerSeconds: res.ServerSeconds,
			Cost:          res.Cost,
		})
	}
	return rows, nil
}

// FormatBaselines renders the comparison as an aligned text table.
func FormatBaselines(rows []BaselineRow) string {
	out := fmt.Sprintf("%-22s %10s %10s %8s %10s %11s %8s\n",
		"strategy", "violations", "migrations", "replicas", "peak tick", "server-sec", "cost")
	for _, r := range rows {
		out += fmt.Sprintf("%-22s %10d %10d %8d %9.2fms %11.0f %8.2f\n",
			r.Name, r.Violations, r.Migrations, r.PeakReplicas, r.PeakTickMS, r.ServerSeconds, r.Cost)
	}
	return out
}

// ProfileRow summarizes the model thresholds of one application profile
// (the qualitative FPS-vs-RPG comparison of Section III-C).
type ProfileRow struct {
	Name string
	// U is the tick-duration threshold in ms.
	U float64
	// NMax1 is the single-server capacity; Unbounded is set when the
	// profile never exhausts the search cap (RPG at U = 1.5 s).
	NMax1     int
	Unbounded bool
	// LMax is the maximum useful replica count at c = 0.15.
	LMax int
	// XIni200 is the migration budget of an idle-to-half-loaded server
	// with 200 zone users.
	XIni200 int
}

// ProfileComparison instantiates the model for the FPS profile and the
// role-playing profile of Section III-C, showing how the same equations
// produce application-specific thresholds: the RPG's relaxed threshold
// and cheaper input processing yield far higher capacity limits.
func ProfileComparison() []ProfileRow {
	rows := make([]ProfileRow, 0, 2)
	for _, pc := range []struct {
		name string
		set  *params.Set
		u    float64
	}{
		{"fps (rtfdemo)", params.RTFDemo(), params.UFirstPersonShooter},
		{"rpg", params.RPG(), params.URolePlaying},
	} {
		mdl, err := model.New(pc.set, pc.u, params.CDefault)
		if err != nil {
			panic(err)
		}
		mdl.UserCap = 1 << 16
		nmax, bounded := mdl.MaxUsers(1, 0)
		lmax, _ := mdl.MaxReplicas(0)
		base := mdl.TickTimeUneven(1, 200, 0, 100)
		x := maxMigrations(base, pc.set.MigIniAt(200), mdl.U)
		rows = append(rows, ProfileRow{
			Name: pc.name, U: pc.u,
			NMax1: nmax, Unbounded: !bounded,
			LMax: lmax, XIni200: x,
		})
	}
	return rows
}
