package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"roia/internal/telemetry"
)

// TestFig8DecisionLogJSONL runs the paper's dynamic load-balancing session
// with the decision audit log enabled and checks the JSONL export: one
// valid record per control-loop second, and every scale-up/scale-down
// action carries the n_max/l_max threshold values that justified it.
func TestFig8DecisionLogJSONL(t *testing.T) {
	var sb strings.Builder
	log := telemetry.NewAuditLog(&sb)
	res, err := Fig8Audited(1, log)
	if err != nil {
		t.Fatal(err)
	}
	if log.Err() != nil {
		t.Fatal(log.Err())
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(res.Session.Stats) {
		t.Fatalf("decision log has %d lines, session ran %d seconds", len(lines), len(res.Session.Stats))
	}

	scaleKinds := map[string]bool{"replicate": true, "substitute": true, "drain": true, "remove": true}
	scaleActions := 0
	migrations := 0
	for i, line := range lines {
		var rec telemetry.DecisionRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if rec.Time != float64(i) {
			t.Fatalf("line %d has time %g", i, rec.Time)
		}
		for _, a := range rec.Actions {
			if scaleKinds[a.Kind] {
				scaleActions++
				if rec.NMax <= 0 || rec.LMax <= 0 || rec.Trigger <= 0 {
					t.Fatalf("scale action %q at t=%g lacks thresholds: n_max=%d trigger=%d l_max=%d",
						a.Kind, rec.Time, rec.NMax, rec.Trigger, rec.LMax)
				}
				if a.Reason == "" {
					t.Fatalf("scale action %q at t=%g has no reason", a.Kind, rec.Time)
				}
			}
			if a.Kind == "migrate" {
				migrations++
				if a.XMaxIni < 0 || a.XMaxRcv < 0 {
					t.Fatalf("migration at t=%g has negative budgets: %+v", rec.Time, a)
				}
			}
		}
	}
	// The paper session scales to several replicas and back: the log must
	// actually contain scale decisions and paced migrations.
	if scaleActions == 0 {
		t.Fatal("session produced no scale actions in the decision log")
	}
	if migrations == 0 {
		t.Fatal("session produced no migrations in the decision log")
	}
}
