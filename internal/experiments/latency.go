package experiments

import (
	"time"

	"roia/internal/bots"
	"roia/internal/game"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

// LatencyResult summarizes the end-to-end latency probe: the distribution
// of client-perceived input→update RTTs over a live fleet run.
type LatencyResult struct {
	// Users is the steady bot population, Ticks the measured tick count.
	Users, Ticks int
	// TicksPerSec is the unpaced processing throughput during the
	// measurement window (how much headroom the pipeline has under 1/U).
	TicksPerSec float64
	// Client is the merged input→update RTT distribution across all bots,
	// with deadline-violation accounting against DeadlineMS.
	Client telemetry.LatencySnapshot
	// DeadlineMS is the QoS deadline the violations were counted against
	// (one nominal 40 ms tick interval, the paper's U for the RTFDemo).
	DeadlineMS float64
}

// LatencyProbe runs the client-perceived response-time experiment: a live
// two-replica fleet processing the shooter, a steady bot population whose
// every input is sequence-stamped, and the per-input RTT measured from the
// echoed ack in each state update. Ticks are unpaced, so the RTTs expose
// the processing pipeline itself (input queueing + tick computation +
// delivery), the part of response time the scalability model budgets;
// network RTT would add on top in a deployment.
func LatencyProbe(seed int64) (*LatencyResult, error) {
	const (
		users      = 120
		warmTicks  = 50
		probeTicks = 300
		deadlineMS = 40 // one tick interval at the paper's 25 Hz
	)
	net := transport.NewLoopback()
	defer net.Close()
	fl, err := fleet.New(fleet.Config{
		Network:    net,
		Zone:       1,
		Assignment: zone.NewAssignment(),
		NewApp:     func() server.Application { return game.New(game.DefaultConfig()) },
		Seed:       seed,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 2; i++ {
		if _, err := fl.AddReplica(); err != nil {
			return nil, err
		}
	}
	driver := bots.NewFleetDriver(fl, net, seed)
	driver.SetLatencyDeadline(deadlineMS)
	if err := driver.SetBots(users); err != nil {
		return nil, err
	}
	for i := 0; i < warmTicks; i++ {
		driver.Step()
	}
	//roialint:ignore tickclock wall-clock throughput measurement of real in-process ticks, not simulated time
	start := time.Now()
	for i := 0; i < probeTicks; i++ {
		driver.Step()
	}
	elapsed := time.Since(start)
	snap := driver.ClientLatency().Snapshot()
	tps := 0.0
	if elapsed > 0 {
		tps = float64(probeTicks) / elapsed.Seconds()
	}
	return &LatencyResult{
		Users:       users,
		Ticks:       probeTicks,
		TicksPerSec: tps,
		Client:      snap,
		DeadlineMS:  deadlineMS,
	}, nil
}
