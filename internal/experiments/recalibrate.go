package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"roia/internal/bots"
	"roia/internal/calibrate"
	"roia/internal/fit"
	"roia/internal/game"
	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
	"roia/internal/rtf/aoi"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/monitor"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

// RecalibrateRow is one publish-path variant's refitted profile and the
// model ceiling it implies.
type RecalibrateRow struct {
	// Mode names the variant ("full" or "delta").
	Mode string
	// Set is the refitted parameter profile (live-loop tasks measured on
	// this machine; absent tasks have zero curves).
	Set *params.Set
	// AOIFit / SUFit are the goodness-of-fit of the two publish-half
	// parameters the variant is supposed to move.
	AOIFit, SUFit fit.Result
	// NMax is the single-replica model ceiling n_max(1,0) under the
	// refitted profile; Bounded is false when the search cap was reached
	// (machine faster than the cap is wide).
	NMax    int
	Bounded bool
	// Trigger is the 80%-rule replication trigger derived from NMax.
	Trigger int
	// AuditNMax is the n_max recorded in the RMS decision audit when a
	// manager configured with the refitted model evaluates a static
	// cluster — the ceiling an operator reads back out of the audit log
	// (and, via the fleet collector's roia_fleet_nmax gauge, roiatop).
	AuditNMax int
}

// RecalibrateResult compares the model ceilings of the full-update and
// delta publish paths, both refitted live on this machine.
type RecalibrateResult struct {
	// UserCounts are the bot populations each variant was sampled at.
	UserCounts []int
	// U is the QoS threshold (ms) the ceilings were derived against.
	U float64
	// Full and Delta are the two variants' rows.
	Full, Delta RecalibrateRow
}

// recalibSample measures the live-loop parameters of one publish-path
// variant across the given user counts and returns the pooled sample log.
func recalibSample(seed int64, counts []int, delta bool) ([]monitor.Sample, error) {
	var samples []monitor.Sample
	for rep := 0; rep < 3; rep++ {
		s, err := recalibSampleOnce(seed+int64(rep)*7919, counts, delta)
		if err != nil {
			return nil, err
		}
		samples = append(samples, s...)
	}
	return medianSamples(samples), nil
}

// medianSamples collapses a pooled per-tick sample log to one median point
// per (task, user count). Per-item times down at the microsecond scale are
// dominated by scheduler and GC jitter; a least-squares fit over the raw
// log chases the spikes, while the median per operating point is stable.
func medianSamples(in []monitor.Sample) []monitor.Sample {
	type key struct {
		task monitor.Task
		x    float64
	}
	groups := make(map[key][]float64)
	var order []key
	for _, s := range in {
		k := key{s.Task, s.X}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], s.Y)
	}
	out := make([]monitor.Sample, 0, len(order))
	for _, k := range order {
		ys := groups[k]
		sort.Float64s(ys)
		out = append(out, monitor.Sample{Task: k.task, X: k.x, Y: ys[len(ys)/2]})
	}
	return out
}

// recalibSampleOnce is one pooled measurement pass over the user counts.
func recalibSampleOnce(seed int64, counts []int, delta bool) ([]monitor.Sample, error) {
	var samples []monitor.Sample
	for _, n := range counts {
		err := func() error {
			net := transport.NewLoopback()
			defer net.Close()
			var newAOI func() aoi.Manager
			if delta {
				newAOI = func() aoi.Manager { return aoi.NewIncremental(server.DefaultAOIRadius) }
			}
			fl, err := fleet.New(fleet.Config{
				Network:      net,
				Zone:         1,
				Assignment:   zone.NewAssignment(),
				NewApp:       func() server.Application { return game.New(game.DefaultConfig()) },
				Seed:         seed + int64(n),
				DeltaUpdates: delta,
				NewAOI:       newAOI,
			})
			if err != nil {
				return err
			}
			id, err := fl.AddReplica()
			if err != nil {
				return err
			}
			srv, ok := fl.Server(id)
			if !ok {
				return fmt.Errorf("replica %s not found after AddReplica", id)
			}
			driver := bots.NewFleetDriver(fl, net, seed+int64(n))
			if err := driver.SetBots(n); err != nil {
				return err
			}
			for i := 0; i < 15; i++ {
				driver.Step()
			}
			srv.Monitor().Reset()
			srv.Monitor().SetCollecting(true)
			for i := 0; i < 40; i++ {
				driver.Step()
			}
			samples = append(samples, srv.Monitor().Samples()...)
			return nil
		}()
		if err != nil {
			return nil, fmt.Errorf("n=%d delta=%v: %w", n, delta, err)
		}
	}
	return samples, nil
}

// recalibRow fits one variant's samples and derives its ceilings,
// including the audit-log reading of n_max.
func recalibRow(mode string, samples []monitor.Sample, u float64) (RecalibrateRow, error) {
	res, err := calibrate.FromSamples("publish-"+mode, samples, nil)
	if err != nil {
		return RecalibrateRow{}, fmt.Errorf("fit %s: %w", mode, err)
	}
	sanitizeSet(res.Set)
	mdl, err := model.New(res.Set, u, params.CDefault)
	if err != nil {
		return RecalibrateRow{}, err
	}
	nmax, bounded := mdl.MaxUsers(1, 0)
	row := RecalibrateRow{
		Mode:    mode,
		Set:     res.Set,
		AOIFit:  res.Fits[monitor.AOI],
		SUFit:   res.Fits[monitor.SU],
		NMax:    nmax,
		Bounded: bounded,
		Trigger: model.ReplicationTrigger(nmax, model.DefaultTriggerFraction),
	}
	// Drive one RMS decision under the refitted model and read n_max back
	// out of the audit record — the ceiling the controller actually uses.
	var log strings.Builder
	audit := telemetry.NewAuditLog(&log)
	mgr := rms.NewManager(&staticCluster{users: nmax / 2}, rms.Config{Model: mdl, Audit: audit})
	mgr.Step(0)
	if recs := auditRecords(log.String()); len(recs) > 0 {
		row.AuditNMax = recs[len(recs)-1].NMax
	}
	return row, nil
}

// RecalibratePublish refits the live-loop parameters — most importantly
// the publish half, t_aoi and t_su — under the classic full-update
// pipeline and under the delta+incremental publish path, on this machine,
// and compares the model ceilings the two profiles imply. The cheaper
// publish unit raises n_max (Eq. 2), which propagates through every
// consumer of the model: the RMS manager's triggers and audit records, the
// fleet collector's roia_fleet_nmax gauge, and roiatop's occupancy-vs-
// ceiling column.
func RecalibratePublish(seed int64) (*RecalibrateResult, error) {
	// Sample well into the quadratic regime: the ceilings land near
	// n_max ≈ 1000+, and extrapolating a degree-2 fit from small-n
	// samples is noise-dominated (t_aoi is microseconds down there). At
	// n ≤ 400 a full Euclid scan is as cheap as the incremental index —
	// the O(n²) separation only shows at larger populations.
	counts := []int{200, 400, 600, 800}
	const u = 10 // ms, the demo threshold used by the examples
	fullSamples, err := recalibSample(seed, counts, false)
	if err != nil {
		return nil, err
	}
	deltaSamples, err := recalibSample(seed, counts, true)
	if err != nil {
		return nil, err
	}
	full, err := recalibRow("full", fullSamples, u)
	if err != nil {
		return nil, err
	}
	delta, err := recalibRow("delta", deltaSamples, u)
	if err != nil {
		return nil, err
	}
	return &RecalibrateResult{UserCounts: counts, U: u, Full: full, Delta: delta}, nil
}

// FormatRecalibrate renders the recalibration comparison.
func FormatRecalibrate(res *RecalibrateResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "publish-path recalibration at U=%.0fms, n in %v:\n", res.U, res.UserCounts)
	fmt.Fprintf(&b, "%-6s %-34s %-34s %8s %8s %10s\n", "mode", "t_aoi", "t_su", "n_max", "trigger", "audit nmax")
	for _, r := range []RecalibrateRow{res.Full, res.Delta} {
		nm := fmt.Sprintf("%d", r.NMax)
		if !r.Bounded {
			nm = ">" + nm
		}
		fmt.Fprintf(&b, "%-6s %-34s %-34s %8s %8d %10d\n",
			r.Mode, r.Set.AOI.String(), r.Set.SU.String(), nm, r.Trigger, r.AuditNMax)
	}
	if res.Delta.NMax > res.Full.NMax {
		fmt.Fprintf(&b, "delta publish raises the single-replica ceiling by %d users (%.0f%%)\n",
			res.Delta.NMax-res.Full.NMax,
			100*float64(res.Delta.NMax-res.Full.NMax)/float64(res.Full.NMax))
	}
	return b.String()
}

// sanitizeSet clamps negative fitted coefficients of the live-loop curves
// to zero. Per-item CPU time cannot decrease with the user count; a noisy
// live fit that says otherwise would — through Curve.Eval's zero clamp —
// drive the modeled tick time to zero at large n and report an unbounded
// ceiling. Clamping enforces the model's non-negative-curve assumption
// (model.MaxUsers requires T non-decreasing) as a prior on the fit.
func sanitizeSet(set *params.Set) {
	for _, c := range []*params.Curve{
		&set.UADeser, &set.UA, &set.FADeser, &set.FA,
		&set.NPC, &set.AOI, &set.SU,
	} {
		for i, v := range c.Coeffs {
			if v < 0 {
				c.Coeffs[i] = 0
			}
		}
	}
}

// staticCluster is a do-nothing rms.Cluster with a fixed population: just
// enough for a manager step to compute and audit its thresholds.
type staticCluster struct {
	users int
}

func (c *staticCluster) Servers() []rms.ServerState {
	return []rms.ServerState{{ID: "s1", Users: c.users, Power: 1, Ready: true}}
}
func (c *staticCluster) ZoneUsers() int                           { return c.users }
func (c *staticCluster) NPCCount() int                            { return 0 }
func (c *staticCluster) Migrate(src, dst string, count int) error { return nil }
func (c *staticCluster) AddReplica() (string, error)              { return "", fmt.Errorf("static") }
func (c *staticCluster) RemoveReplica(id string) error            { return fmt.Errorf("static") }
func (c *staticCluster) SetDraining(id string, on bool) error     { return nil }
func (c *staticCluster) Substitute(id string) (string, error)     { return "", fmt.Errorf("static") }

// auditRecords parses an AuditLog's JSONL output back into records.
func auditRecords(jsonl string) []telemetry.DecisionRecord {
	var out []telemetry.DecisionRecord
	for _, line := range strings.Split(jsonl, "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec telemetry.DecisionRecord
		if err := json.Unmarshal([]byte(line), &rec); err == nil {
			out = append(out, rec)
		}
	}
	return out
}
