package experiments

import (
	"strings"
	"testing"
)

func TestFig4FitTracksTruth(t *testing.T) {
	res, err := Fig4(1)
	if err != nil {
		t.Fatal(err)
	}
	// 8 series: measured + fit for each of the four plotted parameters.
	if got := len(res.Table.Series); got != 8 {
		t.Fatalf("series = %d, want 8", got)
	}
	if res.MaxRelErr > 0.10 {
		t.Fatalf("fitted curves drift %.1f%% from truth, want < 10%%", res.MaxRelErr*100)
	}
	// Quadratic shape recovered for t_ua and t_aoi.
	if res.Recovered.UA.Degree() != 2 || res.Recovered.AOI.Degree() != 2 {
		t.Fatal("quadratic parameters not fitted as quadratics")
	}
}

func TestFig5MatchesPaperShape(t *testing.T) {
	res := Fig5()
	if res.LMax != 8 {
		t.Fatalf("l_max = %d, paper: 8", res.LMax)
	}
	if res.MaxUsers[0] != 235 {
		t.Fatalf("n_max(1) = %d, paper: 235", res.MaxUsers[0])
	}
	if res.Triggers[0] != 188 {
		t.Fatalf("trigger(1) = %d, paper: 188", res.Triggers[0])
	}
	// Monotone capacity growth with shrinking increments.
	prevGain := 1 << 30
	for l := 1; l < len(res.MaxUsers); l++ {
		gain := res.MaxUsers[l] - res.MaxUsers[l-1]
		if gain <= 0 || gain > prevGain {
			t.Fatalf("capacity gains not monotonically diminishing: %v", res.MaxUsers)
		}
		prevGain = gain
	}
	// Trigger line sits strictly below capacity.
	for i := range res.Triggers {
		if res.Triggers[i] >= res.MaxUsers[i] {
			t.Fatalf("trigger %d >= capacity %d at l=%d", res.Triggers[i], res.MaxUsers[i], i+1)
		}
	}
}

func TestFig6IniAboveRcv(t *testing.T) {
	res, err := Fig6(1)
	if err != nil {
		t.Fatal(err)
	}
	for n := 10.0; n <= 300; n += 10 {
		if res.IniCurve.Eval(n) <= res.RcvCurve.Eval(n) {
			t.Fatalf("t_mig_ini(%g) not above t_mig_rcv — Fig. 6 shape broken", n)
		}
	}
	// Both linear.
	if res.IniCurve.Degree() != 1 || res.RcvCurve.Degree() != 1 {
		t.Fatal("migration parameters not linear")
	}
}

func TestFig7ShapeAndBudgets(t *testing.T) {
	res := Fig7()
	// Monotone: more headroom at lower tick durations.
	for t1 := 1; t1 < 40; t1++ {
		if res.IniAt[t1] > res.IniAt[t1-1] || res.RcvAt[t1] > res.RcvAt[t1-1] {
			t.Fatalf("x_max increased with tick duration at %d ms", t1)
		}
	}
	// Receiving is cheaper than initiating, so budgets are larger.
	for tick := 0; tick < 40; tick++ {
		if res.RcvAt[tick] < res.IniAt[tick] {
			t.Fatalf("x_rcv < x_ini at %d ms", tick)
		}
	}
	// At the threshold no migrations are allowed.
	if res.IniAt[39] > 4 {
		t.Fatalf("x_ini near U = %d, want small", res.IniAt[39])
	}
}

func TestFig8ReproducesHeadlineResult(t *testing.T) {
	res, err := Fig8(1)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Session
	// "The tick duration on all application servers did not exceed 40 ms."
	if s.TotalViolations != 0 || s.PeakTickMS >= 40 {
		t.Fatalf("violations=%d peak=%.2f — paper reports none", s.TotalViolations, s.PeakTickMS)
	}
	// Replication enactment happened and was undone.
	if s.PeakReplicas < 2 {
		t.Fatal("replication never enacted")
	}
	if s.Stats[len(s.Stats)-1].ReadyReplicas != 1 {
		t.Fatal("resources not removed at session end")
	}
	// "The CPU load grows initially with the number of users": correlated
	// growth in the ramp phase.
	if s.Stats[300].AvgCPU <= s.Stats[60].AvgCPU {
		t.Fatal("CPU load does not grow with users")
	}
	// "Servers are not fully loaded": intentional headroom.
	if res.Session.MaxAvgCPU() >= 100 {
		t.Fatal("CPU saturated despite the 80% trigger")
	}
	if got := len(res.Table.Series); got != 3 {
		t.Fatalf("series = %d, want 3", got)
	}
}

func TestAnchorsMatchPaper(t *testing.T) {
	a := Anchors()
	want := AnchorsResult{
		NMax1: 235, Trigger80: 188,
		LMaxC005: 48, LMaxC015: 8, LMaxC100: 1,
		XIniAt35MS: 3, XRcvAt15MS: 34,
	}
	if a != want {
		t.Fatalf("anchors = %+v, want %+v", a, want)
	}
	if !strings.Contains(a.String(), "235") {
		t.Fatal("anchor rendering broken")
	}
}

func TestBaselineComparison(t *testing.T) {
	rows, err := BaselineComparison(1)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]BaselineRow, len(rows))
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["model-rms"].Violations != 0 {
		t.Fatalf("model-rms violated: %+v", byName["model-rms"])
	}
	// Without any balancing a single server must violate at 300 users.
	if byName["no-balancing"].Violations == 0 {
		t.Fatal("no-balancing run never violated")
	}
	if byName["no-balancing"].PeakTickMS <= byName["model-rms"].PeakTickMS {
		t.Fatal("no-balancing peak tick not worse than managed")
	}
	if out := FormatBaselines(rows); !strings.Contains(out, "model-rms") {
		t.Fatal("table rendering broken")
	}
}

func TestHeavyLoadSubstitutionPath(t *testing.T) {
	res, err := HeavyLoad(1)
	if err != nil {
		t.Fatal(err)
	}
	// The capped zone cannot carry 700 users on baseline machines; the
	// manager must upgrade through both stronger classes.
	if res.Substitutions < 3 {
		t.Fatalf("substitutions = %d, want the full upgrade path", res.Substitutions)
	}
	for class := range res.FinalClasses {
		if class == "standard" {
			t.Fatalf("standard machines remain at session end: %v", res.FinalClasses)
		}
	}
	// After the upgrades the plateau is served cleanly.
	plateauViolations := 0
	for _, s := range res.Session.Stats {
		if s.Time >= 1000 && s.Time < 1500 {
			plateauViolations += s.Violations
		}
	}
	if plateauViolations != 0 {
		t.Fatalf("plateau violations = %d after upgrades", plateauViolations)
	}
	// The ultimate ceiling is reported: the strongest class is in use and
	// the group is within 80% of its power-aware capacity.
	if res.SaturationAlerts == 0 {
		t.Fatal("no saturation alert despite running near the ceiling")
	}
	// Alerts are cooldown-limited, not one per second.
	if res.SaturationAlerts > len(res.Session.Stats)/10 {
		t.Fatalf("saturation alert spam: %d alerts", res.SaturationAlerts)
	}
}

func TestFlashCrowdAdmissionPreventsViolations(t *testing.T) {
	res, err := FlashCrowd(1)
	if err != nil {
		t.Fatal(err)
	}
	open, queued := res.Rows[0], res.Rows[1]
	if open.Violations == 0 {
		t.Fatal("open-doors arm never violated — spike too soft")
	}
	if queued.Violations != 0 {
		t.Fatalf("admission arm violated %d times", queued.Violations)
	}
	if queued.PeakTickMS >= 40 {
		t.Fatalf("admission arm peak tick = %.2f", queued.PeakTickMS)
	}
	if queued.PeakQueue == 0 {
		t.Fatal("queue never formed — spike absorbed implausibly")
	}
	if queued.QueueClearedAt == 0 {
		t.Fatal("queue never drained")
	}
}

func TestPacingAblationIsolatesContribution(t *testing.T) {
	rows, err := PacingAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	paced, unpaced := rows[0], rows[1]
	if paced.Violations != 0 {
		t.Fatalf("paced arm violated %d times", paced.Violations)
	}
	if unpaced.Violations == 0 {
		t.Fatal("unpaced arm never violated — ablation shows nothing")
	}
	if unpaced.PeakTickMS <= paced.PeakTickMS {
		t.Fatalf("unpaced peak %.2f not above paced %.2f", unpaced.PeakTickMS, paced.PeakTickMS)
	}
	// The budgets are the mechanism: the paced arm's burst rate must be
	// far below the unpaced arm's.
	if paced.MaxMigrationsPerSecond*2 >= unpaced.MaxMigrationsPerSecond {
		t.Fatalf("pacing did not bound burst rate: %d vs %d",
			paced.MaxMigrationsPerSecond, unpaced.MaxMigrationsPerSecond)
	}
}

func TestCSweepMonotoneAndAnchored(t *testing.T) {
	rows := CSweep()
	prevL := 1 << 30
	for _, r := range rows {
		// Larger required improvement → fewer useful replicas.
		if r.LMax > prevL {
			t.Fatalf("l_max not monotone in c: %+v", rows)
		}
		prevL = r.LMax
		if r.NMaxLMax <= 0 {
			t.Fatalf("no capacity at c=%g", r.C)
		}
	}
	byC := make(map[float64]int, len(rows))
	for _, r := range rows {
		byC[r.C] = r.LMax
	}
	// The paper's three quoted points.
	if byC[0.05] != 48 || byC[0.15] != 8 || byC[1.00] != 1 {
		t.Fatalf("paper anchors broken: %v", byC)
	}
}

func TestNPCSweepShape(t *testing.T) {
	rows := NPCSweep()
	if rows[0].NPCs != 0 || rows[0].NMax1 != 235 {
		t.Fatalf("baseline row wrong: %+v", rows[0])
	}
	for i := 1; i < len(rows); i++ {
		// NPCs consume capacity...
		if rows[i].NMax1 >= rows[i-1].NMax1 {
			t.Fatalf("capacity did not fall with more NPCs: %+v", rows)
		}
		// ...and replication recovers some of it (the m/l term), so the
		// useful replica count does not fall.
		if rows[i].LMax < rows[i-1].LMax {
			t.Fatalf("l_max fell with more NPCs: %+v", rows)
		}
	}
}

func TestTrafficModelFromLiveFleet(t *testing.T) {
	res, err := Traffic(1)
	if err != nil {
		t.Fatal(err)
	}
	// Outbound traffic dominates (state updates fan out to every user,
	// inputs are small) — Kim et al.'s asymmetry.
	if res.AsymmetryAt150 <= 1 {
		t.Fatalf("out/in asymmetry = %.2f, want > 1", res.AsymmetryAt150)
	}
	// Bandwidth grows with the user count.
	in50, out50 := res.Model.PerTick(50)
	in250, out250 := res.Model.PerTick(250)
	if in250 <= in50 || out250 <= out50 {
		t.Fatal("traffic does not grow with users")
	}
	// Outbound grows superlinearly (denser worlds → bigger updates).
	if out250/out50 <= 250.0/50.0*0.9 {
		t.Fatalf("outbound growth not superlinear: %g → %g", out50, out250)
	}
	if res.CapacityOutBPS <= 0 {
		t.Fatal("no capacity bandwidth prediction")
	}
}

func TestProfileComparison(t *testing.T) {
	rows := ProfileComparison()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	fps, rpg := rows[0], rows[1]
	// Section III-C: the RPG's higher tolerated tick duration and cheaper
	// input processing yield (much) higher thresholds than the FPS.
	if !rpg.Unbounded && rpg.NMax1 <= fps.NMax1 {
		t.Fatalf("rpg capacity %d not above fps %d", rpg.NMax1, fps.NMax1)
	}
	if rpg.XIni200 <= fps.XIni200 {
		t.Fatalf("rpg migration budget %d not above fps %d", rpg.XIni200, fps.XIni200)
	}
}

func TestSpeedupFigure(t *testing.T) {
	res, err := Speedup(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || res.Rows[0].Workers != 1 {
		t.Fatalf("bad sweep shape: %+v", res.Rows)
	}
	// The w=1 edge of the figure is the paper's sequential model exactly.
	w1 := res.Rows[0]
	if w1.Speedup != 1 {
		t.Fatalf("S(1) = %g, want exactly 1", w1.Speedup)
	}
	if w1.NMax != 235 {
		t.Fatalf("n_max(1, w=1) = %d, want the paper anchor 235", w1.NMax)
	}
	// Monotone capacity: more workers never lower the ceiling.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].NMax < res.Rows[i-1].NMax {
			t.Fatalf("n_max dropped: %+v", res.Rows)
		}
		if res.Rows[i].TickMS > res.Rows[i-1].TickMS {
			t.Fatalf("tick time rose with workers: %+v", res.Rows)
		}
	}
	// The calibration round-trip recovers the generating coefficients.
	if d := res.Fitted.Sigma - res.Truth.Sigma; d > 0.05 || d < -0.05 {
		t.Fatalf("σ recovery off: %+v vs %+v", res.Fitted, res.Truth)
	}
}
