package experiments

import (
	"fmt"

	"roia/internal/bots"
	"roia/internal/game"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/monitor"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
	"roia/internal/stats"
	"roia/internal/traffic"
)

// TrafficResult carries the bandwidth-analysis extension (the paper's
// stated future work, grounded in the Kim et al. traffic study it cites).
type TrafficResult struct {
	// Table holds measured per-tick inbound/outbound bytes vs users plus
	// the fitted curves.
	Table *stats.Table
	// Model is the fitted traffic model.
	Model *traffic.Model
	// AsymmetryAt150 is the out/in byte ratio at 150 users.
	AsymmetryAt150 float64
	// CapacityInBPS / CapacityOutBPS is the predicted bandwidth of one
	// replica at the scalability model's n_max(1), at 25 ticks/s.
	CapacityInBPS, CapacityOutBPS float64
}

// Traffic measures real wire traffic on a live two-replica RTF fleet at
// increasing bot populations, fits the traffic model, and evaluates the
// bandwidth the capacity threshold implies. Byte counts depend only on
// the protocol and the seeded bot behaviour — not on CPU speed — so this
// live experiment is reproducible across machines.
func Traffic(seed int64) (*TrafficResult, error) {
	net := transport.NewLoopback()
	defer net.Close()
	fl, err := fleet.New(fleet.Config{
		Network:    net,
		Zone:       1,
		Assignment: zone.NewAssignment(),
		NewApp:     func() server.Application { return game.New(game.DefaultConfig()) },
		Seed:       seed,
	})
	if err != nil {
		return nil, err
	}
	// Two replicas, as in the paper's measurement setup, so replication
	// traffic (shadow updates, forwarded inputs) is part of the bytes.
	for i := 0; i < 2; i++ {
		if _, err := fl.AddReplica(); err != nil {
			return nil, err
		}
	}
	for _, id := range fl.IDs() {
		srv, _ := fl.Server(id)
		srv.Monitor().SetCollecting(true)
	}

	driver := bots.NewFleetDriver(fl, net, seed)
	const ticksPerLevel = 30
	for _, target := range []int{20, 60, 100, 140, 180, 220, 260, 300} {
		if err := driver.SetBots(target); err != nil {
			return nil, err
		}
		// Let the population settle before sampling the level.
		for t := 0; t < 5; t++ {
			driver.Step()
		}
		for t := 0; t < ticksPerLevel; t++ {
			driver.Step()
		}
	}

	var samples []monitor.TrafficSample
	for _, id := range fl.IDs() {
		srv, _ := fl.Server(id)
		samples = append(samples, srv.Monitor().TrafficSamples()...)
	}
	tm, err := traffic.Fit(samples)
	if err != nil {
		return nil, err
	}

	table := &stats.Table{
		Title:  "Traffic: per-tick wire bytes vs users (live fleet)",
		XLabel: "users",
		YLabel: "bytes per tick",
	}
	measIn := table.AddSeries("bytes in (measured)")
	measOut := table.AddSeries("bytes out (measured)")
	// Thin the raw samples for plotting: one of every 10.
	for i, s := range samples {
		if i%10 == 0 {
			measIn.Add(float64(s.Users), float64(s.BytesIn))
			measOut.Add(float64(s.Users), float64(s.BytesOut))
		}
	}
	fitIn := table.AddSeries("bytes in (fit)")
	fitOut := table.AddSeries("bytes out (fit)")
	for n := 10; n <= 300; n += 10 {
		in, out := tm.PerTick(n)
		fitIn.Add(float64(n), in)
		fitOut.Add(float64(n), out)
	}

	res := &TrafficResult{Table: table, Model: tm, AsymmetryAt150: tm.Asymmetry(150)}
	_, sm := DefaultModel()
	if in, out, ok := tm.AtCapacity(sm, 1, 25); ok {
		res.CapacityInBPS, res.CapacityOutBPS = in, out
	}
	return res, nil
}

// FormatTraffic renders the headline traffic numbers.
func FormatTraffic(r *TrafficResult) string {
	in100, out100 := r.Model.BandwidthBPS(100, 25)
	inCap, outCap := r.CapacityInBPS, r.CapacityOutBPS
	return fmt.Sprintf(`traffic model (per replica, 25 ticks/s):
  inbound  = %s bytes/tick
  outbound = %s bytes/tick
  at 100 users: in %.1f KB/s, out %.1f KB/s
  at n_max(1)=235: in %.1f KB/s, out %.1f KB/s
  out/in asymmetry at 150 users: %.1fx`,
		r.Model.In, r.Model.Out,
		in100/1024, out100/1024, inCap/1024, outCap/1024, r.AsymmetryAt150)
}
