package experiments

import (
	"fmt"
	"sort"
	"strings"

	"roia/internal/bots"
	"roia/internal/game"
	"roia/internal/rtf/aoi"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

// CostRow summarizes one scenario of the cost harness across all of its
// runs: what one tick of the workload costs in heap, GC, and network terms,
// not just how long it takes. The scenarios reuse the variability harness's
// workloads so the two benchmarks describe the same fleets.
type CostRow struct {
	Scenario VariabilityScenario
	// Runs and Ticks describe the sample: Runs independent fleets, each
	// measured for Ticks ticks per replica after warm-up.
	Runs, Ticks int
	// Samples is the total per-replica tick count measured.
	Samples uint64
	// MeanTickMS is the mean per-tick wall time over the measured ticks
	// (the harness's ns/op analogue).
	MeanTickMS float64
	// AllocBytesPerTick / AllocObjectsPerTick are process heap allocations
	// per replica tick, measured as runtime/metrics deltas over the
	// measurement window.
	AllocBytesPerTick   float64
	AllocObjectsPerTick float64
	// StageBytesPerTick breaks AllocBytesPerTick down by pipeline stage.
	StageBytesPerTick map[string]float64
	// GCCycles is the total number of GC cycles that completed inside
	// measured ticks; GCPauseP99MS is the windowed per-tick in-tick pause
	// p99 merged over every run and replica.
	GCCycles     uint64
	GCPauseP99MS float64
	// BytesPerUserTick is client egress (framed wire bytes) per connected
	// user per tick — the per-user bandwidth bill of the scenario.
	BytesPerUserTick float64
	// PayloadP99Bytes is the p99 framed size of one client-bound message.
	PayloadP99Bytes float64
	// ChurnEnterP99 / ChurnLeaveP99 are the p99 of entities entering /
	// leaving one client's visible set in one tick.
	ChurnEnterP99 float64
	ChurnLeaveP99 float64
}

// CostResult is the full cost-harness output.
type CostResult struct {
	Rows []CostRow
	Runs int
}

// costRunDelta is one run's cost deltas over the measurement window.
type costRunDelta struct {
	ticks        uint64
	allocBytes   uint64
	allocObjects uint64
	stageBytes   map[string]uint64
	gcCycles     uint64
	clientBytes  uint64
	wall         *telemetry.LogHistogram
	gcPause      *telemetry.LogHistogram
	payload      *telemetry.LogHistogram
	churnEnter   *telemetry.LogHistogram
	churnLeave   *telemetry.LogHistogram
}

// CostOpts selects the publish-path variant the cost harness measures.
// The zero value is the classic full-update pipeline; `roiabench -fig cost
// -delta` switches all three knobs on to price the proto v5 publish unit.
type CostOpts struct {
	// DeltaUpdates switches servers to the v5 delta+keyframe stream.
	DeltaUpdates bool
	// KeyframeTicks sets the keyframe cadence (0 = server default).
	KeyframeTicks int
	// IncrementalAOI replaces the default Euclid manager with the
	// incremental grid index (aoi.NewIncremental at the default radius).
	IncrementalAOI bool
}

// costRun executes one fresh fleet for a scenario with cost trackers on and
// returns the measurement-window deltas of every cumulative counter (warm-up
// ticks are excluded by differencing snapshots). The windowed histograms
// (GC pause, payload, churn) are taken from the end snapshot; their rotating
// windows are dominated by the measurement phase.
func costRun(sc VariabilityScenario, seed int64, warmTicks, measureTicks int, opts CostOpts) (*costRunDelta, error) {
	net := transport.NewLoopback()
	defer net.Close()
	var newAOI func() aoi.Manager
	if opts.IncrementalAOI {
		newAOI = func() aoi.Manager { return aoi.NewIncremental(server.DefaultAOIRadius) }
	}
	fl, err := fleet.New(fleet.Config{
		Network:       net,
		Zone:          1,
		Assignment:    zone.NewAssignment(),
		NewApp:        func() server.Application { return game.New(game.DefaultConfig()) },
		Seed:          seed,
		CostTrackers:  true,
		DeltaUpdates:  opts.DeltaUpdates,
		KeyframeTicks: opts.KeyframeTicks,
		NewAOI:        newAOI,
	})
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, sc.Replicas)
	servers := make([]*server.Server, 0, sc.Replicas)
	for i := 0; i < sc.Replicas; i++ {
		id, err := fl.AddReplica()
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
		srv, ok := fl.Server(id)
		if !ok {
			return nil, fmt.Errorf("replica %s not found after AddReplica", id)
		}
		servers = append(servers, srv)
	}
	for i := 0; i < sc.NPCs; i++ {
		servers[0].SpawnNPC(entity.Vec2{
			X: float64((i * 73) % 1000),
			Y: float64((i * 137) % 1000),
		})
	}
	driver := bots.NewFleetDriver(fl, net, seed)
	if err := driver.SetBots(sc.Bots); err != nil {
		return nil, err
	}
	for i := 0; i < warmTicks; i++ {
		driver.Step()
	}
	base := make([]telemetry.CostSnapshot, len(ids))
	for i, id := range ids {
		ct, ok := fl.CostTracker(id)
		if !ok || ct == nil {
			return nil, fmt.Errorf("replica %s has no cost tracker", id)
		}
		base[i] = ct.Snapshot()
	}
	wall := telemetry.NewLogHistogram()
	for i := 0; i < measureTicks; i++ {
		driver.Step()
		for _, srv := range servers {
			bd := srv.Monitor().LastBreakdown()
			wall.Observe(bd.Wall())
		}
	}
	d := &costRunDelta{
		stageBytes: make(map[string]uint64),
		wall:       wall,
		gcPause:    telemetry.NewLogHistogram(),
		payload:    telemetry.NewLogHistogram(),
		churnEnter: telemetry.NewLogHistogram(),
		churnLeave: telemetry.NewLogHistogram(),
	}
	for i, id := range ids {
		ct, _ := fl.CostTracker(id)
		end := ct.Snapshot()
		d.ticks += end.Ticks - base[i].Ticks
		for stage, v := range end.AllocBytes {
			db := v - base[i].AllocBytes[stage]
			d.allocBytes += db
			d.stageBytes[stage] += db
		}
		for stage, v := range end.AllocObjects {
			d.allocObjects += v - base[i].AllocObjects[stage]
		}
		d.gcCycles += end.GCCycles - base[i].GCCycles
		d.clientBytes += end.EgressClientBytes - base[i].EgressClientBytes
		d.gcPause.Merge(end.GCPause)
		d.payload.Merge(end.Payload)
		d.churnEnter.Merge(end.ChurnEnter)
		d.churnLeave.Merge(end.ChurnLeave)
	}
	return d, nil
}

// Cost is the hot-path cost harness behind `roiabench -fig cost`: every
// variability scenario is executed `runs` times on a fresh fleet with cost
// trackers, and the resource bill of one tick — heap allocations by pipeline
// stage, in-tick GC pause tail, framed egress per user, AoI churn — is
// reported next to the wall time the time-only harness already measures.
// This is the measured side of the paper's cost model: Eq. (1) prices a tick
// in microseconds, this harness shows which resources that price buys.
func Cost(seed int64, runs int) (*CostResult, error) {
	return CostWithOpts(seed, runs, CostOpts{})
}

// CostWithOpts is Cost with an explicit publish-path variant, so the full
// and delta pipelines can be priced against each other on identical
// scenarios (the BENCH_4 → BENCH_5 comparison).
func CostWithOpts(seed int64, runs int, opts CostOpts) (*CostResult, error) {
	const (
		warmTicks    = 30
		measureTicks = 150
	)
	if runs < 1 {
		runs = 1
	}
	res := &CostResult{Runs: runs}
	for _, sc := range DefaultVariabilityScenarios() {
		agg := costRunDelta{
			stageBytes: make(map[string]uint64),
			wall:       telemetry.NewLogHistogram(),
			gcPause:    telemetry.NewLogHistogram(),
			payload:    telemetry.NewLogHistogram(),
			churnEnter: telemetry.NewLogHistogram(),
			churnLeave: telemetry.NewLogHistogram(),
		}
		for r := 0; r < runs; r++ {
			d, err := costRun(sc, seed+int64(r)*1000, warmTicks, measureTicks, opts)
			if err != nil {
				return nil, fmt.Errorf("%s run %d: %w", sc.Name, r, err)
			}
			agg.ticks += d.ticks
			agg.allocBytes += d.allocBytes
			agg.allocObjects += d.allocObjects
			for stage, v := range d.stageBytes {
				agg.stageBytes[stage] += v
			}
			agg.gcCycles += d.gcCycles
			agg.clientBytes += d.clientBytes
			agg.wall.Merge(d.wall)
			agg.gcPause.Merge(d.gcPause)
			agg.payload.Merge(d.payload)
			agg.churnEnter.Merge(d.churnEnter)
			agg.churnLeave.Merge(d.churnLeave)
		}
		if agg.ticks == 0 {
			return nil, fmt.Errorf("%s: no ticks measured", sc.Name)
		}
		ticks := float64(agg.ticks)
		row := CostRow{
			Scenario:            sc,
			Runs:                runs,
			Ticks:               measureTicks,
			Samples:             agg.ticks,
			MeanTickMS:          agg.wall.Mean(),
			AllocBytesPerTick:   float64(agg.allocBytes) / ticks,
			AllocObjectsPerTick: float64(agg.allocObjects) / ticks,
			StageBytesPerTick:   make(map[string]float64, len(agg.stageBytes)),
			GCCycles:            agg.gcCycles,
			GCPauseP99MS:        agg.gcPause.Quantile(0.99),
			PayloadP99Bytes:     agg.payload.Quantile(0.99),
			ChurnEnterP99:       agg.churnEnter.Quantile(0.99),
			ChurnLeaveP99:       agg.churnLeave.Quantile(0.99),
		}
		// Per-user egress divides the zone's client bytes by zone ticks (the
		// per-replica tick count per run), not replica-ticks — every user is
		// served once per zone tick regardless of l.
		zoneTicks := float64(runs * measureTicks)
		if sc.Bots > 0 {
			row.BytesPerUserTick = float64(agg.clientBytes) / zoneTicks / float64(sc.Bots)
		}
		for stage, v := range agg.stageBytes {
			row.StageBytesPerTick[stage] = float64(v) / ticks
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// FormatCost renders the harness result as an aligned text table, with one
// stage-breakdown line per scenario underneath.
func FormatCost(res *CostResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %5s %5s %5s %9s %11s %10s %9s %10s %11s %9s %9s\n",
		"scenario", "l", "bots", "npcs", "mean [ms]", "KiB/tick", "objs/tick", "gc", "gc p99", "B/user/tk", "churn+99", "churn-99")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%-12s %5d %5d %5d %9.3f %11.1f %10.0f %9d %8.3fms %11.1f %9.0f %9.0f\n",
			r.Scenario.Name, r.Scenario.Replicas, r.Scenario.Bots, r.Scenario.NPCs,
			r.MeanTickMS, r.AllocBytesPerTick/1024, r.AllocObjectsPerTick,
			r.GCCycles, r.GCPauseP99MS, r.BytesPerUserTick, r.ChurnEnterP99, r.ChurnLeaveP99)
		stages := make([]string, 0, len(r.StageBytesPerTick))
		for stage := range r.StageBytesPerTick {
			stages = append(stages, stage)
		}
		sort.Strings(stages)
		parts := make([]string, 0, len(stages))
		for _, stage := range stages {
			parts = append(parts, fmt.Sprintf("%s %.1f", stage, r.StageBytesPerTick[stage]/1024))
		}
		fmt.Fprintf(&b, "             alloc KiB/tick by stage: %s\n", strings.Join(parts, " · "))
	}
	return b.String()
}
