package experiments

import (
	"roia/internal/cloud"
	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
	"roia/internal/sim"
	"roia/internal/stats"
	"roia/internal/workload"
)

// HeavyLoadResult carries the heavier-workload / cloud-resource extension
// the paper names as future work: a session pushed past what the zone's
// replica cap can serve on baseline hardware, forcing RTF-RMS through its
// resource-substitution action onto stronger cloud classes.
type HeavyLoadResult struct {
	Table *stats.Table
	// Session is the full run.
	Session sim.SessionResult
	// Substitutions counts executed substitution actions,
	// SaturationAlerts the times no stronger class existed.
	Substitutions, SaturationAlerts int
	// FinalClasses is the resource-class mix at session end.
	FinalClasses map[string]int
	// TailViolations counts threshold violations in the final quarter of
	// the session, after the fleet has finished upgrading.
	TailViolations int
}

// HeavyLoad runs a 700-user session against a zone capped at 3 replicas
// (a zone whose application-specific l_max is low): on baseline hardware
// the cap saturates at n_max(3) = 403 users, so the model-driven manager
// must substitute replicas with stronger cloud classes (2× then 4×) to
// carry the load. The result demonstrates the substitution path of Fig. 3
// end to end: violations may occur transiently while upgrades provision,
// but the upgraded fleet serves the plateau cleanly.
func HeavyLoad(seed int64) (*HeavyLoadResult, error) {
	p, mdl := DefaultModel()
	provider := cloud.NewProvider(
		cloud.Class{Name: "standard", Power: 1, StartupDelay: 30, CostPerSecond: 0.01},
		cloud.Class{Name: "highcpu", Power: 2, StartupDelay: 30, CostPerSecond: 0.025},
		cloud.Class{Name: "highcpu2x", Power: 4, StartupDelay: 45, CostPerSecond: 0.06},
	)
	cluster, err := sim.NewCluster(sim.Config{
		Params: p, Model: mdl, Provider: provider, Seed: seed, InitialServers: 1,
	})
	if err != nil {
		return nil, err
	}
	mgr := rms.NewManager(cluster, rms.Config{Model: mdl, MaxReplicas: 3})

	trace := workload.Piecewise{Phases: []workload.Phase{
		{Until: 900, Trace: workload.Ramp{From: 0, To: 700, Len: 900}},
		{Until: 1500, Trace: workload.Constant{N: 700, Len: 600}},
		{Until: 1800, Trace: workload.Ramp{From: 700, To: 200, Len: 300}},
	}}

	res := &HeavyLoadResult{FinalClasses: make(map[string]int)}
	dur := int(trace.Duration())
	for t := 0; t < dur; t++ {
		cluster.SetTargetUsers(trace.UsersAt(float64(t)))
		for _, a := range mgr.Step(cluster.Now()) {
			switch a.Kind {
			case rms.ActSubstitute:
				if a.Err == nil {
					res.Substitutions++
				}
			case rms.ActSaturated:
				res.SaturationAlerts++
			}
		}
		st := cluster.EndSecond()
		res.Session.Stats = append(res.Session.Stats, st)
		res.Session.ServerSeconds += float64(st.Replicas)
		if t >= dur*3/4 {
			res.TailViolations += st.Violations
		}
	}
	res.Session.TotalMigrations = cluster.TotalMigrations()
	res.Session.TotalViolations = cluster.TotalViolations()
	res.Session.PeakTickMS = cluster.PeakTickMS()
	res.Session.PeakReplicas = cluster.PeakReplicas()
	res.Session.Cost = provider.Cost(cluster.Now())
	for _, s := range cluster.Servers() {
		res.FinalClasses[s.Class]++
	}

	table := &stats.Table{
		Title:  "Heavy load: substitution onto stronger cloud classes",
		XLabel: "time [s]",
		YLabel: "users / maxTick [ms ×10]",
	}
	users := table.AddSeries("# users")
	tick := table.AddSeries("max tick ×10")
	for _, s := range res.Session.Stats {
		users.Add(s.Time, float64(s.Users))
		tick.Add(s.Time, s.MaxTickMS*10)
	}
	res.Table = table
	return res, nil
}

// CSweepRow is one entry of the improvement-factor sweep.
type CSweepRow struct {
	// C is the minimum-improvement factor of Eq. (3).
	C float64
	// LMax is the resulting maximum useful replica count and NMaxLMax the
	// capacity at that replica count.
	LMax, NMaxLMax int
}

// CSweep reproduces the paper's discussion of the economic parameter c
// ("values close to 0 would lead to a large maximum value for the number
// of replicas (e.g., l_max = 48 for c = 0.05), while values close or
// equal to 1 would lead to l_max = 1"): l_max and the corresponding total
// capacity across the whole (0, 1] range.
func CSweep() []CSweepRow {
	p, _ := DefaultModel()
	var rows []CSweepRow
	for _, c := range []float64{0.01, 0.02, 0.05, 0.10, 0.15, 0.25, 0.40, 0.60, 0.80, 1.00} {
		mdl, err := model.New(p, params.UFirstPersonShooter, c)
		if err != nil {
			panic(err)
		}
		lmax, _ := mdl.MaxReplicas(0)
		nmax, _ := mdl.MaxUsers(lmax, 0)
		rows = append(rows, CSweepRow{C: c, LMax: lmax, NMaxLMax: nmax})
	}
	return rows
}

// NPCRow is one entry of the NPC sweep.
type NPCRow struct {
	// NPCs is the zone-wide NPC count m.
	NPCs int
	// NMax1 is n_max(1, m); LMax is l_max(m) at c = 0.15.
	NMax1, LMax int
}

// NPCSweep evaluates the m-dependence of the model's thresholds (Eq. 1's
// m/l·t_npc term, which the paper includes but sets aside "for brevity"):
// every computer-controlled character costs capacity, and replication
// recovers some of it because NPCs spread over replicas.
func NPCSweep() []NPCRow {
	_, mdl := DefaultModel()
	var rows []NPCRow
	for _, m := range []int{0, 50, 100, 200, 400, 800} {
		nmax, _ := mdl.MaxUsers(1, m)
		lmax, _ := mdl.MaxReplicas(m)
		rows = append(rows, NPCRow{NPCs: m, NMax1: nmax, LMax: lmax})
	}
	return rows
}
