package experiments

import (
	"roia/internal/rms"
	"roia/internal/sim"
	"roia/internal/stats"
	"roia/internal/workload"
)

// FlashCrowdRow summarizes one arm of the flash-crowd experiment.
type FlashCrowdRow struct {
	Name       string
	Violations int
	PeakTickMS float64
	// PeakQueue is the longest login queue (0 without admission control).
	PeakQueue int
	// QueueClearedAt is the second the queue last became empty (0 without
	// admission control).
	QueueClearedAt float64
	// AdmittedPeak is the largest concurrently admitted population.
	AdmittedPeak int
}

// FlashCrowdResult carries both arms plus the admitted/queued time series.
type FlashCrowdResult struct {
	Rows  []FlashCrowdRow
	Table *stats.Table
}

// FlashCrowd stresses the system with a login spike: the offered
// population jumps from 150 to 400 in one second — far beyond n_max(1)
// and faster than replication can provision. Without admission control
// every user connects immediately and the servers violate the threshold
// until enough replicas are ready; with the model-driven admission queue
// the burst waits at the door, the admitted population never outruns
// capacity, and the queue drains as replicas come up.
func FlashCrowd(seed int64) (*FlashCrowdResult, error) {
	offered := workload.Piecewise{Phases: []workload.Phase{
		{Until: 60, Trace: workload.Constant{N: 150, Len: 60}},
		{Until: 300, Trace: workload.Constant{N: 400, Len: 240}},
		{Until: 420, Trace: workload.Ramp{From: 400, To: 100, Len: 120}},
	}}

	res := &FlashCrowdResult{
		Table: &stats.Table{
			Title:  "Flash crowd: admission control vs open doors",
			XLabel: "time [s]",
			YLabel: "users",
		},
	}
	offeredSeries := res.Table.AddSeries("offered")
	admittedSeries := res.Table.AddSeries("admitted (with queue)")
	queueSeries := res.Table.AddSeries("login queue")

	for _, arm := range []struct {
		name      string
		admission bool
	}{
		{"open-doors", false},
		{"admission-queue", true},
	} {
		p, mdl := DefaultModel()
		cluster, err := sim.NewCluster(sim.Config{Params: p, Model: mdl, Seed: seed})
		if err != nil {
			return nil, err
		}
		mgr := rms.NewManager(cluster, rms.Config{Model: mdl})
		var adm *rms.Admission
		if arm.admission {
			adm = rms.NewAdmission(mdl)
		}

		row := FlashCrowdRow{Name: arm.name}
		admitted, prevOffered := 0, 0
		for t := 0.0; t < offered.Duration(); t++ {
			target := offered.UsersAt(t)
			if adm == nil {
				admitted = target
			} else {
				n := cluster.ZoneUsers()
				arrivals := target - prevOffered
				if arrivals < 0 {
					// Departures: queued users give up first, the rest
					// leave the game.
					stillLeaving := -arrivals - adm.Abandon(-arrivals)
					admitted -= stillLeaving
					if admitted < 0 {
						admitted = 0
					}
					arrivals = 0
				}
				// Enqueue this second's arrivals and admit whatever the
				// capacity headroom allows (draining the queue first).
				admitted += adm.Step(cluster.Servers(), n, 0, arrivals)
				if q := adm.Queued(); q > row.PeakQueue {
					row.PeakQueue = q
				}
				if adm.Queued() == 0 && row.PeakQueue > 0 && row.QueueClearedAt == 0 {
					row.QueueClearedAt = t
				}
				offeredSeries.Add(t, float64(target))
				admittedSeries.Add(t, float64(admitted))
				queueSeries.Add(t, float64(adm.Queued()))
			}
			prevOffered = target
			cluster.SetTargetUsers(admitted)
			mgr.Step(cluster.Now())
			st := cluster.EndSecond()
			if st.Users > row.AdmittedPeak {
				row.AdmittedPeak = st.Users
			}
		}
		row.Violations = cluster.TotalViolations()
		row.PeakTickMS = cluster.PeakTickMS()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
