package experiments

import (
	"fmt"
	"math"
	"strings"

	"roia/internal/bots"
	"roia/internal/game"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

// VariabilityScenario is one live-fleet workload measured repeatedly by the
// variability harness.
type VariabilityScenario struct {
	Name     string
	Replicas int
	Bots     int
	NPCs     int // spawned on the first replica
}

// DefaultVariabilityScenarios are the workloads reported by
// `roiabench -fig variability`: a comfortable single-replica population, a
// replicated population past the single-server trigger, and an NPC-heavy
// zone exercising the m/l·t_npc term of Eq. (1).
func DefaultVariabilityScenarios() []VariabilityScenario {
	return []VariabilityScenario{
		{Name: "steady-60", Replicas: 1, Bots: 60},
		{Name: "steady-150", Replicas: 2, Bots: 150},
		{Name: "npc-heavy", Replicas: 1, Bots: 40, NPCs: 150},
	}
}

// VariabilityRow summarizes one scenario across all of its runs.
type VariabilityRow struct {
	Scenario VariabilityScenario
	// Runs and Ticks describe the sample: Runs independent fleets, each
	// measured for Ticks ticks per replica.
	Runs, Ticks int
	// Samples is the total per-replica tick count observed (Runs × Ticks ×
	// Replicas).
	Samples uint64
	// MeanMS and the quantiles are per-tick wall times in milliseconds over
	// the merged distribution of every run.
	MeanMS, P50MS, P99MS, P999MS, MaxMS float64
	// CoV is the run-to-run coefficient of variation of the per-run mean
	// tick time: stddev(run means)/mean(run means). It separates within-run
	// jitter (visible in the quantiles) from between-run drift — a noisy
	// host inflates CoV even when each individual run looks tight.
	CoV float64
	// Hiccups counts flight-recorder hiccup triggers summed over all runs
	// and replicas (k× rolling-median spikes; see telemetry.FlightRecorder).
	Hiccups uint64
	// NMax is the model's n_max for this scenario's replica and NPC counts —
	// the capacity context the measurements sit inside. NMaxOK is false when
	// Eq. (2) is unbounded for the profile.
	NMax   int
	NMaxOK bool
	// Captures holds every flight-recorder capture frozen during the
	// scenario's runs — the per-task forensics for each hiccup counted
	// above, exportable as JSONL via telemetry.WriteFlightJSONL.
	Captures []*telemetry.FlightCapture
}

// VariabilityResult is the full harness output.
type VariabilityResult struct {
	Rows []VariabilityRow
	// Runs echoes the per-scenario repetition count.
	Runs int
}

// variabilityRun executes one fresh fleet for a scenario and returns the
// per-replica-tick wall-time histogram, the hiccup count, and any frozen
// flight-recorder captures.
func variabilityRun(sc VariabilityScenario, seed int64, warmTicks, measureTicks int) (*telemetry.LogHistogram, uint64, []*telemetry.FlightCapture, error) {
	net := transport.NewLoopback()
	defer net.Close()
	fl, err := fleet.New(fleet.Config{
		Network:         net,
		Zone:            1,
		Assignment:      zone.NewAssignment(),
		NewApp:          func() server.Application { return game.New(game.DefaultConfig()) },
		Seed:            seed,
		FlightRecorders: true,
	})
	if err != nil {
		return nil, 0, nil, err
	}
	ids := make([]string, 0, sc.Replicas)
	servers := make([]*server.Server, 0, sc.Replicas)
	for i := 0; i < sc.Replicas; i++ {
		id, err := fl.AddReplica()
		if err != nil {
			return nil, 0, nil, err
		}
		ids = append(ids, id)
		srv, ok := fl.Server(id)
		if !ok {
			return nil, 0, nil, fmt.Errorf("replica %s not found after AddReplica", id)
		}
		servers = append(servers, srv)
	}
	for i := 0; i < sc.NPCs; i++ {
		servers[0].SpawnNPC(entity.Vec2{
			X: float64((i * 73) % 1000),
			Y: float64((i * 137) % 1000),
		})
	}
	driver := bots.NewFleetDriver(fl, net, seed)
	if err := driver.SetBots(sc.Bots); err != nil {
		return nil, 0, nil, err
	}
	for i := 0; i < warmTicks; i++ {
		driver.Step()
	}
	hist := telemetry.NewLogHistogram()
	for i := 0; i < measureTicks; i++ {
		driver.Step()
		for _, srv := range servers {
			bd := srv.Monitor().LastBreakdown()
			hist.Observe(bd.Wall())
		}
	}
	var hiccups uint64
	var captures []*telemetry.FlightCapture
	for _, id := range ids {
		if rec, ok := fl.FlightRecorder(id); ok && rec != nil {
			hiccups += rec.Hiccups()
			captures = append(captures, rec.Captures()...)
		}
	}
	return hist, hiccups, captures, nil
}

// Variability is the run-to-run variability harness behind
// `roiabench -fig variability`: every scenario is executed `runs` times on a
// fresh fleet (seed offset per run), each run measuring real per-tick wall
// times, and the merged distribution is reported as mean/p50/p99/p99.9
// alongside the between-run CoV and the model's n_max for the scenario's
// configuration. Tail quantiles make variability a first-class benchmark
// output: the QoS deadline of the paper is paid per tick, so a fat p99.9
// matters even when the mean is comfortable.
func Variability(seed int64, runs int) (*VariabilityResult, error) {
	const (
		warmTicks    = 30
		measureTicks = 150
	)
	if runs < 1 {
		runs = 1
	}
	_, mdl := DefaultModel()
	res := &VariabilityResult{Runs: runs}
	for _, sc := range DefaultVariabilityScenarios() {
		merged := telemetry.NewLogHistogram()
		runMeans := make([]float64, 0, runs)
		var hiccups uint64
		var captures []*telemetry.FlightCapture
		for r := 0; r < runs; r++ {
			hist, h, caps, err := variabilityRun(sc, seed+int64(r)*1000, warmTicks, measureTicks)
			if err != nil {
				return nil, fmt.Errorf("%s run %d: %w", sc.Name, r, err)
			}
			runMeans = append(runMeans, hist.Mean())
			merged.Merge(hist)
			hiccups += h
			captures = append(captures, caps...)
		}
		nmax, ok := mdl.MaxUsers(sc.Replicas, sc.NPCs)
		res.Rows = append(res.Rows, VariabilityRow{
			Scenario: sc,
			Runs:     runs,
			Ticks:    measureTicks,
			Samples:  merged.Count(),
			MeanMS:   merged.Mean(),
			P50MS:    merged.Quantile(0.50),
			P99MS:    merged.Quantile(0.99),
			P999MS:   merged.Quantile(0.999),
			MaxMS:    merged.Max(),
			CoV:      coefficientOfVariation(runMeans),
			Hiccups:  hiccups,
			NMax:     nmax,
			NMaxOK:   ok,
			Captures: captures,
		})
	}
	return res, nil
}

// coefficientOfVariation is stddev/mean (population stddev) of xs, 0 when
// degenerate.
func coefficientOfVariation(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0
	}
	varsum := 0.0
	for _, x := range xs {
		d := x - mean
		varsum += d * d
	}
	return math.Sqrt(varsum/float64(len(xs))) / mean
}

// FormatVariability renders the harness result as an aligned text table.
func FormatVariability(res *VariabilityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %5s %5s %5s %9s %9s %9s %9s %9s %7s %8s %8s\n",
		"scenario", "l", "bots", "npcs", "mean [ms]", "p50 [ms]", "p99 [ms]", "p99.9", "max [ms]", "cov", "hiccups", "n_max")
	for _, r := range res.Rows {
		nmax := fmt.Sprintf("%d", r.NMax)
		if !r.NMaxOK {
			nmax = "∞"
		}
		fmt.Fprintf(&b, "%-12s %5d %5d %5d %9.3f %9.3f %9.3f %9.3f %9.3f %6.1f%% %8d %8s\n",
			r.Scenario.Name, r.Scenario.Replicas, r.Scenario.Bots, r.Scenario.NPCs,
			r.MeanMS, r.P50MS, r.P99MS, r.P999MS, r.MaxMS, r.CoV*100, r.Hiccups, nmax)
	}
	return b.String()
}
