package experiments

import (
	"roia/internal/calibrate"
	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/stats"
)

// SpeedupRow is one worker count of the intra-replica parallelism figure.
type SpeedupRow struct {
	// Workers is the pipeline worker count w.
	Workers int
	// Speedup is the USL efficiency S(w) = w/(1+σ(w−1)+κw(w−1)).
	Speedup float64
	// TickMS is the modelled tick time T(1, n_ref, 0, w) in ms.
	TickMS float64
	// NMax is the w-aware capacity n_max(1, 0, U, w) (Eq. 2 extended).
	NMax int
}

// SpeedupResult carries the parallelism-figure reproduction: the modelled
// speedup/capacity sweep over worker counts, plus a round-trip check that
// σ,κ are recoverable from a noisy calibration sweep the way the other
// model parameters are (Fig. 4's methodology applied to the USL term).
type SpeedupResult struct {
	Table *stats.Table
	Rows  []SpeedupRow
	// Truth and Fitted are the generating and recovered USL coefficients.
	Truth, Fitted params.USL
	// FitRMSE is the residual of the recovery fit.
	FitRMSE float64
	// NRef is the reference population used for the TickMS column.
	NRef int
}

// Speedup sweeps the tick pipeline's worker count through the extended
// model T(l,n,m,w): per-w speedup, tick time at the w=1 capacity anchor
// (n = 235), and the re-derived n_max. The w=1 row reproduces Eq. 1–2
// exactly — S(1) = 1 by construction — so the figure degenerates to the
// paper's sequential model at the left edge.
func Speedup(seed int64) (*SpeedupResult, error) {
	p, mdl := DefaultModel()
	mdl.Par = model.Par{Workers: 1, Sigma: p.Parallel.Sigma, Kappa: p.Parallel.Kappa}
	nref, _ := mdl.MaxUsers(1, 0)

	res := &SpeedupResult{
		Table: &stats.Table{
			Title:  "Speedup: intra-replica parallelism of the tick pipeline (USL term)",
			XLabel: "workers",
			YLabel: "speedup / users",
		},
		Truth: p.Parallel,
		NRef:  nref,
	}
	spSeries := res.Table.AddSeries("S(w)")
	nmaxSeries := res.Table.AddSeries("n_max(1,w)")
	for _, w := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		sp := model.Par{Workers: w, Sigma: p.Parallel.Sigma, Kappa: p.Parallel.Kappa}.Speedup(w)
		nmax, _ := mdl.MaxUsersW(1, 0, w)
		res.Rows = append(res.Rows, SpeedupRow{
			Workers: w,
			Speedup: sp,
			TickMS:  mdl.TickTimeW(1, nref, 0, w),
			NMax:    nmax,
		})
		spSeries.Add(float64(w), sp)
		nmaxSeries.Add(float64(w), float64(nmax))
	}

	// Round-trip the coefficients through a noisy synthetic calibration
	// sweep, as Fig. 4 does for the per-task parameters.
	sweep := calibrate.SynthesizeParallel(p.Parallel, []int{1, 2, 3, 4, 6, 8, 12, 16}, 6, 0.02, seed)
	fitted, fres, err := calibrate.FitParallel(sweep)
	if err != nil {
		return nil, err
	}
	res.Fitted = fitted
	res.FitRMSE = fres.RMSE
	return res, nil
}
