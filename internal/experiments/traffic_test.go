package experiments

// Byte-accounting under loss: the traffic experiment's inputs — the
// monitor's per-tick BytesIn/BytesOut — count framed wire bytes, and only
// frames that were actually delivered. A lossy client link must leave the
// server's inbound accounting exactly equal to what survived the drop
// filter, or the fitted traffic model would bill bandwidth nobody used.

import (
	"testing"

	"roia/internal/game"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/proto"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/wire"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

// countingNode wraps a transport.Node and sums the framed wire size of
// every payload actually handed to the underlying node — the ground truth
// for "delivered egress" when stacked under a Lossy filter.
type countingNode struct {
	transport.Node
	frames int
	bytes  int
}

func (c *countingNode) Send(to string, payload []byte) error {
	c.bytes += transport.FrameWireBytes(c.Node.ID(), to, len(payload))
	c.frames++
	return c.Node.Send(to, payload)
}

func TestTrafficAccountingCountsOnlyDeliveredFrames(t *testing.T) {
	net := transport.NewLoopback()
	defer net.Close()
	srvNode, err := net.Attach("s1", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	cost := telemetry.NewCostTracker()
	srv, err := server.New(server.Config{
		Node:       srvNode,
		Zone:       1,
		Assignment: zone.NewAssignment(),
		App:        game.New(game.DefaultConfig()),
		IDPrefix:   1,
		Seed:       11,
		Cost:       cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	srv.Monitor().SetCollecting(true)

	raw, err := net.Attach("c1", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	delivered := &countingNode{Node: raw}
	// Join reliably (rate 0), then degrade the link for the input phase.
	lossy := transport.NewLossy(delivered, 0, 99)
	w := wire.NewWriter(256)
	join := &proto.Join{UserName: "c1", Zone: 1, Pos: entity.Vec2{X: 100, Y: 100}}
	if err := lossy.Send("s1", proto.Registry.Encode(w, join)); err != nil {
		t.Fatal(err)
	}
	srv.Tick()
	transport.Drain(raw, 0)
	if srv.UserCount() != 1 {
		t.Fatalf("users = %d, want 1 after reliable join", srv.UserCount())
	}

	lossy.SetRate(0.4)
	var seq uint64
	for i := 0; i < 120; i++ {
		seq++
		in := &proto.Input{Seq: seq, Payload: []byte{1, 2, 3}}
		_ = lossy.Send("s1", proto.Registry.Encode(w, in))
		srv.Tick()
		transport.Drain(raw, 0)
	}
	dropped, sent := lossy.Stats()
	if dropped == 0 || sent == 0 {
		t.Fatalf("lossy stats dropped=%d sent=%d; the test needs both drops and deliveries", dropped, sent)
	}

	var bytesIn int
	for _, s := range srv.Monitor().TrafficSamples() {
		bytesIn += s.BytesIn
	}
	if bytesIn != delivered.bytes {
		t.Fatalf("monitor BytesIn sum = %d, delivered framed bytes = %d (dropped=%d frames): dropped frames must not be billed",
			bytesIn, delivered.bytes, dropped)
	}

	// The cost tracker's egress accounting points the other way (server →
	// client); it must have billed the client for the join ack and state
	// updates the server actually handed to its own node.
	if b, ok := cost.ClientEgressBytes("c1"); !ok || b == 0 {
		t.Fatalf("ClientEgressBytes(c1) = %d, %v; want nonzero egress for a joined client", b, ok)
	}
	snap := cost.Snapshot()
	if snap.EgressByType["state_update"] == 0 {
		t.Fatalf("no state_update egress billed: %+v", snap.EgressByType)
	}
}
