// Package experiments regenerates every evaluation artifact of the paper
// (Figures 4–8 plus the in-text anchor numbers of Section V) from this
// repository's implementation. Each driver returns both the raw series
// (as stats.Table, renderable as CSV or ASCII) and the headline values the
// paper quotes, so cmd/roiabench, the test suite and the benchmark harness
// share one code path.
//
// Substitution note: the paper measures its parameters on an Intel Core
// Duo testbed; absolute milliseconds here come from the calibrated RTFDemo
// profile (params.RTFDemo), which anchors the paper's thresholds
// (n_max(1)=235 at U=40 ms, l_max(c=0.15)=8, ...) rather than its
// hardware. Shapes and crossovers are the reproduction target.
package experiments

import (
	"fmt"

	"roia/internal/calibrate"
	"roia/internal/fit"
	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
	"roia/internal/rtf/monitor"
	"roia/internal/sim"
	"roia/internal/stats"
	"roia/internal/telemetry"
	"roia/internal/workload"
)

// DefaultModel returns the RTFDemo scalability model used across all
// figure reproductions (U = 40 ms, c = 0.15).
func DefaultModel() (*params.Set, *model.Model) {
	p := params.RTFDemo()
	mdl, err := model.New(p, params.UFirstPersonShooter, params.CDefault)
	if err != nil {
		panic(err) // static defaults are validated by tests
	}
	return p, mdl
}

// --- Fig. 4: model parameters for replication -------------------------

// Fig4Result carries the parameter-determination reproduction: noisy
// per-task measurements (up to 300 bots, as in the paper) and the
// Levenberg–Marquardt fits through them.
type Fig4Result struct {
	// Table holds one measured series and one fitted series per
	// parameter (t_ua, t_ua_dser, t_aoi, t_su — the four curves Fig. 4
	// plots).
	Table *stats.Table
	// Recovered is the parameter set fitted from the measurements.
	Recovered *params.Set
	// Fits reports per-task goodness of fit.
	Fits map[monitor.Task]fit.Result
	// MaxRelErr is the worst relative deviation of a fitted curve from
	// the generating truth over the measured range.
	MaxRelErr float64
}

// Fig4 reproduces "Model parameters for replication in the RTFDemo
// application": synthetic measurements with 5 % noise stand in for the
// testbed samples, and the calibration pipeline fits the paper's curve
// shapes through them.
func Fig4(seed int64) (*Fig4Result, error) {
	truth, _ := DefaultModel()
	tasks := []monitor.Task{monitor.UA, monitor.UADeser, monitor.AOI, monitor.SU}
	var counts []int
	for n := 10; n <= 300; n += 10 {
		counts = append(counts, n)
	}
	samples := calibrate.Synthesize(truth, monitor.Tasks(), counts, 5, 0.05, seed)
	res, err := calibrate.FromSamples("rtfdemo-recovered", samples, nil)
	if err != nil {
		return nil, err
	}

	table := &stats.Table{
		Title:  "Fig. 4: model parameters for replication (RTFDemo)",
		XLabel: "users",
		YLabel: "CPU time per item [ms]",
	}
	evalTruth := taskEval(truth)
	evalFit := taskEval(res.Set)
	maxRel := 0.0
	for _, task := range tasks {
		meas := table.AddSeries(task.String() + " measured")
		for _, s := range samples {
			if s.Task == task {
				meas.Add(s.X, s.Y)
			}
		}
		fitted := table.AddSeries(task.String() + " fit")
		for _, n := range counts {
			y := evalFit[task](n)
			fitted.Add(float64(n), y)
			if want := evalTruth[task](n); want > 0 {
				rel := abs(y-want) / want
				if rel > maxRel {
					maxRel = rel
				}
			}
		}
	}
	return &Fig4Result{Table: table, Recovered: res.Set, Fits: res.Fits, MaxRelErr: maxRel}, nil
}

func taskEval(s *params.Set) map[monitor.Task]func(n int) float64 {
	return map[monitor.Task]func(n int) float64{
		monitor.UADeser: func(n int) float64 { return s.UADeserAt(n, 0) },
		monitor.UA:      func(n int) float64 { return s.UAAt(n, 0) },
		monitor.FADeser: func(n int) float64 { return s.FADeserAt(n, 0) },
		monitor.FA:      func(n int) float64 { return s.FAAt(n, 0) },
		monitor.NPC:     func(n int) float64 { return s.NPCAt(n, 0) },
		monitor.AOI:     func(n int) float64 { return s.AOIAt(n, 0) },
		monitor.SU:      func(n int) float64 { return s.SUAt(n, 0) },
		monitor.MigIni:  func(n int) float64 { return s.MigIniAt(n) },
		monitor.MigRcv:  func(n int) float64 { return s.MigRcvAt(n) },
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// --- Fig. 5: effect of replication on scalability ---------------------

// Fig5Result carries the replication-scalability reproduction.
type Fig5Result struct {
	Table *stats.Table
	// MaxUsers[l-1] is n_max(l) for l = 1..LMax (Eq. 2).
	MaxUsers []int
	// Triggers[l-1] is the 80 % replication trigger per replica count.
	Triggers []int
	// LMax is the model's maximum useful replica count (Eq. 3, c=0.15).
	LMax int
}

// Fig5 reproduces "The effect of replication on scalability of the
// RTFDemo application": maximum supported users per replica count and the
// 80 % trigger line RTF-RMS uses for replication enactment.
func Fig5() *Fig5Result {
	_, mdl := DefaultModel()
	lmax, _ := mdl.MaxReplicas(0)
	sched := mdl.MaxUsersSchedule(0, lmax)
	res := &Fig5Result{
		Table: &stats.Table{
			Title:  "Fig. 5: effect of replication on scalability (RTFDemo)",
			XLabel: "replicas",
			YLabel: "users",
		},
		MaxUsers: sched,
		LMax:     lmax,
	}
	maxSeries := res.Table.AddSeries("maximum # users")
	trigSeries := res.Table.AddSeries("replication trigger (80%)")
	for l := 1; l <= lmax; l++ {
		nmax := sched[l-1]
		trig := model.ReplicationTrigger(nmax, model.DefaultTriggerFraction)
		res.Triggers = append(res.Triggers, trig)
		maxSeries.Add(float64(l), float64(nmax))
		trigSeries.Add(float64(l), float64(trig))
	}
	return res
}

// --- Fig. 6: model parameters for user migration ----------------------

// Fig6Result carries the migration-parameter reproduction.
type Fig6Result struct {
	Table *stats.Table
	// IniCurve and RcvCurve are the fitted linear approximations.
	IniCurve, RcvCurve params.Curve
}

// Fig6 reproduces "Model parameters for user migration": noisy
// measurements of t_mig_ini and t_mig_rcv against the user count, with
// linear least-squares fits; initiating is costlier than receiving.
func Fig6(seed int64) (*Fig6Result, error) {
	truth, _ := DefaultModel()
	var counts []int
	for n := 10; n <= 300; n += 10 {
		counts = append(counts, n)
	}
	tasks := []monitor.Task{monitor.MigIni, monitor.MigRcv}
	samples := calibrate.Synthesize(truth, tasks, counts, 5, 0.05, seed)

	table := &stats.Table{
		Title:  "Fig. 6: model parameters for user migration (RTFDemo)",
		XLabel: "users",
		YLabel: "CPU time per migration [ms]",
	}
	res := &Fig6Result{Table: table}
	for _, task := range tasks {
		var ts []monitor.Sample
		meas := table.AddSeries(task.String() + " measured")
		for _, s := range samples {
			if s.Task == task {
				ts = append(ts, s)
				meas.Add(s.X, s.Y)
			}
		}
		curve, _, err := calibrate.FitTask(ts, 1)
		if err != nil {
			return nil, err
		}
		fitted := table.AddSeries(task.String() + " fit")
		for _, n := range counts {
			fitted.Add(float64(n), curve.Eval(float64(n)))
		}
		if task == monitor.MigIni {
			res.IniCurve = curve
		} else {
			res.RcvCurve = curve
		}
	}
	return res, nil
}

// --- Fig. 7: migration thresholds vs tick duration --------------------

// Fig7Result carries the migration-threshold reproduction.
type Fig7Result struct {
	Table *stats.Table
	// IniAt and RcvAt map integer tick durations (ms) to x_max values.
	IniAt, RcvAt map[int]int
}

// Fig7 reproduces "Number of user migrations for the RTFDemo
// application": the maximum migrations per second that can be initiated
// and received for a given current tick duration without violating U.
// For each tick duration T the server's user count n is inferred from the
// model (the n whose Eq. 1 tick time is T), then Eq. 5 yields
// x = max{x | T + x·t_mig < U}.
func Fig7() *Fig7Result {
	p, mdl := DefaultModel()
	res := &Fig7Result{
		Table: &stats.Table{
			Title:  "Fig. 7: migration thresholds (RTFDemo)",
			XLabel: "tick duration [ms]",
			YLabel: "max migrations per second",
		},
		IniAt: make(map[int]int),
		RcvAt: make(map[int]int),
	}
	ini := res.Table.AddSeries("x_max_ini")
	rcv := res.Table.AddSeries("x_max_rcv")
	for t := 0; t < int(mdl.U); t++ {
		n := usersForTick(mdl, float64(t))
		xi := maxMigrations(float64(t), p.MigIniAt(n), mdl.U)
		xr := maxMigrations(float64(t), p.MigRcvAt(n), mdl.U)
		res.IniAt[t] = xi
		res.RcvAt[t] = xr
		ini.Add(float64(t), float64(xi))
		rcv.Add(float64(t), float64(xr))
	}
	return res
}

// usersForTick inverts Eq. (1): the largest single-replica user count
// whose predicted tick duration stays at or below t ms.
func usersForTick(mdl *model.Model, t float64) int {
	lo, hi := 0, 4096
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if mdl.TickTime(1, mid, 0) <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// maxMigrations solves Eq. (5) in closed form for a given base tick.
func maxMigrations(base, perMig, u float64) int {
	if perMig <= 0 || base >= u {
		return 0
	}
	x := int((u - base) / perMig)
	if base+float64(x)*perMig >= u {
		x--
	}
	if x < 0 {
		return 0
	}
	return x
}

// --- Fig. 8: dynamic load balancing ------------------------------------

// Fig8Result carries the dynamic-session reproduction.
type Fig8Result struct {
	Table   *stats.Table
	Session sim.SessionResult
}

// Fig8 reproduces "Dynamic load balancing of the RTFDemo application for
// a changing number of users": a session with users growing to 300 and
// back, managed by the model-driven RTF-RMS. The paper's findings hold
// when Session.TotalViolations == 0 while replicas are added and removed.
func Fig8(seed int64) (*Fig8Result, error) {
	return Fig8Audited(seed, nil)
}

// Fig8Audited is Fig8 with an optional RTF-RMS decision audit sink: every
// control-loop step of the session is recorded as a
// telemetry.DecisionRecord (typically into a telemetry.AuditLog writing
// JSONL), so the controller's choices are explainable and diffable across
// runs. A nil sink disables auditing.
func Fig8Audited(seed int64, sink telemetry.DecisionSink) (*Fig8Result, error) {
	p, mdl := DefaultModel()
	cluster, err := sim.NewCluster(sim.Config{Params: p, Model: mdl, Seed: seed})
	if err != nil {
		return nil, err
	}
	mgr := rms.NewManager(cluster, rms.Config{Model: mdl, Audit: sink})
	session := sim.RunSession(cluster, mgr, workload.PaperSession())

	table := &stats.Table{
		Title:  "Fig. 8: dynamic load balancing (RTFDemo)",
		XLabel: "time [s]",
		YLabel: "users / CPU% / replicas",
	}
	users := table.AddSeries("# users")
	cpu := table.AddSeries("avg CPU load [%]")
	replicas := table.AddSeries("replicas ×100")
	for _, s := range session.Stats {
		users.Add(s.Time, float64(s.Users))
		cpu.Add(s.Time, s.AvgCPU)
		replicas.Add(s.Time, float64(s.ReadyReplicas)*100)
	}
	return &Fig8Result{Table: table, Session: session}, nil
}

// --- In-text anchors (Section V-A) --------------------------------------

// AnchorsResult carries the paper's quoted threshold numbers.
type AnchorsResult struct {
	NMax1      int // n_max(1, U=40ms) — paper: 235
	Trigger80  int // 80 % replication trigger — paper: 188
	LMaxC005   int // l_max at c = 0.05 — paper: 48
	LMaxC015   int // l_max at c = 0.15 — paper: 8
	LMaxC100   int // l_max at c = 1.0  — paper: 1
	XIniAt35MS int // migrations/s a 35 ms / 180-user server initiates — paper: 3
	XRcvAt15MS int // migrations/s a 15 ms / 80-user server receives — paper: 34
}

// Anchors recomputes every in-text number of Section V-A from the
// calibrated profile.
func Anchors() AnchorsResult {
	p, _ := DefaultModel()
	var res AnchorsResult
	for _, c := range []struct {
		c   float64
		dst *int
	}{{0.05, &res.LMaxC005}, {0.15, &res.LMaxC015}, {1.0, &res.LMaxC100}} {
		mdl, _ := model.New(p, params.UFirstPersonShooter, c.c)
		*c.dst, _ = mdl.MaxReplicas(0)
	}
	mdl, _ := model.New(p, params.UFirstPersonShooter, params.CDefault)
	res.NMax1, _ = mdl.MaxUsers(1, 0)
	res.Trigger80 = model.ReplicationTrigger(res.NMax1, model.DefaultTriggerFraction)
	res.XIniAt35MS = maxMigrations(35, p.MigIniAt(180), mdl.U)
	res.XRcvAt15MS = maxMigrations(15, p.MigRcvAt(80), mdl.U)
	return res
}

// String renders the anchors against the paper's values.
func (a AnchorsResult) String() string {
	return fmt.Sprintf(`Section V-A anchors (measured vs paper):
  n_max(1)             = %3d   (paper: 235)
  replication trigger  = %3d   (paper: 188 = 80%% of 235)
  l_max(c=0.05)        = %3d   (paper: 48)
  l_max(c=0.15)        = %3d   (paper: 8)
  l_max(c=1.00)        = %3d   (paper: 1)
  x_ini @ 35ms, 180u   = %3d   (paper: 3)
  x_rcv @ 15ms, 80u    = %3d   (paper: 34)`,
		a.NMax1, a.Trigger80, a.LMaxC005, a.LMaxC015, a.LMaxC100, a.XIniAt35MS, a.XRcvAt15MS)
}
