package experiments

import "testing"

func TestRecalibratePublishSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live measurement")
	}
	res, err := RecalibratePublish(7)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatRecalibrate(res))
	for _, r := range []RecalibrateRow{res.Full, res.Delta} {
		if r.NMax <= 0 {
			t.Fatalf("%s: n_max = %d, want positive", r.Mode, r.NMax)
		}
		if r.AuditNMax != r.NMax {
			t.Fatalf("%s: audit n_max %d != model n_max %d", r.Mode, r.AuditNMax, r.NMax)
		}
	}
}
