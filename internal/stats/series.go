package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is a named sequence of (x, y) points, the unit of experiment
// output: one Series per curve of a paper figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point. A Series is experiment output — it lives for one
// figure sweep and holds one point per swept parameter value, so there is
// no retention bound to enforce.
func (s *Series) Add(x, y float64) {
	//roialint:ignore boundedgrowth experiment output, one point per swept parameter value
	s.X = append(s.X, x)
	//roialint:ignore boundedgrowth experiment output, one point per swept parameter value
	s.Y = append(s.Y, y)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.X) }

// Table groups several series sharing an x axis into one figure dataset.
type Table struct {
	// Title names the figure (e.g. "Fig. 5: effect of replication").
	Title string
	// XLabel / YLabel annotate the axes.
	XLabel, YLabel string
	Series         []*Series
}

// AddSeries appends a new empty series and returns it.
func (t *Table) AddSeries(name string) *Series {
	s := &Series{Name: name}
	t.Series = append(t.Series, s)
	return s
}

// WriteCSV emits the table in long form: series,x,y — one row per point.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\nseries,%s,%s\n", t.Title, csvLabel(t.XLabel), csvLabel(t.YLabel)); err != nil {
		return err
	}
	for _, s := range t.Series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvLabel(l string) string {
	if l == "" {
		return "x"
	}
	return strings.ReplaceAll(l, ",", ";")
}

// RenderASCII draws the table as a crude ASCII chart (width×height grid),
// one rune per series, so figure shapes can be inspected in a terminal and
// in EXPERIMENTS.md without plotting tools — the counterpart of the paper's
// gnuplot charts.
func (t *Table) RenderASCII(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range t.Series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			points++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	marks := []rune("*o+x#@%&")
	for si, s := range t.Series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = mark
		}
	}
	fmt.Fprintf(&b, "%10.4g ┤\n", maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10.4g └%s\n", minY, strings.Repeat("─", width))
	fmt.Fprintf(&b, "%10s  %-10.4g%*.4g\n", "", minX, width-10, maxX)
	for si, s := range t.Series {
		fmt.Fprintf(&b, "  %c %s\n", marks[si%len(marks)], s.Name)
	}
	if t.XLabel != "" || t.YLabel != "" {
		fmt.Fprintf(&b, "  x: %s, y: %s\n", t.XLabel, t.YLabel)
	}
	return b.String()
}
