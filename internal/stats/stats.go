// Package stats provides the lightweight measurement plumbing used across
// the repository: summaries of float samples, fixed-capacity sample
// reservoirs for per-tick monitoring, time series for experiment output,
// and CSV / ASCII-chart rendering for the figure reproductions.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary aggregates a set of float64 samples.
type Summary struct {
	Count          int
	Min, Max, Mean float64
	// P50, P95, P99 are percentiles computed by nearest-rank.
	P50, P95, P99 float64
	// StdDev is the population standard deviation.
	StdDev float64
}

// Summarize computes a Summary of the samples. It returns a zero Summary
// for an empty input. The input slice is not modified.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	s := Summary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   Percentile(sorted, 50),
		P95:   Percentile(sorted, 95),
		P99:   Percentile(sorted, 99),
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(len(sorted))
	varSum := 0.0
	for _, v := range sorted {
		d := v - s.Mean
		varSum += d * d
	}
	s.StdDev = math.Sqrt(varSum / float64(len(sorted)))
	return s
}

// Percentile returns the p-th percentile (0..100) of the already-sorted
// samples using the nearest-rank method. It returns 0 for empty input and
// clamps out-of-range p.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// String renders the summary in a compact single line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3f mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f sd=%.3f",
		s.Count, s.Min, s.Mean, s.P50, s.P95, s.P99, s.Max, s.StdDev)
}

// Reservoir is a fixed-capacity ring buffer of float64 samples. Once full,
// new samples overwrite the oldest ones. It is what the per-tick monitor
// uses to keep a bounded history of task timings. Reservoir is not safe for
// concurrent use; callers synchronize externally.
type Reservoir struct {
	buf  []float64
	next int
	full bool
}

// NewReservoir returns a reservoir that keeps the last capacity samples.
// Capacity must be positive.
func NewReservoir(capacity int) *Reservoir {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	return &Reservoir{buf: make([]float64, 0, capacity)}
}

// Add records a sample, evicting the oldest if the reservoir is full.
func (r *Reservoir) Add(v float64) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
		return
	}
	r.full = true
	r.buf[r.next] = v
	r.next = (r.next + 1) % cap(r.buf)
}

// Len reports the number of stored samples.
func (r *Reservoir) Len() int { return len(r.buf) }

// Snapshot returns a copy of the stored samples in unspecified order.
func (r *Reservoir) Snapshot() []float64 {
	return append([]float64(nil), r.buf...)
}

// Summary summarizes the stored samples.
func (r *Reservoir) Summary() Summary { return Summarize(r.buf) }

// Mean returns the mean of the stored samples (0 when empty).
func (r *Reservoir) Mean() float64 {
	if len(r.buf) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range r.buf {
		sum += v
	}
	return sum / float64(len(r.buf))
}
