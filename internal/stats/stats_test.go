package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("count/min/max wrong: %+v", s)
	}
	if s.Mean != 3 {
		t.Fatalf("mean = %g, want 3", s.Mean)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 = %g, want 3", s.P50)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("stddev = %g, want sqrt(2)", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {10, 10}, {50, 50}, {90, 90}, {95, 100}, {100, 100}, {-5, 10}, {150, 100},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); got != c.want {
			t.Fatalf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(empty) = %g, want 0", got)
	}
}

func TestSummaryPercentileOrderProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		s := Summarize(raw)
		if len(raw) == 0 {
			return s.Count == 0
		}
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReservoirBasics(t *testing.T) {
	r := NewReservoir(3)
	if r.Len() != 0 || r.Mean() != 0 {
		t.Fatal("fresh reservoir not empty")
	}
	r.Add(1)
	r.Add(2)
	if r.Len() != 2 || r.Mean() != 1.5 {
		t.Fatalf("len=%d mean=%g", r.Len(), r.Mean())
	}
	r.Add(3)
	r.Add(4) // evicts 1
	got := r.Snapshot()
	sort.Float64s(got)
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", got, want)
		}
	}
	if r.Summary().Count != 3 {
		t.Fatal("summary count wrong")
	}
}

func TestReservoirEvictionOrder(t *testing.T) {
	r := NewReservoir(2)
	for i := 1; i <= 10; i++ {
		r.Add(float64(i))
	}
	got := r.Snapshot()
	sort.Float64s(got)
	if got[0] != 9 || got[1] != 10 {
		t.Fatalf("kept %v, want the two most recent [9 10]", got)
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for capacity 0")
		}
	}()
	NewReservoir(0)
}

func TestSeriesAndTableCSV(t *testing.T) {
	var tbl Table
	tbl.Title = "test fig"
	tbl.XLabel = "users"
	tbl.YLabel = "ms"
	s := tbl.AddSeries("curve-a")
	s.Add(1, 10)
	s.Add(2, 20)
	tbl.AddSeries("curve-b").Add(1, 5)

	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"# test fig", "series,users,ms", "curve-a,1,10", "curve-a,2,20", "curve-b,1,5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("series len = %d, want 2", s.Len())
	}
}

func TestRenderASCIIContainsMarksAndLegend(t *testing.T) {
	var tbl Table
	tbl.Title = "shape"
	s := tbl.AddSeries("line")
	for i := 0; i <= 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	out := tbl.RenderASCII(40, 10)
	if !strings.Contains(out, "*") {
		t.Fatalf("chart has no data marks:\n%s", out)
	}
	if !strings.Contains(out, "line") {
		t.Fatalf("chart has no legend:\n%s", out)
	}
}

func TestRenderASCIIEmptyAndDegenerate(t *testing.T) {
	var tbl Table
	tbl.Title = "empty"
	if out := tbl.RenderASCII(20, 8); !strings.Contains(out, "no data") {
		t.Fatalf("empty table rendering:\n%s", out)
	}
	tbl.AddSeries("point").Add(1, 1) // single point: min==max on both axes
	if out := tbl.RenderASCII(20, 8); !strings.Contains(out, "*") {
		t.Fatalf("degenerate table rendering lost the point:\n%s", out)
	}
}
