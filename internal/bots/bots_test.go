package bots

import (
	"testing"

	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/proto"
	"roia/internal/rtf/transport"
)

func setup(t *testing.T) (*Bot, transport.Node) {
	t.Helper()
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	srv, err := net.Attach("srv", 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := net.Attach("bot", 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	return New(client.New(cn, "srv"), DefaultProfile(), 1), srv
}

func TestBotIdleUntilJoined(t *testing.T) {
	b, srv := setup(t)
	for i := 0; i < 10; i++ {
		b.Step()
	}
	if b.InputsSent() != 0 {
		t.Fatalf("bot sent %d inputs before joining", b.InputsSent())
	}
	if got := transport.Drain(srv, 0); len(got) != 0 {
		t.Fatalf("frames before join: %d", len(got))
	}
}

func TestBotSendsCommandsAfterJoin(t *testing.T) {
	b, srv := setup(t)
	// Simulate the server acknowledging a join.
	if err := srv.Send("bot", proto.Registry.EncodeToBytes(&proto.JoinAck{Entity: 5})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		b.Step()
	}
	if b.InputsSent() == 0 {
		t.Fatal("bot never sent commands")
	}
	frames := transport.Drain(srv, 0)
	if len(frames) != b.InputsSent() {
		t.Fatalf("server saw %d frames, bot reports %d", len(frames), b.InputsSent())
	}
	for _, f := range frames {
		if _, err := proto.Registry.Decode(f.Payload); err != nil {
			t.Fatalf("undecodable bot input: %v", err)
		}
	}
}

func TestBotAimsAtVisibleTargets(t *testing.T) {
	b, srv := setup(t)
	srv.Send("bot", proto.Registry.EncodeToBytes(&proto.JoinAck{Entity: 5}))
	// Give the bot a state update with one visible target east of it.
	srv.Send("bot", proto.Registry.EncodeToBytes(&proto.StateUpdate{
		Tick: 1,
		Self: entity.Entity{ID: 5, Pos: entity.Vec2{X: 0, Y: 0}},
		Visible: []entity.Entity{
			{ID: 9, Pos: entity.Vec2{X: 50, Y: 0}},
		},
	}))
	b.Step()
	atk := b.aim()
	if atk.DirX <= 0 || atk.DirY != 0 {
		t.Fatalf("aim = (%g,%g), want toward (50,0)", atk.DirX, atk.DirY)
	}
}

func TestProfilesOrdering(t *testing.T) {
	if AggressiveProfile().AttackProb <= DefaultProfile().AttackProb {
		t.Fatal("aggressive not more interactive than default")
	}
	if PassiveProfile().AttackProb >= DefaultProfile().AttackProb {
		t.Fatal("passive not less interactive than default")
	}
}

func TestBotDeterministicWithSeed(t *testing.T) {
	run := func() int {
		net := transport.NewLoopback()
		defer net.Close()
		srv, _ := net.Attach("srv", 1<<12)
		cn, _ := net.Attach("bot", 1<<12)
		b := New(client.New(cn, "srv"), DefaultProfile(), 99)
		srv.Send("bot", proto.Registry.EncodeToBytes(&proto.JoinAck{Entity: 5}))
		for i := 0; i < 30; i++ {
			b.Step()
		}
		return b.InputsSent()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("bot not deterministic: %d vs %d", a, b)
	}
}
