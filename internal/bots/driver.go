package bots

import (
	"fmt"
	"sync"

	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/transport"
	"roia/internal/telemetry"
)

// FleetDriver maintains a bot population against a live RTF fleet: it
// connects new bots to the least-loaded replica as the target grows and
// disconnects them as it shrinks, and advances servers and bots in
// lockstep. It is the live-cluster counterpart of the simulator's
// SetTargetUsers and powers cmd/roiacalibrate and the shooter example.
type FleetDriver struct {
	fl  *fleet.Fleet
	net transport.Network

	// mu guards the mutable swarm state: a metrics scrape reads
	// ClientLatency from an HTTP goroutine while the session loop grows
	// and shrinks the swarm.
	mu      sync.Mutex
	profile Profile
	seed    int64
	next    int
	swarm   []*Bot
	// rttDeadline is applied to every new bot's latency recorder (ms);
	// retired accumulates the recorders of disconnected bots so the
	// fleet-wide RTT distribution survives swarm shrinks.
	rttDeadline float64
	retired     *telemetry.Latency
}

// NewFleetDriver returns a driver with the default interactivity profile.
func NewFleetDriver(fl *fleet.Fleet, net transport.Network, seed int64) *FleetDriver {
	return &FleetDriver{
		fl: fl, net: net, profile: DefaultProfile(), seed: seed,
		retired: telemetry.NewLatency(0),
	}
}

// SetProfile changes the profile used for newly-connected bots.
func (d *FleetDriver) SetProfile(p Profile) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.profile = p
}

// SetLatencyDeadline sets the input→update RTT deadline (ms) used for QoS
// violation accounting, applied to current and future bots.
func (d *FleetDriver) SetLatencyDeadline(ms float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rttDeadline = ms
	for _, b := range d.swarm {
		b.Client().SetLatencyDeadline(ms)
	}
}

// ClientLatency merges every bot's input→update RTT recorder — live swarm
// plus already-disconnected bots — into one fleet-wide distribution. The
// returned recorder is a snapshot; it matches telemetry.LatencyMetrics for
// export. Safe to call concurrently with the session loop (e.g. from a
// metrics scrape).
func (d *FleetDriver) ClientLatency() *telemetry.Latency {
	d.mu.Lock()
	defer d.mu.Unlock()
	all := telemetry.NewLatency(d.rttDeadline)
	all.Merge(d.retired)
	for _, b := range d.swarm {
		all.Merge(b.Client().Latency())
	}
	return all
}

// Bots returns a snapshot of the live swarm.
func (d *FleetDriver) Bots() []*Bot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]*Bot(nil), d.swarm...)
}

// SetBots grows or shrinks the swarm to the target size.
func (d *FleetDriver) SetBots(target int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if target < 0 {
		target = 0
	}
	for len(d.swarm) < target {
		srvID := d.leastLoaded()
		if srvID == "" {
			return fmt.Errorf("bots: no server to join")
		}
		d.next++
		node, err := d.net.Attach(fmt.Sprintf("bot-%d", d.next), 1<<14)
		if err != nil {
			return err
		}
		cl := client.New(node, srvID)
		cl.SetLatencyDeadline(d.rttDeadline)
		pos := entity.Vec2{X: float64((d.next * 97) % 1000), Y: float64((d.next * 61) % 1000)}
		if err := cl.Join(1, pos, node.ID()); err != nil {
			_ = node.Close()
			return err
		}
		d.swarm = append(d.swarm, New(cl, d.profile, d.seed+int64(d.next)))
	}
	for len(d.swarm) > target {
		b := d.swarm[len(d.swarm)-1]
		d.swarm = d.swarm[:len(d.swarm)-1]
		_ = b.Client().Leave()
		// Give the leave frame one tick to be processed before the node
		// disappears from the network.
		d.fl.TickAll()
		d.retired.Merge(b.Client().Latency())
		_ = b.Client().Close()
	}
	return nil
}

// leastLoaded picks the replica with the fewest users, counting the
// driver's own clients (including joins still in flight) so that bursts
// of arrivals between ticks spread evenly instead of piling onto the
// first server.
func (d *FleetDriver) leastLoaded() string {
	pointing := make(map[string]int, len(d.swarm))
	for _, b := range d.swarm {
		pointing[b.Client().Server()]++
	}
	best, bestUsers := "", 1<<30
	for _, s := range d.fl.Servers() {
		if s.Draining || !s.Ready {
			continue
		}
		load := s.Users
		if p := pointing[s.ID]; p > load {
			load = p
		}
		if load < bestUsers {
			best, bestUsers = s.ID, load
		}
	}
	return best
}

// Step advances the fleet by one tick and lets every bot act.
func (d *FleetDriver) Step() {
	d.mu.Lock()
	swarm := append([]*Bot(nil), d.swarm...)
	d.mu.Unlock()
	d.fl.TickAll()
	for _, b := range swarm {
		b.Step()
	}
}
