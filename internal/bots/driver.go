package bots

import (
	"fmt"

	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/transport"
)

// FleetDriver maintains a bot population against a live RTF fleet: it
// connects new bots to the least-loaded replica as the target grows and
// disconnects them as it shrinks, and advances servers and bots in
// lockstep. It is the live-cluster counterpart of the simulator's
// SetTargetUsers and powers cmd/roiacalibrate and the shooter example.
type FleetDriver struct {
	fl      *fleet.Fleet
	net     transport.Network
	profile Profile
	seed    int64
	next    int
	swarm   []*Bot
}

// NewFleetDriver returns a driver with the default interactivity profile.
func NewFleetDriver(fl *fleet.Fleet, net transport.Network, seed int64) *FleetDriver {
	return &FleetDriver{fl: fl, net: net, profile: DefaultProfile(), seed: seed}
}

// SetProfile changes the profile used for newly-connected bots.
func (d *FleetDriver) SetProfile(p Profile) { d.profile = p }

// Bots returns the live swarm.
func (d *FleetDriver) Bots() []*Bot { return d.swarm }

// SetBots grows or shrinks the swarm to the target size.
func (d *FleetDriver) SetBots(target int) error {
	if target < 0 {
		target = 0
	}
	for len(d.swarm) < target {
		srvID := d.leastLoaded()
		if srvID == "" {
			return fmt.Errorf("bots: no server to join")
		}
		d.next++
		node, err := d.net.Attach(fmt.Sprintf("bot-%d", d.next), 1<<14)
		if err != nil {
			return err
		}
		cl := client.New(node, srvID)
		pos := entity.Vec2{X: float64((d.next * 97) % 1000), Y: float64((d.next * 61) % 1000)}
		if err := cl.Join(1, pos, node.ID()); err != nil {
			node.Close()
			return err
		}
		d.swarm = append(d.swarm, New(cl, d.profile, d.seed+int64(d.next)))
	}
	for len(d.swarm) > target {
		b := d.swarm[len(d.swarm)-1]
		d.swarm = d.swarm[:len(d.swarm)-1]
		_ = b.Client().Leave()
		// Give the leave frame one tick to be processed before the node
		// disappears from the network.
		d.fl.TickAll()
		_ = b.Client().Close()
	}
	return nil
}

// leastLoaded picks the replica with the fewest users, counting the
// driver's own clients (including joins still in flight) so that bursts
// of arrivals between ticks spread evenly instead of piling onto the
// first server.
func (d *FleetDriver) leastLoaded() string {
	pointing := make(map[string]int, len(d.swarm))
	for _, b := range d.swarm {
		pointing[b.Client().Server()]++
	}
	best, bestUsers := "", 1<<30
	for _, s := range d.fl.Servers() {
		if s.Draining || !s.Ready {
			continue
		}
		load := s.Users
		if p := pointing[s.ID]; p > load {
			load = p
		}
		if load < bestUsers {
			best, bestUsers = s.ID, load
		}
	}
	return best
}

// Step advances the fleet by one tick and lets every bot act.
func (d *FleetDriver) Step() {
	d.fl.TickAll()
	for _, b := range d.swarm {
		b.Step()
	}
}
