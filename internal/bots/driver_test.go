package bots

import (
	"testing"

	"roia/internal/game"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
)

func driverFixture(t *testing.T, replicas int) (*FleetDriver, *fleet.Fleet) {
	t.Helper()
	net := transport.NewLoopback()
	t.Cleanup(func() { net.Close() })
	fl, err := fleet.New(fleet.Config{
		Network:    net,
		Zone:       1,
		Assignment: zone.NewAssignment(),
		NewApp:     func() server.Application { return game.New(game.DefaultConfig()) },
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < replicas; i++ {
		if _, err := fl.AddReplica(); err != nil {
			t.Fatal(err)
		}
	}
	return NewFleetDriver(fl, net, 9), fl
}

func TestFleetDriverGrowAndShrink(t *testing.T) {
	d, fl := driverFixture(t, 2)
	if err := d.SetBots(10); err != nil {
		t.Fatal(err)
	}
	if len(d.Bots()) != 10 {
		t.Fatalf("swarm = %d", len(d.Bots()))
	}
	// Bots joined least-loaded: split evenly.
	for i := 0; i < 3; i++ {
		d.Step()
	}
	if got := fl.ZoneUsers(); got != 10 {
		t.Fatalf("zone users = %d", got)
	}
	states := fl.Servers()
	if states[0].Users != 5 || states[1].Users != 5 {
		t.Fatalf("join not least-loaded: %d/%d", states[0].Users, states[1].Users)
	}
	// Shrink: departures leave cleanly.
	if err := d.SetBots(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d.Step()
	}
	if len(d.Bots()) != 4 {
		t.Fatalf("swarm after shrink = %d", len(d.Bots()))
	}
	if got := fl.ZoneUsers(); got != 4 {
		t.Fatalf("zone users after shrink = %d", got)
	}
	// Negative target clamps to empty.
	if err := d.SetBots(-3); err != nil {
		t.Fatal(err)
	}
	if len(d.Bots()) != 0 {
		t.Fatal("negative target did not empty the swarm")
	}
}

func TestFleetDriverSkipsDrainingServers(t *testing.T) {
	d, fl := driverFixture(t, 2)
	ids := fl.IDs()
	if err := fl.SetDraining(ids[0], true); err != nil {
		t.Fatal(err)
	}
	if err := d.SetBots(6); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d.Step()
	}
	for _, s := range fl.Servers() {
		if s.ID == ids[0] && s.Users != 0 {
			t.Fatalf("draining server received %d joins", s.Users)
		}
		if s.ID == ids[1] && s.Users != 6 {
			t.Fatalf("active server has %d users, want 6", s.Users)
		}
	}
}

func TestFleetDriverProfileSwitch(t *testing.T) {
	d, _ := driverFixture(t, 1)
	d.SetProfile(PassiveProfile())
	if err := d.SetBots(2); err != nil {
		t.Fatal(err)
	}
	if d.Bots()[0].profile != PassiveProfile() {
		t.Fatal("profile not applied to new bots")
	}
}

func TestFleetDriverStepsBots(t *testing.T) {
	d, _ := driverFixture(t, 1)
	if err := d.SetBots(3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d.Step()
	}
	for _, b := range d.Bots() {
		if !b.Client().Joined() {
			t.Fatal("bot not joined after steps")
		}
		if b.InputsSent() == 0 {
			t.Fatal("bot sent no inputs")
		}
	}
}
